package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFleetSmokeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("in-process HTTP fleet in -short mode")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-smoke"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("fleet smoke failed (%d): %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "fleet smoke ok") {
		t.Fatalf("smoke output: %s", out.String())
	}
}

func TestSustainedLoadJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load in -short mode")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-duration", "300ms", "-conns", "2", "-replicas", "2", "-json"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("load run failed (%d): %s", code, errBuf.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Replicas != 2 || rep.Conns != 2 {
		t.Fatalf("report shape %+v", rep)
	}
	if rep.Decisions == 0 || rep.DecisionsPerSec <= 0 {
		t.Fatalf("300ms of load decided nothing: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors under a healthy fleet", rep.Errors)
	}
	if rep.BatchP50us <= 0 || rep.BatchP999us < rep.BatchP50us {
		t.Fatalf("percentiles inverted: %+v", rep)
	}
}

func TestBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-algo", "bogus", "-duration", "10ms"}, &out, &errBuf); code == 0 {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(errBuf.String(), "valid:") {
		t.Fatalf("error does not list valid algorithms: %s", errBuf.String())
	}
}
