// Command fleetload is the SLO harness of a routerd fleet: it
// sustains batched decision load over many concurrent connections,
// scattering each batch across the replica set by shard ownership,
// and reports client-observed round-trip percentiles (p50/p99/p999)
// plus decisions/sec.
//
//	fleetload -replicas 3 -conns 8 -duration 5s        # self-hosted in-process fleet
//	fleetload -targets http://a:8070,http://b:8071     # load an external fleet
//	fleetload -smoke                                    # CI gate (see below)
//
// With -targets empty, fleetload spins -replicas in-process routerd
// replicas (replica i running shard i/N with the memoization cache
// on) on loopback listeners — the same fleet.Server that cmd/routerd
// runs, so self-hosted numbers are real HTTP round trips, not
// function calls.
//
// The -smoke flag is the CI gate: 3 in-process replicas under load,
// 1000+ scattered decisions verified bit-identical against a
// single-node reference service, a mid-load hot rollout
// (push → canary → promote) with zero canary divergence, a rollback
// that restores the prior version, and a deterministic cache-hit
// check. Any failed decision, divergence, or mismatch fails the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets  = fs.String("targets", "", "comma-separated replica base URLs in shard order; empty = self-host")
		replicas = fs.Int("replicas", 3, "self-hosted replica count")
		lanes    = fs.Int("lanes", 1, "engine lanes per self-hosted replica")
		algo     = fs.String("algo", "nafta", "builtin rule program: nafta, routec or maze")
		artPath  = fs.String("artifact", "", "serve tables from this artifact file instead of compiling the builtin program")
		meshSpec = fs.String("mesh", "8x8", "mesh size for nafta/maze, WxH")
		cubeDim  = fs.Int("cube", 4, "hypercube dimension for routec")
		cache    = fs.Int("cache", 65536, "memoization cache entries per self-hosted replica (0 disables)")
		conns    = fs.Int("conns", 8, "concurrent load connections")
		batch    = fs.Int("batch", 16, "decisions per batch request")
		duration = fs.Duration("duration", 5*time.Second, "sustained load duration")
		seed     = fs.Int64("seed", 1, "traffic seed")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
		smoke    = fs.Bool("smoke", false, "run the fleet correctness gate and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	die := func(err error) int {
		fmt.Fprintln(stderr, "fleetload:", err)
		return 1
	}

	if *smoke {
		if err := runFleetSmoke(stdout, *seed); err != nil {
			return die(fmt.Errorf("smoke: %w", err))
		}
		return 0
	}

	art, bundle, err := fleet.LoadOrBuild(*artPath, *algo, reconfig.BuildOptions{CubeDim: *cubeDim})
	if err != nil {
		return die(err)
	}
	if bundle != nil {
		art = &bundle.Primary
	}

	var urls []string
	if *targets != "" {
		urls = strings.Split(*targets, ",")
	} else {
		g, err := fleet.TopologyFor(art, *meshSpec)
		if err != nil {
			return die(err)
		}
		hosted, shutdown, err := hostFleet(art, g, *replicas, *lanes, *cache)
		if err != nil {
			return die(err)
		}
		defer shutdown()
		urls = hosted
	}
	client, err := fleet.NewClient(urls, fleet.ClientOptions{})
	if err != nil {
		return die(err)
	}

	g, err := fleet.TopologyFor(art, *meshSpec)
	if err != nil {
		return die(err)
	}
	rep, err := sustain(client, g.Nodes(), *conns, *batch, *duration, *seed)
	if err != nil {
		return die(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return die(err)
		}
		return 0
	}
	fmt.Fprintf(stdout, "fleetload: %d replicas, %d conns, batch %d, %s\n",
		len(urls), *conns, *batch, duration)
	fmt.Fprintf(stdout, "  %d decisions, %.0f decisions/sec, %d batch errors\n",
		rep.Decisions, rep.DecisionsPerSec, rep.Errors)
	fmt.Fprintf(stdout, "  batch round-trip p50 %.0fus p99 %.0fus p999 %.0fus\n",
		rep.BatchP50us, rep.BatchP99us, rep.BatchP999us)
	return 0
}

// Report is the machine-readable load summary (-json).
type Report struct {
	Replicas        int     `json:"replicas"`
	Conns           int     `json:"conns"`
	Batch           int     `json:"batch"`
	Decisions       int64   `json:"decisions"`
	Errors          int64   `json:"errors"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	BatchP50us      float64 `json:"batch_rtt_us_p50"`
	BatchP99us      float64 `json:"batch_rtt_us_p99"`
	BatchP999us     float64 `json:"batch_rtt_us_p999"`
}

// hostFleet spins n in-process replicas of art on g, replica i owning
// shard i/n, and returns their base URLs plus a shutdown func.
func hostFleet(art *reconfig.Artifact, g topology.Graph, n, lanes, cache int) ([]string, func(), error) {
	urls := make([]string, 0, n)
	var servers []*http.Server
	shutdown := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		srv, err := fleet.NewServer(art, nil, g, fleet.Options{
			Shards:       lanes,
			CacheEntries: cache,
			Shard:        fleet.ShardInfo{Index: i, Count: n},
		})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		hs := &http.Server{Handler: srv.Mux()}
		go hs.Serve(ln)
		servers = append(servers, hs)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, shutdown, nil
}

// sustain drives conns concurrent connections of batched load for the
// given duration and aggregates per-connection round-trip histograms
// into one report.
func sustain(client *fleet.Client, nodes, conns, batch int, duration time.Duration, seed int64) (*Report, error) {
	deadline := time.Now().Add(duration)
	hists := make([]*metrics.Histogram, conns)
	counts := make([]int64, conns)
	errs := make([]int64, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		// 20us bins up to 200ms: enough resolution for loopback p50,
		// enough range for a 99.9th over a congested fleet.
		hists[c] = metrics.NewHistogram(20, 10000)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			ctx := context.Background()
			for time.Now().Before(deadline) {
				reqs := make([]reconfig.DecisionRequest, batch)
				for i := range reqs {
					reqs[i] = randomRequest(rng, nodes)
				}
				t0 := time.Now()
				out, err := client.DecideBatch(ctx, reqs)
				rtt := time.Since(t0)
				if err != nil {
					errs[c]++
					continue
				}
				hists[c].Add(float64(rtt.Microseconds()))
				for _, d := range out {
					if d.Error != "" {
						errs[c]++
					} else {
						counts[c]++
					}
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	// Per-connection histograms merged into the fleet-wide view — the
	// merge path the /metrics aggregators use.
	agg := metrics.NewHistogram(20, 10000)
	var decisions, errors int64
	for c := 0; c < conns; c++ {
		if err := agg.Merge(hists[c]); err != nil {
			return nil, err
		}
		decisions += counts[c]
		errors += errs[c]
	}
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	return &Report{
		Replicas:        client.Replicas(),
		Conns:           conns,
		Batch:           batch,
		Decisions:       decisions,
		Errors:          errors,
		DecisionsPerSec: float64(decisions) / elapsed.Seconds(),
		BatchP50us:      agg.Percentile(0.50),
		BatchP99us:      agg.Percentile(0.99),
		BatchP999us:     agg.Percentile(0.999),
	}, nil
}

// randomRequest builds a fault-free injection-time decision request.
func randomRequest(rng *rand.Rand, nodes int) reconfig.DecisionRequest {
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes)
	for dst == src {
		dst = rng.Intn(nodes)
	}
	return reconfig.DecisionRequest{
		Node:   src,
		InPort: routing.InjectionPort,
		InVC:   0,
		Src:    src,
		Dst:    dst,
		Length: 4,
	}
}

// runFleetSmoke is the CI correctness gate. It certifies, in one run:
//   - scatter/gather over 3 shard-owning replicas answers bit-identically
//     to a single-node reference service, across a hot rollout;
//   - a same-algorithm canary samples decisions and diverges zero times;
//   - promote activates the canaried version, rollback restores the
//     prior one (verified by registry status on every replica);
//   - repeated traffic hits the memoization cache on every replica.
func runFleetSmoke(stdout io.Writer, seed int64) error {
	const (
		nReplicas = 3
		total     = 1200
		batchSize = 48
	)
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		return err
	}
	g, err := fleet.TopologyFor(art, "8x8")
	if err != nil {
		return err
	}
	urls, shutdown, err := hostFleet(art, g, nReplicas, 1, 4096)
	if err != nil {
		return err
	}
	defer shutdown()
	client, err := fleet.NewClient(urls, fleet.ClientOptions{})
	if err != nil {
		return err
	}

	// The single-node reference: same artifact, no cache, no sharding.
	// The rollout pushes the same program, so the reference stays valid
	// across the promote and the rollback — every fleet answer must
	// match it bit for bit at every point of the run.
	ref, err := reconfig.NewService(art, g, 1)
	if err != nil {
		return err
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	checked := 0
	verify := func(n int) error {
		reqs := make([]reconfig.DecisionRequest, n)
		for i := range reqs {
			reqs[i] = randomRequest(rng, g.Nodes())
		}
		out, err := client.DecideBatch(ctx, reqs)
		if err != nil {
			return err
		}
		for i := range reqs {
			if out[i].Error != "" {
				return fmt.Errorf("decision %+v failed: %s", reqs[i], out[i].Error)
			}
			want, _, err := ref.Decide(&reqs[i], nil)
			if err != nil {
				return fmt.Errorf("reference decide: %w", err)
			}
			if out[i].Unroutable != (len(want) == 0) || !equalCandidates(out[i].Candidates, want) {
				return fmt.Errorf("request %+v: fleet answered %+v, reference %+v", reqs[i], out[i].Candidates, want)
			}
		}
		checked += n
		return nil
	}

	// Phase 1: scattered load against version 1.
	for done := 0; done < total/2; done += batchSize {
		if err := verify(batchSize); err != nil {
			return fmt.Errorf("pre-rollout: %w", err)
		}
	}

	// Phase 2: hot rollout — push the next epoch of the same program,
	// canary half the traffic, demand zero divergence, promote.
	next := *art
	next.Epoch = 2
	var artBytes bytes.Buffer
	if err := next.Encode(&artBytes); err != nil {
		return err
	}
	version, err := client.Push(ctx, artBytes.Bytes())
	if err != nil {
		return fmt.Errorf("push: %w", err)
	}
	if version != 2 {
		return fmt.Errorf("push assigned version %d, want 2", version)
	}
	if err := client.Canary(ctx, version, 0.5); err != nil {
		return fmt.Errorf("canary: %w", err)
	}
	for done := 0; done < total/2; done += batchSize {
		if err := verify(batchSize); err != nil {
			return fmt.Errorf("under canary: %w", err)
		}
	}
	var sampled int64
	for i := 0; i < client.Replicas(); i++ {
		st, err := client.RegistryStatus(ctx, i)
		if err != nil {
			return err
		}
		if st.Canary == nil {
			return fmt.Errorf("replica %d lost its canary", i)
		}
		if st.Canary.Diverged != 0 {
			return fmt.Errorf("replica %d: same-algorithm canary diverged %d times (examples: %+v)",
				i, st.Canary.Diverged, st.Canary.Examples)
		}
		sampled += st.Canary.Sampled
	}
	if sampled == 0 {
		return fmt.Errorf("canary at fraction 0.5 sampled nothing across %d decisions", total/2)
	}
	if err := client.Promote(ctx); err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if err := verify(batchSize); err != nil {
		return fmt.Errorf("post-promote: %w", err)
	}
	for i := 0; i < client.Replicas(); i++ {
		st, err := client.RegistryStatus(ctx, i)
		if err != nil {
			return err
		}
		if st.Serving != 2 || st.Previous != 1 {
			return fmt.Errorf("replica %d serving v%d (previous v%d) after promote, want v2/v1", i, st.Serving, st.Previous)
		}
	}

	// Phase 3: rollback restores version 1 on every replica.
	if err := client.Rollback(ctx); err != nil {
		return fmt.Errorf("rollback: %w", err)
	}
	for i := 0; i < client.Replicas(); i++ {
		st, err := client.RegistryStatus(ctx, i)
		if err != nil {
			return err
		}
		if st.Serving != 1 {
			return fmt.Errorf("replica %d serving v%d after rollback, want v1", i, st.Serving)
		}
	}
	if err := verify(batchSize); err != nil {
		return fmt.Errorf("post-rollback: %w", err)
	}

	// Phase 4: deterministic memoization check — the same batch twice,
	// back to back; the second pass must hit on every replica.
	repeat := make([]reconfig.DecisionRequest, batchSize)
	for i := range repeat {
		repeat[i] = randomRequest(rng, g.Nodes())
	}
	for pass := 0; pass < 2; pass++ {
		out, err := client.DecideBatch(ctx, repeat)
		if err != nil {
			return fmt.Errorf("cache pass %d: %w", pass, err)
		}
		for i := range repeat {
			want, _, _ := ref.Decide(&repeat[i], nil)
			if !equalCandidates(out[i].Candidates, want) {
				return fmt.Errorf("cache pass %d: request %+v answered %+v, reference %+v", pass, repeat[i], out[i].Candidates, want)
			}
		}
		checked += batchSize
	}
	var hits int64
	for i := 0; i < client.Replicas(); i++ {
		var doc fleet.MetricsDoc
		if err := client.Metrics(ctx, i, &doc); err != nil {
			return err
		}
		if doc.Cache == nil {
			return fmt.Errorf("replica %d reports no cache section", i)
		}
		if doc.Cache.Hits == 0 {
			return fmt.Errorf("replica %d: repeated batch produced no cache hits", i)
		}
		if doc.Misdirected != 0 {
			return fmt.Errorf("replica %d answered %d misdirected decisions (scatter broken)", i, doc.Misdirected)
		}
		hits += doc.Cache.Hits
	}

	fmt.Fprintf(stdout, "fleet smoke ok: %d scattered decisions bit-identical to single-node across push/canary/promote/rollback, %d canaried with 0 divergence, %d cache hits on %d replicas\n",
		checked, sampled, hits, nReplicas)
	return nil
}

func equalCandidates(a, b []routing.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
