package main

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.00GHz
BenchmarkTable1_NAFTARuleBases-8   	      10	   1234567 ns/op	  204800 B/op	    1024 allocs/op
BenchmarkSimulatorThroughput-8     	       1	526000000 ns/op	      1902 sim-cycles/s	 1048576 B/op	    9999 allocs/op
BenchmarkRouteDecision-8           	 1000000	      1167 ns/op	     120 B/op	       3 allocs/op
BenchmarkNoMem                     	     500	      2000 ns/op
PASS
ok  	repro	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable1_NAFTARuleBases" || r.Procs != 8 ||
		r.Iterations != 10 || r.NsPerOp != 1234567 ||
		r.BytesPerOp != 204800 || r.AllocsOp != 1024 {
		t.Fatalf("first result %+v", r)
	}
	// Custom b.ReportMetric units land in Extra.
	sim := results[1]
	if sim.Extra["sim-cycles/s"] != 1902 {
		t.Fatalf("extra metrics %+v", sim.Extra)
	}
	if sim.NsPerOp != 526000000 || sim.AllocsOp != 9999 {
		t.Fatalf("sim result %+v", sim)
	}
	// No -benchmem columns and no -N suffix still parse.
	nm := results[3]
	if nm.Name != "BenchmarkNoMem" || nm.Procs != 1 || nm.NsPerOp != 2000 ||
		nm.BytesPerOp != 0 || nm.AllocsOp != 0 {
		t.Fatalf("no-mem result %+v", nm)
	}
}

func TestParseBenchOutputSkipsNoise(t *testing.T) {
	noise := "Benchmarking is fun\nBenchmark\nok repro 1s\n"
	results, err := ParseBenchOutput(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("noise parsed as %d results", len(results))
	}
}

func TestParseBenchOutputBadValue(t *testing.T) {
	bad := "BenchmarkX-4  10  abc ns/op\n"
	if _, err := ParseBenchOutput(strings.NewReader(bad)); err == nil {
		t.Fatal("corrupt value should error")
	}
}

// A snapshot must carry host provenance, so numbers from a 2-core CI
// runner are never silently compared against a 32-core workstation.
func TestSnapshotHostProvenance(t *testing.T) {
	snap := newSnapshot("2026-08-08", "5x", []BenchResult{{Name: "BenchmarkX", NsPerOp: 1}})
	if snap.NumCPU != runtime.NumCPU() || snap.NumCPU < 1 {
		t.Fatalf("NumCPU = %d, host has %d", snap.NumCPU, runtime.NumCPU())
	}
	if snap.GOMAXPROCS != runtime.GOMAXPROCS(0) || snap.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d, runtime says %d", snap.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if snap.GOOS != runtime.GOOS || snap.GOARCH != runtime.GOARCH || snap.GoVersion != runtime.Version() {
		t.Fatalf("toolchain provenance %+v", snap)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"num_cpu"`, `"gomaxprocs"`, `"goos"`, `"goarch"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, raw)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Snapshot{Date: "2026-08-06", Benchtime: "1x", Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 4},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: 0},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}}
	cur := &Snapshot{Date: "2026-08-07", Benchtime: "1x", Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1300, AllocsOp: 0}, // +30% ns/op: regression
		{Name: "BenchmarkB", NsPerOp: 1500, AllocsOp: 2}, // faster: fine
		{Name: "BenchmarkNew", NsPerOp: 100},
	}}
	var buf strings.Builder
	if got := Compare(base, cur, &buf, 20); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkA", "REGRESSION", "+30.0%",
		"BenchmarkNew", "(new benchmark)",
		"BenchmarkGone", "(missing from current run)",
		"+inf%", // BenchmarkB allocs 0 -> 2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Errorf("want exactly one REGRESSION flag:\n%s", out)
	}
}

// A benchmark that holds ns/op but regresses bytes/op still gates: the
// steady-state 0-allocs property is exactly what the snapshots defend.
func TestCompareFlagsBytesRegression(t *testing.T) {
	base := &Snapshot{Date: "2026-08-07", Benchtime: "1x", Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000, BytesPerOp: 0},
		{Name: "BenchmarkC", NsPerOp: 1000, BytesPerOp: 1000},
	}}
	cur := &Snapshot{Date: "2026-08-08", Benchtime: "1x", Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1500}, // +50% B/op: regression
		{Name: "BenchmarkB", NsPerOp: 1000, BytesPerOp: 64},   // 0 -> nonzero: +inf, regression
		{Name: "BenchmarkC", NsPerOp: 1000, BytesPerOp: 1100}, // +10% B/op: within threshold
	}}
	var buf strings.Builder
	if got := Compare(base, cur, &buf, 20); got != 2 {
		t.Fatalf("regressions = %d, want 2\n%s", got, buf.String())
	}
	out := buf.String()
	if strings.Count(out, "REGRESSION(B/op)") != 2 {
		t.Errorf("want exactly two REGRESSION(B/op) flags:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION(ns/op)") {
		t.Errorf("ns/op held flat but was flagged:\n%s", out)
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA", NsPerOp: 1000}}}
	cur := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA", NsPerOp: 1190}}}
	var buf strings.Builder
	if got := Compare(base, cur, &buf, 20); got != 0 {
		t.Fatalf("+19%% flagged as regression:\n%s", buf.String())
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(0, 0); d != 0 {
		t.Errorf("pctDelta(0,0) = %v", d)
	}
	if d := pctDelta(200, 100); d != -50 {
		t.Errorf("pctDelta(200,100) = %v", d)
	}
	if fmtPct(pctDelta(0, 3)) != "+inf%" {
		t.Errorf("zero-base delta not +inf")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, c := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkE7_LatencyVsLoad-16", "BenchmarkE7_LatencyVsLoad", 16},
		{"Benchmark-abc", "Benchmark-abc", 1},
	} {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}
