// Command benchjson runs the repository benchmarks and emits a
// machine-readable snapshot:
//
//	go run ./cmd/benchjson                 # writes BENCH_<date>.json
//	go run ./cmd/benchjson -bench Sim -out -   # subset, to stdout
//
// The snapshot records ns/op, B/op, allocs/op and any custom metrics
// (b.ReportMetric) per benchmark, so successive PRs can diff
// performance without re-parsing `go test` text output.
//
// Compare mode gates regressions against a committed snapshot:
//
//	go run ./cmd/benchjson -baseline BENCH_2026-08-06.json
//
// prints per-benchmark ns/op, B/op and allocs/op deltas and exits
// non-zero when any benchmark regresses by more than -maxregress
// percent in ns/op or bytes/op (default 20). With -baseline and no
// -out, no snapshot file is
// written (compare-only, the CI shape: BENCH_BASELINE=... ./ci.sh).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name       string `json:"name"`
	Procs      int    `json:"procs"` // the -N suffix (GOMAXPROCS)
	Iterations int64  `json:"iterations"`
	// Benchtime is the -benchtime value this result was measured under.
	// Recorded per result (not only per snapshot) so results gathered
	// under different budgets can be merged into one file and compare
	// mode can flag apples-to-oranges deltas.
	Benchtime  string             `json:"benchtime,omitempty"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"` // b.ReportMetric values
}

// Snapshot is the written file. The host provenance fields (CPU
// count, GOMAXPROCS) qualify the numbers: a snapshot taken on a
// 2-core CI runner is not comparable to one from a 32-core
// workstation, and the file should say so itself.
type Snapshot struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchtime  string        `json:"benchtime"`
	Results    []BenchResult `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", ".", "benchmark name regex (go test -bench)")
	benchtime := fs.String("benchtime", "5x",
		"go test -benchtime value (fixed iteration counts make snapshots reproducible)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	out := fs.String("out", "", `output path ("-" for stdout; default BENCH_<date>.json)`)
	baseline := fs.String("baseline", "", "prior snapshot to compare against (exit 1 on regression)")
	maxRegress := fs.Float64("maxregress", 20, "ns/op and bytes/op regression threshold in percent for -baseline")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	date := time.Now().Format("2006-01-02")
	compareOnly := *baseline != "" && *out == ""
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	cmd := exec.Command("go", "test", "-run=^$", "-bench="+*bench,
		"-benchtime="+*benchtime, "-benchmem", *pkg)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(stderr, "benchjson: go test:", err)
		return 1
	}
	results, err := ParseBenchOutput(strings.NewReader(string(raw)))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines in go test output")
		return 1
	}
	for i := range results {
		results[i].Benchtime = *benchtime
	}
	snap := newSnapshot(date, *benchtime, results)
	if !compareOnly {
		var w io.Writer = stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "benchjson:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if path != "-" {
			fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(results))
		}
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		var base Snapshot
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(stderr, "benchjson: baseline:", err)
			return 1
		}
		if Compare(&base, &snap, stdout, *maxRegress) > 0 {
			fmt.Fprintln(stderr, "benchjson: regression beyond threshold")
			return 1
		}
	}
	return 0
}

// newSnapshot stamps a result set with toolchain and host provenance.
func newSnapshot(date, benchtime string, results []BenchResult) Snapshot {
	return Snapshot{
		Date: date, GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime: benchtime, Results: results,
	}
}

// Compare prints per-benchmark ns/op and allocs/op deltas of cur
// against base and returns the number of benchmarks whose ns/op
// regressed by more than maxRegressPct percent. Benchmarks present on
// only one side are reported but never count as regressions.
func Compare(base, cur *Snapshot, w io.Writer, maxRegressPct float64) int {
	baseBy := make(map[string]BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	fmt.Fprintf(w, "comparing against baseline of %s (benchtime %s):\n", base.Date, base.Benchtime)
	regressions := 0
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(w, "  %-44s (new benchmark)\n", r.Name)
			continue
		}
		delete(baseBy, r.Name)
		dn := pctDelta(b.NsPerOp, r.NsPerOp)
		db := pctDelta(b.BytesPerOp, r.BytesPerOp)
		da := pctDelta(b.AllocsOp, r.AllocsOp)
		verdict := ""
		if b.Benchtime != "" && r.Benchtime != "" && b.Benchtime != r.Benchtime {
			verdict = fmt.Sprintf("  (benchtime %s vs %s)", b.Benchtime, r.Benchtime)
		}
		// Time and allocated bytes are both gated: a change that holds
		// ns/op but starts allocating per op erodes exactly the
		// steady-state property the BENCH snapshots exist to defend. A
		// bytes_per_op regression from a zero base (0 -> nonzero) reads
		// as +Inf and always trips.
		if dn > maxRegressPct {
			regressions++
			verdict = "  REGRESSION(ns/op)"
		} else if db > maxRegressPct {
			regressions++
			verdict = "  REGRESSION(B/op)"
		}
		fmt.Fprintf(w, "  %-44s ns/op %12.1f -> %12.1f (%s)  B/op %9.0f -> %9.0f (%s)  allocs/op %8.0f -> %8.0f (%s)%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, fmtPct(dn), b.BytesPerOp, r.BytesPerOp, fmtPct(db),
			b.AllocsOp, r.AllocsOp, fmtPct(da), verdict)
	}
	missing := make([]string, 0, len(baseBy))
	for name := range baseBy {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "  %-44s (missing from current run)\n", name)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed more than %.0f%% (ns/op or bytes/op)\n", regressions, maxRegressPct)
	}
	return regressions
}

// pctDelta is the percent change from base to cur; a metric appearing
// out of nowhere (base 0, cur nonzero) reads as +Inf.
func pctDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base * 100
}

func fmtPct(v float64) string {
	if math.IsInf(v, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

// ParseBenchOutput extracts benchmark result lines from `go test
// -bench` text output. Lines that are not benchmark results (headers,
// PASS/ok, prints) are skipped.
func ParseBenchOutput(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: Name-N  iterations  value unit ...
		if len(fields) < 4 {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a print that happens to start with "Benchmark"
		}
		res := BenchResult{Name: name, Procs: procs, Iterations: iters}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// splitProcs separates the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], n
}
