package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/failover"
)

func runRulec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestArtifactWithBackupsWritesBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nafta.bdl")
	code, stdout, stderr := runRulec(t,
		"-builtin", "nafta", "-artifact", path, "-backups", "link,node,chain", "-mesh", "5x4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "backup classes") {
		t.Fatalf("bundle summary missing from output:\n%s", stdout)
	}
	art, bundle, err := failover.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if bundle == nil || art.Algorithm != "nafta" {
		t.Fatalf("wrote something other than a nafta bundle: art=%v bundle=%v", art, bundle)
	}
	// 31 links + 20 nodes + 12 chains - 3 length-1-chain duplicates.
	if len(bundle.Backups) != 60 {
		t.Fatalf("5x4 all-kinds bundle carries %d backups, want 60", len(bundle.Backups))
	}
}

func TestArtifactWithoutBackupsStaysBareArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nafta.tbl")
	code, _, stderr := runRulec(t, "-builtin", "nafta", "-artifact", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	art, bundle, err := failover.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if bundle != nil || art == nil {
		t.Fatal("plain -artifact must write a bare artifact, not a bundle")
	}
}

func TestMazeArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "maze.tbl")
	code, stdout, stderr := runRulec(t, "-builtin", "maze", "-ports", "5", "-artifact", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ports=5") {
		t.Fatalf("summary does not name the port count:\n%s", stdout)
	}
	art, bundle, err := failover.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if bundle != nil || art == nil || art.Algorithm != "maze" || art.Ports != 5 {
		t.Fatalf("wrote something other than a 5-port maze artifact: %+v", art)
	}
}

func TestRouteCBackupBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routec.bdl")
	code, _, stderr := runRulec(t, "-builtin", "routec", "-d", "4", "-artifact", path, "-backups", "node")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	_, bundle, err := failover.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if bundle == nil || len(bundle.Backups) != 16 {
		t.Fatalf("4-cube node bundle: %v", bundle)
	}
}

func TestBackupFlagValidation(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown kind lists choices",
			[]string{"-builtin", "nafta", "-artifact", filepath.Join(tmp, "a"), "-backups", "bogus"},
			"valid: link, node, chain"},
		{"empty kinds list choices",
			[]string{"-builtin", "nafta", "-artifact", filepath.Join(tmp, "b"), "-backups", ","},
			"valid: link, node, chain"},
		{"backups without artifact",
			[]string{"-builtin", "nafta", "-backups", "node"},
			"-backups needs -artifact"},
		{"bad mesh geometry",
			[]string{"-builtin", "nafta", "-artifact", filepath.Join(tmp, "c"), "-backups", "node", "-mesh", "8"},
			"want WxH"},
		{"chain on hypercube",
			[]string{"-builtin", "routec", "-d", "4", "-artifact", filepath.Join(tmp, "d"), "-backups", "chain"},
			"mesh topology"},
		{"unknown builtin lists choices",
			[]string{"-builtin", "nonesuch"},
			"valid: nara, nafta, maze, routec, routec-nft"},
		{"maze refuses backup enumeration",
			[]string{"-builtin", "maze", "-artifact", filepath.Join(tmp, "e"), "-backups", "node"},
			"built per scenario"},
		{"maze port bound",
			[]string{"-builtin", "maze", "-ports", "99"},
			"maze supports 2 to"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runRulec(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.want)
			}
		})
	}
}

func TestParseBackupKinds(t *testing.T) {
	kinds, err := parseBackupKinds(" link , node ,chain")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := parseBackupKinds("link,meteor"); err == nil {
		t.Fatal("bad kind accepted")
	}
}
