// Command rulec is the paper's "Rule Compiler": it parses a rule
// program, type-checks it, compiles every rule base to its ARON rule
// table and prints the hardware cost report (table dimensions, FCFB
// inventory, register bits).
//
//	rulec program.rules        # compile a file
//	rulec -builtin nafta       # compile a bundled program
//	rulec -builtin routec -d 6 -a 2
//	rulec -builtin maze -ports 4
//	rulec -builtin nafta -artifact nafta.tbl                       # versioned table artifact
//	rulec -builtin maze -ports 4 -artifact maze.tbl
//	rulec -builtin nafta -artifact nafta.bdl -backups link,node,chain -mesh 8x8
//	                           # failover bundle: primary + per-fault-class backups
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseBackupKinds splits and validates the -backups flag value.
func parseBackupKinds(s string) ([]string, error) {
	var kinds []string
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !failover.ValidKind(k) {
			return nil, fmt.Errorf("unknown fault-class kind %q (valid: %s)", k, strings.Join(failover.Kinds, ", "))
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-backups needs at least one fault-class kind (valid: %s)", strings.Join(failover.Kinds, ", "))
	}
	return kinds, nil
}

// parseMesh parses a "WxH" mesh geometry.
func parseMesh(s string) (w, h int, err error) {
	if n, err := fmt.Sscanf(s, "%dx%d", &w, &h); err != nil || n != 2 || w < 2 || h < 2 {
		return 0, 0, fmt.Errorf("bad mesh geometry %q (want WxH with both dimensions >= 2, e.g. 8x8)", s)
	}
	return w, h, nil
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rulec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	builtin := fs.String("builtin", "", "bundled program: nara, nafta, maze, routec, routec-nft")
	d := fs.Int("d", 6, "hypercube dimension (routec)")
	a := fs.Int("a", 2, "adaptivity command bits (routec)")
	ports := fs.Int("ports", 4, "router port count the maze program is generated for")
	dump := fs.Bool("dump", false, "print the program source before the report")
	optimize := fs.Bool("optimize", false, "run the semantics-preserving transformations (constant folding, dead-rule elimination) and report them")
	emit := fs.Bool("emit", false, "print the (possibly optimised) program as source after the report")
	saveCfg := fs.String("savecfg", "", "directory to write per-rule-base configuration data into")
	artOut := fs.String("artifact", "", "write a versioned rule-table artifact to this path (builtin nafta/routec only)")
	epoch := fs.Uint64("epoch", 1, "version epoch to stamp into the artifact")
	backups := fs.String("backups", "", "comma-separated fault-class kinds (link, node, chain) to bundle precompiled backups for; turns -artifact output into a failover bundle")
	mesh := fs.String("mesh", "8x8", "mesh geometry WxH the backup classes are enumerated on (nafta bundles)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	die := func(err error) int {
		fmt.Fprintln(stderr, "rulec:", err)
		return 1
	}

	var src, name string
	switch *builtin {
	case "nara":
		src, name = rulesets.NARASource(), "NARA"
	case "nafta":
		src, name = rulesets.NAFTASource(), "NAFTA"
	case "maze":
		if *ports < 2 || *ports > routing.MazeMaxPorts {
			return die(fmt.Errorf("maze supports 2 to %d ports, not %d", routing.MazeMaxPorts, *ports))
		}
		src, name = rulesets.MazeSource(*ports), fmt.Sprintf("MAZE (ports=%d)", *ports)
	case "routec":
		src, name = rulesets.RouteCSource(*d, *a), fmt.Sprintf("ROUTE_C (d=%d, a=%d)", *d, *a)
	case "routec-nft":
		src, name = rulesets.RouteCNFTSource(*d, *a), fmt.Sprintf("ROUTE_C-nft (d=%d, a=%d)", *d, *a)
	case "":
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: rulec [-builtin name] [file.rules]")
			return 2
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return die(err)
		}
		src, name = string(data), fs.Arg(0)
	default:
		return die(fmt.Errorf("unknown builtin %q (valid: nara, nafta, maze, routec, routec-nft)", *builtin))
	}
	if *dump {
		fmt.Fprintln(stdout, src)
	}

	prog, err := rules.Parse(src)
	if err != nil {
		return die(err)
	}
	checked, err := rules.Analyze(prog)
	if err != nil {
		return die(err)
	}
	if *optimize {
		opt, reports, err := core.OptimizeProgram(checked, core.CompileOptions{})
		if err != nil {
			return die(err)
		}
		for _, rep := range reports {
			if len(rep.Removed) == 0 && rep.FoldedPremises == 0 {
				continue
			}
			fmt.Fprintf(stdout, "optimised %s: removed rules %v, folded %d premises\n",
				rep.Base, rep.Removed, rep.FoldedPremises)
		}
		checked = opt
	}

	pc, err := core.AnalyzeCost(checked, core.CompileOptions{})
	if err != nil {
		return die(err)
	}

	core.WriteCostReport(stdout, fmt.Sprintf("Rule bases of %s", name), pc)
	if *saveCfg != "" {
		for _, rb := range checked.Prog.RuleBases {
			cb, err := core.CompileBase(checked, rb.Event, core.CompileOptions{})
			if err != nil {
				return die(err)
			}
			path := filepath.Join(*saveCfg, rb.Event+".cfg")
			f, err := os.Create(path)
			if err != nil {
				return die(err)
			}
			if err := cb.SaveConfig(f); err != nil {
				f.Close()
				return die(err)
			}
			if err := f.Close(); err != nil {
				return die(err)
			}
			fmt.Fprintf(stdout, "wrote %s (%d entries)\n", path, cb.Entries)
		}
	}
	if *backups != "" && *artOut == "" {
		return die(fmt.Errorf("-backups needs -artifact (backups ship inside a bundle file)"))
	}
	if *artOut != "" {
		if *builtin != "nafta" && *builtin != "routec" && *builtin != "maze" {
			return die(fmt.Errorf("-artifact requires -builtin maze, nafta or routec (artifacts name their adapter family)"))
		}
		art, err := reconfig.Build(*builtin, reconfig.BuildOptions{
			Epoch: *epoch, CubeDim: *d, Adaptivity: *a, Ports: *ports,
		})
		if err != nil {
			return die(err)
		}
		var summary string
		if *backups != "" {
			if *builtin == "maze" {
				return die(fmt.Errorf("-backups enumerates mesh/hypercube fault classes; maze planes are built per scenario by the campaign instead"))
			}
			kinds, err := parseBackupKinds(*backups)
			if err != nil {
				return die(err)
			}
			var g topology.Graph
			if *builtin == "nafta" {
				w, h, err := parseMesh(*mesh)
				if err != nil {
					return die(err)
				}
				g = topology.NewMesh(w, h)
			} else {
				g = topology.NewHypercube(*d)
			}
			bundle, err := failover.BuildBundle(art, g, kinds)
			if err != nil {
				return die(err)
			}
			if err := writeTo(*artOut, bundle.Encode); err != nil {
				return die(err)
			}
			if summary, err = bundle.Summary(); err != nil {
				return die(err)
			}
		} else {
			if err := writeTo(*artOut, art.Encode); err != nil {
				return die(err)
			}
			if summary, err = art.Summary(); err != nil {
				return die(err)
			}
		}
		fmt.Fprintf(stdout, "wrote %s\n%s", *artOut, summary)
	}
	if *emit {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, rules.ProgramString(checked.Prog))
	}
	return 0
}

// writeTo creates path and streams encode into it.
func writeTo(path string, encode func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
