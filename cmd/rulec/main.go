// Command rulec is the paper's "Rule Compiler": it parses a rule
// program, type-checks it, compiles every rule base to its ARON rule
// table and prints the hardware cost report (table dimensions, FCFB
// inventory, register bits).
//
//	rulec program.rules        # compile a file
//	rulec -builtin nafta       # compile a bundled program
//	rulec -builtin routec -d 6 -a 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/reconfig"
	"repro/internal/rules"
	"repro/internal/rulesets"
)

func main() {
	builtin := flag.String("builtin", "", "bundled program: nara, nafta, routec, routec-nft")
	d := flag.Int("d", 6, "hypercube dimension (routec)")
	a := flag.Int("a", 2, "adaptivity command bits (routec)")
	dump := flag.Bool("dump", false, "print the program source before the report")
	optimize := flag.Bool("optimize", false, "run the semantics-preserving transformations (constant folding, dead-rule elimination) and report them")
	emit := flag.Bool("emit", false, "print the (possibly optimised) program as source after the report")
	saveCfg := flag.String("savecfg", "", "directory to write per-rule-base configuration data into")
	artOut := flag.String("artifact", "", "write a versioned rule-table artifact to this path (builtin nafta/routec only)")
	epoch := flag.Uint64("epoch", 1, "version epoch to stamp into the artifact")
	flag.Parse()

	var src, name string
	switch *builtin {
	case "nara":
		src, name = rulesets.NARASource(), "NARA"
	case "nafta":
		src, name = rulesets.NAFTASource(), "NAFTA"
	case "routec":
		src, name = rulesets.RouteCSource(*d, *a), fmt.Sprintf("ROUTE_C (d=%d, a=%d)", *d, *a)
	case "routec-nft":
		src, name = rulesets.RouteCNFTSource(*d, *a), fmt.Sprintf("ROUTE_C-nft (d=%d, a=%d)", *d, *a)
	case "":
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: rulec [-builtin name] [file.rules]")
			os.Exit(1)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			die(err)
		}
		src, name = string(data), flag.Arg(0)
	default:
		die(fmt.Errorf("unknown builtin %q", *builtin))
	}
	if *dump {
		fmt.Println(src)
	}

	prog, err := rules.Parse(src)
	if err != nil {
		die(err)
	}
	checked, err := rules.Analyze(prog)
	if err != nil {
		die(err)
	}
	if *optimize {
		opt, reports, err := core.OptimizeProgram(checked, core.CompileOptions{})
		if err != nil {
			die(err)
		}
		for _, rep := range reports {
			if len(rep.Removed) == 0 && rep.FoldedPremises == 0 {
				continue
			}
			fmt.Printf("optimised %s: removed rules %v, folded %d premises\n",
				rep.Base, rep.Removed, rep.FoldedPremises)
		}
		checked = opt
	}

	pc, err := core.AnalyzeCost(checked, core.CompileOptions{})
	if err != nil {
		die(err)
	}

	core.WriteCostReport(os.Stdout, fmt.Sprintf("Rule bases of %s", name), pc)
	if *saveCfg != "" {
		for _, rb := range checked.Prog.RuleBases {
			cb, err := core.CompileBase(checked, rb.Event, core.CompileOptions{})
			if err != nil {
				die(err)
			}
			path := filepath.Join(*saveCfg, rb.Event+".cfg")
			f, err := os.Create(path)
			if err != nil {
				die(err)
			}
			if err := cb.SaveConfig(f); err != nil {
				f.Close()
				die(err)
			}
			if err := f.Close(); err != nil {
				die(err)
			}
			fmt.Printf("wrote %s (%d entries)\n", path, cb.Entries)
		}
	}
	if *artOut != "" {
		if *builtin != "nafta" && *builtin != "routec" {
			die(fmt.Errorf("-artifact requires -builtin nafta or -builtin routec (artifacts name their adapter family)"))
		}
		art, err := reconfig.Build(*builtin, reconfig.BuildOptions{
			Epoch: *epoch, CubeDim: *d, Adaptivity: *a,
		})
		if err != nil {
			die(err)
		}
		f, err := os.Create(*artOut)
		if err != nil {
			die(err)
		}
		if err := art.Encode(f); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		summary, err := art.Summary()
		if err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n%s", *artOut, summary)
	}
	if *emit {
		fmt.Println()
		fmt.Print(rules.ProgramString(checked.Prog))
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "rulec:", err)
	os.Exit(1)
}
