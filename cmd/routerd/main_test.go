package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/fleet"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

// testServer builds an in-process server over a 5x4 nafta bundle
// covering every fault-class kind.
func testServer(t *testing.T, failMode string) (*fleet.Server, *failover.Bundle) {
	t.Helper()
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := topology.NewMesh(5, 4)
	bundle, err := failover.BuildBundle(art, g, failover.Kinds)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fleet.NewServer(art, bundle, g, fleet.Options{Shards: 2, FailoverMode: failMode, CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return srv, bundle
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, out.Bytes()
}

func TestFailoverFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-failover", "sideways", "-smoke"}, &out, &errBuf)
	if code == 0 {
		t.Fatal("bogus -failover mode accepted")
	}
	if !strings.Contains(errBuf.String(), "valid: auto, off") {
		t.Fatalf("error does not list valid modes: %s", errBuf.String())
	}
}

func TestFaultEndpointFlipsCoveredClass(t *testing.T) {
	srv, _ := testServer(t, "auto")
	if srv.Plane() == nil {
		t.Fatal("auto mode with a bundle must attach a plane")
	}
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	// Node 7 is a covered single-node class: must flip.
	resp, body := postJSON(t, ts, "/fault", FaultRequest{Nodes: []int{7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var ans struct {
		Flipped bool   `json:"flipped"`
		Epoch   uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.Flipped {
		t.Fatal("covered single-node fault did not flip")
	}
	if ans.Epoch != 2 {
		t.Fatalf("epoch %d after flip, want 2", ans.Epoch)
	}

	// Decisions must now avoid node 7 entirely.
	_, body = postJSON(t, ts, "/decide", reconfig.DecisionRequest{
		Node: 6, InPort: -1, Src: 6, Dst: 8, Length: 4,
	})
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Error != "" || d.Unroutable {
		t.Fatalf("decision after flip: %+v", d)
	}

	// A two-node state matches no enumerated class: falls back to
	// live recompute, flipped=false.
	resp, body = postJSON(t, ts, "/fault", FaultRequest{Nodes: []int{7, 12}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Flipped {
		t.Fatal("uncovered fault state claimed a flip")
	}

	// /metrics carries the plane's counters and flip percentiles.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Epoch    uint64 `json:"epoch"`
		Failover *struct {
			CoveredClasses int     `json:"covered_classes"`
			Flips          int64   `json:"flips"`
			Recomputes     int64   `json:"recomputes"`
			FlipP99        float64 `json:"flip_us_p99"`
		} `json:"failover"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&doc)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failover == nil {
		t.Fatal("/metrics has no failover section despite an attached plane")
	}
	if doc.Failover.Flips != 1 || doc.Failover.Recomputes != 1 {
		t.Fatalf("plane counters %d/%d, want 1 flip 1 recompute", doc.Failover.Flips, doc.Failover.Recomputes)
	}
	if doc.Failover.FlipP99 <= 0 {
		t.Fatal("flip latency percentile missing after a flip")
	}
}

func TestFaultEndpointWithoutPlane(t *testing.T) {
	srv, _ := testServer(t, "off")
	if srv.Plane() != nil {
		t.Fatal("-failover off must not attach a plane")
	}
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/fault", FaultRequest{Nodes: []int{7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var ans struct {
		Flipped bool `json:"flipped"`
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Flipped {
		t.Fatal("no plane attached, yet the fault claimed a flip")
	}
	// The engines still learned the fault via direct UpdateFaults.
	_, body = postJSON(t, ts, "/decide", reconfig.DecisionRequest{
		Node: 6, InPort: -1, Src: 6, Dst: 8, Length: 4,
	})
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Candidates {
		if c.Port >= 0 && srv.Graph().Neighbor(6, c.Port) == 7 {
			t.Fatal("direct fault update not applied: candidate routes into failed node")
		}
	}
}

func TestFaultEndpointValidation(t *testing.T) {
	srv, _ := testServer(t, "auto")
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/fault", FaultRequest{Nodes: []int{99}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range node accepted: %s %s", resp.Status, body)
	}
	resp, body = postJSON(t, ts, "/fault", FaultRequest{Links: [][2]int{{0, -3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range link accepted: %s %s", resp.Status, body)
	}
}

func TestReloadAcceptsBundle(t *testing.T) {
	srv, bundle := testServer(t, "auto")
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	// Consume a backup, then reload: the rebuilt plane must be fresh.
	postJSON(t, ts, "/fault", FaultRequest{Nodes: []int{7}})
	if srv.Plane().Flips() != 1 {
		t.Fatal("setup flip missing")
	}

	next := *bundle
	next.Primary.Epoch = srv.Service().Epoch() + 1
	var buf bytes.Buffer
	if err := next.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/reload", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ans struct {
		Epoch uint64 `json:"epoch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ans)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %s err=%v", resp.Status, err)
	}
	if ans.Epoch <= 2 {
		t.Fatalf("epoch %d after bundle reload, want > 2", ans.Epoch)
	}
	p := srv.Plane()
	if p == nil || p.Flips() != 0 {
		t.Fatal("bundle reload must rebuild a fresh plane")
	}
	if p.CoveredClasses() != len(bundle.Backups) {
		t.Fatalf("rebuilt plane covers %d classes, want %d", p.CoveredClasses(), len(bundle.Backups))
	}
}

func TestReloadRejectsMismatchedBundleTopology(t *testing.T) {
	srv, _ := testServer(t, "auto")
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	other, err := failover.BuildBundle(art, topology.NewMesh(6, 6), []string{"node"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := other.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/reload", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("6x6 bundle accepted on a 5x4 server: %s", resp.Status)
	}
}

func TestSmokeRunsWithBundleArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("in-process HTTP load in -short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "nafta.bdl")
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := failover.BuildBundle(art, topology.NewMesh(5, 4), []string{"node"})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBundle(path, bundle); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-artifact", path, "-smoke", "-requests", "200", "-workers", "4"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("smoke over a bundle failed (%d): %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("smoke output: %s", out.String())
	}
}

func writeBundle(path string, b *failover.Bundle) error {
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// TestServeDrainsInflight exercises the SIGTERM path: serve must let
// an in-flight request finish inside the drain budget before
// returning.
func TestServeDrainsInflight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "done")
	})

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, ln, mux, 5*time.Second) }()

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(body)
	}()
	<-started

	cancel() // the signal arrives while /slow is in flight
	select {
	case err := <-served:
		t.Fatalf("serve returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if body := <-got; body != "done" {
		t.Fatalf("in-flight request not drained cleanly: %q", body)
	}
	if err := <-served; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
}

// TestServeDrainBudgetExhausted: a request that outlives the budget
// must not wedge the shutdown.
func TestServeDrainBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	mux := http.NewServeMux()
	mux.HandleFunc("/wedge", func(http.ResponseWriter, *http.Request) {
		close(started)
		<-block
	})

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, ln, mux, 20*time.Millisecond) }()
	go http.Get("http://" + ln.Addr().String() + "/wedge")
	<-started
	cancel()

	select {
	case err := <-served:
		if err == nil {
			t.Fatal("exhausted drain budget must surface an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve wedged past its drain budget")
	}
}
