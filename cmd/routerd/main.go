// Command routerd serves routing decisions over HTTP from a compiled
// rule-table artifact — the deployment shape the paper argues for: the
// router is a fixed rule interpreter, the algorithm is data, and
// re-programming the router is an artifact upload, not a restart.
//
//	routerd -algo nafta -mesh 8x8 -addr :8070
//	routerd -artifact tables.art -addr :8070
//	routerd -artifact tables.bdl -addr :8070   # failover bundle: backups precompiled
//	routerd -shard 1/3 -cache 65536 -addr :8071  # replica 1 of a 3-node fleet
//
// Endpoints (served by internal/fleet):
//
//	POST /decide         one DecisionRequest -> Decision
//	POST /decide/batch   []DecisionRequest   -> []Decision (bounded by -max-batch)
//	POST /reload         raw artifact or bundle bytes -> {"epoch":N,"version":V}
//	POST /registry/push  raw artifact bytes -> {"version":V} (stored, not served)
//	GET  /registry       versions, serving/previous ids, canary status
//	POST /canary         {"version":V,"fraction":F} diff F of decisions against V
//	POST /canary/stop    abandon the canary
//	POST /promote        make the canaried version the incumbent
//	POST /rollback       restore the previously serving version
//	POST /fault          {"nodes":[..],"links":[[a,b],..]} -> {"flipped":bool,"epoch":N}
//	GET  /metrics        decision counters, latency percentiles, cache, registry, failover
//	GET  /healthz        liveness
//
// Errors are JSON documents ({"error":..., "valid":[...]}) so callers
// never scrape prose. On SIGINT/SIGTERM the server stops accepting
// connections and drains in-flight decisions for up to -drain before
// exiting — a fleet replica can be rolled without failing a batch.
//
// The -smoke flag runs the built-in load generator against an
// in-process server: workers stream batched decisions while the table
// artifact is hot-reloaded mid-load, and the run fails unless every
// decision succeeded and the epoch advanced.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routerd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8070", "listen address")
		algo      = fs.String("algo", "nafta", "builtin rule program when no -artifact is given: nafta, routec or maze")
		artPath   = fs.String("artifact", "", "serve tables from this artifact or bundle file instead of compiling the builtin program")
		meshSpec  = fs.String("mesh", "8x8", "mesh size for nafta/maze, WxH (ignored when a bundle names its own topology)")
		cubeDim   = fs.Int("cube", 4, "hypercube dimension for routec")
		shards    = fs.Int("shards", runtime.GOMAXPROCS(0), "engine replicas (concurrent decision lanes)")
		failMode  = fs.String("failover", "auto", "failover plane: auto (precompile backups when the served file is a bundle) or off")
		cacheSize = fs.Int("cache", 65536, "decision memoization cache entries (0 disables)")
		shardSpec = fs.String("shard", "", "this replica's topology shard, index/count (e.g. 0/3); empty = own every node")
		maxBatch  = fs.Int("max-batch", 4096, "largest accepted /decide/batch")
		drain     = fs.Duration("drain", 5*time.Second, "in-flight drain budget on SIGINT/SIGTERM")
		pprof     = fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		smoke     = fs.Bool("smoke", false, "run the load generator against an in-process server and exit")
		requests  = fs.Int("requests", 1000, "smoke: total decisions to issue")
		batch     = fs.Int("batch", 32, "smoke: decisions per batch request")
		workers   = fs.Int("workers", 8, "smoke: concurrent load workers")
		seed      = fs.Int64("seed", 1, "smoke: traffic seed")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	die := func(err error) int {
		fmt.Fprintln(stderr, "routerd:", err)
		return 1
	}
	if !fleet.ValidFailoverMode(*failMode) {
		return die(fmt.Errorf("unknown -failover mode %q (valid: %s)", *failMode, strings.Join(fleet.FailoverModes, ", ")))
	}
	shard, err := fleet.ParseShard(*shardSpec)
	if err != nil {
		return die(err)
	}

	art, bundle, err := fleet.LoadOrBuild(*artPath, *algo, reconfig.BuildOptions{CubeDim: *cubeDim})
	if err != nil {
		return die(err)
	}
	var g topology.Graph
	if bundle != nil {
		// A bundle pins the topology its classes were enumerated on.
		g, err = bundle.Graph()
	} else {
		g, err = fleet.TopologyFor(art, *meshSpec)
	}
	if err != nil {
		return die(err)
	}
	srv, err := fleet.NewServer(art, bundle, g, fleet.Options{
		Shards:       *shards,
		FailoverMode: *failMode,
		CacheEntries: *cacheSize,
		Shard:        shard,
		MaxBatch:     *maxBatch,
		Pprof:        *pprof,
	})
	if err != nil {
		return die(err)
	}

	if *smoke {
		if err := runSmoke(srv, art, stdout, *requests, *batch, *workers, *seed); err != nil {
			return die(fmt.Errorf("smoke: %w", err))
		}
		return 0
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return die(err)
	}
	sum, _ := art.Checksum()
	planeNote := ""
	if p := srv.Plane(); p != nil {
		planeNote = fmt.Sprintf(", %d failover classes", p.CoveredClasses())
	}
	log.Printf("routerd: serving %s (%s) on %s, shard %s, %d engine lanes, epoch %d, sha256:%.12s%s",
		art.Name, g.Name(), ln.Addr(), srv.Shard(), srv.Service().Shards(), srv.Service().Epoch(), sum, planeNote)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, ln, srv.Mux(), *drain); err != nil {
		return die(err)
	}
	log.Printf("routerd: drained, bye")
	return 0
}

// serve runs handler on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// up to drain to finish. A serve error other than the shutdown's own
// ErrServerClosed is returned as-is.
func serve(ctx context.Context, ln net.Listener, handler http.Handler, drain time.Duration) error {
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		// Drain budget exhausted: close whatever is left.
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	<-errc // Serve has returned ErrServerClosed
	return nil
}

// Wire aliases so callers of the main package's test helpers read
// naturally; the types live in internal/fleet.
type (
	Decision     = fleet.Decision
	FaultRequest = fleet.FaultRequest
)

// runSmoke drives the built-in load generator: workers stream batched
// decisions over real HTTP while the artifact is hot-reloaded halfway
// through, then the counters are checked.
func runSmoke(srv *fleet.Server, art *reconfig.Artifact, stdout io.Writer, requests, batchSize, workers int, seed int64) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Mux()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	svc := srv.Service()
	nodes := srv.Graph().Nodes()

	// The reload payload: the same program stamped as the next epoch —
	// a same-regime swap, which is what a live re-program looks like.
	next := *art
	next.Epoch = svc.Epoch() + 1
	var artBytes bytes.Buffer
	if err := next.Encode(&artBytes); err != nil {
		return err
	}

	startEpoch := svc.Epoch()
	batches := make(chan []reconfig.DecisionRequest, workers)
	go func() {
		rng := rand.New(rand.NewSource(seed))
		left := requests
		for left > 0 {
			n := batchSize
			if n > left {
				n = left
			}
			b := make([]reconfig.DecisionRequest, n)
			for i := range b {
				b[i] = randomRequest(rng, nodes)
			}
			batches <- b
			left -= n
		}
		close(batches)
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		reloaded bool
	)
	client := &http.Client{Timeout: 30 * time.Second}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				payload, _ := json.Marshal(b)
				resp, err := client.Post(base+"/decide/batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					fail(err)
					return
				}
				var out []Decision
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					fail(err)
					return
				}
				if len(out) != len(b) {
					fail(fmt.Errorf("batch of %d answered with %d decisions", len(b), len(out)))
					return
				}
				for i, d := range out {
					if d.Error != "" {
						fail(fmt.Errorf("decision failed: %s", d.Error))
						return
					}
					if d.Unroutable {
						fail(fmt.Errorf("fault-free request %+v judged unroutable", b[i]))
						return
					}
				}
				mu.Lock()
				done += len(b)
				trigger := !reloaded && done >= requests/2
				if trigger {
					reloaded = true
				}
				mu.Unlock()
				if trigger {
					resp, err := client.Post(base+"/reload", "application/octet-stream", bytes.NewReader(artBytes.Bytes()))
					if err != nil {
						fail(fmt.Errorf("hot reload: %w", err))
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail(fmt.Errorf("hot reload: %s: %s", resp.Status, bytes.TrimSpace(body)))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	m := svc.Metrics()
	switch {
	case m.Failed != 0:
		return fmt.Errorf("%d failed decisions", m.Failed)
	case m.Unroutable != 0:
		return fmt.Errorf("%d unroutable decisions under a fault-free table", m.Unroutable)
	case !reloaded:
		return fmt.Errorf("load finished before the hot reload fired")
	case m.Epoch <= startEpoch:
		return fmt.Errorf("epoch did not advance across the reload (still %d)", m.Epoch)
	}
	cacheNote := ""
	if c := srv.Registry().Cache(); c != nil {
		cm := c.Metrics()
		// With the cache on, served decisions = service decisions + hits;
		// the smoke still demands every issued decision was answered.
		if m.Decisions+cm.Hits != int64(requests) {
			return fmt.Errorf("issued %d decisions, served %d (+%d memoized)", requests, m.Decisions, cm.Hits)
		}
		cacheNote = fmt.Sprintf(", %d memoized (%.0f%% hit)", cm.Hits, 100*cm.HitRate)
	} else if m.Decisions != int64(requests) {
		return fmt.Errorf("issued %d decisions, served %d", requests, m.Decisions)
	}
	fmt.Fprintf(stdout, "smoke ok: %d decisions across %d workers, hot reload epoch %d -> %d, p50 %.1fus p99 %.1fus%s\n",
		int64(requests), workers, startEpoch, m.Epoch, m.LatencyP50, m.LatencyP99, cacheNote)
	return nil
}

// randomRequest builds a fault-free injection-time decision request
// (in_port = injection, clean header), which every builtin table must
// be able to route.
func randomRequest(rng *rand.Rand, nodes int) reconfig.DecisionRequest {
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes)
	for dst == src {
		dst = rng.Intn(nodes)
	}
	return reconfig.DecisionRequest{
		Node:   src,
		InPort: routing.InjectionPort,
		InVC:   0,
		Src:    src,
		Dst:    dst,
		Length: 4,
	}
}
