// Command routerd serves routing decisions over HTTP from a compiled
// rule-table artifact — the deployment shape the paper argues for: the
// router is a fixed rule interpreter, the algorithm is data, and
// re-programming the router is an artifact upload, not a restart.
//
//	routerd -algo nafta -mesh 8x8 -addr :8070
//	routerd -artifact tables.art -addr :8070
//	routerd -artifact tables.bdl -addr :8070   # failover bundle: backups precompiled
//
// Endpoints:
//
//	POST /decide        one DecisionRequest -> Decision
//	POST /decide/batch  []DecisionRequest   -> []Decision
//	POST /reload        raw artifact or bundle bytes -> {"epoch": N}; atomic hot swap
//	POST /fault         {"nodes":[..],"links":[[a,b],..]} -> {"flipped":bool,"epoch":N}
//	GET  /metrics       decision counters, latency percentiles, epoch, failover plane
//	GET  /healthz       liveness
//
// When the served file is a failover bundle (and -failover is auto),
// the per-fault-class backup engines are precompiled at load time; a
// POST /fault whose fault set matches a covered class installs its
// backups with an atomic per-shard engine flip instead of running the
// diagnosis fixpoint inline — the flip-vs-recompute latency gap is
// visible in /metrics.
//
// The -smoke flag runs the built-in load generator against an
// in-process server: workers stream batched decisions while the table
// artifact is hot-reloaded mid-load, and the run fails unless every
// decision succeeded and the epoch advanced.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Failover plane modes accepted by -failover.
var failoverModes = []string{"auto", "off"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routerd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8070", "listen address")
		algo     = fs.String("algo", "nafta", "builtin rule program when no -artifact is given: nafta or routec")
		artPath  = fs.String("artifact", "", "serve tables from this artifact or bundle file instead of compiling the builtin program")
		meshSpec = fs.String("mesh", "8x8", "mesh size for nafta, WxH (ignored when a bundle names its own topology)")
		cubeDim  = fs.Int("cube", 4, "hypercube dimension for routec")
		shards   = fs.Int("shards", runtime.GOMAXPROCS(0), "engine replicas (concurrent decision lanes)")
		failMode = fs.String("failover", "auto", "failover plane: auto (precompile backups when the served file is a bundle) or off")
		pprof    = fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		smoke    = fs.Bool("smoke", false, "run the load generator against an in-process server and exit")
		requests = fs.Int("requests", 1000, "smoke: total decisions to issue")
		batch    = fs.Int("batch", 32, "smoke: decisions per batch request")
		workers  = fs.Int("workers", 8, "smoke: concurrent load workers")
		seed     = fs.Int64("seed", 1, "smoke: traffic seed")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	die := func(err error) int {
		fmt.Fprintln(stderr, "routerd:", err)
		return 1
	}
	if !validMode(*failMode) {
		return die(fmt.Errorf("unknown -failover mode %q (valid: %s)", *failMode, strings.Join(failoverModes, ", ")))
	}

	art, bundle, err := loadOrBuild(*artPath, *algo, *cubeDim)
	if err != nil {
		return die(err)
	}
	var g topology.Graph
	if bundle != nil {
		// A bundle pins the topology its classes were enumerated on.
		g, err = bundle.Graph()
	} else {
		g, err = topologyFor(art, *meshSpec)
	}
	if err != nil {
		return die(err)
	}
	srv, err := newServer(art, bundle, g, *shards, *failMode, *pprof)
	if err != nil {
		return die(err)
	}

	if *smoke {
		if err := runSmoke(srv, art, stdout, *requests, *batch, *workers, *seed); err != nil {
			return die(fmt.Errorf("smoke: %w", err))
		}
		return 0
	}

	sum, _ := art.Checksum()
	planeNote := ""
	if p := srv.currentPlane(); p != nil {
		planeNote = fmt.Sprintf(", %d failover classes", p.CoveredClasses())
	}
	log.Printf("routerd: serving %s (%s) on %s, %d shards, epoch %d, sha256:%.12s%s",
		art.Name, g.Name(), *addr, *shards, srv.svc.Epoch(), sum, planeNote)
	return die(http.ListenAndServe(*addr, srv.mux()))
}

func validMode(m string) bool {
	for _, v := range failoverModes {
		if m == v {
			return true
		}
	}
	return false
}

// loadOrBuild reads the artifact or bundle file, or compiles the
// builtin program of the requested family.
func loadOrBuild(path, algo string, cubeDim int) (*reconfig.Artifact, *failover.Bundle, error) {
	if path == "" {
		art, err := reconfig.Build(algo, reconfig.BuildOptions{CubeDim: cubeDim})
		return art, nil, err
	}
	return failover.LoadPath(path)
}

// topologyFor builds the topology the artifact's family routes on.
func topologyFor(art *reconfig.Artifact, meshSpec string) (topology.Graph, error) {
	switch art.Algorithm {
	case "nafta":
		var w, h int
		if _, err := fmt.Sscanf(strings.ToLower(meshSpec), "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
			return nil, fmt.Errorf("bad -mesh %q (want WxH, both >= 2)", meshSpec)
		}
		return topology.NewMesh(w, h), nil
	case "routec":
		return topology.NewHypercube(art.CubeDim), nil
	}
	return nil, fmt.Errorf("artifact names unknown algorithm %q", art.Algorithm)
}

// server owns the HTTP surface; decision buffers are pooled so the
// handler path stays allocation-light.
type server struct {
	svc      *reconfig.Service
	g        topology.Graph
	nodes    int
	shards   int
	failMode string
	bufs     sync.Pool

	// planeMu guards plane (replaced on /reload of a bundle).
	planeMu sync.Mutex
	plane   *failover.Plane

	// pprof mounts the net/http/pprof endpoints on the serving mux —
	// opt-in, so a production router is not profiling-exposed by
	// accident.
	pprof bool
}

// newServer builds the decision service and, when a bundle is served
// with the failover plane enabled, precompiles the backup engines (one
// lane per service shard).
func newServer(art *reconfig.Artifact, bundle *failover.Bundle, g topology.Graph, shards int, failMode string, pprof bool) (*server, error) {
	svc, err := reconfig.NewService(art, g, shards)
	if err != nil {
		return nil, err
	}
	s := &server{svc: svc, g: g, nodes: g.Nodes(), shards: svc.Shards(), failMode: failMode, pprof: pprof}
	if bundle != nil && failMode == "auto" {
		if err := s.installBundle(bundle); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// installBundle precompiles the bundle's backup engines and binds the
// plane to the service.
func (s *server) installBundle(bundle *failover.Bundle) error {
	plane, err := failover.NewPlane(bundle, s.g, failover.PlaneOptions{Lanes: s.shards})
	if err != nil {
		return err
	}
	plane.Bind(failover.ForService(s.svc))
	s.planeMu.Lock()
	s.plane = plane
	s.planeMu.Unlock()
	return nil
}

func (s *server) currentPlane() *failover.Plane {
	s.planeMu.Lock()
	defer s.planeMu.Unlock()
	return s.plane
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /decide", s.handleDecide)
	mux.HandleFunc("POST /decide/batch", s.handleBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

func (s *server) getBuf() []routing.Candidate {
	if b, ok := s.bufs.Get().(*[]routing.Candidate); ok {
		return (*b)[:0]
	}
	return make([]routing.Candidate, 0, 8)
}

func (s *server) putBuf(b []routing.Candidate) { s.bufs.Put(&b) }

// decide runs one request and renders the wire result.
func (s *server) decide(req *reconfig.DecisionRequest, buf []routing.Candidate) (Decision, []routing.Candidate) {
	cands, epoch, err := s.svc.Decide(req, buf)
	d := Decision{Epoch: epoch}
	if err != nil {
		d.Error = err.Error()
		return d, cands
	}
	if len(cands) == 0 {
		d.Unroutable = true
		d.Candidates = []routing.Candidate{}
	} else {
		d.Candidates = append([]routing.Candidate(nil), cands...)
	}
	return d, cands
}

// Decision mirrors reconfig.Decision for the HTTP layer.
type Decision = reconfig.Decision

func (s *server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req reconfig.DecisionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	buf := s.getBuf()
	d, buf := s.decide(&req, buf)
	s.putBuf(buf)
	writeJSON(w, d)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []reconfig.DecisionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&reqs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]Decision, len(reqs))
	buf := s.getBuf()
	for i := range reqs {
		out[i], buf = s.decide(&reqs[i], buf[:0])
	}
	s.putBuf(buf)
	writeJSON(w, out)
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 80<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	art, bundle, err := failover.DecodeAny(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if bundle != nil {
		// A bundle's classes are enumerated against a specific topology;
		// a reload cannot change the serving topology.
		g, err := bundle.Graph()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if g.Name() != s.g.Name() {
			http.Error(w, fmt.Sprintf("bundle enumerated on %s, serving %s", g.Name(), s.g.Name()), http.StatusConflict)
			return
		}
	}
	epoch, err := s.svc.Reload(art)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if bundle != nil && s.failMode == "auto" {
		// Rebuild the plane against the new primary; backups of the old
		// bundle are obsolete by construction.
		if err := s.installBundle(bundle); err != nil {
			http.Error(w, fmt.Sprintf("tables reloaded (epoch %d) but the failover plane failed: %v", epoch, err), http.StatusInternalServerError)
			return
		}
	}
	writeJSON(w, map[string]uint64{"epoch": epoch})
}

// FaultRequest is the wire form of a cumulative fault state.
type FaultRequest struct {
	Nodes []int    `json:"nodes,omitempty"`
	Links [][2]int `json:"links,omitempty"`
}

// Set materialises the request, validating ranges against the serving
// topology.
func (fr *FaultRequest) Set(g topology.Graph) (*fault.Set, error) {
	f := fault.NewSet()
	for _, n := range fr.Nodes {
		if n < 0 || n >= g.Nodes() {
			return nil, fmt.Errorf("fault node %d out of range [0,%d)", n, g.Nodes())
		}
		f.FailNode(topology.NodeID(n))
	}
	for _, l := range fr.Links {
		if l[0] < 0 || l[0] >= g.Nodes() || l[1] < 0 || l[1] >= g.Nodes() {
			return nil, fmt.Errorf("fault link %v out of range [0,%d)", l, g.Nodes())
		}
		f.FailLink(topology.NodeID(l[0]), topology.NodeID(l[1]))
	}
	return f, nil
}

// handleFault applies a cumulative fault state: through the failover
// plane when one is attached (covered class = atomic backup flip),
// directly onto the service engines otherwise.
func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req FaultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f, err := req.Set(s.g)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flipped := false
	if p := s.currentPlane(); p != nil {
		flipped = p.OnFault(f)
	} else {
		s.svc.UpdateFaults(f)
	}
	writeJSON(w, map[string]any{"flipped": flipped, "epoch": s.svc.Epoch()})
}

// metricsDoc is the /metrics document: the decision-service snapshot
// plus the failover plane's flip/recompute counters and latency
// percentiles when a plane is attached.
type metricsDoc struct {
	reconfig.MetricsSnapshot
	Failover *failover.PlaneMetrics `json:"failover,omitempty"`
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	doc := metricsDoc{MetricsSnapshot: s.svc.Metrics()}
	if p := s.currentPlane(); p != nil {
		pm := p.Metrics()
		doc.Failover = &pm
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("routerd: writing response: %v", err)
	}
}

// runSmoke drives the built-in load generator: workers stream batched
// decisions over real HTTP while the artifact is hot-reloaded halfway
// through, then the counters are checked.
func runSmoke(srv *server, art *reconfig.Artifact, stdout io.Writer, requests, batchSize, workers int, seed int64) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// The reload payload: the same program stamped as the next epoch —
	// a same-regime swap, which is what a live re-program looks like.
	next := *art
	next.Epoch = srv.svc.Epoch() + 1
	var artBytes bytes.Buffer
	if err := next.Encode(&artBytes); err != nil {
		return err
	}

	startEpoch := srv.svc.Epoch()
	batches := make(chan []reconfig.DecisionRequest, workers)
	go func() {
		rng := rand.New(rand.NewSource(seed))
		left := requests
		for left > 0 {
			n := batchSize
			if n > left {
				n = left
			}
			b := make([]reconfig.DecisionRequest, n)
			for i := range b {
				b[i] = randomRequest(rng, art.Algorithm, srv.nodes)
			}
			batches <- b
			left -= n
		}
		close(batches)
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		reloaded bool
	)
	client := &http.Client{Timeout: 30 * time.Second}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				payload, _ := json.Marshal(b)
				resp, err := client.Post(base+"/decide/batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					fail(err)
					return
				}
				var out []Decision
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					fail(err)
					return
				}
				if len(out) != len(b) {
					fail(fmt.Errorf("batch of %d answered with %d decisions", len(b), len(out)))
					return
				}
				for i, d := range out {
					if d.Error != "" {
						fail(fmt.Errorf("decision failed: %s", d.Error))
						return
					}
					if d.Unroutable {
						fail(fmt.Errorf("fault-free request %+v judged unroutable", b[i]))
						return
					}
				}
				mu.Lock()
				done += len(b)
				trigger := !reloaded && done >= requests/2
				if trigger {
					reloaded = true
				}
				mu.Unlock()
				if trigger {
					resp, err := client.Post(base+"/reload", "application/octet-stream", bytes.NewReader(artBytes.Bytes()))
					if err != nil {
						fail(fmt.Errorf("hot reload: %w", err))
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail(fmt.Errorf("hot reload: %s: %s", resp.Status, bytes.TrimSpace(body)))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	m := srv.svc.Metrics()
	switch {
	case m.Decisions != int64(requests):
		return fmt.Errorf("issued %d decisions, served %d", requests, m.Decisions)
	case m.Failed != 0:
		return fmt.Errorf("%d failed decisions", m.Failed)
	case m.Unroutable != 0:
		return fmt.Errorf("%d unroutable decisions under a fault-free table", m.Unroutable)
	case !reloaded:
		return fmt.Errorf("load finished before the hot reload fired")
	case m.Epoch <= startEpoch:
		return fmt.Errorf("epoch did not advance across the reload (still %d)", m.Epoch)
	}
	fmt.Fprintf(stdout, "smoke ok: %d decisions across %d workers, hot reload epoch %d -> %d, p50 %.1fus p99 %.1fus\n",
		m.Decisions, workers, startEpoch, m.Epoch, m.LatencyP50, m.LatencyP99)
	return nil
}

// randomRequest builds a fault-free injection-time decision request
// (in_port = injection, clean header), which every builtin table must
// be able to route.
func randomRequest(rng *rand.Rand, algo string, nodes int) reconfig.DecisionRequest {
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes)
	for dst == src {
		dst = rng.Intn(nodes)
	}
	req := reconfig.DecisionRequest{
		Node:   src,
		InPort: routing.InjectionPort,
		InVC:   0,
		Src:    src,
		Dst:    dst,
		Length: 4,
	}
	_ = algo
	return req
}
