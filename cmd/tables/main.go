// Command tables regenerates every quantitative table and figure of
// the paper (see DESIGN.md for the experiment index):
//
//	tables -exp T1        # Table 1: NAFTA rule bases
//	tables -exp all       # everything
//	tables -exp E7 -full  # full-resolution load sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1, T2, E3..E13 or 'all')")
	full := flag.Bool("full", false, "full-resolution sweeps (slower)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	quick := !*full
	sel := strings.ToUpper(*exp)
	want := func(id string) bool { return sel == "ALL" || sel == id }
	print := func(tb *metrics.Table) {
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			return
		}
		fmt.Println(tb.String())
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if want("T1") {
		tb, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("T2") {
		tb, total, err := experiments.Table2(6, 2)
		if err != nil {
			fail(err)
		}
		print(tb)
		fmt.Printf("total rule-table bits: %d (paper: 2960)\n\n", total)
	}
	if want("E3") {
		tb, err := experiments.E3Registers()
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E4") {
		tb, err := experiments.E4Steps()
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E5") {
		tb, err := experiments.E5Merged()
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E6") {
		tb, err := experiments.E6FaultChain(12, 8)
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E7") {
		mesh, cube, err := experiments.E7LatencyVsLoad(quick)
		if err != nil {
			fail(err)
		}
		print(mesh)
		print(cube)
	}
	if want("E8") {
		mesh, cube, err := experiments.E8Degradation(quick)
		if err != nil {
			fail(err)
		}
		print(mesh)
		print(cube)
	}
	if want("E9") {
		tb, err := experiments.E9DecisionTime(quick)
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E11") {
		tb, err := experiments.E11NegHop(quick)
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E12") {
		tb, err := experiments.E12Reconfiguration(quick)
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E13") {
		tb, err := experiments.E13MarkedPriority(quick)
		if err != nil {
			fail(err)
		}
		print(tb)
	}
	if want("E10") {
		tabs, err := experiments.E10Ablations(quick)
		if err != nil {
			fail(err)
		}
		for _, tb := range tabs {
			print(tb)
		}
	}
}
