// Command ftsim runs one wormhole-network simulation and reports its
// steady-state statistics:
//
//	ftsim -topo mesh16x16 -alg nafta -rate 0.15 -faults 4
//	ftsim -topo cube6 -alg routec -rate 0.10 -faults 3 -pattern bitreverse
//
// Topologies: meshWxH, cubeD, torusWxH. Algorithms: xy, nara, nafta,
// rule-nafta, tree, ecube, routec, rule-routec, routec-nft, neghop.
// Patterns: uniform,
// transpose, bitcomplement, bitreverse, tornado, hotspot, neighbor.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	topo := flag.String("topo", "mesh16x16", "topology (meshWxH, cubeD, torusWxH)")
	algName := flag.String("alg", "nafta", "routing algorithm")
	patName := flag.String("pattern", "uniform", "traffic pattern")
	rate := flag.Float64("rate", 0.10, "offered load in flits/node/cycle")
	length := flag.Int("length", 8, "message length in flits")
	faultNodes := flag.Int("faults", 0, "random node faults")
	faultLinks := flag.Int("flinks", 0, "random link faults")
	seed := flag.Int64("seed", 1, "PRNG seed")
	warmup := flag.Int64("warmup", 1000, "warm-up cycles")
	measure := flag.Int64("measure", 4000, "measurement cycles")
	decision := flag.Int("decision", 1, "cycles per rule-interpretation step")
	flag.Parse()

	g, err := parseTopo(*topo)
	if err != nil {
		die(err)
	}
	alg, attach, err := parseAlg(*algName, g)
	if err != nil {
		die(err)
	}
	pat, err := parsePattern(*patName, g)
	if err != nil {
		die(err)
	}
	var f *fault.Set
	if *faultNodes > 0 || *faultLinks > 0 {
		f, err = fault.Random(g, fault.RandomOptions{
			Nodes: *faultNodes, Links: *faultLinks, Seed: *seed, KeepConnected: true,
		})
		if err != nil {
			die(err)
		}
		fmt.Println("injected", f)
	}

	cfg := sim.Config{
		Graph: g, Algorithm: alg, Pattern: pat,
		Rate: *rate, Length: *length, Seed: *seed,
		Faults:                f,
		WarmupCycles:          *warmup,
		MeasureCycles:         *measure,
		DecisionCyclesPerStep: *decision,
	}
	_ = attach // the sim package wires the load view internally via network.New
	res, err := sim.Run(cfg)
	if err != nil {
		die(err)
	}
	st := res.Stats
	fmt.Printf("topology        %s (%d nodes)\n", g.Name(), g.Nodes())
	fmt.Printf("algorithm       %s (%d VCs)\n", alg.Name(), alg.NumVCs())
	fmt.Printf("pattern/load    %s @ %.3f flits/node/cycle, length %d\n", pat.Name(), *rate, *length)
	fmt.Printf("measured cycles %d\n", st.Cycles)
	fmt.Printf("delivered       %d (ratio %.4f)\n", st.Delivered, st.DeliveredRatio())
	fmt.Printf("dropped/killed  %d / %d\n", st.Dropped, st.Killed)
	fmt.Printf("avg latency     %.2f cycles (network %.2f)\n", st.AvgLatency(), st.AvgNetLatency())
	fmt.Printf("throughput      %.4f flits/node/cycle\n", res.Throughput())
	fmt.Printf("avg hops        %.2f, misroutes/msg %.3f, marked %d\n",
		safeDiv(float64(st.HopsSum), float64(st.Delivered)),
		safeDiv(float64(st.MisroutesSum), float64(st.Delivered)), st.MarkedCount)
	fmt.Printf("interp steps    %.2f per message\n", st.AvgSteps())
	fmt.Printf("queue growth    %d, drained %v\n", res.QueueGrowth, res.Drained)
	if st.DeadlockSuspected {
		fmt.Println("WARNING: deadlock suspected")
		os.Exit(2)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ftsim:", err)
	os.Exit(1)
}

func parseTopo(s string) (topology.Graph, error) {
	switch {
	case strings.HasPrefix(s, "mesh"):
		var w, h int
		if _, err := fmt.Sscanf(s, "mesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad mesh spec %q", s)
		}
		return topology.NewMesh(w, h), nil
	case strings.HasPrefix(s, "torus"):
		var w, h int
		if _, err := fmt.Sscanf(s, "torus%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad torus spec %q", s)
		}
		return topology.NewTorus(w, h), nil
	case strings.HasPrefix(s, "irreg"):
		var n, extra int
		if _, err := fmt.Sscanf(s, "irreg%d+%d", &n, &extra); err != nil {
			return nil, fmt.Errorf("bad irregular spec %q (want irregN+E)", s)
		}
		return topology.RandomIrregular(n, extra, 1)
	case strings.HasPrefix(s, "cube"):
		var d int
		if _, err := fmt.Sscanf(s, "cube%d", &d); err != nil {
			return nil, fmt.Errorf("bad cube spec %q", s)
		}
		return topology.NewHypercube(d), nil
	}
	return nil, fmt.Errorf("unknown topology %q", s)
}

func parseAlg(s string, g topology.Graph) (routing.Algorithm, func(*network.Network), error) {
	mesh, isMesh := g.(*topology.Mesh)
	cube, isCube := g.(*topology.Hypercube)
	switch s {
	case "xy":
		if !isMesh {
			return nil, nil, fmt.Errorf("xy needs a mesh")
		}
		return routing.NewXY(mesh), nil, nil
	case "nara":
		if !isMesh {
			return nil, nil, fmt.Errorf("nara needs a mesh")
		}
		return routing.NewNARA(mesh), nil, nil
	case "nafta":
		if !isMesh {
			return nil, nil, fmt.Errorf("nafta needs a mesh")
		}
		return routing.NewNAFTA(mesh), nil, nil
	case "rule-nafta":
		if !isMesh {
			return nil, nil, fmt.Errorf("rule-nafta needs a mesh")
		}
		alg, err := rulesets.NewRuleNAFTA(mesh)
		if err != nil {
			return nil, nil, err
		}
		return alg, func(n *network.Network) { alg.AttachLoads(n) }, nil
	case "tree":
		return routing.NewTree(g), nil, nil
	case "updown":
		return routing.NewUpDown(g), nil, nil
	case "torusdor":
		torus, isTorus := g.(*topology.Torus)
		if !isTorus {
			return nil, nil, fmt.Errorf("torusdor needs a torus")
		}
		return routing.NewTorusDOR(torus), nil, nil
	case "ecube":
		if !isCube {
			return nil, nil, fmt.Errorf("ecube needs a hypercube")
		}
		return routing.NewECube(cube), nil, nil
	case "routec":
		if !isCube {
			return nil, nil, fmt.Errorf("routec needs a hypercube")
		}
		return routing.NewRouteC(cube), nil, nil
	case "rule-routec":
		if !isCube {
			return nil, nil, fmt.Errorf("rule-routec needs a hypercube")
		}
		alg, err := rulesets.NewRuleRouteC(cube)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "neghop":
		alg, err := routing.NewNegHop(g, g.Ports()*3)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "routec-nft":
		if !isCube {
			return nil, nil, fmt.Errorf("routec-nft needs a hypercube")
		}
		return routing.NewRouteCNFT(cube), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", s)
}

func parsePattern(s string, g topology.Graph) (traffic.Pattern, error) {
	mesh, isMesh := g.(*topology.Mesh)
	switch s {
	case "uniform":
		return traffic.Uniform{Nodes: g.Nodes()}, nil
	case "transpose":
		if !isMesh {
			return nil, fmt.Errorf("transpose needs a mesh")
		}
		return traffic.Transpose{Mesh: mesh}, nil
	case "bitcomplement":
		return traffic.BitComplement{Nodes: g.Nodes()}, nil
	case "bitreverse":
		bits := 0
		for 1<<bits < g.Nodes() {
			bits++
		}
		if 1<<bits != g.Nodes() {
			return nil, fmt.Errorf("bitreverse needs a power-of-two node count")
		}
		return traffic.BitReverse{Bits: bits}, nil
	case "tornado":
		if !isMesh {
			return nil, fmt.Errorf("tornado needs a mesh")
		}
		return traffic.Tornado{Mesh: mesh}, nil
	case "hotspot":
		return traffic.Hotspot{Nodes: g.Nodes(), Hot: []topology.NodeID{0}, Fraction: 0.2}, nil
	case "neighbor":
		return traffic.Neighbor{Graph: g}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q", s)
}
