// Command ftsim runs one wormhole-network simulation and reports its
// steady-state statistics:
//
//	ftsim -topo mesh16x16 -alg nafta -rate 0.15 -faults 4
//	ftsim -topo cube6 -alg routec -rate 0.10 -faults 3 -pattern bitreverse
//
// Topologies: meshWxH, cubeD, torusWxH, irregN+E. Algorithms: xy,
// nara, nafta, rule-nafta, maze, rule-maze, tree, updown, torusdor,
// ecube, routec, rule-routec, routec-nft, neghop. Patterns: uniform,
// transpose, bitcomplement, bitreverse, tornado, hotspot, neighbor.
//
// The flight recorder (internal/trace) is attached with -trace:
//
//	ftsim -topo mesh8x8 -alg nafta -trace run.jsonl
//	ftsim -topo mesh8x8 -alg nafta -trace run.json -trace-format chrome
//
// A chrome-format trace opens directly in chrome://tracing or
// https://ui.perfetto.dev. With -postmortem DIR, a detected deadlock
// or livelock (see -livelock) writes a structured report naming the
// cycle, the blocked packets and the channel-wait cycle to
// DIR/postmortem-<cycle>.json and prints its summary.
//
// -perf appends a performance summary: wall-clock cycles/s over the
// whole run and the peak per-stage active-set sizes (how many live
// (node, port, VC) slots each pipeline stage ever had to visit):
//
//	ftsim -topo mesh64x64 -alg nafta -rate 0.02 -perf
//	ftsim -topo mesh64x64 -alg nafta -rate 0.02 -perf -workers 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the flag
// validation and the trace pipeline are testable end to end.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topo := fs.String("topo", "mesh16x16", "topology (meshWxH, cubeD, torusWxH, irregN+E)")
	algName := fs.String("alg", "nafta", "routing algorithm ("+strings.Join(algNames, ", ")+")")
	patName := fs.String("pattern", "uniform", "traffic pattern ("+strings.Join(patternNames, ", ")+")")
	rate := fs.Float64("rate", 0.10, "offered load in flits/node/cycle")
	length := fs.Int("length", 8, "message length in flits")
	faultNodes := fs.Int("faults", 0, "random node faults")
	faultLinks := fs.Int("flinks", 0, "random link faults")
	seed := fs.Int64("seed", 1, "PRNG seed")
	warmup := fs.Int64("warmup", 1000, "warm-up cycles")
	measure := fs.Int64("measure", 4000, "measurement cycles")
	decision := fs.Int("decision", 1, "cycles per rule-interpretation step")
	workers := fs.Int("workers", 0, "parallel stepping shards per cycle (0/1 = serial; statistics are identical)")
	traceFile := fs.String("trace", "", "write a flight-recorder event stream to this file")
	traceFormat := fs.String("trace-format", trace.FormatJSONL,
		"trace file format: "+trace.FormatJSONL+" or "+trace.FormatChrome)
	postmortem := fs.String("postmortem", "", "directory for automatic deadlock/livelock reports")
	livelock := fs.Int64("livelock", 0, "livelock age bound in cycles (0 = disabled)")
	perf := fs.Bool("perf", false, "print a performance summary (wall-clock cycles/s, peak active-set sizes)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	g, err := parseTopo(*topo)
	if err != nil {
		return die(stderr, err)
	}
	alg, attach, err := parseAlg(*algName, g)
	if err != nil {
		return die(stderr, err)
	}
	pat, err := parsePattern(*patName, g)
	if err != nil {
		return die(stderr, err)
	}
	var f *fault.Set
	if *faultNodes > 0 || *faultLinks > 0 {
		f, err = fault.Random(g, fault.RandomOptions{
			Nodes: *faultNodes, Links: *faultLinks, Seed: *seed, KeepConnected: true,
		})
		if err != nil {
			return die(stderr, err)
		}
		fmt.Fprintln(stdout, "injected", f)
	}

	cfg := sim.Config{
		Graph: g, Algorithm: alg, Pattern: pat,
		Rate: *rate, Length: *length, Seed: *seed,
		Faults:                f,
		WarmupCycles:          *warmup,
		MeasureCycles:         *measure,
		DecisionCyclesPerStep: *decision,
		Workers:               *workers,
		LivelockAgeCycles:     *livelock,
	}

	// Attach the flight recorder when tracing or post-mortems are
	// requested (post-mortems alone still want the event tail).
	var rec *trace.Recorder
	if *traceFile != "" || *postmortem != "" {
		rec = trace.New(g.Nodes(), 0)
		cfg.Recorder = rec
	}
	var traceOut *os.File
	if *traceFile != "" {
		sink, err := newFileSink(*traceFormat, *traceFile, &traceOut)
		if err != nil {
			return die(stderr, err)
		}
		rec.SetSink(sink)
		// Rule-table algorithms additionally stream their fired rules.
		switch a := alg.(type) {
		case *rulesets.RuleNAFTA:
			a.OnRuleFired, _ = rulesets.TraceRules(rec)
		case *rulesets.RuleRouteC:
			a.OnRuleFired, _ = rulesets.TraceRules(rec)
		case *rulesets.RuleMaze:
			a.OnRuleFired, _ = rulesets.TraceRules(rec)
		}
	}

	_ = attach // the sim package wires the load view internally via network.New
	// -perf wants the network itself (cycle count, active-set peaks),
	// which sim.Run builds internally; OnNetwork hands it out.
	var net *network.Network
	if *perf {
		cfg.OnNetwork = func(n *network.Network) { net = n }
	}
	start := time.Now()
	res, err := sim.Run(cfg)
	elapsed := time.Since(start)
	if rec != nil {
		if cerr := rec.Close(); cerr != nil {
			fmt.Fprintln(stderr, "ftsim: trace sink:", cerr)
		}
		if traceOut != nil {
			traceOut.Close()
			fmt.Fprintf(stdout, "trace           %s (%s, %d ring events retained)\n",
				*traceFile, *traceFormat, len(rec.Events()))
		}
	}
	if err != nil {
		return die(stderr, err)
	}
	st := res.Stats
	fmt.Fprintf(stdout, "topology        %s (%d nodes)\n", g.Name(), g.Nodes())
	fmt.Fprintf(stdout, "algorithm       %s (%d VCs)\n", alg.Name(), alg.NumVCs())
	fmt.Fprintf(stdout, "pattern/load    %s @ %.3f flits/node/cycle, length %d\n", pat.Name(), *rate, *length)
	fmt.Fprintf(stdout, "measured cycles %d\n", st.Cycles)
	fmt.Fprintf(stdout, "delivered       %d (ratio %.4f)\n", st.Delivered, st.DeliveredRatio())
	fmt.Fprintf(stdout, "dropped/killed  %d / %d\n", st.Dropped, st.Killed)
	fmt.Fprintf(stdout, "avg latency     %.2f cycles (network %.2f)\n", st.AvgLatency(), st.AvgNetLatency())
	fmt.Fprintf(stdout, "throughput      %.4f flits/node/cycle\n", res.Throughput())
	fmt.Fprintf(stdout, "avg hops        %.2f, misroutes/msg %.3f, marked %d\n",
		safeDiv(float64(st.HopsSum), float64(st.Delivered)),
		safeDiv(float64(st.MisroutesSum), float64(st.Delivered)), st.MarkedCount)
	fmt.Fprintf(stdout, "interp steps    %.2f per message\n", st.AvgSteps())
	fmt.Fprintf(stdout, "queue growth    %d, drained %v\n", res.QueueGrowth, res.Drained)
	if *perf && net != nil {
		// net.Now() counts every cycle stepped (warmup + measurement +
		// drain), which is what the wall clock covered. The peaks are
		// in live (node, port, VC) slots — the per-stage work-list sizes
		// the active-set engine actually iterates.
		cycles := net.Now()
		pk := net.Peaks()
		fmt.Fprintf(stdout, "perf            %d cycles in %s (%.0f cycles/s, workers %d)\n",
			cycles, elapsed.Round(time.Millisecond), safeDiv(float64(cycles), elapsed.Seconds()), *workers)
		fmt.Fprintf(stdout, "active-set peak route=%d alloc=%d switch=%d drain=%d inject-nodes=%d\n",
			pk.Route, pk.Alloc, pk.Switch, pk.Drain, pk.InjectNodes)
	}
	if res.PostMortem != nil {
		fmt.Fprint(stdout, res.PostMortem.String())
		if *postmortem != "" {
			path, werr := writePostMortem(*postmortem, res.PostMortem)
			if werr != nil {
				fmt.Fprintln(stderr, "ftsim: postmortem:", werr)
			} else {
				fmt.Fprintf(stdout, "post-mortem written to %s\n", path)
			}
		}
	}
	if st.DeadlockSuspected {
		fmt.Fprintln(stdout, "WARNING: deadlock suspected")
		return 2
	}
	return 0
}

// newFileSink creates the trace file and wraps it in the requested
// sink format; *out receives the file handle for closing.
func newFileSink(format, path string, out **os.File) (trace.Sink, error) {
	// Validate the format before touching the filesystem.
	if _, err := trace.NewSink(format, io.Discard); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sink, err := trace.NewSink(format, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	*out = f
	return sink, nil
}

// writePostMortem persists the report as DIR/postmortem-<cycle>.json.
func writePostMortem(dir string, rep *trace.Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("postmortem-%d.json", rep.Cycle))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return "", err
	}
	return path, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func die(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ftsim:", err)
	return 1
}

// topoForms, algNames and patternNames are the valid-choice listings
// quoted in parse errors (and the -alg/-pattern usage strings).
var (
	topoForms    = []string{"meshWxH", "torusWxH", "cubeD", "irregN+E"}
	algNames     = []string{"xy", "nara", "nafta", "rule-nafta", "maze", "rule-maze", "tree", "updown", "torusdor", "ecube", "routec", "rule-routec", "routec-nft", "neghop"}
	patternNames = []string{"uniform", "transpose", "bitcomplement", "bitreverse", "tornado", "hotspot", "neighbor"}
)

func parseTopo(s string) (topology.Graph, error) {
	switch {
	case strings.HasPrefix(s, "mesh"):
		var w, h int
		if _, err := fmt.Sscanf(s, "mesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad mesh spec %q (want meshWxH, e.g. mesh16x16)", s)
		}
		return topology.NewMesh(w, h), nil
	case strings.HasPrefix(s, "torus"):
		var w, h int
		if _, err := fmt.Sscanf(s, "torus%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad torus spec %q (want torusWxH, e.g. torus8x8)", s)
		}
		return topology.NewTorus(w, h), nil
	case strings.HasPrefix(s, "irreg"):
		var n, extra int
		if _, err := fmt.Sscanf(s, "irreg%d+%d", &n, &extra); err != nil {
			return nil, fmt.Errorf("bad irregular spec %q (want irregN+E, e.g. irreg24+10)", s)
		}
		return topology.RandomIrregular(n, extra, 1)
	case strings.HasPrefix(s, "cube"):
		var d int
		if _, err := fmt.Sscanf(s, "cube%d", &d); err != nil {
			return nil, fmt.Errorf("bad cube spec %q (want cubeD, e.g. cube6)", s)
		}
		return topology.NewHypercube(d), nil
	}
	return nil, fmt.Errorf("unknown topology %q (valid forms: %s)", s, strings.Join(topoForms, ", "))
}

func parseAlg(s string, g topology.Graph) (routing.Algorithm, func(*network.Network), error) {
	mesh, isMesh := g.(*topology.Mesh)
	cube, isCube := g.(*topology.Hypercube)
	switch s {
	case "xy":
		if !isMesh {
			return nil, nil, fmt.Errorf("xy needs a mesh")
		}
		return routing.NewXY(mesh), nil, nil
	case "nara":
		if !isMesh {
			return nil, nil, fmt.Errorf("nara needs a mesh")
		}
		return routing.NewNARA(mesh), nil, nil
	case "nafta":
		if !isMesh {
			return nil, nil, fmt.Errorf("nafta needs a mesh")
		}
		return routing.NewNAFTA(mesh), nil, nil
	case "rule-nafta":
		if !isMesh {
			return nil, nil, fmt.Errorf("rule-nafta needs a mesh")
		}
		alg, err := rulesets.NewRuleNAFTA(mesh)
		if err != nil {
			return nil, nil, err
		}
		return alg, func(n *network.Network) { alg.AttachLoads(n) }, nil
	case "maze":
		alg, err := routing.NewMaze(g)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "rule-maze":
		alg, err := rulesets.NewRuleMaze(g)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "tree":
		return routing.NewTree(g), nil, nil
	case "updown":
		return routing.NewUpDown(g), nil, nil
	case "torusdor":
		torus, isTorus := g.(*topology.Torus)
		if !isTorus {
			return nil, nil, fmt.Errorf("torusdor needs a torus")
		}
		return routing.NewTorusDOR(torus), nil, nil
	case "ecube":
		if !isCube {
			return nil, nil, fmt.Errorf("ecube needs a hypercube")
		}
		return routing.NewECube(cube), nil, nil
	case "routec":
		if !isCube {
			return nil, nil, fmt.Errorf("routec needs a hypercube")
		}
		return routing.NewRouteC(cube), nil, nil
	case "rule-routec":
		if !isCube {
			return nil, nil, fmt.Errorf("rule-routec needs a hypercube")
		}
		alg, err := rulesets.NewRuleRouteC(cube)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "neghop":
		alg, err := routing.NewNegHop(g, g.Ports()*3)
		if err != nil {
			return nil, nil, err
		}
		return alg, nil, nil
	case "routec-nft":
		if !isCube {
			return nil, nil, fmt.Errorf("routec-nft needs a hypercube")
		}
		return routing.NewRouteCNFT(cube), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q (valid: %s)", s, strings.Join(algNames, ", "))
}

func parsePattern(s string, g topology.Graph) (traffic.Pattern, error) {
	mesh, isMesh := g.(*topology.Mesh)
	switch s {
	case "uniform":
		return traffic.Uniform{Nodes: g.Nodes()}, nil
	case "transpose":
		if !isMesh {
			return nil, fmt.Errorf("transpose needs a mesh")
		}
		return traffic.Transpose{Mesh: mesh}, nil
	case "bitcomplement":
		return traffic.BitComplement{Nodes: g.Nodes()}, nil
	case "bitreverse":
		bits := 0
		for 1<<bits < g.Nodes() {
			bits++
		}
		if 1<<bits != g.Nodes() {
			return nil, fmt.Errorf("bitreverse needs a power-of-two node count")
		}
		return traffic.BitReverse{Bits: bits}, nil
	case "tornado":
		if !isMesh {
			return nil, fmt.Errorf("tornado needs a mesh")
		}
		return traffic.Tornado{Mesh: mesh}, nil
	case "hotspot":
		return traffic.Hotspot{Nodes: g.Nodes(), Hot: []topology.NodeID{0}, Fraction: 0.2}, nil
	case "neighbor":
		return traffic.Neighbor{Graph: g}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q (valid: %s)", s, strings.Join(patternNames, ", "))
}
