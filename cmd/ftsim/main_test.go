package main

import (
	"testing"

	"repro/internal/topology"
)

func TestParseTopo(t *testing.T) {
	g, err := parseTopo("mesh8x4")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := g.(*topology.Mesh); !ok || m.W != 8 || m.H != 4 {
		t.Fatalf("parsed %v", g)
	}
	g, err = parseTopo("cube5")
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := g.(*topology.Hypercube); !ok || h.Dim != 5 {
		t.Fatalf("parsed %v", g)
	}
	g, err = parseTopo("torus6x6")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.(*topology.Torus); !ok {
		t.Fatalf("parsed %v", g)
	}
	for _, bad := range []string{"", "ring8", "mesh8", "cube", "meshAxB"} {
		if _, err := parseTopo(bad); err == nil {
			t.Errorf("parseTopo(%q) should fail", bad)
		}
	}
}

func TestParseAlg(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	cube := topology.NewHypercube(4)
	for _, name := range []string{"xy", "nara", "nafta", "rule-nafta", "tree", "neghop"} {
		alg, _, err := parseAlg(name, mesh)
		if err != nil || alg == nil {
			t.Errorf("parseAlg(%q, mesh): %v", name, err)
		}
	}
	for _, name := range []string{"ecube", "routec", "rule-routec", "routec-nft", "tree", "neghop"} {
		alg, _, err := parseAlg(name, cube)
		if err != nil || alg == nil {
			t.Errorf("parseAlg(%q, cube): %v", name, err)
		}
	}
	// Topology mismatches must be rejected.
	if _, _, err := parseAlg("xy", cube); err == nil {
		t.Error("xy on a cube should fail")
	}
	if _, _, err := parseAlg("routec", mesh); err == nil {
		t.Error("routec on a mesh should fail")
	}
	if _, _, err := parseAlg("nosuch", mesh); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestParsePattern(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	cube := topology.NewHypercube(4)
	for _, name := range []string{"uniform", "transpose", "bitcomplement", "bitreverse", "tornado", "hotspot", "neighbor"} {
		if _, err := parsePattern(name, mesh); err != nil {
			t.Errorf("parsePattern(%q, mesh): %v", name, err)
		}
	}
	for _, name := range []string{"uniform", "bitcomplement", "bitreverse", "hotspot", "neighbor"} {
		if _, err := parsePattern(name, cube); err != nil {
			t.Errorf("parsePattern(%q, cube): %v", name, err)
		}
	}
	if _, err := parsePattern("transpose", cube); err == nil {
		t.Error("transpose on a cube should fail")
	}
	if _, err := parsePattern("bitreverse", topology.NewMesh(3, 3)); err == nil {
		t.Error("bitreverse on 9 nodes should fail")
	}
	if _, err := parsePattern("nosuch", mesh); err == nil {
		t.Error("unknown pattern should fail")
	}
}
