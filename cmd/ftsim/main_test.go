package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

func TestParseTopo(t *testing.T) {
	g, err := parseTopo("mesh8x4")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := g.(*topology.Mesh); !ok || m.W != 8 || m.H != 4 {
		t.Fatalf("parsed %v", g)
	}
	g, err = parseTopo("cube5")
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := g.(*topology.Hypercube); !ok || h.Dim != 5 {
		t.Fatalf("parsed %v", g)
	}
	g, err = parseTopo("torus6x6")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.(*topology.Torus); !ok {
		t.Fatalf("parsed %v", g)
	}
	for _, bad := range []string{"", "ring8", "mesh8", "cube", "meshAxB"} {
		if _, err := parseTopo(bad); err == nil {
			t.Errorf("parseTopo(%q) should fail", bad)
		}
	}
}

func TestParseAlg(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	cube := topology.NewHypercube(4)
	for _, name := range []string{"xy", "nara", "nafta", "rule-nafta", "maze", "rule-maze", "tree", "neghop"} {
		alg, _, err := parseAlg(name, mesh)
		if err != nil || alg == nil {
			t.Errorf("parseAlg(%q, mesh): %v", name, err)
		}
	}
	for _, name := range []string{"ecube", "routec", "rule-routec", "routec-nft", "tree", "neghop"} {
		alg, _, err := parseAlg(name, cube)
		if err != nil || alg == nil {
			t.Errorf("parseAlg(%q, cube): %v", name, err)
		}
	}
	// The maze family routes any topology within its port bound: tori
	// and random irregular graphs work where the mesh-only families
	// refuse.
	torus := topology.NewTorus(5, 5)
	irr, err := topology.RandomIrregular(16, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []topology.Graph{torus, irr} {
		for _, name := range []string{"maze", "rule-maze"} {
			alg, _, err := parseAlg(name, g)
			if err != nil || alg == nil {
				t.Errorf("parseAlg(%q, %s): %v", name, g.Name(), err)
			}
		}
	}
	// Topology mismatches must be rejected.
	if _, _, err := parseAlg("xy", cube); err == nil {
		t.Error("xy on a cube should fail")
	}
	if _, _, err := parseAlg("routec", mesh); err == nil {
		t.Error("routec on a mesh should fail")
	}
	if _, _, err := parseAlg("nosuch", mesh); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestParsePattern(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	cube := topology.NewHypercube(4)
	for _, name := range []string{"uniform", "transpose", "bitcomplement", "bitreverse", "tornado", "hotspot", "neighbor"} {
		if _, err := parsePattern(name, mesh); err != nil {
			t.Errorf("parsePattern(%q, mesh): %v", name, err)
		}
	}
	for _, name := range []string{"uniform", "bitcomplement", "bitreverse", "hotspot", "neighbor"} {
		if _, err := parsePattern(name, cube); err != nil {
			t.Errorf("parsePattern(%q, cube): %v", name, err)
		}
	}
	if _, err := parsePattern("transpose", cube); err == nil {
		t.Error("transpose on a cube should fail")
	}
	if _, err := parsePattern("bitreverse", topology.NewMesh(3, 3)); err == nil {
		t.Error("bitreverse on 9 nodes should fail")
	}
	if _, err := parsePattern("nosuch", mesh); err == nil {
		t.Error("unknown pattern should fail")
	}
}

// TestRunFlagValidation: unknown choices must list the valid ones and
// exit non-zero.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring the error text must carry
	}{
		{[]string{"-alg", "nosuch", "-topo", "mesh4x4"}, "valid: xy, nara, nafta, rule-nafta, maze, rule-maze"},
		{[]string{"-topo", "ring9"}, "valid forms: meshWxH, torusWxH, cubeD, irregN+E"},
		{[]string{"-topo", "mesh4x4", "-pattern", "nosuch"}, "valid: uniform, transpose"},
		{[]string{"-topo", "mesh4x4", "-trace", t.TempDir() + "/x", "-trace-format", "xml"}, "jsonl"},
		{[]string{"-no-such-flag"}, "-no-such-flag"},
	}
	for _, c := range cases {
		var out, errBuf bytes.Buffer
		code := run(c.args, &out, &errBuf)
		if code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", c.args)
		}
		if !strings.Contains(errBuf.String(), c.want) {
			t.Errorf("run(%v) stderr %q missing %q", c.args, errBuf.String(), c.want)
		}
	}
}

// TestRunPerfSummary: -perf must append the cycles/s line and the
// active-set peak gauges, with a route peak a live run cannot avoid.
func TestRunPerfSummary(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-topo", "mesh4x4", "-alg", "nafta", "-rate", "0.15",
		"-warmup", "100", "-measure", "400", "-perf",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	got := out.String()
	for _, want := range []string{"cycles/s", "workers 0", "active-set peak", "route="} {
		if !strings.Contains(got, want) {
			t.Errorf("perf output missing %q:\n%s", want, got)
		}
	}
	// Peaks are sampled every 64 cycles; a moderately loaded 500-cycle
	// run keeps messages in flight at every sample instant, so the
	// gauges cannot all be zero.
	if strings.Contains(got, "route=0 alloc=0 switch=0 drain=0 inject-nodes=0") {
		t.Errorf("all active-set peaks zero over a loaded run:\n%s", got)
	}
	// Without -perf, none of the summary appears.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{
		"-topo", "mesh4x4", "-alg", "nafta", "-rate", "0.05",
		"-warmup", "100", "-measure", "400",
	}, &out, &errBuf); code != 0 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	if strings.Contains(out.String(), "active-set peak") {
		t.Errorf("perf summary printed without -perf:\n%s", out.String())
	}
}

// TestRunChromeTrace is the end-to-end acceptance check: a mesh NAFTA
// run with -trace-format=chrome produces a file that parses as valid
// JSON with trace_event entries.
func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-topo", "mesh4x4", "-alg", "nafta", "-rate", "0.05",
		"-warmup", "100", "-measure", "400",
		"-trace", path, "-trace-format", "chrome",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("chrome trace is empty")
	}
	phases := map[string]bool{}
	for _, e := range entries {
		ph, _ := e["ph"].(string)
		phases[ph] = true
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("entry missing numeric ts: %v", e)
		}
	}
	// Instant events plus async begin/end message-lifetime pairs.
	for _, ph := range []string{"i", "b", "e"} {
		if !phases[ph] {
			t.Fatalf("chrome trace has no %q events (saw %v)", ph, phases)
		}
	}
	if !strings.Contains(out.String(), "trace") {
		t.Fatalf("stdout does not mention the trace file:\n%s", out.String())
	}
}

// TestRunJSONLTrace checks the line-oriented format end to end.
func TestRunJSONLTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-topo", "mesh4x4", "-alg", "rule-nafta", "-rate", "0.05",
		"-warmup", "100", "-measure", "300", "-trace", path,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	kinds := map[string]bool{}
	n := 0
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d invalid: %v", n+1, err)
		}
		kinds[e.Kind.String()] = true
		n++
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	// The rule-interpreted algorithm must stream rule-fired events.
	if !kinds["rule-fired"] {
		t.Fatalf("no rule-fired events in kinds %v", kinds)
	}
}

// TestRunPostMortemDir: a run that deadlocks writes the report file.
func TestRunPostMortemDir(t *testing.T) {
	// XY is deadlock-free, so force a report through the livelock age
	// bound instead: at saturation the congested worms exceed a bound
	// set below the run's typical in-network latency.
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-topo", "mesh4x4", "-alg", "xy", "-rate", "1.0",
		"-warmup", "100", "-measure", "2000",
		"-livelock", "15", "-postmortem", dir,
	}, &out, &errBuf)
	if code != 0 && code != 2 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "postmortem-*.json"))
	if len(matches) != 1 {
		t.Fatalf("want one post-mortem file, got %v (stdout: %s)", matches, out.String())
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := trace.DecodeReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != "livelock" || len(rep.Blocked) == 0 {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(out.String(), "POST-MORTEM") {
		t.Fatalf("stdout missing post-mortem summary:\n%s", out.String())
	}
}
