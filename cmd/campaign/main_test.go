package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Flag validation: bad inputs exit 2 and name the valid choices.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string // substring of stderr
	}{
		{"unknown algo", []string{"-algo", "ring", "-scenarios", "1"}, "valid: maze, nafta, routec"},
		{"zero scenarios", []string{"-scenarios", "0"}, "-scenarios must be positive"},
		{"negative scenarios", []string{"-scenarios", "-5"}, "-scenarios must be positive"},
		{"unparsable flag", []string{"-scenarios", "many"}, "invalid value"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"missing replay file", []string{"-replay", filepath.Join(t.TempDir(), "nope.json")}, "no such file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.argv, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), c.want)
			}
		})
	}
}

// A garbage artifact must be rejected cleanly.
func TestRunReplayBadArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-replay", path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "artifact version") {
		t.Fatalf("stderr %q should complain about the version", stderr.String())
	}
}

// A tiny clean campaign exits 0 and reports zero violations.
func TestRunCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenarios", "3", "-seed", "1", "-algo", "nafta"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "3 nafta scenarios, 0 violations") {
		t.Fatalf("unexpected summary: %s", stdout.String())
	}
}
