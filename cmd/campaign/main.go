// Command campaign runs the randomized fault-injection conformance
// campaign of internal/campaign:
//
//	campaign -scenarios 200 -seed 1 -algo nafta
//	campaign -scenarios 200 -seed 1 -algo routec -out fail.json
//
// Seeded scenarios (static fault patterns, fault chains, L-shapes and
// mid-run fault schedules) are simulated in parallel; after each run a
// battery of oracles checks simulator invariants, flit conservation,
// reference-justified drops, watchdog/livelock cleanliness and
// fast-path vs interpreted-path agreement. Violating scenarios are
// minimized by delta debugging (disable with -shrink=false) and, with
// -out, persisted as a replayable JSON artifact:
//
//	campaign -replay fail.json
//
// re-executes the recorded (shrunk) scenarios and reports whether the
// violation still reproduces. Exit status: 0 clean, 1 violations
// found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so flag validation
// and the artifact pipeline are testable end to end.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", campaign.AlgoNAFTA,
		"algorithm family ("+strings.Join(campaign.Algos, ", ")+")")
	scenarios := fs.Int("scenarios", 100, "number of scenarios to generate")
	seed := fs.Int64("seed", 1, "campaign seed (scenario generation)")
	workers := fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	stepWorkers := fs.Int("step-workers", 0,
		"parallel stepping shards inside each simulation (0/1 = serial; statistics are identical)")
	shrink := fs.Bool("shrink", true, "delta-debug violating scenarios to a minimal reproduction")
	differential := fs.Bool("differential", true,
		"also run the interpreted oracle path and require identical statistics")
	failover := fs.Bool("failover", false,
		"also run each scenario through the precomputed-failover plane and require decision-equivalent statistics")
	out := fs.String("out", "", "write a replayable JSON artifact of the violations to this file")
	replay := fs.String("replay", "", "replay the scenarios of a previously written artifact")
	verbose := fs.Bool("v", false, "log per-scenario progress")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *workers == 0 && *stepWorkers >= 2 {
		// The two parallelism levels multiply; shrink the job pool so
		// jobs × step shards stays at GOMAXPROCS.
		*workers = sim.PoolSize(*stepWorkers)
	}
	opts := campaign.Options{
		Algo:         *algo,
		Scenarios:    *scenarios,
		Seed:         *seed,
		Workers:      *workers,
		StepWorkers:  *stepWorkers,
		Differential: *differential,
		Failover:     *failover,
		Shrink:       *shrink,
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	if *replay != "" {
		return runReplay(*replay, &opts, stdout, stderr)
	}

	valid := false
	for _, a := range campaign.Algos {
		if *algo == a {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "campaign: unknown algo %q (valid: %s)\n",
			*algo, strings.Join(campaign.Algos, ", "))
		return 2
	}
	if *scenarios <= 0 {
		fmt.Fprintf(stderr, "campaign: -scenarios must be positive (got %d)\n", *scenarios)
		return 2
	}

	outcome, err := campaign.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 2
	}
	if !outcome.Failed() {
		fmt.Fprintf(stdout, "campaign: %d %s scenarios, 0 violations\n", outcome.Scenarios, *algo)
		return 0
	}
	total := 0
	for _, r := range outcome.Reports {
		total += len(r.Violations)
		fmt.Fprintf(stdout, "scenario %d: %d violation(s)\n", r.Scenario.ID, len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		if r.Shrunk != nil {
			fmt.Fprintf(stdout, "  shrunk to %d node fault(s), %d link fault(s), %d event(s)\n",
				len(r.Shrunk.FaultNodes), len(r.Shrunk.FaultLinks), len(r.Shrunk.Events))
		}
	}
	fmt.Fprintf(stdout, "campaign: %d %s scenarios, %d violation(s) in %d scenario(s)\n",
		outcome.Scenarios, *algo, total, len(outcome.Reports))
	if *out != "" {
		if err := writeArtifact(*out, &opts, outcome); err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "replay artifact written to %s\n", *out)
	}
	return 1
}

func writeArtifact(path string, opts *campaign.Options, outcome *campaign.Outcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := campaign.NewArtifact(opts, outcome).WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

func runReplay(path string, opts *campaign.Options, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 2
	}
	defer f.Close()
	art, err := campaign.DecodeArtifact(f)
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 2
	}
	reports, err := campaign.Replay(art, opts)
	if err != nil {
		fmt.Fprintf(stderr, "campaign: %v\n", err)
		return 2
	}
	if len(reports) == 0 {
		fmt.Fprintf(stdout, "replay: %d scenario(s), no violations reproduce\n", len(art.Reports))
		return 0
	}
	for _, r := range reports {
		fmt.Fprintf(stdout, "scenario %d still violates:\n", r.Scenario.ID)
		for _, v := range r.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
	}
	return 1
}
