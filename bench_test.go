package repro

// One benchmark per reproduced table/figure of the paper (the IDs
// follow DESIGN.md §4). Each benchmark regenerates the corresponding
// result and reports domain-specific metrics alongside the usual
// ns/op. Run a single pass with:
//
//	go test -bench=. -benchtime=1x -benchmem
//
// cmd/tables prints the same tables human-readably.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkTable1_NAFTARuleBases compiles the 11 NAFTA rule bases and
// reports the total rule-table memory (paper Table 1).
func BenchmarkTable1_NAFTARuleBases(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if tb.Rows() != 11 {
			b.Fatalf("rows = %d", tb.Rows())
		}
	}
}

// BenchmarkTable2_ROUTECRuleBases compiles the 4 ROUTE_C rule bases
// for the paper's d=6, a=2 configuration (paper Table 2, total 2960
// bits).
func BenchmarkTable2_ROUTECRuleBases(b *testing.B) {
	b.ReportAllocs()
	var total int64
	for i := 0; i < b.N; i++ {
		var err error
		_, total, err = experiments.Table2(6, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "table-bits")
}

// BenchmarkE3_RegisterBits accounts the register files of both
// algorithms (paper in-text: NAFTA 159 bits/47 ft; ROUTE_C
// 15d+2logd+3).
func BenchmarkE3_RegisterBits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3Registers(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_DecisionSteps measures rule interpretations per routing
// decision in live simulations (paper: NARA 1, NAFTA 1..3, ROUTE_C 2).
func BenchmarkE4_DecisionSteps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := experiments.E4Steps()
		if err != nil {
			b.Fatal(err)
		}
		if tb.Rows() != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkE5_MergedTableBlowup sizes the monolithic
// decide_dir+decide_vc table against the split bases (paper in-text:
// 1024*2^d x (d+1+a) bits).
func BenchmarkE5_MergedTableBlowup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5Merged(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_FaultChainKnowledge reproduces the Figure 2 scenario:
// purposiveness at a fault chain vs the per-node state budget.
func BenchmarkE6_FaultChainKnowledge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := experiments.E6FaultChain(12, 8)
		if err != nil {
			b.Fatal(err)
		}
		if tb.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE7_LatencyVsLoad sweeps offered load for the mesh and
// hypercube algorithm families (the motivating competitive claim).
func BenchmarkE7_LatencyVsLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E7LatencyVsLoad(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_FaultDegradation sweeps the fault count (conditions 1-3:
// graceful degradation vs the baselines).
func BenchmarkE8_FaultDegradation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E8Degradation(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_DecisionTimeImpact sweeps the per-step decision cycles
// (the [DLO97] decision-time claim).
func BenchmarkE9_DecisionTimeImpact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9DecisionTime(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Ablations runs the design-choice ablations (convex
// completion, adaptivity criterion, ARON direct indexing).
func BenchmarkE10_Ablations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10Ablations(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_NegHopVsState contrasts the negative-hop VC budget
// against NAFTA's fault-state design (Section 3 deadlock-avoidance
// economics).
func BenchmarkE11_NegHopVsState(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E11NegHop(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: cycles
// per second of a loaded 16x16 mesh under NAFTA (useful when sizing
// larger studies).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	m := topology.NewMesh(16, 16)
	f := fault.NewSet()
	f.FailNode(m.Node(7, 7))
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Graph: m, Algorithm: routing.NewNAFTA(m), Faults: f,
			Rate: 0.2, Length: 8, Seed: int64(i),
			WarmupCycles: 200, MeasureCycles: 1000, DrainCycles: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkRouteDecision measures one NAFTA routing decision (the
// software-model cost of what the rule interpreter does in a few
// cycles).
func BenchmarkRouteDecision(b *testing.B) {
	b.ReportAllocs()
	m := topology.NewMesh(16, 16)
	alg := routing.NewNAFTA(m)
	f := fault.NewSet()
	f.FailNode(m.Node(7, 7))
	f.FailNode(m.Node(8, 8))
	alg.UpdateFaults(f)
	hdr := &routing.Header{Src: m.Node(0, 0), Dst: m.Node(15, 15), Length: 8}
	req := routing.Request{Node: m.Node(3, 3), InPort: topology.West, Hdr: hdr}
	buf := make([]routing.Candidate, 0, topology.MeshPorts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = routing.RouteInto(alg, req, buf[:0])
		if len(buf) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkRuleDecision measures one routing decision through the
// compiled rule tables — the dense fast path (default) against the
// interpreted reference path (DisableFast), for both rule adapters.
func BenchmarkRuleDecision(b *testing.B) {
	b.Run("nafta", func(b *testing.B) {
		m := topology.NewMesh(16, 16)
		f := fault.NewSet()
		f.FailNode(m.Node(7, 7))
		f.FailNode(m.Node(8, 8))
		hdr := &routing.Header{Src: m.Node(0, 0), Dst: m.Node(15, 15), Length: 8}
		req := routing.Request{Node: m.Node(3, 3), InPort: topology.West, Hdr: hdr}
		for _, mode := range []struct {
			name        string
			disableFast bool
		}{{"fast", false}, {"interpreted", true}} {
			b.Run(mode.name, func(b *testing.B) {
				b.ReportAllocs()
				alg, err := rulesets.NewRuleNAFTA(m)
				if err != nil {
					b.Fatal(err)
				}
				alg.DisableFast = mode.disableFast
				alg.UpdateFaults(f)
				buf := make([]routing.Candidate, 0, topology.MeshPorts)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = alg.RouteAppend(req, buf[:0])
					if len(buf) == 0 {
						b.Fatal("no candidates")
					}
				}
			})
		}
	})
	b.Run("routec", func(b *testing.B) {
		h := topology.NewHypercube(6)
		f := fault.NewSet()
		f.FailNode(3)
		hdr := &routing.Header{Src: 0, Dst: 63, Length: 8}
		req := routing.Request{Node: 1, InPort: 0, Hdr: hdr}
		for _, mode := range []struct {
			name        string
			disableFast bool
		}{{"fast", false}, {"interpreted", true}} {
			b.Run(mode.name, func(b *testing.B) {
				b.ReportAllocs()
				alg, err := rulesets.NewRuleRouteC(h)
				if err != nil {
					b.Fatal(err)
				}
				alg.DisableFast = mode.disableFast
				alg.UpdateFaults(f)
				buf := make([]routing.Candidate, 0, h.Dim)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = alg.RouteAppend(req, buf[:0])
					if len(buf) == 0 {
						b.Fatal("no candidates")
					}
				}
			})
		}
	})
}

// BenchmarkDiagnosisFixpoint measures a full fault-state recomputation
// (the diagnosis phase of assumption iv) on a 16x16 mesh.
func BenchmarkDiagnosisFixpoint(b *testing.B) {
	b.ReportAllocs()
	m := topology.NewMesh(16, 16)
	alg := routing.NewNAFTA(m)
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 8, Seed: 3, KeepConnected: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.UpdateFaults(f)
	}
}

// BenchmarkE12_Reconfiguration measures the disruption of a mid-run
// fault: global tree rebuild vs NAFTA's local state propagation.
func BenchmarkE12_Reconfiguration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12Reconfiguration(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13_MarkedPriority measures the Section 3 fairness policy
// for fault-detoured messages.
func BenchmarkE13_MarkedPriority(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E13MarkedPriority(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkStep measures the per-cycle cost of the network
// pipeline, on the serial stepping path and on the deterministic
// parallel engine, across load levels:
//
//   - low: ~nodes/32 messages in flight — the active-set regime, where
//     per-cycle cost should track live work, not topology size
//   - moderate: ~nodes/4 messages in flight — a loaded but unsaturated
//     network, the headline single-thread comparison point
//   - saturating: ~2 messages per node — every VC busy, the regime the
//     pre-arena benchmarks measured
//
// The parallel engine produces bit-identical statistics, so the only
// question is wall-clock: on a single-core machine it measures pure
// coordination overhead. Injection is refilled outside the timer so
// the measured loop is Step() alone.
func BenchmarkNetworkStep(b *testing.B) {
	cases := []struct {
		name    string
		loads   []string
		workers []int
		make    func() (topology.Graph, routing.Algorithm)
	}{
		{"mesh16x16", []string{"low", "moderate", "saturating"}, []int{0, 2},
			func() (topology.Graph, routing.Algorithm) {
				m := topology.NewMesh(16, 16)
				return m, routing.NewNAFTA(m)
			}},
		{"mesh64x64", []string{"low", "moderate"}, []int{0, 2},
			func() (topology.Graph, routing.Algorithm) {
				m := topology.NewMesh(64, 64)
				return m, routing.NewNAFTA(m)
			}},
		{"cube10", []string{"saturating"}, []int{0, 2},
			func() (topology.Graph, routing.Algorithm) {
				h := topology.NewHypercube(10)
				return h, routing.NewECube(h)
			}},
		{"cube14", []string{"low", "moderate"}, []int{0},
			func() (topology.Graph, routing.Algorithm) {
				h := topology.NewHypercube(14)
				return h, routing.NewECube(h)
			}},
	}
	target := func(load string, nodes int) int {
		switch load {
		case "low":
			t := nodes / 32
			if t < 8 {
				t = 8
			}
			return t
		case "moderate":
			return nodes / 4
		default: // saturating
			return nodes * 2
		}
	}
	for _, c := range cases {
		for _, load := range c.loads {
			for _, workers := range c.workers {
				name := fmt.Sprintf("%s/%s/serial", c.name, load)
				if workers > 0 {
					name = fmt.Sprintf("%s/%s/workers%d", c.name, load, workers)
				}
				b.Run(name, func(b *testing.B) {
					g, alg := c.make()
					n := network.New(network.Config{Graph: g, Algorithm: alg, Workers: workers})
					defer n.Close()
					if workers >= 2 && !n.ParallelActive() {
						b.Fatalf("parallel engine inactive: %s", n.ParallelReason())
					}
					want := target(load, g.Nodes())
					rng := rand.New(rand.NewSource(1))
					refill := func() {
						for n.Queued()+n.InFlight() < want {
							src := topology.NodeID(rng.Intn(g.Nodes()))
							dst := topology.NodeID(rng.Intn(g.Nodes()))
							if src != dst {
								n.Inject(src, dst, 8)
							}
						}
					}
					refill()
					for i := 0; i < 100; i++ {
						n.Step() // warm scratch buffers and fill the pipeline
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if n.Queued()+n.InFlight() < want/2 {
							b.StopTimer()
							refill()
							b.StartTimer()
						}
						n.Step()
					}
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
				})
			}
		}
	}
}

// BenchmarkFailover measures the precomputed-failover decision plane:
// resolving a covered fault class by flipping its precompiled backup
// engine in (flip) versus running the live diagnosis fixpoint on the
// installed engine (recompute). The plane is built outside the timer —
// precompilation cost is the price paid at bundle-load time, the flip
// is what the router pays at fault time. The paper's argument needs
// flip to be far below recompute; BENCH snapshots track the ratio.
func BenchmarkFailover(b *testing.B) {
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := topology.NewMesh(8, 8)
	// Node classes only: the link classes stay uncovered, giving the
	// recompute sub-benchmark a same-cost fallback path.
	bundle, err := failover.BuildBundle(art, g, []string{"node"})
	if err != nil {
		b.Fatal(err)
	}
	newPlane := func(b *testing.B, sw *reconfig.Swapper) *failover.Plane {
		p, err := failover.NewPlane(bundle, g, failover.PlaneOptions{Lanes: 1})
		if err != nil {
			b.Fatal(err)
		}
		p.Bind(failover.ForSwapper(sw))
		return p
	}
	initial, err := reconfig.NewEngine(art, g)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("flip", func(b *testing.B) {
		b.ReportAllocs()
		sw := reconfig.NewSwapper(initial)
		plane := newPlane(b, sw)
		classes := plane.Classes()
		idx := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if idx == len(classes) {
				// Backups are single-use; rebuild the plane off-clock.
				b.StopTimer()
				plane = newPlane(b, sw)
				idx = 0
				b.StartTimer()
			}
			if !plane.OnFault(classes[idx].Set()) {
				b.Fatal("covered class did not flip")
			}
			idx++
		}
	})

	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		sw := reconfig.NewSwapper(initial)
		plane := newPlane(b, sw)
		// Single-link faults: same blast radius as a node class, but
		// uncovered by the node-only bundle, so every event takes the
		// live-recompute fallback.
		links := topology.Links(g)
		faults := make([]*fault.Set, len(links))
		for i, l := range links {
			f := fault.NewSet()
			f.FailLink(l.A, l.B)
			faults[i] = f
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if plane.OnFault(faults[i%len(faults)]) {
				b.Fatal("uncovered fault claimed a flip")
			}
		}
	})
}

// BenchmarkFleetDecision measures the fleet decision path of
// internal/fleet: a memoization hit (one cache probe) against the
// uncached path (shard mutex, engine table walk, latency histogram).
// The cache exists to make repeated decisions one probe — BENCH
// snapshots track the hit/uncached ratio, and each sub-benchmark also
// reports sampled p50/p999 wall-clock per decision (2000 individually
// timed calls, outside the ns/op loop so the sampling overhead never
// distorts the headline number).
func BenchmarkFleetDecision(b *testing.B) {
	g := topology.NewMesh(16, 16)
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		b.Fatal(err)
	}
	f := fault.NewSet()
	f.FailNode(g.Node(7, 7))
	f.FailNode(g.Node(8, 8))

	// A working set of distinct requests: wide enough to exercise the
	// cache's sharded map, small enough to stay fully resident.
	rng := rand.New(rand.NewSource(1))
	reqs := make([]reconfig.DecisionRequest, 256)
	for i := range reqs {
		src := rng.Intn(g.Nodes())
		dst := rng.Intn(g.Nodes())
		for dst == src {
			dst = rng.Intn(g.Nodes())
		}
		reqs[i] = reconfig.DecisionRequest{
			Node: src, InPort: routing.InjectionPort,
			Src: src, Dst: dst, Length: 8,
		}
	}

	run := func(b *testing.B, cacheEntries int) {
		reg, err := fleet.NewRegistry(art, g, fleet.RegistryOptions{Shards: 1, CacheEntries: cacheEntries})
		if err != nil {
			b.Fatal(err)
		}
		reg.UpdateFaults(f)
		buf := make([]routing.Candidate, 0, 8)
		// Warm: every request decided once, so the cached variant runs
		// at a 100% hit rate inside the timer.
		for i := range reqs {
			if buf, _, err = reg.Decide(&reqs[i], buf[:0]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, _, err = reg.Decide(&reqs[i%len(reqs)], buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Sampled percentiles: individually timed decisions, reported in
		// nanoseconds. The per-sample clock reads cost the same on both
		// variants, so the sampled p50/p999 stay comparable even though
		// they sit above the pure-loop ns/op.
		const samples = 2000
		lat := make([]float64, samples)
		for i := 0; i < samples; i++ {
			t0 := time.Now()
			buf, _, _ = reg.Decide(&reqs[i%len(reqs)], buf[:0])
			lat[i] = float64(time.Since(t0).Nanoseconds())
		}
		sort.Float64s(lat)
		b.ReportMetric(metrics.Quantile(lat, 0.50), "p50-ns")
		b.ReportMetric(metrics.Quantile(lat, 0.999), "p999-ns")
	}

	b.Run("hit", func(b *testing.B) { run(b, 1<<16) })
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
}
