#!/bin/sh
# ci.sh — the repository's gate, in dependency order:
#   1. go vet     static checks
#   2. go build   everything compiles
#   3. go test -race   full suite under the race detector (the trace
#      subsystem's one-recorder-per-job discipline is only proven here)
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ci.sh: all green"
