#!/bin/sh
# ci.sh — the repository's gate, in dependency order:
#   1. go vet     static checks
#   2. go build   everything compiles
#   3. go test -race   full suite under the race detector (the trace
#      subsystem's one-recorder-per-job discipline is only proven here)
#   4. (opt-in) bench regression gate: set BENCH_BASELINE to a
#      committed snapshot, e.g. BENCH_BASELINE=BENCH_2026-08-06.json
#      ./ci.sh, to re-run the benchmarks and fail on a >20% ns/op
#      regression (cmd/benchjson -baseline).
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

if [ -n "${BENCH_BASELINE:-}" ]; then
	echo "== benchjson -baseline $BENCH_BASELINE"
	go run ./cmd/benchjson -baseline "$BENCH_BASELINE"
fi

echo "== ci.sh: all green"
