#!/bin/sh
# ci.sh — the repository's gate, in dependency order:
#   1. go vet     static checks
#   2. go build   everything compiles
#   3. go test -race   full suite under the race detector (the trace
#      subsystem's one-recorder-per-job discipline is only proven here)
#   4. coverage floor: statement coverage of internal/... must stay
#      >= COVER_FLOOR (baseline was 84.1% when the gate was added)
#   5. campaign smoke (under -race, parallel stepping): 25 randomized
#      fault-injection scenarios per algorithm family must pass every
#      conformance oracle while each simulation steps on the parallel
#      engine (-step-workers 2), proving the worker pool race-clean
#      end to end
#   6. routerd smoke (under -race): the decision service serves 1k
#      batched decisions while the table artifact is hot-reloaded
#      mid-load; zero failed decisions and an advanced epoch required
#   7. fleet smoke (under -race): 3 in-process shard-owning replicas
#      answer 1k+ scattered decisions bit-identically to a single-node
#      reference across a hot push/canary/promote/rollback cycle, with
#      zero canary divergence and verified memoization hits
#   8. serial-vs-parallel equivalence gate: the differential tests
#      that require bit-identical statistics between Workers=0 and
#      Workers>=2 across faults, hot swaps and both rule families
#   9. failover smoke (under -race): every enumerated fault class of
#      both families must resolve to a backup flip whose decisions
#      equal a from-scratch recompute, and a failover-enabled campaign
#      (25 scenarios per family) must be statistics-identical to the
#      plain runs with the predicted flip/recompute counters
#  10. mesh64x64 smoke (under -race): the large-topology regime the
#      arena/active-set engine exists for — one ftsim run on the
#      serial engine and one on -workers 2 must print byte-identical
#      statistics (the equivalence gate at 4096 nodes)
#  11. (opt-in) bench regression gate: set BENCH_BASELINE to a
#      committed snapshot, e.g. BENCH_BASELINE=BENCH_2026-08-06.json
#      ./ci.sh, to re-run the benchmarks and fail on a >20% ns/op or
#      bytes/op regression (cmd/benchjson -baseline). Set
#      BENCH_FLEET_BASELINE=BENCH_2026-08-09-fleet.json to gate the
#      fleet decision path (memoization hit vs uncached) the same way.
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

COVER_FLOOR="${COVER_FLOOR:-80.0}"
echo "== coverage floor ${COVER_FLOOR}%"
go test -coverprofile=cover.out ./internal/... >/dev/null
total=$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
rm -f cover.out
echo "   total statement coverage: ${total}%"
awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
	echo "ci.sh: coverage ${total}% below floor ${COVER_FLOOR}%" >&2
	exit 1
}

echo "== campaign smoke (25 scenarios per family, parallel stepping, -race)"
go run -race ./cmd/campaign -scenarios 25 -seed 1 -algo nafta -step-workers 2
go run -race ./cmd/campaign -scenarios 25 -seed 1 -algo routec -step-workers 2
# The maze sweep rotates topologies (mesh, torus, irregular) and allows
# partitioning fault patterns; the guaranteed-delivery oracle requires
# every drop to carry a true unreachability verdict (zero sacrifices).
go run -race ./cmd/campaign -scenarios 25 -seed 1 -algo maze -step-workers 2

echo "== routerd smoke (1k batched decisions across a hot reload, -race)"
go run -race ./cmd/routerd -smoke -requests 1000 -batch 32

echo "== fleet smoke (3 replicas, scatter/gather vs single-node, canary+rollback, -race)"
go run -race ./cmd/fleetload -smoke

echo "== serial-vs-parallel equivalence gate"
go test -count=1 -run 'TestParallelMatchesSerial|TestCampaignParallelStepDifferential' \
	./internal/network/ ./internal/campaign/

echo "== failover smoke (flip-vs-recompute equivalence per fault class, -race)"
go test -race -count=1 -run 'TestFailoverFlipMatchesRecompute' ./internal/failover/
go run -race ./cmd/campaign -scenarios 25 -seed 1 -algo nafta -failover
go run -race ./cmd/campaign -scenarios 25 -seed 1 -algo routec -failover

echo "== mesh64x64 smoke (serial vs -workers 2 equivalence, -race)"
big_args="-topo mesh64x64 -alg nafta -rate 0.02 -length 8 -warmup 200 -measure 800 -seed 7"
# shellcheck disable=SC2086 # big_args is a flag list on purpose
big_serial=$(go run -race ./cmd/ftsim $big_args -workers 0)
# shellcheck disable=SC2086
big_par=$(go run -race ./cmd/ftsim $big_args -workers 2)
if [ "$big_serial" != "$big_par" ]; then
	echo "ci.sh: mesh64x64 serial and -workers 2 statistics differ" >&2
	printf '--- serial ---\n%s\n--- workers 2 ---\n%s\n' "$big_serial" "$big_par" >&2
	exit 1
fi
echo "   serial and -workers 2 statistics identical at 4096 nodes"

if [ -n "${BENCH_BASELINE:-}" ]; then
	echo "== benchjson -baseline $BENCH_BASELINE"
	go run ./cmd/benchjson -baseline "$BENCH_BASELINE"
fi

if [ -n "${BENCH_FLEET_BASELINE:-}" ]; then
	echo "== benchjson -baseline $BENCH_FLEET_BASELINE (fleet decision path)"
	go run ./cmd/benchjson -bench BenchmarkFleetDecision -benchtime 20000x \
		-baseline "$BENCH_FLEET_BASELINE"
fi

echo "== ci.sh: all green"
