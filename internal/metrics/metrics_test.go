package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{2, 4, 6} {
		a.Add(v)
	}
	if a.N() != 3 || a.Mean() != 4 || a.Min() != 2 || a.Max() != 6 {
		t.Fatalf("accumulator wrong: %+v", a)
	}
	want := math.Sqrt((4 + 0 + 4) / 3.0)
	if math.Abs(a.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %f, want %f", a.StdDev(), want)
	}
	var empty Accumulator
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty accumulator should be zero")
	}
}

// Property: mean is always within [min, max].
func TestAccumulatorMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var a Accumulator
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid float64 overflow in sum of squares
			}
			a.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []float64{1, 12, 23, 23, 49, 120} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bin(0) != 1 || h.Bin(1) != 1 || h.Bin(2) != 2 || h.Bin(4) != 1 {
		t.Fatal("bin counts wrong")
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if p := h.Percentile(0.5); p != 30 {
		t.Fatalf("p50 = %f, want 30", p)
	}
	if p := h.Percentile(1.0); !math.IsInf(p, 1) {
		t.Fatalf("p100 should be +Inf with overflow, got %f", p)
	}
	h2 := NewHistogram(1, 4)
	h2.Add(-5)
	if h2.Bin(0) != 1 {
		t.Fatal("negative value should clamp to bin 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Demo", "name", "size", "ft")
	tb.AddRow("beta", 1024.0, "*")
	tb.AddRow("alpha", 64.0, "")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "name") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
	if !strings.Contains(s, "1024") {
		t.Fatalf("float should render without decimals:\n%s", s)
	}
	tb.SortByColumn(0)
	if tb.Cell(0, 0) != "alpha" {
		t.Fatal("string sort failed")
	}
	tb.SortByColumn(1)
	if tb.Cell(0, 1) != "64" {
		t.Fatal("numeric sort failed")
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,size,ft\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// Empty histogram: every percentile is 0.
	h := NewHistogram(10, 4)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}

	// Single sample: the whole distribution sits in one bin, so every
	// positive percentile reports that bin's upper edge.
	h = NewHistogram(10, 4)
	h.Add(25)
	for _, p := range []float64{0.01, 0.5, 1} {
		if got := h.Percentile(p); got != 30 {
			t.Errorf("single-sample Percentile(%v) = %v, want 30", p, got)
		}
	}
	// p = 0 is the distribution's lower bound, not a bin edge.
	if got := h.Percentile(0); got != 0 {
		t.Errorf("Percentile(0) = %v, want 0", got)
	}
	if got := h.Percentile(-0.5); got != 0 {
		t.Errorf("Percentile(-0.5) = %v, want 0", got)
	}
	// p beyond 1 clamps to the maximum, it does not overshoot to +Inf.
	if got := h.Percentile(1.5); got != 30 {
		t.Errorf("Percentile(1.5) = %v, want 30", got)
	}

	// All observations in the overflow bin: any percentile is +Inf.
	h = NewHistogram(10, 4)
	h.Add(1000)
	h.Add(2000)
	if got := h.Percentile(0.5); !math.IsInf(got, 1) {
		t.Errorf("all-overflow Percentile(0.5) = %v, want +Inf", got)
	}
	if h.Overflow() != 2 || h.Total() != 2 {
		t.Errorf("overflow=%d total=%d", h.Overflow(), h.Total())
	}
	// ... but p = 0 still reports the lower bound.
	if got := h.Percentile(0); got != 0 {
		t.Errorf("all-overflow Percentile(0) = %v, want 0", got)
	}
}

// The p999 tail must resolve a 1-in-1000 outlier: 999 fast samples and
// one slow one put p99 in the fast bin but p999 in the outlier's bin.
func TestPercentileP999Tail(t *testing.T) {
	h := NewHistogram(1, 2000)
	for i := 0; i < 999; i++ {
		h.Add(0.5) // bin 0, upper edge 1
	}
	h.Add(1500.5) // bin 1500, upper edge 1501
	if got := h.Percentile(0.99); got != 1 {
		t.Errorf("p99 = %v, want 1 (fast bin edge)", got)
	}
	if got := h.Percentile(0.999); got != 1 {
		t.Errorf("p999 = %v, want 1 (outlier is sample 1000 of 1000)", got)
	}
	// One more outlier tips the 0.999 quantile into the slow bin.
	h.Add(1500.5)
	if got := h.Percentile(0.999); got != 1501 {
		t.Errorf("p999 after second outlier = %v, want 1501", got)
	}
	// Beyond-range samples land in overflow, so p999 can report +Inf
	// while p50 stays finite.
	h.Add(1e9)
	h.Add(1e9)
	h.Add(1e9)
	if got := h.Percentile(0.5); got != 1 {
		t.Errorf("p50 with overflow tail = %v, want 1", got)
	}
	if got := h.Percentile(0.999); !math.IsInf(got, 1) {
		t.Errorf("p999 with overflow tail = %v, want +Inf", got)
	}
}

// Merge must be exactly equivalent to having recorded every sample
// into one histogram — fleetload's cross-worker aggregation depends on
// the merged percentiles matching a single-writer run.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(10, 5)
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	for i, v := range []float64{1, 12, 23, 23, 49, 120, -3, 7, 95, 200} {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() || a.Overflow() != whole.Overflow() {
		t.Fatalf("merged total=%d overflow=%d, want %d/%d", a.Total(), a.Overflow(), whole.Total(), whole.Overflow())
	}
	for i := 0; i < 5; i++ {
		if a.Bin(i) != whole.Bin(i) {
			t.Fatalf("merged bin %d = %d, want %d", i, a.Bin(i), whole.Bin(i))
		}
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 0.999} {
		if got, want := a.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("merged Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	// b is untouched by the merge.
	if b.Total() != 5 {
		t.Fatalf("source histogram mutated: total %d", b.Total())
	}
}

func TestHistogramMergeEdges(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Add(15)

	// Merging nil or an empty histogram (even a mis-shaped empty one)
	// is a no-op, not an error: an idle worker contributes nothing.
	if err := h.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := h.Merge(NewHistogram(99, 1)); err != nil {
		t.Fatalf("empty mis-shaped merge: %v", err)
	}
	if h.Total() != 1 {
		t.Fatalf("no-op merges changed total to %d", h.Total())
	}

	// A non-empty shape mismatch is an error and must not partially
	// apply.
	wrong := NewHistogram(5, 4)
	wrong.Add(3)
	if err := h.Merge(wrong); err == nil {
		t.Fatal("bin-width mismatch accepted")
	}
	wrongLen := NewHistogram(10, 8)
	wrongLen.Add(3)
	if err := h.Merge(wrongLen); err == nil {
		t.Fatal("bin-count mismatch accepted")
	}
	if h.Total() != 1 || h.Bin(0) != 0 {
		t.Fatalf("failed merge mutated target: total=%d bin0=%d", h.Total(), h.Bin(0))
	}

	// Negative samples were clamped into bin 0 at Add time; a merge
	// carries the clamped counts, it does not re-clamp or drop them.
	neg := NewHistogram(10, 4)
	neg.Add(-5)
	neg.Add(-0.5)
	if err := h.Merge(neg); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 || h.Bin(0) != 2 {
		t.Fatalf("negative-sample merge: total=%d bin0=%d, want 3/2", h.Total(), h.Bin(0))
	}
}

// Negative observations clamp into the first bin rather than panicking
// or skewing the total.
func TestHistogramNegativeSamples(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Add(-5)
	h.Add(-0.001)
	if h.Total() != 2 || h.Bin(0) != 2 {
		t.Fatalf("total=%d bin0=%d, want both 2", h.Total(), h.Bin(0))
	}
	if got := h.Percentile(0.5); got != 10 {
		t.Fatalf("negative-sample p50 = %v, want first bin edge 10", got)
	}
}
