// Package metrics provides the small statistics toolkit used by the
// evaluation harness: streaming mean/min/max accumulators, fixed-bin
// histograms and labelled result tables rendered as aligned text (the
// format cmd/tables uses to regenerate the paper's tables).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator collects streaming summary statistics.
type Accumulator struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
	a.sumSq += v * v
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the arithmetic mean (0 when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram is a fixed-width-bin histogram with overflow bin.
type Histogram struct {
	binWidth float64
	bins     []int64
	overflow int64
	total    int64
}

// NewHistogram builds a histogram of `bins` bins of the given width
// starting at zero.
func NewHistogram(binWidth float64, bins int) *Histogram {
	if binWidth <= 0 || bins <= 0 {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{binWidth: binWidth, bins: make([]int64, bins)}
}

// Add records one observation (negative values clamp to bin 0).
func (h *Histogram) Add(v float64) {
	h.total++
	if v < 0 {
		v = 0
	}
	i := int(v / h.binWidth)
	if i >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[i]++
}

// Merge folds o's counts into h. The two histograms must have the
// same shape (bin width and bin count) — fleetload merges per-worker
// latency histograms recorded lock-free into one fleet-wide
// distribution, and a shape mismatch would silently shift every
// percentile, so it is an error rather than a best-effort rebin. A nil
// or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if o.binWidth != h.binWidth || len(o.bins) != len(h.bins) {
		return fmt.Errorf("metrics: merging histogram of %d bins width %g into %d bins width %g",
			len(o.bins), o.binWidth, len(h.bins), h.binWidth)
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	return nil
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// Overflow returns the count beyond the last bin.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Percentile returns an upper bound for the p-quantile (0<p<=1) using
// bin upper edges; the overflow bin returns +Inf.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(h.total)))
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return float64(i+1) * h.binWidth
		}
	}
	return math.Inf(1)
}

// Table is a labelled result table rendered as aligned text.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// SortByColumn sorts rows by the given column (string order unless all
// cells parse as numbers).
func (t *Table) SortByColumn(col int) {
	numeric := true
	for _, r := range t.rows {
		if _, err := fmt.Sscanf(r[col], "%f", new(float64)); err != nil {
			numeric = false
			break
		}
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		if numeric {
			var a, b float64
			fmt.Sscanf(t.rows[i][col], "%f", &a)
			fmt.Sscanf(t.rows[j][col], "%f", &b)
			return a < b
		}
		return t.rows[i][col] < t.rows[j][col]
	})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hd := range t.header {
		widths[i] = len(hd)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Quantile returns the p-quantile (0 <= p <= 1) of a sorted sample
// using nearest-rank; it returns 0 for an empty sample.
func Quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
