package core
