package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rules"
)

func TestFoldPremises(t *testing.T) {
	src := `
VARIABLE x IN 0 TO 7
ON f(k IN 0 TO 3)
  IF 1 = 1 AND k = 2 THEN x <- 1;
  IF 2 < 1 THEN x <- 2;
  IF NOT (3 = 3) OR k = 0 THEN x <- 3;
  IF 1 = 1 THEN x <- 4;
END f;
`
	c := mustAnalyze(t, src)
	opt, rep, err := Optimize(c, "f", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Rule 1 (2<1) is constant false -> dead; everything else stays.
	if len(rep.Removed) != 1 || rep.Removed[0] != 1 {
		t.Fatalf("removed = %v, want [1]", rep.Removed)
	}
	if len(opt.Rules) != 3 {
		t.Fatalf("kept %d rules", len(opt.Rules))
	}
	if rep.FoldedPremises < 2 {
		t.Fatalf("folded = %d", rep.FoldedPremises)
	}
	// Rule 0's premise folded to the bare comparison.
	if got := rules.ExprString(opt.Rules[0].Premise); got != "(k = 2)" {
		t.Fatalf("rule 0 premise = %s", got)
	}
}

func TestDeadRuleEliminationShadowed(t *testing.T) {
	// Rule 1 is completely shadowed by rule 0; the parameter k is
	// direct-indexed (it appears only in equality atoms), so the
	// compiled table proves the shadowing.
	src := `
VARIABLE x IN 0 TO 7
ON f(k IN 0 TO 3)
  IF k = 1 OR k = 2 THEN x <- 1;
  IF k = 2 THEN x <- 2;
  IF k = 0 THEN x <- 3;
END f;
`
	c := mustAnalyze(t, src)
	opt, rep, err := Optimize(c, "f", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != 1 {
		t.Fatalf("removed = %v, want the shadowed rule [1]", rep.Removed)
	}
	if len(opt.Rules) != 2 {
		t.Fatalf("kept %d rules", len(opt.Rules))
	}
}

func TestDeadRuleEliminationIsConservativeOnFeatures(t *testing.T) {
	// With a magnitude atom in play the premises are abstracted to
	// independent feature bits; the shadowing of rule 1 by rule 0 is
	// then invisible (an inconsistent bit combination selects it), so
	// the sound-but-conservative optimiser must keep it.
	src := `
VARIABLE x IN 0 TO 7
ON f(k IN 0 TO 3)
  IF k < 3 THEN x <- 1;
  IF k = 1 THEN x <- 2;
END f;
`
	c := mustAnalyze(t, src)
	_, rep, err := Optimize(c, "f", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 0 {
		t.Fatalf("conservative pass must keep feature-shadowed rules, removed %v", rep.Removed)
	}
}

// The central guarantee: the optimised base behaves identically on
// every state — same fired original rule, same effects.
func TestOptimizePreservesBehaviour(t *testing.T) {
	src := `
CONSTANT states = {idle, busy, broken}
VARIABLE x IN 0 TO 15
VARIABLE mode IN states
INPUT load (4) IN 0 TO 7
ON f(k IN 0 TO 3)
  IF 1 = 1 AND mode = broken THEN x <- 0;
  IF 0 = 1 AND mode = idle THEN x <- 1;
  IF load(k) > 5 AND (2 > 1 OR k = 0) THEN x <- 2, mode <- busy;
  IF load(k) > 5 THEN x <- 9;
  IF k = 2 OR NOT (1 = 1) THEN x <- 3;
  IF mode = idle THEN x <- 4;
END f;
`
	c := mustAnalyze(t, src)
	opt, rep, err := Optimize(c, "f", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) == 0 {
		t.Fatal("expected dead rules (rule 1 is constant-false, rule 3 shadowed)")
	}
	// Build the optimised program and re-analyse.
	optProg := &rules.Program{Consts: c.Prog.Consts, Vars: c.Prog.Vars,
		Inputs: c.Prog.Inputs, RuleBases: []*rules.RuleBase{opt}}
	oc, err := rules.Analyze(optProg)
	if err != nil {
		t.Fatal(err)
	}
	states := c.SymbolSets["states"]
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		inputs := map[string]rules.Value{}
		for i := 0; i < 4; i++ {
			inputs[fmt.Sprintf("load/%d", i)] = rules.Value{T: rules.IntType(0, 7), I: int64(rng.Intn(8))}
		}
		mk := func(ch *rules.Checked) *Machine {
			m := NewMachine(ch, machineInputs(inputs))
			m.Set("x", nil, rules.Value{T: rules.IntType(0, 15), I: int64(rng.Intn(16))})
			m.Set("mode", nil, rules.SymVal(states, int64(rng.Intn(3))))
			return m
		}
		arg := rules.IntVal(int64(rng.Intn(4)))
		m1 := mk(c)
		m2 := mk(oc)
		// Keep machine states in sync (same random draws): re-seed by
		// copying from m1.
		for _, v := range []string{"x", "mode"} {
			val, _ := m1.Get(v)
			m2.Set(v, nil, val)
		}
		i1, _, err := m1.InvokeNow("f", arg)
		if err != nil {
			t.Fatal(err)
		}
		i2, _, err := m2.InvokeNow("f", arg)
		if err != nil {
			t.Fatal(err)
		}
		// Map the optimised index back to the original.
		want := -1
		if i2 >= 0 {
			want = rep.KeptIndex[i2]
		}
		if i1 != want {
			t.Fatalf("trial %d: original fired %d, optimised fired original-%d", trial, i1, want)
		}
		// And the resulting states agree.
		for _, v := range []string{"x", "mode"} {
			v1, _ := m1.Get(v)
			v2, _ := m2.Get(v)
			if !v1.Equal(v2) {
				t.Fatalf("trial %d: state %s diverged: %v vs %v", trial, v, v1, v2)
			}
		}
	}
}

func TestOptimizeProgramOnNAFTAFigure4(t *testing.T) {
	c := mustAnalyze(t, figure4)
	oc, reports, err := OptimizeProgram(c, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	// The hand-written base has no dead rules: nothing removed, and
	// the optimised program recompiles to the same table size.
	if len(reports[0].Removed) != 0 {
		t.Fatalf("figure4 should have no dead rules, removed %v", reports[0].Removed)
	}
	cb1, err := CompileBase(c, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cb2, err := CompileBase(oc, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cb1.Entries != cb2.Entries || cb1.Width != cb2.Width {
		t.Fatalf("optimisation changed the table: %s vs %s", cb1.Dim(), cb2.Dim())
	}
}
