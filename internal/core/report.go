package core

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// The shared table-emission path of the command-line tools: cmd/rulec
// and cmd/tables both render rule-base cost reports, and the golden
// tests pin this exact output so the human-readable dump cannot drift
// silently from the serialized artifact contents.

// CostReportTable renders a ProgramCost in the rule compiler's report
// format (name, rules, size, bits, FCFBs), one row per rule base in
// program order.
func CostReportTable(title string, pc *ProgramCost) *metrics.Table {
	tb := metrics.NewTable(title, "name", "rules", "size", "bits", "FCFBs")
	for i := range pc.Bases {
		b := &pc.Bases[i]
		tb.AddRow(b.Name, b.Rules, b.Dim(), b.MemoryBits, b.FCFBString())
	}
	return tb
}

// WriteCostReport writes the full compiler report for pc: the cost
// table followed by the aggregate table bits and the register
// inventory.
func WriteCostReport(w io.Writer, title string, pc *ProgramCost) {
	fmt.Fprintln(w, CostReportTable(title, pc).String())
	fmt.Fprintf(w, "total rule-table bits: %d\n", pc.TotalTableBits)
	fmt.Fprintf(w, "registers: %d holding %d bits\n", pc.Registers.Registers, pc.Registers.Bits)
	for _, v := range pc.Registers.PerVar {
		fmt.Fprintf(w, "  %-24s %4d bits\n", v.Name, v.Bits)
	}
}
