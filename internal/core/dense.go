package core

// The compiled decision fast path. CompileBase already turns a rule
// base into a completely filled table (the paper's ARON argument), but
// LookupRule still computes the table index through the reference
// expression evaluator: string-keyed scope maps, rules.Value boxing and
// an Env round-trip per signal occurrence. That is fine for the cost
// model and the oracle, and far too slow for the simulator's per-flit
// hot path.
//
// This file adds the missing off-line step: the index computation
// itself is compiled. Every INPUT signal of the program gets a fixed
// integer slot (InputLayout); a decision fills a flat InputVector once
// (no maps, no fmt key building); and each field/atom of a
// CompiledBase is translated into a closure tree over that vector
// (quantifiers become loops, subbase calls are inlined, constant sets
// fold to bitmasks). DenseTable.Lookup is then: evaluate a handful of
// int64 closures, combine them into the flat feature index, and read
// the pre-filled table — no allocation, no interface dispatch per
// signal.
//
// The fast path is deliberately partial: premises that read VARIABLEs
// or that the compiler cannot fold report a compile error, and a
// lookup that leaves the supported regime (unset input, out-of-range
// index, subbase with no applicable rule) reports ok=false — callers
// fall back to the interpreted reference path, which remains the
// behavioural oracle (differential and fuzz tests assert equality).

import (
	"fmt"
	"sort"

	"repro/internal/rules"
)

// ---------------------------------------------------------------------
// Input layout and vector.

// inputSlot is the resolved placement of one INPUT signal: a
// contiguous run of slots, one per index combination, in row-major
// order (matching Machine.slot).
type inputSlot struct {
	info    *rules.SignalInfo
	off     int
	strides []int // per index dimension, in slots
}

// InputLayout assigns every INPUT signal of an analysed program a
// fixed range of integer slots, resolved once at compile time. It is
// shared by all DenseTables of the program and by the InputVectors the
// adapters fill per decision.
type InputLayout struct {
	checked *rules.Checked
	byName  map[string]*inputSlot
	total   int
}

// NewInputLayout builds the slot assignment for all INPUT signals of
// c. Slot order is deterministic (signal names sorted).
func NewInputLayout(c *rules.Checked) *InputLayout {
	l := &InputLayout{checked: c, byName: make(map[string]*inputSlot)}
	var names []string
	for name, info := range c.Signals {
		if info.IsInput {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		info := c.Signals[name]
		s := &inputSlot{info: info, off: l.total}
		s.strides = make([]int, len(info.Index))
		stride := 1
		for i := len(info.Index) - 1; i >= 0; i-- {
			s.strides[i] = stride
			stride *= int(info.Index[i].DomainSize())
		}
		l.byName[name] = s
		l.total += int(info.Slots())
	}
	return l
}

// NumSlots returns the total number of input slots.
func (l *InputLayout) NumSlots() int { return l.total }

// SlotOf resolves an input signal element to its flat slot. Index
// arguments are zero-based ordinals (symbol ordinal, or integer value
// minus the index domain's lower bound), matching the convention of
// rules.Env.ReadInput. Adapters call this once at construction and
// keep the returned ints.
func (l *InputLayout) SlotOf(name string, idx ...int64) (int, error) {
	s, ok := l.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown input %s", name)
	}
	if len(idx) != len(s.strides) {
		return 0, fmt.Errorf("core: input %s needs %d indices, got %d", name, len(s.strides), len(idx))
	}
	slot := s.off
	for i, ix := range idx {
		if ix < 0 || ix >= s.info.Index[i].DomainSize() {
			return 0, fmt.Errorf("core: input %s index %d out of range: %d", name, i, ix)
		}
		slot += int(ix) * s.strides[i]
	}
	return slot, nil
}

// InputVector is the flat per-decision input store of the fast path:
// one int64 per input slot (raw value for integer signals, ordinal for
// symbol signals). A generation counter distinguishes slots set for
// the current decision from stale ones, so clearing between decisions
// is O(1). An InputVector is not safe for concurrent use — one per
// algorithm instance, like the adapters themselves.
type InputVector struct {
	layout *InputLayout
	vals   []int64
	gens   []uint32
	gen    uint32
}

// NewInputVector allocates a vector for layout l with all slots unset.
func NewInputVector(l *InputLayout) *InputVector {
	return &InputVector{
		layout: l,
		vals:   make([]int64, l.NumSlots()),
		gens:   make([]uint32, l.NumSlots()),
		gen:    1,
	}
}

// Begin starts a new decision: every slot becomes unset, without
// touching the backing arrays.
func (iv *InputVector) Begin() {
	iv.gen++
	if iv.gen == 0 { // wrapped: erase stale generations once
		for i := range iv.gens {
			iv.gens[i] = 0
		}
		iv.gen = 1
	}
}

// Set stores the value of one slot for the current decision.
func (iv *InputVector) Set(slot int, v int64) {
	iv.vals[slot] = v
	iv.gens[slot] = iv.gen
}

// SetBool stores 0/1.
func (iv *InputVector) SetBool(slot int, b bool) {
	v := int64(0)
	if b {
		v = 1
	}
	iv.Set(slot, v)
}

// get reads a slot; ok is false when the slot was not set for the
// current decision.
func (iv *InputVector) get(slot int) (int64, bool) {
	if iv.gens[slot] != iv.gen {
		return 0, false
	}
	return iv.vals[slot], true
}

// Provider adapts the vector to the interpreter's InputProvider
// interface, replacing the map[string]Value + fmt.Sprintf providers of
// the adapters: the residual slow path reads the same slots the fast
// path does. Index arguments follow the zero-based Env convention.
func (iv *InputVector) Provider() InputProvider {
	l := iv.layout
	return func(name string, idx []int64) (rules.Value, error) {
		s, ok := l.byName[name]
		if !ok {
			return rules.Value{}, fmt.Errorf("core: unknown input %s", name)
		}
		if len(idx) != len(s.strides) {
			return rules.Value{}, fmt.Errorf("core: input %s needs %d indices, got %d", name, len(s.strides), len(idx))
		}
		slot := s.off
		for i, ix := range idx {
			if ix < 0 || ix >= s.info.Index[i].DomainSize() {
				return rules.Value{}, fmt.Errorf("core: input %s index %d out of range: %d", name, i, ix)
			}
			slot += int(ix) * s.strides[i]
		}
		v, set := iv.get(slot)
		if !set {
			return rules.Value{}, fmt.Errorf("core: unset input %s", name)
		}
		return rules.Value{T: s.info.Domain, I: v}, nil
	}
}

// ---------------------------------------------------------------------
// Compiled expressions.

// denseRT is the per-lookup runtime state of a DenseTable: the scratch
// scope (base parameters, inlined subbase parameters, quantifier
// variables — slots assigned at compile time) and the failure flag the
// compiled closures raise when a lookup leaves the supported regime.
type denseRT struct {
	sc     []int64
	failed bool
}

// dexpr is one compiled expression: int64 values follow the fast-path
// convention (raw value for integers, ordinal for symbols, 0/1 for
// booleans).
type dexpr func(iv *InputVector, rt *denseRT) int64

type denseCompiler struct {
	c      *rules.Checked
	layout *InputLayout
	scope  map[string]int // name -> scratch slot
	depth  int
	max    int
}

func (dc *denseCompiler) bind(name string) (slot int, restore func()) {
	slot = dc.depth
	dc.depth++
	if dc.depth > dc.max {
		dc.max = dc.depth
	}
	prev, had := dc.scope[name]
	dc.scope[name] = slot
	return slot, func() {
		dc.depth--
		if had {
			dc.scope[name] = prev
		} else {
			delete(dc.scope, name)
		}
	}
}

func (dc *denseCompiler) compile(e rules.Expr) (dexpr, error) {
	switch n := e.(type) {
	case *rules.NumLit:
		v := n.Val
		return func(*InputVector, *denseRT) int64 { return v }, nil
	case *rules.Ident:
		if slot, ok := dc.scope[n.Name]; ok {
			return func(_ *InputVector, rt *denseRT) int64 { return rt.sc[slot] }, nil
		}
		if v, ok := dc.c.Symbols[n.Name]; ok {
			ord := v.I
			return func(*InputVector, *denseRT) int64 { return ord }, nil
		}
		if v, ok := dc.c.NumConsts[n.Name]; ok {
			return func(*InputVector, *denseRT) int64 { return v }, nil
		}
		if info, ok := dc.c.Signals[n.Name]; ok {
			if !info.IsInput {
				return nil, fmt.Errorf("premise reads variable %s", n.Name)
			}
			slot, err := dc.layout.SlotOf(n.Name)
			if err != nil {
				return nil, err
			}
			return func(iv *InputVector, rt *denseRT) int64 {
				v, ok := iv.get(slot)
				if !ok {
					rt.failed = true
				}
				return v
			}, nil
		}
		return nil, fmt.Errorf("unknown identifier %s", n.Name)
	case *rules.Call:
		return dc.compileCall(n)
	case *rules.Unary:
		x, err := dc.compile(n.X)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			return func(iv *InputVector, rt *denseRT) int64 {
				if x(iv, rt) != 0 {
					return 0
				}
				return 1
			}, nil
		}
		return func(iv *InputVector, rt *denseRT) int64 { return -x(iv, rt) }, nil
	case *rules.Binary:
		return dc.compileBinary(n)
	case *rules.SetLit:
		return nil, fmt.Errorf("set literal outside constant IN right-hand side")
	case *rules.Quant:
		return dc.compileQuant(n)
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}

func (dc *denseCompiler) compileCall(n *rules.Call) (dexpr, error) {
	if info, ok := dc.c.Signals[n.Name]; ok {
		if !info.IsInput {
			return nil, fmt.Errorf("premise reads variable %s", n.Name)
		}
		s := dc.layout.byName[n.Name]
		if len(n.Args) != len(s.strides) {
			return nil, fmt.Errorf("input %s needs %d indices, got %d", n.Name, len(s.strides), len(n.Args))
		}
		idxs := make([]dexpr, len(n.Args))
		los := make([]int64, len(n.Args))
		sizes := make([]int64, len(n.Args))
		for i, a := range n.Args {
			ix, err := dc.compile(a)
			if err != nil {
				return nil, err
			}
			idxs[i] = ix
			if info.Index[i].Kind == rules.TInt {
				los[i] = info.Index[i].Lo
			}
			sizes[i] = info.Index[i].DomainSize()
		}
		off, strides := s.off, s.strides
		// The common case — one index dimension — gets a dedicated
		// closure without the inner loop.
		if len(idxs) == 1 {
			ix, lo, size := idxs[0], los[0], sizes[0]
			return func(iv *InputVector, rt *denseRT) int64 {
				ord := ix(iv, rt) - lo
				if ord < 0 || ord >= size {
					rt.failed = true
					return 0
				}
				v, ok := iv.get(off + int(ord))
				if !ok {
					rt.failed = true
				}
				return v
			}, nil
		}
		return func(iv *InputVector, rt *denseRT) int64 {
			slot := off
			for i, ix := range idxs {
				ord := ix(iv, rt) - los[i]
				if ord < 0 || ord >= sizes[i] {
					rt.failed = true
					return 0
				}
				slot += int(ord) * strides[i]
			}
			v, ok := iv.get(slot)
			if !ok {
				rt.failed = true
			}
			return v
		}, nil
	}
	if sub, ok := dc.c.Subs[n.Name]; ok {
		return dc.compileSub(n, sub)
	}
	// Builtins over compiled arguments.
	args := make([]dexpr, len(n.Args))
	for i, a := range n.Args {
		x, err := dc.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = x
	}
	switch n.Name {
	case "ABS":
		x := args[0]
		return func(iv *InputVector, rt *denseRT) int64 {
			v := x(iv, rt)
			if v < 0 {
				v = -v
			}
			return v
		}, nil
	case "MIN":
		x, y := args[0], args[1]
		return func(iv *InputVector, rt *denseRT) int64 {
			a, b := x(iv, rt), y(iv, rt)
			if a <= b {
				return a
			}
			return b
		}, nil
	case "MAX", "MEET": // MEET: sets are declared best-first, meet = max ordinal
		x, y := args[0], args[1]
		return func(iv *InputVector, rt *denseRT) int64 {
			a, b := x(iv, rt), y(iv, rt)
			if a >= b {
				return a
			}
			return b
		}, nil
	case "DIST":
		x, y := args[0], args[1]
		return func(iv *InputVector, rt *denseRT) int64 {
			d := x(iv, rt) - y(iv, rt)
			if d < 0 {
				d = -d
			}
			return d
		}, nil
	}
	return nil, fmt.Errorf("unknown function %s", n.Name)
}

// compileSub inlines a subbase invocation: arguments are evaluated
// into the subbase's parameter slots, then the first rule whose
// premise holds yields its RETURN value. Subbases cannot recurse
// (declaration order is enforced by the analyser), so inlining
// terminates.
func (dc *denseCompiler) compileSub(n *rules.Call, sub *rules.BaseInfo) (dexpr, error) {
	if len(n.Args) != len(sub.Params) {
		return nil, fmt.Errorf("subbase %s needs %d args, got %d", n.Name, len(sub.Params), len(n.Args))
	}
	args := make([]dexpr, len(n.Args))
	for i, a := range n.Args {
		x, err := dc.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = x
	}
	slots := make([]int, len(sub.Params))
	restores := make([]func(), len(sub.Params))
	for i, p := range sub.Params {
		slots[i], restores[i] = dc.bind(p.Name)
	}
	defer func() {
		for i := len(restores) - 1; i >= 0; i-- {
			restores[i]()
		}
	}()
	type subRule struct{ prem, val dexpr }
	compiled := make([]subRule, len(sub.RB.Rules))
	for i, r := range sub.RB.Rules {
		prem, err := dc.compile(r.Premise)
		if err != nil {
			return nil, fmt.Errorf("subbase %s rule %d: %w", n.Name, i, err)
		}
		ret, ok := r.Cmds[0].(*rules.Return)
		if !ok {
			return nil, fmt.Errorf("subbase %s rule %d: no RETURN", n.Name, i)
		}
		val, err := dc.compile(ret.Val)
		if err != nil {
			return nil, fmt.Errorf("subbase %s rule %d: %w", n.Name, i, err)
		}
		compiled[i] = subRule{prem, val}
	}
	return func(iv *InputVector, rt *denseRT) int64 {
		for i := range args {
			rt.sc[slots[i]] = args[i](iv, rt)
		}
		for _, r := range compiled {
			if r.prem(iv, rt) != 0 {
				return r.val(iv, rt)
			}
		}
		rt.failed = true // no rule applies: interpreter territory
		return 0
	}, nil
}

func (dc *denseCompiler) compileBinary(n *rules.Binary) (dexpr, error) {
	if n.Op == "IN" {
		// The right-hand side must fold to a constant set; premise
		// sets are literal by construction ({neg, zero}, {0,2},
		// {1}+{3}).
		y, err := evalPartial(dc.c, n.Y, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("IN right-hand side not constant: %w", err)
		}
		if y.T == nil || y.T.Kind != rules.TSet {
			return nil, fmt.Errorf("IN right-hand side is not a set")
		}
		var lo int64
		if y.T.Elem.Kind == rules.TInt {
			lo = y.T.Elem.Lo
		}
		mask := y.Mask
		x, err := dc.compile(n.X)
		if err != nil {
			return nil, err
		}
		return func(iv *InputVector, rt *denseRT) int64 {
			ord := x(iv, rt) - lo
			if ord < 0 || ord >= 64 {
				rt.failed = true
				return 0
			}
			if mask&(1<<uint(ord)) != 0 {
				return 1
			}
			return 0
		}, nil
	}
	x, err := dc.compile(n.X)
	if err != nil {
		return nil, err
	}
	y, err := dc.compile(n.Y)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) == 0 {
				return 0
			}
			return y(iv, rt)
		}, nil
	case "OR":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) != 0 {
				return 1
			}
			return y(iv, rt)
		}, nil
	case "=":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) == y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case "<>":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) != y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case "<":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) < y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case "<=":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) <= y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case ">":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) > y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case ">=":
		return func(iv *InputVector, rt *denseRT) int64 {
			if x(iv, rt) >= y(iv, rt) {
				return 1
			}
			return 0
		}, nil
	case "+":
		return func(iv *InputVector, rt *denseRT) int64 { return x(iv, rt) + y(iv, rt) }, nil
	case "-":
		return func(iv *InputVector, rt *denseRT) int64 { return x(iv, rt) - y(iv, rt) }, nil
	case "*":
		return func(iv *InputVector, rt *denseRT) int64 { return x(iv, rt) * y(iv, rt) }, nil
	}
	return nil, fmt.Errorf("unhandled operator %s", n.Op)
}

func (dc *denseCompiler) compileQuant(n *rules.Quant) (dexpr, error) {
	dt, err := dc.c.ResolveDomain(n.Domain)
	if err != nil {
		return nil, err
	}
	var lo, hi int64 // iteration in fast-path value convention
	switch dt.Kind {
	case rules.TInt:
		lo, hi = dt.Lo, dt.Hi
	case rules.TSym:
		lo, hi = 0, dt.DomainSize()-1
	default:
		return nil, fmt.Errorf("quantifier over %s domain", dt)
	}
	slot, restore := dc.bind(n.Var)
	defer restore()
	body, err := dc.compile(n.Body)
	if err != nil {
		return nil, err
	}
	exists := n.Kind == "EXISTS"
	return func(iv *InputVector, rt *denseRT) int64 {
		for v := lo; v <= hi; v++ {
			rt.sc[slot] = v
			b := body(iv, rt) != 0
			if exists && b {
				return 1
			}
			if !exists && !b {
				return 0
			}
		}
		if exists {
			return 0
		}
		return 1
	}, nil
}

// ---------------------------------------------------------------------
// Dense table.

// denseReturn is the folded RETURN value of one rule; ok is false when
// the rule's conclusion is not a compile-time constant (the caller
// fires the rule through the interpreter instead).
type denseReturn struct {
	val rules.Value
	ok  bool
}

// DenseTable is the compiled decision fast path of one rule base: the
// pre-filled conclusion table of its CompiledBase plus allocation-free
// index computation over an InputVector, mapping a flat integer
// feature index directly to (fired rule, RETURN value).
//
// A DenseTable carries mutable per-lookup scratch state and is
// therefore not safe for concurrent use, mirroring Machine.
type DenseTable struct {
	cb     *CompiledBase
	layout *InputLayout
	fields []dexpr
	fLo    []int64 // per field: ordinal bias (TInt lower bound)
	fSize  []int64 // per field: domain size
	atoms  []dexpr
	ret    []denseReturn
	rt     denseRT
	// invalid is set by Invalidate when the table's epoch is retired;
	// any further lookup is a use-after-swap bug and panics.
	invalid bool
}

// CompileDense builds the fast path for a compiled base over layout.
// It fails when a premise leaves the pure input regime (variable
// reads, non-constant sets, unknown functions); callers treat a
// failure as "no fast path" and stay on the interpreter.
func (cb *CompiledBase) CompileDense(layout *InputLayout) (*DenseTable, error) {
	if cb.Table == nil {
		return nil, fmt.Errorf("core: %s: compiled without table (SizeOnly)", cb.Base)
	}
	dc := &denseCompiler{c: cb.checked, layout: layout, scope: map[string]int{}}
	dt := &DenseTable{cb: cb, layout: layout}
	// Base parameters occupy the first scratch slots, in declaration
	// order; Lookup copies the caller's args there.
	for _, p := range cb.params {
		_, _ = dc.bind(p.Name) // stays bound for the whole compile
	}
	for _, f := range cb.Fields {
		x, err := dc.compile(f.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: %s field %s: %w", cb.Base, f.Key, err)
		}
		dt.fields = append(dt.fields, x)
		var lo int64
		if f.Type.Kind == rules.TInt {
			lo = f.Type.Lo
		}
		dt.fLo = append(dt.fLo, lo)
		dt.fSize = append(dt.fSize, f.Type.DomainSize())
	}
	for _, a := range cb.Atoms {
		x, err := dc.compile(a.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: %s atom %s: %w", cb.Base, a.Key, err)
		}
		dt.atoms = append(dt.atoms, x)
	}
	// Fold each rule's RETURN value; rules without a constant RETURN
	// keep ok=false and are fired through the interpreter.
	bi := cb.checked.Bases[cb.Base]
	dt.ret = make([]denseReturn, len(bi.RB.Rules))
	for i, r := range bi.RB.Rules {
		for _, cmd := range r.Cmds {
			ret, ok := cmd.(*rules.Return)
			if !ok {
				continue
			}
			if v, err := evalPartial(cb.checked, ret.Val, nil, nil); err == nil {
				dt.ret[i] = denseReturn{val: v, ok: true}
			}
			break
		}
	}
	dt.rt.sc = make([]int64, dc.max)
	return dt, nil
}

// Params returns the number of event arguments Lookup expects.
func (dt *DenseTable) Params() int { return len(dt.cb.params) }

// Clone returns an independent lookup handle over the same compiled
// table: the immutable parts — compiled field/atom closures, the
// conclusion table, the folded RETURN values and the layout binding —
// are shared, while the per-lookup scratch (the runtime register file)
// is duplicated. Clones exist so per-worker decision contexts of the
// parallel stepper can look up concurrently; each clone carries its
// own invalid flag, so retiring an engine must invalidate the clones
// it handed out alongside the original (the rule adapters track this).
func (dt *DenseTable) Clone() *DenseTable {
	cp := *dt
	cp.rt = denseRT{sc: make([]int64, len(dt.rt.sc))}
	return &cp
}

// Invalidate marks the table as retired: every further Lookup panics.
// Online reconfiguration calls this when an engine's epoch is retired,
// so a stale table (or a stale InputVector wired to it) from a swapped-
// out engine fails loudly instead of silently routing on dead state.
func (dt *DenseTable) Invalidate() { dt.invalid = true }

// Invalidated reports whether Invalidate was called.
func (dt *DenseTable) Invalidated() bool { return dt.invalid }

// Lookup computes the table index from the input vector and returns
// the selected rule (RuleCount means no rule applies). Arguments are
// the event parameters in fast-path convention (raw integer value or
// symbol ordinal). ok=false means the lookup left the supported
// regime — the caller must repeat the decision on the interpreted
// reference path. Lookup performs no allocation.
//
// Lookup panics when the table was invalidated or when iv belongs to a
// different InputLayout than the table was compiled against: both are
// wiring bugs of table hot-swap (an adapter kept using state from a
// retired epoch) and must not degrade into silently wrong decisions.
func (dt *DenseTable) Lookup(iv *InputVector, args ...int64) (rule int, ok bool) {
	if dt.invalid {
		panic(fmt.Sprintf("core: %s: Lookup on invalidated dense table (engine epoch was retired)", dt.cb.Base))
	}
	if iv.layout != dt.layout {
		panic(fmt.Sprintf("core: %s: InputVector belongs to a different InputLayout than this table (stale vector across a table swap)", dt.cb.Base))
	}
	if len(args) != len(dt.cb.params) {
		return 0, false
	}
	rt := &dt.rt
	rt.failed = false
	copy(rt.sc, args)
	idx := int64(0)
	for i, f := range dt.fields {
		ord := f(iv, rt) - dt.fLo[i]
		if ord < 0 || ord >= dt.fSize[i] {
			return 0, false
		}
		idx = idx*dt.fSize[i] + ord
	}
	for _, a := range dt.atoms {
		bit := int64(0)
		if a(iv, rt) != 0 {
			bit = 1
		}
		idx = idx*2 + bit
	}
	if rt.failed {
		return 0, false
	}
	return int(dt.cb.Table[idx]), true
}

// Return yields the folded constant RETURN value of a fired rule;
// ok=false means the rule's conclusion must run on the interpreter
// (non-constant RETURN, or no RETURN at all).
func (dt *DenseTable) Return(rule int) (rules.Value, bool) {
	if rule < 0 || rule >= len(dt.ret) {
		return rules.Value{}, false
	}
	r := dt.ret[rule]
	return r.val, r.ok
}
