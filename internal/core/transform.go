package core

import (
	"fmt"

	"repro/internal/rules"
)

// Rule-base transformations (the paper, Section 4.2: "a rule-based
// specification is semantically well based allowing the application of
// formal methods to routing algorithms, e.g. transformations"). Two
// semantics-preserving passes are provided:
//
//  1. constant folding of premises (1 = 1 -> true, AND/OR/NOT over
//     constants, comparisons of literals);
//  2. dead-rule elimination through the compiled table: a rule that no
//     table entry selects can never fire — it is either shadowed by
//     earlier rules or has an unsatisfiable premise. Because every
//     reachable machine state maps to some table entry, removing such
//     rules is sound; the direction is conservative (rules selected
//     only by feature-bit combinations that no real state produces are
//     kept).
//
// Both passes preserve the observable behaviour of the rule base:
// differential tests check that the optimised base fires a rule with
// identical effects on random states.

// TransformReport describes what Optimize changed.
type TransformReport struct {
	Base string
	// Removed lists the original indices of eliminated rules.
	Removed []int
	// FoldedPremises counts rules whose premise shrank by folding.
	FoldedPremises int
	// KeptIndex maps new rule index -> original rule index.
	KeptIndex []int
}

// Optimize returns a semantically equivalent copy of the rule base
// with constant-folded premises and dead rules removed, plus a report.
// The original program is not modified.
func Optimize(c *rules.Checked, base string, opts CompileOptions) (*rules.RuleBase, *TransformReport, error) {
	bi, ok := c.Bases[base]
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown rule base %s", base)
	}
	rep := &TransformReport{Base: base}

	// Pass 1: fold premises.
	folded := make([]*rules.Rule, len(bi.RB.Rules))
	for i, r := range bi.RB.Rules {
		p, changed := foldExpr(c, r.Premise)
		if changed {
			rep.FoldedPremises++
		}
		folded[i] = &rules.Rule{Premise: p, Cmds: r.Cmds, Line: r.Line}
	}

	// Pass 2: compile and mark selected rules. The fold may have
	// produced constant-false premises; the table never selects those
	// either way.
	cb, err := CompileBase(c, base, opts)
	if err != nil {
		return nil, nil, err
	}
	selected := make([]bool, len(folded))
	for _, e := range cb.Table {
		if int(e) < len(selected) {
			selected[e] = true
		}
	}

	out := &rules.RuleBase{Event: bi.RB.Event, Params: bi.RB.Params, Line: bi.RB.Line}
	for i, r := range folded {
		if !selected[i] {
			rep.Removed = append(rep.Removed, i)
			continue
		}
		out.Rules = append(out.Rules, r)
		rep.KeptIndex = append(rep.KeptIndex, i)
	}
	return out, rep, nil
}

// foldExpr performs bottom-up constant folding; it returns the
// (possibly shared) folded expression and whether anything changed.
func foldExpr(c *rules.Checked, e rules.Expr) (rules.Expr, bool) {
	switch n := e.(type) {
	case *rules.Unary:
		x, ch := foldExpr(c, n.X)
		if n.Op == "NOT" {
			if b, ok := constBool(x); ok {
				return boolLit(!b, n.Line), true
			}
		}
		if n.Op == "-" {
			if lit, ok := x.(*rules.NumLit); ok {
				return &rules.NumLit{Val: -lit.Val, Line: n.Line}, true
			}
		}
		if ch {
			return &rules.Unary{Op: n.Op, X: x, Line: n.Line}, true
		}
		return n, false
	case *rules.Binary:
		x, chx := foldExpr(c, n.X)
		y, chy := foldExpr(c, n.Y)
		out := &rules.Binary{Op: n.Op, X: x, Y: y, Line: n.Line}
		switch n.Op {
		case "AND":
			if b, ok := constBool(x); ok {
				if !b {
					return boolLit(false, n.Line), true
				}
				return y, true
			}
			if b, ok := constBool(y); ok {
				if !b {
					return boolLit(false, n.Line), true
				}
				return x, true
			}
		case "OR":
			if b, ok := constBool(x); ok {
				if b {
					return boolLit(true, n.Line), true
				}
				return y, true
			}
			if b, ok := constBool(y); ok {
				if b {
					return boolLit(true, n.Line), true
				}
				return x, true
			}
		case "=", "<>", "<", "<=", ">", ">=":
			xv, okx := constInt(c, x)
			yv, oky := constInt(c, y)
			if okx && oky {
				var b bool
				switch n.Op {
				case "=":
					b = xv == yv
				case "<>":
					b = xv != yv
				case "<":
					b = xv < yv
				case "<=":
					b = xv <= yv
				case ">":
					b = xv > yv
				case ">=":
					b = xv >= yv
				}
				return boolLit(b, n.Line), true
			}
		case "+", "-", "*":
			xv, okx := x.(*rules.NumLit)
			yv, oky := y.(*rules.NumLit)
			if okx && oky {
				var v int64
				switch n.Op {
				case "+":
					v = xv.Val + yv.Val
				case "-":
					v = xv.Val - yv.Val
				case "*":
					v = xv.Val * yv.Val
				}
				return &rules.NumLit{Val: v, Line: n.Line}, true
			}
		}
		if chx || chy {
			return out, true
		}
		return n, false
	case *rules.Quant:
		body, ch := foldExpr(c, n.Body)
		if b, ok := constBool(body); ok {
			// EXISTS/FORALL over a non-empty finite domain of a
			// constant body is the body itself.
			return boolLit(b, n.Line), true
		}
		if ch {
			return &rules.Quant{Kind: n.Kind, Var: n.Var, Domain: n.Domain, Body: body, Line: n.Line}, true
		}
		return n, false
	default:
		return e, false
	}
}

// boolLit encodes a constant boolean premise as the canonical
// comparisons 1 = 1 / 1 = 0 (the language has no boolean literals).
func boolLit(b bool, line int) rules.Expr {
	rhs := int64(0)
	if b {
		rhs = 1
	}
	return &rules.Binary{Op: "=",
		X:    &rules.NumLit{Val: 1, Line: line},
		Y:    &rules.NumLit{Val: rhs, Line: line},
		Line: line,
	}
}

// constBool recognises the canonical constant comparisons produced by
// boolLit and any comparison of two literals.
func constBool(e rules.Expr) (bool, bool) {
	n, ok := e.(*rules.Binary)
	if !ok || n.Op != "=" {
		return false, false
	}
	x, okx := n.X.(*rules.NumLit)
	y, oky := n.Y.(*rules.NumLit)
	if !okx || !oky {
		return false, false
	}
	return x.Val == y.Val, true
}

// constInt evaluates literals, numeric constants and symbol ordinals.
func constInt(c *rules.Checked, e rules.Expr) (int64, bool) {
	switch n := e.(type) {
	case *rules.NumLit:
		return n.Val, true
	case *rules.Ident:
		if v, ok := c.NumConsts[n.Name]; ok {
			return v, true
		}
		if v, ok := c.Symbols[n.Name]; ok {
			return v.I, true
		}
	}
	return 0, false
}

// OptimizeProgram runs Optimize over every rule base and returns a new
// analysed program plus the per-base reports. The new program shares
// declarations with the original.
func OptimizeProgram(c *rules.Checked, opts CompileOptions) (*rules.Checked, []*TransformReport, error) {
	next := &rules.Program{
		Consts:   c.Prog.Consts,
		Vars:     c.Prog.Vars,
		Inputs:   c.Prog.Inputs,
		Subbases: c.Prog.Subbases,
	}
	var reports []*TransformReport
	for _, rb := range c.Prog.RuleBases {
		opt, rep, err := Optimize(c, rb.Event, opts)
		if err != nil {
			return nil, nil, err
		}
		next.RuleBases = append(next.RuleBases, opt)
		reports = append(reports, rep)
	}
	checked, err := rules.Analyze(next)
	if err != nil {
		return nil, nil, fmt.Errorf("core: optimised program fails re-analysis: %w", err)
	}
	return checked, reports, nil
}
