package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rules"
)

const figure4 = `
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT dirs = 4

VARIABLE number_unsafe IN 0 TO dirs
VARIABLE number_faulty IN 0 TO dirs
VARIABLE state IN fault_states
VARIABLE neighb_state (dirs) IN fault_states

INPUT new_state (dirs) IN fault_states

ON update_state(dir IN 0 TO 3)
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0 THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     number_unsafe <- number_unsafe + 1;
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe AND number_unsafe = 2 THEN
     state <- ounsafe,
     number_unsafe <- number_unsafe + 1,
     FORALL i IN 0 TO 3: !send_newmessage(i, ounsafe),
     neighb_state(dir) <- new_state(dir);
  IF new_state(dir) IN {faulty, lfault} AND number_faulty > 0 THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1;
END update_state;
`

func mustAnalyze(t *testing.T, src string) *rules.Checked {
	t.Helper()
	prog, err := rules.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := rules.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return c
}

// machineInputs builds an InputProvider over a mutable map.
func machineInputs(vals map[string]rules.Value) InputProvider {
	return func(name string, idx []int64) (rules.Value, error) {
		k := name
		for _, i := range idx {
			k += fmt.Sprintf("/%d", i)
		}
		v, ok := vals[k]
		if !ok {
			return rules.Value{}, fmt.Errorf("unset input %s", k)
		}
		return v, nil
	}
}

func TestMachineFigure4EventCascade(t *testing.T) {
	c := mustAnalyze(t, figure4)
	inputs := map[string]rules.Value{}
	m := NewMachine(c, machineInputs(inputs))
	m.Tracing = true

	// Variables reset to lowest values.
	v, err := m.Get("number_faulty")
	if err != nil || v.I != 0 {
		t.Fatalf("initial number_faulty: %v %v", v, err)
	}

	// Neighbour 2 reports faulty: rule 0 fires.
	inputs["new_state/2"] = c.Symbols["faulty"]
	idx, _, err := m.InvokeNow("update_state", rules.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("rule %d fired, want 0", idx)
	}
	v, _ = m.Get("number_faulty")
	if v.I != 1 {
		t.Fatalf("number_faulty = %d, want 1", v.I)
	}
	v, _ = m.Get("neighb_state", 2)
	if !v.Equal(c.Symbols["faulty"]) {
		t.Fatalf("neighb_state(2) = %v", v)
	}

	// Second faulty neighbour: rule 2 (the >0 variant).
	inputs["new_state/1"] = c.Symbols["lfault"]
	idx, _, err = m.InvokeNow("update_state", rules.IntVal(1))
	if err != nil || idx != 2 {
		t.Fatalf("idx=%d err=%v, want rule 2", idx, err)
	}

	// Drive number_unsafe to 2 and trigger the propagation rule.
	if err := m.Set("number_unsafe", nil, rules.Value{T: rules.IntType(0, 4), I: 2}); err != nil {
		t.Fatal(err)
	}
	inputs["new_state/3"] = c.Symbols["ounsafe"]
	idx, _, err = m.InvokeNow("update_state", rules.IntVal(3))
	if err != nil || idx != 1 {
		t.Fatalf("idx=%d err=%v, want rule 1", idx, err)
	}
	v, _ = m.Get("state")
	if !v.Equal(c.Symbols["ounsafe"]) {
		t.Fatalf("state = %v, want ounsafe", v)
	}
	// The wave: four external send_newmessage events.
	ext := m.TakeExternal()
	if len(ext) != 4 {
		t.Fatalf("external events: %d, want 4", len(ext))
	}
	for i, ev := range ext {
		if ev.Name != "send_newmessage" || ev.Args[0].I != int64(i) {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	if m.Invocations != 3 {
		t.Fatalf("invocations = %d", m.Invocations)
	}
	if len(m.Trace) != 3 {
		t.Fatalf("trace length = %d", len(m.Trace))
	}
}

func TestMachineInternalEventQueue(t *testing.T) {
	src := `
VARIABLE hits IN 0 TO 7
ON ping(k IN 0 TO 3)
  IF k > 0 THEN hits <- hits + 1, !ping(k - 1);
  IF k = 0 THEN hits <- hits + 1;
END ping;
`
	c := mustAnalyze(t, src)
	m := NewMachine(c, nil)
	m.Post("ping", rules.IntVal(3))
	steps, err := m.RunToQuiescence(100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Fatalf("steps = %d, want 4", steps)
	}
	v, _ := m.Get("hits")
	if v.I != 4 {
		t.Fatalf("hits = %d, want 4", v.I)
	}
}

func TestMachineCascadeGuard(t *testing.T) {
	src := `
VARIABLE x IN 0 TO 1
ON loop()
  IF 1 = 1 THEN !loop();
END loop;
`
	c := mustAnalyze(t, src)
	m := NewMachine(c, nil)
	m.Post("loop")
	if _, err := m.RunToQuiescence(50); err == nil {
		t.Fatal("infinite cascade should be detected")
	}
}

func TestCompileFigure4Shape(t *testing.T) {
	c := mustAnalyze(t, figure4)
	cb, err := CompileBase(c, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// new_state(dir) appears in >= 2 eq/membership atoms: direct
	// field of 5 values.
	if len(cb.Fields) != 1 || cb.Fields[0].Key != "new_state(dir)" {
		t.Fatalf("fields = %+v", cb.Fields)
	}
	// Residual feature atoms: number_faulty=0, state=safe,
	// number_unsafe=2, number_faulty>0.
	if len(cb.Atoms) != 4 {
		keys := make([]string, len(cb.Atoms))
		for i, a := range cb.Atoms {
			keys[i] = a.Key
		}
		t.Fatalf("atoms = %v", keys)
	}
	if cb.Entries != 5*16 {
		t.Fatalf("entries = %d, want 80", cb.Entries)
	}
	if cb.Width != 2 { // 3 rules + none -> 2 bits, no RETURN
		t.Fatalf("width = %d", cb.Width)
	}
	if cb.MemoryBits() != 160 {
		t.Fatalf("memory = %d bits", cb.MemoryBits())
	}
	if !strings.Contains(cb.Dim(), "80 x 2") {
		t.Fatalf("dim = %s", cb.Dim())
	}
}

// The key correctness property of the ARON compiler: for every
// reachable machine state, table lookup selects exactly the rule the
// reference evaluator fires.
func TestCompiledTableMatchesReference(t *testing.T) {
	c := mustAnalyze(t, figure4)
	cb, err := CompileBase(c, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fs := c.SymbolSets["fault_states"]
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		inputs := map[string]rules.Value{}
		for d := 0; d < 4; d++ {
			inputs[fmt.Sprintf("new_state/%d", d)] = rules.SymVal(fs, int64(rng.Intn(5)))
		}
		m := NewMachine(c, machineInputs(inputs))
		m.Set("number_faulty", nil, rules.Value{T: rules.IntType(0, 4), I: int64(rng.Intn(5))})
		m.Set("number_unsafe", nil, rules.Value{T: rules.IntType(0, 4), I: int64(rng.Intn(5))})
		m.Set("state", nil, rules.SymVal(fs, int64(rng.Intn(5))))
		dir := rules.IntVal(int64(rng.Intn(4)))

		wantIdx, _, err := c.Invoke("update_state", []rules.Value{dir}, m)
		if err != nil {
			t.Fatal(err)
		}
		gotIdx, err := cb.LookupRule([]rules.Value{dir}, m)
		if err != nil {
			t.Fatal(err)
		}
		want := wantIdx
		if want == -1 {
			want = cb.RuleCount
		}
		if gotIdx != want {
			t.Fatalf("trial %d: table picked rule %d, reference %d", trial, gotIdx, wantIdx)
		}
	}
}

func TestCompileQuantifierAsFeature(t *testing.T) {
	src := `
INPUT free (4) IN 0 TO 1
ON anyfree()
  IF EXISTS i IN 0 TO 3: free(i) = 1 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END anyfree;
`
	c := mustAnalyze(t, src)
	cb, err := CompileBase(c, "anyfree", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The whole quantified predicate is one FCFB-computed feature
	// bit: a 2-entry table, exactly the compression the ARON premise
	// processing is for.
	if len(cb.Atoms) != 1 || len(cb.Fields) != 0 {
		t.Fatalf("fields=%d atoms=%d", len(cb.Fields), len(cb.Atoms))
	}
	if cb.Entries != 2 {
		t.Fatalf("entries = %d", cb.Entries)
	}
	// Differential check across all input combinations.
	for mask := 0; mask < 16; mask++ {
		inputs := map[string]rules.Value{}
		for i := 0; i < 4; i++ {
			bit := int64(0)
			if mask&(1<<i) != 0 {
				bit = 1
			}
			inputs[fmt.Sprintf("free/%d", i)] = rules.Value{T: rules.IntType(0, 1), I: bit}
		}
		m := NewMachine(c, machineInputs(inputs))
		got, err := cb.LookupRule(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if mask != 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("mask %04b: rule %d, want %d", mask, got, want)
		}
	}
}

func TestCompileNoFieldsAblation(t *testing.T) {
	c := mustAnalyze(t, figure4)
	with, err := CompileBase(c, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompileBase(c, "update_state", CompileOptions{NoFields: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Fields) != 0 {
		t.Fatal("NoFields should suppress direct indexing")
	}
	// Without direct indexing the four membership atoms on
	// new_state(dir) become feature bits: different table shape.
	if without.Entries == with.Entries {
		t.Fatalf("ablation should change the table size (%d vs %d)", without.Entries, with.Entries)
	}
}

func TestCompileTableSizeGuard(t *testing.T) {
	// 8 independent 16-valued signals in equality atoms would need
	// 16^8 entries: the compiler must refuse.
	var b strings.Builder
	b.WriteString("ON big(")
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "p%d IN 0 TO 15", i)
	}
	b.WriteString(")\n  IF ")
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "(p%d = 1 OR p%d = 2)", i, i)
	}
	b.WriteString(" THEN RETURN(1);\n  IF 1 = 1 THEN RETURN(0);\nEND big;\n")
	c := mustAnalyze(t, b.String())
	if _, err := CompileBase(c, "big", CompileOptions{}); err == nil {
		t.Fatal("expected table-size guard to trip")
	}
}

func TestFCFBInventoryFigure4(t *testing.T) {
	c := mustAnalyze(t, figure4)
	rb := c.Prog.RuleBaseByName("update_state")
	fcfbs := InventoryFCFBs(c, rb)
	kinds := map[string]int{}
	for _, f := range fcfbs {
		kinds[f.Kind] = f.Count
	}
	// The paper's update_state row: "conditional increment, compare
	// with constant". Our transcription needs incrementers (two
	// counters), a zero check (number_faulty = 0), a
	// compare-with-constant (number_unsafe = 2, number_faulty > 0,
	// state = safe) and membership tests.
	if kinds[FcfbIncrement] != 2 {
		t.Fatalf("incrementers = %d, want 2 (%v)", kinds[FcfbIncrement], kinds)
	}
	if kinds[FcfbZeroCheck] != 1 {
		t.Fatalf("zero checks = %d (%v)", kinds[FcfbZeroCheck], kinds)
	}
	if kinds[FcfbMembership] == 0 {
		t.Fatalf("membership tests missing (%v)", kinds)
	}
	if kinds[FcfbCmpConst] == 0 {
		t.Fatalf("compare-with-constant missing (%v)", kinds)
	}
}

func TestFCFBMinimumSelectionIdiom(t *testing.T) {
	src := `
INPUT mean_queue (4) IN 0 TO 15
INPUT outchan (4) IN 0 TO 1
ON select_dir()
  IF EXISTS i IN 0 TO 3: (outchan(i) = 1 AND
     (FORALL j IN 0 TO 3: mean_queue(i) <= mean_queue(j))) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END select_dir;
`
	c := mustAnalyze(t, src)
	fcfbs := InventoryFCFBs(c, c.Prog.RuleBaseByName("select_dir"))
	found := false
	for _, f := range fcfbs {
		if f.Kind == FcfbMinSelect {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimum-selection idiom not detected: %+v", fcfbs)
	}
}

func TestFCFBSetAndLatticeOps(t *testing.T) {
	src := `
CONSTANT states = {good, bad}
VARIABLE s IN states
VARIABLE pool IN 0 TO 7
ON mix(x IN states, a IN 0 TO 7, b IN 0 TO 7)
  IF MEET(s, x) = bad AND DIST(a, b) > 2 AND ABS(a - b) < 7 AND MIN(a,b) = 0 AND a IN {1,2} + {3} THEN
     pool <- a + b;
  IF 1 = 1 THEN pool <- 0;
END mix;
`
	c := mustAnalyze(t, src)
	fcfbs := InventoryFCFBs(c, c.Prog.RuleBaseByName("mix"))
	want := map[string]bool{
		FcfbLattice: true, FcfbDistance: true, FcfbAbs: true,
		FcfbMinSelect: true, FcfbSetUnion: true, FcfbMembership: true,
		FcfbAdder: true,
	}
	got := map[string]bool{}
	for _, f := range fcfbs {
		got[f.Kind] = true
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing FCFB %q in %+v", k, fcfbs)
		}
	}
}

func TestRegisterUsage(t *testing.T) {
	c := mustAnalyze(t, figure4)
	rc := RegisterUsage(c)
	// number_unsafe (3) + number_faulty (3) + state (3) +
	// neighb_state (4*3=12) = 21 bits in 4 registers.
	if rc.Registers != 4 {
		t.Fatalf("registers = %d, want 4", rc.Registers)
	}
	if rc.Bits != 21 {
		t.Fatalf("register bits = %d, want 21", rc.Bits)
	}
}

func TestAnalyzeCostAggregates(t *testing.T) {
	c := mustAnalyze(t, figure4)
	pc, err := AnalyzeCost(c, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Bases) != 1 || pc.Bases[0].Name != "update_state" {
		t.Fatalf("bases: %+v", pc.Bases)
	}
	if pc.TotalTableBits != pc.Bases[0].MemoryBits {
		t.Fatal("total mismatch")
	}
	if pc.Registers.Bits != 21 {
		t.Fatalf("registers = %d", pc.Registers.Bits)
	}
	if s := pc.Bases[0].FCFBString(); s == "" || s == "no FCFB needed" {
		t.Fatalf("FCFB string: %q", s)
	}
}

// Subbase calls compile to single functional-unit features; the table
// must still agree with the reference evaluator.
func TestCompileWithSubbases(t *testing.T) {
	src := `
CONSTANT signs = {neg, zero, pos}
INPUT dxsign IN signs
INPUT load (4) IN 0 TO 15

SUBBASE wants_east()
  IF dxsign = pos THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END wants_east;

ON decide(invc IN 0 TO 1)
  IF wants_east() = 1 AND load(1) < 8 THEN RETURN(1);
  IF wants_east() = 1 THEN RETURN(0);
  IF 1 = 1 THEN RETURN(3);
END decide;
`
	c := mustAnalyze(t, src)
	cb, err := CompileBase(c, "decide", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// wants_east() appears in two equality atoms -> a direct field of
	// its return domain.
	foundField := false
	for _, f := range cb.Fields {
		if f.Key == "wants_east()" {
			foundField = true
		}
	}
	if !foundField {
		t.Fatalf("subbase value should be a direct field: %+v", cb.Fields)
	}
	fcfbs := InventoryFCFBs(c, c.Prog.RuleBaseByName("decide"))
	hasSub := false
	for _, f := range fcfbs {
		if f.Kind == FcfbSubbase {
			hasSub = true
		}
	}
	if !hasSub {
		t.Fatalf("subbase interpreter FCFB missing: %+v", fcfbs)
	}
	// Differential check across all relevant states.
	signs := c.SymbolSets["signs"]
	for sgn := 0; sgn < 3; sgn++ {
		for l1 := 0; l1 < 16; l1 += 3 {
			inputs := map[string]rules.Value{
				"dxsign": rules.SymVal(signs, int64(sgn)),
			}
			for i := 0; i < 4; i++ {
				inputs[fmt.Sprintf("load/%d", i)] = rules.Value{T: rules.IntType(0, 15), I: int64(l1)}
			}
			m := NewMachine(c, machineInputs(inputs))
			want, _, err := c.Invoke("decide", []rules.Value{rules.IntVal(0)}, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cb.LookupRule([]rules.Value{rules.IntVal(0)}, m)
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = cb.RuleCount
			}
			if got != want {
				t.Fatalf("sgn=%d l=%d: table %d vs reference %d", sgn, l1, got, want)
			}
		}
	}
}

// Configuration round trip: saving and loading the compiled table
// yields a functionally identical router configuration; loading it
// into a different program is rejected.
func TestConfigSaveLoadRoundTrip(t *testing.T) {
	c := mustAnalyze(t, figure4)
	cb, err := CompileBase(c, "update_state", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cb.SaveConfig(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries != cb.Entries || loaded.Width != cb.Width {
		t.Fatal("shape changed in round trip")
	}
	for i := range cb.Table {
		if cb.Table[i] != loaded.Table[i] {
			t.Fatalf("table entry %d differs", i)
		}
	}
	// The loaded configuration must make identical decisions.
	fs := c.SymbolSets["fault_states"]
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		inputs := map[string]rules.Value{}
		for d := 0; d < 4; d++ {
			inputs[fmt.Sprintf("new_state/%d", d)] = rules.SymVal(fs, int64(rng.Intn(5)))
		}
		m := NewMachine(c, machineInputs(inputs))
		m.Set("number_faulty", nil, rules.Value{T: rules.IntType(0, 4), I: int64(rng.Intn(5))})
		m.Set("number_unsafe", nil, rules.Value{T: rules.IntType(0, 4), I: int64(rng.Intn(5))})
		m.Set("state", nil, rules.SymVal(fs, int64(rng.Intn(5))))
		arg := []rules.Value{rules.IntVal(int64(rng.Intn(4)))}
		a, err1 := cb.LookupRule(arg, m)
		b, err2 := loaded.LookupRule(arg, m)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("trial %d: %d/%v vs %d/%v", trial, a, err1, b, err2)
		}
	}

	// A different program must refuse the image.
	other := mustAnalyze(t, `
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
VARIABLE number_faulty IN 0 TO 4
INPUT new_state (4) IN fault_states
ON update_state(dir IN 0 TO 3)
  IF new_state(dir) = faulty AND number_faulty = 0 THEN number_faulty <- 1;
END update_state;
`)
	buf.Reset()
	if err := cb.SaveConfig(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(other, &buf); err == nil {
		t.Fatal("loading a configuration into a different program must fail")
	}

	// SizeOnly compilations cannot be saved.
	so, err := CompileBase(c, "update_state", CompileOptions{SizeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := so.SaveConfig(&buf); err == nil {
		t.Fatal("SizeOnly save must fail")
	}
}
