package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rules"
)

// Randomized compiler verification: generate rule bases with random
// premises over a fixed signal bank, compile them, and check on random
// machine states that the table lookup selects exactly the rule the
// reference evaluator fires. This exercises atom extraction, direct
// indexing, quantifier features, conflict resolution and gap filling
// far beyond the hand-written programs.

const fuzzDecls = `
CONSTANT colors = {red, green, blue}
VARIABLE a IN 0 TO 7
VARIABLE c IN colors
INPUT q (4) IN 0 TO 7
INPUT s IN colors
`

// genPremise produces a random premise using the signal bank.
func genPremise(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		leafs := []func() string{
			func() string { return fmt.Sprintf("a %s %d", relOp(rng), rng.Intn(8)) },
			func() string { return fmt.Sprintf("q(k) %s %d", relOp(rng), rng.Intn(8)) },
			func() string { return fmt.Sprintf("q(%d) %s %d", rng.Intn(4), relOp(rng), rng.Intn(8)) },
			func() string { return "s = " + color(rng) },
			func() string { return "c = " + color(rng) },
			func() string { return fmt.Sprintf("k = %d", rng.Intn(4)) },
			func() string { return fmt.Sprintf("a < q(%d)", rng.Intn(4)) },
			func() string { return fmt.Sprintf("MIN(a, q(%d)) %s %d", rng.Intn(4), relOp(rng), rng.Intn(8)) },
			func() string { return fmt.Sprintf("k IN {%d, %d}", rng.Intn(4), rng.Intn(4)) },
			func() string { return fmt.Sprintf("s IN {%s, %s}", color(rng), color(rng)) },
			func() string {
				return fmt.Sprintf("(EXISTS i IN 0 TO 3: q(i) %s %d)", relOp(rng), rng.Intn(8))
			},
			func() string {
				return fmt.Sprintf("(FORALL i IN 0 TO 3: (q(i) %s %d OR q(i) = %d))",
					relOp(rng), rng.Intn(8), rng.Intn(8))
			},
		}
		return leafs[rng.Intn(len(leafs))]()
	}
	x := genPremise(rng, depth-1)
	y := genPremise(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return "(" + x + " AND " + y + ")"
	case 1:
		return "(" + x + " OR " + y + ")"
	default:
		return "NOT " + x
	}
}

func relOp(rng *rand.Rand) string {
	return []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)]
}

func color(rng *rand.Rand) string {
	return []string{"red", "green", "blue"}[rng.Intn(3)]
}

func TestFuzzCompiledTableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	programs := 150
	if testing.Short() {
		programs = 30
	}
	for prog := 0; prog < programs; prog++ {
		nRules := 1 + rng.Intn(5)
		var b strings.Builder
		b.WriteString(fuzzDecls)
		b.WriteString("ON f(k IN 0 TO 3)\n")
		for r := 0; r < nRules; r++ {
			fmt.Fprintf(&b, "  IF %s THEN RETURN(%d);\n", genPremise(rng, 2), r)
		}
		b.WriteString("END f;\n")
		src := b.String()

		parsed, err := rules.Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v\n%s", prog, err, src)
		}
		checked, err := rules.Analyze(parsed)
		if err != nil {
			t.Fatalf("program %d: analyze: %v\n%s", prog, err, src)
		}
		cb, err := CompileBase(checked, "f", CompileOptions{MaxEntries: 1 << 18})
		if err != nil {
			// Oversized tables are a legitimate compile refusal.
			if strings.Contains(err.Error(), "exceeds") {
				continue
			}
			t.Fatalf("program %d: compile: %v\n%s", prog, err, src)
		}
		colors := checked.SymbolSets["colors"]
		for trial := 0; trial < 60; trial++ {
			inputs := map[string]rules.Value{
				"s": rules.SymVal(colors, int64(rng.Intn(3))),
			}
			for i := 0; i < 4; i++ {
				inputs[fmt.Sprintf("q/%d", i)] = rules.Value{T: rules.IntType(0, 7), I: int64(rng.Intn(8))}
			}
			m := NewMachine(checked, machineInputs(inputs))
			m.Set("a", nil, rules.Value{T: rules.IntType(0, 7), I: int64(rng.Intn(8))})
			m.Set("c", nil, rules.SymVal(colors, int64(rng.Intn(3))))
			arg := rules.IntVal(int64(rng.Intn(4)))

			want, _, err := checked.Invoke("f", []rules.Value{arg}, m)
			if err != nil {
				t.Fatalf("program %d trial %d: reference: %v\n%s", prog, trial, err, src)
			}
			got, err := cb.LookupRule([]rules.Value{arg}, m)
			if err != nil {
				t.Fatalf("program %d trial %d: lookup: %v\n%s", prog, trial, err, src)
			}
			if want == -1 {
				want = cb.RuleCount
			}
			if got != want {
				t.Fatalf("program %d trial %d: table %d vs reference %d\n%s", prog, trial, got, want, src)
			}
		}
	}
}

// The optimiser must also survive the fuzz corpus: optimisation never
// changes which original rule fires.
func TestFuzzOptimizePreservesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	programs := 60
	if testing.Short() {
		programs = 15
	}
	for prog := 0; prog < programs; prog++ {
		nRules := 1 + rng.Intn(4)
		var b strings.Builder
		b.WriteString(fuzzDecls)
		b.WriteString("ON f(k IN 0 TO 3)\n")
		for r := 0; r < nRules; r++ {
			fmt.Fprintf(&b, "  IF %s THEN RETURN(%d);\n", genPremise(rng, 2), r)
		}
		b.WriteString("END f;\n")
		src := b.String()
		parsed, err := rules.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		checked, err := rules.Analyze(parsed)
		if err != nil {
			t.Fatal(err)
		}
		opt, rep, err := Optimize(checked, "f", CompileOptions{MaxEntries: 1 << 18})
		if err != nil {
			if strings.Contains(err.Error(), "exceeds") {
				continue
			}
			t.Fatalf("program %d: %v\n%s", prog, err, src)
		}
		optProg := &rules.Program{Consts: parsed.Consts, Vars: parsed.Vars,
			Inputs: parsed.Inputs, RuleBases: []*rules.RuleBase{opt}}
		oc, err := rules.Analyze(optProg)
		if err != nil {
			t.Fatalf("program %d: reanalyze: %v\n%s", prog, err, src)
		}
		colors := checked.SymbolSets["colors"]
		for trial := 0; trial < 40; trial++ {
			inputs := map[string]rules.Value{
				"s": rules.SymVal(colors, int64(rng.Intn(3))),
			}
			for i := 0; i < 4; i++ {
				inputs[fmt.Sprintf("q/%d", i)] = rules.Value{T: rules.IntType(0, 7), I: int64(rng.Intn(8))}
			}
			aVal := rules.Value{T: rules.IntType(0, 7), I: int64(rng.Intn(8))}
			cVal := rules.SymVal(colors, int64(rng.Intn(3)))
			arg := rules.IntVal(int64(rng.Intn(4)))

			m1 := NewMachine(checked, machineInputs(inputs))
			m1.Set("a", nil, aVal)
			m1.Set("c", nil, cVal)
			m2 := NewMachine(oc, machineInputs(inputs))
			m2.Set("a", nil, aVal)
			m2.Set("c", nil, cVal)

			i1, _, err := checked.Invoke("f", []rules.Value{arg}, m1)
			if err != nil {
				t.Fatal(err)
			}
			i2, _, err := oc.Invoke("f", []rules.Value{arg}, m2)
			if err != nil {
				t.Fatal(err)
			}
			want := -1
			if i2 >= 0 {
				want = rep.KeptIndex[i2]
			}
			if i1 != want {
				t.Fatalf("program %d trial %d: original %d vs optimised-original %d\n%s",
					prog, trial, i1, want, src)
			}
		}
	}
}
