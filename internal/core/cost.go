package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rules"
)

// FCFB is one Free Configurable Function Block requirement: a
// functional-unit kind and how many distinct instances the rule base
// configuration needs.
type FCFB struct {
	Kind  string
	Count int
}

// BaseCost is the hardware cost of one compiled rule base — the row
// format of the paper's Tables 1 and 2.
type BaseCost struct {
	Name       string
	Rules      int
	Entries    int64
	Width      int
	MemoryBits int64
	FCFBs      []FCFB
}

// Dim renders the table dimension like the paper ("1024 x 8").
func (b *BaseCost) Dim() string {
	return fmt.Sprintf("%d x %d", b.Entries, b.Width)
}

// FCFBString renders the FCFB list like the paper's tables
// ("2 x magnitude comparator, membership test").
func (b *BaseCost) FCFBString() string {
	if len(b.FCFBs) == 0 {
		return "no FCFB needed"
	}
	parts := make([]string, 0, len(b.FCFBs))
	for _, f := range b.FCFBs {
		if f.Count > 1 {
			parts = append(parts, fmt.Sprintf("%d x %s", f.Count, f.Kind))
		} else {
			parts = append(parts, f.Kind)
		}
	}
	return strings.Join(parts, ", ")
}

// RegisterCost summarises the variable storage of a program (the
// paper: "Besides the rule bases the hardware effort is determined by
// the registers needed").
type RegisterCost struct {
	Registers int   // number of VARIABLE declarations
	Bits      int64 // total register bits
	// PerVar lists each variable's contribution.
	PerVar []VarBits
}

// VarBits is one variable's register footprint.
type VarBits struct {
	Name string
	Bits int64
}

// ProgramCost aggregates a whole rule program.
type ProgramCost struct {
	Bases          []BaseCost
	TotalTableBits int64
	Registers      RegisterCost
}

// AnalyzeCost compiles every rule base of a program and produces the
// full hardware cost report.
func AnalyzeCost(c *rules.Checked, opts CompileOptions) (*ProgramCost, error) {
	pc := &ProgramCost{}
	for _, rb := range c.Prog.RuleBases {
		cb, err := CompileBase(c, rb.Event, opts)
		if err != nil {
			return nil, err
		}
		bc := BaseCost{
			Name:       rb.Event,
			Rules:      cb.RuleCount,
			Entries:    cb.Entries,
			Width:      cb.Width,
			MemoryBits: cb.MemoryBits(),
			FCFBs:      InventoryFCFBs(c, rb),
		}
		pc.Bases = append(pc.Bases, bc)
		pc.TotalTableBits += bc.MemoryBits
	}
	pc.Registers = RegisterUsage(c)
	return pc, nil
}

// RegisterUsage accounts the register bits of all declared variables.
func RegisterUsage(c *rules.Checked) RegisterCost {
	rc := RegisterCost{}
	names := make([]string, 0, len(c.Signals))
	for name, info := range c.Signals {
		if info.IsInput {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info := c.Signals[name]
		rc.Registers++
		rc.Bits += info.Bits()
		rc.PerVar = append(rc.PerVar, VarBits{Name: name, Bits: info.Bits()})
	}
	return rc
}

// FCFB kind mnemonics (matching the paper's Tables 1 and 2 wording).
const (
	FcfbMagnitude  = "magnitude comparator"
	FcfbCmpConst   = "compare with constant"
	FcfbZeroCheck  = "zero check"
	FcfbEquality   = "equality comparator"
	FcfbMembership = "membership test"
	FcfbSetUnion   = "set union"
	FcfbSetSub     = "set subtraction"
	FcfbIncrement  = "incrementer"
	FcfbDecrement  = "decrementer"
	FcfbAdder      = "adder"
	FcfbMinSelect  = "minimum selection"
	FcfbMaxSelect  = "maximum selection"
	FcfbAbs        = "absolute value"
	FcfbLattice    = "finite lattice"
	FcfbDistance   = "mesh distance computation"
	FcfbLogical    = "logical unit"
	FcfbSubbase    = "subbase interpreter"
)

// InventoryFCFBs infers the functional units a rule base needs by
// classifying the operators of its premises and conclusions (Section
// 4.3: "The FCFBs have to be able to implement all expressions
// occurring in premises and conclusions").
func InventoryFCFBs(c *rules.Checked, rb *rules.RuleBase) []FCFB {
	inv := &inventory{
		c:     c,
		kinds: map[string]map[string]bool{},
	}
	for _, r := range rb.Rules {
		inv.expr(r.Premise, nil)
		for _, cmd := range r.Cmds {
			inv.cmd(cmd)
		}
	}
	var kinds []string
	for k := range inv.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]FCFB, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, FCFB{Kind: k, Count: len(inv.kinds[k])})
	}
	return out
}

type inventory struct {
	c *rules.Checked
	// kinds maps an FCFB kind to the set of distinct operation keys
	// using it (distinct expressions share one block only if they are
	// structurally identical).
	kinds map[string]map[string]bool
}

func (inv *inventory) add(kind, key string) {
	set := inv.kinds[kind]
	if set == nil {
		set = map[string]bool{}
		inv.kinds[kind] = set
	}
	set[key] = true
}

// isConstExpr reports whether e evaluates at compile time.
func (inv *inventory) isConstExpr(e rules.Expr) bool {
	switch n := e.(type) {
	case *rules.NumLit:
		return true
	case *rules.Ident:
		if _, ok := inv.c.Symbols[n.Name]; ok {
			return true
		}
		if _, ok := inv.c.NumConsts[n.Name]; ok {
			return true
		}
		return false
	case *rules.Unary:
		return n.Op == "-" && inv.isConstExpr(n.X)
	case *rules.SetLit:
		for _, el := range n.Elems {
			if !inv.isConstExpr(el) {
				return false
			}
		}
		return true
	}
	return false
}

func isZero(e rules.Expr) bool {
	n, ok := e.(*rules.NumLit)
	return ok && n.Val == 0
}

// sameSignalCall reports whether x and y access the same indexed
// signal (the minimum-selection idiom compares f(i) with f(j)).
func sameSignalCall(x, y rules.Expr) bool {
	cx, okx := x.(*rules.Call)
	cy, oky := y.(*rules.Call)
	return okx && oky && cx.Name == cy.Name
}

// expr classifies the operators of an expression. quantVars tracks the
// enclosing quantifier variables for idiom detection.
func (inv *inventory) expr(e rules.Expr, quantVars []string) {
	switch n := e.(type) {
	case *rules.Unary:
		inv.expr(n.X, quantVars)
		if n.Op == "NOT" {
			inv.add(FcfbLogical, "NOT "+rules.ExprString(n.X))
		}
	case *rules.Quant:
		inv.expr(n.Body, append(quantVars, n.Var))
	case *rules.Binary:
		key := rules.ExprString(n)
		switch n.Op {
		case "AND", "OR":
			inv.expr(n.X, quantVars)
			inv.expr(n.Y, quantVars)
			inv.add(FcfbLogical, key)
			return
		case "<", "<=", ">", ">=":
			// The minimum-selection idiom: inside quantifiers, the
			// same signal compared against itself at different
			// indices.
			if len(quantVars) > 0 && sameSignalCall(n.X, n.Y) {
				inv.add(FcfbMinSelect, callName(n.X))
			} else if inv.isConstExpr(n.X) || inv.isConstExpr(n.Y) {
				inv.add(FcfbCmpConst, key)
			} else {
				inv.add(FcfbMagnitude, key)
			}
		case "=", "<>":
			switch {
			case isZero(n.X) || isZero(n.Y):
				inv.add(FcfbZeroCheck, key)
			case inv.isConstExpr(n.X) || inv.isConstExpr(n.Y):
				inv.add(FcfbCmpConst, key)
			default:
				inv.add(FcfbEquality, key)
			}
		case "IN":
			inv.add(FcfbMembership, key)
		case "+":
			if isSetOperand(n.X) || isSetOperand(n.Y) {
				inv.add(FcfbSetUnion, key)
			} else {
				inv.addArith(n, key)
			}
		case "-":
			if isSetOperand(n.X) || isSetOperand(n.Y) {
				inv.add(FcfbSetSub, key)
			} else {
				inv.addArith(n, key)
			}
		case "*":
			inv.add(FcfbAdder, key)
		}
		inv.expr(n.X, quantVars)
		inv.expr(n.Y, quantVars)
	case *rules.Call:
		for _, a := range n.Args {
			inv.expr(a, quantVars)
		}
		if _, isSub := inv.c.Subs[n.Name]; isSub {
			inv.add(FcfbSubbase, n.Name)
			return
		}
		switch n.Name {
		case "MIN":
			inv.add(FcfbMinSelect, rules.ExprString(n))
		case "MAX":
			inv.add(FcfbMaxSelect, rules.ExprString(n))
		case "ABS":
			inv.add(FcfbAbs, rules.ExprString(n))
		case "MEET":
			inv.add(FcfbLattice, rules.ExprString(n))
		case "DIST":
			inv.add(FcfbDistance, rules.ExprString(n))
		}
	case *rules.SetLit:
		for _, el := range n.Elems {
			inv.expr(el, quantVars)
		}
	}
}

// addArith distinguishes in/decrementers from general adders.
func (inv *inventory) addArith(n *rules.Binary, key string) {
	one := func(e rules.Expr) bool {
		lit, ok := e.(*rules.NumLit)
		return ok && lit.Val == 1
	}
	switch {
	case n.Op == "+" && (one(n.X) || one(n.Y)):
		inv.add(FcfbIncrement, baseOperand(n))
	case n.Op == "-" && one(n.Y):
		inv.add(FcfbDecrement, baseOperand(n))
	default:
		inv.add(FcfbAdder, key)
	}
}

// baseOperand keys in/decrementers by the counter they update so that
// `x <- x+1` in several rules shares one incrementer.
func baseOperand(n *rules.Binary) string {
	if lit, ok := n.X.(*rules.NumLit); ok && lit.Val == 1 {
		return rules.ExprString(n.Y)
	}
	return rules.ExprString(n.X)
}

func isSetOperand(e rules.Expr) bool {
	_, ok := e.(*rules.SetLit)
	return ok
}

func callName(e rules.Expr) string {
	if c, ok := e.(*rules.Call); ok {
		return c.Name
	}
	return rules.ExprString(e)
}

func (inv *inventory) cmd(cmd rules.Cmd) {
	switch n := cmd.(type) {
	case *rules.Assign:
		for _, ix := range n.Idx {
			inv.expr(ix, nil)
		}
		inv.expr(n.Rhs, nil)
	case *rules.Return:
		inv.expr(n.Val, nil)
	case *rules.Emit:
		for _, a := range n.Args {
			inv.expr(a, nil)
		}
	case *rules.ForAllCmd:
		inv.cmd(n.Body)
	}
}
