// Package core implements the paper's rule-based router engine
// (Section 4.3): an event manager plus rule interpreters executing
// analysed rule programs, the off-line ARON compiler that turns each
// rule base into a completely filled rule table (index = directly
// indexed small-domain signals + premise feature bits), and the
// hardware cost model that reproduces the paper's evaluation numbers
// (rule-table dimensions, FCFB inventory, register bits,
// interpretation steps).
package core

import (
	"fmt"

	"repro/internal/rules"
)

// InputProvider supplies external signals (header fields, link states,
// buffer occupancies — the outputs of the router's Information Units).
type InputProvider func(name string, idx []int64) (rules.Value, error)

// Invocation records one rule-base execution for tracing/accounting.
type Invocation struct {
	Base string
	Args []rules.Value
	Rule int // fired rule index, -1 if none applied
}

// Machine is a software model of the "Rule Bases" block of the router:
// registers (variable store), rule interpreters (one logical
// interpreter per rule base) and the event manager coordinating them.
type Machine struct {
	checked *rules.Checked
	inputs  InputProvider
	store   map[string][]rules.Value
	queue   []rules.Event
	// qhead indexes the next event to dispatch; dequeuing advances it
	// instead of re-slicing queue, so the backing array is reused once
	// the queue drains rather than abandoned to the collector.
	qhead int

	// External collects events that have no rule base in the program:
	// commands to the data path (e.g. !send) or messages to
	// neighbouring nodes (e.g. !send_newmessage).
	External []rules.Event
	// Trace records every invocation when Tracing is set.
	Tracing bool
	Trace   []Invocation
	// Invocations counts rule interpretations (the paper's "steps").
	Invocations int64
	// OnRuleFired, when non-nil, observes every rule interpretation
	// (fired rule index, -1 when no rule applied). The flight recorder
	// attaches here; the disabled path is one nil-check.
	OnRuleFired func(base string, rule int)
	// OnDispatch, when non-nil, observes every event the event manager
	// dequeues in RunToQuiescence (with the remaining queue length).
	OnDispatch func(event string, pending int)
}

// NewMachine builds a machine for the analysed program. Variables are
// initialised to the lowest value of their domain (hardware reset
// state).
func NewMachine(c *rules.Checked, inputs InputProvider) *Machine {
	m := &Machine{
		checked: c,
		inputs:  inputs,
		store:   make(map[string][]rules.Value),
	}
	for name, info := range c.Signals {
		if info.IsInput {
			continue
		}
		slots := info.Slots()
		vals := make([]rules.Value, slots)
		for i := range vals {
			vals[i] = zeroValue(info.Domain)
		}
		m.store[name] = vals
	}
	return m
}

func zeroValue(t *rules.Type) rules.Value {
	switch t.Kind {
	case rules.TInt:
		return rules.Value{T: t, I: t.Lo}
	case rules.TSym:
		return rules.SymVal(t, 0)
	case rules.TSet:
		return rules.Value{T: t}
	}
	return rules.BoolVal(false)
}

// Checked exposes the analysed program.
func (m *Machine) Checked() *rules.Checked { return m.checked }

// slot flattens a multi-dimensional index.
func (m *Machine) slot(info *rules.SignalInfo, idx []int64) (int64, error) {
	if len(idx) != len(info.Index) {
		return 0, fmt.Errorf("core: %s needs %d indices, got %d", info.Name, len(info.Index), len(idx))
	}
	s := int64(0)
	for i, ix := range idx {
		size := info.Index[i].DomainSize()
		if ix < 0 || ix >= size {
			return 0, fmt.Errorf("core: %s index %d out of range: %d", info.Name, i, ix)
		}
		s = s*size + ix
	}
	return s, nil
}

// ReadVar implements rules.Env.
func (m *Machine) ReadVar(name string, idx []int64) (rules.Value, error) {
	info, ok := m.checked.Signals[name]
	if !ok || info.IsInput {
		return rules.Value{}, fmt.Errorf("core: unknown variable %s", name)
	}
	s, err := m.slot(info, idx)
	if err != nil {
		return rules.Value{}, err
	}
	return m.store[name][s], nil
}

// ReadInput implements rules.Env.
func (m *Machine) ReadInput(name string, idx []int64) (rules.Value, error) {
	if m.inputs == nil {
		return rules.Value{}, fmt.Errorf("core: no input provider for %s", name)
	}
	return m.inputs(name, idx)
}

// Set writes a variable directly (initialisation, tests).
func (m *Machine) Set(name string, idx []int64, v rules.Value) error {
	info, ok := m.checked.Signals[name]
	if !ok || info.IsInput {
		return fmt.Errorf("core: unknown variable %s", name)
	}
	s, err := m.slot(info, idx)
	if err != nil {
		return err
	}
	m.store[name][s] = v
	return nil
}

// Get reads a variable directly.
func (m *Machine) Get(name string, idx ...int64) (rules.Value, error) {
	return m.ReadVar(name, idx)
}

// Post enqueues an event for the event manager.
func (m *Machine) Post(event string, args ...rules.Value) {
	m.queue = append(m.queue, rules.Event{Name: event, Args: args})
}

// InvokeNow runs one rule interpretation of the named base
// immediately: the first applicable rule fires, its writes are applied
// atomically, generated events are queued (internal) or collected
// (external). It returns the fired rule index (-1 if none) and the
// RETURN value (nil if none).
func (m *Machine) InvokeNow(base string, args ...rules.Value) (int, *rules.Value, error) {
	idx, eff, err := m.checked.Invoke(base, args, m)
	if err != nil {
		return -1, nil, err
	}
	m.Invocations++
	if m.Tracing {
		m.Trace = append(m.Trace, Invocation{Base: base, Args: args, Rule: idx})
	}
	if m.OnRuleFired != nil {
		m.OnRuleFired(base, idx)
	}
	for _, w := range eff.Writes {
		if err := m.Set(w.Name, w.Idx, w.Val); err != nil {
			return idx, nil, err
		}
	}
	for _, ev := range eff.Events {
		if m.checked.Bases[ev.Name] != nil {
			m.queue = append(m.queue, ev)
		} else {
			m.External = append(m.External, ev)
		}
	}
	return idx, eff.Return, nil
}

// Pending returns the number of queued internal events.
func (m *Machine) Pending() int { return len(m.queue) - m.qhead }

// RunToQuiescence processes queued events until the queue drains or
// maxSteps interpretations have run. It returns the number of
// interpretations performed. The paper's event model executes each
// rule atomically; asynchronicity arises only through explicitly
// generated internal events, which is exactly this loop.
func (m *Machine) RunToQuiescence(maxSteps int) (int, error) {
	steps := 0
	for m.qhead < len(m.queue) {
		if steps >= maxSteps {
			return steps, fmt.Errorf("core: event cascade exceeded %d steps", maxSteps)
		}
		ev := m.queue[m.qhead]
		m.qhead++
		if m.qhead == len(m.queue) {
			// Drained: recycle the backing array for the events this
			// dispatch is about to generate.
			m.queue = m.queue[:0]
			m.qhead = 0
		} else if m.qhead >= 32 && m.qhead*2 >= len(m.queue) {
			// Long cascade that never fully drains: compact so the
			// consumed prefix does not pin the whole array.
			n := copy(m.queue, m.queue[m.qhead:])
			m.queue = m.queue[:n]
			m.qhead = 0
		}
		if m.OnDispatch != nil {
			m.OnDispatch(ev.Name, m.Pending())
		}
		if _, _, err := m.InvokeNow(ev.Name, ev.Args...); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}

// Reset returns the machine to its freshly constructed state —
// variables at their hardware reset value, queues and traces empty —
// while keeping every backing allocation (variable slices, event
// queue). The adapters' residual slow path resets one scratch machine
// per decision instead of building a new one.
func (m *Machine) Reset() {
	for name, vals := range m.store {
		z := zeroValue(m.checked.Signals[name].Domain)
		for i := range vals {
			vals[i] = z
		}
	}
	m.queue = m.queue[:0]
	m.qhead = 0
	m.External = m.External[:0]
	m.Trace = m.Trace[:0]
	// Counters and hooks persist: a pooled machine accumulates
	// Invocations across decisions exactly like a hardware step counter.
}

// TakeExternal returns and clears the collected external events.
func (m *Machine) TakeExternal() []rules.Event {
	out := m.External
	m.External = nil
	return out
}
