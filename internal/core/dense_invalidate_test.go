package core

import (
	"strings"
	"testing"
)

func compileDense(t *testing.T) (*DenseTable, *InputLayout) {
	t.Helper()
	c := mustAnalyze(t, denseProg)
	cb, err := CompileBase(c, "decide", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	layout := NewInputLayout(c)
	dt, err := cb.CompileDense(layout)
	if err != nil {
		t.Fatal(err)
	}
	return dt, layout
}

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

// A table swap hands the engine a fresh layout; an InputVector from
// the old epoch silently carries slot indices that mean different
// inputs on the new table. The dense path must refuse such a vector
// loudly rather than route on garbage.
func TestDenseLookupRejectsForeignVector(t *testing.T) {
	dt, _ := compileDense(t)
	_, staleLayout := compileDense(t) // the "old epoch" layout
	stale := NewInputVector(staleLayout)
	stale.Begin()
	mustPanic(t, "different InputLayout", func() {
		dt.Lookup(stale, 0)
	})
}

// Retiring an engine epoch invalidates its dense tables; any code
// still holding the table (a leaked reference across a swap) must
// fail on the next lookup instead of serving decisions from a retired
// generation.
func TestDenseLookupRejectsInvalidatedTable(t *testing.T) {
	dt, layout := compileDense(t)
	iv := NewInputVector(layout)
	iv.Begin()
	if dt.Invalidated() {
		t.Fatal("fresh table reports invalidated")
	}
	if _, ok := dt.Lookup(iv, 0); ok {
		// Unset inputs fall back; either way the call must succeed
		// before invalidation. Nothing to assert on the value here.
		_ = ok
	}
	dt.Invalidate()
	if !dt.Invalidated() {
		t.Fatal("Invalidate did not stick")
	}
	mustPanic(t, "invalidated dense table", func() {
		dt.Lookup(iv, 0)
	})
}
