package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rules"
)

// denseProg exercises every construct the dense compiler supports:
// direct symbol fields, subbase inlining, quantifier loops, constant
// set folding (including set union), builtins and parameters.
const denseProg = `
CONSTANT signs = {neg, zero, pos}
CONSTANT W = 4

INPUT dxsign IN signs
INPUT free (4) IN 0 TO 1
INPUT load (4) IN 0 TO 15
INPUT hops IN 0 TO 7

SUBBASE best(p IN 0 TO 3)
  IF free(p) = 1 AND load(p) < 8 THEN RETURN(2);
  IF free(p) = 1 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END best;

ON decide(invc IN 0 TO 1)
  IF dxsign = pos AND best(1) = 2 THEN RETURN(1);
  IF dxsign IN {neg, zero} AND EXISTS i IN 0 TO 3: free(i) = 1 THEN RETURN(2);
  IF hops IN ({1} + {3}) THEN RETURN(3);
  IF MIN(load(0), load(2)) >= MAX(load(1), 4) THEN RETURN(0);
  IF ABS(hops - W) > 2 AND invc = 1 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END decide;
`

func fillDenseInputs(t *testing.T, iv *InputVector, rng *rand.Rand) {
	t.Helper()
	l := iv.layout
	set := func(name string, v int64, idx ...int64) {
		slot, err := l.SlotOf(name, idx...)
		if err != nil {
			t.Fatal(err)
		}
		iv.Set(slot, v)
	}
	iv.Begin()
	set("dxsign", int64(rng.Intn(3)))
	set("hops", int64(rng.Intn(8)))
	for i := int64(0); i < 4; i++ {
		set("free", int64(rng.Intn(2)), i)
		set("load", int64(rng.Intn(16)), i)
	}
}

// The fast path must agree with LookupRule — and therefore with the
// reference interpreter — on fired rule AND folded RETURN value, for
// the same input vector served through both access paths.
func TestDenseTableMatchesLookupRule(t *testing.T) {
	c := mustAnalyze(t, denseProg)
	cb, err := CompileBase(c, "decide", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	layout := NewInputLayout(c)
	dt, err := cb.CompileDense(layout)
	if err != nil {
		t.Fatal(err)
	}
	iv := NewInputVector(layout)
	m := NewMachine(c, iv.Provider())
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4000; trial++ {
		fillDenseInputs(t, iv, rng)
		invc := int64(rng.Intn(2))
		args := []rules.Value{{T: rules.IntType(0, 1), I: invc}}

		want, err := cb.LookupRule(args, m)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := dt.Lookup(iv, invc)
		if !ok {
			t.Fatalf("trial %d: dense lookup fell back", trial)
		}
		if got != want {
			t.Fatalf("trial %d: dense rule %d, table rule %d", trial, got, want)
		}
		if got == cb.RuleCount {
			continue
		}
		refIdx, eff, err := c.Invoke("decide", args, m)
		if err != nil {
			t.Fatal(err)
		}
		if refIdx != got {
			t.Fatalf("trial %d: dense rule %d, interpreter rule %d", trial, got, refIdx)
		}
		rv, rok := dt.Return(got)
		if !rok {
			t.Fatalf("trial %d: rule %d RETURN did not fold", trial, got)
		}
		if eff.Return == nil || eff.Return.I != rv.I {
			t.Fatalf("trial %d: dense RETURN %v, interpreter %v", trial, rv, eff.Return)
		}
	}
}

// Premises that read VARIABLEs are outside the pure-input regime: the
// dense compiler must refuse, leaving the caller on the interpreter.
func TestDenseRejectsVariablePremise(t *testing.T) {
	src := `
VARIABLE mode IN 0 TO 3
ON decide()
  IF mode = 1 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END decide;
`
	c := mustAnalyze(t, src)
	cb, err := CompileBase(c, "decide", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.CompileDense(NewInputLayout(c)); err == nil {
		t.Fatal("variable premise must not compile to the dense path")
	} else if !strings.Contains(err.Error(), "variable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A lookup against an input the adapter did not set reports ok=false
// (fallback), never a stale value from the previous decision.
func TestDenseUnsetInputFallsBack(t *testing.T) {
	c := mustAnalyze(t, denseProg)
	cb, err := CompileBase(c, "decide", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	layout := NewInputLayout(c)
	dt, err := cb.CompileDense(layout)
	if err != nil {
		t.Fatal(err)
	}
	iv := NewInputVector(layout)
	rng := rand.New(rand.NewSource(5))
	fillDenseInputs(t, iv, rng)
	if _, ok := dt.Lookup(iv, 0); !ok {
		t.Fatal("fully set vector should not fall back")
	}
	// A new decision that forgets every input must fail closed.
	iv.Begin()
	if _, ok := dt.Lookup(iv, 0); ok {
		t.Fatal("unset inputs must force the fallback path")
	}
	// And the provider view must agree (the interpreter errors too).
	if _, err := iv.Provider()("dxsign", nil); err == nil {
		t.Fatal("provider must reject unset slots")
	}
}

// The event queue must reuse its backing array across cascades instead
// of abandoning the consumed prefix to the collector (the old
// queue = queue[1:] drain retained it and forced regrowth every run).
func TestMachineQueueReusesBuffer(t *testing.T) {
	src := `
VARIABLE hits IN 0 TO 63
ON ping(k IN 0 TO 15)
  IF k > 0 THEN hits <- hits + 1, !ping(k - 1);
  IF k = 0 THEN hits <- hits + 1;
END ping;
`
	c := mustAnalyze(t, src)
	m := NewMachine(c, nil)
	m.Post("ping", rules.IntVal(15))
	if _, err := m.RunToQuiescence(100); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 || len(m.queue) != 0 || m.qhead != 0 {
		t.Fatalf("queue not recycled: len=%d qhead=%d", len(m.queue), m.qhead)
	}
	if cap(m.queue) == 0 {
		t.Fatal("drained queue should keep its capacity")
	}
	p0 := &m.queue[:1][0]
	for round := 0; round < 8; round++ {
		m.Post("ping", rules.IntVal(15))
		if _, err := m.RunToQuiescence(100); err != nil {
			t.Fatal(err)
		}
	}
	if p1 := &m.queue[:1][0]; p0 != p1 {
		t.Fatal("cascade of equal depth should reuse the queue buffer")
	}
	v, _ := m.Get("hits")
	if v.I != 63 { // 9 rounds × 16, clamped to the domain
		t.Fatalf("hits = %d", v.I)
	}
}

// Pending must account for the consumed prefix while a cascade is in
// flight (observed through the dispatch hook).
func TestMachinePendingDuringCascade(t *testing.T) {
	src := `
VARIABLE hits IN 0 TO 15
ON ping(k IN 0 TO 7)
  IF k > 0 THEN hits <- hits + 1, !ping(k - 1);
  IF k = 0 THEN hits <- hits + 1;
END ping;
`
	c := mustAnalyze(t, src)
	m := NewMachine(c, nil)
	var pendings []int
	m.OnDispatch = func(_ string, pending int) { pendings = append(pendings, pending) }
	m.Post("ping", rules.IntVal(2))
	if _, err := m.RunToQuiescence(100); err != nil {
		t.Fatal(err)
	}
	// Each dispatch sees an empty queue (the cascade posts the next
	// event only after the hook runs).
	for i, p := range pendings {
		if p != 0 {
			t.Fatalf("dispatch %d: pending = %d", i, p)
		}
	}
	if len(pendings) != 3 {
		t.Fatalf("dispatches = %d", len(pendings))
	}
}

// Reset must return a pooled machine to the hardware reset state while
// keeping its allocations, so the residual slow path can reuse one
// scratch machine per decision.
func TestMachineReset(t *testing.T) {
	c := mustAnalyze(t, `
VARIABLE hits IN 0 TO 15
ON ping(k IN 0 TO 7)
  IF k > 0 THEN hits <- hits + 1, !ping(k - 1), !tell(k);
  IF k = 0 THEN hits <- hits + 1;
END ping;
`)
	m := NewMachine(c, nil)
	run := func() int64 {
		m.Post("ping", rules.IntVal(5))
		if _, err := m.RunToQuiescence(100); err != nil {
			t.Fatal(err)
		}
		v, _ := m.Get("hits")
		return v.I
	}
	first := run()
	if first != 6 {
		t.Fatalf("hits = %d", first)
	}
	if len(m.External) == 0 {
		t.Fatal("!tell should collect external events")
	}
	m.Reset()
	if v, _ := m.Get("hits"); v.I != 0 {
		t.Fatalf("Reset left hits = %d", v.I)
	}
	if m.Pending() != 0 || len(m.External) != 0 {
		t.Fatal("Reset left queued state")
	}
	if second := run(); second != first {
		t.Fatalf("post-Reset run diverged: %d vs %d", second, first)
	}
}
