package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/rules"
)

// Configuration data: the paper's tool flow compiles a rule base
// off-line and ships "configuration data" into the router (Section
// 4.2: "An appropriate tool (Rule Compiler) generates the
// configuration data by translation"). SaveConfig serialises the
// compiled table together with its index layout; LoadConfig installs
// it into a router holding the same analysed program without
// re-running the expensive table fill.

// configImage is the on-wire form of a compiled rule base.
type configImage struct {
	Base       string
	RuleCount  int
	FieldKeys  []string
	FieldSizes []int64
	AtomKeys   []string
	Entries    int64
	Width      int
	ReturnBits int
	Table      []int16
}

// SaveConfig writes the compiled rule base as configuration data.
func (cb *CompiledBase) SaveConfig(w io.Writer) error {
	if cb.Table == nil {
		return fmt.Errorf("core: %s was compiled SizeOnly, no table to save", cb.Base)
	}
	img := configImage{
		Base:       cb.Base,
		RuleCount:  cb.RuleCount,
		Entries:    cb.Entries,
		Width:      cb.Width,
		ReturnBits: cb.ReturnBits,
		Table:      cb.Table,
	}
	for _, f := range cb.Fields {
		img.FieldKeys = append(img.FieldKeys, f.Key)
		img.FieldSizes = append(img.FieldSizes, f.Type.DomainSize())
	}
	for _, a := range cb.Atoms {
		img.AtomKeys = append(img.AtomKeys, a.Key)
	}
	return gob.NewEncoder(w).Encode(&img)
}

// LoadConfig reads configuration data and binds it to the analysed
// program: the index layout (field and atom keys) must match what the
// compiler derives from the program, which guards against loading a
// configuration into a router running a different algorithm.
func LoadConfig(c *rules.Checked, r io.Reader) (*CompiledBase, error) {
	var img configImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: reading configuration: %w", err)
	}
	// Rebuild the index layout from the program (cheap: SizeOnly).
	cb, err := CompileBase(c, img.Base, CompileOptions{SizeOnly: true})
	if err != nil {
		return nil, err
	}
	if cb.RuleCount != img.RuleCount || cb.Entries != img.Entries || cb.Width != img.Width {
		return nil, fmt.Errorf("core: configuration shape mismatch for %s: program wants %s/%d rules, image has %d x %d/%d rules",
			img.Base, cb.Dim(), cb.RuleCount, img.Entries, img.Width, img.RuleCount)
	}
	if len(cb.Fields) != len(img.FieldKeys) || len(cb.Atoms) != len(img.AtomKeys) {
		return nil, fmt.Errorf("core: configuration index layout mismatch for %s", img.Base)
	}
	for i, f := range cb.Fields {
		if f.Key != img.FieldKeys[i] || f.Type.DomainSize() != img.FieldSizes[i] {
			return nil, fmt.Errorf("core: configuration field %d mismatch: %q vs %q", i, f.Key, img.FieldKeys[i])
		}
	}
	for i, a := range cb.Atoms {
		if a.Key != img.AtomKeys[i] {
			return nil, fmt.Errorf("core: configuration atom %d mismatch: %q vs %q", i, a.Key, img.AtomKeys[i])
		}
	}
	if int64(len(img.Table)) != img.Entries {
		return nil, fmt.Errorf("core: configuration table truncated: %d of %d entries", len(img.Table), img.Entries)
	}
	for _, e := range img.Table {
		if int(e) < 0 || int(e) > img.RuleCount {
			return nil, fmt.Errorf("core: configuration table entry %d out of range", e)
		}
	}
	cb.Table = img.Table
	return cb, nil
}
