package core

import (
	"fmt"
	"sort"

	"repro/internal/rules"
)

// CompileOptions tunes the ARON compiler.
type CompileOptions struct {
	// MaxEntries bounds the fully filled table (default 1<<22); the
	// compiler fails beyond it, mirroring the paper's warning that
	// "the amount of required RAM can grow exponentially with the
	// number of input values".
	MaxEntries int64
	// MinEqAtomsForField is how many equality/membership atoms an
	// input signal must appear in before its raw value is wired into
	// the table index instead of comparator feature bits (default 2;
	// the paper: "since for state and new_state(dir) all individual
	// values occur in the premises, no comparison is needed and their
	// current values are used as part of the table index directly").
	MinEqAtomsForField int
	// NoFields disables direct indexing entirely (every atom becomes
	// a feature bit) — an ablation of the premise-processing design.
	NoFields bool
	// SizeOnly skips filling the table: Entries/Width are computed
	// but Table stays nil (used to measure configurations that are
	// deliberately too large to build, like the merged
	// decide_dir+decide_vc base of experiment E5).
	SizeOnly bool
}

func (o *CompileOptions) defaults() {
	if o.MaxEntries == 0 {
		o.MaxEntries = 1 << 22
	}
	if o.MinEqAtomsForField == 0 {
		o.MinEqAtomsForField = 2
	}
}

// Field is one directly indexed signal occurrence of the table index.
type Field struct {
	Key  string
	Type *rules.Type
	Expr rules.Expr
}

// Atom is one premise feature computed by an FCFB comparator whose
// 1-bit result enters the table index.
type Atom struct {
	Key  string
	Expr rules.Expr
	// Concrete atoms depend only on direct fields and are folded into
	// the table during compilation (no index bit).
	Concrete bool
}

// CompiledBase is the ARON form of one rule base: a completely filled
// rule table addressed by direct fields and feature bits.
type CompiledBase struct {
	Base      string
	RuleCount int
	Fields    []Field
	Atoms     []Atom // feature atoms only (index bits)
	// Entries is the number of table rows: product of field domains
	// times 2^len(Atoms).
	Entries int64
	// Width is the conclusion width in bits: rule selector plus the
	// RETURN value lines.
	Width int
	// ReturnBits is the RETURN-value part of Width.
	ReturnBits int
	// Table maps each entry to the fired rule index, or RuleCount for
	// "no rule applies" (gaps are eliminated: every entry holds a
	// valid conclusion).
	Table []int16

	checked *rules.Checked
	params  []*rules.SignalInfo
}

// MemoryBits returns Entries × Width, the rule-table RAM size the
// paper's Tables 1 and 2 report.
func (cb *CompiledBase) MemoryBits() int64 {
	return cb.Entries * int64(cb.Width)
}

// Dim renders the table dimension like the paper ("1024 x 8").
func (cb *CompiledBase) Dim() string {
	return fmt.Sprintf("%d x %d", cb.Entries, cb.Width)
}

// CompileBase compiles one rule base of an analysed program.
func CompileBase(c *rules.Checked, base string, opts CompileOptions) (*CompiledBase, error) {
	opts.defaults()
	bi, ok := c.Bases[base]
	if !ok {
		return nil, fmt.Errorf("core: unknown rule base %s", base)
	}
	cb := &CompiledBase{
		Base:      base,
		RuleCount: len(bi.RB.Rules),
		checked:   c,
		params:    bi.Params,
	}

	// 1. Premises are used as written: a quantified subexpression is
	// computed by one d-wide FCFB (the paper's "logical units d bits
	// wide") whose 1-bit result enters the index, so quantifiers are
	// NOT expanded into per-element atoms — that is exactly what
	// keeps the rule tables small for wide node degrees.
	premises := make([]rules.Expr, len(bi.RB.Rules))
	for i, r := range bi.RB.Rules {
		premises[i] = r.Premise
	}

	// 2. Collect atoms and signal occurrences.
	atomsByKey := map[string]rules.Expr{}
	occByKey := map[string]*occInfo{}
	var atomOrder []string
	for _, p := range premises {
		collectAtoms(c, bi, p, atomsByKey, &atomOrder, occByKey)
	}

	// 3. Pick direct fields.
	fieldSet := map[string]bool{}
	if !opts.NoFields {
		var occKeys []string
		for k := range occByKey {
			occKeys = append(occKeys, k)
		}
		sort.Strings(occKeys)
		for _, k := range occKeys {
			oi := occByKey[k]
			if oi.onlyEq && oi.eqAtoms >= opts.MinEqAtomsForField && oi.typ.DomainSize() <= 64 &&
				(oi.typ.Kind == rules.TInt || oi.typ.Kind == rules.TSym) {
				fieldSet[k] = true
				cb.Fields = append(cb.Fields, Field{Key: k, Type: oi.typ, Expr: oi.expr})
			}
		}
	}

	// 4. Classify atoms: concrete (all occurrences direct) vs feature
	// bits.
	for _, key := range atomOrder {
		expr := atomsByKey[key]
		occ := occurrencesIn(c, bi, expr)
		concrete := true
		for _, ok2 := range occ {
			if !fieldSet[ok2] {
				concrete = false
				break
			}
		}
		if concrete {
			continue // folded during table fill
		}
		cb.Atoms = append(cb.Atoms, Atom{Key: key, Expr: expr})
	}

	// 5. Size the table.
	entries := int64(1)
	for _, f := range cb.Fields {
		entries *= f.Type.DomainSize()
		if !opts.SizeOnly && entries > opts.MaxEntries {
			return nil, fmt.Errorf("core: %s: rule table exceeds %d entries", base, opts.MaxEntries)
		}
	}
	for range cb.Atoms {
		entries *= 2
		if !opts.SizeOnly && entries > opts.MaxEntries {
			return nil, fmt.Errorf("core: %s: rule table exceeds %d entries", base, opts.MaxEntries)
		}
	}
	cb.Entries = entries
	sel := bitsFor(int64(cb.RuleCount) + 1) // rules + "no rule"
	cb.ReturnBits = 0
	if bi.ReturnType != nil {
		cb.ReturnBits = bi.ReturnType.Bits()
	}
	cb.Width = sel + cb.ReturnBits
	if opts.SizeOnly {
		return cb, nil
	}

	// 6. Fill the table: for every combination of field values and
	// feature bits, the first rule whose premise holds wins; gaps get
	// the explicit "no rule" conclusion.
	cb.Table = make([]int16, entries)
	fieldVals := make(map[string]rules.Value, len(cb.Fields))
	featVals := make(map[string]bool, len(cb.Atoms))
	var fill func(dim int, idx int64) error
	fill = func(dim int, idx int64) error {
		if dim < len(cb.Fields) {
			f := cb.Fields[dim]
			for ord, v := range enumerateType(f.Type) {
				fieldVals[f.Key] = v
				if err := fill(dim+1, idx*f.Type.DomainSize()+int64(ord)); err != nil {
					return err
				}
			}
			return nil
		}
		a := dim - len(cb.Fields)
		if a < len(cb.Atoms) {
			for bit := int64(0); bit < 2; bit++ {
				featVals[cb.Atoms[a].Key] = bit == 1
				if err := fill(dim+1, idx*2+bit); err != nil {
					return err
				}
			}
			return nil
		}
		choice := int16(cb.RuleCount)
		for i, p := range premises {
			v, err := evalPartial(c, p, fieldVals, featVals)
			if err != nil {
				return fmt.Errorf("core: %s rule %d: %w", base, i, err)
			}
			if v.B {
				choice = int16(i)
				break
			}
		}
		cb.Table[idx] = choice
		return nil
	}
	if err := fill(0, 0); err != nil {
		return nil, err
	}
	return cb, nil
}

// LookupRule computes the table index from live state and returns the
// selected rule (RuleCount means no rule). env supplies variables and
// inputs; args are the event arguments. Differential tests check it
// against the reference evaluator's choice.
func (cb *CompiledBase) LookupRule(args []rules.Value, env rules.Env) (int, error) {
	if len(args) != len(cb.params) {
		return 0, fmt.Errorf("core: %s needs %d args, got %d", cb.Base, len(cb.params), len(args))
	}
	sc := map[string]rules.Value{}
	for i, p := range cb.params {
		sc[p.Name] = args[i]
	}
	idx := int64(0)
	for _, f := range cb.Fields {
		v, err := cb.checked.EvalExpr(f.Expr, sc, env)
		if err != nil {
			return 0, err
		}
		ord, err := v.Ord()
		if err != nil {
			return 0, err
		}
		if f.Type.Kind == rules.TInt {
			ord -= f.Type.Lo
		}
		if ord < 0 || ord >= f.Type.DomainSize() {
			return 0, fmt.Errorf("core: %s field %s out of range: %d", cb.Base, f.Key, ord)
		}
		idx = idx*f.Type.DomainSize() + ord
	}
	for _, a := range cb.Atoms {
		v, err := cb.checked.EvalExpr(a.Expr, sc, env)
		if err != nil {
			return 0, err
		}
		bit := int64(0)
		if v.B {
			bit = 1
		}
		idx = idx*2 + bit
	}
	return int(cb.Table[idx]), nil
}

// --- helpers ---

type occInfo struct {
	key     string
	typ     *rules.Type
	expr    rules.Expr
	eqAtoms int
	onlyEq  bool
}

func bitsFor(n int64) int {
	b := 0
	for (int64(1) << b) < n {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

func enumerateType(t *rules.Type) []rules.Value {
	switch t.Kind {
	case rules.TInt:
		out := make([]rules.Value, 0, t.DomainSize())
		for v := t.Lo; v <= t.Hi; v++ {
			out = append(out, rules.Value{T: t, I: v})
		}
		return out
	case rules.TSym:
		out := make([]rules.Value, 0, len(t.Symbols))
		for i := range t.Symbols {
			out = append(out, rules.SymVal(t, int64(i)))
		}
		return out
	}
	return nil
}

// isAtomOp reports whether a binary operator forms a premise atom.
func isAtomOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=", "IN":
		return true
	}
	return false
}

// collectAtoms walks a quantifier-free premise, registering comparison
// atoms and the signal occurrences they contain.
func collectAtoms(c *rules.Checked, bi *rules.BaseInfo, e rules.Expr,
	atoms map[string]rules.Expr, order *[]string, occs map[string]*occInfo) {
	switch n := e.(type) {
	case *rules.Unary:
		collectAtoms(c, bi, n.X, atoms, order, occs)
	case *rules.Quant:
		// A quantified predicate is one FCFB-computed feature bit.
		key := rules.ExprString(n)
		if _, seen := atoms[key]; !seen {
			atoms[key] = n
			*order = append(*order, key)
		}
		// Its occurrences are vector signals; they never become
		// direct index fields.
		for _, ok2 := range occurrencesIn(c, bi, n) {
			oi := occs[ok2]
			if oi == nil {
				oi = &occInfo{key: ok2, onlyEq: true}
				oi.typ, oi.expr = occTypeExpr(c, bi, ok2, n)
				occs[ok2] = oi
			}
			oi.onlyEq = false
		}
	case *rules.Binary:
		if n.Op == "AND" || n.Op == "OR" {
			collectAtoms(c, bi, n.X, atoms, order, occs)
			collectAtoms(c, bi, n.Y, atoms, order, occs)
			return
		}
		if !isAtomOp(n.Op) {
			return
		}
		key := rules.ExprString(n)
		if _, seen := atoms[key]; !seen {
			atoms[key] = n
			*order = append(*order, key)
		}
		occKeys := occurrencesIn(c, bi, n)
		eqLike := n.Op == "=" || n.Op == "<>" || n.Op == "IN"
		for _, ok2 := range occKeys {
			oi := occs[ok2]
			if oi == nil {
				oi = &occInfo{key: ok2, onlyEq: true}
				oi.typ, oi.expr = occTypeExpr(c, bi, ok2, n)
				occs[ok2] = oi
			}
			// An atom with more than one occurrence can only be
			// folded when all of them are direct; treat multi-signal
			// or magnitude atoms as disqualifying for the eq-only
			// heuristic.
			if eqLike && len(occKeys) == 1 {
				oi.eqAtoms++
			} else {
				oi.onlyEq = false
			}
		}
	}
}

// occurrencesIn returns the canonical keys of signal occurrences
// inside an atom: identifiers naming parameters or scalar signals in
// value position, and indexed signal accesses (whose index arguments
// are treated as multiplexer selects, not occurrences).
func occurrencesIn(c *rules.Checked, bi *rules.BaseInfo, e rules.Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(rules.Expr)
	walk = func(e rules.Expr) {
		switch n := e.(type) {
		case *rules.Ident:
			if _, isSym := c.Symbols[n.Name]; isSym {
				return
			}
			if _, isConst := c.NumConsts[n.Name]; isConst {
				return
			}
			key := rules.ExprString(n)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		case *rules.Call:
			if _, isSignal := c.Signals[n.Name]; isSignal {
				key := rules.ExprString(n)
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
				return // index args are mux selects
			}
			if _, isSub := c.Subs[n.Name]; isSub {
				// A subbase invocation is one functional unit: its
				// value is an occurrence, the interior is not re-
				// analysed here.
				key := rules.ExprString(n)
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
				return
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *rules.Unary:
			walk(n.X)
		case *rules.Binary:
			walk(n.X)
			walk(n.Y)
		case *rules.SetLit:
			for _, el := range n.Elems {
				walk(el)
			}
		case *rules.Quant:
			walk(n.Body)
		}
	}
	walk(e)
	return out
}

// occTypeExpr finds the type and a representative expression of the
// occurrence with the given key inside atom.
func occTypeExpr(c *rules.Checked, bi *rules.BaseInfo, key string, atom rules.Expr) (*rules.Type, rules.Expr) {
	var typ *rules.Type
	var expr rules.Expr
	var walk func(rules.Expr)
	walk = func(e rules.Expr) {
		if typ != nil {
			return
		}
		switch n := e.(type) {
		case *rules.Ident:
			if rules.ExprString(n) == key {
				if info, ok := c.Signals[n.Name]; ok {
					typ, expr = info.Domain, n
					return
				}
				for _, p := range bi.Params {
					if p.Name == n.Name {
						typ, expr = p.Domain, n
						return
					}
				}
			}
		case *rules.Call:
			if rules.ExprString(n) == key {
				if info, ok := c.Signals[n.Name]; ok {
					typ, expr = info.Domain, n
					return
				}
				if sub, ok := c.Subs[n.Name]; ok {
					typ, expr = sub.ReturnType, n
					return
				}
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *rules.Unary:
			walk(n.X)
		case *rules.Binary:
			walk(n.X)
			walk(n.Y)
		case *rules.SetLit:
			for _, el := range n.Elems {
				walk(el)
			}
		case *rules.Quant:
			walk(n.Body)
		}
	}
	walk(atom)
	return typ, expr
}

// evalPartial evaluates a quantifier-free premise under an assignment
// of direct-field values and feature-atom truth bits.
func evalPartial(c *rules.Checked, e rules.Expr, fields map[string]rules.Value, feats map[string]bool) (rules.Value, error) {
	key := rules.ExprString(e)
	if b, ok := feats[key]; ok {
		return rules.BoolVal(b), nil
	}
	if v, ok := fields[key]; ok {
		return v, nil
	}
	switch n := e.(type) {
	case *rules.NumLit:
		return rules.IntVal(n.Val), nil
	case *rules.Ident:
		if v, ok := c.Symbols[n.Name]; ok {
			return v, nil
		}
		if v, ok := c.NumConsts[n.Name]; ok {
			return rules.IntVal(v), nil
		}
		return rules.Value{}, fmt.Errorf("signal %s not available during table fill", n.Name)
	case *rules.Unary:
		x, err := evalPartial(c, n.X, fields, feats)
		if err != nil {
			return rules.Value{}, err
		}
		if n.Op == "NOT" {
			return rules.BoolVal(!x.B), nil
		}
		return rules.IntVal(-x.I), nil
	case *rules.Binary:
		return evalPartialBinary(c, n, fields, feats)
	case *rules.SetLit:
		return evalPartialSet(c, n, fields, feats)
	case *rules.Call:
		if _, isSignal := c.Signals[n.Name]; isSignal {
			return rules.Value{}, fmt.Errorf("signal %s not available during table fill", key)
		}
		if _, isSub := c.Subs[n.Name]; isSub {
			return rules.Value{}, fmt.Errorf("subbase %s not available during table fill", key)
		}
		args := make([]rules.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := evalPartial(c, a, fields, feats)
			if err != nil {
				return rules.Value{}, err
			}
			args[i] = v
		}
		return rules.ApplyBuiltin(n.Name, args)
	}
	return rules.Value{}, fmt.Errorf("cannot fold expression %s", key)
}

func evalPartialBinary(c *rules.Checked, n *rules.Binary, fields map[string]rules.Value, feats map[string]bool) (rules.Value, error) {
	x, err := evalPartial(c, n.X, fields, feats)
	if err != nil {
		return rules.Value{}, err
	}
	if n.Op == "AND" && !x.B {
		return rules.BoolVal(false), nil
	}
	if n.Op == "OR" && x.B {
		return rules.BoolVal(true), nil
	}
	y, err := evalPartial(c, n.Y, fields, feats)
	if err != nil {
		return rules.Value{}, err
	}
	return rules.ApplyBinary(n.Op, x, y)
}

func evalPartialSet(c *rules.Checked, n *rules.SetLit, fields map[string]rules.Value, feats map[string]bool) (rules.Value, error) {
	vals := make([]rules.Value, len(n.Elems))
	for i, el := range n.Elems {
		v, err := evalPartial(c, el, fields, feats)
		if err != nil {
			return rules.Value{}, err
		}
		vals[i] = v
	}
	return rules.MakeSet(vals)
}
