package fault

import "repro/internal/topology"

// DeadEnds holds NAFTA's directional dead-end states for a mesh. The
// paper describes the state "dead-end-east" as "all columns to the east
// have at least one fault": a node in that state may be unable to
// forward a north- or south-bound message once it has committed east,
// so messages with a vertical component must not enter such a region.
// The states are derived from per-column/per-row fault occupancy and
// are propagated in a wave from the borders (here computed directly;
// the propagation variant lives in the routing package's incremental
// update).
type DeadEnds struct {
	mesh *topology.Mesh
	// ColFault[x] is true if column x contains at least one faulty or
	// disabled node or a faulty vertical link.
	ColFault []bool
	// RowFault[y] likewise for row y and horizontal links.
	RowFault []bool
	// DeadEast[x] is true if every column strictly east of x is
	// faulty; analogously for the other directions.
	DeadEast  []bool
	DeadWest  []bool
	DeadNorth []bool // indexed by row y
	DeadSouth []bool
}

// BuildDeadEnds computes the dead-end state tables for mesh m under
// fault set s with block completion b (pass nil to use raw faults
// only).
func BuildDeadEnds(m *topology.Mesh, s *Set, b *BlockInfo) *DeadEnds {
	d := &DeadEnds{
		mesh:      m,
		ColFault:  make([]bool, m.W),
		RowFault:  make([]bool, m.H),
		DeadEast:  make([]bool, m.W),
		DeadWest:  make([]bool, m.W),
		DeadNorth: make([]bool, m.H),
		DeadSouth: make([]bool, m.H),
	}
	disabled := func(n topology.NodeID) bool {
		if s.NodeFaulty(n) {
			return true
		}
		return b != nil && b.DisabledNode(n)
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			n := m.Node(x, y)
			if disabled(n) {
				d.ColFault[x] = true
				d.RowFault[y] = true
			}
			// Vertical link faults block the column, horizontal ones
			// the row.
			if y+1 < m.H && s.LinkFaulty(n, m.Node(x, y+1)) {
				d.ColFault[x] = true
			}
			if x+1 < m.W && s.LinkFaulty(n, m.Node(x+1, y)) {
				d.RowFault[y] = true
			}
		}
	}
	// Wave from the east border westwards: dead-end-east holds at
	// column x iff all columns x' > x are faulty.
	all := true
	for x := m.W - 1; x >= 0; x-- {
		d.DeadEast[x] = all && x < m.W-1
		all = all && d.ColFault[x]
	}
	all = true
	for x := 0; x < m.W; x++ {
		d.DeadWest[x] = all && x > 0
		all = all && d.ColFault[x]
	}
	all = true
	for y := m.H - 1; y >= 0; y-- {
		d.DeadNorth[y] = all && y < m.H-1
		all = all && d.RowFault[y]
	}
	all = true
	for y := 0; y < m.H; y++ {
		d.DeadSouth[y] = all && y > 0
		all = all && d.RowFault[y]
	}
	return d
}

// NodeDeadEnd reports the dead-end state of node n in mesh direction
// dir (topology.North etc.): entering further in that direction cannot
// escape sideways anymore.
func (d *DeadEnds) NodeDeadEnd(n topology.NodeID, dir int) bool {
	x, y := d.mesh.XY(n)
	switch dir {
	case topology.East:
		return d.DeadEast[x]
	case topology.West:
		return d.DeadWest[x]
	case topology.North:
		return d.DeadNorth[y]
	case topology.South:
		return d.DeadSouth[y]
	}
	return false
}
