package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestSetBasics(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := NewSet()
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	s.FailNode(m.Node(1, 1))
	s.FailLink(m.Node(2, 2), m.Node(2, 3))
	s.FailLink(m.Node(2, 3), m.Node(2, 2)) // same link, canonical form
	if s.NodeCount() != 1 || s.LinkCount() != 1 {
		t.Fatalf("counts = (%d,%d), want (1,1)", s.NodeCount(), s.LinkCount())
	}
	if !s.NodeFaulty(m.Node(1, 1)) || s.NodeFaulty(m.Node(0, 0)) {
		t.Fatal("NodeFaulty wrong")
	}
	if !s.LinkFaulty(m.Node(2, 3), m.Node(2, 2)) {
		t.Fatal("LinkFaulty should be direction independent")
	}
	if s.HopUsable(m.Node(2, 2), m.Node(2, 3)) {
		t.Fatal("hop over faulty link should be unusable")
	}
	if s.HopUsable(m.Node(1, 1), m.Node(1, 2)) {
		t.Fatal("hop from faulty node should be unusable")
	}
	if !s.HopUsable(m.Node(0, 0), m.Node(0, 1)) {
		t.Fatal("healthy hop should be usable")
	}
	s.RepairNode(m.Node(1, 1))
	s.RepairLink(m.Node(2, 2), m.Node(2, 3))
	if !s.Empty() {
		t.Fatal("repairs should empty the set")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSet()
	s.FailNode(3)
	c := s.Clone()
	c.FailNode(4)
	if s.NodeFaulty(4) {
		t.Fatal("Clone must be deep")
	}
	if !c.NodeFaulty(3) {
		t.Fatal("Clone must copy existing faults")
	}
}

func TestPortUsable(t *testing.T) {
	m := topology.NewMesh(3, 3)
	s := NewSet()
	s.FailLink(m.Node(0, 0), m.Node(1, 0))
	if s.PortUsable(m, m.Node(0, 0), topology.East) {
		t.Fatal("east port over faulty link should be unusable")
	}
	if !s.PortUsable(m, m.Node(0, 0), topology.North) {
		t.Fatal("north port should be usable")
	}
	if s.PortUsable(m, m.Node(0, 0), topology.West) {
		t.Fatal("border port should be unusable")
	}
}

func TestIncidentCounts(t *testing.T) {
	h := topology.NewHypercube(3)
	s := NewSet()
	s.FailNode(h.Neighbor(0, 0)) // node 1
	s.FailNode(h.Neighbor(0, 1)) // node 2
	s.FailLink(0, h.Neighbor(0, 2))
	if got := s.FaultyNeighbors(h, 0); got != 2 {
		t.Fatalf("FaultyNeighbors = %d, want 2", got)
	}
	if got := s.FaultyIncidentLinks(h, 0); got != 1 {
		t.Fatalf("FaultyIncidentLinks = %d, want 1", got)
	}
}

func TestFilterIntegration(t *testing.T) {
	m := topology.NewMesh(3, 1)
	s := NewSet()
	s.FailNode(m.Node(1, 0))
	comps := topology.Components(m, s.Filter())
	if len(comps) != 2 {
		t.Fatalf("faulty middle node should split the path, got %d components", len(comps))
	}
}

func TestBuildBlocksLShape(t *testing.T) {
	m := topology.NewMesh(6, 6)
	s, err := LShape(m, 1, 1, 3, 3) // corner (1,1), east arm to (3,1), north arm to (1,3)
	if err != nil {
		t.Fatal(err)
	}
	b := BuildBlocks(m, s)
	// Completion must fill the 3x3 bounding rectangle (1..3)x(1..3).
	for y := 1; y <= 3; y++ {
		for x := 1; x <= 3; x++ {
			if !b.Disabled[m.Node(x, y)] {
				t.Errorf("node (%d,%d) should be disabled", x, y)
			}
		}
	}
	// 9 rectangle cells, 5 faulty -> 4 deactivated healthy nodes.
	if b.Deactivated != 4 {
		t.Fatalf("Deactivated = %d, want 4", b.Deactivated)
	}
	if !b.IsConvex() {
		t.Fatal("completion should be convex")
	}
	// Nodes outside the rectangle must stay enabled.
	if b.Disabled[m.Node(0, 0)] || b.Disabled[m.Node(4, 4)] {
		t.Fatal("nodes outside the block must remain enabled")
	}
}

func TestBuildBlocksSingleFault(t *testing.T) {
	m := topology.NewMesh(5, 5)
	s := NewSet()
	s.FailNode(m.Node(2, 2))
	b := BuildBlocks(m, s)
	if b.Deactivated != 0 {
		t.Fatalf("single fault should deactivate nothing, got %d", b.Deactivated)
	}
	if !b.IsConvex() {
		t.Fatal("single fault is trivially convex")
	}
}

func TestBuildBlocksSingleLinkFault(t *testing.T) {
	m := topology.NewMesh(5, 5)
	s := NewSet()
	s.FailLink(m.Node(2, 2), m.Node(3, 2))
	b := BuildBlocks(m, s)
	if b.Deactivated != 0 {
		t.Fatalf("a lone link fault should deactivate nothing, got %d", b.Deactivated)
	}
}

// Property: the completion always reaches a convex fixpoint, never
// disables more than the whole mesh, and is monotone (all faulty nodes
// disabled).
func TestBuildBlocksConvexProperty(t *testing.T) {
	m := topology.NewMesh(8, 8)
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		for i := 0; i < k; i++ {
			s.FailNode(topology.NodeID(rng.Intn(m.Nodes())))
		}
		b := BuildBlocks(m, s)
		for _, n := range s.FaultyNodes() {
			if !b.Disabled[n] {
				return false
			}
		}
		return b.IsConvex()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadEnds(t *testing.T) {
	m := topology.NewMesh(6, 6)
	s := NewSet()
	// Make every column east of x=3 faulty.
	s.FailNode(m.Node(4, 2))
	s.FailNode(m.Node(5, 4))
	d := BuildDeadEnds(m, s, nil)
	if !d.ColFault[4] || !d.ColFault[5] || d.ColFault[3] {
		t.Fatalf("ColFault wrong: %v", d.ColFault)
	}
	if !d.DeadEast[3] {
		t.Fatal("column 3 should be dead-end-east")
	}
	// At column 4 only column 5 is east and it IS faulty, so 4 is
	// dead-end-east too.
	if !d.DeadEast[4] {
		t.Fatal("column 4 should be dead-end-east")
	}
	if d.DeadEast[5] {
		t.Fatal("easternmost column is never dead-end-east")
	}
	if d.DeadWest[1] || d.DeadNorth[1] || d.DeadSouth[4] {
		t.Fatal("unrelated dead-end states should be clear")
	}
	if !d.NodeDeadEnd(m.Node(3, 0), topology.East) {
		t.Fatal("NodeDeadEnd should reflect DeadEast")
	}
}

func TestDeadEndsVerticalLinkFaults(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := NewSet()
	s.FailLink(m.Node(3, 1), m.Node(3, 2)) // vertical link in column 3
	d := BuildDeadEnds(m, s, nil)
	if !d.ColFault[3] {
		t.Fatal("vertical link fault should mark the column")
	}
	if d.RowFault[1] || d.RowFault[2] {
		t.Fatal("vertical link fault should not mark rows")
	}
	if !d.DeadEast[2] {
		t.Fatal("column 2 should be dead-end-east")
	}
}

func TestRandomConnected(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s, err := Random(m, RandomOptions{Nodes: 5, Links: 5, Seed: 7, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != 5 || s.LinkCount() != 5 {
		t.Fatalf("counts = (%d,%d), want (5,5)", s.NodeCount(), s.LinkCount())
	}
	comps := topology.Components(m, s.Filter())
	if len(comps) != 1 {
		t.Fatalf("KeepConnected violated: %d components", len(comps))
	}
}

func TestRandomAvoid(t *testing.T) {
	m := topology.NewMesh(4, 4)
	avoid := []topology.NodeID{m.Node(0, 0), m.Node(3, 3)}
	for seed := int64(0); seed < 20; seed++ {
		s, err := Random(m, RandomOptions{Nodes: 6, Seed: seed, Avoid: avoid})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range avoid {
			if s.NodeFaulty(n) {
				t.Fatalf("seed %d: avoided node %d failed anyway", seed, n)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	m := topology.NewMesh(6, 6)
	a, err := Random(m, RandomOptions{Nodes: 4, Links: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(m, RandomOptions{Nodes: 4, Links: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed should give same pattern:\n%s\n%s", a, b)
	}
}

func TestRandomImpossible(t *testing.T) {
	m := topology.NewMesh(2, 2)
	// 3 node faults of 4 nodes can never leave a connected pair plus
	// isolated? Actually 1 remaining node IS connected; ask for more
	// faults than nodes minus avoid instead.
	_, err := Random(m, RandomOptions{Nodes: 4, Seed: 1, MaxTries: 5,
		Avoid: []topology.NodeID{0}})
	if err == nil {
		t.Fatal("expected failure when faults cannot be placed")
	}
}

func TestChainScenario(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s, err := Chain(m, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.LinkCount() != 5 {
		t.Fatalf("chain should cut 5 links, got %d", s.LinkCount())
	}
	// The network stays connected (gap at x=5..7).
	comps := topology.Components(m, s.Filter())
	if len(comps) != 1 {
		t.Fatalf("chain should not disconnect the mesh, got %d components", len(comps))
	}
	// Path from just above the chain start to just below must detour
	// past the chain end: distance from (0,4) to (0,3) becomes
	// 2*5 + 1 = 11.
	dist := topology.BFSDist(m, m.Node(0, 4), s.Filter())
	if got := dist[m.Node(0, 3)]; got != 11 {
		t.Fatalf("detour length = %d, want 11", got)
	}
	_, err = Chain(m, 7, 3)
	if err == nil {
		t.Fatal("chain at top row should be rejected")
	}
	_, err = Chain(m, 2, 8)
	if err == nil {
		t.Fatal("full-width chain should be rejected")
	}
}

func TestSchedule(t *testing.T) {
	m := topology.NewMesh(3, 3)
	sc := NewSchedule(nil)
	sc.AddLinkFault(50, m.Node(0, 0), m.Node(1, 0))
	sc.AddNodeFault(10, m.Node(2, 2))
	sc.AddNodeFault(50, m.Node(1, 1))
	if sc.NextTime() != 10 {
		t.Fatalf("NextTime = %d, want 10", sc.NextTime())
	}
	s := NewSet()
	fired := sc.ApplyUpTo(9, s)
	if fired != nil || !s.Empty() {
		t.Fatal("nothing should fire before t=10")
	}
	fired = sc.ApplyUpTo(10, s)
	if len(fired) != 1 || !s.NodeFaulty(m.Node(2, 2)) {
		t.Fatalf("one event at t=10 expected, got %v", fired)
	}
	fired = sc.ApplyUpTo(100, s)
	if len(fired) != 2 {
		t.Fatalf("two events at t=50 expected, got %v", fired)
	}
	if sc.Pending() {
		t.Fatal("schedule should be drained")
	}
	if sc.NextTime() != -1 {
		t.Fatal("NextTime after drain should be -1")
	}
	sc.Reset()
	if !sc.Pending() || sc.NextTime() != 10 {
		t.Fatal("Reset should rewind")
	}
}

// Property of the propagated directional flags: whenever
// Blocked(d,t,n) holds, walking from n in direction t (as far as the
// line is physically passable) never finds the hop d usable; and
// ClearRun(d,n) counts exactly the usable prefix of the straight line
// in direction d.
func TestDirStatesProperty(t *testing.T) {
	m := topology.NewMesh(9, 7)
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewSet()
		for i := 0; i < k; i++ {
			if rng.Intn(2) == 0 {
				s.FailNode(topology.NodeID(rng.Intn(m.Nodes())))
			} else {
				links := topology.Links(m)
				l := links[rng.Intn(len(links))]
				s.FailLink(l.A, l.B)
			}
		}
		b := BuildBlocks(m, s)
		d := BuildDirStates(m, s, b)
		usable := func(n topology.NodeID, p int) bool {
			nb := m.Neighbor(n, p)
			if nb == topology.Invalid || s.NodeFaulty(nb) || b.DisabledNode(nb) || s.LinkFaulty(n, nb) {
				return false
			}
			return true
		}
		for n := 0; n < m.Nodes(); n++ {
			id := topology.NodeID(n)
			if s.NodeFaulty(id) || b.DisabledNode(id) {
				continue
			}
			// ClearRun: count the usable prefix directly.
			for dir := 0; dir < 4; dir++ {
				run := 0
				cur := id
				for usable(cur, dir) {
					run++
					cur = m.Neighbor(cur, dir)
				}
				if d.ClearRun(dir, id) != run {
					return false
				}
			}
			// Blocked: walk the travel direction and check dir never
			// opens while the line is passable.
			for dir := 0; dir < 4; dir++ {
				for travel := 0; travel < 4; travel++ {
					if travel == dir || travel == topology.OppositeMeshPort(dir) {
						continue
					}
					if !d.Blocked(dir, travel, id) {
						continue
					}
					cur := id
					for {
						if usable(cur, dir) {
							return false // flag lied: dir opens here
						}
						if !usable(cur, travel) {
							break
						}
						cur = m.Neighbor(cur, travel)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomEdgeCases sweeps the generator's boundary conditions
// table-driven: empty draws, saturated graphs, tiny meshes where the
// rejection sampler must either succeed quickly or give up cleanly.
func TestRandomEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		mesh    [2]int
		opts    RandomOptions
		wantErr bool
	}{
		{"zero faults", [2]int{4, 4}, RandomOptions{Seed: 1}, false},
		{"zero faults keep-connected", [2]int{4, 4}, RandomOptions{Seed: 1, KeepConnected: true}, false},
		{"links only", [2]int{4, 4}, RandomOptions{Links: 3, Seed: 2, KeepConnected: true}, false},
		{"single node on 2x2", [2]int{2, 2}, RandomOptions{Nodes: 1, Seed: 3, KeepConnected: true}, false},
		{"all nodes exhausted", [2]int{2, 2}, RandomOptions{Nodes: 5, Seed: 4, MaxTries: 10}, true},
		{"avoid leaves nothing", [2]int{2, 2}, RandomOptions{Nodes: 4, Seed: 5, MaxTries: 10,
			Avoid: []topology.NodeID{0}}, true},
		{"disconnection forced", [2]int{3, 1}, RandomOptions{Nodes: 1, Seed: 6, MaxTries: 10,
			KeepConnected: true, Avoid: []topology.NodeID{0, 2}}, true},
		{"more links than graph", [2]int{2, 2}, RandomOptions{Links: 9, Seed: 7, MaxTries: 10}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := topology.NewMesh(c.mesh[0], c.mesh[1])
			s, err := Random(m, c.opts)
			if c.wantErr {
				if err == nil {
					t.Fatalf("expected failure, got %v", s)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.NodeCount() != c.opts.Nodes || s.LinkCount() != c.opts.Links {
				t.Fatalf("counts = (%d,%d), want (%d,%d)",
					s.NodeCount(), s.LinkCount(), c.opts.Nodes, c.opts.Links)
			}
			if c.opts.KeepConnected {
				if comps := topology.Components(m, s.Filter()); len(comps) != 1 {
					t.Fatalf("KeepConnected violated: %d components", len(comps))
				}
			}
		})
	}
}

// TestRandomBlocksConvexOnSmallMeshes: the convex completion must
// reach its fixpoint on whatever patterns the generator draws, even on
// meshes small enough that blocks collide with every border.
func TestRandomBlocksConvexOnSmallMeshes(t *testing.T) {
	for _, wh := range [][2]int{{3, 3}, {4, 3}, {4, 4}, {5, 5}} {
		m := topology.NewMesh(wh[0], wh[1])
		for seed := int64(0); seed < 25; seed++ {
			s, err := Random(m, RandomOptions{
				Nodes: 1 + int(seed)%3, Links: int(seed) % 2,
				Seed: seed, KeepConnected: true, MaxTries: 2000,
			})
			if err != nil {
				// Small meshes legitimately exhaust the sampler for the
				// denser draws; that is the clean-give-up path.
				continue
			}
			b := BuildBlocks(m, s)
			if !b.IsConvex() {
				t.Fatalf("mesh %dx%d seed %d: completion not convex for %v",
					wh[0], wh[1], seed, s)
			}
			for _, n := range s.FaultyNodes() {
				if !b.DisabledNode(n) {
					t.Fatalf("faulty node %d not inside its own block", n)
				}
			}
		}
	}
}

// TestRandomSeedStability pins the determinism contract across every
// option combination the campaign generator uses.
func TestRandomSeedStability(t *testing.T) {
	m := topology.NewMesh(6, 6)
	for _, opts := range []RandomOptions{
		{Nodes: 3, Seed: 5},
		{Nodes: 3, Links: 2, Seed: 5, KeepConnected: true},
		{Links: 4, Seed: 5, Avoid: []topology.NodeID{0, 35}},
	} {
		a, err := Random(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Random(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("options %+v: same seed diverged:\n%s\n%s", opts, a, b)
		}
	}
}
