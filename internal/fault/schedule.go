package fault

import (
	"sort"

	"repro/internal/topology"
)

// EventKind distinguishes the fault-injection event types.
type EventKind int

const (
	// NodeFault marks a node fail-stop event.
	NodeFault EventKind = iota
	// LinkFault marks a bidirectional link failure.
	LinkFault
)

// Event is a timed fault injection.
type Event struct {
	Time int64
	Kind EventKind
	Node topology.NodeID // for NodeFault
	Link topology.Link   // for LinkFault
}

// Schedule is an ordered list of fault injections applied during a
// simulation. Per the paper's assumption iv, the simulator drains or
// freezes affected traffic while each event's diagnosis (state
// propagation) runs to a fixpoint.
//
// A Schedule is a cursor over its events: ApplyUpTo consumes them in
// time order. Consumers that need their own replay position — e.g.
// sim.Run, which may execute the same Config several times or across
// parallel Replicate jobs — must work on a Clone; a shared cursor
// would silently replay nothing on the second drain (and race under
// concurrent use).
type Schedule struct {
	events []Event
	next   int
}

// NewSchedule builds a schedule from events (sorted by time
// internally; the argument slice is not retained).
func NewSchedule(events []Event) *Schedule {
	ev := make([]Event, len(events))
	copy(ev, events)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Time < ev[j].Time })
	return &Schedule{events: ev}
}

// AddNodeFault appends a node-fault event (call before first ApplyUpTo).
func (sc *Schedule) AddNodeFault(t int64, n topology.NodeID) {
	sc.events = append(sc.events, Event{Time: t, Kind: NodeFault, Node: n})
	sort.SliceStable(sc.events, func(i, j int) bool { return sc.events[i].Time < sc.events[j].Time })
}

// AddLinkFault appends a link-fault event.
func (sc *Schedule) AddLinkFault(t int64, a, b topology.NodeID) {
	sc.events = append(sc.events, Event{Time: t, Kind: LinkFault, Link: topology.MakeLink(a, b)})
	sort.SliceStable(sc.events, func(i, j int) bool { return sc.events[i].Time < sc.events[j].Time })
}

// Pending reports whether unapplied events remain.
func (sc *Schedule) Pending() bool { return sc.next < len(sc.events) }

// NextTime returns the time of the next unapplied event, or -1 when
// none remain.
func (sc *Schedule) NextTime() int64 {
	if !sc.Pending() {
		return -1
	}
	return sc.events[sc.next].Time
}

// ApplyUpTo applies every event with Time <= t to set s and returns the
// newly applied events (nil when none fired).
func (sc *Schedule) ApplyUpTo(t int64, s *Set) []Event {
	var fired []Event
	for sc.next < len(sc.events) && sc.events[sc.next].Time <= t {
		e := sc.events[sc.next]
		switch e.Kind {
		case NodeFault:
			s.FailNode(e.Node)
		case LinkFault:
			s.FailLink(e.Link.A, e.Link.B)
		}
		fired = append(fired, e)
		sc.next++
	}
	return fired
}

// Reset rewinds the schedule so it can be replayed on a fresh Set.
func (sc *Schedule) Reset() { sc.next = 0 }

// Clone returns an independent copy of the schedule with a rewound
// cursor. Runs that drain a schedule clone it first, so the caller's
// instance stays reusable and two concurrent runs never share the
// mutable replay position.
func (sc *Schedule) Clone() *Schedule {
	ev := make([]Event, len(sc.events))
	copy(ev, sc.events)
	return &Schedule{events: ev}
}

// Len returns the number of events in the schedule.
func (sc *Schedule) Len() int { return len(sc.events) }

// Events returns a copy of the schedule's events in time order.
func (sc *Schedule) Events() []Event {
	ev := make([]Event, len(sc.events))
	copy(ev, sc.events)
	return ev
}
