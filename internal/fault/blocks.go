package fault

import "repro/internal/topology"

// BlockInfo is the result of rectangular fault-block completion on a
// 2-D mesh. NAFTA-style algorithms deactivate some healthy nodes so
// that every fault region becomes convex (a rectangle); messages are
// then routed around rectangles, which needs only constant state per
// node. The cost is a violation of the paper's condition 3: deactivated
// healthy nodes can no longer source, sink or forward messages.
type BlockInfo struct {
	mesh *topology.Mesh
	// Disabled[n] is true for nodes that are faulty or deactivated by
	// the convex completion.
	Disabled []bool
	// Deactivated counts healthy nodes sacrificed by the completion.
	Deactivated int
	// Rounds is how many propagation waves were needed to reach the
	// fixpoint; each wave corresponds to one neighbour-to-neighbour
	// state exchange in hardware.
	Rounds int
}

// dimFault reports, per dimension, whether node (x,y) observes a fault
// or disabled node in the negative or positive direction of that
// dimension. A faulty incident link counts like a faulty neighbour in
// that direction; a mesh border does NOT count as a fault (fault
// rectangles only grow from real faults).
func dimFault(m *topology.Mesh, s *Set, disabled []bool, x, y, dx, dy int) bool {
	nx, ny := x+dx, y+dy
	if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
		return false
	}
	n := m.Node(x, y)
	nb := m.Node(nx, ny)
	if s.NodeFaulty(nb) || disabled[nb] {
		return true
	}
	return s.LinkFaulty(n, nb)
}

// BuildBlocks runs the convex completion to a fixpoint: a healthy node
// becomes deactivated when it observes a fault/deactivated neighbour
// (or faulty link) in both mesh dimensions. This fills concave corners
// until every fault region is rectangular, matching the paper's
// description "concave fault patterns are completed to a convex shape
// excluding the use of some non-faulty nodes".
func BuildBlocks(m *topology.Mesh, s *Set) *BlockInfo {
	b := &BlockInfo{
		mesh:     m,
		Disabled: make([]bool, m.Nodes()),
	}
	for n := range b.Disabled {
		b.Disabled[n] = s.NodeFaulty(topology.NodeID(n))
	}
	for {
		changed := false
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				n := m.Node(x, y)
				if b.Disabled[n] {
					continue
				}
				vert := dimFault(m, s, b.Disabled, x, y, 0, 1) || dimFault(m, s, b.Disabled, x, y, 0, -1)
				horiz := dimFault(m, s, b.Disabled, x, y, 1, 0) || dimFault(m, s, b.Disabled, x, y, -1, 0)
				if vert && horiz {
					b.Disabled[n] = true
					b.Deactivated++
					changed = true
				}
			}
		}
		b.Rounds++
		if !changed {
			break
		}
	}
	return b
}

// DisabledNode reports whether n is faulty or deactivated.
func (b *BlockInfo) DisabledNode(n topology.NodeID) bool { return b.Disabled[n] }

// IsConvex verifies the fixpoint invariant: the set of disabled nodes,
// restricted to each connected group, forms a full rectangle. Used by
// property tests.
func (b *BlockInfo) IsConvex() bool {
	m := b.mesh
	seen := make([]bool, m.Nodes())
	for start := 0; start < m.Nodes(); start++ {
		if !b.Disabled[start] || seen[start] {
			continue
		}
		// Flood-fill the disabled group (4-connectivity).
		minX, minY := m.W, m.H
		maxX, maxY := -1, -1
		stack := []topology.NodeID{topology.NodeID(start)}
		seen[start] = true
		var members []topology.NodeID
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, n)
			x, y := m.XY(n)
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			for p := 0; p < m.Ports(); p++ {
				nb := m.Neighbor(n, p)
				if nb == topology.Invalid || seen[nb] || !b.Disabled[nb] {
					continue
				}
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
		// The bounding rectangle must be entirely disabled.
		if len(members) != (maxX-minX+1)*(maxY-minY+1) {
			return false
		}
	}
	return true
}
