// Package fault implements the paper's fault model (Section 2.1,
// assumptions i-v): links are bidirectional and both directions fail
// together; nodes are fail-stop and adjacent nodes learn about failures;
// multiple faults are allowed; no messages are affected during the
// diagnosis phase (callers run state propagation to a fixpoint between
// fault injection and resumed traffic).
//
// The package also provides the structural fault analyses the two case
// studies depend on: rectangular fault-block completion for the mesh
// (NAFTA completes concave fault patterns to a convex shape) and the
// dead-end row/column states, plus scenario generators for the
// evaluation harness (random fault patterns, the fault-chain situation
// of Figure 2).
package fault

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Set is a mutable collection of node and link faults. The zero value
// is not usable; construct with NewSet. Set is not safe for concurrent
// mutation.
type Set struct {
	nodes map[topology.NodeID]bool
	links map[topology.Link]bool
}

// NewSet returns an empty fault set.
func NewSet() *Set {
	return &Set{
		nodes: make(map[topology.NodeID]bool),
		links: make(map[topology.Link]bool),
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	for n := range s.nodes {
		c.nodes[n] = true
	}
	for l := range s.links {
		c.links[l] = true
	}
	return c
}

// FailNode marks node n faulty (fail-stop, assumption ii).
func (s *Set) FailNode(n topology.NodeID) { s.nodes[n] = true }

// FailLink marks the undirected link between a and b faulty
// (assumption i: both directions fail together).
func (s *Set) FailLink(a, b topology.NodeID) { s.links[topology.MakeLink(a, b)] = true }

// RepairNode removes a node fault (used by reconfiguration
// experiments).
func (s *Set) RepairNode(n topology.NodeID) { delete(s.nodes, n) }

// RepairLink removes a link fault.
func (s *Set) RepairLink(a, b topology.NodeID) { delete(s.links, topology.MakeLink(a, b)) }

// NodeFaulty reports whether node n has failed.
func (s *Set) NodeFaulty(n topology.NodeID) bool { return s.nodes[n] }

// LinkFaulty reports whether the undirected link a-b has failed. A link
// adjacent to a faulty node is NOT automatically considered faulty here;
// use HopUsable for the combined check.
func (s *Set) LinkFaulty(a, b topology.NodeID) bool { return s.links[topology.MakeLink(a, b)] }

// HopUsable reports whether a message can be forwarded from a to b:
// both nodes alive and the connecting link intact.
func (s *Set) HopUsable(a, b topology.NodeID) bool {
	return !s.nodes[a] && !s.nodes[b] && !s.links[topology.MakeLink(a, b)]
}

// PortUsable reports whether the output port p of node n in topology g
// leads to an operational neighbour over an operational link.
func (s *Set) PortUsable(g topology.Graph, n topology.NodeID, p int) bool {
	m := g.Neighbor(n, p)
	if m == topology.Invalid {
		return false
	}
	return s.HopUsable(n, m)
}

// NodeCount returns the number of faulty nodes.
func (s *Set) NodeCount() int { return len(s.nodes) }

// LinkCount returns the number of faulty links (not counting links
// implied by faulty nodes).
func (s *Set) LinkCount() int { return len(s.links) }

// Empty reports whether the set contains no faults.
func (s *Set) Empty() bool { return len(s.nodes) == 0 && len(s.links) == 0 }

// FaultyNodes returns the faulty nodes in ascending order.
func (s *Set) FaultyNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FaultyLinks returns the faulty links in canonical ascending order.
func (s *Set) FaultyLinks() []topology.Link {
	out := make([]topology.Link, 0, len(s.links))
	for l := range s.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Filter adapts the fault set to the topology package's Filter type so
// graph algorithms run on the operational sub-network.
func (s *Set) Filter() *topology.Filter {
	return &topology.Filter{
		NodeUp: func(n topology.NodeID) bool { return !s.nodes[n] },
		LinkUp: func(a, b topology.NodeID) bool { return !s.links[topology.MakeLink(a, b)] },
	}
}

// FaultyIncidentLinks returns how many of node n's incident links are
// faulty (counting explicit link faults only, per ROUTE_C's "ends of two
// faulty links" condition).
func (s *Set) FaultyIncidentLinks(g topology.Graph, n topology.NodeID) int {
	c := 0
	for p := 0; p < g.Ports(); p++ {
		m := g.Neighbor(n, p)
		if m == topology.Invalid {
			continue
		}
		if s.links[topology.MakeLink(n, m)] {
			c++
		}
	}
	return c
}

// FaultyNeighbors returns how many of node n's neighbours have failed.
func (s *Set) FaultyNeighbors(g topology.Graph, n topology.NodeID) int {
	c := 0
	for p := 0; p < g.Ports(); p++ {
		m := g.Neighbor(n, p)
		if m == topology.Invalid {
			continue
		}
		if s.nodes[m] {
			c++
		}
	}
	return c
}

func (s *Set) String() string {
	return fmt.Sprintf("faults{nodes:%v links:%v}", s.FaultyNodes(), s.FaultyLinks())
}
