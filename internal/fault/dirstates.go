package fault

import "repro/internal/topology"

// DirStates holds NAFTA's propagated directional blocking flags: for a
// node n, Blocked(d, t, n) is true when, starting at n and travelling
// in direction t along the straight line to the mesh border, the port
// d is blocked (by a fault, a disabled node or the border) at every
// node on the way. A north-bound message that finds north blocked
// locally may detour east only if some node east of it re-opens the
// north direction — exactly what !Blocked(north, east, n_east) states.
//
// The flags are one bit per (d,t) pair and node; they are computed by
// the same wave propagation as the paper's dead-end states (each node
// combines its local observation with the flag of its t-neighbour) and
// therefore respect NAFTA's constant-memory-per-node discipline. The
// aggregate over whole columns ("all columns to the east have at least
// one fault") is the coarse special case recorded by DeadEnds.
type DirStates struct {
	mesh *topology.Mesh
	// blocked[d][t] is the per-node flag slice for blocked direction d
	// while travelling in direction t (t perpendicular or equal is
	// stored but only perpendicular pairs are meaningful).
	blocked [topology.MeshPorts][topology.MeshPorts][]bool
	// runs[d] is the per-node clear-run length in direction d: the
	// number of consecutive usable hops before a fault, a disabled
	// node or the border interrupts the straight line. The value needs
	// only ceil(log2(max(W,H))) bits per direction and node and is
	// propagated from the neighbour like the flags (run(n) =
	// 1 + run(neighbour) if the first hop is clear).
	runs [topology.MeshPorts][]int
}

// BuildDirStates computes the directional blocking flags for mesh m
// under fault set s with block completion b (nil to use raw faults).
func BuildDirStates(m *topology.Mesh, s *Set, b *BlockInfo) *DirStates {
	d := &DirStates{mesh: m}
	disabled := func(n topology.NodeID) bool {
		if s.NodeFaulty(n) {
			return true
		}
		return b != nil && b.DisabledNode(n)
	}
	// portBlocked(n, p): the hop through p is unusable (border, fault
	// or disabled target).
	portBlocked := func(n topology.NodeID, p int) bool {
		nb := m.Neighbor(n, p)
		if nb == topology.Invalid {
			return true
		}
		return disabled(nb) || s.LinkFaulty(n, nb)
	}
	for dir := 0; dir < topology.MeshPorts; dir++ {
		runs := make([]int, m.Nodes())
		for _, n := range travelOrder(m, dir) {
			if portBlocked(n, dir) {
				runs[n] = 0
			} else {
				runs[n] = 1 + runs[m.Neighbor(n, dir)]
			}
		}
		d.runs[dir] = runs
	}
	for dir := 0; dir < topology.MeshPorts; dir++ {
		for travel := 0; travel < topology.MeshPorts; travel++ {
			if travel == dir || travel == topology.OppositeMeshPort(dir) {
				continue // only perpendicular travel is meaningful
			}
			flags := make([]bool, m.Nodes())
			// Propagate against the travel direction: the flag of n
			// depends on the flag of its travel-direction neighbour,
			// so we start at the border the travel points to. Order
			// nodes by decreasing coordinate along travel.
			for _, n := range travelOrder(m, travel) {
				local := portBlocked(n, dir)
				// If the travel direction itself is interrupted
				// (border, fault, disabled node) the wave ends here:
				// nothing beyond the interruption can re-open dir for
				// a message detouring along this line.
				if portBlocked(n, travel) {
					flags[n] = local
				} else {
					flags[n] = local && flags[m.Neighbor(n, travel)]
				}
			}
			d.blocked[dir][travel] = flags
		}
	}
	return d
}

// travelOrder returns all mesh nodes ordered so that each node's
// neighbour in direction travel comes earlier (border-first sweep).
func travelOrder(m *topology.Mesh, travel int) []topology.NodeID {
	out := make([]topology.NodeID, 0, m.Nodes())
	switch travel {
	case topology.East: // sweep x descending
		for x := m.W - 1; x >= 0; x-- {
			for y := 0; y < m.H; y++ {
				out = append(out, m.Node(x, y))
			}
		}
	case topology.West:
		for x := 0; x < m.W; x++ {
			for y := 0; y < m.H; y++ {
				out = append(out, m.Node(x, y))
			}
		}
	case topology.North: // sweep y descending
		for y := m.H - 1; y >= 0; y-- {
			for x := 0; x < m.W; x++ {
				out = append(out, m.Node(x, y))
			}
		}
	case topology.South:
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				out = append(out, m.Node(x, y))
			}
		}
	}
	return out
}

// ClearRun returns the number of consecutive usable hops from n in
// direction dir before the straight line is interrupted by a fault,
// a disabled node or the mesh border.
func (d *DirStates) ClearRun(dir int, n topology.NodeID) int {
	if d.runs[dir] == nil {
		return 0
	}
	return d.runs[dir][n]
}

// Blocked reports whether direction dir stays blocked from n onwards
// when travelling in direction travel (which must be perpendicular to
// dir).
func (d *DirStates) Blocked(dir, travel int, n topology.NodeID) bool {
	flags := d.blocked[dir][travel]
	if flags == nil {
		return false
	}
	return flags[n]
}
