package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// RandomOptions controls random fault-pattern generation.
type RandomOptions struct {
	Nodes int   // number of node faults
	Links int   // number of link faults (besides node faults)
	Seed  int64 // PRNG seed (deterministic patterns)
	// KeepConnected retries until the surviving network is a single
	// connected component (so delivery experiments stay well defined).
	KeepConnected bool
	// Avoid lists nodes that must not fail (e.g. the observation
	// nodes of an experiment).
	Avoid []topology.NodeID
	// MaxTries bounds the rejection sampling (default 10000).
	MaxTries int
}

// Random draws a random fault pattern on g according to opts. It
// returns an error when no acceptable pattern is found within MaxTries
// (e.g. too many faults for a connected remainder).
func Random(g topology.Graph, opts RandomOptions) (*Set, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	maxTries := opts.MaxTries
	if maxTries == 0 {
		maxTries = 10000
	}
	avoid := make(map[topology.NodeID]bool, len(opts.Avoid))
	for _, n := range opts.Avoid {
		avoid[n] = true
	}
	links := topology.Links(g)
	for try := 0; try < maxTries; try++ {
		s := NewSet()
		ok := true
		for i := 0; i < opts.Nodes; i++ {
			// Draw a distinct non-avoided node.
			var n topology.NodeID
			for attempts := 0; ; attempts++ {
				n = topology.NodeID(rng.Intn(g.Nodes()))
				if !avoid[n] && !s.NodeFaulty(n) {
					break
				}
				if attempts > 100*g.Nodes() {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			s.FailNode(n)
		}
		for i := 0; ok && i < opts.Links; i++ {
			var l topology.Link
			for attempts := 0; ; attempts++ {
				l = links[rng.Intn(len(links))]
				if !s.LinkFaulty(l.A, l.B) && !s.NodeFaulty(l.A) && !s.NodeFaulty(l.B) {
					break
				}
				if attempts > 100*len(links) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			s.FailLink(l.A, l.B)
		}
		if !ok {
			continue
		}
		if opts.KeepConnected {
			comps := topology.Components(g, s.Filter())
			if len(comps) != 1 {
				continue
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("fault: no acceptable random pattern after %d tries (nodes=%d links=%d on %s)",
		maxTries, opts.Nodes, opts.Links, g.Name())
}

// Chain builds the Figure 2 scenario: a chain of faulty links attached
// to the west border of mesh m at height y (the links cut vertically
// between rows y and y+1 for columns 0..length-1). A node just west of
// and above the chain must know the chain's full extent to decide on
// which side to route a message addressed below the chain — the
// paper's argument that purposiveness needs Omega(|F|) memory in the
// worst case.
func Chain(m *topology.Mesh, y, length int) (*Set, error) {
	if y < 0 || y+1 >= m.H {
		return nil, fmt.Errorf("fault: chain row %d out of range for %s", y, m.Name())
	}
	if length < 1 || length >= m.W {
		return nil, fmt.Errorf("fault: chain length %d out of range for %s (must leave a gap)", length, m.Name())
	}
	s := NewSet()
	for x := 0; x < length; x++ {
		s.FailLink(m.Node(x, y), m.Node(x, y+1))
	}
	return s, nil
}

// LShape places an L-shaped (concave) pattern of node faults with the
// corner at (x,y), one arm extending east for armE nodes and one north
// for armN nodes. Used to exercise the convex completion.
func LShape(m *topology.Mesh, x, y, armE, armN int) (*Set, error) {
	if x+armE > m.W || y+armN > m.H {
		return nil, fmt.Errorf("fault: L-shape at (%d,%d) arms (%d,%d) exceeds %s", x, y, armE, armN, m.Name())
	}
	s := NewSet()
	for i := 0; i < armE; i++ {
		s.FailNode(m.Node(x+i, y))
	}
	for j := 0; j < armN; j++ {
		s.FailNode(m.Node(x, y+j))
	}
	return s, nil
}
