package campaign

import (
	"testing"
)

// A hot-swap under an active fault schedule must survive the full
// oracle battery — invariants, conservation, justified drops — and the
// differential check (fast vs interpreted, both across the swaps).
func TestEvaluateHotSwapUnderFaultSchedule(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Scenario
	}{
		{"nafta", Scenario{
			ID: 0, Algo: AlgoNAFTA, MeshW: 6, MeshH: 6,
			Seed: 11, Rate: 0.06, Length: 5,
			Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
			FaultNodes: []int{14},
			Events: []TimedFault{
				{Time: 350, Kind: "node", Node: 27},
				{Time: 550, Kind: "link", A: 3, B: 9},
			},
			// One swap between the timed faults, one after: the fresh
			// engines must inherit the cumulative fault state.
			Swaps: []int64{450, 700},
		}},
		{"routec", Scenario{
			ID: 1, Algo: AlgoRouteC, CubeDim: 4,
			Seed: 12, Rate: 0.06, Length: 5,
			Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
			FaultNodes: []int{5},
			Swaps:      []int64{300, 650},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Algo: tc.s.Algo, Differential: true}
			vio, pm, err := Evaluate(&tc.s, &opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(vio) != 0 {
				t.Fatalf("hot-swap scenario violated the oracles: %v", vio)
			}
			if pm != nil {
				t.Fatalf("hot-swap scenario stalled: %s at cycle %d", pm.Reason, pm.Cycle)
			}
		})
	}
}

// The generator must actually produce hot-swap scenarios (roughly a
// third of each family), with every swap inside the run window.
func TestGenerateIncludesSwaps(t *testing.T) {
	for _, algo := range Algos {
		opts := Options{Algo: algo, Scenarios: 30, Seed: 5}
		scens, err := Generate(&opts)
		if err != nil {
			t.Fatal(err)
		}
		withSwaps := 0
		for _, s := range scens {
			if len(s.Swaps) == 0 {
				continue
			}
			withSwaps++
			for _, at := range s.Swaps {
				if at < s.Warmup/2 || at >= s.Warmup+s.Measure {
					t.Fatalf("%s scenario %d: swap at %d outside [%d,%d)",
						algo, s.ID, at, s.Warmup/2, s.Warmup+s.Measure)
				}
			}
		}
		if withSwaps == 0 {
			t.Fatalf("%s: no hot-swap scenarios among %d generated", algo, len(scens))
		}
	}
}
