package campaign

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Per-scenario PRNG decorrelation: consecutive campaign seeds must not
// produce overlapping scenario streams, so each scenario's generator
// is seeded with the golden-ratio multiple of its index.
const seedStride = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64

// Generate builds opts.Scenarios scenarios for opts.Algo. Generation
// is deterministic in opts.Seed; every scenario embeds everything
// needed to replay it in isolation.
func Generate(opts *Options) ([]Scenario, error) {
	out := make([]Scenario, 0, opts.Scenarios)
	for i := 0; i < opts.Scenarios; i++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*seedStride))
		var (
			s   Scenario
			err error
		)
		switch opts.Algo {
		case AlgoMaze:
			s, err = genMaze(i, rng)
		case AlgoNAFTA:
			s, err = genNAFTA(i, rng)
		case AlgoRouteC:
			s, err = genRouteC(i, rng)
		default:
			return nil, fmt.Errorf("campaign: unknown algo %q (valid: %v)", opts.Algo, Algos)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// base fills the traffic and protocol parameters shared by both
// families. Rates stay below saturation so a failed drain is a genuine
// anomaly, not congestion.
func base(id int, algo string, rng *rand.Rand) Scenario {
	return Scenario{
		ID:          id,
		Algo:        algo,
		Seed:        rng.Int63(),
		Rate:        0.05 + rng.Float64()*0.05,
		Length:      4 + rng.Intn(5),
		Warmup:      300,
		Measure:     1200,
		Drain:       30000,
		LivelockAge: 20000,
	}
}

// setToScenario copies a generated fault.Set into the scenario's plain
// fields.
func setToScenario(s *Scenario, f *fault.Set) {
	for _, n := range f.FaultyNodes() {
		s.FaultNodes = append(s.FaultNodes, int(n))
	}
	for _, l := range f.FaultyLinks() {
		s.FaultLinks = append(s.FaultLinks, [2]int{int(l.A), int(l.B)})
	}
}

// genNAFTA draws one mesh scenario: convex and concave static fault
// patterns (random sets, the Figure 2 fault chain, L-shapes feeding
// the block completion) plus, in one kind, timed mid-run events.
func genNAFTA(id int, rng *rand.Rand) (Scenario, error) {
	sizes := [][2]int{{6, 6}, {8, 8}, {8, 6}}
	wh := sizes[rng.Intn(len(sizes))]
	w, h := wh[0], wh[1]
	m := topology.NewMesh(w, h)
	s := base(id, AlgoNAFTA, rng)
	s.MeshW, s.MeshH = w, h

	switch rng.Intn(4) {
	case 0: // random static pattern
		f, err := fault.Random(m, fault.RandomOptions{
			Nodes: 1 + rng.Intn(4), Links: rng.Intn(3),
			Seed: rng.Int63(), KeepConnected: true,
		})
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
	case 1: // the paper's Figure 2 fault chain
		f, err := fault.Chain(m, rng.Intn(h-1), 1+rng.Intn(w-2))
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
	case 2: // concave L-shape exercising convex completion
		x, y := rng.Intn(w-2), rng.Intn(h-2)
		f, err := fault.LShape(m, x, y, 1+rng.Intn(2), 1+rng.Intn(2))
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
	case 3: // random static pattern plus timed mid-run events
		f, err := fault.Random(m, fault.RandomOptions{
			Nodes: 1 + rng.Intn(2), Links: rng.Intn(2),
			Seed: rng.Int63(), KeepConnected: true,
		})
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
		if err := addEvents(&s, m, rng, false); err != nil {
			return s, err
		}
	}
	addSwaps(&s, rng)
	return s, nil
}

// addSwaps gives roughly a third of the scenarios 1-2 mid-run hot
// swaps of the same algorithm, placed between mid-warm-up and the end
// of the measurement window — the swap rides on top of whatever fault
// story the scenario already has. (Drawn after every other parameter
// so pre-swap scenario streams stay unchanged.)
func addSwaps(s *Scenario, rng *rand.Rand) {
	if rng.Intn(3) != 0 {
		return
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		s.Swaps = append(s.Swaps, s.Warmup/2+rng.Int63n(s.Warmup/2+s.Measure))
	}
	sort.Slice(s.Swaps, func(i, j int) bool { return s.Swaps[i] < s.Swaps[j] })
}

// addEvents draws 1-3 timed fault events. Unless allowPartition is
// set, the cumulative final state must keep the surviving sub-network
// in one component (so the scenario stays a routing exercise, not a
// partition exercise); the maze family lifts that restriction because
// its delivery oracle certifies partitions explicitly.
func addEvents(s *Scenario, g topology.Graph, rng *rand.Rand, allowPartition bool) error {
	links := topology.Links(g)
	horizon := s.Warmup/2 + s.Measure*3/4
	for try := 0; try < 100; try++ {
		cand := *s
		cand.Events = nil
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			t := s.Warmup/2 + rng.Int63n(horizon)
			if rng.Intn(2) == 0 {
				cand.Events = append(cand.Events, TimedFault{
					Time: t, Kind: "node", Node: rng.Intn(g.Nodes())})
			} else {
				l := links[rng.Intn(len(links))]
				cand.Events = append(cand.Events, TimedFault{
					Time: t, Kind: "link", A: int(l.A), B: int(l.B)})
			}
		}
		// The final cumulative set must leave one live component, and
		// the events must actually add faults (no duplicates of the
		// initial set).
		final := cand.FaultStateAt(1 << 62)
		if final.NodeCount()+final.LinkCount() != s.atoms()+len(cand.Events)-len(s.Events) {
			continue
		}
		if !allowPartition {
			if comps := topology.Components(g, final.Filter()); len(comps) != 1 {
				continue
			}
		}
		s.Events = cand.Events
		return nil
	}
	// No acceptable event draw: keep the static scenario.
	return nil
}

// genMaze draws one maze scenario. The family routes on meshes, tori
// and random irregular graphs — the topology rotates deterministically
// with the scenario ID (id%3: mesh, torus, irregular), so a campaign
// of 3n scenarios covers each exactly n times. Unlike the NAFTA
// generator, fault patterns may partition the network and routinely
// exceed any convexity bound: the guaranteed-delivery oracle demands
// that every cross-partition drop carries a true unreachability
// verdict and everything else is delivered — zero sacrifices.
func genMaze(id int, rng *rand.Rand) (Scenario, error) {
	s := base(id, AlgoMaze, rng)
	var g topology.Graph
	switch id % 3 {
	case 0:
		sizes := [][2]int{{6, 6}, {8, 8}, {8, 6}}
		wh := sizes[rng.Intn(len(sizes))]
		s.MeshW, s.MeshH = wh[0], wh[1]
		g = topology.NewMesh(wh[0], wh[1])
	case 1:
		sizes := [][2]int{{6, 6}, {6, 5}, {5, 5}, {8, 6}}
		wh := sizes[rng.Intn(len(sizes))]
		s.TorusW, s.TorusH = wh[0], wh[1]
		g = topology.NewTorus(wh[0], wh[1])
	default:
		nodes := 18 + rng.Intn(10)
		extra := 6 + rng.Intn(6)
		// Redraw until the degree fits the maze port bound; the seed is
		// stored so the scenario replays without the rejected draws.
		for {
			seed := rng.Int63()
			irr, err := topology.RandomIrregular(nodes, extra, seed)
			if err != nil {
				return s, err
			}
			if irr.Ports() <= routing.MazeMaxPorts {
				s.IrrNodes, s.IrrExtra, s.IrrSeed = nodes, extra, seed
				g = irr
				break
			}
		}
	}

	switch rng.Intn(4) {
	case 0: // random faults, partitions allowed
		f, err := fault.Random(g, fault.RandomOptions{
			Nodes: 1 + rng.Intn(4), Links: rng.Intn(4),
			Seed: rng.Int63(),
		})
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
	case 1: // a straight cut across the bisection
		mazeCut(&s, g, rng)
	case 2: // concave pocket driving long wall-follow traversals
		if m, ok := g.(*topology.Mesh); ok {
			f, err := fault.LShape(m, rng.Intn(s.MeshW-2), rng.Intn(s.MeshH-2), 1+rng.Intn(2), 1+rng.Intn(2))
			if err != nil {
				return s, err
			}
			setToScenario(&s, f)
		} else {
			f, err := fault.Random(g, fault.RandomOptions{
				Nodes: 2 + rng.Intn(3), Links: 1 + rng.Intn(3),
				Seed: rng.Int63(),
			})
			if err != nil {
				return s, err
			}
			setToScenario(&s, f)
		}
	case 3: // random faults plus timed mid-run events, partitions allowed
		f, err := fault.Random(g, fault.RandomOptions{
			Nodes: 1 + rng.Intn(3), Links: rng.Intn(2),
			Seed: rng.Int63(),
		})
		if err != nil {
			return s, err
		}
		setToScenario(&s, f)
		if err := addEvents(&s, g, rng, true); err != nil {
			return s, err
		}
	}
	addSwaps(&s, rng)
	return s, nil
}

// mazeCut fails a straight cut. On a mesh a full node column
// partitions the survivors; on a torus one link ring leaves the wrap
// intact (defeating the naive disconnection heuristic — the forced
// escape must still deliver) and a second ring, drawn half the time,
// genuinely partitions it; on an irregular graph the cut isolates one
// node by failing its every link.
func mazeCut(s *Scenario, g topology.Graph, rng *rand.Rand) {
	switch t := g.(type) {
	case *topology.Mesh:
		x := 1 + rng.Intn(s.MeshW-2)
		for y := 0; y < s.MeshH; y++ {
			s.FaultNodes = append(s.FaultNodes, int(t.Node(x, y)))
		}
	case *topology.Torus:
		cuts := []int{rng.Intn(s.TorusW)}
		if rng.Intn(2) == 0 {
			cuts = append(cuts, (cuts[0]+1+rng.Intn(s.TorusW-1))%s.TorusW)
		}
		for _, x := range cuts {
			for y := 0; y < s.TorusH; y++ {
				s.FaultLinks = append(s.FaultLinks, [2]int{int(t.Node(x, y)), int(t.Node((x+1)%s.TorusW, y))})
			}
		}
	default:
		n := topology.NodeID(rng.Intn(g.Nodes()))
		for p := 0; p < g.Ports(); p++ {
			if nb := g.Neighbor(n, p); nb != topology.Invalid {
				s.FaultLinks = append(s.FaultLinks, [2]int{int(n), int(nb)})
			}
		}
	}
}

// genRouteC draws one hypercube scenario inside ROUTE_C's guarantee
// regime: up to dim-1 node faults, no link faults, surviving cube
// connected. (Beyond-guarantee behaviour is exercised by the targeted
// tests in internal/routing; the campaign asserts the regime where
// every drop is a bug.)
func genRouteC(id int, rng *rand.Rand) (Scenario, error) {
	dim := 4 + rng.Intn(2)
	cube := topology.NewHypercube(dim)
	s := base(id, AlgoRouteC, rng)
	s.CubeDim = dim
	f, err := fault.Random(cube, fault.RandomOptions{
		Nodes: 1 + rng.Intn(dim-1),
		Seed:  rng.Int63(), KeepConnected: true,
	})
	if err != nil {
		return s, err
	}
	setToScenario(&s, f)
	addSwaps(&s, rng)
	return s, nil
}
