// Package campaign is the randomized fault-injection conformance
// harness: it generates seeded fault scenarios per algorithm family,
// executes them in parallel on the internal/sim worker machinery, and
// checks a battery of oracles after each run — simulator invariants,
// flit conservation, justified-drop auditing against the native
// reference algorithm, watchdog/livelock cleanliness and fast-path vs
// interpreted-path agreement. When a scenario violates an oracle, a
// deterministic delta-debugging shrinker minimizes the fault set and
// schedule, and the result is emitted as a replayable JSON artifact.
//
// The drop oracle is deliberately local: a fault-tolerant algorithm
// like NAFTA legitimately sacrifices a small fraction of node pairs
// (the paper accepts ~1% undeliverable pairs under convex fault-block
// completion), so "every reachable pair delivers" would be a false
// oracle. Instead, every dropped message carries the exact decision
// site that absorbed it (node, in-port, in-VC and the final header);
// the oracle replays that single decision on the native reference
// implementation under the fault state reconstructed at drop time. A
// drop is a violation only when the reference still finds a candidate
// — which is precisely the signature of a broken rule table or
// adapter, never of a legitimate sacrifice.
package campaign

import (
	"fmt"
	"sort"

	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Algorithm family names accepted by Options.Algo and Scenario.Algo.
const (
	AlgoMaze   = "maze"
	AlgoNAFTA  = "nafta"
	AlgoRouteC = "routec"
)

// Algos lists the valid algorithm families (for CLI validation).
var Algos = []string{AlgoMaze, AlgoNAFTA, AlgoRouteC}

// TimedFault is one mid-run fault event of a scenario, in the
// JSON-friendly form the replay artifact stores.
type TimedFault struct {
	Time int64  `json:"time"`
	Kind string `json:"kind"` // "node" or "link"
	Node int    `json:"node,omitempty"`
	A    int    `json:"a,omitempty"`
	B    int    `json:"b,omitempty"`
}

// Scenario is one self-contained, replayable campaign case: topology,
// traffic parameters and the complete fault story (initial set plus
// timed events). Everything is plain data so a violating scenario
// round-trips through the JSON artifact byte-identically.
type Scenario struct {
	ID   int    `json:"id"`
	Algo string `json:"algo"`

	// Mesh dimensions (NAFTA family) or hypercube dimension (ROUTE_C
	// family); exactly one pair is set. The maze family additionally
	// runs on tori (TorusW/TorusH) and random irregular graphs
	// (IrrNodes/IrrExtra/IrrSeed) — exactly one topology group is set
	// per scenario.
	MeshW    int   `json:"mesh_w,omitempty"`
	MeshH    int   `json:"mesh_h,omitempty"`
	CubeDim  int   `json:"cube_dim,omitempty"`
	TorusW   int   `json:"torus_w,omitempty"`
	TorusH   int   `json:"torus_h,omitempty"`
	IrrNodes int   `json:"irr_nodes,omitempty"`
	IrrExtra int   `json:"irr_extra,omitempty"`
	IrrSeed  int64 `json:"irr_seed,omitempty"`

	Seed   int64   `json:"seed"` // traffic PRNG seed
	Rate   float64 `json:"rate"`
	Length int     `json:"length"`

	Warmup      int64 `json:"warmup"`
	Measure     int64 `json:"measure"`
	Drain       int64 `json:"drain"`
	LivelockAge int64 `json:"livelock_age"`

	FaultNodes []int        `json:"fault_nodes,omitempty"`
	FaultLinks [][2]int     `json:"fault_links,omitempty"`
	Events     []TimedFault `json:"events,omitempty"`

	// Swaps lists cycles (from simulation start) at which the decision
	// engine is hot-swapped for a freshly built engine of the same
	// family. A same-algorithm swap must be statistically invisible, so
	// the full oracle battery (and the differential check) runs across
	// the swaps unchanged.
	Swaps []int64 `json:"swaps,omitempty"`
}

// Graph builds the scenario's topology.
func (s *Scenario) Graph() (topology.Graph, error) {
	switch s.Algo {
	case AlgoNAFTA:
		if s.MeshW < 2 || s.MeshH < 2 {
			return nil, fmt.Errorf("campaign: scenario %d: bad mesh %dx%d", s.ID, s.MeshW, s.MeshH)
		}
		return topology.NewMesh(s.MeshW, s.MeshH), nil
	case AlgoRouteC:
		if s.CubeDim < 2 {
			return nil, fmt.Errorf("campaign: scenario %d: bad cube dim %d", s.ID, s.CubeDim)
		}
		return topology.NewHypercube(s.CubeDim), nil
	case AlgoMaze:
		switch {
		case s.TorusW >= 3 && s.TorusH >= 3:
			return topology.NewTorus(s.TorusW, s.TorusH), nil
		case s.IrrNodes > 0:
			return topology.RandomIrregular(s.IrrNodes, s.IrrExtra, s.IrrSeed)
		case s.MeshW >= 2 && s.MeshH >= 2:
			return topology.NewMesh(s.MeshW, s.MeshH), nil
		}
		return nil, fmt.Errorf("campaign: scenario %d: maze scenario without a topology", s.ID)
	}
	return nil, fmt.Errorf("campaign: scenario %d: unknown algo %q (valid: %v)", s.ID, s.Algo, Algos)
}

// FaultSet builds the initial fault set.
func (s *Scenario) FaultSet() *fault.Set {
	f := fault.NewSet()
	for _, n := range s.FaultNodes {
		f.FailNode(topology.NodeID(n))
	}
	for _, l := range s.FaultLinks {
		f.FailLink(topology.NodeID(l[0]), topology.NodeID(l[1]))
	}
	return f
}

// Schedule builds the mid-run fault schedule, or nil when the scenario
// has no timed events.
func (s *Scenario) Schedule() *fault.Schedule {
	if len(s.Events) == 0 {
		return nil
	}
	sc := fault.NewSchedule(nil)
	for _, e := range s.Events {
		switch e.Kind {
		case "node":
			sc.AddNodeFault(e.Time, topology.NodeID(e.Node))
		case "link":
			sc.AddLinkFault(e.Time, topology.NodeID(e.A), topology.NodeID(e.B))
		}
	}
	return sc
}

// FaultStateAt reconstructs the cumulative fault set at cycle t:
// the initial set plus every timed event with Time <= t. The drop
// oracle replays decisions under this state.
func (s *Scenario) FaultStateAt(t int64) *fault.Set {
	f := s.FaultSet()
	for _, e := range s.Events {
		if e.Time > t {
			continue
		}
		switch e.Kind {
		case "node":
			f.FailNode(topology.NodeID(e.Node))
		case "link":
			f.FailLink(topology.NodeID(e.A), topology.NodeID(e.B))
		}
	}
	return f
}

// atoms decomposes the scenario's fault story into independently
// removable units for the shrinker: each initial node fault, each
// initial link fault and each timed event is one atom.
func (s *Scenario) atoms() int { return len(s.FaultNodes) + len(s.FaultLinks) + len(s.Events) }

// withAtoms returns a copy of s keeping only the fault atoms whose
// index (in FaultNodes ++ FaultLinks ++ Events order) is in keep.
func (s *Scenario) withAtoms(keep []int) Scenario {
	c := *s
	c.FaultNodes = nil
	c.FaultLinks = nil
	c.Events = nil
	nn, nl := len(s.FaultNodes), len(s.FaultLinks)
	for _, i := range keep {
		switch {
		case i < nn:
			c.FaultNodes = append(c.FaultNodes, s.FaultNodes[i])
		case i < nn+nl:
			c.FaultLinks = append(c.FaultLinks, s.FaultLinks[i-nn])
		default:
			c.Events = append(c.Events, s.Events[i-nn-nl])
		}
	}
	return c
}

// AlgFactory builds the algorithm under test for one run. Tests inject
// deliberately broken wrappers here; the default factory builds the
// rule-table adapters (RuleNAFTA / RuleRouteC), with oracle selecting
// the interpreted reference path (DisableFast).
type AlgFactory func(s *Scenario, oracle bool) (routing.Algorithm, func(*network.Network), error)

// DefaultFactory is the production AlgFactory: the compiled rule-table
// adapter of the scenario's family, fast path on (oracle=false) or
// pinned to the interpreter (oracle=true).
func DefaultFactory(s *Scenario, oracle bool) (routing.Algorithm, func(*network.Network), error) {
	g, err := s.Graph()
	if err != nil {
		return nil, nil, err
	}
	switch s.Algo {
	case AlgoNAFTA:
		alg, err := rulesets.NewRuleNAFTA(g.(*topology.Mesh))
		if err != nil {
			return nil, nil, err
		}
		alg.DisableFast = oracle
		return alg, func(n *network.Network) { alg.AttachLoads(n) }, nil
	case AlgoRouteC:
		alg, err := rulesets.NewRuleRouteC(g.(*topology.Hypercube))
		if err != nil {
			return nil, nil, err
		}
		alg.DisableFast = oracle
		return alg, nil, nil
	case AlgoMaze:
		alg, err := rulesets.NewRuleMaze(g)
		if err != nil {
			return nil, nil, err
		}
		alg.DisableFast = oracle
		return alg, nil, nil
	}
	return nil, nil, fmt.Errorf("campaign: unknown algo %q (valid: %v)", s.Algo, Algos)
}

// reference builds the native reference implementation the drop oracle
// replays decisions on.
func reference(s *Scenario) (routing.Algorithm, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	switch s.Algo {
	case AlgoNAFTA:
		return routing.NewNAFTA(g.(*topology.Mesh)), nil
	case AlgoRouteC:
		return routing.NewRouteC(g.(*topology.Hypercube)), nil
	case AlgoMaze:
		return routing.NewMaze(g)
	}
	return nil, fmt.Errorf("campaign: unknown algo %q", s.Algo)
}

// Options configures a campaign run.
type Options struct {
	Algo      string
	Scenarios int
	Seed      int64
	// Workers bounds the sim worker pool (<=0 selects GOMAXPROCS).
	Workers int
	// StepWorkers forwards sim.Config.Workers: >= 2 runs every
	// scenario's network on the deterministic parallel stepping engine
	// with that many shard goroutines. Statistics are bit-identical to
	// serial stepping, so the oracle battery is unchanged; combine with
	// Workers (e.g. sim.PoolSize) to avoid oversubscription.
	StepWorkers int
	// Differential additionally runs every scenario with the
	// interpreted oracle path and requires bit-identical statistics.
	Differential bool
	// Failover additionally runs every scenario with a precomputed
	// failover plane attached (backups precompiled for the scenario's
	// own fault states) and requires statistics bit-identical to the
	// plain run plus flip/recompute counters exactly as the fault
	// story predicts — the flipped-backup-equivalent-to-recompute
	// oracle.
	Failover bool
	// Shrink runs the delta-debugging minimizer on every violating
	// scenario.
	Shrink bool
	// Factory overrides the algorithm construction (tests inject
	// broken wrappers); nil selects DefaultFactory.
	Factory AlgFactory
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o *Options) factory() AlgFactory {
	if o.Factory != nil {
		return o.Factory
	}
	return DefaultFactory
}

// Violation is one oracle failure of a scenario run.
type Violation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// ScenarioReport is the full account of one violating scenario.
type ScenarioReport struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations"`
	// Shrunk is the minimized scenario (nil when shrinking was off or
	// the violation vanished under re-execution).
	Shrunk *Scenario `json:"shrunk,omitempty"`
	// ShrunkViolations are the oracle failures of the minimized
	// scenario.
	ShrunkViolations []Violation `json:"shrunk_violations,omitempty"`
	// PostMortem is the stall report of the (unshrunk) run, when the
	// watchdog or livelock bound fired.
	PostMortem *trace.Report `json:"post_mortem,omitempty"`
}

// Outcome summarises a campaign.
type Outcome struct {
	Scenarios int              `json:"scenarios"`
	Reports   []ScenarioReport `json:"reports,omitempty"`
}

// Failed reports whether any scenario violated an oracle.
func (o *Outcome) Failed() bool { return len(o.Reports) > 0 }

// buildConfig assembles the sim.Config of one scenario run. The
// returned netSlot is filled with the run's network handle (via
// Config.OnNetwork) so the oracle pass can inspect the final state.
func buildConfig(s *Scenario, oracle bool, factory AlgFactory, stepWorkers int, netSlot **network.Network) (sim.Config, error) {
	g, err := s.Graph()
	if err != nil {
		return sim.Config{}, err
	}
	alg, attach, err := factory(s, oracle)
	if err != nil {
		return sim.Config{}, err
	}
	// Hot-swap scenarios wrap the engine in the epoch swapper; each
	// swap installs a freshly built engine of the same family (the
	// swapper replays fault state and load view onto it).
	var reconfigs []sim.Reconfig
	if len(s.Swaps) > 0 {
		alg = reconfig.NewSwapper(alg)
		for _, at := range s.Swaps {
			reconfigs = append(reconfigs, sim.Reconfig{
				At: at,
				Make: func() (routing.Algorithm, error) {
					next, _, err := factory(s, oracle)
					return next, err
				},
			})
		}
	}
	cfg := sim.Config{
		Graph:             g,
		Algorithm:         alg,
		Workers:           stepWorkers,
		Rate:              s.Rate,
		Length:            s.Length,
		Seed:              s.Seed,
		Faults:            s.FaultSet(),
		FaultSchedule:     s.Schedule(),
		WarmupCycles:      s.Warmup,
		MeasureCycles:     s.Measure,
		DrainCycles:       s.Drain,
		LivelockAgeCycles: s.LivelockAge,
		Reconfigs:         reconfigs,
		TrackLatencies:    true, // the oracles audit per-message records
		Recorder:          trace.New(g.Nodes(), 64),
		OnNetwork: func(n *network.Network) {
			if attach != nil {
				attach(n)
			}
			if netSlot != nil {
				*netSlot = n
			}
		},
	}
	return cfg, nil
}

// Evaluate runs one scenario through the full oracle battery and
// returns its violations (empty when clean). It is the sequential
// building block the shrinker's predicate and the replay path share
// with the parallel campaign driver.
func Evaluate(s *Scenario, opts *Options) ([]Violation, *trace.Report, error) {
	var net *network.Network
	cfg, err := buildConfig(s, false, opts.factory(), opts.StepWorkers, &net)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	vio := checkRun(s, &res, net)
	if opts.Differential {
		vio = append(vio, checkDifferential(s, &res, net, opts.factory(), opts.StepWorkers)...)
	}
	if opts.Failover {
		vio = append(vio, checkFailover(s, &res, opts.factory(), opts.StepWorkers)...)
	}
	return vio, res.PostMortem, nil
}

// checkRun applies the post-run oracles to one completed simulation.
func checkRun(s *Scenario, res *sim.Result, net *network.Network) []Violation {
	var vio []Violation
	add := func(kind, format string, args ...any) {
		vio = append(vio, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}
	if net == nil {
		add("internal", "OnNetwork never fired; no network handle")
		return vio
	}
	if res.Stats.DeadlockSuspected {
		add("deadlock", "watchdog suspected a deadlock")
	}
	if res.PostMortem != nil {
		add("postmortem", "automatic %s report at cycle %d (%d blocked)",
			res.PostMortem.Reason, res.PostMortem.Cycle, len(res.PostMortem.Blocked))
	}
	if !res.Drained {
		add("not-drained", "network failed to empty within %d drain cycles (in-flight %d, queued %d)",
			s.Drain, net.InFlight(), net.Queued())
	}
	if err := net.CheckInvariants(); err != nil {
		add("invariants", "%v", err)
	}
	final := net.Stats()
	if res.Drained {
		if got := final.Delivered + final.Dropped + final.Killed; got != final.Injected {
			add("conservation", "injected %d != delivered %d + dropped %d + killed %d",
				final.Injected, final.Delivered, final.Dropped, final.Killed)
		}
	}
	var flits int64
	for _, m := range net.Messages {
		if m.State == network.StateDelivered {
			flits += int64(m.Hdr.Length)
		}
	}
	if flits != final.FlitsDelivered {
		add("flit-conservation", "delivered messages carry %d flits, stats say %d", flits, final.FlitsDelivered)
	}
	vio = append(vio, auditMessages(s, res, net)...)
	if s.Algo == AlgoMaze {
		vio = append(vio, checkDelivery(s, res, net)...)
	}
	return vio
}

// checkDelivery is the maze family's guaranteed-delivery oracle. Maze
// routing promises delivery-or-verdict: unlike NAFTA there are no
// tolerated sacrifices, so every dropped message must carry the
// explicit unreachability verdict, and the verdict must be true — the
// destination really is disconnected from the drop site under the
// fault state at drop time. Faults only accumulate, so unreachability
// at drop time implies unreachability at the decision that produced
// the verdict; a reachable destination at drop time therefore proves
// the verdict wrong. Killed messages are the livelock killer's, not
// the router's, and are already flagged by the post-mortem oracle.
func checkDelivery(s *Scenario, res *sim.Result, net *network.Network) []Violation {
	var vio []Violation
	g, err := s.Graph()
	if err != nil {
		return []Violation{{Kind: "internal", Detail: err.Error()}}
	}
	drops := make([]*network.Message, 0)
	for _, m := range net.Messages {
		if m.State == network.StateDropped {
			drops = append(drops, m)
		}
	}
	sort.SliceStable(drops, func(i, j int) bool { return drops[i].DoneTime < drops[j].DoneTime })
	var fs *fault.Set
	lastT := int64(-1)
	for _, m := range drops {
		if !m.Unreachable {
			vio = append(vio, Violation{Kind: "sacrifice",
				Detail: fmt.Sprintf("message %d (%d->%d) dropped at node %d cycle %d without an unreachability verdict",
					m.ID, m.Hdr.Src, m.Hdr.Dst, m.DropNode, m.DoneTime)})
			continue
		}
		if fs == nil || m.DoneTime != lastT {
			fs = s.FaultStateAt(m.DoneTime)
			lastT = m.DoneTime
		}
		if topology.Reachable(g, m.DropNode, m.Hdr.Dst, fs.Filter()) {
			vio = append(vio, Violation{Kind: "false-verdict",
				Detail: fmt.Sprintf("message %d (%d->%d) certified unreachable at node %d cycle %d, but the destination is reachable",
					m.ID, m.Hdr.Src, m.Hdr.Dst, m.DropNode, m.DoneTime)})
		}
	}
	if final := net.Stats(); final.Unreachable != final.Dropped {
		vio = append(vio, Violation{Kind: "verdict-accounting",
			Detail: fmt.Sprintf("%d drops but %d unreachability verdicts", final.Dropped, final.Unreachable)})
	}
	return vio
}

// auditMessages checks every message record: terminal state after a
// successful drain, and reference-justified drops.
func auditMessages(s *Scenario, res *sim.Result, net *network.Network) []Violation {
	var vio []Violation
	ref, err := reference(s)
	if err != nil {
		return []Violation{{Kind: "internal", Detail: err.Error()}}
	}
	// Group drops by drop time so the reference fault state is
	// recomputed once per distinct time, not once per message.
	drops := make([]*network.Message, 0)
	for _, m := range net.Messages {
		switch m.State {
		case network.StateDelivered, network.StateKilled:
		case network.StateDropped:
			drops = append(drops, m)
		default:
			if res.Drained {
				vio = append(vio, Violation{Kind: "stuck",
					Detail: fmt.Sprintf("message %d (%d->%d) non-terminal after drain (state %d)",
						m.ID, m.Hdr.Src, m.Hdr.Dst, m.State)})
			}
		}
	}
	sort.SliceStable(drops, func(i, j int) bool { return drops[i].DoneTime < drops[j].DoneTime })
	judge, canJudge := ref.(routing.UnreachableJudge)
	lastT := int64(-1)
	for _, m := range drops {
		if m.DoneTime != lastT {
			ref.UpdateFaults(s.FaultStateAt(m.DoneTime))
			lastT = m.DoneTime
		}
		hdr := m.Hdr // replay on a copy; Route must not mutate it anyway
		req := routing.Request{Node: m.DropNode, InPort: m.DropInPort, InVC: m.DropInVC, Hdr: &hdr}
		if canJudge {
			// A reference that can certify unreachability justifies a
			// drop exactly by that verdict. (Replaying Route would be
			// wrong here: the maze header's traversal state is guarded
			// by an engine-local epoch stamp, which a freshly built
			// reference — whose own epoch counter advanced differently —
			// would misread as stale.)
			if !judge.UnreachableVerdict(req) {
				vio = append(vio, Violation{Kind: "unjustified-drop",
					Detail: fmt.Sprintf("message %d (%d->%d) dropped at node %d in=(%d,%d) cycle %d, but reference %s certifies the destination reachable",
						m.ID, m.Hdr.Src, m.Hdr.Dst, m.DropNode, m.DropInPort, m.DropInVC, m.DoneTime, ref.Name())})
			}
			continue
		}
		cands := ref.Route(req)
		if len(cands) > 0 {
			vio = append(vio, Violation{Kind: "unjustified-drop",
				Detail: fmt.Sprintf("message %d (%d->%d) dropped at node %d in=(%d,%d) cycle %d, but reference %s offers %d candidate(s)",
					m.ID, m.Hdr.Src, m.Hdr.Dst, m.DropNode, m.DropInPort, m.DropInVC, m.DoneTime, ref.Name(), len(cands))})
		}
	}
	return vio
}

// checkDifferential re-runs the scenario on the interpreted oracle
// path and requires bit-identical statistics — the fast path must be
// an optimisation, never a behaviour change.
func checkDifferential(s *Scenario, fast *sim.Result, fastNet *network.Network, factory AlgFactory, stepWorkers int) []Violation {
	var net *network.Network
	cfg, err := buildConfig(s, true, factory, stepWorkers, &net)
	if err != nil {
		return []Violation{{Kind: "internal", Detail: err.Error()}}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return []Violation{{Kind: "sim-error", Detail: "oracle run: " + err.Error()}}
	}
	var vio []Violation
	if res.Stats != fast.Stats {
		vio = append(vio, Violation{Kind: "differential",
			Detail: fmt.Sprintf("measurement stats diverge: fast %+v vs interpreted %+v", fast.Stats, res.Stats)})
	}
	if fastNet != nil && net != nil {
		if a, b := fastNet.Stats(), net.Stats(); a != b {
			vio = append(vio, Violation{Kind: "differential",
				Detail: fmt.Sprintf("final stats diverge: fast %+v vs interpreted %+v", a, b)})
		}
	}
	return vio
}

// Run executes a full campaign: generate, simulate in parallel, check
// oracles, shrink violations.
func Run(opts Options) (*Outcome, error) {
	if opts.Scenarios <= 0 {
		return nil, fmt.Errorf("campaign: Scenarios must be positive")
	}
	scenarios, err := Generate(&opts)
	if err != nil {
		return nil, err
	}
	opts.logf("campaign: %d %s scenarios (seed %d, differential=%v)",
		len(scenarios), opts.Algo, opts.Seed, opts.Differential)

	// Fan the simulations out on the sim worker pool. Each job builds
	// its own algorithm instance and flight recorder inside Make (the
	// pool's one-instance-per-job rule) and deposits its network
	// handle in a private slot for the sequential oracle pass below.
	runsPer := 1
	interpOff, failOff := -1, -1
	if opts.Differential {
		interpOff = runsPer
		runsPer++
	}
	if opts.Failover {
		failOff = runsPer
		runsPer++
	}
	jobs := make([]sim.Job, len(scenarios)*runsPer)
	nets := make([]*network.Network, len(jobs))
	planes := make([]*failover.Plane, len(scenarios))
	factory := opts.factory()
	for i := range scenarios {
		i := i
		s := &scenarios[i]
		for k := 0; k < runsPer; k++ {
			k := k
			idx := i*runsPer + k
			variant := "fast"
			switch k {
			case interpOff:
				variant = "interp"
			case failOff:
				variant = "failover"
			}
			jobs[idx] = sim.Job{
				Label: fmt.Sprintf("s%03d/%s", s.ID, variant),
				Make: func() sim.Config {
					var (
						cfg sim.Config
						err error
					)
					if k == failOff {
						cfg, err = buildFailoverConfig(s, factory, opts.StepWorkers, &nets[idx], &planes[i])
					} else {
						cfg, err = buildConfig(s, k == interpOff, factory, opts.StepWorkers, &nets[idx])
					}
					if err != nil {
						panic(err) // surfaces as the job's error
					}
					return cfg
				},
			}
		}
	}
	results := sim.RunParallel(jobs, opts.Workers)

	out := &Outcome{Scenarios: len(scenarios)}
	for i := range scenarios {
		s := &scenarios[i]
		var vio []Violation
		var pm *trace.Report
		fast := results[i*runsPer]
		if fast.Err != nil {
			vio = append(vio, Violation{Kind: "sim-error", Detail: fast.Err.Error()})
		} else {
			vio = checkRun(s, &fast.Result, nets[i*runsPer])
			pm = fast.Result.PostMortem
			if opts.Failover {
				fr := results[i*runsPer+failOff]
				if fr.Err != nil {
					vio = append(vio, Violation{Kind: "sim-error", Detail: "failover run: " + fr.Err.Error()})
				} else {
					vio = append(vio, checkFailoverRun(s, &fast.Result, &fr.Result, nets[i*runsPer+failOff], planes[i])...)
				}
			}
			if opts.Differential {
				or := results[i*runsPer+1]
				if or.Err != nil {
					vio = append(vio, Violation{Kind: "sim-error", Detail: "oracle run: " + or.Err.Error()})
				} else {
					if or.Result.Stats != fast.Result.Stats {
						vio = append(vio, Violation{Kind: "differential",
							Detail: fmt.Sprintf("measurement stats diverge: fast %+v vs interpreted %+v",
								fast.Result.Stats, or.Result.Stats)})
					}
					if a, b := nets[i*runsPer], nets[i*runsPer+1]; a != nil && b != nil {
						if sa, sb := a.Stats(), b.Stats(); sa != sb {
							vio = append(vio, Violation{Kind: "differential",
								Detail: fmt.Sprintf("final stats diverge: fast %+v vs interpreted %+v", sa, sb)})
						}
					}
				}
			}
		}
		if len(vio) == 0 {
			continue
		}
		opts.logf("campaign: scenario %d FAILED: %s", s.ID, vio[0])
		rep := ScenarioReport{Scenario: *s, Violations: vio, PostMortem: pm}
		if opts.Shrink {
			if shrunk, svio, ok := Shrink(s, &opts); ok {
				rep.Shrunk = &shrunk
				rep.ShrunkViolations = svio
				opts.logf("campaign: scenario %d shrunk from %d to %d fault atoms",
					s.ID, s.atoms(), shrunk.atoms())
			}
		}
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}
