package campaign

import (
	"testing"

	"repro/internal/failover"
	"repro/internal/sim"
)

// A failover-enabled campaign over both families must be clean: every
// scenario's flip-equipped run is bit-identical to the plain run and
// the flip/recompute counters match the fault story.
func TestCampaignFailoverClean(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario campaign in -short mode")
	}
	for _, algo := range Algos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			out, err := Run(Options{
				Algo:      algo,
				Scenarios: 12,
				Seed:      7,
				Failover:  true,
				Log:       t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Failed() {
				for _, r := range out.Reports {
					t.Errorf("scenario %d: %v", r.Scenario.ID, r.Violations)
				}
			}
		})
	}
}

// The failover variant must actually exercise the flip path, not
// trivially recompute everything: scenarios with fault stories get
// planes whose first occurrence of every state flips.
func TestCampaignFailoverExercisesFlips(t *testing.T) {
	s := Scenario{
		ID: 1, Algo: AlgoNAFTA, MeshW: 5, MeshH: 5,
		Seed: 11, Rate: 0.05, Length: 4,
		Warmup: 200, Measure: 600, Drain: 30000,
		FaultNodes: []int{12},
		Events:     []TimedFault{{Time: 400, Kind: "link", A: 3, B: 8}},
	}
	fastVio, _, err := Evaluate(&s, &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fastVio) != 0 {
		t.Fatalf("plain run dirty: %v", fastVio)
	}
	var plane *failover.Plane
	cfg, err := buildFailoverConfig(&s, DefaultFactory, 0, nil, &plane)
	if err != nil {
		t.Fatal(err)
	}
	if plane.CoveredClasses() != 2 {
		t.Fatalf("plane covers %d classes, want 2 (initial state + post-event state)", plane.CoveredClasses())
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if plane.Flips() != 2 || plane.Recomputes() != 0 {
		t.Fatalf("flips=%d recomputes=%d, want 2/0", plane.Flips(), plane.Recomputes())
	}
}

// expectedFlips must track repeated cumulative keys: an event that
// re-fails an already-failed node leaves the key unchanged, so the
// second occurrence recomputes against a consumed backup.
func TestExpectedFlipsRepeatedState(t *testing.T) {
	s := Scenario{
		ID: 2, Algo: AlgoNAFTA, MeshW: 4, MeshH: 4,
		Seed: 3, Rate: 0.04, Length: 4,
		Warmup: 100, Measure: 400, Drain: 20000,
		FaultNodes: []int{5},
		Events:     []TimedFault{{Time: 200, Kind: "node", Node: 5}},
	}
	var plane *failover.Plane
	cfg, err := buildFailoverConfig(&s, DefaultFactory, 0, nil, &plane)
	if err != nil {
		t.Fatal(err)
	}
	wantF, wantR := expectedFlips(&s, plane)
	if wantF != 1 || wantR != 1 {
		t.Fatalf("expectedFlips = %d/%d, want 1/1", wantF, wantR)
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if plane.Flips() != wantF || plane.Recomputes() != wantR {
		t.Fatalf("plane %d/%d, predicted %d/%d", plane.Flips(), plane.Recomputes(), wantF, wantR)
	}
}

// Events scheduled past the stepped window never fire, so the
// expectation walker must exclude them.
func TestFaultStatesWindowBound(t *testing.T) {
	s := Scenario{
		Algo: AlgoNAFTA, MeshW: 4, MeshH: 4,
		Warmup: 100, Measure: 200,
		Events: []TimedFault{
			{Time: 50, Kind: "node", Node: 1},
			{Time: 299, Kind: "node", Node: 2},
			{Time: 300, Kind: "node", Node: 3}, // beyond the last applySchedule
		},
	}
	states := faultStates(&s)
	if len(states) != 2 {
		t.Fatalf("%d states, want 2 (the cycle-300 event never fires)", len(states))
	}
	last := states[len(states)-1]
	if last.NodeFaulty(3) {
		t.Fatal("out-of-window event leaked into the cumulative state")
	}
	if !last.NodeFaulty(1) || !last.NodeFaulty(2) {
		t.Fatal("in-window events missing from the cumulative state")
	}
}
