package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// A small campaign of each family must come back clean: the rule
// adapters are conformant, so every oracle (invariants, conservation,
// justified drops, differential agreement) holds.
func TestCampaignCleanNAFTA(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs many simulations")
	}
	out, err := Run(Options{Algo: AlgoNAFTA, Scenarios: 8, Seed: 1, Differential: true, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("clean campaign reported violations: %+v", out.Reports[0].Violations)
	}
	if out.Scenarios != 8 {
		t.Fatalf("ran %d scenarios", out.Scenarios)
	}
}

func TestCampaignCleanRouteC(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs many simulations")
	}
	out, err := Run(Options{Algo: AlgoRouteC, Scenarios: 8, Seed: 1, Differential: true, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("clean campaign reported violations: %+v", out.Reports[0].Violations)
	}
}

// Generation is deterministic in the seed and decorrelated across
// scenario indices.
func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Algo: AlgoNAFTA, Scenarios: 20, Seed: 7}
	a, err := Generate(&opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical scenarios")
	}
	opts.Seed = 8
	c, err := Generate(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should generate different scenarios")
	}
	for i := range a {
		if a[i].Algo != AlgoNAFTA || a[i].Rate <= 0 || a[i].Length < 2 {
			t.Fatalf("scenario %d malformed: %+v", i, a[i])
		}
		if a[i].atoms() == 0 {
			t.Fatalf("scenario %d has no faults", i)
		}
		final := a[i].FaultStateAt(1 << 62)
		g, err := a[i].Graph()
		if err != nil {
			t.Fatal(err)
		}
		if comps := topology.Components(g, final.Filter()); len(comps) != 1 {
			// Static patterns are KeepConnected by construction; only
			// chains/L-shapes could in principle differ, and they never
			// partition the mesh sizes used.
			t.Fatalf("scenario %d final fault state partitions the network: %v", i, final)
		}
	}
}

// brokenAlg wraps a conformant algorithm and refuses to route anything
// once a designated poison node is in the fault set — the model of a
// broken rule table the campaign exists to catch. It deliberately
// implements only routing.Algorithm (no RouteAppend), so the network
// cannot bypass the broken Route via the buffered fast path.
type brokenAlg struct {
	inner  routing.Algorithm
	poison topology.NodeID
	bad    bool
}

func (b *brokenAlg) Name() string                { return b.inner.Name() }
func (b *brokenAlg) NumVCs() int                 { return b.inner.NumVCs() }
func (b *brokenAlg) Steps(r routing.Request) int { return b.inner.Steps(r) }
func (b *brokenAlg) NoteHop(r routing.Request, c routing.Candidate) {
	b.inner.NoteHop(r, c)
}
func (b *brokenAlg) UpdateFaults(f *fault.Set) {
	b.bad = f.NodeFaulty(b.poison)
	b.inner.UpdateFaults(f)
}
func (b *brokenAlg) Route(r routing.Request) []routing.Candidate {
	if b.bad {
		return nil
	}
	return b.inner.Route(r)
}

// A deliberately broken wrapper must (1) trip the unjustified-drop
// oracle, (2) shrink deterministically to the single poison fault, and
// (3) round-trip through the JSON artifact into a replay that still
// reproduces.
func TestBrokenWrapperShrinksAndReplays(t *testing.T) {
	m := topology.NewMesh(6, 6)
	poison := m.Node(2, 2)
	opts := Options{
		Algo: AlgoNAFTA,
		Seed: 1,
		Factory: func(s *Scenario, oracle bool) (routing.Algorithm, func(*network.Network), error) {
			return &brokenAlg{inner: routing.NewNAFTA(m), poison: poison}, nil, nil
		},
	}
	s := Scenario{
		ID: 0, Algo: AlgoNAFTA, MeshW: 6, MeshH: 6,
		Seed: 11, Rate: 0.08, Length: 6,
		Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
		FaultNodes: []int{int(m.Node(5, 0)), int(poison), int(m.Node(0, 5))},
		FaultLinks: [][2]int{{int(m.Node(4, 4)), int(m.Node(4, 5))}},
		Events:     []TimedFault{{Time: 600, Kind: "link", A: int(m.Node(1, 4)), B: int(m.Node(2, 4))}},
	}
	vio, _, err := Evaluate(&s, &opts)
	if err != nil {
		t.Fatal(err)
	}
	hasDrop := false
	for _, v := range vio {
		if v.Kind == "unjustified-drop" {
			hasDrop = true
		}
	}
	if !hasDrop {
		t.Fatalf("broken wrapper not caught; violations: %v", vio)
	}

	shrunk, svio, ok := Shrink(&s, &opts)
	if !ok {
		t.Fatal("violation did not reproduce under shrinking")
	}
	if len(svio) == 0 {
		t.Fatal("shrunk scenario reports no violations")
	}
	want := Scenario{
		ID: 0, Algo: AlgoNAFTA, MeshW: 6, MeshH: 6,
		Seed: 11, Rate: 0.08, Length: 6,
		Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
		FaultNodes: []int{int(poison)},
	}
	if !reflect.DeepEqual(shrunk, want) {
		t.Fatalf("shrink not minimal:\n got %+v\nwant %+v", shrunk, want)
	}
	// Shrinking is deterministic: a second pass lands on the same
	// minimum.
	again, _, ok := Shrink(&s, &opts)
	if !ok || !reflect.DeepEqual(again, shrunk) {
		t.Fatalf("shrink not deterministic:\n got %+v\nwant %+v", again, shrunk)
	}

	// JSON round trip and replay.
	art := NewArtifact(&opts, &Outcome{Scenarios: 1, Reports: []ScenarioReport{{
		Scenario: s, Violations: vio, Shrunk: &shrunk, ShrunkViolations: svio,
	}}})
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded.Reports[0].Scenario, s) ||
		!reflect.DeepEqual(*decoded.Reports[0].Shrunk, shrunk) {
		t.Fatal("artifact did not round-trip the scenarios")
	}
	reports, err := Replay(decoded, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || len(reports[0].Violations) == 0 {
		t.Fatalf("replay of the shrunk scenario must reproduce; got %+v", reports)
	}
}

// A conformant scenario evaluated directly must be violation-free, and
// FaultStateAt must accumulate events monotonically.
func TestEvaluateCleanAndFaultStateAt(t *testing.T) {
	s := Scenario{
		ID: 0, Algo: AlgoNAFTA, MeshW: 6, MeshH: 6,
		Seed: 3, Rate: 0.06, Length: 6,
		Warmup: 200, Measure: 600, Drain: 20000, LivelockAge: 20000,
		FaultNodes: []int{14},
		Events: []TimedFault{
			{Time: 400, Kind: "node", Node: 27},
			{Time: 500, Kind: "link", A: 3, B: 9},
		},
	}
	opts := Options{Algo: AlgoNAFTA, Differential: true}
	vio, _, err := Evaluate(&s, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) != 0 {
		t.Fatalf("conformant scenario violated: %v", vio)
	}
	if f := s.FaultStateAt(399); f.NodeCount() != 1 || f.LinkCount() != 0 {
		t.Fatalf("state at 399: %v", f)
	}
	if f := s.FaultStateAt(400); f.NodeCount() != 2 || f.LinkCount() != 0 {
		t.Fatalf("state at 400: %v", f)
	}
	if f := s.FaultStateAt(9999); f.NodeCount() != 2 || f.LinkCount() != 1 {
		t.Fatalf("state at 9999: %v", f)
	}
}

// withAtoms must slice the fault story exactly.
func TestWithAtoms(t *testing.T) {
	s := Scenario{
		FaultNodes: []int{1, 2},
		FaultLinks: [][2]int{{3, 4}},
		Events:     []TimedFault{{Time: 9, Kind: "node", Node: 5}},
	}
	if s.atoms() != 4 {
		t.Fatalf("atoms = %d", s.atoms())
	}
	c := s.withAtoms([]int{0, 2, 3})
	if !reflect.DeepEqual(c.FaultNodes, []int{1}) ||
		!reflect.DeepEqual(c.FaultLinks, [][2]int{{3, 4}}) ||
		len(c.Events) != 1 || c.Events[0].Node != 5 {
		t.Fatalf("withAtoms sliced wrong: %+v", c)
	}
	if got := s.withAtoms(nil); got.atoms() != 0 {
		t.Fatalf("empty keep should strip all atoms: %+v", got)
	}
}
