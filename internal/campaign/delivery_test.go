package campaign

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// evaluateWithStats runs one scenario through the production path and
// returns the violations plus the network's final statistics, so tests
// can assert both oracle silence and that the scenario actually
// exercised the delivery verdicts.
func evaluateWithStats(t *testing.T, s *Scenario, opts *Options) ([]Violation, network.Stats) {
	t.Helper()
	var net *network.Network
	cfg, err := buildConfig(s, false, opts.factory(), opts.StepWorkers, &net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return checkRun(s, &res, net), net.Stats()
}

// A mesh partitioned by a full node column: cross-cut traffic must be
// dropped with a certified verdict, same-side traffic delivered, and
// the delivery oracle must stay silent — reachable implies delivered,
// unreachable implies explicitly flagged, zero sacrifices.
func TestDeliveryOraclePartitionedMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	m := topology.NewMesh(6, 6)
	var cut []int
	for y := 0; y < 6; y++ {
		cut = append(cut, int(m.Node(3, y)))
	}
	s := Scenario{
		ID: 0, Algo: AlgoMaze, MeshW: 6, MeshH: 6,
		Seed: 3, Rate: 0.06, Length: 5,
		Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
		FaultNodes: cut,
	}
	vio, st := evaluateWithStats(t, &s, &Options{})
	if len(vio) != 0 {
		t.Fatalf("partitioned mesh must pass the oracle cleanly, got %v", vio)
	}
	if st.Unreachable == 0 {
		t.Fatal("cross-cut traffic produced no unreachability verdicts; the scenario is vacuous")
	}
	if st.Unreachable != st.Dropped {
		t.Fatalf("%d drops but %d verdicts", st.Dropped, st.Unreachable)
	}
	if st.Delivered == 0 {
		t.Fatal("same-side traffic was not delivered")
	}
}

// A torus partitioned by two full link ring cuts (no node faults, so
// every node keeps injecting): the doomed cross-component messages
// must all carry verdicts.
func TestDeliveryOraclePartitionedTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tor := topology.NewTorus(6, 5)
	node := func(x, y int) int { return int(tor.Node(x, y)) }
	var links [][2]int
	for _, x := range []int{2, 4} {
		for y := 0; y < 5; y++ {
			links = append(links, [2]int{node(x, y), node((x + 1) % 6, y)})
		}
	}
	s := Scenario{
		ID: 0, Algo: AlgoMaze, TorusW: 6, TorusH: 5,
		Seed: 3, Rate: 0.06, Length: 5,
		Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
		FaultLinks: links,
	}
	vio, st := evaluateWithStats(t, &s, &Options{})
	if len(vio) != 0 {
		t.Fatalf("partitioned torus must pass the oracle cleanly, got %v", vio)
	}
	if st.Unreachable == 0 || st.Unreachable != st.Dropped || st.Delivered == 0 {
		t.Fatalf("stats %+v: want verdicts == drops > 0 and deliveries > 0", st)
	}
}

// silentDropAlg models a mutated adapter that starts swallowing
// messages once a designated poison node is in the fault set: Route
// returns no candidates, but unlike the real maze engine it issues no
// unreachability verdict (it implements only routing.Algorithm, so the
// network records plain drops). The delivery oracle must call these
// what they are — sacrifices.
type silentDropAlg struct {
	inner  routing.Algorithm
	poison topology.NodeID
	bad    bool
}

func (b *silentDropAlg) Name() string                                { return b.inner.Name() }
func (b *silentDropAlg) NumVCs() int                                 { return b.inner.NumVCs() }
func (b *silentDropAlg) Steps(r routing.Request) int                 { return b.inner.Steps(r) }
func (b *silentDropAlg) NoteHop(r routing.Request, c routing.Candidate) { b.inner.NoteHop(r, c) }
func (b *silentDropAlg) UpdateFaults(f *fault.Set) {
	b.bad = f.NodeFaulty(b.poison)
	b.inner.UpdateFaults(f)
}
func (b *silentDropAlg) Route(r routing.Request) []routing.Candidate {
	if b.bad {
		return nil
	}
	return b.inner.Route(r)
}

// lyingJudgeAlg goes one step further: it swallows messages AND stamps
// them with a fabricated unreachability verdict. The accounting oracle
// is satisfied (every drop carries a verdict), so only the reachability
// re-check can catch it.
type lyingJudgeAlg struct{ silentDropAlg }

func (b *lyingJudgeAlg) UnreachableVerdict(r routing.Request) bool { return b.bad }

func mazeSabotageScenario(m *topology.Mesh, poison topology.NodeID) Scenario {
	return Scenario{
		ID: 0, Algo: AlgoMaze, MeshW: m.W, MeshH: m.H,
		Seed: 11, Rate: 0.08, Length: 6,
		Warmup: 200, Measure: 800, Drain: 20000, LivelockAge: 20000,
		FaultNodes: []int{int(poison)},
	}
}

func TestDeliveryOracleCatchesSilentDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	m := topology.NewMesh(6, 6)
	poison := m.Node(2, 2)
	s := mazeSabotageScenario(m, poison)
	opts := Options{
		Factory: func(s *Scenario, oracle bool) (routing.Algorithm, func(*network.Network), error) {
			inner, err := routing.NewMaze(m)
			if err != nil {
				return nil, nil, err
			}
			return &silentDropAlg{inner: inner, poison: poison}, nil, nil
		},
	}
	vio, st := evaluateWithStats(t, &s, &opts)
	if st.Dropped == 0 {
		t.Fatal("the sabotaged run dropped nothing; the test is vacuous")
	}
	kinds := map[string]bool{}
	for _, v := range vio {
		kinds[v.Kind] = true
	}
	if !kinds["sacrifice"] {
		t.Fatalf("silent drops not flagged as sacrifices; violations: %v", vio)
	}
	if !kinds["verdict-accounting"] {
		t.Fatalf("verdict accounting did not notice unverdicted drops; violations: %v", vio)
	}
}

func TestDeliveryOracleCatchesFalseVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	m := topology.NewMesh(6, 6)
	poison := m.Node(2, 2)
	s := mazeSabotageScenario(m, poison)
	opts := Options{
		Factory: func(s *Scenario, oracle bool) (routing.Algorithm, func(*network.Network), error) {
			inner, err := routing.NewMaze(m)
			if err != nil {
				return nil, nil, err
			}
			a := &lyingJudgeAlg{}
			a.inner, a.poison = inner, poison
			return a, nil, nil
		},
	}
	vio, st := evaluateWithStats(t, &s, &opts)
	if st.Dropped == 0 {
		t.Fatal("the sabotaged run dropped nothing; the test is vacuous")
	}
	// The fabricated verdicts balance the books (Unreachable == Dropped),
	// so accounting alone cannot catch this mutant.
	if st.Unreachable != st.Dropped {
		t.Fatalf("stats %+v: the lying judge should stamp every drop", st)
	}
	hasFalse := false
	for _, v := range vio {
		if v.Kind == "false-verdict" {
			hasFalse = true
		}
	}
	if !hasFalse {
		t.Fatalf("fabricated verdicts not caught; violations: %v", vio)
	}
}
