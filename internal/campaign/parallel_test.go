package campaign

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

// TestCampaignParallelStepDifferential drives the generated scenario
// corpus of both algorithm families through the simulator twice — once
// on the serial stepping path and once on the deterministic parallel
// engine — and requires bit-identical statistics. The corpus includes
// static fault patterns, mid-run timed faults and engine hot swaps, so
// this is the end-to-end determinism contract of the parallel engine
// under everything the campaign generator can produce.
func TestCampaignParallelStepDifferential(t *testing.T) {
	const perFamily = 50
	const stepWorkers = 3
	for _, algo := range Algos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			opts := Options{Algo: algo, Scenarios: perFamily, Seed: 20260806}
			scenarios, err := Generate(&opts)
			if err != nil {
				t.Fatal(err)
			}
			withEvents, withSwaps := 0, 0
			for i := range scenarios {
				s := &scenarios[i]
				if len(s.Events) > 0 {
					withEvents++
				}
				if len(s.Swaps) > 0 {
					withSwaps++
				}
				var serialNet, parNet *network.Network
				serialCfg, err := buildConfig(s, false, DefaultFactory, 0, &serialNet)
				if err != nil {
					t.Fatalf("scenario %d: %v", s.ID, err)
				}
				parCfg, err := buildConfig(s, false, DefaultFactory, stepWorkers, &parNet)
				if err != nil {
					t.Fatalf("scenario %d: %v", s.ID, err)
				}
				serialRes, err := sim.Run(serialCfg)
				if err != nil {
					t.Fatalf("scenario %d serial: %v", s.ID, err)
				}
				parRes, err := sim.Run(parCfg)
				if err != nil {
					t.Fatalf("scenario %d parallel: %v", s.ID, err)
				}
				if !parNet.ParallelActive() {
					t.Fatalf("scenario %d: parallel engine inactive: %s", s.ID, parNet.ParallelReason())
				}
				if serialRes.Stats != parRes.Stats {
					t.Errorf("scenario %d: measurement stats diverge:\nserial   %+v\nparallel %+v",
						s.ID, serialRes.Stats, parRes.Stats)
				}
				if a, b := serialNet.Stats(), parNet.Stats(); a != b {
					t.Errorf("scenario %d: final stats diverge:\nserial   %+v\nparallel %+v", s.ID, a, b)
				}
			}
			// The corpus must actually exercise the hard cases; a generator
			// regression that drops them would silently hollow this test out.
			if algo == AlgoNAFTA && withEvents == 0 {
				t.Error("no scenario with mid-run fault events in the corpus")
			}
			if withSwaps == 0 {
				t.Error("no scenario with engine hot swaps in the corpus")
			}
		})
	}
}

// TestCampaignStepWorkersOption runs a small campaign with the
// StepWorkers option set and expects the oracle battery to stay clean
// — the parallel engine must be invisible to every oracle, including
// the fast-vs-interpreted differential.
func TestCampaignStepWorkersOption(t *testing.T) {
	out, err := Run(Options{
		Algo: AlgoNAFTA, Scenarios: 4, Seed: 7, Differential: true,
		Workers: sim.PoolSize(2), StepWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("campaign with StepWorkers failed: %+v", out.Reports[0])
	}
}
