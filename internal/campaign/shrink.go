package campaign

import "sort"

// Shrink minimizes a violating scenario with delta debugging over its
// fault atoms (initial node faults, initial link faults, timed
// events): classic ddmin narrows the atom set, then a greedy pass
// removes single atoms until the result is 1-minimal — no single atom
// can be dropped without losing the violation. Both phases are fully
// deterministic (simulations are seeded, candidate order is fixed), so
// the same violating scenario always shrinks to the same minimum.
//
// The returned bool is false when the original scenario no longer
// violates any oracle under re-execution (a non-reproducible report;
// the caller keeps the unshrunk scenario in that case).
func Shrink(s *Scenario, opts *Options) (Scenario, []Violation, bool) {
	fails := func(keep []int) ([]Violation, bool) {
		cand := s.withAtoms(keep)
		vio, _, err := Evaluate(&cand, opts)
		if err != nil {
			// A scenario variant that cannot even run does not count
			// as reproducing the violation.
			return nil, false
		}
		return vio, len(vio) > 0
	}

	all := make([]int, s.atoms())
	for i := range all {
		all[i] = i
	}
	lastVio, ok := fails(all)
	if !ok {
		return Scenario{}, nil, false
	}

	// ddmin: try dropping complements at increasing granularity.
	keep := all
	n := 2
	for len(keep) >= 2 {
		chunk := (len(keep) + n - 1) / n
		reduced := false
		for start := 0; start < len(keep); start += chunk {
			complement := make([]int, 0, len(keep)-chunk)
			complement = append(complement, keep[:start]...)
			if start+chunk < len(keep) {
				complement = append(complement, keep[start+chunk:]...)
			}
			if len(complement) == len(keep) || len(complement) == 0 {
				continue
			}
			if vio, bad := fails(complement); bad {
				keep = complement
				lastVio = vio
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(keep) {
				break
			}
			n = min(n*2, len(keep))
		}
	}

	// Greedy 1-minimality: drop atoms one at a time until stable.
	for changed := true; changed && len(keep) > 1; {
		changed = false
		for i := range keep {
			cand := make([]int, 0, len(keep)-1)
			cand = append(cand, keep[:i]...)
			cand = append(cand, keep[i+1:]...)
			if vio, bad := fails(cand); bad {
				keep = cand
				lastVio = vio
				changed = true
				break
			}
		}
	}

	sort.Ints(keep)
	shrunk := s.withAtoms(keep)
	return shrunk, lastVio, true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
