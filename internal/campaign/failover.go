package campaign

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/reconfig"
	"repro/internal/sim"
	"repro/internal/topology"
)

// artifactCache memoizes the compiled rule-table artifact per
// algorithm/topology parameterisation — compiling the builtin program
// once per campaign, not once per scenario.
var artifactCache sync.Map // string -> *reconfig.Artifact

func artifactFor(s *Scenario) (*reconfig.Artifact, error) {
	ports := 0
	if s.Algo == AlgoMaze {
		g, err := s.Graph()
		if err != nil {
			return nil, err
		}
		ports = g.Ports()
	}
	key := fmt.Sprintf("%s/%d/%d", s.Algo, s.CubeDim, ports)
	if v, ok := artifactCache.Load(key); ok {
		return v.(*reconfig.Artifact), nil
	}
	art, err := reconfig.Build(s.Algo, reconfig.BuildOptions{CubeDim: s.CubeDim, Ports: ports})
	if err != nil {
		return nil, err
	}
	v, _ := artifactCache.LoadOrStore(key, art)
	return v.(*reconfig.Artifact), nil
}

// faultStates reconstructs the sequence of cumulative fault states the
// scenario's network observes, in ApplyFaults order: the initial set
// (when non-empty), then one state per distinct event time that fires
// inside the stepped window (warm-up plus measurement; the drain phase
// never applies schedule events).
func faultStates(s *Scenario) []*fault.Set {
	var states []*fault.Set
	if init := s.FaultSet(); !init.Empty() {
		states = append(states, init)
	}
	lastCycle := s.Warmup + s.Measure - 1
	var times []int64
	seen := map[int64]bool{}
	for _, e := range s.Events {
		if e.Time <= lastCycle && !seen[e.Time] {
			seen[e.Time] = true
			times = append(times, e.Time)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		states = append(states, s.FaultStateAt(t))
	}
	return states
}

// scenarioBundle packs the scenario's own cumulative fault states as
// the anticipated classes of a failover bundle — the campaign plays
// the operator who precompiles backups for exactly the faults they
// expect. States that coincide with enumerated single-fault or
// Figure-2 chain classes (the Chain scenario family, single-event
// scenarios) exercise the same backups `rulec -backups` ships.
func scenarioBundle(s *Scenario, g topology.Graph) (*failover.Bundle, error) {
	art, err := artifactFor(s)
	if err != nil {
		return nil, err
	}
	b := &failover.Bundle{FormatVersion: failover.BundleFormatVersion, Primary: *art}
	switch t := g.(type) {
	case *topology.Mesh:
		b.MeshW, b.MeshH = t.W, t.H
	case *topology.Torus:
		b.TorusW, b.TorusH = t.W, t.H
	case *topology.Irregular:
		b.IrrNodes, b.IrrExtra, b.IrrSeed = s.IrrNodes, s.IrrExtra, s.IrrSeed
	}
	seen := map[string]bool{}
	for _, st := range faultStates(s) {
		key := failover.KeyOf(st)
		if seen[key] {
			continue
		}
		seen[key] = true
		bk := failover.Backup{Kind: failover.KindNode}
		if st.NodeCount() == 0 {
			bk.Kind = failover.KindLink
		}
		for _, n := range st.FaultyNodes() {
			bk.Nodes = append(bk.Nodes, int(n))
		}
		for _, l := range st.FaultyLinks() {
			bk.Links = append(bk.Links, [2]int{int(l.A), int(l.B)})
		}
		b.Backups = append(b.Backups, bk)
	}
	return b, nil
}

// expectedFlips walks the scenario's fault-state sequence against the
// plane's coverage exactly as the plane itself will: the first
// occurrence of a covered key flips, every repetition (an event that
// re-fails an already-failed component leaves the cumulative key
// unchanged) and every uncovered state recomputes. Empty states are
// never counted.
func expectedFlips(s *Scenario, plane *failover.Plane) (flips, recomputes int64) {
	covered := map[string]bool{}
	for _, c := range plane.Classes() {
		covered[c.Key()] = true
	}
	consumed := map[string]bool{}
	for _, st := range faultStates(s) {
		key := failover.KeyOf(st)
		if covered[key] && !consumed[key] {
			consumed[key] = true
			flips++
		} else {
			recomputes++
		}
	}
	return flips, recomputes
}

// buildFailoverConfig assembles the scenario's failover run: the
// factory engine wrapped in an epoch swapper, a plane precompiled for
// the scenario's fault states bound to it, and the plane forwarded as
// the network's fault handler. planeSlot receives the plane for the
// post-run counter checks.
func buildFailoverConfig(s *Scenario, factory AlgFactory, stepWorkers int,
	netSlot **network.Network, planeSlot **failover.Plane) (sim.Config, error) {
	cfg, err := buildConfig(s, false, factory, stepWorkers, netSlot)
	if err != nil {
		return sim.Config{}, err
	}
	sw, ok := cfg.Algorithm.(*reconfig.Swapper)
	if !ok {
		sw = reconfig.NewSwapper(cfg.Algorithm)
		cfg.Algorithm = sw
	}
	bundle, err := scenarioBundle(s, cfg.Graph)
	if err != nil {
		return sim.Config{}, err
	}
	plane, err := failover.NewPlane(bundle, cfg.Graph, failover.PlaneOptions{Lanes: 1})
	if err != nil {
		return sim.Config{}, err
	}
	plane.Bind(failover.ForSwapper(sw))
	cfg.Failover = plane
	if planeSlot != nil {
		*planeSlot = plane
	}
	return cfg, nil
}

// checkFailoverRun applies the failover oracles to a completed
// failover-variant run: measurement statistics bit-identical to the
// plain fast run (a precompiled flip must be behaviourally equivalent
// to the live recompute it replaces), flip/recompute counters exactly
// as the fault story predicts, and the standard post-run battery on
// the failover network itself.
func checkFailoverRun(s *Scenario, fast *sim.Result, res *sim.Result,
	net *network.Network, plane *failover.Plane) []Violation {
	var vio []Violation
	if res.Stats != fast.Stats {
		vio = append(vio, Violation{Kind: "failover-differential",
			Detail: fmt.Sprintf("measurement stats diverge: plain %+v vs failover %+v", fast.Stats, res.Stats)})
	}
	wantFlips, wantRecomputes := expectedFlips(s, plane)
	if plane.Flips() != wantFlips || plane.Recomputes() != wantRecomputes {
		vio = append(vio, Violation{Kind: "failover-coverage",
			Detail: fmt.Sprintf("plane flipped %d / recomputed %d, fault story predicts %d / %d",
				plane.Flips(), plane.Recomputes(), wantFlips, wantRecomputes)})
	}
	vio = append(vio, checkRun(s, res, net)...)
	return vio
}

// checkFailover runs the scenario's failover variant sequentially (the
// Evaluate / shrinker path; the parallel driver schedules the variant
// as its own job instead).
func checkFailover(s *Scenario, fast *sim.Result, factory AlgFactory, stepWorkers int) []Violation {
	var net *network.Network
	var plane *failover.Plane
	cfg, err := buildFailoverConfig(s, factory, stepWorkers, &net, &plane)
	if err != nil {
		return []Violation{{Kind: "internal", Detail: err.Error()}}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return []Violation{{Kind: "sim-error", Detail: "failover run: " + err.Error()}}
	}
	return checkFailoverRun(s, fast, &res, net, plane)
}
