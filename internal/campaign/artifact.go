package campaign

import (
	"encoding/json"
	"fmt"
	"io"
)

// ArtifactVersion identifies the replay-artifact format.
const ArtifactVersion = 1

// Artifact is the persisted form of a failed campaign: every violating
// scenario with its oracle failures and (when shrinking ran) the
// minimized reproduction. `go run ./cmd/campaign -replay file` decodes
// one and re-executes the scenarios.
type Artifact struct {
	Version int              `json:"version"`
	Algo    string           `json:"algo"`
	Seed    int64            `json:"seed"`
	Reports []ScenarioReport `json:"reports"`
}

// NewArtifact assembles the artifact of a failed campaign.
func NewArtifact(opts *Options, out *Outcome) *Artifact {
	return &Artifact{
		Version: ArtifactVersion,
		Algo:    opts.Algo,
		Seed:    opts.Seed,
		Reports: out.Reports,
	}
}

// WriteJSON serialises the artifact (indented, stable field order).
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DecodeArtifact reads an artifact back.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("campaign: decoding artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("campaign: artifact version %d (want %d)", a.Version, ArtifactVersion)
	}
	return &a, nil
}

// Replay re-executes every scenario of the artifact (preferring the
// shrunk reproduction when present) and returns the per-scenario
// violations observed now. A clean replay returns no reports — the
// recorded bug no longer reproduces.
func Replay(a *Artifact, opts *Options) ([]ScenarioReport, error) {
	var out []ScenarioReport
	for i := range a.Reports {
		s := a.Reports[i].Scenario
		if a.Reports[i].Shrunk != nil {
			s = *a.Reports[i].Shrunk
		}
		vio, pm, err := Evaluate(&s, opts)
		if err != nil {
			return nil, fmt.Errorf("campaign: replaying scenario %d: %w", s.ID, err)
		}
		if len(vio) > 0 {
			out = append(out, ScenarioReport{Scenario: s, Violations: vio, PostMortem: pm})
		}
	}
	return out, nil
}
