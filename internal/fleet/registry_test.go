package fleet

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

func buildArt(t *testing.T, algo string, epoch uint64, g topology.Graph) *reconfig.Artifact {
	t.Helper()
	opts := reconfig.BuildOptions{Epoch: epoch}
	if algo == "maze" {
		opts.Ports = g.Ports()
	}
	art, err := reconfig.Build(algo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func testRegistry(t *testing.T) (*Registry, topology.Graph) {
	t.Helper()
	g := topology.NewMesh(5, 4)
	r, err := NewRegistry(buildArt(t, "nafta", 1, g), g, RegistryOptions{Shards: 2, CacheEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func injectReq(src, dst int) reconfig.DecisionRequest {
	return reconfig.DecisionRequest{Node: src, InPort: routing.InjectionPort, Src: src, Dst: dst, Length: 4}
}

func TestRegistryPushDoesNotServe(t *testing.T) {
	r, g := testRegistry(t)
	v, err := r.Push(buildArt(t, "maze", 5, g))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 2 || v.Algorithm != "maze" {
		t.Fatalf("pushed version %+v", v)
	}
	if r.Serving() != 1 {
		t.Fatalf("push changed the serving version to %d", r.Serving())
	}
	if r.Epoch() != 1 {
		t.Fatalf("push advanced the epoch to %d", r.Epoch())
	}
}

func TestRegistryPushRejectsUnbindableArtifact(t *testing.T) {
	r, _ := testRegistry(t)
	// An 8-port maze program cannot bind on a 4-port mesh.
	art, err := reconfig.Build("maze", reconfig.BuildOptions{Epoch: 2, Ports: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(art); err == nil {
		t.Fatal("unbindable artifact accepted")
	}
	if len(r.VersionIDs()) != 1 {
		t.Fatalf("failed push still registered a version: %v", r.VersionIDs())
	}
}

func TestCanarySameAlgorithmZeroDivergence(t *testing.T) {
	r, g := testRegistry(t)
	v, err := r.Push(buildArt(t, "nafta", 2, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary(v.ID, 1.0); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.Nodes(); src++ {
		req := injectReq(src, (src+7)%g.Nodes())
		if req.Src == req.Dst {
			continue
		}
		if _, _, err := r.Decide(&req, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Canary()
	if st == nil || st.Sampled == 0 {
		t.Fatalf("fraction-1.0 canary sampled nothing: %+v", st)
	}
	if st.Diverged != 0 {
		t.Fatalf("same-algorithm canary diverged %d/%d: %+v", st.Diverged, st.Sampled, st.Examples)
	}
}

func TestCanaryDivergentAlgorithmObservedNotServed(t *testing.T) {
	r, g := testRegistry(t)
	// A maze candidate routes differently from the nafta incumbent: the
	// diff must see it, the served answers must not.
	v, err := r.Push(buildArt(t, "maze", 2, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary(v.ID, 1.0); err != nil {
		t.Fatal(err)
	}
	incumbent, err := reconfig.NewService(buildArt(t, "nafta", 1, g), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.Nodes(); src++ {
		req := injectReq(src, (src+5)%g.Nodes())
		if req.Src == req.Dst {
			continue
		}
		got, _, err := r.Decide(&req, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := incumbent.Decide(&req, nil)
		if !candidatesEqual(got, want) {
			t.Fatalf("canaried decision leaked the candidate's answer: %+v vs %+v", got, want)
		}
	}
	st := r.Canary()
	if st.Diverged == 0 {
		t.Fatal("maze-vs-nafta canary observed no divergence — the diff is blind")
	}
	if len(st.Examples) == 0 {
		t.Fatal("divergence recorded no examples")
	}
	if st.Examples[0].Incumbent == nil && st.Examples[0].Candidate == nil {
		t.Fatalf("empty divergence example: %+v", st.Examples[0])
	}
}

func TestCanaryFractionValidation(t *testing.T) {
	r, g := testRegistry(t)
	v, _ := r.Push(buildArt(t, "nafta", 2, g))
	for _, f := range []float64{0, -0.5, 1.5} {
		if err := r.StartCanary(v.ID, f); err == nil {
			t.Fatalf("fraction %g accepted", f)
		}
	}
	if err := r.StartCanary(99, 0.5); err == nil || !strings.Contains(err.Error(), "unknown version") {
		t.Fatalf("unknown version error: %v", err)
	}
}

func TestCanaryFractionSampling(t *testing.T) {
	r, g := testRegistry(t)
	v, _ := r.Push(buildArt(t, "nafta", 2, g))
	if err := r.StartCanary(v.ID, 0.1); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		req := injectReq(i%g.Nodes(), (i+3)%g.Nodes())
		if req.Src == req.Dst {
			continue
		}
		if _, _, err := r.Decide(&req, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Canary()
	// Bresenham sampling: a 10% canary over ~1000 decisions samples
	// ~100, exactly evenly — allow slack for the skipped src==dst.
	if st.Sampled < 80 || st.Sampled > 120 {
		t.Fatalf("0.1 canary sampled %d of ~%d", st.Sampled, n)
	}
}

func TestPromoteRollbackCycle(t *testing.T) {
	r, g := testRegistry(t)
	if _, err := r.Promote(); err == nil {
		t.Fatal("promote without a canary accepted")
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no history accepted")
	}

	v, err := r.Push(buildArt(t, "maze", 2, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary(v.ID, 0.5); err != nil {
		t.Fatal(err)
	}
	epoch, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || r.Serving() != 2 {
		t.Fatalf("after promote: epoch %d serving v%d", epoch, r.Serving())
	}
	if r.Canary() != nil {
		t.Fatal("promote left the canary running")
	}
	// The promoted tables must actually serve (maze answers now).
	mazeRef, _ := reconfig.NewService(buildArt(t, "maze", 2, g), g, 1)
	req := injectReq(0, 9)
	got, _, err := r.Decide(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := mazeRef.Decide(&req, nil)
	if !candidatesEqual(got, want) {
		t.Fatalf("promoted registry answers %+v, maze reference %+v", got, want)
	}

	epoch, err = r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if r.Serving() != 1 {
		t.Fatalf("rollback serves v%d, want v1", r.Serving())
	}
	if epoch <= 2 {
		t.Fatalf("rollback must advance the epoch (got %d) — old cached state must die", epoch)
	}
	naftaRef, _ := reconfig.NewService(buildArt(t, "nafta", 1, g), g, 1)
	got, _, err = r.Decide(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ = naftaRef.Decide(&req, nil)
	if !candidatesEqual(got, want) {
		t.Fatalf("rolled-back registry answers %+v, nafta reference %+v", got, want)
	}

	// Rollback toggles: a second rollback returns to the maze version.
	if _, err := r.Rollback(); err != nil {
		t.Fatal(err)
	}
	if r.Serving() != 2 {
		t.Fatalf("second rollback serves v%d, want v2", r.Serving())
	}
}

func TestPromoteCarriesLiveFaults(t *testing.T) {
	r, g := testRegistry(t)
	f := fault.NewSet()
	f.FailNode(7)
	r.UpdateFaults(f)

	v, _ := r.Push(buildArt(t, "nafta", 2, g))
	if err := r.StartCanary(v.ID, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(); err != nil {
		t.Fatal(err)
	}
	// The freshly promoted engines must already know node 7 is dead:
	// no candidate from node 6 may route into it.
	req := injectReq(6, 8)
	cands, _, err := r.Decide(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Port >= 0 && g.Neighbor(6, c.Port) == 7 {
			t.Fatal("promoted engines route into the failed node: fault state lost across activation")
		}
	}
}

func TestRegistryFaultsInvalidateCache(t *testing.T) {
	r, g := testRegistry(t)
	req := injectReq(6, 8)
	first, _, err := r.Decide(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache with the fault-free answer.
	if _, _, err := r.Decide(&req, nil); err != nil {
		t.Fatal(err)
	}
	if r.Cache().Metrics().Hits == 0 {
		t.Fatal("repeat decision did not hit the cache")
	}

	f := fault.NewSet()
	f.FailNode(7)
	r.UpdateFaults(f)

	after, _, err := r.Decide(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range after {
		if c.Port >= 0 && g.Neighbor(6, c.Port) == 7 {
			t.Fatalf("memoized fault-free answer %+v served after the fault (got %+v)", first, after)
		}
	}
}

func TestRegistryStatus(t *testing.T) {
	r, g := testRegistry(t)
	v, _ := r.Push(buildArt(t, "maze", 2, g))
	r.StartCanary(v.ID, 0.25)
	st := r.Status()
	if st.Serving != 1 || len(st.Versions) != 2 {
		t.Fatalf("status %+v", st)
	}
	if st.Canary == nil || st.Canary.Version != 2 || st.Canary.Fraction != 0.25 {
		t.Fatalf("canary status %+v", st.Canary)
	}
	if st.Versions[0].Checksum == "" || st.Versions[1].Checksum == "" {
		t.Fatal("versions carry no checksums")
	}
	if !r.StopCanary() {
		t.Fatal("stop reported no canary")
	}
	if r.Canary() != nil {
		t.Fatal("canary survived stop")
	}
}
