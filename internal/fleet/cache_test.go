package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestCacheHitMissInvalidate(t *testing.T) {
	c := NewCache(1024)
	k := Key{Node: 3, Src: 3, Dst: 9, InPort: -1, Length: 4}
	if _, _, ok := c.Get(k, nil); ok {
		t.Fatal("hit on an empty cache")
	}
	cands := []routing.Candidate{{Port: 1, VC: 0}, {Port: 2, VC: 1}}
	c.Put(k, c.Gen(), cands, 7)
	out, epoch, ok := c.Get(k, nil)
	if !ok || epoch != 7 {
		t.Fatalf("miss after put: ok=%v epoch=%d", ok, epoch)
	}
	if len(out) != 2 || out[0] != cands[0] || out[1] != cands[1] {
		t.Fatalf("memoized candidates %+v", out)
	}

	// The memoized slice must be an independent copy.
	cands[0].Port = 99
	out, _, _ = c.Get(k, nil)
	if out[0].Port == 99 {
		t.Fatal("cache aliases the caller's candidate slice")
	}

	c.Invalidate()
	if _, _, ok := c.Get(k, nil); ok {
		t.Fatal("hit after invalidation")
	}
	m := c.Metrics()
	if m.Invalidations != 1 || m.Entries != 0 {
		t.Fatalf("metrics after invalidate: %+v", m)
	}
}

func TestCacheStaleGenerationPutDropped(t *testing.T) {
	c := NewCache(64)
	k := Key{Node: 1, Dst: 2}
	gen := c.Gen()
	// An invalidation lands between the generation capture and the Put
	// (in production: a reload finishing while a decision is in flight).
	c.Invalidate()
	c.Put(k, gen, []routing.Candidate{{Port: 0}}, 1)
	if _, _, ok := c.Get(k, nil); ok {
		t.Fatal("stale-generation Put survived the invalidation")
	}
	c.Put(k, c.Gen(), []routing.Candidate{{Port: 0}}, 2)
	if _, _, ok := c.Get(k, nil); !ok {
		t.Fatal("fresh-generation Put rejected")
	}
}

func TestCacheUnroutableVerdictCached(t *testing.T) {
	c := NewCache(64)
	k := Key{Node: 5, Dst: 6}
	c.Put(k, c.Gen(), nil, 3)
	out, epoch, ok := c.Get(k, []routing.Candidate{{Port: 9}})
	if !ok || epoch != 3 {
		t.Fatal("unroutable verdict not memoized")
	}
	if len(out) != 1 {
		t.Fatalf("unroutable hit extended the buffer: %+v", out)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	for i := 0; i < 10*cacheShards; i++ {
		c.Put(Key{Node: int32(i), Dst: int32(i + 1)}, c.Gen(), []routing.Candidate{{Port: 0}}, 1)
	}
	if got := c.Len(); got > cacheShards {
		t.Fatalf("%d entries live, capacity %d", got, cacheShards)
	}
	if c.Metrics().Evictions == 0 {
		t.Fatal("overflowing the cache recorded no evictions")
	}
}

func TestNewCacheDisabled(t *testing.T) {
	if NewCache(0) != nil || NewCache(-5) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}

// differentialStep is one operation of the cache-correctness property
// test, derived from the fuzz input stream.
type differentialOp int

const (
	opDecide differentialOp = iota
	opReload
	opFault
	opRollout
	opSentinel
)

// runDifferential drives an identical operation sequence — decisions
// interleaved with hot reloads (nafta and maze programs), cumulative
// fault updates and push/canary/promote rollouts — through a memoizing
// registry and an uncached one, and fails on the first decision where
// the two disagree. This is the memoization soundness property: the
// cache may only ever change latency, never an answer.
func runDifferential(t *testing.T, seed int64, decisions int) {
	t.Helper()
	g := topology.NewMesh(5, 4)
	nafta, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	maze, err := reconfig.Build("maze", reconfig.BuildOptions{Epoch: 1, Ports: g.Ports()})
	if err != nil {
		t.Fatal(err)
	}
	arts := []*reconfig.Artifact{nafta, maze}

	cached, err := NewRegistry(nafta, g, RegistryOptions{Shards: 2, CacheEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRegistry(nafta, g, RegistryOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	both := [2]*Registry{cached, plain}

	rng := rand.New(rand.NewSource(seed))
	faults := fault.NewSet()
	epoch := uint64(1)
	for i := 0; i < decisions; i++ {
		if i%64 == 63 {
			switch differentialOp(rng.Intn(3) + 1) {
			case opReload:
				art := *arts[rng.Intn(len(arts))]
				epoch++
				art.Epoch = epoch
				for _, r := range both {
					if _, err := r.Reload(&art); err != nil {
						t.Fatalf("op %d: reload: %v", i, err)
					}
				}
			case opFault:
				if rng.Intn(4) == 0 {
					faults = fault.NewSet() // repair everything
				} else {
					faults.FailNode(topology.NodeID(rng.Intn(g.Nodes())))
				}
				for _, r := range both {
					r.UpdateFaults(faults)
				}
			case opRollout:
				art := *arts[rng.Intn(len(arts))]
				epoch++
				art.Epoch = epoch
				for _, r := range both {
					v, err := r.Push(&art)
					if err != nil {
						t.Fatalf("op %d: push: %v", i, err)
					}
					if err := r.StartCanary(v.ID, 0.25); err != nil {
						t.Fatalf("op %d: canary: %v", i, err)
					}
				}
				// A few canaried decisions, then promote on both.
				for j := 0; j < 8; j++ {
					req := randomDifferentialRequest(rng, g)
					compareDecide(t, both, &req, i)
				}
				for _, r := range both {
					if _, err := r.Promote(); err != nil {
						t.Fatalf("op %d: promote: %v", i, err)
					}
				}
			}
		}
		req := randomDifferentialRequest(rng, g)
		compareDecide(t, both, &req, i)
	}
	if cached.Cache().Metrics().Hits == 0 {
		t.Fatal("differential run never hit the cache — the property was vacuous")
	}
}

func compareDecide(t *testing.T, both [2]*Registry, req *reconfig.DecisionRequest, op int) {
	t.Helper()
	a, aEpoch, aErr := both[0].Decide(req, nil)
	b, bEpoch, bErr := both[1].Decide(req, nil)
	if (aErr == nil) != (bErr == nil) {
		t.Fatalf("op %d: request %+v: cached err=%v, uncached err=%v", op, req, aErr, bErr)
	}
	if aErr != nil {
		return
	}
	if aEpoch != bEpoch {
		t.Fatalf("op %d: request %+v: cached epoch %d, uncached %d", op, req, aEpoch, bEpoch)
	}
	if !candidatesEqual(a, b) {
		t.Fatalf("op %d: request %+v: cached %+v, uncached %+v", op, req, a, b)
	}
}

// randomDifferentialRequest draws from a small key space so the cache
// actually hits, while still covering arrival ports, VCs and marked
// headers.
func randomDifferentialRequest(rng *rand.Rand, g topology.Graph) reconfig.DecisionRequest {
	nodes := g.Nodes()
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes)
	for dst == src {
		dst = rng.Intn(nodes)
	}
	req := reconfig.DecisionRequest{
		Node:   src,
		InPort: routing.InjectionPort,
		InVC:   0,
		Src:    src,
		Dst:    dst,
		Length: 1 + rng.Intn(4),
	}
	if rng.Intn(3) == 0 {
		req.InPort = rng.Intn(g.Ports())
		req.InVC = rng.Intn(2)
	}
	if rng.Intn(5) == 0 {
		req.Marked = true
	}
	return req
}

func TestCacheDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferential(t, seed, 1500)
		})
	}
}

// FuzzCacheDifferential lets the fuzzer hunt for an operation
// interleaving where the memoized registry disagrees with the uncached
// one. `go test` runs the seed corpus; `go test -fuzz=FuzzCacheDifferential`
// explores.
func FuzzCacheDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(123456789))
	f.Add(int64(-987654321))
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferential(t, seed, 400)
	})
}
