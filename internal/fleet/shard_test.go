package fleet

import "testing"

func TestOwner(t *testing.T) {
	for _, tc := range []struct {
		node, replicas, want int
	}{
		{0, 1, 0}, {17, 1, 0}, {5, 0, 0}, {9, -2, 0},
		{0, 3, 0}, {1, 3, 1}, {2, 3, 2}, {3, 3, 0}, {64, 3, 1},
	} {
		if got := Owner(tc.node, tc.replicas); got != tc.want {
			t.Errorf("Owner(%d,%d) = %d, want %d", tc.node, tc.replicas, got, tc.want)
		}
	}
}

func TestShardOwnsPartition(t *testing.T) {
	// Every node is owned by exactly one of the N shards.
	const n, nodes = 3, 64
	for node := 0; node < nodes; node++ {
		owners := 0
		for i := 0; i < n; i++ {
			if (ShardInfo{Index: i, Count: n}).Owns(node) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("node %d owned by %d shards", node, owners)
		}
	}
}

func TestParseShard(t *testing.T) {
	s, err := ParseShard("")
	if err != nil || s != Single {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	s, err = ParseShard("2/5")
	if err != nil || s.Index != 2 || s.Count != 5 {
		t.Fatalf("2/5: %v %v", s, err)
	}
	if s.String() != "2/5" {
		t.Fatalf("String() = %q", s.String())
	}
	for _, bad := range []string{"x", "3", "3/2", "-1/4", "2/-3", "a/b"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}
