package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// testFleet spins n in-process replicas over a fresh nafta mesh and
// returns the client plus the servers.
func testFleet(t *testing.T, n int) (*Client, []*Server) {
	t.Helper()
	g := topology.NewMesh(8, 8)
	art := buildArt(t, "nafta", 1, g)
	urls := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(art, nil, g, Options{
			CacheEntries: 1024,
			Shard:        ShardInfo{Index: i, Count: n},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Mux())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = srv
	}
	client, err := NewClient(urls, ClientOptions{Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return client, servers
}

func TestClientScatterGatherOrder(t *testing.T) {
	client, servers := testFleet(t, 3)
	g := servers[0].Graph()
	const n = 120
	reqs := make([]reconfig.DecisionRequest, n)
	for i := range reqs {
		reqs[i] = reconfig.DecisionRequest{
			Node: i % g.Nodes(), InPort: routing.InjectionPort,
			Src: i % g.Nodes(), Dst: (i + 9) % g.Nodes(), Length: 4,
		}
		if reqs[i].Src == reqs[i].Dst {
			reqs[i].Dst = (reqs[i].Dst + 1) % g.Nodes()
		}
	}
	out, err := client.DecideBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("%d decisions for %d requests", len(out), n)
	}
	// Order check: answer i must be the single-node answer for request
	// i — decided on the replica owning reqs[i].Node, gathered back to
	// position i.
	ref, err := reconfig.NewService(buildArt(t, "nafta", 1, g), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if out[i].Error != "" {
			t.Fatalf("decision %d: %s", i, out[i].Error)
		}
		want, _, _ := ref.Decide(&reqs[i], nil)
		if !candidatesEqual(out[i].Candidates, want) {
			t.Fatalf("decision %d out of order or wrong: got %+v want %+v", i, out[i].Candidates, want)
		}
	}
	// No replica answered a node it does not own.
	for i, srv := range servers {
		if m := srv.Metrics(); m.Misdirected != 0 {
			t.Fatalf("replica %d saw %d misdirected requests", i, m.Misdirected)
		}
	}
}

func TestClientRetriesFlakyReplica(t *testing.T) {
	g := topology.NewMesh(4, 4)
	art := buildArt(t, "nafta", 1, g)
	srv, err := NewServer(art, nil, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mux := srv.Mux()
	var failures atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The replica is down for the first two attempts, then recovers.
		if failures.Add(1) <= 2 {
			http.Error(w, "replica restarting", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	client, err := NewClient([]string{flaky.URL}, ClientOptions{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	req := reconfig.DecisionRequest{Node: 0, InPort: routing.InjectionPort, Src: 0, Dst: 5, Length: 4}
	d, err := client.Decide(context.Background(), &req)
	if err != nil {
		t.Fatalf("retry did not mask the flaky replica: %v", err)
	}
	if d.Error != "" || d.Unroutable {
		t.Fatalf("decision %+v", d)
	}
	if got := failures.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 failures + 1 success)", got)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "dead", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	client, err := NewClient([]string{down.URL}, ClientOptions{Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	req := reconfig.DecisionRequest{Node: 0, InPort: routing.InjectionPort, Src: 0, Dst: 1, Length: 4}
	_, err = client.Decide(context.Background(), &req)
	if err == nil {
		t.Fatal("permanently down replica did not error")
	}
}

func TestClientContextCancelsBackoff(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "dead", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	client, err := NewClient([]string{down.URL}, ClientOptions{Retries: 10, Backoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := reconfig.DecisionRequest{Node: 0, InPort: routing.InjectionPort, Src: 0, Dst: 1, Length: 4}
	start := time.Now()
	_, err = client.Decide(ctx, &req)
	if err == nil {
		t.Fatal("cancelled context returned a decision")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored the context deadline")
	}
}

func TestClientFleetRollout(t *testing.T) {
	client, servers := testFleet(t, 3)
	g := servers[0].Graph()
	art := buildArt(t, "nafta", 2, g)
	payload := encodeArt(t, art)

	ctx := context.Background()
	v, err := client.Push(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("fleet push assigned version %d", v)
	}
	if err := client.Canary(ctx, v, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := client.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range servers {
		st, err := client.RegistryStatus(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if st.Serving != 2 {
			t.Fatalf("replica %d serving v%d after fleet promote", i, st.Serving)
		}
	}
	if err := client.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range servers {
		st, _ := client.RegistryStatus(ctx, i)
		if st.Serving != 1 {
			t.Fatalf("replica %d serving v%d after fleet rollback", i, st.Serving)
		}
	}
}
