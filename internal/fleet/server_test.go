package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/failover"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

func encodeArt(t *testing.T, art *reconfig.Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testHTTPServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	g := topology.NewMesh(5, 4)
	srv, err := NewServer(buildArt(t, "nafta", 1, g), nil, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, out.Bytes()
}

// decodeError asserts the response body is the JSON error document.
func decodeError(t *testing.T, body []byte) (string, []string) {
	t.Helper()
	var doc struct {
		Error string   `json:"error"`
		Valid []string `json:"valid"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("error body is not the JSON error document: %q", body)
	}
	if doc.Error == "" {
		t.Fatalf("error document with empty error: %q", body)
	}
	return doc.Error, doc.Valid
}

func TestServerRejectsOversizedBatch(t *testing.T) {
	_, ts := testHTTPServer(t, Options{MaxBatch: 4})
	reqs := make([]reconfig.DecisionRequest, 5)
	for i := range reqs {
		reqs[i] = reconfig.DecisionRequest{Node: 0, InPort: routing.InjectionPort, Src: 0, Dst: 3, Length: 4}
	}
	resp, body := postJSON(t, ts, "/decide/batch", reqs)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %s %s", resp.Status, body)
	}
	decodeError(t, body)
}

func TestServerRejectsMalformedJSON(t *testing.T) {
	_, ts := testHTTPServer(t, Options{})
	resp, err := http.Post(ts.URL+"/decide", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %s", resp.Status)
	}
	decodeError(t, body.Bytes())
}

func TestServerShardOwnershipRejection(t *testing.T) {
	srv, ts := testHTTPServer(t, Options{Shard: ShardInfo{Index: 0, Count: 2}})
	// Node 1 belongs to replica 1/2; this replica is 0/2.
	resp, body := postJSON(t, ts, "/decide", reconfig.DecisionRequest{
		Node: 1, InPort: routing.InjectionPort, Src: 1, Dst: 6, Length: 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("misdirected decision must answer in-band: %s", resp.Status)
	}
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Error == "" {
		t.Fatal("misdirected decision served without an ownership error")
	}
	if srv.Metrics().Misdirected != 1 {
		t.Fatalf("misdirected counter %d", srv.Metrics().Misdirected)
	}
	// An owned node decides normally.
	resp, body = postJSON(t, ts, "/decide", reconfig.DecisionRequest{
		Node: 2, InPort: routing.InjectionPort, Src: 2, Dst: 7, Length: 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}
	var owned Decision
	if err := json.Unmarshal(body, &owned); err != nil {
		t.Fatal(err)
	}
	if owned.Error != "" || owned.Unroutable {
		t.Fatalf("owned decision %+v", owned)
	}
}

func TestServerCanaryUnknownVersionListsChoices(t *testing.T) {
	_, ts := testHTTPServer(t, Options{})
	resp, body := postJSON(t, ts, "/canary", CanaryRequest{Version: 42, Fraction: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown canary version: %s %s", resp.Status, body)
	}
	msg, valid := decodeError(t, body)
	if len(valid) != 1 || valid[0] != "1" {
		t.Fatalf("error %q lists versions %v, want [1]", msg, valid)
	}
}

func TestServerRegistryEndpoints(t *testing.T) {
	srv, ts := testHTTPServer(t, Options{CacheEntries: 256})
	g := srv.Graph()
	push := encodeArt(t, buildArt(t, "maze", 2, g))

	resp, err := http.Post(ts.URL+"/registry/push", "application/octet-stream", bytes.NewReader(push))
	if err != nil {
		t.Fatal(err)
	}
	var pushed struct {
		Version  int    `json:"version"`
		Checksum string `json:"checksum"`
	}
	err = json.NewDecoder(resp.Body).Decode(&pushed)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("push: %s err=%v", resp.Status, err)
	}
	if pushed.Version != 2 || pushed.Checksum == "" {
		t.Fatalf("push answered %+v", pushed)
	}

	// Promote without a canary: conflict, with the version list.
	resp, body := postJSON(t, ts, "/promote", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote without canary: %s", resp.Status)
	}
	decodeError(t, body)

	resp, body = postJSON(t, ts, "/canary", CanaryRequest{Version: 2, Fraction: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canary: %s %s", resp.Status, body)
	}
	resp, body = postJSON(t, ts, "/promote", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %s %s", resp.Status, body)
	}
	resp, body = postJSON(t, ts, "/rollback", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %s %s", resp.Status, body)
	}

	var st RegistryStatus
	resp, err = http.Get(ts.URL + "/registry")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serving != 1 || st.Previous != 2 || len(st.Versions) != 2 {
		t.Fatalf("registry after cycle: %+v", st)
	}
}

func TestServerMetricsCarriesFleetSections(t *testing.T) {
	srv, ts := testHTTPServer(t, Options{CacheEntries: 256, Shard: ShardInfo{Index: 0, Count: 1}})
	req := reconfig.DecisionRequest{Node: 0, InPort: routing.InjectionPort, Src: 0, Dst: 9, Length: 4}
	postJSON(t, ts, "/decide", req)
	postJSON(t, ts, "/decide", req) // second pass hits the cache

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc MetricsDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Cache == nil || doc.Cache.Hits != 1 || doc.Cache.Misses != 1 {
		t.Fatalf("cache section %+v", doc.Cache)
	}
	if doc.Registry == nil || doc.Registry.Serving != 1 {
		t.Fatalf("registry section %+v", doc.Registry)
	}
	if doc.Shard != (ShardInfo{Index: 0, Count: 1}) {
		t.Fatalf("shard section %+v", doc.Shard)
	}
	if doc.Decisions != 1 {
		t.Fatalf("service decided %d times; the hit must not re-decide", doc.Decisions)
	}
	_ = srv
}

func TestServerPushRejectsBundle(t *testing.T) {
	srv, ts := testHTTPServer(t, Options{})
	_ = srv
	// A bundle is not pushable — only /reload takes bundles.
	g := topology.NewMesh(5, 4)
	art := buildArt(t, "nafta", 3, g)
	bundleBytes := encodeBundle(t, art, g)
	resp, err := http.Post(ts.URL+"/registry/push", "application/octet-stream", bytes.NewReader(bundleBytes))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bundle push: %s %s", resp.Status, body)
	}
	decodeError(t, body.Bytes())
}

func TestServerOptionsValidation(t *testing.T) {
	g := topology.NewMesh(4, 4)
	art := buildArt(t, "nafta", 1, g)
	if _, err := NewServer(art, nil, g, Options{FailoverMode: "sideways"}); err == nil {
		t.Fatal("bogus failover mode accepted")
	}
	if _, err := NewServer(art, nil, g, Options{Shard: ShardInfo{Index: 3, Count: 2}}); err == nil {
		t.Fatal("invalid shard accepted")
	}
}

func TestTopologyForMaze(t *testing.T) {
	art := buildArt(t, "maze", 1, topology.NewMesh(5, 4))
	g, err := TopologyFor(art, "6x3")
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 18 {
		t.Fatalf("maze topology %s", g.Name())
	}
	if _, err := TopologyFor(art, "bogus"); err == nil {
		t.Fatal("bad mesh spec accepted")
	}
}

func encodeBundle(t *testing.T, art *reconfig.Artifact, g topology.Graph) []byte {
	t.Helper()
	bundle, err := failover.BuildBundle(art, g, []string{"node"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bundle.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
