package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FailoverModes are the values Options.FailoverMode accepts.
var FailoverModes = []string{"auto", "off"}

// Options configure one fleet replica server.
type Options struct {
	// Shards is the engine-replica count of the decision service
	// (default 1).
	Shards int
	// FailoverMode is "auto" (precompile backups when the served file
	// is a bundle) or "off" (default "auto").
	FailoverMode string
	// CacheEntries bounds the decision memoization cache; 0 disables.
	CacheEntries int
	// Shard is this replica's slice of the topology (default: owns
	// everything).
	Shard ShardInfo
	// MaxBatch bounds /decide/batch length (default 4096).
	MaxBatch int
	// Pprof mounts net/http/pprof under /debug/pprof/ — opt-in, so a
	// production router is not profiling-exposed by accident.
	Pprof bool
}

// Server is one fleet replica: the registry-fronted decision service
// plus its HTTP surface. cmd/routerd runs exactly one; cmd/fleetload
// spins several in-process.
type Server struct {
	reg      *Registry
	g        topology.Graph
	nodes    int
	shard    ShardInfo
	maxBatch int
	failMode string
	pprof    bool
	bufs     sync.Pool

	misdirected atomic.Int64

	// planeMu guards plane (replaced on /reload of a bundle).
	planeMu sync.Mutex
	plane   *failover.Plane
}

// NewServer builds a replica serving art on g. When bundle is non-nil
// and FailoverMode is auto, the per-fault-class backup engines are
// precompiled and bound through the registry (so a flip invalidates
// the memoization cache like any other epoch event).
func NewServer(art *reconfig.Artifact, bundle *failover.Bundle, g topology.Graph, opts Options) (*Server, error) {
	if opts.FailoverMode == "" {
		opts.FailoverMode = "auto"
	}
	if !ValidFailoverMode(opts.FailoverMode) {
		return nil, fmt.Errorf("unknown failover mode %q (valid: %s)", opts.FailoverMode, strings.Join(FailoverModes, ", "))
	}
	if opts.Shard == (ShardInfo{}) {
		opts.Shard = Single
	}
	if !opts.Shard.Valid() {
		return nil, fmt.Errorf("bad shard %s", opts.Shard)
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 4096
	}
	reg, err := NewRegistry(art, g, RegistryOptions{Shards: opts.Shards, CacheEntries: opts.CacheEntries})
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:      reg,
		g:        g,
		nodes:    g.Nodes(),
		shard:    opts.Shard,
		maxBatch: opts.MaxBatch,
		failMode: opts.FailoverMode,
		pprof:    opts.Pprof,
	}
	if bundle != nil && opts.FailoverMode == "auto" {
		if err := s.installBundle(bundle); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ValidFailoverMode reports whether m is an accepted failover mode.
func ValidFailoverMode(m string) bool {
	for _, v := range FailoverModes {
		if m == v {
			return true
		}
	}
	return false
}

// Registry returns the replica's registry.
func (s *Server) Registry() *Registry { return s.reg }

// Service returns the underlying decision service.
func (s *Server) Service() *reconfig.Service { return s.reg.Service() }

// Graph returns the serving topology.
func (s *Server) Graph() topology.Graph { return s.g }

// Shard returns the replica's topology shard.
func (s *Server) Shard() ShardInfo { return s.shard }

// Plane returns the attached failover plane, nil when none.
func (s *Server) Plane() *failover.Plane {
	s.planeMu.Lock()
	defer s.planeMu.Unlock()
	return s.plane
}

// installBundle precompiles the bundle's backup engines and binds the
// plane through the registry (one engine lane per service shard).
func (s *Server) installBundle(bundle *failover.Bundle) error {
	plane, err := failover.NewPlane(bundle, s.g, failover.PlaneOptions{Lanes: s.reg.Service().Shards()})
	if err != nil {
		return err
	}
	plane.Bind(s.reg)
	s.planeMu.Lock()
	s.plane = plane
	s.planeMu.Unlock()
	return nil
}

// Mux builds the replica's HTTP surface.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /decide", s.handleDecide)
	mux.HandleFunc("POST /decide/batch", s.handleBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("POST /registry/push", s.handlePush)
	mux.HandleFunc("GET /registry", s.handleRegistry)
	mux.HandleFunc("POST /canary", s.handleCanary)
	mux.HandleFunc("POST /canary/stop", s.handleCanaryStop)
	mux.HandleFunc("POST /promote", s.handlePromote)
	mux.HandleFunc("POST /rollback", s.handleRollback)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

func (s *Server) getBuf() []routing.Candidate {
	if b, ok := s.bufs.Get().(*[]routing.Candidate); ok {
		return (*b)[:0]
	}
	return make([]routing.Candidate, 0, 8)
}

func (s *Server) putBuf(b []routing.Candidate) { s.bufs.Put(&b) }

// Decision mirrors reconfig.Decision for the HTTP layer.
type Decision = reconfig.Decision

// decide runs one request through the fleet decision path (shard
// ownership, canary sampling, memoization, service) and renders the
// wire result.
func (s *Server) decide(req *reconfig.DecisionRequest, buf []routing.Candidate) (Decision, []routing.Candidate) {
	if req.Node >= 0 && req.Node < s.nodes && !s.shard.Owns(req.Node) {
		s.misdirected.Add(1)
		return Decision{
			Error: fmt.Sprintf("node %d is owned by replica %d/%d (this is replica %s)",
				req.Node, Owner(req.Node, s.shard.Count), s.shard.Count, s.shard),
		}, buf
	}
	cands, epoch, err := s.reg.Decide(req, buf)
	d := Decision{Epoch: epoch}
	if err != nil {
		d.Error = err.Error()
		return d, cands
	}
	if len(cands) == 0 {
		d.Unroutable = true
		d.Candidates = []routing.Candidate{}
	} else {
		d.Candidates = append([]routing.Candidate(nil), cands...)
	}
	return d, cands
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req reconfig.DecisionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), nil)
		return
	}
	buf := s.getBuf()
	d, buf := s.decide(&req, buf)
	s.putBuf(buf)
	writeJSON(w, d)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []reconfig.DecisionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&reqs); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding batch: %v", err), nil)
		return
	}
	if len(reqs) > s.maxBatch {
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d decisions exceeds the %d limit (split the batch)", len(reqs), s.maxBatch), nil)
		return
	}
	out := make([]Decision, len(reqs))
	buf := s.getBuf()
	for i := range reqs {
		out[i], buf = s.decide(&reqs[i], buf[:0])
	}
	s.putBuf(buf)
	writeJSON(w, out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 80<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	art, bundle, err := failover.DecodeAny(data)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	if bundle != nil {
		// A bundle's classes are enumerated against a specific topology;
		// a reload cannot change the serving topology.
		g, err := bundle.Graph()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
			return
		}
		if g.Name() != s.g.Name() {
			writeJSONError(w, http.StatusConflict,
				fmt.Sprintf("bundle enumerated on %s, serving %s", g.Name(), s.g.Name()), nil)
			return
		}
	}
	epoch, err := s.reg.Reload(art)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error(), nil)
		return
	}
	if bundle != nil && s.failMode == "auto" {
		// Rebuild the plane against the new primary; backups of the old
		// bundle are obsolete by construction.
		if err := s.installBundle(bundle); err != nil {
			writeJSONError(w, http.StatusInternalServerError,
				fmt.Sprintf("tables reloaded (epoch %d) but the failover plane failed: %v", epoch, err), nil)
			return
		}
	}
	writeJSON(w, map[string]any{"epoch": epoch, "version": s.reg.Serving()})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 80<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	art, bundle, err := failover.DecodeAny(data)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	if bundle != nil {
		writeJSONError(w, http.StatusBadRequest,
			"push takes a table artifact; POST bundles to /reload (backups precompile against the serving tables)", nil)
		return
	}
	v, err := s.reg.Push(art)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error(), nil)
		return
	}
	writeJSON(w, map[string]any{"version": v.ID, "checksum": v.Checksum})
}

func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.reg.Status())
}

// CanaryRequest is the wire form of POST /canary.
type CanaryRequest struct {
	Version  int     `json:"version"`
	Fraction float64 `json:"fraction"`
}

func (s *Server) handleCanary(w http.ResponseWriter, r *http.Request) {
	var req CanaryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), nil)
		return
	}
	if req.Fraction == 0 {
		req.Fraction = 0.1
	}
	if err := s.reg.StartCanary(req.Version, req.Fraction); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), versionChoices(s.reg))
		return
	}
	writeJSON(w, s.reg.Canary())
}

func (s *Server) handleCanaryStop(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]bool{"stopped": s.reg.StopCanary()})
}

func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	epoch, err := s.reg.Promote()
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error(), versionChoices(s.reg))
		return
	}
	writeJSON(w, map[string]any{"epoch": epoch, "serving": s.reg.Serving()})
}

func (s *Server) handleRollback(w http.ResponseWriter, _ *http.Request) {
	epoch, err := s.reg.Rollback()
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error(), versionChoices(s.reg))
		return
	}
	writeJSON(w, map[string]any{"epoch": epoch, "serving": s.reg.Serving()})
}

// versionChoices renders the pushed version ids as the valid-choice
// list of registry errors.
func versionChoices(reg *Registry) []string {
	ids := reg.VersionIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%d", id)
	}
	return out
}

// FaultRequest is the wire form of a cumulative fault state.
type FaultRequest struct {
	Nodes []int    `json:"nodes,omitempty"`
	Links [][2]int `json:"links,omitempty"`
}

// Set materialises the request, validating ranges against the serving
// topology.
func (fr *FaultRequest) Set(g topology.Graph) (*fault.Set, error) {
	f := fault.NewSet()
	for _, n := range fr.Nodes {
		if n < 0 || n >= g.Nodes() {
			return nil, fmt.Errorf("fault node %d out of range [0,%d)", n, g.Nodes())
		}
		f.FailNode(topology.NodeID(n))
	}
	for _, l := range fr.Links {
		if l[0] < 0 || l[0] >= g.Nodes() || l[1] < 0 || l[1] >= g.Nodes() {
			return nil, fmt.Errorf("fault link %v out of range [0,%d)", l, g.Nodes())
		}
		f.FailLink(topology.NodeID(l[0]), topology.NodeID(l[1]))
	}
	return f, nil
}

// handleFault applies a cumulative fault state: through the failover
// plane when one is attached (covered class = atomic backup flip),
// through the registry's live recompute otherwise. Either path
// invalidates the memoization cache.
func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req FaultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), nil)
		return
	}
	f, err := req.Set(s.g)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	flipped := false
	if p := s.Plane(); p != nil {
		flipped = p.OnFault(f)
	} else {
		s.reg.UpdateFaults(f)
	}
	writeJSON(w, map[string]any{"flipped": flipped, "epoch": s.reg.Epoch()})
}

// MetricsDoc is the /metrics document: the decision-service snapshot
// plus the fleet layers (cache, registry, shard) and the failover
// plane when attached.
type MetricsDoc struct {
	reconfig.MetricsSnapshot
	Shard       ShardInfo              `json:"shard"`
	Misdirected int64                  `json:"misdirected"`
	Cache       *CacheMetrics          `json:"cache,omitempty"`
	Registry    *RegistryStatus        `json:"registry,omitempty"`
	Failover    *failover.PlaneMetrics `json:"failover,omitempty"`
}

// Metrics snapshots the replica's full metrics document.
func (s *Server) Metrics() MetricsDoc {
	doc := MetricsDoc{
		MetricsSnapshot: s.reg.Service().Metrics(),
		Shard:           s.shard,
		Misdirected:     s.misdirected.Load(),
	}
	if c := s.reg.Cache(); c != nil {
		cm := c.Metrics()
		doc.Cache = &cm
	}
	st := s.reg.Status()
	doc.Registry = &st
	if p := s.Plane(); p != nil {
		pm := p.Metrics()
		doc.Failover = &pm
	}
	return doc
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Metrics())
}

// errorDoc is the JSON error body every non-200 response carries:
// the message plus, when the input names one of an enumerable set,
// the valid choices (the HTTP face of the ftsim/rulec flag-validation
// convention).
type errorDoc struct {
	Error string   `json:"error"`
	Valid []string `json:"valid,omitempty"`
}

func writeJSONError(w http.ResponseWriter, code int, msg string, valid []string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(errorDoc{Error: msg, Valid: valid}); err != nil {
		log.Printf("fleet: writing error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fleet: writing response: %v", err)
	}
}

// LoadOrBuild reads an artifact or bundle file, or compiles the
// builtin program of the requested family when path is empty — the
// shared startup path of routerd and fleetload.
func LoadOrBuild(path, algo string, opts reconfig.BuildOptions) (*reconfig.Artifact, *failover.Bundle, error) {
	if path == "" {
		art, err := reconfig.Build(algo, opts)
		return art, nil, err
	}
	return failover.LoadPath(path)
}

// TopologyFor builds the topology the artifact's family routes on:
// nafta and maze take the WxH mesh spec, routec pins the hypercube
// dimension the artifact was compiled for.
func TopologyFor(art *reconfig.Artifact, meshSpec string) (topology.Graph, error) {
	parseMesh := func() (int, int, error) {
		var w, h int
		if _, err := fmt.Sscanf(strings.ToLower(meshSpec), "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
			return 0, 0, fmt.Errorf("bad -mesh %q (want WxH, both >= 2)", meshSpec)
		}
		return w, h, nil
	}
	switch art.Algorithm {
	case "nafta":
		w, h, err := parseMesh()
		if err != nil {
			return nil, err
		}
		return topology.NewMesh(w, h), nil
	case "routec":
		return topology.NewHypercube(art.CubeDim), nil
	case "maze":
		w, h, err := parseMesh()
		if err != nil {
			return nil, err
		}
		m := topology.NewMesh(w, h)
		if m.Ports() != art.Ports {
			return nil, fmt.Errorf("maze artifact compiled for %d ports, mesh has %d", art.Ports, m.Ports())
		}
		return m, nil
	}
	return nil, fmt.Errorf("artifact names unknown algorithm %q", art.Algorithm)
}
