// Package fleet turns the single-process decision service behind
// cmd/routerd into a multi-node decision fleet: a memoization cache
// over the pure per-epoch decision function, a versioned artifact
// registry with canary/promote/rollback on top of the reconfig epoch
// machinery, topology-shard ownership for replica sets, a scattering
// client library, and the HTTP server the replicas run.
package fleet

import (
	"sync"
	"sync/atomic"

	"repro/internal/reconfig"
	"repro/internal/routing"
)

// Key is the memoization key of one routing decision. It is the
// service-boundary image of the dense InputVector: a DecisionRequest
// carries exactly the values the rule adapters load into the flat
// input slots before a DenseTable lookup (deciding node, arrival
// port/VC, header state), so two requests with equal keys fill
// bit-identical input vectors and — the ARON table being a pure
// function per epoch — must produce bit-identical decisions. Nothing
// outside the key reaches the decision: fault state and table version
// are epoch-level inputs handled by whole-cache invalidation, not per
// key.
type Key struct {
	Node, InPort, InVC       int32
	Src, Dst, Length         int32
	Misroutes, Phase, Detour int32
	VNet                     int32
	Marked                   bool
}

// KeyOf packs a decision request into its memoization key.
func KeyOf(req *reconfig.DecisionRequest) Key {
	return Key{
		Node: int32(req.Node), InPort: int32(req.InPort), InVC: int32(req.InVC),
		Src: int32(req.Src), Dst: int32(req.Dst), Length: int32(req.Length),
		Misroutes: int32(req.Misroutes), Phase: int32(req.Phase),
		Detour: int32(req.DetourLevel), VNet: int32(req.VNet),
		Marked: req.Marked,
	}
}

// cacheEntry is one memoized decision. Candidates are stored as an
// immutable copy; an empty (non-nil semantics irrelevant) slice is a
// memoized unroutable verdict — a legal answer worth caching.
type cacheEntry struct {
	cands []routing.Candidate
	epoch uint64
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu sync.Mutex
	m  map[Key]cacheEntry
}

const cacheShards = 16

// Cache memoizes routing decisions across requests. Correctness rests
// on two facts: (1) the decision function is pure per epoch — the
// Service already spreads identical requests over interchangeable
// engine replicas, so a memoized answer is just one more replica that
// answers from memory; (2) every input that is not in the Key (table
// version, fault state) only changes through the registry's mutation
// path, which bumps the generation counter *after* the mutation
// completes. Writers capture the generation before deciding and Put
// refuses a stale generation, so a decision computed against old
// tables can never be stored after the invalidation that retired them.
type Cache struct {
	gen    atomic.Uint64
	shards [cacheShards]cacheShard
	// perShard is the eviction high-water mark of each shard.
	perShard int

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// CacheMetrics is the cache section of routerd's /metrics document.
type CacheMetrics struct {
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// NewCache builds a decision cache bounded to roughly capacity
// entries. A capacity <= 0 returns nil — the registry and server treat
// a nil cache as memoization disabled.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]cacheEntry)
	}
	return c
}

// shardOf spreads keys over the shards; the deciding node is the
// natural spreader (uniform under scattered traffic) with the header
// fields folded in so single-node replays still spread.
func (c *Cache) shardOf(k *Key) *cacheShard {
	h := uint32(k.Node)*31 ^ uint32(k.Src)*17 ^ uint32(k.Dst)*13 ^ uint32(k.InPort+7)
	return &c.shards[h%cacheShards]
}

// Gen returns the current generation. Callers capture it BEFORE
// computing the decision they intend to Put — see Put.
func (c *Cache) Gen() uint64 { return c.gen.Load() }

// Get appends the memoized candidates for k to buf and returns the
// extended slice, the memoized epoch and whether it hit. A hit with an
// unextended buf is a memoized unroutable verdict.
func (c *Cache) Get(k Key, buf []routing.Candidate) ([]routing.Candidate, uint64, bool) {
	sh := c.shardOf(&k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if ok {
		buf = append(buf, e.cands...)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return buf, 0, false
	}
	c.hits.Add(1)
	return buf, e.epoch, true
}

// Put memoizes a decision computed while the cache was at generation
// gen. If an invalidation ran since gen was captured the entry is
// dropped: the decision may predate a reload, fault event or epoch
// retirement and must not outlive it. The generation check and the
// insert share the shard lock, and Invalidate sweeps each shard after
// bumping the generation, so no stale entry can survive an
// invalidation (inserted-before entries are swept; inserted-after
// attempts see the new generation and drop).
func (c *Cache) Put(k Key, gen uint64, cands []routing.Candidate, epoch uint64) {
	sh := c.shardOf(&k)
	sh.mu.Lock()
	if c.gen.Load() != gen {
		sh.mu.Unlock()
		return
	}
	if _, exists := sh.m[k]; !exists && len(sh.m) >= c.perShard {
		// Evict one arbitrary entry (map iteration order): the cache is
		// a throughput device, not an LRU contract, and one probe keeps
		// the hot path O(1).
		for victim := range sh.m {
			delete(sh.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	sh.m[k] = cacheEntry{cands: append([]routing.Candidate(nil), cands...), epoch: epoch}
	sh.mu.Unlock()
}

// Invalidate atomically retires every memoized decision: the
// generation bump instantly blocks stale Puts, then each shard is
// swept so no pre-bump entry remains once Invalidate returns. Callers
// must mutate the decision state (reload, fault update, engine
// install) BEFORE invalidating — a miss that observes the new
// generation must be guaranteed to decide on the new state.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
	c.invalidations.Add(1)
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Metrics snapshots the cache counters.
func (c *Cache) Metrics() CacheMetrics {
	hits, misses := c.hits.Load(), c.misses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return CacheMetrics{
		Entries:       c.Len(),
		Capacity:      c.perShard * cacheShards,
		Hits:          hits,
		Misses:        misses,
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		HitRate:       rate,
	}
}
