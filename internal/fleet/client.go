package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/reconfig"
)

// Client is the fleet-side library behind cmd/fleetload and any Go
// caller of a routerd replica set: it knows the replica URLs in shard
// order, scatters a decision batch by node ownership, gathers the
// answers back into request order, and retries a down replica with
// exponential backoff before giving up. Replica i must be running
// with -shard i/N where N = len(replicas); ownership is Owner(node,
// N) on both sides, so the client and the servers can never disagree
// about who answers a node.
type Client struct {
	replicas []string
	hc       *http.Client
	retries  int
	backoff  time.Duration
}

// ClientOptions tune NewClient.
type ClientOptions struct {
	// Retries is how many times a failed sub-batch is re-sent to its
	// replica before the batch errors (default 3).
	Retries int
	// Backoff is the first retry delay; it doubles per attempt
	// (default 50ms).
	Backoff time.Duration
	// HTTPClient overrides the transport (default: 30s timeout).
	HTTPClient *http.Client
}

// NewClient builds a client over the replica base URLs in shard order.
func NewClient(replicas []string, opts ClientOptions) (*Client, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas")
	}
	for i, r := range replicas {
		replicas[i] = strings.TrimRight(r, "/")
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{replicas: replicas, hc: hc, retries: opts.Retries, backoff: opts.Backoff}, nil
}

// Replicas returns the replica count.
func (c *Client) Replicas() int { return len(c.replicas) }

// URL returns replica i's base URL.
func (c *Client) URL(i int) string { return c.replicas[i] }

// Decide routes one decision to the owning replica.
func (c *Client) Decide(ctx context.Context, req *reconfig.DecisionRequest) (reconfig.Decision, error) {
	out, err := c.DecideBatch(ctx, []reconfig.DecisionRequest{*req})
	if err != nil {
		return reconfig.Decision{}, err
	}
	return out[0], nil
}

// DecideBatch scatters reqs over the owning replicas, gathers the
// decisions back into request order, and returns them. Sub-batches to
// distinct replicas fly concurrently; a replica that errors
// (transport failure or non-200) is retried with doubling backoff and
// only fails the batch once the retry budget is spent.
func (c *Client) DecideBatch(ctx context.Context, reqs []reconfig.DecisionRequest) ([]reconfig.Decision, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	n := len(c.replicas)
	// Scatter: sub-batch per owning replica, remembering each request's
	// original position for the gather.
	subs := make([][]reconfig.DecisionRequest, n)
	idx := make([][]int, n)
	for i := range reqs {
		o := Owner(reqs[i].Node, n)
		subs[o] = append(subs[o], reqs[i])
		idx[o] = append(idx[o], i)
	}
	out := make([]reconfig.Decision, len(reqs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for o := range subs {
		if len(subs[o]) == 0 {
			continue
		}
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			ds, err := c.postBatch(ctx, o, subs[o])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("replica %d (%s): %w", o, c.replicas[o], err)
				}
				mu.Unlock()
				return
			}
			for j, d := range ds {
				out[idx[o][j]] = d
			}
		}(o)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// postBatch sends one sub-batch to replica o with the retry/backoff
// policy.
func (c *Client) postBatch(ctx context.Context, o int, sub []reconfig.DecisionRequest) ([]reconfig.Decision, error) {
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
		}
		body, err := c.post(ctx, c.replicas[o]+"/decide/batch", payload)
		if err != nil {
			lastErr = err
			continue
		}
		var ds []reconfig.Decision
		if err := json.Unmarshal(body, &ds); err != nil {
			lastErr = err
			continue
		}
		if len(ds) != len(sub) {
			lastErr = fmt.Errorf("batch of %d answered with %d decisions", len(sub), len(ds))
			continue
		}
		return ds, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", c.retries+1, lastErr)
}

// post issues one POST and returns the body; a non-200 status is an
// error carrying the (JSON error) body.
func (c *Client) post(ctx context.Context, url string, payload []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// Broadcast POSTs the same payload to every replica (rollout
// operations must reach the whole fleet: each replica runs its own
// registry). It returns the per-replica response bodies in shard
// order and fails on the first replica that errors after retries.
func (c *Client) Broadcast(ctx context.Context, path string, payload []byte) ([][]byte, error) {
	out := make([][]byte, len(c.replicas))
	for o := range c.replicas {
		var (
			body    []byte
			err     error
			lastErr error
		)
		delay := c.backoff
		for attempt := 0; attempt <= c.retries; attempt++ {
			if attempt > 0 {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(delay):
				}
				delay *= 2
			}
			body, err = c.post(ctx, c.replicas[o]+path, payload)
			if err == nil {
				lastErr = nil
				break
			}
			lastErr = err
		}
		if lastErr != nil {
			return nil, fmt.Errorf("replica %d (%s): %w", o, c.replicas[o], lastErr)
		}
		out[o] = body
	}
	return out, nil
}

// Push uploads an encoded artifact to every replica's registry and
// returns the assigned version id (asserted identical across
// replicas — the fleet rollout protocol pushes in lockstep).
func (c *Client) Push(ctx context.Context, artifact []byte) (int, error) {
	bodies, err := c.Broadcast(ctx, "/registry/push", artifact)
	if err != nil {
		return 0, err
	}
	version := 0
	for i, b := range bodies {
		var ans struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(b, &ans); err != nil {
			return 0, fmt.Errorf("replica %d: %w", i, err)
		}
		if i == 0 {
			version = ans.Version
		} else if ans.Version != version {
			return 0, fmt.Errorf("replica %d assigned version %d, replica 0 assigned %d (registries out of lockstep)", i, ans.Version, version)
		}
	}
	return version, nil
}

// Canary starts a canary of version id at the given fraction on every
// replica.
func (c *Client) Canary(ctx context.Context, version int, fraction float64) error {
	payload, _ := json.Marshal(map[string]any{"version": version, "fraction": fraction})
	_, err := c.Broadcast(ctx, "/canary", payload)
	return err
}

// Promote promotes the live canary on every replica.
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.Broadcast(ctx, "/promote", []byte("{}"))
	return err
}

// Rollback rolls every replica back to its previous version.
func (c *Client) Rollback(ctx context.Context) error {
	_, err := c.Broadcast(ctx, "/rollback", []byte("{}"))
	return err
}

// Reload hot-reloads an encoded artifact (or bundle) on every replica.
func (c *Client) Reload(ctx context.Context, artifact []byte) error {
	_, err := c.Broadcast(ctx, "/reload", artifact)
	return err
}

// RegistryStatus fetches replica i's GET /registry document.
func (c *Client) RegistryStatus(ctx context.Context, i int) (RegistryStatus, error) {
	var st RegistryStatus
	err := c.getJSON(ctx, c.replicas[i]+"/registry", &st)
	return st, err
}

// Metrics fetches replica i's /metrics document into v (pass a
// pointer to the caller's struct; the document is a superset of
// reconfig.MetricsSnapshot).
func (c *Client) Metrics(ctx context.Context, i int, v any) error {
	return c.getJSON(ctx, c.replicas[i]+"/metrics", v)
}

func (c *Client) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
