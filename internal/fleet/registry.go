package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Version is one pushed artifact in the registry.
type Version struct {
	ID        int    `json:"id"`
	Name      string `json:"name"`
	Algorithm string `json:"algorithm"`
	Epoch     uint64 `json:"epoch"`
	Checksum  string `json:"checksum"`

	art *reconfig.Artifact
}

// canaryFractionDenom is the resolution of the canary sampling
// fraction (0.01% steps).
const canaryFractionDenom = 10000

// Divergence is one recorded canary disagreement: the request and the
// two answers.
type Divergence struct {
	Request   reconfig.DecisionRequest `json:"request"`
	Incumbent []routing.Candidate      `json:"incumbent"`
	Candidate []routing.Candidate      `json:"candidate"`
}

// canaryRun is one live canary: a full engine-replica service built
// from the candidate version (with the live fault state replayed onto
// it), plus the diff counters. It is swapped in and out through an
// atomic pointer so the decision hot path never takes the registry
// lock.
type canaryRun struct {
	version  int
	fraction float64
	numer    uint64 // sampled decisions per canaryFractionDenom
	svc      *reconfig.Service

	seq      atomic.Uint64
	sampled  atomic.Int64
	diverged atomic.Int64

	exMu     sync.Mutex
	examples []Divergence
}

// take reports whether this decision is canaried, spreading sampled
// decisions evenly over the sequence (Bresenham on the fraction) so a
// 10% canary diffs every 10th decision rather than the first 10% of a
// burst.
func (c *canaryRun) take() bool {
	s := c.seq.Add(1)
	return (s*c.numer)/canaryFractionDenom != ((s-1)*c.numer)/canaryFractionDenom
}

// CanaryStatus is the observable state of a live canary.
type CanaryStatus struct {
	Version  int          `json:"version"`
	Fraction float64      `json:"fraction"`
	Sampled  int64        `json:"sampled"`
	Diverged int64        `json:"diverged"`
	Examples []Divergence `json:"examples,omitempty"`
}

// RegistryStatus is the GET /registry document.
type RegistryStatus struct {
	Serving  int           `json:"serving"`
	Previous int           `json:"previous,omitempty"`
	Versions []Version     `json:"versions"`
	Canary   *CanaryStatus `json:"canary,omitempty"`
}

// Registry is the versioned artifact plane of one fleet replica. It
// owns the decision path end to end: requests flow canary-sampling →
// memoization cache → sharded Service, and every state mutation
// (reload, promote, rollback, fault event, failover flip) funnels
// through it so the cache generation and the live fault state stay
// coherent with the engines.
//
// Rollout protocol: Push registers a candidate version (validated
// against the serving topology but not serving), Canary routes a
// configurable fraction of live decisions through engines built from
// the candidate and diffs them against the incumbent (the incumbent's
// answer is always the one served — a diverging canary can be
// observed, never felt), Promote atomically reloads the incumbent
// from the candidate with the live fault state pre-applied, and
// Rollback restores the previously serving version in one call.
type Registry struct {
	g      topology.Graph
	nshard int
	svc    *reconfig.Service
	cache  *Cache

	mu       sync.Mutex
	versions []*Version
	serving  int
	previous int
	faults   *fault.Set // last applied cumulative fault state

	canary atomic.Pointer[canaryRun]
}

// RegistryOptions tune NewRegistry.
type RegistryOptions struct {
	// Shards is the engine-replica count of the serving service (and of
	// canary services). Defaults to 1.
	Shards int
	// CacheEntries bounds the decision memoization cache; 0 disables
	// memoization.
	CacheEntries int
}

// NewRegistry builds a registry serving art on topology g as version 1.
func NewRegistry(art *reconfig.Artifact, g topology.Graph, opts RegistryOptions) (*Registry, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	svc, err := reconfig.NewService(art, g, opts.Shards)
	if err != nil {
		return nil, err
	}
	r := &Registry{g: g, nshard: svc.Shards(), svc: svc, cache: NewCache(opts.CacheEntries)}
	v, err := r.push(art)
	if err != nil {
		return nil, err
	}
	r.serving = v.ID
	return r, nil
}

// Service exposes the underlying decision service (metrics, epoch).
func (r *Registry) Service() *reconfig.Service { return r.svc }

// Cache exposes the memoization cache (nil when disabled).
func (r *Registry) Cache() *Cache { return r.cache }

// Epoch returns the serving table epoch.
func (r *Registry) Epoch() uint64 { return r.svc.Epoch() }

// Decide performs one routing decision through the fleet decision
// path. Canaried decisions bypass the cache in both directions — the
// diff must exercise the candidate engines against a freshly computed
// incumbent answer, and its (incumbent) result is already accounted
// once by the incumbent service.
func (r *Registry) Decide(req *reconfig.DecisionRequest, buf []routing.Candidate) ([]routing.Candidate, uint64, error) {
	if c := r.canary.Load(); c != nil && c.take() {
		return r.decideCanaried(c, req, buf)
	}
	if r.cache == nil {
		return r.svc.Decide(req, buf)
	}
	k := KeyOf(req)
	base := len(buf)
	if out, epoch, ok := r.cache.Get(k, buf); ok {
		return out, epoch, nil
	}
	gen := r.cache.Gen() // before deciding: a concurrent invalidation must beat this Put
	out, epoch, err := r.svc.Decide(req, buf)
	if err != nil {
		return out, epoch, err
	}
	r.cache.Put(k, gen, out[base:], epoch)
	return out, epoch, nil
}

// decideCanaried computes the decision on both the incumbent and the
// candidate, records a divergence when they disagree, and serves the
// incumbent's answer.
func (r *Registry) decideCanaried(c *canaryRun, req *reconfig.DecisionRequest, buf []routing.Candidate) ([]routing.Candidate, uint64, error) {
	base := len(buf)
	out, epoch, err := r.svc.Decide(req, buf)
	if err != nil {
		return out, epoch, err
	}
	cand, _, cerr := c.svc.Decide(req, nil)
	c.sampled.Add(1)
	if cerr != nil || !candidatesEqual(out[base:], cand) {
		c.diverged.Add(1)
		c.exMu.Lock()
		if len(c.examples) < 8 {
			c.examples = append(c.examples, Divergence{
				Request:   *req,
				Incumbent: append([]routing.Candidate(nil), out[base:]...),
				Candidate: cand,
			})
		}
		c.exMu.Unlock()
	}
	return out, epoch, nil
}

// candidatesEqual compares two decisions exactly: same admissible
// outputs in the same preference order. Decision functions are
// deterministic, so a same-algorithm candidate must match bit for bit.
func candidatesEqual(a, b []routing.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Push registers an artifact as a new version after validating that it
// binds against the serving topology. The version is stored, not
// served; Canary or Promote (or Reload, which is push-and-promote)
// activate it.
func (r *Registry) Push(art *reconfig.Artifact) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.push(art)
}

func (r *Registry) push(art *reconfig.Artifact) (*Version, error) {
	if _, err := reconfig.NewEngineBuilder(art, r.g); err != nil {
		return nil, err
	}
	sum, err := art.Checksum()
	if err != nil {
		return nil, err
	}
	v := &Version{
		ID:        len(r.versions) + 1,
		Name:      art.Name,
		Algorithm: art.Algorithm,
		Epoch:     art.Epoch,
		Checksum:  sum,
		art:       art,
	}
	r.versions = append(r.versions, v)
	return v, nil
}

// version returns the stored version by id (registry lock held).
func (r *Registry) version(id int) (*Version, error) {
	if id < 1 || id > len(r.versions) {
		return nil, fmt.Errorf("unknown version %d", id)
	}
	return r.versions[id-1], nil
}

// VersionIDs returns the ids of all pushed versions (the valid-choice
// list for canary/promote errors).
func (r *Registry) VersionIDs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int, len(r.versions))
	for i := range r.versions {
		ids[i] = i + 1
	}
	return ids
}

// StartCanary builds candidate engines from version id (live fault
// state replayed onto them) and starts diffing fraction of decisions
// against the incumbent. A running canary is replaced.
func (r *Registry) StartCanary(id int, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("canary fraction %g out of (0,1]", fraction)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, err := r.version(id)
	if err != nil {
		return err
	}
	svc, err := reconfig.NewService(v.art, r.g, r.nshard)
	if err != nil {
		return err
	}
	if r.faults != nil && !r.faults.Empty() {
		svc.UpdateFaults(r.faults)
	}
	numer := uint64(fraction*canaryFractionDenom + 0.5)
	if numer == 0 {
		numer = 1
	}
	r.canary.Store(&canaryRun{version: id, fraction: fraction, numer: numer, svc: svc})
	return nil
}

// StopCanary abandons the live canary, reporting whether one was
// running.
func (r *Registry) StopCanary() bool {
	return r.canary.Swap(nil) != nil
}

// Canary returns the live canary status (nil when none).
func (r *Registry) Canary() *CanaryStatus {
	c := r.canary.Load()
	if c == nil {
		return nil
	}
	c.exMu.Lock()
	ex := append([]Divergence(nil), c.examples...)
	c.exMu.Unlock()
	return &CanaryStatus{
		Version:  c.version,
		Fraction: c.fraction,
		Sampled:  c.sampled.Load(),
		Diverged: c.diverged.Load(),
		Examples: ex,
	}
}

// Promote makes the canaried version the incumbent: the serving
// service atomically reloads from the candidate artifact with the
// live fault state pre-applied, the previously serving version is
// remembered for Rollback, and the canary ends. Promote does not gate
// on a zero divergence count — that judgement belongs to the operator
// reading the canary diff — but the diff is there to be read first.
func (r *Registry) Promote() (uint64, error) {
	c := r.canary.Load()
	if c == nil {
		return r.svc.Epoch(), fmt.Errorf("no canary to promote")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, err := r.version(c.version)
	if err != nil {
		return r.svc.Epoch(), err
	}
	epoch, err := r.activate(v)
	if err != nil {
		return epoch, err
	}
	r.canary.Store(nil)
	return epoch, nil
}

// Rollback restores the previously serving version in one call (the
// operator's big red button: no artifact re-upload, no canary). The
// rolled-back-from version becomes the new "previous", so a second
// Rollback toggles back.
func (r *Registry) Rollback() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.previous == 0 {
		return r.svc.Epoch(), fmt.Errorf("no previous version to roll back to")
	}
	v, err := r.version(r.previous)
	if err != nil {
		return r.svc.Epoch(), err
	}
	epoch, err := r.activate(v)
	if err != nil {
		return epoch, err
	}
	r.canary.Store(nil)
	return epoch, nil
}

// Reload is push-and-promote in one step — the semantics of routerd's
// POST /reload, now registry-aware so a plain reload is still
// rollback-able.
func (r *Registry) Reload(art *reconfig.Artifact) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, err := r.push(art)
	if err != nil {
		return r.svc.Epoch(), err
	}
	return r.activate(v)
}

// activate makes v the serving version (registry lock held): engines
// are built from the artifact, the live fault state is applied to them
// off to the side, the service flips atomically, and the memoization
// cache is invalidated last — mutate-then-invalidate, so a cache miss
// that observes the new generation is guaranteed to decide on the new
// engines.
func (r *Registry) activate(v *Version) (uint64, error) {
	epoch, err := r.svc.ReloadPrepared(v.art, r.faults)
	if err != nil {
		return epoch, err
	}
	if r.serving != v.ID {
		r.previous = r.serving
		r.serving = v.ID
	}
	if r.cache != nil {
		r.cache.Invalidate()
	}
	return epoch, nil
}

// UpdateFaults applies a cumulative fault state to the incumbent (live
// recompute) and to any canary candidate, remembers it for future
// activations, and invalidates the cache. This is also the failover
// plane's Recompute hook.
func (r *Registry) UpdateFaults(f *fault.Set) {
	if f == nil {
		f = fault.NewSet()
	}
	r.mu.Lock()
	r.noteFaults(f)
	r.mu.Unlock()
	r.svc.UpdateFaults(f)
	if c := r.canary.Load(); c != nil {
		c.svc.UpdateFaults(f)
	}
	if r.cache != nil {
		r.cache.Invalidate()
	}
}

// Install is the failover plane's flip hook: precompiled backup
// engines (one per shard lane) replace the incumbent's engines
// atomically, the canary candidate — which has no precompiled lane —
// converges by live recompute, and the cache is invalidated after
// both. The canary diff across a flip therefore compares a flipped
// incumbent against a recomputed candidate, exactly the equivalence
// the failover tests certify.
func (r *Registry) Install(engines []routing.Algorithm, f *fault.Set) error {
	if _, err := r.svc.InstallEngines(engines); err != nil {
		return err
	}
	r.mu.Lock()
	r.noteFaults(f)
	r.mu.Unlock()
	if c := r.canary.Load(); c != nil {
		c.svc.UpdateFaults(f)
	}
	if r.cache != nil {
		r.cache.Invalidate()
	}
	return nil
}

// Recompute implements failover.Installer.
func (r *Registry) Recompute(f *fault.Set) { r.UpdateFaults(f) }

// noteFaults remembers the cumulative fault state (registry lock
// held). The set is cloned: callers reuse and mutate theirs.
func (r *Registry) noteFaults(f *fault.Set) {
	if f == nil {
		r.faults = nil
		return
	}
	r.faults = f.Clone()
}

// Status snapshots the registry for GET /registry.
func (r *Registry) Status() RegistryStatus {
	r.mu.Lock()
	vs := make([]Version, len(r.versions))
	for i, v := range r.versions {
		vs[i] = *v
	}
	st := RegistryStatus{Serving: r.serving, Previous: r.previous, Versions: vs}
	r.mu.Unlock()
	st.Canary = r.Canary()
	return st
}

// Serving returns the serving version id.
func (r *Registry) Serving() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serving
}
