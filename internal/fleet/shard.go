package fleet

import (
	"fmt"
	"strings"
)

// ShardInfo identifies one replica's slice of the topology in an
// N-replica fleet: replica Index owns every node with node % Count ==
// Index. Modulo ownership needs no node count to agree on — the client
// and every replica derive the same owner from the replica count alone
// — and it spreads neighbouring nodes over distinct replicas, so a
// scattered batch of local traffic still fans out.
type ShardInfo struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Single is the degenerate shard: one replica owning every node.
var Single = ShardInfo{Index: 0, Count: 1}

// Owner returns the replica index owning node in a replicas-wide
// fleet.
func Owner(node, replicas int) int {
	if replicas <= 1 {
		return 0
	}
	return node % replicas
}

// Owns reports whether this replica owns node.
func (s ShardInfo) Owns(node int) bool {
	return Owner(node, s.Count) == s.Index
}

// Valid reports a well-formed shard spec.
func (s ShardInfo) Valid() bool {
	return s.Count >= 1 && s.Index >= 0 && s.Index < s.Count
}

// String renders the canonical "index/count" form.
func (s ShardInfo) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses an "index/count" shard spec, e.g. "0/3". The
// empty string is the single-replica shard.
func ParseShard(spec string) (ShardInfo, error) {
	if spec == "" {
		return Single, nil
	}
	var s ShardInfo
	if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d/%d", &s.Index, &s.Count); err != nil {
		return s, fmt.Errorf("bad shard spec %q (want index/count, e.g. 0/3)", spec)
	}
	if !s.Valid() {
		return s, fmt.Errorf("bad shard spec %q: index must be in [0,%d)", spec, s.Count)
	}
	return s, nil
}
