package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func ev(cycle int64, node int32, kind Kind) Event {
	return Event{Cycle: cycle, Node: node, Kind: kind, Msg: -1, Port: -1, VC: -1}
}

func TestRingWraparound(t *testing.T) {
	rec := New(1, 4)
	for i := int64(0); i < 10; i++ {
		rec.Record(ev(i, 0, KFlitInjected))
	}
	got := rec.NodeEvents(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Cycle != int64(6+i) {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first tail)", i, e.Cycle, 6+i)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
}

func TestEventsMergedAcrossNodes(t *testing.T) {
	rec := New(3, 8)
	// Interleave cycles across nodes out of order per node index.
	rec.Record(ev(5, 2, KVCAllocated))
	rec.Record(ev(1, 0, KFlitInjected))
	rec.Record(ev(3, 1, KRouteComputed))
	rec.Record(ev(3, 0, KVCFreed))
	all := rec.Events()
	if len(all) != 4 {
		t.Fatalf("got %d events", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Cycle < all[i-1].Cycle {
			t.Fatalf("events not cycle-ordered: %v", all)
		}
	}
	// Stability: node 0's cycle-3 event must precede node 1's (ring
	// order is node-major).
	if all[1].Node != 0 || all[2].Node != 1 {
		t.Fatalf("cycle-3 tie not node-stable: %v", all)
	}
	since := rec.EventsSince(3)
	if len(since) != 3 || since[0].Cycle != 3 {
		t.Fatalf("EventsSince(3) = %v", since)
	}
}

func TestOutOfRangeNodeGoesToRingZero(t *testing.T) {
	rec := New(2, 4)
	rec.Record(ev(1, -1, KFaultPropagated))
	rec.Record(ev(2, 99, KFaultPropagated))
	if len(rec.NodeEvents(0)) != 2 {
		t.Fatalf("ring 0 has %d events", len(rec.NodeEvents(0)))
	}
	if rec.NodeEvents(-1) != nil || rec.NodeEvents(5) != nil {
		t.Fatal("out-of-range NodeEvents should be nil")
	}
}

func TestKindNamesStableAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind renders %q", Kind(200).String())
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Cycle: 42, Msg: 7, Node: 3, Arg: -2, Port: 1, VC: 0, Kind: KVCAllocated}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"kind":"nosuch"}`), &out); err == nil {
		t.Fatal("unknown kind should fail to decode")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	rec := New(2, 4)
	sink, err := NewSink(FormatJSONL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetSink(sink)
	rec.Record(Event{Cycle: 1, Msg: 5, Node: 0, Port: 2, VC: 1, Arg: 3, Kind: KRouteComputed})
	rec.Record(ev(2, 1, KFlitDelivered))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 || lines[0].Kind != KRouteComputed || lines[0].Msg != 5 ||
		lines[1].Kind != KFlitDelivered {
		t.Fatalf("decoded %+v", lines)
	}
}

func TestUnknownSinkFormat(t *testing.T) {
	if _, err := NewSink("xml", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format should fail")
	}
}

// errWriter fails after n bytes to exercise sink error capture.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestSinkErrorIsRememberedNotFatal(t *testing.T) {
	rec := New(1, 4)
	sink := NewJSONLWriter(&errWriter{n: 8})
	rec.SetSink(sink)
	for i := int64(0); i < 2000; i++ { // overflow the bufio buffer
		rec.Record(ev(i, 0, KCreditSent))
	}
	if rec.Close() == nil {
		t.Fatal("sink failure should surface in Close")
	}
	// Ring recording continued despite the dead sink.
	if len(rec.NodeEvents(0)) != 4 {
		t.Fatalf("ring lost events after sink failure: %d", len(rec.NodeEvents(0)))
	}
}
