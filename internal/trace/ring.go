package trace

// ring is a fixed-capacity circular event buffer. push overwrites the
// oldest entry when full — the flight-recorder property: the recent
// past survives, the distant past is recycled.
type ring struct {
	buf  []Event
	head int // index of the oldest retained event
	n    int // number of retained events
}

func (r *ring) init(capacity int) {
	r.buf = make([]Event, capacity)
	r.head, r.n = 0, 0
}

// push stores ev and reports whether an old event was overwritten.
func (r *ring) push(ev Event) (overwrote bool) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
		return false
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % len(r.buf)
	return true
}

// slice returns the retained events oldest-first as a fresh slice.
func (r *ring) slice() []Event {
	if r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	tail := copy(out, r.buf[r.head:min(r.head+r.n, len(r.buf))])
	copy(out[tail:], r.buf[:r.n-tail])
	return out
}
