package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is a structured post-mortem: everything needed to understand
// why a network stopped making progress, assembled at detection time.
// internal/network builds one automatically when its invariant checker
// detects a deadlock or a livelocked packet (see
// network.Config.OnPostMortem), and cmd/ftsim -postmortem persists it.
type Report struct {
	// Reason is "deadlock", "livelock" or "manual".
	Reason string `json:"reason"`
	// Cycle is the simulation cycle of detection.
	Cycle int64 `json:"cycle"`
	// WaitCycle lists the message IDs forming the certified circular
	// wait (deadlocks only; empty when only the watchdog fired).
	WaitCycle []int64 `json:"wait_cycle,omitempty"`
	// Blocked describes every packet that cannot currently move.
	Blocked []BlockedPacket `json:"blocked"`
	// Routers snapshots the per-router VC/credit state of all routers
	// holding flits or owned outputs.
	Routers []RouterState `json:"routers"`
	// Events is the flight-recorder tail (the last N cycles of
	// activity), empty when no recorder was attached.
	Events []Event `json:"events,omitempty"`
}

// BlockedPacket describes one packet that cannot advance.
type BlockedPacket struct {
	Msg     int64 `json:"msg"`
	Src     int64 `json:"src"`
	Dst     int64 `json:"dst"`
	Node    int64 `json:"node"` // router holding the head
	InPort  int   `json:"in_port"`
	InVC    int   `json:"in_vc"`
	OutPort int   `json:"out_port"` // -1 when VA has not granted yet
	OutVC   int   `json:"out_vc"`
	Age     int64 `json:"age"` // cycles since the head left the source queue
	// WaitsOn lists the message IDs this packet waits for (owners of
	// its candidate outputs, or the worm at the front of the full
	// downstream buffer).
	WaitsOn []int64 `json:"waits_on,omitempty"`
	// Why is "no-free-vc" (blocked in VA) or "no-credit" (allocated
	// but the downstream buffer is full).
	Why string `json:"why"`
}

// VCState snapshots one input virtual channel.
type VCState struct {
	Port       int   `json:"port"`
	VC         int   `json:"vc"`
	Flits      int   `json:"flits"`
	Msg        int64 `json:"msg"` // -1 when empty
	Routed     bool  `json:"routed"`
	OutPort    int   `json:"out_port"`
	OutVC      int   `json:"out_vc"`
	Eject      bool  `json:"eject,omitempty"`
	Unroutable bool  `json:"unroutable,omitempty"`
}

// OutState snapshots one output virtual channel.
type OutState struct {
	Port      int   `json:"port"`
	VC        int   `json:"vc"`
	Owner     int64 `json:"owner"` // owning message ID, -1 when free
	Credits   int   `json:"credits"`
	Remaining int   `json:"remaining"`
}

// RouterState snapshots one router's occupied channels.
type RouterState struct {
	Node    int64      `json:"node"`
	Inputs  []VCState  `json:"inputs,omitempty"`
	Outputs []OutState `json:"outputs,omitempty"`
}

// WriteJSON writes the report as indented JSON (event kinds appear by
// name; see Event.MarshalJSON).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses a report previously written with WriteJSON.
func DecodeReport(r io.Reader) (*Report, error) {
	rep := &Report{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// String renders a human-readable post-mortem summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "POST-MORTEM: %s at cycle %d\n", r.Reason, r.Cycle)
	if len(r.WaitCycle) > 0 {
		fmt.Fprintf(&b, "circular wait among messages %v\n", r.WaitCycle)
	}
	fmt.Fprintf(&b, "%d blocked packet(s):\n", len(r.Blocked))
	blocked := append([]BlockedPacket(nil), r.Blocked...)
	sort.Slice(blocked, func(i, j int) bool { return blocked[i].Msg < blocked[j].Msg })
	for _, p := range blocked {
		fmt.Fprintf(&b, "  msg %d (%d->%d) at node %d in(%d,%d)", p.Msg, p.Src, p.Dst, p.Node, p.InPort, p.InVC)
		if p.OutPort >= 0 {
			fmt.Fprintf(&b, " out(%d,%d)", p.OutPort, p.OutVC)
		}
		fmt.Fprintf(&b, " age %d: %s", p.Age, p.Why)
		if len(p.WaitsOn) > 0 {
			fmt.Fprintf(&b, ", waits on %v", p.WaitsOn)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d router(s) with occupied channels, %d recorded event(s)\n",
		len(r.Routers), len(r.Events))
	return b.String()
}
