// Package trace is the simulator's flight recorder: a near-zero-
// overhead event log of everything the router pipeline, the fault
// machinery and the rule engine do, kept in fixed-size per-node ring
// buffers so that the last N cycles of history are always available
// for a post-mortem when an invariant trips.
//
// The design follows the classic flight-recorder discipline:
//
//   - recording is opt-in — a simulation without an attached Recorder
//     pays exactly one nil-check per would-be event;
//   - events are compact fixed-size records (no allocation on the
//     recording path once the rings are built);
//   - the rings keep the recent past per node; an optional streaming
//     Sink (JSONL or Chrome trace_event) additionally persists the
//     full event stream for offline analysis;
//   - when the network's invariant checker detects a deadlock or a
//     livelocked packet, the recorder's recent history plus a full
//     router/VC/credit snapshot become a structured Report naming the
//     cycle, the blocked packets and the channel-wait cycle.
//
// A Recorder is intentionally not synchronised: the simulator is
// single-goroutine per network, and parallel sweeps attach one
// recorder per job (see sim.Config.Recorder).
package trace

import (
	"encoding/json"
	"fmt"
)

// Kind enumerates the recorded event types.
type Kind uint8

const (
	// KFlitInjected: a message's head flit entered the network at
	// Node (Arg = message length in flits).
	KFlitInjected Kind = iota
	// KRouteComputed: RC produced Arg admissible candidates for Msg at
	// Node (Port/VC identify the input; Arg < 0 never happens — an
	// empty candidate set is KUnroutable).
	KRouteComputed
	// KUnroutable: RC found no admissible output; the message will be
	// absorbed at Node.
	KUnroutable
	// KVCAllocated: VA granted output (Port,VC) of Node to Msg.
	KVCAllocated
	// KVCFreed: the tail flit of Msg released output (Port,VC) of
	// Node.
	KVCFreed
	// KFlitBlocked: Msg holds output (Port,VC) of Node but cannot send
	// for want of downstream credits (recorded once per blocking
	// episode, not per cycle).
	KFlitBlocked
	// KCreditSent: one credit returned upstream to output (Port,VC) of
	// Node (Arg = return delay in cycles).
	KCreditSent
	// KFlitDelivered: the tail flit of Msg was ejected at Node
	// (Arg = total latency in cycles).
	KFlitDelivered
	// KFlitDropped: Msg was absorbed as unroutable at Node.
	KFlitDropped
	// KMsgKilled: fault surgery removed Msg (it touched a failed
	// component) at Node.
	KMsgKilled
	// KFaultRaised: Node became faulty (Arg = 0) or the link through
	// Port of Node failed (Arg = 1).
	KFaultRaised
	// KFaultPropagated: the diagnosis phase ran at cycle Cycle
	// (Arg = number of messages killed by the surgery).
	KFaultPropagated
	// KRuleFired: the rule interpreter fired rule Arg of base Port
	// (an index into the program's base list) for a decision at Node.
	KRuleFired
	// KDispatch: the event manager dequeued an internal event
	// (Arg = remaining queue length).
	KDispatch
	// KDeadlock: the watchdog or wait-for-graph analysis declared a
	// deadlock at Cycle (Arg = number of messages in the certified
	// cycle, 0 when only the watchdog fired).
	KDeadlock
	// KLivelock: Msg exceeded the configured age bound at Node
	// (Arg = age in cycles).
	KLivelock
	// KReconfigSwap: the network's decision engine was hot-swapped at
	// Cycle (Arg = the new table epoch).
	KReconfigSwap
	// KEpochRetired: the last worm pinned to an old table epoch left
	// the network and the epoch's engine was retired (Arg = the
	// retired epoch).
	KEpochRetired
	// KFailoverFlip: the failover plane resolved a fault by installing
	// a precompiled backup engine instead of a live recompute.
	KFailoverFlip

	kindCount
)

var kindNames = [kindCount]string{
	"flit-injected", "route-computed", "unroutable", "vc-allocated",
	"vc-freed", "flit-blocked", "credit-sent", "flit-delivered",
	"flit-dropped", "msg-killed", "fault-raised", "fault-propagated",
	"rule-fired", "dispatch", "deadlock", "livelock",
	"reconfig-swap", "epoch-retired", "failover-flip",
}

// String returns the stable lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one compact flight-recorder record (32 bytes). Field
// meanings are kind-specific; see the Kind constants. Msg is -1 when
// no message is involved, Port/VC are -1 when not applicable.
type Event struct {
	Cycle int64 `json:"cycle"`
	Msg   int64 `json:"msg"`
	Node  int32 `json:"node"`
	Arg   int32 `json:"arg"`
	Port  int16 `json:"port"`
	VC    int16 `json:"vc"`
	Kind  Kind  `json:"-"`
}

// eventJSON is the wire form of an Event: the kind travels by name so
// traces stay readable and stable across kind renumbering.
type eventJSON struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	Msg   int64  `json:"msg"`
	Port  int16  `json:"port"`
	VC    int16  `json:"vc"`
	Arg   int32  `json:"arg"`
}

// MarshalJSON encodes the event with its kind name.
func (ev Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Cycle: ev.Cycle, Kind: ev.Kind.String(), Node: ev.Node,
		Msg: ev.Msg, Port: ev.Port, VC: ev.VC, Arg: ev.Arg,
	})
}

// UnmarshalJSON restores an event, resolving the kind by name.
func (ev *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*ev = Event{Cycle: j.Cycle, Node: j.Node, Msg: j.Msg, Port: j.Port, VC: j.VC, Arg: j.Arg}
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == j.Kind {
			ev.Kind = k
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", j.Kind)
}

// Recorder is the flight recorder: one fixed-size ring per node plus
// an optional streaming sink. The zero Recorder is not usable; build
// one with New. Methods are not safe for concurrent use — attach one
// recorder per simulation.
type Recorder struct {
	rings []ring
	sink  Sink
	// clock supplies the current simulation cycle to recording hooks
	// that live outside the network (the rule interpreter); the
	// network registers itself here on attach.
	clock func() int64
	// sinkErr remembers the first sink failure; recording continues
	// into the rings so a post-mortem stays possible.
	sinkErr error
	dropped int64
}

// DefaultPerNodeEvents is the ring capacity used when New is called
// with perNode <= 0.
const DefaultPerNodeEvents = 1024

// New builds a recorder for a network of `nodes` nodes keeping the
// most recent `perNode` events per node (DefaultPerNodeEvents when
// <= 0). Events recorded with an out-of-range node (machine-level
// events of detached interpreters use node -1) go to ring 0.
func New(nodes, perNode int) *Recorder {
	if nodes < 1 {
		nodes = 1
	}
	if perNode <= 0 {
		perNode = DefaultPerNodeEvents
	}
	r := &Recorder{rings: make([]ring, nodes)}
	for i := range r.rings {
		r.rings[i].init(perNode)
	}
	return r
}

// SetSink attaches a streaming sink; every subsequent event is
// forwarded to it in addition to the ring. Pass nil to detach.
func (r *Recorder) SetSink(s Sink) { r.sink = s }

// SetClock registers the simulation clock (the network does this on
// attach); hooks outside the pipeline stamp their events with Now.
func (r *Recorder) SetClock(clock func() int64) { r.clock = clock }

// Now returns the current simulation cycle (0 before a clock is
// registered).
func (r *Recorder) Now() int64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// Record appends one event. This is the hot path: a ring store plus
// an optional sink write.
func (r *Recorder) Record(ev Event) {
	n := int(ev.Node)
	if n < 0 || n >= len(r.rings) {
		n = 0
	}
	if r.rings[n].push(ev) {
		r.dropped++
	}
	if r.sink != nil && r.sinkErr == nil {
		if err := r.sink.Emit(ev); err != nil {
			r.sinkErr = err
		}
	}
}

// Dropped returns the number of events overwritten in the rings since
// the recorder was built (the streaming sink, when attached, still
// saw them).
func (r *Recorder) Dropped() int64 { return r.dropped }

// SinkErr returns the first error the streaming sink reported, or
// nil.
func (r *Recorder) SinkErr() error { return r.sinkErr }

// NodeEvents returns the retained events of one node, oldest first.
func (r *Recorder) NodeEvents(node int) []Event {
	if node < 0 || node >= len(r.rings) {
		return nil
	}
	return r.rings[node].slice()
}

// Events returns all retained events merged across nodes in
// cycle order (stable within a cycle by node).
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.rings {
		out = append(out, r.rings[i].slice()...)
	}
	// Stable merge by cycle; per-node slices are already ordered.
	stableSortByCycle(out)
	return out
}

// EventsSince returns the merged events with Cycle >= since.
func (r *Recorder) EventsSince(since int64) []Event {
	all := r.Events()
	for i, ev := range all {
		if ev.Cycle >= since {
			return all[i:]
		}
	}
	return nil
}

// Close flushes and closes the attached sink (no-op without one). It
// returns the first sink error encountered during the run, if any.
func (r *Recorder) Close() error {
	if r.sink == nil {
		return r.sinkErr
	}
	err := r.sink.Close()
	if r.sinkErr != nil {
		return r.sinkErr
	}
	return err
}

// stableSortByCycle is an insertion-free merge sort specialisation:
// the input is a concatenation of already-sorted runs, so a simple
// stable sort keyed on Cycle suffices and keeps per-node order.
func stableSortByCycle(evs []Event) {
	// Small inputs dominate (post-mortem windows); use a stable
	// bottom-up merge via sort.SliceStable semantics without pulling
	// package sort into the hot path — this runs only on extraction.
	mergeSortByCycle(evs, make([]Event, len(evs)))
}

func mergeSortByCycle(evs, tmp []Event) {
	if len(evs) < 2 {
		return
	}
	mid := len(evs) / 2
	mergeSortByCycle(evs[:mid], tmp[:mid])
	mergeSortByCycle(evs[mid:], tmp[mid:])
	copy(tmp, evs)
	i, j := 0, mid
	for k := range evs {
		switch {
		case i >= mid:
			evs[k] = tmp[j]
			j++
		case j >= len(tmp):
			evs[k] = tmp[i]
			i++
		case tmp[j].Cycle < tmp[i].Cycle:
			evs[k] = tmp[j]
			j++
		default:
			evs[k] = tmp[i]
			i++
		}
	}
}
