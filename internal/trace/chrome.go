package trace

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeWriter streams events in the Chrome trace_event JSON array
// format, so a simulation can be opened in chrome://tracing or
// Perfetto. The mapping:
//
//   - pid = node (each router becomes one "process" track group);
//   - tid = output port + 1 for port-scoped events, 0 otherwise;
//   - ts  = cycle, interpreted as microseconds (1 cycle = 1 µs);
//   - message lifetimes are async begin/end pairs (ph "b"/"e",
//     id = message ID) from injection to delivery/drop/kill, which
//     Perfetto renders as one bar per in-flight message;
//   - everything else is an instant event (ph "i") named after its
//     Kind, with the raw fields attached as args.
//
// Events stream as they happen; Close terminates the JSON array, but
// the trace_event spec also tolerates a truncated array, so a crashed
// run still loads.
type ChromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

// NewChromeWriter opens the JSON array on w.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: bufio.NewWriterSize(w, 1<<16), first: true}
	cw.w.WriteString("[\n")
	return cw
}

func (c *ChromeWriter) sep() {
	if c.first {
		c.first = false
		return
	}
	c.w.WriteString(",\n")
}

func (c *ChromeWriter) emitRaw(format string, args ...interface{}) {
	if c.err != nil {
		return
	}
	c.sep()
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

// Emit writes one event (plus the async lifetime marker for message
// begin/end kinds).
func (c *ChromeWriter) Emit(ev Event) error {
	tid := 0
	if ev.Port >= 0 {
		tid = int(ev.Port) + 1
	}
	switch ev.Kind {
	case KFlitInjected:
		c.emitRaw(`{"name":"msg %d","cat":"msg","ph":"b","id":%d,"pid":%d,"tid":0,"ts":%d}`,
			ev.Msg, ev.Msg, ev.Node, ev.Cycle)
	case KFlitDelivered, KFlitDropped, KMsgKilled:
		c.emitRaw(`{"name":"msg %d","cat":"msg","ph":"e","id":%d,"pid":%d,"tid":0,"ts":%d}`,
			ev.Msg, ev.Msg, ev.Node, ev.Cycle)
	}
	c.emitRaw(`{"name":%q,"cat":"net","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,`+
		`"args":{"msg":%d,"port":%d,"vc":%d,"arg":%d}}`,
		ev.Kind.String(), ev.Node, tid, ev.Cycle, ev.Msg, ev.Port, ev.VC, ev.Arg)
	return c.err
}

// Close terminates the JSON array and flushes.
func (c *ChromeWriter) Close() error {
	c.w.WriteString("\n]\n")
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
