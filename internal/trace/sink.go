package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Sink receives the full event stream as it is recorded. Sinks are
// called from the simulation hot path; implementations should buffer.
type Sink interface {
	Emit(Event) error
	// Close flushes buffered output and finalises the file format.
	Close() error
}

// FormatJSONL and FormatChrome name the built-in sink formats (the
// values of cmd/ftsim's -trace-format flag).
const (
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// NewSink builds a sink of the named format writing to w. Callers own
// closing any underlying file after Sink.Close.
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case FormatJSONL:
		return NewJSONLWriter(w), nil
	case FormatChrome:
		return NewChromeWriter(w), nil
	}
	return nil, fmt.Errorf("trace: unknown format %q (valid: %s, %s)",
		format, FormatJSONL, FormatChrome)
}

// JSONLWriter streams events as one JSON object per line:
//
//	{"cycle":12,"kind":"vc-allocated","node":5,"msg":3,"port":1,"vc":0,"arg":0}
//
// The format is grep- and jq-friendly and append-only, so a crashed
// run still leaves a readable prefix.
type JSONLWriter struct {
	w *bufio.Writer
}

// NewJSONLWriter wraps w in a buffered JSONL sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one event line. The encoder is hand-rolled: every field
// is a number or a known-safe kind name, so full JSON escaping would
// only cost allocations.
func (j *JSONLWriter) Emit(ev Event) error {
	b := j.w
	b.WriteString(`{"cycle":`)
	b.WriteString(strconv.FormatInt(ev.Cycle, 10))
	b.WriteString(`,"kind":"`)
	b.WriteString(ev.Kind.String())
	b.WriteString(`","node":`)
	b.WriteString(strconv.FormatInt(int64(ev.Node), 10))
	b.WriteString(`,"msg":`)
	b.WriteString(strconv.FormatInt(ev.Msg, 10))
	b.WriteString(`,"port":`)
	b.WriteString(strconv.FormatInt(int64(ev.Port), 10))
	b.WriteString(`,"vc":`)
	b.WriteString(strconv.FormatInt(int64(ev.VC), 10))
	b.WriteString(`,"arg":`)
	b.WriteString(strconv.FormatInt(int64(ev.Arg), 10))
	_, err := b.WriteString("}\n")
	return err
}

// Close flushes the buffer.
func (j *JSONLWriter) Close() error { return j.w.Flush() }
