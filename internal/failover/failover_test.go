package failover

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// --- fault classes ---

func TestEnumerateMeshCounts(t *testing.T) {
	m := topology.NewMesh(6, 6)
	classes, err := Enumerate(m, Kinds)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range classes {
		counts[classes[i].Kind]++
	}
	// 2*6*5 links, 36 nodes, (H-1)*(W-1) Figure-2 chains.
	if counts[KindLink] != 60 || counts[KindNode] != 36 || counts[KindChain] != 25 {
		t.Fatalf("class counts: %v", counts)
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	m := topology.NewMesh(5, 4)
	a, err := Enumerate(m, Kinds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(m, Kinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("enumeration size unstable: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("class %d unstable: %s vs %s", i, a[i].Key(), b[i].Key())
		}
	}
}

func TestEnumerateHypercubeGuardrails(t *testing.T) {
	h := topology.NewHypercube(4)
	classes, err := Enumerate(h, []string{KindNode})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 16 {
		t.Fatalf("16 node classes expected on a 4-cube, got %d", len(classes))
	}
	if _, err := Enumerate(h, []string{KindLink}); err == nil {
		t.Fatal("link classes on a hypercube must be refused")
	}
	if _, err := Enumerate(h, []string{KindChain}); err == nil {
		t.Fatal("chain classes on a hypercube must be refused")
	}
}

func TestEnumerateUnknownKindListsChoices(t *testing.T) {
	_, err := Enumerate(topology.NewMesh(4, 4), []string{"bogus"})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range Kinds {
		if !strings.Contains(err.Error(), k) {
			t.Fatalf("error %q does not list valid kind %q", err, k)
		}
	}
}

func TestKeyOfCanonical(t *testing.T) {
	f := fault.NewSet()
	f.FailNode(7)
	f.FailNode(3)
	f.FailLink(8, 7)
	f.FailLink(2, 3)
	if got, want := KeyOf(f), "n3,n7|l2-3,l7-8"; got != want {
		t.Fatalf("KeyOf = %q, want %q", got, want)
	}
	// Insertion order must not matter.
	g := fault.NewSet()
	g.FailLink(2, 3)
	g.FailNode(3)
	g.FailLink(7, 8)
	g.FailNode(7)
	if KeyOf(f) != KeyOf(g) {
		t.Fatalf("key depends on insertion order: %q vs %q", KeyOf(f), KeyOf(g))
	}
}

// --- bundles ---

func buildNAFTABundle(t *testing.T, m *topology.Mesh, kinds []string) (*reconfig.Artifact, *Bundle) {
	t.Helper()
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBundle(art, m, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return art, b
}

func buildRouteCBundle(t *testing.T, h *topology.Hypercube) (*reconfig.Artifact, *Bundle) {
	t.Helper()
	art, err := reconfig.Build("routec", reconfig.BuildOptions{CubeDim: h.Dim})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBundle(art, h, []string{KindNode})
	if err != nil {
		t.Fatal(err)
	}
	return art, b
}

func TestBundleDeduplicatesOverlappingKinds(t *testing.T) {
	m := topology.NewMesh(6, 6)
	_, b := buildNAFTABundle(t, m, Kinds)
	// 60 links + 36 nodes + 25 chains, minus the 5 length-1 chains that
	// coincide with single west-border vertical links.
	if len(b.Backups) != 116 {
		t.Fatalf("116 deduped backups expected, got %d", len(b.Backups))
	}
	seen := map[string]bool{}
	for i := range b.Backups {
		c := b.Backups[i].Class()
		if key := c.Key(); seen[key] {
			t.Fatalf("duplicate class key %s survived dedup", key)
		} else {
			seen[key] = true
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	m := topology.NewMesh(4, 4)
	_, b := buildNAFTABundle(t, m, []string{KindNode, KindChain})
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MeshW != 4 || got.MeshH != 4 || len(got.Backups) != len(b.Backups) {
		t.Fatalf("round-trip mismatch: %dx%d mesh, %d backups", got.MeshW, got.MeshH, len(got.Backups))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	sumA, err := b.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := got.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumA != sumB {
		t.Fatalf("checksum changed across round-trip: %s vs %s", sumA, sumB)
	}
	if s, err := got.Summary(); err != nil || !strings.Contains(s, "backup classes") {
		t.Fatalf("summary: %v\n%s", err, s)
	}
}

func TestBundleCorruptionDetected(t *testing.T) {
	m := topology.NewMesh(4, 4)
	_, b := buildNAFTABundle(t, m, []string{KindNode})
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40
	if _, err := DecodeBundle(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted bundle decoded cleanly")
	}
	if _, err := DecodeBundle(bytes.NewReader(data[:16])); err == nil {
		t.Fatal("truncated bundle decoded cleanly")
	}
}

func TestDecodeAnySniffsBothFormats(t *testing.T) {
	m := topology.NewMesh(4, 4)
	art, b := buildNAFTABundle(t, m, []string{KindNode})

	var bundleBuf bytes.Buffer
	if err := b.Encode(&bundleBuf); err != nil {
		t.Fatal(err)
	}
	gotArt, gotBundle, err := DecodeAny(bundleBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotBundle == nil || gotArt == nil || gotArt.Algorithm != "nafta" {
		t.Fatalf("bundle sniff failed: art=%v bundle=%v", gotArt, gotBundle)
	}

	var artBuf bytes.Buffer
	if err := art.Encode(&artBuf); err != nil {
		t.Fatal(err)
	}
	gotArt, gotBundle, err = DecodeAny(artBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotBundle != nil || gotArt == nil || gotArt.Algorithm != "nafta" {
		t.Fatalf("artifact sniff failed: art=%v bundle=%v", gotArt, gotBundle)
	}

	if _, _, err := DecodeAny([]byte("garbage that is neither")); err == nil {
		t.Fatal("garbage decoded cleanly")
	}
}

func TestBundleTopologyMismatchRefused(t *testing.T) {
	art, err := reconfig.Build("nafta", reconfig.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBundle(art, topology.NewHypercube(4), []string{KindNode}); err == nil {
		t.Fatal("nafta artifact bundled against a hypercube")
	}
	cube, err := reconfig.Build("routec", reconfig.BuildOptions{CubeDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBundle(cube, topology.NewHypercube(5), []string{KindNode}); err == nil {
		t.Fatal("4-cube artifact bundled against a 5-cube")
	}
	// A plane refuses a bundle enumerated on a different topology size.
	m := topology.NewMesh(4, 4)
	b, err := BuildBundle(art, m, []string{KindNode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlane(b, topology.NewMesh(6, 6), PlaneOptions{}); err == nil {
		t.Fatal("4x4 bundle accepted on a 6x6 plane")
	}
}

// --- the plane: flip-vs-recompute decision equivalence ---

// sampleRequests compares two engines' decisions over every node as
// injection source toward a spread of destinations, plus transit
// requests from every mesh/cube port. Candidate slices must match
// exactly: same fault state, same tables, same program — any
// divergence means the precompiled backup is NOT equivalent to a live
// recompute.
func requireSameDecisions(t *testing.T, label string, g topology.Graph, a, bEng routing.Algorithm) {
	t.Helper()
	nodes := g.Nodes()
	dsts := []int{0, nodes - 1, nodes / 2, nodes / 3}
	var bufA, bufB []routing.Candidate
	for n := 0; n < nodes; n++ {
		for _, d := range dsts {
			if n == d {
				continue
			}
			for inPort := -1; inPort < g.Ports(); inPort++ {
				hdrA := routing.Header{Src: topology.NodeID(n), Dst: topology.NodeID(d), Length: 4}
				hdrB := hdrA
				reqA := routing.Request{Node: topology.NodeID(n), InPort: inPort, InVC: 0, Hdr: &hdrA}
				reqB := reqA
				reqB.Hdr = &hdrB
				bufA = routing.RouteInto(a, reqA, bufA[:0])
				bufB = routing.RouteInto(bEng, reqB, bufB[:0])
				if len(bufA) != len(bufB) {
					t.Fatalf("%s: node %d dst %d in %d: flip gives %v, recompute gives %v",
						label, n, d, inPort, bufA, bufB)
				}
				for i := range bufA {
					if bufA[i] != bufB[i] {
						t.Fatalf("%s: node %d dst %d in %d: candidate %d diverges: flip %v, recompute %v",
							label, n, d, inPort, i, bufA[i], bufB[i])
					}
				}
			}
		}
	}
}

// TestFailoverFlipMatchesRecompute is the per-class equivalence sweep
// the CI gate runs: for EVERY covered class, flipping the precompiled
// backup engine in through the epoch swapper must yield decisions
// identical to a from-scratch live recompute of the same fault set.
func TestFailoverFlipMatchesRecompute(t *testing.T) {
	type family struct {
		name  string
		g     topology.Graph
		art   *reconfig.Artifact
		b     *Bundle
		kinds []string
	}
	var fams []family

	m := topology.NewMesh(5, 4)
	artM, bM := buildNAFTABundle(t, m, Kinds)
	fams = append(fams, family{"nafta/mesh5x4", m, artM, bM, Kinds})

	h := topology.NewHypercube(4)
	artC, bC := buildRouteCBundle(t, h)
	fams = append(fams, family{"routec/cube4", h, artC, bC, []string{KindNode}})

	for _, fam := range fams {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			plane, err := NewPlane(fam.b, fam.g, PlaneOptions{Lanes: 1})
			if err != nil {
				t.Fatal(err)
			}
			// One builder amortises program analysis for the per-class
			// reference engines and the swappers' initial engines.
			eb, err := reconfig.NewEngineBuilder(fam.art, fam.g)
			if err != nil {
				t.Fatal(err)
			}
			initial, err := eb.Build()
			if err != nil {
				t.Fatal(err)
			}
			classes := plane.Classes()
			if len(classes) == 0 {
				t.Fatal("plane covers nothing")
			}
			for _, c := range classes {
				// The initial engine never decides here, so one instance
				// can seed every per-class swapper (it is retired —
				// tables invalidated — on each flip, which only matters
				// to engines that keep routing).
				sw := reconfig.NewSwapper(initial)
				plane.Bind(ForSwapper(sw))
				set := c.Set()
				if !plane.Covered(set) {
					t.Fatalf("class %s not covered by its own plane", c.String())
				}
				if !plane.OnFault(set) {
					t.Fatalf("class %s did not flip", c.String())
				}
				ref, err := eb.Build()
				if err != nil {
					t.Fatal(err)
				}
				ref.UpdateFaults(set)
				requireSameDecisions(t, fam.name+"/"+c.String(), fam.g, sw.Current(), ref)
			}
			if got := plane.Flips(); got != int64(len(classes)) {
				t.Fatalf("%d flips for %d classes", got, len(classes))
			}
			if got := plane.Recomputes(); got != 0 {
				t.Fatalf("%d unexpected recomputes", got)
			}
			pm := plane.Metrics()
			if pm.ConsumedClasses != len(classes) || pm.CoveredClasses != len(classes) {
				t.Fatalf("metrics: %+v", pm)
			}
		})
	}
}

func TestPlaneFallbackPaths(t *testing.T) {
	m := topology.NewMesh(4, 4)
	art, b := buildNAFTABundle(t, m, []string{KindNode})
	// Filter the plane down to node 5 only.
	plane, err := NewPlane(b, m, PlaneOptions{Filter: func(c Class) bool {
		return len(c.Nodes) == 1 && c.Nodes[0] == 5
	}})
	if err != nil {
		t.Fatal(err)
	}
	if plane.CoveredClasses() != 1 {
		t.Fatalf("filter kept %d classes", plane.CoveredClasses())
	}
	eng, err := reconfig.NewEngine(art, m)
	if err != nil {
		t.Fatal(err)
	}
	sw := reconfig.NewSwapper(eng)
	plane.Bind(ForSwapper(sw))

	// Empty set: recompute path, uncounted.
	if plane.OnFault(fault.NewSet()) {
		t.Fatal("empty fault set flipped")
	}
	if plane.Flips() != 0 || plane.Recomputes() != 0 {
		t.Fatalf("empty set counted: flips=%d recomputes=%d", plane.Flips(), plane.Recomputes())
	}

	// Uncovered class: measured recompute.
	un := fault.NewSet()
	un.FailNode(1)
	un.FailNode(2)
	if plane.OnFault(un) {
		t.Fatal("uncovered class flipped")
	}
	if plane.Recomputes() != 1 {
		t.Fatalf("recomputes = %d", plane.Recomputes())
	}

	// Covered class: flip once...
	cov := fault.NewSet()
	cov.FailNode(5)
	if !plane.OnFault(cov) {
		t.Fatal("covered class did not flip")
	}
	// ...then the consumed backup is never re-installed (its engine
	// instance is stateful); a second occurrence recomputes.
	if plane.OnFault(cov) {
		t.Fatal("consumed backup flipped twice")
	}
	if plane.Flips() != 1 || plane.Recomputes() != 2 {
		t.Fatalf("flips=%d recomputes=%d", plane.Flips(), plane.Recomputes())
	}
	pm := plane.Metrics()
	if pm.Flips != 1 || pm.Recomputes != 2 || pm.ConsumedClasses != 1 {
		t.Fatalf("metrics: %+v", pm)
	}
}

func TestPlaneWithServiceInstaller(t *testing.T) {
	m := topology.NewMesh(4, 4)
	art, b := buildNAFTABundle(t, m, []string{KindNode})
	svc, err := reconfig.NewService(art, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := NewPlane(b, m, PlaneOptions{
		Lanes:  svc.Shards(),
		Filter: func(c Class) bool { return len(c.Nodes) == 1 && c.Nodes[0] <= 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	plane.Bind(ForService(svc))

	before := svc.Epoch()
	f := fault.NewSet()
	f.FailNode(2)
	if !plane.OnFault(f) {
		t.Fatal("covered class did not flip into the service")
	}
	if svc.Epoch() != before+1 {
		t.Fatalf("epoch %d after flip, want %d", svc.Epoch(), before+1)
	}
	// Decisions at the failed node's neighbours must avoid node 2 now.
	var buf []routing.Candidate
	req := reconfig.DecisionRequest{Node: 1, InPort: routing.InjectionPort, InVC: 0, Src: 1, Dst: 3, Length: 4}
	cands, _, err := svc.Decide(&req, buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if m.Neighbor(1, c.Port) == 2 {
			t.Fatalf("decision still routes into failed node 2: %v", cands)
		}
	}
	// Uncovered fall-back recomputes on the service's live engines.
	un := fault.NewSet()
	un.FailNode(2)
	un.FailNode(9)
	if plane.OnFault(un) {
		t.Fatal("uncovered class flipped")
	}
	if plane.Recomputes() != 1 {
		t.Fatalf("recomputes = %d", plane.Recomputes())
	}
}

func TestPlaneUnboundPanics(t *testing.T) {
	m := topology.NewMesh(4, 4)
	_, b := buildNAFTABundle(t, m, []string{KindNode})
	plane, err := NewPlane(b, m, PlaneOptions{Filter: func(c Class) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OnFault before Bind did not panic")
		}
	}()
	plane.OnFault(fault.NewSet())
}

func TestBackupClassRoundTrip(t *testing.T) {
	c := Class{Kind: KindChain, Links: []topology.Link{
		topology.MakeLink(1, 5), topology.MakeLink(2, 6),
	}}
	bk := Backup{Kind: c.Kind, Links: [][2]int{{1, 5}, {2, 6}}}
	if got := bk.Class(); got.Key() != c.Key() {
		t.Fatalf("backup class key %s, want %s", got.Key(), c.Key())
	}
	if want := fmt.Sprintf("%s:%s", KindChain, c.Key()); c.String() != want {
		t.Fatalf("String = %q, want %q", c.String(), want)
	}
}
