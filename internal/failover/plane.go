package failover

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Installer abstracts the two engine hosts the plane can flip into:
// the simulator's epoch Swapper and routerd's sharded Service. Install
// receives one prebuilt engine per lane and the observed fault set;
// Recompute is the measured fall-back — run the live diagnosis
// fixpoint on the engines already serving.
type Installer interface {
	Install(engines []routing.Algorithm, f *fault.Set) error
	Recompute(f *fault.Set)
}

// swapperInstaller flips through reconfig.Swapper.SwapPrecomputed
// (one lane: the simulator decides single-threaded per network).
type swapperInstaller struct{ sw *reconfig.Swapper }

func (i swapperInstaller) Install(engines []routing.Algorithm, f *fault.Set) error {
	_, _, err := i.sw.SwapPrecomputed(engines[0], f)
	return err
}
func (i swapperInstaller) Recompute(f *fault.Set) { i.sw.UpdateFaults(f) }

// ForSwapper adapts an epoch swapper as a one-lane installer.
func ForSwapper(sw *reconfig.Swapper) Installer { return swapperInstaller{sw} }

// serviceInstaller flips through reconfig.Service.InstallEngines (one
// lane per shard).
type serviceInstaller struct{ svc *reconfig.Service }

func (i serviceInstaller) Install(engines []routing.Algorithm, f *fault.Set) error {
	_, err := i.svc.InstallEngines(engines)
	return err
}
func (i serviceInstaller) Recompute(f *fault.Set) { i.svc.UpdateFaults(f) }

// ForService adapts a decision service as a shards-lane installer.
func ForService(svc *reconfig.Service) Installer { return serviceInstaller{svc} }

// backup is one precompiled class: its engines (one per lane) carry
// the class's post-fault distributed state, applied eagerly at plane
// construction. Engines are stateful (per-decision scratch plus the
// fault Information Units), so an instance can be installed only once;
// used marks consumption — a second occurrence of the same class (the
// fault repaired and re-injected) takes the recompute path rather than
// re-installing an engine whose tables were invalidated on retirement.
type backup struct {
	class   Class
	set     *fault.Set
	engines []routing.Algorithm
	used    bool
}

// PlaneOptions tune plane construction.
type PlaneOptions struct {
	// Lanes is the number of engine instances built per class: 1 for a
	// Swapper host, Service.Shards() for a Service host. Defaults to 1.
	Lanes int
	// Filter, when set, keeps only classes it accepts — the campaign
	// uses it to precompile exactly the classes a scenario can hit.
	Filter func(Class) bool
}

// Plane is the runtime failover decision plane: fault classes mapped
// to engines precompiled at construction time. OnFault resolves an
// observed cumulative fault state by canonical key: a covered, unused
// class is installed with an atomic engine flip (no diagnosis fixpoint
// at fault time); anything else falls back to the live recompute the
// plane measures against. Both paths are timed into histograms so the
// flip-vs-recompute gap is observable, not assumed.
//
// Concurrency: OnFault serializes on the plane mutex. The simulator
// calls it from the network goroutine; routerd from HTTP handlers.
type Plane struct {
	bundle    *Bundle
	installer Installer

	mu      sync.Mutex
	classes map[string]*backup

	flips      atomic.Int64
	recomputes atomic.Int64

	// Latencies in microseconds: flips sit in the low-µs range (0.5µs
	// bins to 1ms), recomputes in the tens-of-µs-to-ms range (5µs bins
	// to 10ms).
	histMu     sync.Mutex
	flipHist   *metrics.Histogram
	recompHist *metrics.Histogram
}

// PlaneMetrics is the plane's observable state, embedded into
// routerd's /metrics document.
type PlaneMetrics struct {
	CoveredClasses  int     `json:"covered_classes"`
	ConsumedClasses int     `json:"consumed_classes"`
	Flips           int64   `json:"flips"`
	Recomputes      int64   `json:"recomputes"`
	FlipP50         float64 `json:"flip_us_p50"`
	FlipP99         float64 `json:"flip_us_p99"`
	FlipP999        float64 `json:"flip_us_p999"`
	RecomputeP50    float64 `json:"recompute_us_p50"`
	RecomputeP99    float64 `json:"recompute_us_p99"`
	RecomputeP999   float64 `json:"recompute_us_p999"`
}

// NewPlane precompiles the bundle's backup engines against topology g:
// one EngineBuilder per lane amortises program analysis and table
// deserialization across all classes, each engine gets its class's
// fault set applied (the diagnosis fixpoint runs HERE, at load time),
// and the finished engines wait in a map keyed by canonical fault key.
// Bind an installer before the first OnFault.
func NewPlane(b *Bundle, g topology.Graph, opts PlaneOptions) (*Plane, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	want, err := b.Graph()
	if err != nil {
		return nil, err
	}
	if g.Name() != want.Name() {
		return nil, fmt.Errorf("failover: bundle enumerated on %s, plane built on %s", want.Name(), g.Name())
	}
	lanes := opts.Lanes
	if lanes <= 0 {
		lanes = 1
	}
	// Shared builders for backups that inherit the primary's tables
	// (today: all of them); a backup shipping its own Bases gets
	// dedicated builders below.
	shared := make([]*reconfig.EngineBuilder, lanes)
	for lane := range shared {
		eb, err := reconfig.NewEngineBuilder(&b.Primary, g)
		if err != nil {
			return nil, err
		}
		shared[lane] = eb
	}
	p := &Plane{
		bundle:     b,
		classes:    make(map[string]*backup),
		flipHist:   metrics.NewHistogram(0.5, 2000),
		recompHist: metrics.NewHistogram(5, 2000),
	}
	for bi := range b.Backups {
		bk := &b.Backups[bi]
		class := bk.Class()
		set := class.Set()
		if opts.Filter != nil && !opts.Filter(class) {
			continue
		}
		key := class.Key()
		if _, dup := p.classes[key]; dup {
			continue
		}
		builders := shared
		if len(bk.Bases) > 0 {
			art := b.Primary
			art.Bases = bk.Bases
			builders = make([]*reconfig.EngineBuilder, lanes)
			for lane := range builders {
				eb, err := reconfig.NewEngineBuilder(&art, g)
				if err != nil {
					return nil, fmt.Errorf("failover: class %s: %w", class.String(), err)
				}
				builders[lane] = eb
			}
		}
		engines := make([]routing.Algorithm, lanes)
		for lane := range engines {
			eng, err := builders[lane].Build()
			if err != nil {
				return nil, fmt.Errorf("failover: class %s: %w", class.String(), err)
			}
			eng.UpdateFaults(set)
			engines[lane] = eng
		}
		p.classes[key] = &backup{class: class, set: set, engines: engines}
	}
	return p, nil
}

// Bind attaches the engine host the plane flips into.
func (p *Plane) Bind(inst Installer) { p.installer = inst }

// CoveredClasses returns the number of precompiled classes.
func (p *Plane) CoveredClasses() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.classes)
}

// Covered reports whether the cumulative fault set f has an unused
// precompiled backup.
func (p *Plane) Covered(f *fault.Set) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	bk := p.classes[KeyOf(f)]
	return bk != nil && !bk.used
}

// Classes returns the precompiled classes in unspecified order.
func (p *Plane) Classes() []Class {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Class, 0, len(p.classes))
	for _, bk := range p.classes {
		out = append(out, bk.class)
	}
	return out
}

// OnFault resolves the observed cumulative fault state f: a covered,
// unused class flips its precompiled engines in (return true); every
// other non-empty state runs the measured live recompute (return
// false). An empty set is forwarded to the recompute path but not
// counted — it is fault *clearing*, which no backup anticipates.
// This is the network.FaultHandler hook.
func (p *Plane) OnFault(f *fault.Set) bool {
	if p.installer == nil {
		panic("failover: plane used before Bind")
	}
	if f == nil || f.Empty() {
		p.installer.Recompute(f)
		return false
	}
	p.mu.Lock()
	bk := p.classes[KeyOf(f)]
	if bk != nil && !bk.used {
		bk.used = true
	} else {
		bk = nil
	}
	p.mu.Unlock()

	if bk != nil {
		start := time.Now()
		err := p.installer.Install(bk.engines, f)
		elapsed := time.Since(start)
		if err == nil {
			p.flips.Add(1)
			p.histMu.Lock()
			p.flipHist.Add(float64(elapsed) / float64(time.Microsecond))
			p.histMu.Unlock()
			return true
		}
		// The host refused the flip (regime gate); fall through to the
		// recompute path so the network still converges on f.
	}
	start := time.Now()
	p.installer.Recompute(f)
	elapsed := time.Since(start)
	p.recomputes.Add(1)
	p.histMu.Lock()
	p.recompHist.Add(float64(elapsed) / float64(time.Microsecond))
	p.histMu.Unlock()
	return false
}

// Flips returns the number of completed precompiled flips.
func (p *Plane) Flips() int64 { return p.flips.Load() }

// Recomputes returns the number of live-recompute fallbacks.
func (p *Plane) Recomputes() int64 { return p.recomputes.Load() }

// Metrics snapshots the plane counters and latency percentiles.
func (p *Plane) Metrics() PlaneMetrics {
	p.mu.Lock()
	covered := len(p.classes)
	consumed := 0
	for _, bk := range p.classes {
		if bk.used {
			consumed++
		}
	}
	p.mu.Unlock()
	p.histMu.Lock()
	defer p.histMu.Unlock()
	return PlaneMetrics{
		CoveredClasses:  covered,
		ConsumedClasses: consumed,
		Flips:           p.flips.Load(),
		Recomputes:      p.recomputes.Load(),
		FlipP50:         p.flipHist.Percentile(0.50),
		FlipP99:         p.flipHist.Percentile(0.99),
		FlipP999:        p.flipHist.Percentile(0.999),
		RecomputeP50:    p.recompHist.Percentile(0.50),
		RecomputeP99:    p.recompHist.Percentile(0.99),
		RecomputeP999:   p.recompHist.Percentile(0.999),
	}
}
