package failover

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

// BundleFormatVersion is the current bundle format revision.
const BundleFormatVersion = 1

// bundleMagic leads every encoded bundle. Same framing as artifacts
// (reconfig.WriteFrame/ReadFrame), distinct magic so loaders can sniff
// which format a file carries.
var bundleMagic = []byte("ARONBDL\x01")

// Backup is one per-class backup descriptor inside a bundle: the fault
// class in plain-data form plus, optionally, its own compiled decision
// tables. Empty Bases means the class shares the primary's table bytes
// — the rule compiler's ARON tables are fault-independent (fault state
// enters each decision through the input slots the dense compiler
// binds, see DESIGN.md), so today every backup inherits; the field
// exists so a future compiler that specialises tables per class ships
// them without a format change. The precompute value of a backup is
// realised at bundle-load time: the plane constructs the engine
// (core.CompileDense runs inside adapter construction) and applies the
// class's fault set to its diagnosis fixpoint, so nothing remains to
// compute when the fault is observed.
type Backup struct {
	Kind  string
	Nodes []int
	Links [][2]int
	Bases []reconfig.BaseTable
}

// Class returns the backup's fault class.
func (b *Backup) Class() Class {
	c := Class{Kind: b.Kind}
	for _, n := range b.Nodes {
		c.Nodes = append(c.Nodes, topology.NodeID(n))
	}
	for _, l := range b.Links {
		c.Links = append(c.Links, topology.MakeLink(topology.NodeID(l[0]), topology.NodeID(l[1])))
	}
	return c
}

// Bundle is a failover table bundle: the primary rule-table artifact
// plus the anticipated fault classes it carries backups for. The
// topology fields pin the enumeration target — a backup for node 37 of
// an 8x8 mesh is meaningless on a 6x6 — and loaders refuse a topology
// mismatch.
type Bundle struct {
	FormatVersion int
	// MeshW/MeshH (nafta, maze-on-mesh), TorusW/TorusH or
	// IrrNodes/IrrExtra/IrrSeed (maze), or the primary's CubeDim
	// (routec) name the topology the classes were enumerated on. The
	// maze fields are zero in pre-maze bundles, so their checksums are
	// unchanged (gob omits zero fields).
	MeshW, MeshH       int
	TorusW, TorusH     int
	IrrNodes, IrrExtra int
	IrrSeed            int64
	Primary            reconfig.Artifact
	Backups            []Backup

	// sum is the payload checksum, remembered by Encode/DecodeBundle.
	sum [sha256.Size]byte
}

// BuildBundle enumerates the classes of the given kinds on g and packs
// them with the primary artifact. Duplicate class keys collapse to the
// first kind that produced them (a length-1 chain is the same fault
// set as the single west-border link).
func BuildBundle(art *reconfig.Artifact, g topology.Graph, kinds []string) (*Bundle, error) {
	if err := art.Validate(); err != nil {
		return nil, err
	}
	b := &Bundle{FormatVersion: BundleFormatVersion, Primary: *art}
	switch t := g.(type) {
	case *topology.Mesh:
		if art.Algorithm != "nafta" {
			return nil, fmt.Errorf("failover: %s artifact cannot bundle mesh classes", art.Algorithm)
		}
		b.MeshW, b.MeshH = t.W, t.H
	case *topology.Hypercube:
		if art.Algorithm != "routec" {
			return nil, fmt.Errorf("failover: %s artifact cannot bundle hypercube classes", art.Algorithm)
		}
		if art.CubeDim != t.Dim {
			return nil, fmt.Errorf("failover: artifact compiled for a %d-cube, classes enumerated on a %d-cube", art.CubeDim, t.Dim)
		}
	default:
		return nil, fmt.Errorf("failover: unsupported bundle topology %T", g)
	}
	classes, err := Enumerate(g, kinds)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, c := range classes {
		key := c.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		bk := Backup{Kind: c.Kind}
		for _, n := range c.Nodes {
			bk.Nodes = append(bk.Nodes, int(n))
		}
		for _, l := range c.Links {
			bk.Links = append(bk.Links, [2]int{int(l.A), int(l.B)})
		}
		b.Backups = append(b.Backups, bk)
	}
	return b, nil
}

// Graph rebuilds the topology the bundle's classes were enumerated on.
func (b *Bundle) Graph() (topology.Graph, error) {
	switch b.Primary.Algorithm {
	case "nafta":
		if b.MeshW < 2 || b.MeshH < 2 {
			return nil, fmt.Errorf("failover: bundle names bad mesh %dx%d", b.MeshW, b.MeshH)
		}
		return topology.NewMesh(b.MeshW, b.MeshH), nil
	case "routec":
		if b.Primary.CubeDim < 1 || b.Primary.CubeDim > 20 {
			return nil, fmt.Errorf("failover: bundle names bad hypercube dimension %d", b.Primary.CubeDim)
		}
		return topology.NewHypercube(b.Primary.CubeDim), nil
	case "maze":
		switch {
		case b.TorusW >= 3 && b.TorusH >= 3:
			return topology.NewTorus(b.TorusW, b.TorusH), nil
		case b.IrrNodes > 0:
			return topology.RandomIrregular(b.IrrNodes, b.IrrExtra, b.IrrSeed)
		case b.MeshW >= 2 && b.MeshH >= 2:
			return topology.NewMesh(b.MeshW, b.MeshH), nil
		}
		return nil, fmt.Errorf("failover: maze bundle names no topology")
	}
	return nil, fmt.Errorf("failover: bundle names unknown algorithm %q", b.Primary.Algorithm)
}

// Validate performs the structural checks shared by every loader.
func (b *Bundle) Validate() error {
	if b.FormatVersion != BundleFormatVersion {
		return fmt.Errorf("failover: bundle format v%d, this build reads v%d", b.FormatVersion, BundleFormatVersion)
	}
	if err := b.Primary.Validate(); err != nil {
		return err
	}
	if _, err := b.Graph(); err != nil {
		return err
	}
	for i := range b.Backups {
		bk := &b.Backups[i]
		if !ValidKind(bk.Kind) {
			return fmt.Errorf("failover: backup %d has unknown kind %q (valid: %s)", i, bk.Kind, strings.Join(Kinds, ", "))
		}
		if len(bk.Nodes) == 0 && len(bk.Links) == 0 {
			return fmt.Errorf("failover: backup %d (%s) is empty", i, bk.Kind)
		}
	}
	return nil
}

// payload renders the gob payload the checksum covers.
func (b *Bundle) payload() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("failover: encoding bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// Encode writes the framed bundle (magic, length, gob payload,
// SHA-256), reusing the artifact framing under the bundle magic.
func (b *Bundle) Encode(w io.Writer) error {
	payload, err := b.payload()
	if err != nil {
		return err
	}
	b.sum, err = reconfig.WriteFrame(w, bundleMagic, payload)
	return err
}

// DecodeBundle reads a framed bundle, verifying magic, length and
// checksum.
func DecodeBundle(r io.Reader) (*Bundle, error) {
	payload, sum, err := reconfig.ReadFrame(r, bundleMagic, "bundle")
	if err != nil {
		return nil, err
	}
	b := &Bundle{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(b); err != nil {
		return nil, fmt.Errorf("failover: decoding bundle: %w", err)
	}
	if b.FormatVersion != BundleFormatVersion {
		return nil, fmt.Errorf("failover: bundle format v%d, this build reads v%d", b.FormatVersion, BundleFormatVersion)
	}
	b.sum = sum
	return b, nil
}

// IsBundle reports whether data begins with the bundle magic.
func IsBundle(data []byte) bool { return bytes.HasPrefix(data, bundleMagic) }

// DecodeAny decodes data as a bundle when it carries the bundle magic
// and as a bare artifact otherwise — the sniffing loaders (routerd's
// -artifact flag and /reload body) share.
func DecodeAny(data []byte) (*reconfig.Artifact, *Bundle, error) {
	if IsBundle(data) {
		b, err := DecodeBundle(bytes.NewReader(data))
		if err != nil {
			return nil, nil, err
		}
		return &b.Primary, b, nil
	}
	art, err := reconfig.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	return art, nil, nil
}

// LoadPath reads path and decodes it as a bundle or a bare artifact.
func LoadPath(path string) (*reconfig.Artifact, *Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return DecodeAny(data)
}

// Checksum returns the hex SHA-256 of the bundle payload (computing it
// if the bundle has not been encoded or decoded yet).
func (b *Bundle) Checksum() (string, error) {
	if b.sum == ([sha256.Size]byte{}) {
		payload, err := b.payload()
		if err != nil {
			return "", err
		}
		b.sum = sha256.Sum256(payload)
	}
	return hex.EncodeToString(b.sum[:]), nil
}

// Summary renders the human-readable bundle dump: the primary
// artifact's summary plus one row per class kind.
func (b *Bundle) Summary() (string, error) {
	prim, err := b.Primary.Summary()
	if err != nil {
		return "", err
	}
	sum, err := b.Checksum()
	if err != nil {
		return "", err
	}
	g, err := b.Graph()
	if err != nil {
		return "", err
	}
	var out bytes.Buffer
	out.WriteString(prim)
	fmt.Fprintf(&out, "bundle:   %d backup classes on %s\n", len(b.Backups), g.Name())
	fmt.Fprintf(&out, "checksum: sha256:%s\n", sum)
	counts := map[string]int{}
	for i := range b.Backups {
		counts[b.Backups[i].Kind]++
	}
	tb := metrics.NewTable("backup classes", "kind", "classes")
	for _, k := range Kinds {
		if counts[k] > 0 {
			tb.AddRow(k, counts[k])
		}
	}
	out.WriteString(tb.String())
	return out.String(), nil
}
