// Package failover is the precomputed-failover decision plane: backup
// decision engines are compiled per anticipated fault class when a
// table bundle is loaded, so that an observed fault becomes an atomic
// engine flip instead of a live diagnosis recompute — the BGP-PIC /
// hierarchical-FIB idea (backup next-hops precompiled behind shared
// indirection, failover is a pointer flip) grafted onto the paper's
// rule-table router.
//
// The package has three layers:
//
//   - fault classes (this file): an enumerator that, given a topology
//     and algorithm family, generates the anticipated classes — every
//     single-link fault, every single-node fault and, on the mesh, the
//     Figure-2 fault chains the campaign already generates. A class is
//     identified by the canonical key of its exact fault set;
//   - bundles (bundle.go): one checksummed file carrying the primary
//     rule-table artifact plus the per-class backup descriptors, framed
//     exactly like internal/reconfig artifacts but under a bundle
//     magic;
//   - the runtime Plane (plane.go): per-class engines precompiled at
//     bundle-load time, flipped in through reconfig.Swapper (in the
//     simulator) or reconfig.Service (in routerd), with a measured
//     live-recompute fall-back for uncovered classes.
package failover

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/topology"
)

// Class kinds accepted by Enumerate and `rulec -backups`.
const (
	KindLink  = "link"  // one failed link
	KindNode  = "node"  // one fail-stop node
	KindChain = "chain" // a Figure-2 fault chain (mesh only)
)

// Kinds lists the valid class kinds (for CLI validation).
var Kinds = []string{KindLink, KindNode, KindChain}

// ValidKind reports whether k names a class kind.
func ValidKind(k string) bool {
	for _, v := range Kinds {
		if k == v {
			return true
		}
	}
	return false
}

// Class is one anticipated fault class: a concrete fault set the plane
// precompiles a backup engine for. Coverage is exact-set: an observed
// cumulative fault state is covered when its canonical key equals the
// class key — a superset (the anticipated fault plus one more) is a
// different, typically uncovered, class and takes the recompute path.
type Class struct {
	Kind  string
	Nodes []topology.NodeID
	Links []topology.Link
}

// Set materialises the class as a fault set.
func (c *Class) Set() *fault.Set {
	f := fault.NewSet()
	for _, n := range c.Nodes {
		f.FailNode(n)
	}
	for _, l := range c.Links {
		f.FailLink(l.A, l.B)
	}
	return f
}

// Key returns the class's canonical key.
func (c *Class) Key() string { return KeyOf(c.Set()) }

// String renders the class for logs and summaries.
func (c *Class) String() string { return c.Kind + ":" + c.Key() }

// KeyOf renders the canonical key of a fault set: the sorted faulty
// nodes and the sorted faulty links, e.g. "n3,n7|l2-3,l7-8". Two sets
// with the same faults always produce the same key (FaultyNodes and
// FaultyLinks are sorted), so the key is the plane's coverage index.
func KeyOf(f *fault.Set) string {
	var b strings.Builder
	for i, n := range f.FaultyNodes() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "n%d", n)
	}
	b.WriteByte('|')
	for i, l := range f.FaultyLinks() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "l%d-%d", l.A, l.B)
	}
	return b.String()
}

// Enumerate generates the anticipated fault classes of the given kinds
// on topology g, in deterministic order (kinds in the caller's order,
// classes in canonical topology order). Chain classes require a mesh —
// they are the paper's Figure-2 patterns — and the hypercube family's
// guarantee regime only covers node faults, so asking for link or
// chain classes on a hypercube is an error rather than a silent empty
// set.
func Enumerate(g topology.Graph, kinds []string) ([]Class, error) {
	var out []Class
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			continue
		}
		seen[k] = true
		switch k {
		case KindLink:
			if _, ok := g.(*topology.Hypercube); ok {
				return nil, fmt.Errorf("failover: link classes are outside the hypercube family's guarantee regime (node faults only)")
			}
			for _, l := range sortedLinks(g) {
				out = append(out, Class{Kind: KindLink, Links: []topology.Link{l}})
			}
		case KindNode:
			for n := 0; n < g.Nodes(); n++ {
				out = append(out, Class{Kind: KindNode, Nodes: []topology.NodeID{topology.NodeID(n)}})
			}
		case KindChain:
			m, ok := g.(*topology.Mesh)
			if !ok {
				return nil, fmt.Errorf("failover: chain classes need a mesh topology, got %s", g.Name())
			}
			for y := 0; y+1 < m.H; y++ {
				for length := 1; length < m.W; length++ {
					f, err := fault.Chain(m, y, length)
					if err != nil {
						return nil, err
					}
					out = append(out, Class{Kind: KindChain, Links: f.FaultyLinks()})
				}
			}
		default:
			return nil, fmt.Errorf("failover: unknown class kind %q (valid: %s)", k, strings.Join(Kinds, ", "))
		}
	}
	return out, nil
}

// sortedLinks returns g's links in canonical ascending order (Links
// enumerates deterministically already, but the contract here is
// explicit: bundle contents must not depend on map iteration).
func sortedLinks(g topology.Graph) []topology.Link {
	links := topology.Links(g)
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return links
}
