// Package traffic provides synthetic workload generation for the
// network simulator: the classic spatial patterns used in wormhole
// routing evaluations (uniform random, transpose, bit complement, bit
// reversal, tornado, hot spot, nearest neighbour) and a Bernoulli
// injection process parameterised by offered load in flits per node
// and cycle.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/network"
	"repro/internal/topology"
)

// Pattern maps a source node to a destination node. Implementations
// may be randomised (drawing from rng) or deterministic permutations.
// A pattern may return the source itself; callers skip such pairs.
type Pattern interface {
	Name() string
	Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID
}

// Uniform sends each message to a destination drawn uniformly from all
// nodes.
type Uniform struct{ Nodes int }

func (u Uniform) Name() string { return "uniform" }
func (u Uniform) Dest(_ topology.NodeID, rng *rand.Rand) topology.NodeID {
	return topology.NodeID(rng.Intn(u.Nodes))
}

// Transpose sends (x,y) to (y,x) on a square mesh — an adversarial
// permutation for dimension-order routing.
type Transpose struct{ Mesh *topology.Mesh }

func (t Transpose) Name() string { return "transpose" }
func (t Transpose) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	x, y := t.Mesh.XY(src)
	if x >= t.Mesh.H || y >= t.Mesh.W {
		return src // non-square corner: keep local
	}
	return t.Mesh.Node(y, x)
}

// BitComplement sends node b to ^b (mod the node count, which must be
// a power of two).
type BitComplement struct{ Nodes int }

func (BitComplement) Name() string { return "bitcomplement" }
func (b BitComplement) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	return topology.NodeID((^int(src)) & (b.Nodes - 1))
}

// BitReverse sends node b to the bit-reversal of its address (node
// count must be a power of two).
type BitReverse struct{ Bits int }

func (BitReverse) Name() string { return "bitreverse" }
func (b BitReverse) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	r := bits.Reverse32(uint32(src)) >> (32 - b.Bits)
	return topology.NodeID(r)
}

// Tornado sends (x,y) to (x + W/2 - 1 mod W, y) on a mesh/torus row —
// the classic load-imbalance pattern.
type Tornado struct{ Mesh *topology.Mesh }

func (Tornado) Name() string { return "tornado" }
func (t Tornado) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	x, y := t.Mesh.XY(src)
	return t.Mesh.Node((x+t.Mesh.W/2-1)%t.Mesh.W, y)
}

// Hotspot sends a fraction of traffic to dedicated hot nodes and the
// rest uniformly.
type Hotspot struct {
	Nodes    int
	Hot      []topology.NodeID
	Fraction float64 // probability of choosing a hot node
}

func (Hotspot) Name() string { return "hotspot" }
func (h Hotspot) Dest(_ topology.NodeID, rng *rand.Rand) topology.NodeID {
	if len(h.Hot) > 0 && rng.Float64() < h.Fraction {
		return h.Hot[rng.Intn(len(h.Hot))]
	}
	return topology.NodeID(rng.Intn(h.Nodes))
}

// Neighbor sends each message to a random direct neighbour (locality
// pattern).
type Neighbor struct{ Graph topology.Graph }

func (Neighbor) Name() string { return "neighbor" }
func (n Neighbor) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	ports := n.Graph.Ports()
	for try := 0; try < 2*ports; try++ {
		m := n.Graph.Neighbor(src, rng.Intn(ports))
		if m != topology.Invalid {
			return m
		}
	}
	return src
}

// Generator drives Bernoulli message injection into a Network.
type Generator struct {
	Graph   topology.Graph
	Pattern Pattern
	// Rate is the offered load in flits per node per cycle; the
	// per-cycle message probability per node is Rate/Length.
	Rate float64
	// Length is the message length in flits (>= 2).
	Length int
	// Rng drives the Bernoulli process (required, for determinism).
	Rng *rand.Rand
	// Exclude, when non-nil, suppresses sources and destinations for
	// which it returns true (faulty or deactivated nodes, assumption
	// iii of the fault model).
	Exclude func(topology.NodeID) bool

	// Offered counts messages handed to the network.
	Offered int64
}

// Validate checks the generator configuration.
func (g *Generator) Validate() error {
	if g.Graph == nil || g.Pattern == nil || g.Rng == nil {
		return fmt.Errorf("traffic: Generator needs Graph, Pattern and Rng")
	}
	if g.Length < 2 {
		return fmt.Errorf("traffic: message length %d < 2", g.Length)
	}
	if g.Rate < 0 || g.Rate > float64(g.Graph.Ports()) {
		return fmt.Errorf("traffic: rate %f out of range", g.Rate)
	}
	return nil
}

// Tick injects this cycle's messages into net. Call once per
// simulation cycle before net.Step().
func (g *Generator) Tick(net *network.Network) {
	p := g.Rate / float64(g.Length)
	for s := 0; s < g.Graph.Nodes(); s++ {
		src := topology.NodeID(s)
		if g.Exclude != nil && g.Exclude(src) {
			continue
		}
		if g.Rng.Float64() >= p {
			continue
		}
		dst := g.Pattern.Dest(src, g.Rng)
		if dst == src {
			continue
		}
		if g.Exclude != nil && g.Exclude(dst) {
			continue
		}
		net.Inject(src, dst, g.Length)
		g.Offered++
	}
}

// LengthDist draws message lengths (flits). Implementations must be
// deterministic given the rng.
type LengthDist interface {
	Name() string
	Draw(rng *rand.Rand) int
}

// FixedLength always returns L.
type FixedLength struct{ L int }

func (f FixedLength) Name() string        { return fmt.Sprintf("fixed%d", f.L) }
func (f FixedLength) Draw(*rand.Rand) int { return f.L }

// Bimodal mixes short control messages and long data messages — the
// classic multicomputer workload shape (the paper's Section 2.1 notes
// header reinjection is cheap "for a few messages" but impractical
// "for very long messages").
type Bimodal struct {
	Short, Long int
	// LongFraction is the probability of drawing Long.
	LongFraction float64
}

func (b Bimodal) Name() string { return fmt.Sprintf("bimodal%d/%d", b.Short, b.Long) }
func (b Bimodal) Draw(rng *rand.Rand) int {
	if rng.Float64() < b.LongFraction {
		return b.Long
	}
	return b.Short
}

// UniformLength draws uniformly from [Lo, Hi].
type UniformLength struct{ Lo, Hi int }

func (u UniformLength) Name() string { return fmt.Sprintf("ulen%d-%d", u.Lo, u.Hi) }
func (u UniformLength) Draw(rng *rand.Rand) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Intn(u.Hi-u.Lo+1)
}

// BurstyGenerator wraps message injection in an on/off (two-state
// Markov) process per node: during ON periods the node injects at the
// configured rate, during OFF periods it is silent. Mean load equals
// Rate * OnFraction.
type BurstyGenerator struct {
	Graph   topology.Graph
	Pattern Pattern
	// Rate is the offered load during ON periods (flits/node/cycle).
	Rate float64
	// Lengths draws the message length (falls back to 8 if nil).
	Lengths LengthDist
	Rng     *rand.Rand
	Exclude func(topology.NodeID) bool
	// MeanOn/MeanOff are the expected period lengths in cycles.
	MeanOn, MeanOff float64

	on      []bool
	Offered int64
}

// Validate checks the configuration.
func (g *BurstyGenerator) Validate() error {
	if g.Graph == nil || g.Pattern == nil || g.Rng == nil {
		return fmt.Errorf("traffic: BurstyGenerator needs Graph, Pattern and Rng")
	}
	if g.MeanOn < 1 || g.MeanOff < 1 {
		return fmt.Errorf("traffic: burst periods must be >= 1 cycle")
	}
	if g.Rate < 0 || g.Rate > float64(g.Graph.Ports()) {
		return fmt.Errorf("traffic: rate %f out of range", g.Rate)
	}
	return nil
}

// Tick injects this cycle's messages.
func (g *BurstyGenerator) Tick(net *network.Network) {
	if g.on == nil {
		g.on = make([]bool, g.Graph.Nodes())
		for i := range g.on {
			g.on[i] = g.Rng.Float64() < g.MeanOn/(g.MeanOn+g.MeanOff)
		}
	}
	lengths := g.Lengths
	if lengths == nil {
		lengths = FixedLength{L: 8}
	}
	for s := 0; s < g.Graph.Nodes(); s++ {
		src := topology.NodeID(s)
		// Geometric state transitions give the configured mean period
		// lengths.
		if g.on[s] {
			if g.Rng.Float64() < 1/g.MeanOn {
				g.on[s] = false
			}
		} else if g.Rng.Float64() < 1/g.MeanOff {
			g.on[s] = true
		}
		if !g.on[s] {
			continue
		}
		if g.Exclude != nil && g.Exclude(src) {
			continue
		}
		length := lengths.Draw(g.Rng)
		if g.Rng.Float64() >= g.Rate/float64(length) {
			continue
		}
		dst := g.Pattern.Dest(src, g.Rng)
		if dst == src {
			continue
		}
		if g.Exclude != nil && g.Exclude(dst) {
			continue
		}
		net.Inject(src, dst, length)
		g.Offered++
	}
}
