package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestPatterns(t *testing.T) {
	m := topology.NewMesh(4, 4)
	rng := rand.New(rand.NewSource(1))

	tr := Transpose{Mesh: m}
	if got := tr.Dest(m.Node(1, 3), rng); got != m.Node(3, 1) {
		t.Fatalf("transpose(1,3) = %d, want (3,1)", got)
	}

	bc := BitComplement{Nodes: 16}
	if got := bc.Dest(0b0101, rng); got != 0b1010 {
		t.Fatalf("bitcomplement(0101) = %04b", got)
	}

	br := BitReverse{Bits: 4}
	if got := br.Dest(0b0001, rng); got != 0b1000 {
		t.Fatalf("bitreverse(0001) = %04b", got)
	}
	if got := br.Dest(0b1010, rng); got != 0b0101 {
		t.Fatalf("bitreverse(1010) = %04b", got)
	}

	to := Tornado{Mesh: m}
	if got := to.Dest(m.Node(0, 2), rng); got != m.Node(1, 2) {
		t.Fatalf("tornado(0,2) = %d, want (1,2)", got)
	}

	u := Uniform{Nodes: 16}
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 200; i++ {
		d := u.Dest(0, rng)
		if d < 0 || d > 15 {
			t.Fatalf("uniform out of range: %d", d)
		}
		seen[d] = true
	}
	if len(seen) < 12 {
		t.Fatalf("uniform covered only %d destinations", len(seen))
	}

	hs := Hotspot{Nodes: 16, Hot: []topology.NodeID{5}, Fraction: 1.0}
	for i := 0; i < 10; i++ {
		if hs.Dest(0, rng) != 5 {
			t.Fatal("hotspot with fraction 1 must hit the hot node")
		}
	}

	nb := Neighbor{Graph: m}
	for i := 0; i < 50; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		d := nb.Dest(src, rng)
		if d != src && m.Dist(src, d) != 1 {
			t.Fatalf("neighbor pattern gave non-neighbor %d->%d", src, d)
		}
	}
}

func TestGeneratorValidate(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := &Generator{}
	if err := g.Validate(); err == nil {
		t.Fatal("empty generator should fail validation")
	}
	g = &Generator{Graph: m, Pattern: Uniform{Nodes: 16}, Rng: rand.New(rand.NewSource(1)), Length: 1}
	if err := g.Validate(); err == nil {
		t.Fatal("length 1 should fail")
	}
	g.Length = 4
	g.Rate = 100
	if err := g.Validate(); err == nil {
		t.Fatal("absurd rate should fail")
	}
	g.Rate = 0.2
	if err := g.Validate(); err != nil {
		t.Fatalf("valid generator rejected: %v", err)
	}
}

func TestGeneratorRate(t *testing.T) {
	m := topology.NewMesh(4, 4)
	net := network.New(network.Config{Graph: m, Algorithm: routing.NewNARA(m)})
	g := &Generator{
		Graph:   m,
		Pattern: Uniform{Nodes: m.Nodes()},
		Rate:    0.32, // msg prob 0.32/8 = 0.04 per node per cycle
		Length:  8,
		Rng:     rand.New(rand.NewSource(11)),
	}
	cycles := 3000
	for i := 0; i < cycles; i++ {
		g.Tick(net)
		net.Step()
	}
	// Expected offered messages ~ nodes*cycles*0.04 (minus self-pairs,
	// 1/16 of draws). Allow 15% tolerance.
	expect := float64(m.Nodes()*cycles) * 0.04 * (15.0 / 16.0)
	got := float64(g.Offered)
	if got < 0.85*expect || got > 1.15*expect {
		t.Fatalf("offered %v, expected about %v", got, expect)
	}
}

func TestGeneratorExclude(t *testing.T) {
	m := topology.NewMesh(4, 4)
	net := network.New(network.Config{Graph: m, Algorithm: routing.NewNARA(m)})
	banned := m.Node(1, 1)
	g := &Generator{
		Graph:   m,
		Pattern: Uniform{Nodes: m.Nodes()},
		Rate:    1.0,
		Length:  2,
		Rng:     rand.New(rand.NewSource(5)),
		Exclude: func(n topology.NodeID) bool { return n == banned },
	}
	for i := 0; i < 200; i++ {
		g.Tick(net)
		net.Step()
	}
	net.Drain(10000)
	for _, msg := range net.Messages {
		_ = msg
	}
	// Check via recorded stats: no message may involve the banned
	// node. RecordMessages was off, so re-run with recording.
	net2 := network.New(network.Config{Graph: m, Algorithm: routing.NewNARA(m), RecordMessages: true})
	g.Rng = rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		g.Tick(net2)
		net2.Step()
	}
	for _, msg := range net2.Messages {
		if msg.Hdr.Src == banned || msg.Hdr.Dst == banned {
			t.Fatalf("excluded node involved in %d->%d", msg.Hdr.Src, msg.Hdr.Dst)
		}
	}
}

func TestLengthDists(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if (FixedLength{L: 9}).Draw(rng) != 9 {
		t.Fatal("fixed length wrong")
	}
	b := Bimodal{Short: 4, Long: 64, LongFraction: 0.25}
	longs := 0
	for i := 0; i < 4000; i++ {
		switch v := b.Draw(rng); v {
		case 64:
			longs++
		case 4:
		default:
			t.Fatalf("bimodal drew %d", v)
		}
	}
	if longs < 800 || longs > 1200 {
		t.Fatalf("long fraction off: %d/4000", longs)
	}
	u := UniformLength{Lo: 3, Hi: 7}
	for i := 0; i < 200; i++ {
		if v := u.Draw(rng); v < 3 || v > 7 {
			t.Fatalf("uniform length out of range: %d", v)
		}
	}
}

func TestBurstyGenerator(t *testing.T) {
	m := topology.NewMesh(6, 6)
	net := network.New(network.Config{Graph: m, Algorithm: routing.NewNARA(m)})
	g := &BurstyGenerator{
		Graph:   m,
		Pattern: Uniform{Nodes: m.Nodes()},
		Rate:    0.4,
		Lengths: Bimodal{Short: 4, Long: 32, LongFraction: 0.1},
		Rng:     rand.New(rand.NewSource(6)),
		MeanOn:  50,
		MeanOff: 150,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cycles := 4000
	for i := 0; i < cycles; i++ {
		g.Tick(net)
		net.Step()
	}
	// Per ON node and cycle the acceptance probability is Rate/L with
	// L drawn first, so E[msgs] = Rate * E[1/L] = 0.4 * (0.9/4 +
	// 0.1/32) = 0.09125; scaled by the 0.25 ON fraction.
	expect := float64(m.Nodes()*cycles) * 0.25 * 0.4 * (0.9/4.0 + 0.1/32.0)
	got := float64(g.Offered)
	if got < 0.75*expect || got > 1.25*expect {
		t.Fatalf("offered %v, expected about %v", got, expect)
	}
	if !net.Drain(100000) {
		t.Fatal("drain failed")
	}
	if net.Stats().Dropped != 0 {
		t.Fatal("fault-free bursty run should deliver everything")
	}
}

func TestBurstyValidate(t *testing.T) {
	if err := (&BurstyGenerator{}).Validate(); err == nil {
		t.Fatal("empty config should fail")
	}
	m := topology.NewMesh(3, 3)
	bad := &BurstyGenerator{Graph: m, Pattern: Uniform{Nodes: 9},
		Rng: rand.New(rand.NewSource(1)), MeanOn: 0.5, MeanOff: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("sub-cycle burst period should fail")
	}
}
