package rules

import (
	"fmt"
	"strings"
)

// ProgramString renders an entire program back to concrete syntax. The
// output re-parses to an equivalent program (round-trip property,
// checked by tests), which makes the printer usable for emitting
// transformed programs (core.Optimize) as source again.
func ProgramString(p *Program) string {
	var b strings.Builder
	for _, d := range p.Consts {
		if d.Symbols != nil {
			fmt.Fprintf(&b, "CONSTANT %s = {%s}\n", d.Name, strings.Join(d.Symbols, ", "))
		} else {
			fmt.Fprintf(&b, "CONSTANT %s = %s\n", d.Name, ExprString(d.Value))
		}
	}
	for _, d := range p.Vars {
		fmt.Fprintf(&b, "VARIABLE %s%s IN %s\n", d.Name, indexString(d.Index), domainString(d.Domain))
	}
	for _, d := range p.Inputs {
		fmt.Fprintf(&b, "INPUT %s%s IN %s\n", d.Name, indexString(d.Index), domainString(d.Domain))
	}
	for _, rb := range p.Subbases {
		writeBase(&b, rb, "SUBBASE")
	}
	for _, rb := range p.RuleBases {
		writeBase(&b, rb, "ON")
	}
	return b.String()
}

func indexString(idx []*DomainExpr) string {
	if len(idx) == 0 {
		return ""
	}
	parts := make([]string, len(idx))
	for i, d := range idx {
		parts[i] = domainString(d)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

func writeBase(b *strings.Builder, rb *RuleBase, kw string) {
	params := make([]string, len(rb.Params))
	for i, p := range rb.Params {
		params[i] = fmt.Sprintf("%s IN %s", p.Name, domainString(p.Domain))
	}
	fmt.Fprintf(b, "%s %s(%s)\n", kw, rb.Event, strings.Join(params, ", "))
	for _, r := range rb.Rules {
		fmt.Fprintf(b, "  IF %s THEN\n", ExprString(r.Premise))
		cmds := make([]string, len(r.Cmds))
		for i, c := range r.Cmds {
			cmds[i] = "     " + CmdString(c)
		}
		fmt.Fprintf(b, "%s;\n", strings.Join(cmds, ",\n"))
	}
	fmt.Fprintf(b, "END %s;\n", rb.Event)
}

// CmdString renders one conclusion command.
func CmdString(c Cmd) string {
	switch n := c.(type) {
	case *Assign:
		lhs := n.Name
		if len(n.Idx) > 0 {
			parts := make([]string, len(n.Idx))
			for i, ix := range n.Idx {
				parts[i] = ExprString(ix)
			}
			lhs += "(" + strings.Join(parts, ", ") + ")"
		}
		return fmt.Sprintf("%s <- %s", lhs, ExprString(n.Rhs))
	case *Return:
		return fmt.Sprintf("RETURN(%s)", ExprString(n.Val))
	case *Emit:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("!%s(%s)", n.Event, strings.Join(args, ", "))
	case *ForAllCmd:
		return fmt.Sprintf("FORALL %s IN %s: %s", n.Var, domainString(n.Domain), CmdString(n.Body))
	}
	return fmt.Sprintf("<%T>", c)
}
