package rules

import (
	"fmt"
	"strings"
	"testing"
)

// mapEnv is a simple test environment.
type mapEnv struct {
	vars   map[string]Value
	inputs map[string]Value
}

func key(name string, idx []int64) string {
	if len(idx) == 0 {
		return name
	}
	parts := make([]string, len(idx)+1)
	parts[0] = name
	for i, v := range idx {
		parts[i+1] = fmt.Sprint(v)
	}
	return strings.Join(parts, "/")
}

func (m *mapEnv) ReadVar(name string, idx []int64) (Value, error) {
	v, ok := m.vars[key(name, idx)]
	if !ok {
		return Value{}, fmt.Errorf("unset var %s", key(name, idx))
	}
	return v, nil
}

func (m *mapEnv) ReadInput(name string, idx []int64) (Value, error) {
	v, ok := m.inputs[key(name, idx)]
	if !ok {
		return Value{}, fmt.Errorf("unset input %s", key(name, idx))
	}
	return v, nil
}

// figure4 is the paper's Figure 4 excerpt (ROUTE_C state update),
// transcribed into the concrete syntax of this implementation.
const figure4 = `
-- it is assumed that the event update_state occurs
-- if a neighbouring node fails, or the neighbour's
-- state changes, or a link to it

CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT dirs = 4

VARIABLE number_unsafe IN 0 TO dirs
VARIABLE number_faulty IN 0 TO dirs
VARIABLE state IN fault_states
VARIABLE neighb_state (dirs) IN fault_states

INPUT new_state (dirs) IN fault_states

ON update_state(dir IN 0 TO 3)
  -- the first neighbour gets faulty, just note it
  IF new_state(dir) IN {faulty, lfault} AND number_faulty = 0 THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     number_unsafe <- number_unsafe + 1;
  -- now too many neighbours are unsafe, change state and propagate
  IF new_state(dir) IN {sunsafe, ounsafe} AND state = safe AND number_unsafe = 2 THEN
     state <- ounsafe,
     number_unsafe <- number_unsafe + 1,
     FORALL i IN 0 TO 3: !send_newmessage(i, ounsafe),
     neighb_state(dir) <- new_state(dir);
END update_state;
`

func analyzeSrc(t *testing.T, src string) *Checked {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return c
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("IF x<-3 <= y -- comment\nTHEN")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKeyword, TokIdent, TokAssign, TokNumber, TokLe, TokIdent, TokKeyword, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexError(t *testing.T) {
	if _, err := Lex("a ? b"); err == nil {
		t.Fatal("expected lex error for '?'")
	}
}

func TestParseFigure4(t *testing.T) {
	prog, err := Parse(figure4)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 2 || len(prog.Vars) != 4 || len(prog.Inputs) != 1 {
		t.Fatalf("decl counts wrong: %d consts, %d vars, %d inputs",
			len(prog.Consts), len(prog.Vars), len(prog.Inputs))
	}
	rb := prog.RuleBaseByName("update_state")
	if rb == nil || len(rb.Rules) != 2 || len(rb.Params) != 1 {
		t.Fatalf("rule base wrong: %+v", rb)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"CONSTANT",
		"CONSTANT x =",
		"VARIABLE v IN",
		"ON foo() IF x THEN RETURN(1); END bar;",
		"ON foo() IF THEN RETURN(1); END foo;",
		"ON foo() IF 1=1 THEN; END foo;",
		"garbage",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestAnalyzeFigure4(t *testing.T) {
	c := analyzeSrc(t, figure4)
	st := c.Signals["state"]
	if st == nil || st.Domain.Kind != TSym || st.Domain.SetName != "fault_states" {
		t.Fatalf("state signal wrong: %+v", st)
	}
	if got := st.Bits(); got != 3 {
		t.Fatalf("state bits = %d, want 3 (5 symbols)", got)
	}
	ns := c.Signals["neighb_state"]
	if ns.Slots() != 4 || ns.Bits() != 12 {
		t.Fatalf("neighb_state slots=%d bits=%d", ns.Slots(), ns.Bits())
	}
	nu := c.Signals["number_unsafe"]
	if nu.Domain.Lo != 0 || nu.Domain.Hi != 4 || nu.Bits() != 3 {
		t.Fatalf("number_unsafe domain wrong: %+v (bits %d)", nu.Domain, nu.Bits())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []string{
		// premise not boolean
		"ON f() IF 1+1 THEN RETURN(1); END f;",
		// unknown identifier
		"ON f() IF x = 1 THEN RETURN(1); END f;",
		// assignment to input
		"INPUT i IN 0 TO 3\nON f() IF 1=1 THEN i <- 2; END f;",
		// wrong index count
		"VARIABLE v (4) IN 0 TO 3\nON f() IF 1=1 THEN v <- 2; END f;",
		// incompatible comparison
		"CONSTANT s = {a, b}\nVARIABLE v IN s\nON f() IF v = 3 THEN v <- a; END f;",
		// duplicate rule base
		"ON f() IF 1=1 THEN RETURN(1); END f;\nON f() IF 1=1 THEN RETURN(1); END f;",
		// event arg count mismatch
		"ON g(x IN 0 TO 1) IF 1=1 THEN RETURN(x); END g;\nON f() IF 1=1 THEN !g(); END f;",
		// inconsistent RETURN types
		"CONSTANT s = {a, b}\nON f(x IN 0 TO 1) IF x=0 THEN RETURN(1); IF x=1 THEN RETURN(a); END f;",
	}
	for _, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("parse error for %q: %v", src, err)
			continue
		}
		if _, err := Analyze(prog); err == nil {
			t.Errorf("no analyze error for %q", src)
		}
	}
}

func TestInvokeFigure4FirstRule(t *testing.T) {
	c := analyzeSrc(t, figure4)
	fs := c.SymbolSets["fault_states"]
	sym := func(name string) Value {
		v, ok := c.Symbols[name]
		if !ok {
			t.Fatalf("missing symbol %s", name)
		}
		return v
	}
	env := &mapEnv{
		vars: map[string]Value{
			"number_unsafe": {T: IntType(0, 4), I: 0},
			"number_faulty": {T: IntType(0, 4), I: 0},
			"state":         sym("safe"),
		},
		inputs: map[string]Value{
			"new_state/2": sym("faulty"),
		},
	}
	idx, eff, err := c.Invoke("update_state", []Value{IntVal(2)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("rule %d fired, want 0", idx)
	}
	if len(eff.Writes) != 3 {
		t.Fatalf("writes: %+v", eff.Writes)
	}
	// neighb_state(2) <- faulty; counters incremented.
	var sawNeighb, sawFaulty, sawUnsafe bool
	for _, w := range eff.Writes {
		switch w.Name {
		case "neighb_state":
			if len(w.Idx) != 1 || w.Idx[0] != 2 || !w.Val.Equal(sym("faulty")) {
				t.Fatalf("neighb_state write wrong: %+v", w)
			}
			sawNeighb = true
		case "number_faulty":
			if w.Val.I != 1 {
				t.Fatalf("number_faulty = %d", w.Val.I)
			}
			sawFaulty = true
		case "number_unsafe":
			if w.Val.I != 1 {
				t.Fatalf("number_unsafe = %d", w.Val.I)
			}
			sawUnsafe = true
		}
	}
	if !sawNeighb || !sawFaulty || !sawUnsafe {
		t.Fatal("missing writes")
	}
	_ = fs
}

func TestInvokeFigure4SecondRuleEmitsWave(t *testing.T) {
	c := analyzeSrc(t, figure4)
	sym := func(name string) Value { return c.Symbols[name] }
	env := &mapEnv{
		vars: map[string]Value{
			"number_unsafe": {T: IntType(0, 4), I: 2},
			"number_faulty": {T: IntType(0, 4), I: 1},
			"state":         sym("safe"),
		},
		inputs: map[string]Value{
			"new_state/1": sym("ounsafe"),
		},
	}
	idx, eff, err := c.Invoke("update_state", []Value{IntVal(1)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("rule %d fired, want 1", idx)
	}
	// FORALL i IN 0 TO 3 generates four send_newmessage events.
	if len(eff.Events) != 4 {
		t.Fatalf("events: %+v", eff.Events)
	}
	for i, ev := range eff.Events {
		if ev.Name != "send_newmessage" || ev.Args[0].I != int64(i) || !ev.Args[1].Equal(sym("ounsafe")) {
			t.Fatalf("event %d wrong: %+v", i, ev)
		}
	}
}

func TestInvokeNoRuleApplies(t *testing.T) {
	c := analyzeSrc(t, figure4)
	sym := func(name string) Value { return c.Symbols[name] }
	env := &mapEnv{
		vars: map[string]Value{
			"number_unsafe": {T: IntType(0, 4), I: 0},
			"number_faulty": {T: IntType(0, 4), I: 1}, // first rule premise fails
			"state":         sym("safe"),
		},
		inputs: map[string]Value{
			"new_state/0": sym("safe"),
		},
	}
	idx, eff, err := c.Invoke("update_state", []Value{IntVal(0)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != -1 || len(eff.Writes) != 0 {
		t.Fatalf("expected no rule, got %d (%+v)", idx, eff)
	}
}

func TestQuantifiersAndBuiltins(t *testing.T) {
	src := `
INPUT queue (4) IN 0 TO 7
ON pick()
  IF EXISTS i IN 0 TO 3: (queue(i) = 0 AND
      (FORALL j IN 0 TO 3: queue(i) <= queue(j))) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END pick;

ON arith(a IN 0 TO 7, b IN 0 TO 7)
  IF MIN(a,b) = 2 AND MAX(a,b) = 5 AND ABS(a-b) = 3 AND DIST(a,b) = 3 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END arith;
`
	c := analyzeSrc(t, src)
	env := &mapEnv{inputs: map[string]Value{
		"queue/0": IntVal(3), "queue/1": IntVal(0), "queue/2": IntVal(5), "queue/3": IntVal(1),
	}}
	idx, eff, err := c.Invoke("pick", nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || eff.Return == nil || eff.Return.I != 1 {
		t.Fatalf("pick: idx=%d eff=%+v", idx, eff)
	}
	// No zero queue: second rule fires.
	env.inputs["queue/1"] = IntVal(2)
	idx, eff, err = c.Invoke("pick", nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || eff.Return.I != 0 {
		t.Fatalf("pick fallback: idx=%d", idx)
	}
	idx, _, err = c.Invoke("arith", []Value{IntVal(5), IntVal(2)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("arith: rule %d", idx)
	}
}

func TestSetOperationsAndMeet(t *testing.T) {
	src := `
CONSTANT states = {good, soso, bad}
VARIABLE s IN states
VARIABLE pool IN 0 TO 7
ON combine(x IN states)
  IF MEET(s, x) = bad THEN RETURN(2);
  IF MEET(s, x) = soso THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END combine;

ON setops(k IN 0 TO 5)
  IF k IN {1, 3} + {5} THEN RETURN(1);
  IF k IN {0, 1, 2, 3, 4, 5} - {0, 2, 4} THEN RETURN(2);
  IF 1 = 1 THEN RETURN(0);
END setops;
`
	c := analyzeSrc(t, src)
	env := &mapEnv{vars: map[string]Value{"s": c.Symbols["soso"], "pool": IntVal(0)}}
	idx, _, err := c.Invoke("combine", []Value{c.Symbols["good"]}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("MEET(soso,good) should be soso (rule 1), got rule %d", idx)
	}
	idx, _, err = c.Invoke("combine", []Value{c.Symbols["bad"]}, env)
	if err != nil || idx != 0 {
		t.Fatalf("MEET(soso,bad) should be bad: %d %v", idx, err)
	}
	// {1,3}+{5} = {1,3,5}; {0..5}-{0,2,4} = {1,3,5}: odd k hits rule
	// 0 (union), even k falls through both memberships to rule 2.
	cases := map[int64]int{1: 0, 3: 0, 5: 0, 0: 2, 2: 2, 4: 2}
	for k, wantRule := range cases {
		idx, _, err := c.Invoke("setops", []Value{IntVal(k)}, env)
		if err != nil {
			t.Fatal(err)
		}
		if idx != wantRule {
			t.Fatalf("setops(%d): rule %d, want %d", k, idx, wantRule)
		}
	}
}

func TestAssignClampsToDomain(t *testing.T) {
	src := `
VARIABLE ctr IN 0 TO 3
ON bump()
  IF 1 = 1 THEN ctr <- ctr + 1;
END bump;
`
	c := analyzeSrc(t, src)
	env := &mapEnv{vars: map[string]Value{"ctr": {T: IntType(0, 3), I: 3}}}
	_, eff, err := c.Invoke("bump", nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Writes[0].Val.I != 3 {
		t.Fatalf("saturating counter should clamp at 3, got %d", eff.Writes[0].Val.I)
	}
}

func TestParallelConclusionSemantics(t *testing.T) {
	// Both writes must read the pre-state: after firing, x and y are
	// swapped.
	src := `
VARIABLE x IN 0 TO 7
VARIABLE y IN 0 TO 7
ON swap()
  IF 1 = 1 THEN x <- y, y <- x;
END swap;
`
	c := analyzeSrc(t, src)
	env := &mapEnv{vars: map[string]Value{"x": IntVal(1), "y": IntVal(2)}}
	_, eff, err := c.Invoke("swap", nil, env)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, w := range eff.Writes {
		got[w.Name] = w.Val.I
	}
	if got["x"] != 2 || got["y"] != 1 {
		t.Fatalf("parallel swap failed: %+v", got)
	}
}

func TestTypeBits(t *testing.T) {
	if IntType(0, 4).Bits() != 3 || IntType(0, 1).Bits() != 1 || IntType(0, 0).Bits() != 1 {
		t.Fatal("int bits wrong")
	}
	sym := &Type{Kind: TSym, SetName: "s", Symbols: []string{"a", "b", "c", "d", "e"}}
	if sym.Bits() != 3 || sym.DomainSize() != 5 {
		t.Fatal("symbol bits wrong")
	}
}
