package rules

import (
	"fmt"
	"math/bits"
)

// TypeKind enumerates the finite data types of the language (the
// paper: "the available data types [are] integers within finite
// ranges, discrete symbols, ... and subsets of these").
type TypeKind int

const (
	// TInt is an integer within a finite range [Lo, Hi].
	TInt TypeKind = iota
	// TSym is an element of a named, ordered symbol set.
	TSym
	// TBool is the premise type.
	TBool
	// TSet is a subset of a symbol set or small integer range.
	TSet
)

// Type describes a finite value domain.
type Type struct {
	Kind    TypeKind
	Lo, Hi  int64    // TInt bounds (inclusive)
	SetName string   // TSym: declaring set name
	Symbols []string // TSym: ordered member names
	Elem    *Type    // TSet: element type
}

// IntType builds a finite integer range type.
func IntType(lo, hi int64) *Type {
	if hi < lo {
		lo, hi = hi, lo
	}
	return &Type{Kind: TInt, Lo: lo, Hi: hi}
}

// BoolType is the premise type singleton.
var BoolType = &Type{Kind: TBool}

// DomainSize returns the number of distinct values of the type.
func (t *Type) DomainSize() int64 {
	switch t.Kind {
	case TInt:
		return t.Hi - t.Lo + 1
	case TSym:
		return int64(len(t.Symbols))
	case TBool:
		return 2
	case TSet:
		return 1 << uint(t.Elem.DomainSize())
	}
	return 0
}

// Bits returns the number of bits needed to encode a value of t.
func (t *Type) Bits() int {
	n := t.DomainSize()
	if n <= 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// Compatible reports whether values of a and b can be compared or
// assigned to one another.
func Compatible(a, b *Type) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TSym:
		return a.SetName == b.SetName
	case TSet:
		return Compatible(a.Elem, b.Elem)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		return fmt.Sprintf("%d TO %d", t.Lo, t.Hi)
	case TSym:
		return t.SetName
	case TBool:
		return "bool"
	case TSet:
		return "set of " + t.Elem.String()
	}
	return "invalid"
}

// Value is a runtime value: an integer, a symbol (by ordinal), a
// boolean or a small set (bitmask over element ordinals).
type Value struct {
	T    *Type
	I    int64  // TInt value or TSym ordinal
	B    bool   // TBool
	Mask uint64 // TSet membership bitmask
}

// IntVal builds an integer value.
func IntVal(v int64) Value { return Value{T: IntType(v, v), I: v} }

// BoolVal builds a boolean value.
func BoolVal(b bool) Value { return Value{T: BoolType, B: b} }

// SymVal builds a symbol value of type t with the given ordinal.
func SymVal(t *Type, ord int64) Value { return Value{T: t, I: ord} }

// Ord returns the ordinal of a TInt or TSym value within its domain
// (used for array indexing and table-index construction).
func (v Value) Ord() (int64, error) {
	switch v.T.Kind {
	case TInt:
		return v.I, nil
	case TSym:
		return v.I, nil
	case TBool:
		if v.B {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("rules: value of type %s has no ordinal", v.T)
}

// Equal compares two values (types must be compatible).
func (v Value) Equal(w Value) bool {
	switch v.T.Kind {
	case TBool:
		return v.B == w.B
	case TSet:
		return v.Mask == w.Mask
	default:
		return v.I == w.I
	}
}

func (v Value) String() string {
	switch v.T.Kind {
	case TBool:
		return fmt.Sprintf("%v", v.B)
	case TSym:
		if v.I >= 0 && int(v.I) < len(v.T.Symbols) {
			return v.T.Symbols[v.I]
		}
		return fmt.Sprintf("sym#%d", v.I)
	case TSet:
		return fmt.Sprintf("set(%b)", v.Mask)
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

// enumerate lists every value of a TInt or TSym type in ordinal
// order (used by quantifier expansion and the table compiler).
func enumerate(t *Type) []Value {
	switch t.Kind {
	case TInt:
		out := make([]Value, 0, t.DomainSize())
		for v := t.Lo; v <= t.Hi; v++ {
			out = append(out, Value{T: t, I: v})
		}
		return out
	case TSym:
		out := make([]Value, 0, len(t.Symbols))
		for i := range t.Symbols {
			out = append(out, Value{T: t, I: int64(i)})
		}
		return out
	}
	return nil
}

// setOrdinal maps a value to its bit position within element type
// elem.
func setOrdinal(elem *Type, v Value) (uint, error) {
	switch elem.Kind {
	case TInt:
		if v.I < elem.Lo || v.I > elem.Hi {
			return 0, fmt.Errorf("rules: %s outside set element range %s", v, elem)
		}
		return uint(v.I - elem.Lo), nil
	case TSym:
		return uint(v.I), nil
	}
	return 0, fmt.Errorf("rules: bad set element type %s", elem)
}
