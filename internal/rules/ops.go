package rules

import "fmt"

// ResolveDomain resolves a syntactic domain against an analysed
// program (exported for the compiler in internal/core).
func ResolveDomain(c *Checked, d *DomainExpr) (*Type, error) {
	return c.resolveDomain(d)
}

// ApplyBinary applies a value-level binary operator (everything except
// the short-circuit handling, which callers do themselves).
func ApplyBinary(op string, x, y Value) (Value, error) {
	switch op {
	case "AND", "OR":
		if op == "AND" {
			return BoolVal(x.B && y.B), nil
		}
		return BoolVal(x.B || y.B), nil
	case "=":
		return BoolVal(x.Equal(y)), nil
	case "<>":
		return BoolVal(!x.Equal(y)), nil
	case "<":
		return BoolVal(x.I < y.I), nil
	case "<=":
		return BoolVal(x.I <= y.I), nil
	case ">":
		return BoolVal(x.I > y.I), nil
	case ">=":
		return BoolVal(x.I >= y.I), nil
	case "IN":
		if y.T == nil || y.T.Kind != TSet {
			return Value{}, fmt.Errorf("rules: IN needs a set")
		}
		ord, err := setOrdinal(y.T.Elem, x)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(y.Mask&(1<<ord) != 0), nil
	case "+":
		if x.T != nil && x.T.Kind == TSet {
			return Value{T: x.T, Mask: x.Mask | y.Mask}, nil
		}
		return IntVal(x.I + y.I), nil
	case "-":
		if x.T != nil && x.T.Kind == TSet {
			return Value{T: x.T, Mask: x.Mask &^ y.Mask}, nil
		}
		return IntVal(x.I - y.I), nil
	case "*":
		return IntVal(x.I * y.I), nil
	}
	return Value{}, fmt.Errorf("rules: unhandled operator %s", op)
}

// ApplyBuiltin applies one of the builtin FCFB functions to evaluated
// arguments.
func ApplyBuiltin(name string, args []Value) (Value, error) {
	switch name {
	case "ABS":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("rules: ABS arity")
		}
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "MIN":
		if len(args) != 2 {
			return Value{}, fmt.Errorf("rules: MIN arity")
		}
		if args[0].I <= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "MAX":
		if len(args) != 2 {
			return Value{}, fmt.Errorf("rules: MAX arity")
		}
		if args[0].I >= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "DIST":
		if len(args) != 2 {
			return Value{}, fmt.Errorf("rules: DIST arity")
		}
		d := args[0].I - args[1].I
		if d < 0 {
			d = -d
		}
		return IntVal(d), nil
	case "MEET":
		if len(args) != 2 {
			return Value{}, fmt.Errorf("rules: MEET arity")
		}
		if args[0].I >= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	}
	return Value{}, fmt.Errorf("rules: unknown builtin %s", name)
}

// MakeSet builds a set value from element values (integers widen to
// the canonical 0..63 host range).
func MakeSet(vals []Value) (Value, error) {
	if len(vals) == 0 {
		return Value{}, fmt.Errorf("rules: empty set literal has no type")
	}
	var elem *Type
	var mask uint64
	for _, v := range vals {
		if elem == nil {
			if v.T.Kind == TInt {
				elem = IntType(0, 63)
			} else {
				elem = v.T
			}
		}
		ord, err := setOrdinal(elem, v)
		if err != nil {
			return Value{}, err
		}
		if ord >= 64 {
			return Value{}, fmt.Errorf("rules: set element ordinal %d exceeds 63", ord)
		}
		mask |= 1 << ord
	}
	return Value{T: &Type{Kind: TSet, Elem: elem}, Mask: mask}, nil
}
