package rules

import (
	"strings"
	"testing"
)

func TestExprStringForms(t *testing.T) {
	src := `
CONSTANT states = {a, b}
CONSTANT n = 2 * 3 + 1 - 2
VARIABLE v (n) IN states
INPUT q (4) IN 0 TO 7
ON f(k IN 0 TO 3)
  IF NOT (k = 1) AND (q(k) < 6 OR k IN {0, 2}) AND
     (EXISTS i IN 0 TO 3: (q(i) >= 2 AND MIN(q(i), 5) <> 0)) THEN
     v(0) <- a,
     FORALL j IN 0 TO 1: !notify(j, -1),
     RETURN(k + 1);
END f;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
	r := prog.RuleBases[0].Rules[0]
	p := ExprString(r.Premise)
	for _, frag := range []string{"NOT (k = 1)", "(q(k) < 6)", "k IN {0,2}", "EXISTS i IN 0 TO 3", "MIN(q(i),5)"} {
		if !strings.Contains(p, frag) {
			t.Fatalf("premise rendering missing %q:\n%s", frag, p)
		}
	}
	cmds := make([]string, len(r.Cmds))
	for i, c := range r.Cmds {
		cmds[i] = CmdString(c)
	}
	if cmds[0] != "v(0) <- a" {
		t.Fatalf("assign rendering: %q", cmds[0])
	}
	if !strings.HasPrefix(cmds[1], "FORALL j IN 0 TO 1: !notify(j, -1)") {
		t.Fatalf("forall rendering: %q", cmds[1])
	}
	if cmds[2] != "RETURN((k + 1))" {
		t.Fatalf("return rendering: %q", cmds[2])
	}
	// Constant evaluation of the declaration: 2*3+1-2 = 5.
	c, _ := Analyze(prog)
	if c.NumConsts["n"] != 5 {
		t.Fatalf("constEval: n = %d", c.NumConsts["n"])
	}
}

func TestProgramStringRoundTripInPackage(t *testing.T) {
	prog, err := Parse(figure4)
	if err != nil {
		t.Fatal(err)
	}
	printed := ProgramString(prog)
	again, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if ProgramString(again) != printed {
		t.Fatal("printer is not a fixed point")
	}
	if _, err := Analyze(again); err != nil {
		t.Fatalf("analyze reprinted: %v", err)
	}
}

func TestFireRuleDirect(t *testing.T) {
	c := analyzeSrc(t, figure4)
	env := &mapEnv{
		vars: map[string]Value{
			"number_unsafe": {T: IntType(0, 4), I: 0},
			"number_faulty": {T: IntType(0, 4), I: 0},
			"state":         c.Symbols["safe"],
		},
		inputs: map[string]Value{"new_state/1": c.Symbols["faulty"]},
	}
	// Fire rule 0 explicitly (bypassing premise evaluation, as the
	// compiled table does).
	eff, err := c.FireRule("update_state", 0, []Value{IntVal(1)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Writes) != 3 {
		t.Fatalf("writes: %+v", eff.Writes)
	}
	// Error paths.
	if _, err := c.FireRule("nosuch", 0, nil, env); err == nil {
		t.Fatal("unknown base")
	}
	if _, err := c.FireRule("update_state", 99, []Value{IntVal(1)}, env); err == nil {
		t.Fatal("rule index out of range")
	}
	if _, err := c.FireRule("update_state", 0, nil, env); err == nil {
		t.Fatal("arity mismatch")
	}
}

func TestResolveDomainForms(t *testing.T) {
	c := analyzeSrc(t, "CONSTANT states = {x, y, z}\nCONSTANT k = 4\nVARIABLE a (k) IN states\nVARIABLE b IN {y, z}\nVARIABLE c2 IN 1 TO k")
	if c.Signals["a"].Index[0].DomainSize() != 4 {
		t.Fatal("count domain wrong")
	}
	if c.Signals["b"].Domain.SetName != "states" {
		t.Fatal("inline symbol subset should resolve to the host set")
	}
	if c.Signals["c2"].Domain.Lo != 1 || c.Signals["c2"].Domain.Hi != 4 {
		t.Fatal("range domain wrong")
	}
	// Errors: unknown symbol in inline set, unknown ref, empty range.
	for _, src := range []string{
		"VARIABLE v IN {nosuch}",
		"VARIABLE v IN nosuchset",
		"VARIABLE v IN 5 TO 2",
		"CONSTANT z = 0\nVARIABLE v (z) IN 0 TO 1",
	} {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := Analyze(prog); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestMulAndComparisonTyping(t *testing.T) {
	c := analyzeSrc(t, `
ON f(a IN 0 TO 3, b IN 0 TO 3)
  IF a * b >= 6 THEN RETURN(1);
  IF a * b < 2 THEN RETURN(2);
  IF 1 = 1 THEN RETURN(0);
END f;
`)
	env := &mapEnv{}
	idx, _, err := c.Invoke("f", []Value{IntVal(3), IntVal(2)}, env)
	if err != nil || idx != 0 {
		t.Fatalf("3*2: rule %d err %v", idx, err)
	}
	idx, _, err = c.Invoke("f", []Value{IntVal(1), IntVal(1)}, env)
	if err != nil || idx != 1 {
		t.Fatalf("1*1: rule %d err %v", idx, err)
	}
	idx, _, err = c.Invoke("f", []Value{IntVal(2), IntVal(2)}, env)
	if err != nil || idx != 2 {
		t.Fatalf("2*2: rule %d err %v", idx, err)
	}
}
