package rules

import "fmt"

// Env supplies the current state to the reference evaluator: internal
// variables and external inputs. The evaluator never writes through
// Env; conclusions are collected as Effects and applied by the caller,
// which gives the paper's parallel-conclusion semantics for free (all
// right-hand sides are evaluated against the pre-state).
type Env interface {
	ReadVar(name string, idx []int64) (Value, error)
	ReadInput(name string, idx []int64) (Value, error)
}

// Write is one pending variable assignment.
type Write struct {
	Name string
	Idx  []int64
	Val  Value
}

// Event is one generated event.
type Event struct {
	Name string
	Args []Value
}

// Effects is the result of firing one rule.
type Effects struct {
	Writes []Write
	Events []Event
	Return *Value
}

// Invoke evaluates the premises of the named rule base under the given
// event arguments and environment, fires the first applicable rule
// (declaration order — the paper leaves the choice to the
// implementation) and returns its index and effects. ruleIdx is -1
// when no rule applies.
func (c *Checked) Invoke(base string, args []Value, env Env) (ruleIdx int, eff *Effects, err error) {
	bi, ok := c.Bases[base]
	if !ok {
		return -1, nil, fmt.Errorf("rules: unknown rule base %s", base)
	}
	if len(args) != len(bi.Params) {
		return -1, nil, fmt.Errorf("rules: %s needs %d args, got %d", base, len(bi.Params), len(args))
	}
	sc := map[string]Value{}
	for i, p := range bi.Params {
		sc[p.Name] = args[i]
	}
	for i, r := range bi.RB.Rules {
		v, err := c.EvalExpr(r.Premise, sc, env)
		if err != nil {
			return -1, nil, fmt.Errorf("rules: %s rule %d premise: %w", base, i, err)
		}
		if !v.B {
			continue
		}
		eff := &Effects{}
		for _, cmd := range r.Cmds {
			if err := c.execCmd(cmd, sc, env, eff); err != nil {
				return -1, nil, fmt.Errorf("rules: %s rule %d: %w", base, i, err)
			}
		}
		return i, eff, nil
	}
	return -1, &Effects{}, nil
}

func (c *Checked) execCmd(cmd Cmd, sc map[string]Value, env Env, eff *Effects) error {
	switch n := cmd.(type) {
	case *Assign:
		idx := make([]int64, len(n.Idx))
		for i, a := range n.Idx {
			v, err := c.EvalExpr(a, sc, env)
			if err != nil {
				return err
			}
			ord, err := v.Ord()
			if err != nil {
				return err
			}
			idx[i] = ord
		}
		v, err := c.EvalExpr(n.Rhs, sc, env)
		if err != nil {
			return err
		}
		// Clamp integers into the variable's declared range (finite
		// hardware registers saturate).
		info := c.Signals[n.Name]
		if info.Domain.Kind == TInt {
			if v.I < info.Domain.Lo {
				v.I = info.Domain.Lo
			}
			if v.I > info.Domain.Hi {
				v.I = info.Domain.Hi
			}
			v.T = info.Domain
		}
		eff.Writes = append(eff.Writes, Write{Name: n.Name, Idx: idx, Val: v})
		return nil
	case *Return:
		v, err := c.EvalExpr(n.Val, sc, env)
		if err != nil {
			return err
		}
		eff.Return = &v
		return nil
	case *Emit:
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := c.EvalExpr(a, sc, env)
			if err != nil {
				return err
			}
			args[i] = v
		}
		eff.Events = append(eff.Events, Event{Name: n.Event, Args: args})
		return nil
	case *ForAllCmd:
		dt, err := c.resolveDomain(n.Domain)
		if err != nil {
			return err
		}
		for _, v := range enumerate(dt) {
			saved, had := sc[n.Var]
			sc[n.Var] = v
			err := c.execCmd(n.Body, sc, env, eff)
			if had {
				sc[n.Var] = saved
			} else {
				delete(sc, n.Var)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unhandled command %T", cmd)
}

// EvalExpr evaluates an expression under scope sc (parameters and
// quantifier variables) and environment env.
func (c *Checked) EvalExpr(e Expr, sc map[string]Value, env Env) (Value, error) {
	switch n := e.(type) {
	case *NumLit:
		return IntVal(n.Val), nil
	case *Ident:
		if v, ok := sc[n.Name]; ok {
			return v, nil
		}
		if v, ok := c.Symbols[n.Name]; ok {
			return v, nil
		}
		if v, ok := c.NumConsts[n.Name]; ok {
			return IntVal(v), nil
		}
		if info, ok := c.Signals[n.Name]; ok {
			if info.IsInput {
				return env.ReadInput(n.Name, nil)
			}
			return env.ReadVar(n.Name, nil)
		}
		return Value{}, fmt.Errorf("unknown identifier %s", n.Name)
	case *Call:
		return c.evalCall(n, sc, env)
	case *Unary:
		x, err := c.EvalExpr(n.X, sc, env)
		if err != nil {
			return Value{}, err
		}
		if n.Op == "NOT" {
			return BoolVal(!x.B), nil
		}
		return IntVal(-x.I), nil
	case *Binary:
		return c.evalBinary(n, sc, env)
	case *SetLit:
		return c.evalSetLit(n, sc, env)
	case *Quant:
		dt, err := c.resolveDomain(n.Domain)
		if err != nil {
			return Value{}, err
		}
		result := n.Kind == "FORALL" // identity: FORALL=true, EXISTS=false
		for _, v := range enumerate(dt) {
			saved, had := sc[n.Var]
			sc[n.Var] = v
			b, err := c.EvalExpr(n.Body, sc, env)
			if had {
				sc[n.Var] = saved
			} else {
				delete(sc, n.Var)
			}
			if err != nil {
				return Value{}, err
			}
			if n.Kind == "EXISTS" && b.B {
				return BoolVal(true), nil
			}
			if n.Kind == "FORALL" && !b.B {
				return BoolVal(false), nil
			}
		}
		return BoolVal(result), nil
	}
	return Value{}, fmt.Errorf("unhandled expression %T", e)
}

func (c *Checked) evalCall(n *Call, sc map[string]Value, env Env) (Value, error) {
	if info, ok := c.Signals[n.Name]; ok {
		idx := make([]int64, len(n.Args))
		for i, a := range n.Args {
			v, err := c.EvalExpr(a, sc, env)
			if err != nil {
				return Value{}, err
			}
			ord, err := v.Ord()
			if err != nil {
				return Value{}, err
			}
			// Normalise symbol/int ordinals to zero-based slot
			// numbers.
			if info.Index[i].Kind == TInt {
				ord -= info.Index[i].Lo
			}
			if ord < 0 || ord >= info.Index[i].DomainSize() {
				return Value{}, fmt.Errorf("%s index %d out of range (%d)", n.Name, i, ord)
			}
			idx[i] = ord
		}
		if info.IsInput {
			return env.ReadInput(n.Name, idx)
		}
		return env.ReadVar(n.Name, idx)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := c.EvalExpr(a, sc, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	// Subbases: purely functional — the first rule whose premise
	// holds yields the value.
	if sub, ok := c.Subs[n.Name]; ok {
		inner := map[string]Value{}
		for i, p := range sub.Params {
			inner[p.Name] = args[i]
		}
		for _, r := range sub.RB.Rules {
			b, err := c.EvalExpr(r.Premise, inner, env)
			if err != nil {
				return Value{}, err
			}
			if b.B {
				return c.EvalExpr(r.Cmds[0].(*Return).Val, inner, env)
			}
		}
		return Value{}, fmt.Errorf("subbase %s: no rule applies", n.Name)
	}
	// Builtins.
	switch n.Name {
	case "ABS":
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "MIN":
		if args[0].I <= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "MAX":
		if args[0].I >= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "DIST":
		d := args[0].I - args[1].I
		if d < 0 {
			d = -d
		}
		return IntVal(d), nil
	case "MEET":
		// Lattice meet toward the worst state: symbol sets are
		// declared best-first (safe < ... < faulty), so the meet is
		// the larger ordinal.
		if args[0].I >= args[1].I {
			return args[0], nil
		}
		return args[1], nil
	}
	return Value{}, fmt.Errorf("unknown function %s", n.Name)
}

func (c *Checked) evalBinary(n *Binary, sc map[string]Value, env Env) (Value, error) {
	x, err := c.EvalExpr(n.X, sc, env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logic.
	if n.Op == "AND" && !x.B {
		return BoolVal(false), nil
	}
	if n.Op == "OR" && x.B {
		return BoolVal(true), nil
	}
	y, err := c.EvalExpr(n.Y, sc, env)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case "AND", "OR":
		return BoolVal(y.B), nil
	case "=":
		return BoolVal(x.Equal(y)), nil
	case "<>":
		return BoolVal(!x.Equal(y)), nil
	case "<":
		return BoolVal(x.I < y.I), nil
	case "<=":
		return BoolVal(x.I <= y.I), nil
	case ">":
		return BoolVal(x.I > y.I), nil
	case ">=":
		return BoolVal(x.I >= y.I), nil
	case "IN":
		ord, err := setOrdinal(y.T.Elem, x)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(y.Mask&(1<<ord) != 0), nil
	case "+":
		if x.T.Kind == TSet {
			return Value{T: x.T, Mask: x.Mask | y.Mask}, nil
		}
		return IntVal(x.I + y.I), nil
	case "-":
		if x.T.Kind == TSet {
			return Value{T: x.T, Mask: x.Mask &^ y.Mask}, nil
		}
		return IntVal(x.I - y.I), nil
	case "*":
		return IntVal(x.I * y.I), nil
	}
	return Value{}, fmt.Errorf("unhandled operator %s", n.Op)
}

func (c *Checked) evalSetLit(n *SetLit, sc map[string]Value, env Env) (Value, error) {
	var elem *Type
	var mask uint64
	for _, el := range n.Elems {
		v, err := c.EvalExpr(el, sc, env)
		if err != nil {
			return Value{}, err
		}
		if elem == nil {
			if v.T.Kind == TInt {
				elem = IntType(0, 63)
			} else {
				elem = v.T
			}
		}
		ord, err := setOrdinal(elem, v)
		if err != nil {
			return Value{}, err
		}
		if ord >= 64 {
			return Value{}, fmt.Errorf("set element ordinal %d exceeds 63", ord)
		}
		mask |= 1 << ord
	}
	return Value{T: &Type{Kind: TSet, Elem: elem}, Mask: mask}, nil
}

// FireRule executes the conclusion of one specific rule of a base
// (selected externally, e.g. by a compiled ARON table lookup) and
// returns its effects. It does not evaluate the premise.
func (c *Checked) FireRule(base string, ruleIdx int, args []Value, env Env) (*Effects, error) {
	bi, ok := c.Bases[base]
	if !ok {
		return nil, fmt.Errorf("rules: unknown rule base %s", base)
	}
	if ruleIdx < 0 || ruleIdx >= len(bi.RB.Rules) {
		return nil, fmt.Errorf("rules: %s has no rule %d", base, ruleIdx)
	}
	if len(args) != len(bi.Params) {
		return nil, fmt.Errorf("rules: %s needs %d args, got %d", base, len(bi.Params), len(args))
	}
	sc := map[string]Value{}
	for i, p := range bi.Params {
		sc[p.Name] = args[i]
	}
	eff := &Effects{}
	for _, cmd := range bi.RB.Rules[ruleIdx].Cmds {
		if err := c.execCmd(cmd, sc, env, eff); err != nil {
			return nil, fmt.Errorf("rules: %s rule %d: %w", base, ruleIdx, err)
		}
	}
	return eff, nil
}
