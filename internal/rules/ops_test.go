package rules

import (
	"testing"
	"testing/quick"
)

// Property: ApplyBinary on integers agrees with Go's operators.
func TestApplyBinaryIntProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := IntVal(int64(a)), IntVal(int64(b))
		cases := []struct {
			op   string
			want bool
		}{
			{"=", a == b}, {"<>", a != b},
			{"<", a < b}, {"<=", a <= b},
			{">", a > b}, {">=", a >= b},
		}
		for _, c := range cases {
			v, err := ApplyBinary(c.op, x, y)
			if err != nil || v.B != c.want {
				return false
			}
		}
		sum, err := ApplyBinary("+", x, y)
		if err != nil || sum.I != int64(a)+int64(b) {
			return false
		}
		diff, err := ApplyBinary("-", x, y)
		if err != nil || diff.I != int64(a)-int64(b) {
			return false
		}
		prod, err := ApplyBinary("*", x, y)
		return err == nil && prod.I == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: set union and subtraction behave like bitset algebra and
// IN agrees with the mask.
func TestSetAlgebraProperties(t *testing.T) {
	host := IntType(0, 63)
	setOf := func(mask uint64) Value {
		return Value{T: &Type{Kind: TSet, Elem: host}, Mask: mask}
	}
	f := func(a, b uint64, elemRaw uint8) bool {
		elem := int64(elemRaw % 64)
		u, err := ApplyBinary("+", setOf(a), setOf(b))
		if err != nil || u.Mask != a|b {
			return false
		}
		d, err := ApplyBinary("-", setOf(a), setOf(b))
		if err != nil || d.Mask != a&^b {
			return false
		}
		in, err := ApplyBinary("IN", Value{T: host, I: elem}, setOf(a))
		if err != nil {
			return false
		}
		return in.B == (a&(1<<uint(elem)) != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MIN/MAX/ABS/DIST/MEET builtins satisfy their algebraic
// identities.
func TestBuiltinProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := IntVal(int64(a)), IntVal(int64(b))
		mn, err1 := ApplyBuiltin("MIN", []Value{x, y})
		mx, err2 := ApplyBuiltin("MAX", []Value{x, y})
		if err1 != nil || err2 != nil {
			return false
		}
		// min+max = a+b, min <= max
		if mn.I+mx.I != int64(a)+int64(b) || mn.I > mx.I {
			return false
		}
		// DIST symmetric and = |a-b|
		d1, _ := ApplyBuiltin("DIST", []Value{x, y})
		d2, _ := ApplyBuiltin("DIST", []Value{y, x})
		if d1.I != d2.I || d1.I != abs64(int64(a)-int64(b)) {
			return false
		}
		// ABS
		av, _ := ApplyBuiltin("ABS", []Value{x})
		if av.I != abs64(int64(a)) {
			return false
		}
		// MEET = max ordinal (lattice toward worst)
		m, _ := ApplyBuiltin("MEET", []Value{x, y})
		return m.I == mx.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Property: MakeSet is order independent and idempotent on duplicates.
func TestMakeSetProperties(t *testing.T) {
	f := func(elemsRaw []uint8) bool {
		if len(elemsRaw) == 0 {
			return true
		}
		fwd := make([]Value, len(elemsRaw))
		rev := make([]Value, len(elemsRaw))
		for i, e := range elemsRaw {
			fwd[i] = IntVal(int64(e % 64))
			rev[len(elemsRaw)-1-i] = IntVal(int64(e % 64))
		}
		a, err1 := MakeSet(fwd)
		b, err2 := MakeSet(rev)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Mask != b.Mask {
			return false
		}
		// Doubling the elements changes nothing.
		c, err := MakeSet(append(fwd, fwd...))
		return err == nil && c.Mask == a.Mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBuiltinErrors(t *testing.T) {
	if _, err := ApplyBuiltin("MIN", []Value{IntVal(1)}); err == nil {
		t.Fatal("arity error expected")
	}
	if _, err := ApplyBuiltin("NOSUCH", nil); err == nil {
		t.Fatal("unknown builtin should error")
	}
	if _, err := ApplyBinary("IN", IntVal(1), IntVal(2)); err == nil {
		t.Fatal("IN needs a set")
	}
}
