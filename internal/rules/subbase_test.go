package rules

import "testing"

// The paper's NARA excerpt uses "minimal(dx,dy)" as a modularised
// predicate; subbases are the language feature for it.
const subbaseSrc = `
CONSTANT signs = {neg, zero, pos}

INPUT dxsign IN signs
INPUT dysign IN signs
INPUT load (4) IN 0 TO 15

SUBBASE wants_east()
  IF dxsign = pos THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END wants_east;

SUBBASE lighter(i IN 0 TO 3, j IN 0 TO 3)
  IF load(i) < load(j) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END lighter;

ON decide(invc IN 0 TO 1)
  IF wants_east() = 1 AND lighter(1, 0) = 1 THEN RETURN(1);
  IF wants_east() = 1 THEN RETURN(0);
  IF 1 = 1 THEN RETURN(3);
END decide;
`

func TestSubbaseParseAnalyze(t *testing.T) {
	prog, err := Parse(subbaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subbases) != 2 || len(prog.RuleBases) != 1 {
		t.Fatalf("subbases=%d bases=%d", len(prog.Subbases), len(prog.RuleBases))
	}
	c, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Subs["wants_east"] == nil || c.Subs["lighter"] == nil {
		t.Fatal("subbase info missing")
	}
	if c.Subs["lighter"].ReturnType.Kind != TInt {
		t.Fatal("return type wrong")
	}
}

func TestSubbaseEvaluation(t *testing.T) {
	c := analyzeSrc(t, subbaseSrc)
	env := &mapEnv{inputs: map[string]Value{
		"dxsign": c.Symbols["pos"],
		"dysign": c.Symbols["zero"],
		"load/0": IntVal(9), "load/1": IntVal(2),
		"load/2": IntVal(0), "load/3": IntVal(0),
	}}
	idx, eff, err := c.Invoke("decide", []Value{IntVal(0)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || eff.Return.I != 1 {
		t.Fatalf("east+lighter should pick rule 0 -> 1, got rule %d", idx)
	}
	// Heavier east output: falls to rule 1.
	env.inputs["load/1"] = IntVal(12)
	idx, eff, err = c.Invoke("decide", []Value{IntVal(0)}, env)
	if err != nil || idx != 1 || eff.Return.I != 0 {
		t.Fatalf("rule %d ret %v err %v", idx, eff.Return, err)
	}
	// Not east at all: default rule.
	env.inputs["dxsign"] = c.Symbols["neg"]
	idx, eff, err = c.Invoke("decide", []Value{IntVal(0)}, env)
	if err != nil || idx != 2 || eff.Return.I != 3 {
		t.Fatalf("rule %d ret %v err %v", idx, eff.Return, err)
	}
}

func TestSubbaseErrors(t *testing.T) {
	bad := []string{
		// forward reference (and thus recursion) is impossible
		"SUBBASE a()\n IF b() = 1 THEN RETURN(1);\nEND a;\nSUBBASE b()\n IF 1 = 1 THEN RETURN(1);\nEND b;",
		// self recursion
		"SUBBASE a()\n IF a() = 1 THEN RETURN(1);\nEND a;",
		// non-RETURN command
		"VARIABLE x IN 0 TO 3\nSUBBASE a()\n IF 1 = 1 THEN x <- 2;\nEND a;",
		// two commands
		"SUBBASE a()\n IF 1 = 1 THEN RETURN(1), RETURN(2);\nEND a;",
		// empty subbase
		"SUBBASE a()\nEND a;",
		// arg count mismatch
		"SUBBASE a(k IN 0 TO 3)\n IF 1 = 1 THEN RETURN(k);\nEND a;\nON f()\n IF a() = 1 THEN RETURN(1);\nEND f;",
		// duplicate
		"SUBBASE a()\n IF 1=1 THEN RETURN(1);\nEND a;\nSUBBASE a()\n IF 1=1 THEN RETURN(1);\nEND a;",
	}
	for _, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Analyze(prog); err == nil {
			t.Errorf("no analyze error for:\n%s", src)
		}
	}
}

func TestSubbaseNoRuleApplies(t *testing.T) {
	src := `
INPUT x IN 0 TO 3
SUBBASE partial()
  IF x = 0 THEN RETURN(1);
END partial;
ON f()
  IF partial() = 1 THEN RETURN(1);
END f;
`
	c := analyzeSrc(t, src)
	env := &mapEnv{inputs: map[string]Value{"x": IntVal(2)}}
	if _, _, err := c.Invoke("f", nil, env); err == nil {
		t.Fatal("partial subbase with no applicable rule should error")
	}
}
