package rules

import "fmt"

// SignalInfo describes a declared variable or input: its index
// domains and value domain, fully resolved to types.
type SignalInfo struct {
	Name   string
	Index  []*Type // nil for scalars
	Domain *Type
	// IsInput is true for INPUT declarations (read-only, externally
	// supplied).
	IsInput bool
	Line    int
}

// Slots returns the number of storage slots (product of index domain
// sizes, 1 for scalars).
func (s *SignalInfo) Slots() int64 {
	n := int64(1)
	for _, ix := range s.Index {
		n *= ix.DomainSize()
	}
	return n
}

// Bits returns the total register bits the signal occupies.
func (s *SignalInfo) Bits() int64 {
	return s.Slots() * int64(s.Domain.Bits())
}

// BaseInfo is the resolved form of a rule base.
type BaseInfo struct {
	RB     *RuleBase
	Params []*SignalInfo // parameter name + domain (Index nil)
	// ReturnType is the unified type of all RETURN commands, nil if
	// the base never returns a value.
	ReturnType *Type
}

// Checked is a semantically analysed program.
type Checked struct {
	Prog *Program
	// SymbolSets maps a set name to its symbol type.
	SymbolSets map[string]*Type
	// Symbols maps each symbol name to its value.
	Symbols map[string]Value
	// NumConsts maps numeric constant names to values.
	NumConsts map[string]int64
	// Signals maps variable and input names to their info.
	Signals map[string]*SignalInfo
	// Bases maps event names to their rule bases.
	Bases map[string]*BaseInfo
	// Subs maps subbase names to their info. Subbases are purely
	// functional (rules contain exactly one RETURN) and may only call
	// subbases declared before them, which rules out recursion.
	Subs map[string]*BaseInfo
}

// Builtin functions and the FCFB they occupy (paper Section 4.3: "only
// few universal blocks are necessary ... one very common function is
// the selection of a minimal value").
var builtins = map[string]bool{
	"MIN": true, "MAX": true, "ABS": true, "MEET": true, "DIST": true,
}

// Analyze performs name resolution and type checking.
func Analyze(prog *Program) (*Checked, error) {
	c := &Checked{
		Prog:       prog,
		SymbolSets: make(map[string]*Type),
		Symbols:    make(map[string]Value),
		NumConsts:  make(map[string]int64),
		Signals:    make(map[string]*SignalInfo),
		Bases:      make(map[string]*BaseInfo),
		Subs:       make(map[string]*BaseInfo),
	}
	// Constants first (symbol sets, then numeric constants that may
	// reference earlier ones).
	for _, d := range prog.Consts {
		if _, dup := c.SymbolSets[d.Name]; dup {
			return nil, errAt(d.Line, 1, "duplicate constant %s", d.Name)
		}
		if _, dup := c.NumConsts[d.Name]; dup {
			return nil, errAt(d.Line, 1, "duplicate constant %s", d.Name)
		}
		if d.Symbols != nil {
			t := &Type{Kind: TSym, SetName: d.Name, Symbols: d.Symbols}
			if len(d.Symbols) > 64 {
				return nil, errAt(d.Line, 1, "symbol set %s too large (max 64)", d.Name)
			}
			c.SymbolSets[d.Name] = t
			for i, s := range d.Symbols {
				if _, dup := c.Symbols[s]; dup {
					return nil, errAt(d.Line, 1, "duplicate symbol %s", s)
				}
				c.Symbols[s] = SymVal(t, int64(i))
			}
			continue
		}
		v, err := c.constEval(d.Value)
		if err != nil {
			return nil, err
		}
		c.NumConsts[d.Name] = v
	}
	for _, d := range prog.Vars {
		if err := c.addSignal(d.Name, d.Index, d.Domain, false, d.Line); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.Inputs {
		if err := c.addSignal(d.Name, d.Index, d.Domain, true, d.Line); err != nil {
			return nil, err
		}
	}
	// Subbases: processed in declaration order so a subbase can only
	// call subbases declared before it (no recursion possible).
	for _, rb := range prog.Subbases {
		if _, dup := c.Subs[rb.Event]; dup {
			return nil, errAt(rb.Line, 1, "duplicate subbase %s", rb.Event)
		}
		if builtins[rb.Event] {
			return nil, errAt(rb.Line, 1, "subbase %s shadows a builtin", rb.Event)
		}
		bi := &BaseInfo{RB: rb}
		scope := newScope(nil)
		for _, p := range rb.Params {
			t, err := c.resolveDomain(p.Domain)
			if err != nil {
				return nil, err
			}
			bi.Params = append(bi.Params, &SignalInfo{Name: p.Name, Domain: t, Line: p.Line})
			scope.bind(p.Name, t)
		}
		if len(rb.Rules) == 0 {
			return nil, errAt(rb.Line, 1, "subbase %s has no rules", rb.Event)
		}
		for _, r := range rb.Rules {
			pt, err := c.checkExpr(r.Premise, scope)
			if err != nil {
				return nil, err
			}
			if pt.Kind != TBool {
				return nil, errAt(r.Line, 1, "premise in subbase %s is %s, want bool", rb.Event, pt)
			}
			// Purely functional: exactly one RETURN per rule.
			if len(r.Cmds) != 1 {
				return nil, errAt(r.Line, 1, "subbase %s rules must contain exactly one RETURN", rb.Event)
			}
			ret, ok := r.Cmds[0].(*Return)
			if !ok {
				return nil, errAt(r.Line, 1, "subbase %s rules may only RETURN (purely functional)", rb.Event)
			}
			rt, err := c.checkExpr(ret.Val, scope)
			if err != nil {
				return nil, err
			}
			if bi.ReturnType == nil {
				bi.ReturnType = rt
			} else if !Compatible(bi.ReturnType, rt) {
				return nil, errAt(r.Line, 1, "inconsistent RETURN types in subbase %s", rb.Event)
			} else if bi.ReturnType.Kind == TInt {
				lo, hi := bi.ReturnType.Lo, bi.ReturnType.Hi
				if rt.Lo < lo {
					lo = rt.Lo
				}
				if rt.Hi > hi {
					hi = rt.Hi
				}
				bi.ReturnType = IntType(lo, hi)
			}
		}
		c.Subs[rb.Event] = bi
	}

	// Rule bases: resolve params, then check rules.
	for _, rb := range prog.RuleBases {
		if _, dup := c.Bases[rb.Event]; dup {
			return nil, errAt(rb.Line, 1, "duplicate rule base %s", rb.Event)
		}
		bi := &BaseInfo{RB: rb}
		for _, p := range rb.Params {
			t, err := c.resolveDomain(p.Domain)
			if err != nil {
				return nil, err
			}
			bi.Params = append(bi.Params, &SignalInfo{Name: p.Name, Domain: t, Line: p.Line})
		}
		c.Bases[rb.Event] = bi
	}
	for _, rb := range prog.RuleBases {
		bi := c.Bases[rb.Event]
		scope := newScope(nil)
		for _, p := range bi.Params {
			scope.bind(p.Name, p.Domain)
		}
		for _, r := range rb.Rules {
			pt, err := c.checkExpr(r.Premise, scope)
			if err != nil {
				return nil, err
			}
			if pt.Kind != TBool {
				return nil, errAt(r.Line, 1, "premise of rule in %s is %s, want bool", rb.Event, pt)
			}
			for _, cmd := range r.Cmds {
				if err := c.checkCmd(cmd, scope, bi); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, nil
}

func (c *Checked) addSignal(name string, idx []*DomainExpr, dom *DomainExpr, isInput bool, line int) error {
	if _, dup := c.Signals[name]; dup {
		return errAt(line, 1, "duplicate declaration %s", name)
	}
	if _, dup := c.Symbols[name]; dup {
		return errAt(line, 1, "%s already declared as symbol", name)
	}
	info := &SignalInfo{Name: name, IsInput: isInput, Line: line}
	for _, ix := range idx {
		t, err := c.resolveDomain(ix)
		if err != nil {
			return err
		}
		info.Index = append(info.Index, t)
	}
	t, err := c.resolveDomain(dom)
	if err != nil {
		return err
	}
	info.Domain = t
	c.Signals[name] = info
	return nil
}

// constEval evaluates a compile-time constant integer expression.
func (c *Checked) constEval(e Expr) (int64, error) {
	switch n := e.(type) {
	case *NumLit:
		return n.Val, nil
	case *Ident:
		if v, ok := c.NumConsts[n.Name]; ok {
			return v, nil
		}
		return 0, errAt(n.Line, 1, "%s is not a numeric constant", n.Name)
	case *Unary:
		if n.Op == "-" {
			v, err := c.constEval(n.X)
			return -v, err
		}
	case *Binary:
		x, err := c.constEval(n.X)
		if err != nil {
			return 0, err
		}
		y, err := c.constEval(n.Y)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		}
	}
	return 0, fmt.Errorf("rules: expression is not compile-time constant")
}

// ResolveDomain turns a syntactic domain into a type. The off-line
// compilers (core.CompileBase, the dense fast path) need it to expand
// quantifier domains outside this package.
func (c *Checked) ResolveDomain(d *DomainExpr) (*Type, error) {
	return c.resolveDomain(d)
}

// resolveDomain turns a syntactic domain into a type.
func (c *Checked) resolveDomain(d *DomainExpr) (*Type, error) {
	switch {
	case d == nil:
		return nil, fmt.Errorf("rules: missing domain")
	case d.Symbols != nil:
		// Inline symbol sets must reference already-declared symbols
		// of one set: the domain is the subset's host type (we keep
		// the full host type so ordinals stay stable).
		if len(d.Symbols) == 0 {
			return nil, errAt(d.Line, 1, "empty symbol set")
		}
		first, ok := c.Symbols[d.Symbols[0]]
		if !ok {
			return nil, errAt(d.Line, 1, "unknown symbol %s", d.Symbols[0])
		}
		return first.T, nil
	case d.Count != nil:
		n, err := c.constEval(d.Count)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, errAt(d.Line, 1, "domain size %d must be positive", n)
		}
		return IntType(0, n-1), nil
	case d.Ref != "":
		if t, ok := c.SymbolSets[d.Ref]; ok {
			return t, nil
		}
		if v, ok := c.NumConsts[d.Ref]; ok {
			// A bare numeric constant N denotes the index range
			// 0..N-1 (e.g. VARIABLE x (dirs) IN ...).
			if v < 1 {
				return nil, errAt(d.Line, 1, "domain size %d must be positive", v)
			}
			return IntType(0, v-1), nil
		}
		return nil, errAt(d.Line, 1, "unknown domain %s", d.Ref)
	default:
		lo, err := c.constEval(d.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.constEval(d.Hi)
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, errAt(d.Line, 1, "empty range %d TO %d", lo, hi)
		}
		return IntType(lo, hi), nil
	}
}

// scope is a lexical binding environment for parameters and
// quantifier variables.
type scope struct {
	parent *scope
	names  map[string]*Type
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]*Type)}
}

func (s *scope) bind(name string, t *Type) { s.names[name] = t }

func (s *scope) lookup(name string) (*Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.names[name]; ok {
			return t, true
		}
	}
	return nil, false
}

// checkExpr type-checks an expression and returns its type.
func (c *Checked) checkExpr(e Expr, sc *scope) (*Type, error) {
	switch n := e.(type) {
	case *NumLit:
		return IntType(n.Val, n.Val), nil
	case *Ident:
		if t, ok := sc.lookup(n.Name); ok {
			return t, nil
		}
		if v, ok := c.Symbols[n.Name]; ok {
			return v.T, nil
		}
		if v, ok := c.NumConsts[n.Name]; ok {
			return IntType(v, v), nil
		}
		if info, ok := c.Signals[n.Name]; ok {
			if len(info.Index) != 0 {
				return nil, errAt(n.Line, 1, "%s is indexed (%d dims)", n.Name, len(info.Index))
			}
			return info.Domain, nil
		}
		return nil, errAt(n.Line, 1, "unknown identifier %s", n.Name)
	case *Call:
		return c.checkCall(n, sc)
	case *Unary:
		xt, err := c.checkExpr(n.X, sc)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			if xt.Kind != TBool {
				return nil, errAt(n.Line, 1, "NOT needs bool, got %s", xt)
			}
			return BoolType, nil
		}
		if xt.Kind != TInt {
			return nil, errAt(n.Line, 1, "unary - needs integer, got %s", xt)
		}
		return IntType(-xt.Hi, -xt.Lo), nil
	case *Binary:
		return c.checkBinary(n, sc)
	case *SetLit:
		if len(n.Elems) == 0 {
			return nil, errAt(n.Line, 1, "empty set literal has no type")
		}
		var elem *Type
		for _, el := range n.Elems {
			t, err := c.checkExpr(el, sc)
			if err != nil {
				return nil, err
			}
			if elem == nil {
				elem = t
			} else if !Compatible(elem, t) {
				return nil, errAt(n.Line, 1, "mixed set literal: %s vs %s", elem, t)
			}
		}
		host := elem
		if host.Kind == TInt {
			// Widen to a small canonical range so membership masks
			// line up; sets over integers must stay within 0..63.
			host = IntType(0, 63)
		}
		return &Type{Kind: TSet, Elem: host}, nil
	case *Quant:
		dt, err := c.resolveDomain(n.Domain)
		if err != nil {
			return nil, err
		}
		inner := newScope(sc)
		inner.bind(n.Var, dt)
		bt, err := c.checkExpr(n.Body, inner)
		if err != nil {
			return nil, err
		}
		if bt.Kind != TBool {
			return nil, errAt(n.Line, 1, "%s body must be bool, got %s", n.Kind, bt)
		}
		return BoolType, nil
	}
	return nil, fmt.Errorf("rules: unhandled expression %T", e)
}

func (c *Checked) checkCall(n *Call, sc *scope) (*Type, error) {
	if info, ok := c.Signals[n.Name]; ok {
		if len(n.Args) != len(info.Index) {
			return nil, errAt(n.Line, 1, "%s has %d index dims, got %d args", n.Name, len(info.Index), len(n.Args))
		}
		for i, a := range n.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return nil, err
			}
			want := info.Index[i]
			if !indexCompatible(want, at) {
				return nil, errAt(n.Line, 1, "%s index %d: %s not usable for %s", n.Name, i, at, want)
			}
		}
		return info.Domain, nil
	}
	if sub, ok := c.Subs[n.Name]; ok {
		if len(n.Args) != len(sub.Params) {
			return nil, errAt(n.Line, 1, "subbase %s needs %d args, got %d", n.Name, len(sub.Params), len(n.Args))
		}
		for i, a := range n.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return nil, err
			}
			want := sub.Params[i].Domain
			if !Compatible(want, at) && !indexCompatible(want, at) {
				return nil, errAt(n.Line, 1, "subbase %s arg %d: %s does not match %s", n.Name, i, at, want)
			}
		}
		return sub.ReturnType, nil
	}
	if !builtins[n.Name] {
		return nil, errAt(n.Line, 1, "unknown function or signal %s", n.Name)
	}
	var argT []*Type
	for _, a := range n.Args {
		t, err := c.checkExpr(a, sc)
		if err != nil {
			return nil, err
		}
		argT = append(argT, t)
	}
	switch n.Name {
	case "ABS":
		if len(argT) != 1 || argT[0].Kind != TInt {
			return nil, errAt(n.Line, 1, "ABS needs one integer")
		}
		hi := argT[0].Hi
		if -argT[0].Lo > hi {
			hi = -argT[0].Lo
		}
		return IntType(0, hi), nil
	case "MIN", "MAX", "DIST":
		if len(argT) != 2 || argT[0].Kind != TInt || argT[1].Kind != TInt {
			return nil, errAt(n.Line, 1, "%s needs two integers", n.Name)
		}
		lo, hi := argT[0].Lo, argT[0].Hi
		if argT[1].Lo < lo {
			lo = argT[1].Lo
		}
		if argT[1].Hi > hi {
			hi = argT[1].Hi
		}
		if n.Name == "DIST" {
			return IntType(0, hi-lo), nil
		}
		return IntType(lo, hi), nil
	case "MEET":
		if len(argT) != 2 || argT[0].Kind != TSym || !Compatible(argT[0], argT[1]) {
			return nil, errAt(n.Line, 1, "MEET needs two symbols of one set")
		}
		return argT[0], nil
	}
	return nil, errAt(n.Line, 1, "unhandled builtin %s", n.Name)
}

// indexCompatible reports whether a value of type got can index a
// dimension of type want.
func indexCompatible(want, got *Type) bool {
	if want.Kind == TSym {
		return Compatible(want, got)
	}
	return got.Kind == TInt
}

func (c *Checked) checkBinary(n *Binary, sc *scope) (*Type, error) {
	xt, err := c.checkExpr(n.X, sc)
	if err != nil {
		return nil, err
	}
	yt, err := c.checkExpr(n.Y, sc)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND", "OR":
		if xt.Kind != TBool || yt.Kind != TBool {
			return nil, errAt(n.Line, 1, "%s needs booleans", n.Op)
		}
		return BoolType, nil
	case "=", "<>":
		if !Compatible(xt, yt) {
			return nil, errAt(n.Line, 1, "cannot compare %s with %s", xt, yt)
		}
		return BoolType, nil
	case "<", "<=", ">", ">=":
		ordered := (xt.Kind == TInt && yt.Kind == TInt) ||
			(xt.Kind == TSym && Compatible(xt, yt))
		if !ordered {
			return nil, errAt(n.Line, 1, "cannot order %s with %s", xt, yt)
		}
		return BoolType, nil
	case "IN":
		if yt.Kind != TSet {
			return nil, errAt(n.Line, 1, "IN needs a set on the right, got %s", yt)
		}
		if yt.Elem.Kind == TSym && !Compatible(xt, yt.Elem) {
			return nil, errAt(n.Line, 1, "cannot test %s membership in %s", xt, yt)
		}
		if yt.Elem.Kind == TInt && xt.Kind != TInt {
			return nil, errAt(n.Line, 1, "cannot test %s membership in %s", xt, yt)
		}
		return BoolType, nil
	case "+", "-":
		if xt.Kind == TSet && Compatible(xt, yt) {
			return xt, nil // set union / subtraction
		}
		if xt.Kind != TInt || yt.Kind != TInt {
			return nil, errAt(n.Line, 1, "%s needs integers or sets", n.Op)
		}
		if n.Op == "+" {
			return IntType(xt.Lo+yt.Lo, xt.Hi+yt.Hi), nil
		}
		return IntType(xt.Lo-yt.Hi, xt.Hi-yt.Lo), nil
	case "*":
		if xt.Kind != TInt || yt.Kind != TInt {
			return nil, errAt(n.Line, 1, "* needs integers")
		}
		// Conservative bounds.
		cands := []int64{xt.Lo * yt.Lo, xt.Lo * yt.Hi, xt.Hi * yt.Lo, xt.Hi * yt.Hi}
		lo, hi := cands[0], cands[0]
		for _, v := range cands[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return IntType(lo, hi), nil
	}
	return nil, errAt(n.Line, 1, "unhandled operator %s", n.Op)
}

func (c *Checked) checkCmd(cmd Cmd, sc *scope, bi *BaseInfo) error {
	switch n := cmd.(type) {
	case *Assign:
		info, ok := c.Signals[n.Name]
		if !ok {
			return errAt(n.Line, 1, "assignment to unknown variable %s", n.Name)
		}
		if info.IsInput {
			return errAt(n.Line, 1, "cannot assign to input %s", n.Name)
		}
		if len(n.Idx) != len(info.Index) {
			return errAt(n.Line, 1, "%s has %d index dims, got %d", n.Name, len(info.Index), len(n.Idx))
		}
		for i, a := range n.Idx {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return err
			}
			if !indexCompatible(info.Index[i], at) {
				return errAt(n.Line, 1, "%s index %d: %s not usable for %s", n.Name, i, at, info.Index[i])
			}
		}
		rt, err := c.checkExpr(n.Rhs, sc)
		if err != nil {
			return err
		}
		if !Compatible(info.Domain, rt) {
			return errAt(n.Line, 1, "cannot assign %s to %s (%s)", rt, n.Name, info.Domain)
		}
		return nil
	case *Return:
		rt, err := c.checkExpr(n.Val, sc)
		if err != nil {
			return err
		}
		if bi.ReturnType == nil {
			bi.ReturnType = rt
		} else if !Compatible(bi.ReturnType, rt) {
			return errAt(n.Line, 1, "inconsistent RETURN types in %s: %s vs %s", bi.RB.Event, bi.ReturnType, rt)
		} else if bi.ReturnType.Kind == TInt {
			// Unify integer ranges.
			lo, hi := bi.ReturnType.Lo, bi.ReturnType.Hi
			if rt.Lo < lo {
				lo = rt.Lo
			}
			if rt.Hi > hi {
				hi = rt.Hi
			}
			bi.ReturnType = IntType(lo, hi)
		}
		return nil
	case *Emit:
		// Events may target another rule base (args must match its
		// parameters) or leave the rule engine (messages to
		// neighbouring nodes, data-path commands like !send); the
		// latter are only arity-unchecked, their args still need to
		// type-check.
		target := c.Bases[n.Event]
		for i, a := range n.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return err
			}
			if target != nil && i < len(target.Params) {
				if !indexCompatible(target.Params[i].Domain, at) && !Compatible(target.Params[i].Domain, at) {
					return errAt(n.Line, 1, "event %s arg %d: %s does not match %s", n.Event, i, at, target.Params[i].Domain)
				}
			}
		}
		if target != nil && len(n.Args) != len(target.Params) {
			return errAt(n.Line, 1, "event %s needs %d args, got %d", n.Event, len(target.Params), len(n.Args))
		}
		return nil
	case *ForAllCmd:
		dt, err := c.resolveDomain(n.Domain)
		if err != nil {
			return err
		}
		inner := newScope(sc)
		inner.bind(n.Var, dt)
		return c.checkCmd(n.Body, inner, bi)
	}
	return fmt.Errorf("rules: unhandled command %T", cmd)
}
