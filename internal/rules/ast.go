package rules

// The abstract syntax tree of a rule program. Position fields carry
// the source location for diagnostics.

// Program is a parsed rule program: declarations plus event-triggered
// rule bases.
type Program struct {
	Consts    []*ConstDecl
	Vars      []*VarDecl
	Inputs    []*InputDecl
	Subbases  []*RuleBase // purely functional rule sets (SUBBASE ... END)
	RuleBases []*RuleBase
}

// RuleBaseByName returns the rule base with the given event name, or
// nil.
func (p *Program) RuleBaseByName(name string) *RuleBase {
	for _, rb := range p.RuleBases {
		if rb.Event == name {
			return rb
		}
	}
	return nil
}

// ConstDecl declares either a named symbol set (a type whose elements
// become symbolic constants) or a named numeric constant:
//
//	CONSTANT fault_states = {safe, faulty, ounsafe}
//	CONSTANT dirs = 4
type ConstDecl struct {
	Name    string
	Symbols []string // non-nil: symbol-set declaration
	Value   Expr     // non-nil: numeric constant expression
	Line    int
}

// DomainExpr is a syntactic domain: an integer range `lo TO hi`, a
// reference to a named symbol set, or an inline symbol set.
type DomainExpr struct {
	Lo, Hi  Expr     // integer range when Lo != nil
	Ref     string   // named set/constant reference
	Symbols []string // inline symbol set
	Count   Expr     // bare constant N meaning the range 0..N-1
	Line    int
}

// VarDecl declares internal state:
//
//	VARIABLE number_unsafe IN 0 TO dirs
//	VARIABLE neighb_state (dirs) IN fault_states
type VarDecl struct {
	Name   string
	Index  []*DomainExpr // nil for scalars
	Domain *DomainExpr
	Line   int
}

// InputDecl declares an externally supplied, read-only signal (header
// fields, link states, buffer occupancies):
//
//	INPUT new_state (dirs) IN fault_states
type InputDecl struct {
	Name   string
	Index  []*DomainExpr
	Domain *DomainExpr
	Line   int
}

// RuleBase is an event handler (ON <event>(<params>) rules END;) or,
// with IsSub set, a subbase: a purely functional set of rules usable
// like a function in premises and conclusions (the paper, Section 4.2:
// "the invocation of a subbase does not imply a sequential processing
// order because of the fully functional interpretation").
type RuleBase struct {
	Event  string
	Params []*Param
	Rules  []*Rule
	IsSub  bool
	Line   int
}

// Param is an event parameter with its finite domain.
type Param struct {
	Name   string
	Domain *DomainExpr
	Line   int
}

// Rule is IF premise THEN commands;
type Rule struct {
	Premise Expr
	Cmds    []Cmd
	Line    int
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is an integer literal.
type NumLit struct {
	Val  int64
	Line int
}

// Ident references a constant, symbol, variable, input, parameter or
// quantifier variable.
type Ident struct {
	Name string
	Line int
}

// Call is an indexed access (variable/input) or builtin function
// application: name(arg, ...).
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Unary is NOT e or -e.
type Unary struct {
	Op   string // "NOT" | "-"
	X    Expr
	Line int
}

// Binary is a binary operation: AND OR = <> < <= > >= + - * IN.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// SetLit is {a, b, c} — a set of symbols or integer expressions.
type SetLit struct {
	Elems []Expr
	Line  int
}

// Quant is EXISTS/FORALL v IN domain: body.
type Quant struct {
	Kind   string // "EXISTS" | "FORALL"
	Var    string
	Domain *DomainExpr
	Body   Expr
	Line   int
}

func (*NumLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Call) exprNode()   {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*SetLit) exprNode() {}
func (*Quant) exprNode()  {}

// Cmd is a conclusion command.
type Cmd interface{ cmdNode() }

// Assign writes a variable (possibly indexed): lhs(args) <- rhs.
type Assign struct {
	Name string
	Idx  []Expr
	Rhs  Expr
	Line int
}

// Return produces the rule base's result value: RETURN(expr).
type Return struct {
	Val  Expr
	Line int
}

// Emit generates an event: !name(args).
type Emit struct {
	Event string
	Args  []Expr
	Line  int
}

// ForAllCmd replicates a command over a finite domain:
// FORALL i IN dirs: !send(i).
type ForAllCmd struct {
	Var    string
	Domain *DomainExpr
	Body   Cmd
	Line   int
}

func (*Assign) cmdNode()    {}
func (*Return) cmdNode()    {}
func (*Emit) cmdNode()      {}
func (*ForAllCmd) cmdNode() {}
