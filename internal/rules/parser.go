package rules

import "strconv"

// Parse lexes and parses a rule program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind TokKind, text string) bool {
	t := p.cur()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = kindName(kind)
		}
		return t, errAt(t.Line, t.Col, "expected %s, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func kindName(k TokKind) string {
	switch k {
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokSemi:
		return "';'"
	case TokColon:
		return "':'"
	case TokAssign:
		return "'<-'"
	case TokRBrace:
		return "'}'"
	}
	return "token"
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			return prog, nil
		case t.Kind == TokKeyword && t.Text == "CONSTANT":
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, d)
		case t.Kind == TokKeyword && t.Text == "VARIABLE":
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, d)
		case t.Kind == TokKeyword && t.Text == "INPUT":
			d, err := p.inputDecl()
			if err != nil {
				return nil, err
			}
			prog.Inputs = append(prog.Inputs, d)
		case t.Kind == TokKeyword && t.Text == "ON":
			rb, err := p.ruleBase()
			if err != nil {
				return nil, err
			}
			prog.RuleBases = append(prog.RuleBases, rb)
		case t.Kind == TokKeyword && t.Text == "SUBBASE":
			rb, err := p.ruleBase()
			if err != nil {
				return nil, err
			}
			rb.IsSub = true
			prog.Subbases = append(prog.Subbases, rb)
		default:
			return nil, errAt(t.Line, t.Col, "expected declaration or rule base, found %s", t)
		}
	}
}

func (p *parser) constDecl() (*ConstDecl, error) {
	kw := p.next() // CONSTANT
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEq, ""); err != nil {
		return nil, err
	}
	d := &ConstDecl{Name: name.Text, Line: kw.Line}
	if p.cur().Kind == TokLBrace {
		syms, err := p.symbolSet()
		if err != nil {
			return nil, err
		}
		d.Symbols = syms
		return d, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	d.Value = e
	return d, nil
}

func (p *parser) symbolSet() ([]string, error) {
	if _, err := p.expect(TokLBrace, ""); err != nil {
		return nil, err
	}
	var syms []string
	for {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		syms = append(syms, t.Text)
		if p.accept(TokComma, "") {
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace, ""); err != nil {
		return nil, err
	}
	return syms, nil
}

func (p *parser) domain() (*DomainExpr, error) {
	t := p.cur()
	if t.Kind == TokLBrace {
		syms, err := p.symbolSet()
		if err != nil {
			return nil, err
		}
		return &DomainExpr{Symbols: syms, Line: t.Line}, nil
	}
	// Either `expr TO expr` or a single identifier referencing a
	// named set. Parse an expression first; if TO follows, it is a
	// range.
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "TO") {
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &DomainExpr{Lo: lo, Hi: hi, Line: t.Line}, nil
	}
	if id, ok := lo.(*Ident); ok {
		return &DomainExpr{Ref: id.Name, Line: t.Line}, nil
	}
	// A bare constant expression N denotes the index range 0..N-1
	// (the paper's "VARIABLE neighb_state (dirs)" style).
	return &DomainExpr{Count: lo, Line: t.Line}, nil
}

func (p *parser) indexDomains() ([]*DomainExpr, error) {
	if !p.accept(TokLParen, "") {
		return nil, nil
	}
	var idx []*DomainExpr
	for {
		d, err := p.domain()
		if err != nil {
			return nil, err
		}
		idx = append(idx, d)
		if p.accept(TokComma, "") {
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen, ""); err != nil {
		return nil, err
	}
	return idx, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	kw := p.next() // VARIABLE
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	idx, err := p.indexDomains()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "IN"); err != nil {
		return nil, err
	}
	dom, err := p.domain()
	if err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.Text, Index: idx, Domain: dom, Line: kw.Line}, nil
}

func (p *parser) inputDecl() (*InputDecl, error) {
	kw := p.next() // INPUT
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	idx, err := p.indexDomains()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "IN"); err != nil {
		return nil, err
	}
	dom, err := p.domain()
	if err != nil {
		return nil, err
	}
	return &InputDecl{Name: name.Text, Index: idx, Domain: dom, Line: kw.Line}, nil
}

func (p *parser) ruleBase() (*RuleBase, error) {
	kw := p.next() // ON
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	rb := &RuleBase{Event: name.Text, Line: kw.Line}
	if p.accept(TokLParen, "") {
		if !p.accept(TokRParen, "") {
			for {
				pn, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokKeyword, "IN"); err != nil {
					return nil, err
				}
				dom, err := p.domain()
				if err != nil {
					return nil, err
				}
				rb.Params = append(rb.Params, &Param{Name: pn.Text, Domain: dom, Line: pn.Line})
				if p.accept(TokComma, "") {
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen, ""); err != nil {
				return nil, err
			}
		}
	}
	for p.cur().Kind == TokKeyword && p.cur().Text == "IF" {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		rb.Rules = append(rb.Rules, r)
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	endName, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if endName.Text != rb.Event {
		return nil, errAt(endName.Line, endName.Col, "END %s does not match ON %s", endName.Text, rb.Event)
	}
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return rb, nil
}

func (p *parser) rule() (*Rule, error) {
	kw := p.next() // IF
	prem, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "THEN"); err != nil {
		return nil, err
	}
	var cmds []Cmd
	for {
		c, err := p.cmd()
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, c)
		if p.accept(TokComma, "") {
			continue
		}
		break
	}
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return &Rule{Premise: prem, Cmds: cmds, Line: kw.Line}, nil
}

func (p *parser) cmd() (Cmd, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "RETURN":
		p.next()
		if _, err := p.expect(TokLParen, ""); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ""); err != nil {
			return nil, err
		}
		return &Return{Val: e, Line: t.Line}, nil
	case t.Kind == TokBang:
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		var args []Expr
		if p.accept(TokLParen, "") {
			if !p.accept(TokRParen, "") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(TokComma, "") {
						continue
					}
					break
				}
				if _, err := p.expect(TokRParen, ""); err != nil {
					return nil, err
				}
			}
		}
		return &Emit{Event: name.Text, Args: args, Line: t.Line}, nil
	case t.Kind == TokKeyword && t.Text == "FORALL":
		p.next()
		v, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "IN"); err != nil {
			return nil, err
		}
		dom, err := p.domain()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon, ""); err != nil {
			return nil, err
		}
		body, err := p.cmd()
		if err != nil {
			return nil, err
		}
		return &ForAllCmd{Var: v.Text, Domain: dom, Body: body, Line: t.Line}, nil
	case t.Kind == TokIdent:
		name := p.next()
		var idx []Expr
		if p.accept(TokLParen, "") {
			if !p.accept(TokRParen, "") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					idx = append(idx, a)
					if p.accept(TokComma, "") {
						continue
					}
					break
				}
				if _, err := p.expect(TokRParen, ""); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(TokAssign, ""); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{Name: name.Text, Idx: idx, Rhs: rhs, Line: t.Line}, nil
	}
	return nil, errAt(t.Line, t.Col, "expected command, found %s", t)
}

// Expression parsing with precedence OR < AND < NOT < rel < add < mul.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokKeyword && p.cur().Text == "OR" {
		op := p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "OR", X: x, Y: y, Line: op.Line}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokKeyword && p.cur().Text == "AND" {
		op := p.next()
		y, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "AND", X: x, Y: y, Line: op.Line}
	}
	return x, nil
}

func (p *parser) notExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokKeyword && t.Text == "NOT" {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x, Line: t.Line}, nil
	}
	if t.Kind == TokKeyword && (t.Text == "EXISTS" || t.Text == "FORALL") {
		p.next()
		v, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "IN"); err != nil {
			return nil, err
		}
		dom, err := p.domain()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon, ""); err != nil {
			return nil, err
		}
		body, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Quant{Kind: t.Text, Var: v.Text, Domain: dom, Body: body, Line: t.Line}, nil
	}
	return p.relExpr()
}

func (p *parser) relExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op string
	switch {
	case t.Kind == TokEq:
		op = "="
	case t.Kind == TokNeq:
		op = "<>"
	case t.Kind == TokLt:
		op = "<"
	case t.Kind == TokLe:
		op = "<="
	case t.Kind == TokGt:
		op = ">"
	case t.Kind == TokGe:
		op = ">="
	case t.Kind == TokKeyword && t.Text == "IN":
		op = "IN"
	default:
		return x, nil
	}
	p.next()
	y, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, X: x, Y: y, Line: t.Line}, nil
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPlus && t.Kind != TokMinus {
			return x, nil
		}
		p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		op := "+"
		if t.Kind == TokMinus {
			op = "-"
		}
		x = &Binary{Op: op, X: x, Y: y, Line: t.Line}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokStar {
		t := p.next()
		y, err := p.factor()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "*", X: x, Y: y, Line: t.Line}
	}
	return x, nil
}

func (p *parser) factor() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad number %q", t.Text)
		}
		return &NumLit{Val: v, Line: t.Line}, nil
	case TokMinus:
		p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, Line: t.Line}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		p.next()
		lit := &SetLit{Line: t.Line}
		if !p.accept(TokRBrace, "") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if p.accept(TokComma, "") {
					continue
				}
				break
			}
			if _, err := p.expect(TokRBrace, ""); err != nil {
				return nil, err
			}
		}
		return lit, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.accept(TokRParen, "") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokComma, "") {
						continue
					}
					break
				}
				if _, err := p.expect(TokRParen, ""); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	}
	return nil, errAt(t.Line, t.Col, "expected expression, found %s", t)
}
