package rules

import (
	"fmt"
	"strings"
)

// ExprString renders an expression in canonical concrete syntax; the
// compiler uses it as a structural identity key for premise atoms and
// signal occurrences.
func ExprString(e Expr) string {
	switch n := e.(type) {
	case *NumLit:
		return fmt.Sprint(n.Val)
	case *Ident:
		return n.Name
	case *Call:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ExprString(a)
		}
		return n.Name + "(" + strings.Join(args, ",") + ")"
	case *Unary:
		if n.Op == "NOT" {
			return "NOT " + ExprString(n.X)
		}
		return "-" + ExprString(n.X)
	case *Binary:
		return "(" + ExprString(n.X) + " " + n.Op + " " + ExprString(n.Y) + ")"
	case *SetLit:
		elems := make([]string, len(n.Elems))
		for i, el := range n.Elems {
			elems[i] = ExprString(el)
		}
		return "{" + strings.Join(elems, ",") + "}"
	case *Quant:
		return fmt.Sprintf("%s %s IN %s: %s", n.Kind, n.Var, domainString(n.Domain), ExprString(n.Body))
	}
	return fmt.Sprintf("<%T>", e)
}

func domainString(d *DomainExpr) string {
	switch {
	case d == nil:
		return "?"
	case d.Symbols != nil:
		return "{" + strings.Join(d.Symbols, ",") + "}"
	case d.Ref != "":
		return d.Ref
	case d.Count != nil:
		return ExprString(d.Count)
	default:
		return ExprString(d.Lo) + " TO " + ExprString(d.Hi)
	}
}
