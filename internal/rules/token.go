// Package rules implements the paper's rule-based routing description
// language (Section 4.2): a declarative language of IF-THEN rules
// grouped into event-triggered rule bases, with finite-domain
// variables, indexed data accesses, predicate-logic quantifiers over
// finite sets, set-valued expressions, and event generation. The
// package provides the lexer, parser, semantic analyser and a
// reference evaluator; the companion package internal/core compiles
// programs to the ARON rule-interpreter hardware model and accounts
// its cost.
package rules

import "fmt"

// TokKind enumerates the lexical token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokKeyword // CONSTANT VARIABLE INPUT ON END IF THEN RETURN IN TO EXISTS FORALL AND OR NOT
	TokAssign  // <-
	TokLParen  // (
	TokRParen  // )
	TokLBrace  // {
	TokRBrace  // }
	TokComma   // ,
	TokSemi    // ;
	TokColon   // :
	TokBang    // !
	TokEq      // =
	TokNeq     // <>
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%q@%d:%d", t.Text, t.Line, t.Col)
}

// keywords of the language, upper case as in the paper's examples.
var keywords = map[string]bool{
	"CONSTANT": true, "VARIABLE": true, "INPUT": true,
	"ON": true, "END": true, "IF": true, "THEN": true, "SUBBASE": true,
	"RETURN": true, "IN": true, "TO": true,
	"EXISTS": true, "FORALL": true,
	"AND": true, "OR": true, "NOT": true,
}

// Error is a positioned language-processing error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenises src. Comments run from "--" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case isAlpha(c):
			l0, c0 := line, col
			j := i
			for j < n && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			word := src[i:j]
			adv(j - i)
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: l0, Col: c0})
		case isDigit(c):
			l0, c0 := line, col
			j := i
			for j < n && isDigit(src[j]) {
				j++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[i:j], Line: l0, Col: c0})
			adv(j - i)
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			emit2 := func(k TokKind) {
				toks = append(toks, Token{Kind: k, Text: two, Line: l0, Col: c0})
				adv(2)
			}
			emit1 := func(k TokKind) {
				toks = append(toks, Token{Kind: k, Text: string(c), Line: l0, Col: c0})
				adv(1)
			}
			switch {
			case two == "<-":
				emit2(TokAssign)
			case two == "<=":
				emit2(TokLe)
			case two == "<>":
				emit2(TokNeq)
			case two == ">=":
				emit2(TokGe)
			case c == '(':
				emit1(TokLParen)
			case c == ')':
				emit1(TokRParen)
			case c == '{':
				emit1(TokLBrace)
			case c == '}':
				emit1(TokRBrace)
			case c == ',':
				emit1(TokComma)
			case c == ';':
				emit1(TokSemi)
			case c == ':':
				emit1(TokColon)
			case c == '!':
				emit1(TokBang)
			case c == '=':
				emit1(TokEq)
			case c == '<':
				emit1(TokLt)
			case c == '>':
				emit1(TokGt)
			case c == '+':
				emit1(TokPlus)
			case c == '-':
				emit1(TokMinus)
			case c == '*':
				emit1(TokStar)
			default:
				return nil, errAt(line, col, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Text: "", Line: line, Col: col})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
