package reconfig

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
)

// swapSim runs one simulation of the given family, optionally with
// mid-run hot-swaps of a freshly built engine of the same algorithm.
func swapSim(t *testing.T, algo string, disableFast, withFaults bool, swaps []int64) (sim.Result, *Swapper) {
	t.Helper()
	var (
		g     topology.Graph
		build func() (routing.Algorithm, func(*network.Network), error)
	)
	switch algo {
	case "nafta":
		m := topology.NewMesh(6, 6)
		g = m
		build = func() (routing.Algorithm, func(*network.Network), error) {
			a, err := rulesets.NewRuleNAFTA(m)
			if err != nil {
				return nil, nil, err
			}
			a.DisableFast = disableFast
			return a, func(n *network.Network) { a.AttachLoads(n) }, nil
		}
	case "routec":
		h := topology.NewHypercube(4)
		g = h
		build = func() (routing.Algorithm, func(*network.Network), error) {
			a, err := rulesets.NewRuleRouteC(h)
			if err != nil {
				return nil, nil, err
			}
			a.DisableFast = disableFast
			return a, nil, nil
		}
	default:
		t.Fatalf("unknown algo %s", algo)
	}
	alg, attach, err := build()
	if err != nil {
		t.Fatal(err)
	}
	var (
		sw  *Swapper
		rcs []sim.Reconfig
	)
	if len(swaps) > 0 {
		sw = NewSwapper(alg)
		alg = sw
		for _, at := range swaps {
			rcs = append(rcs, sim.Reconfig{At: at, Make: func() (routing.Algorithm, error) {
				next, _, err := build()
				return next, err
			}})
		}
	}
	var faults *fault.Set
	if withFaults {
		faults = fault.NewSet()
		faults.FailNode(topology.NodeID(g.Nodes() / 2))
	}
	res, err := sim.Run(sim.Config{
		Graph:         g,
		Algorithm:     alg,
		Rate:          0.06,
		Length:        4,
		Seed:          42,
		Faults:        faults,
		WarmupCycles:  300,
		MeasureCycles: 1200,
		DrainCycles:   30000,
		Reconfigs:     rcs,
		OnNetwork: func(n *network.Network) {
			if attach != nil {
				attach(n)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, sw
}

// N mid-run hot-swaps of the same algorithm must be statistically
// invisible: every counter of the measurement window is bit-identical
// to the swap-free run, on both adapter families and on both the fast
// and the interpreted decision path.
func TestHotSwapBitIdenticalStats(t *testing.T) {
	swaps := []int64{450, 800, 1100}
	for _, algo := range []string{"nafta", "routec"} {
		for _, disableFast := range []bool{false, true} {
			name := algo
			if disableFast {
				name += "/interp"
			} else {
				name += "/fast"
			}
			t.Run(name, func(t *testing.T) {
				base, _ := swapSim(t, algo, disableFast, true, nil)
				swapped, sw := swapSim(t, algo, disableFast, true, swaps)
				if sw.Swaps() != int64(len(swaps)) {
					t.Fatalf("%d of %d swaps fired", sw.Swaps(), len(swaps))
				}
				if base.Stats != swapped.Stats {
					t.Fatalf("stats diverged across hot-swaps:\nno swap: %+v\nswapped: %+v",
						base.Stats, swapped.Stats)
				}
				if !swapped.Drained {
					t.Fatal("swap run failed to drain")
				}
				if !sw.Quiesced() {
					t.Fatalf("%d epochs still live after the drain", sw.LiveEpochs())
				}
			})
		}
	}
}

// A fault-free run across hot-swaps must deliver every worm: zero
// drops, zero kills, nothing misrouted into a dead end.
func TestHotSwapLosesNoWorms(t *testing.T) {
	for _, algo := range []string{"nafta", "routec"} {
		res, sw := swapSim(t, algo, false, false, []int64{450, 800, 1100})
		if res.Stats.Dropped != 0 || res.Stats.Killed != 0 {
			t.Fatalf("%s: %d dropped, %d killed across hot-swaps",
				algo, res.Stats.Dropped, res.Stats.Killed)
		}
		if res.Stats.DeadlockSuspected {
			t.Fatalf("%s: watchdog fired across hot-swaps", algo)
		}
		if !res.Drained || !sw.Quiesced() {
			t.Fatalf("%s: drained=%v, %d live epochs", algo, res.Drained, sw.LiveEpochs())
		}
	}
}
