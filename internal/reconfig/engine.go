package reconfig

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

// The regime tags artifacts are stamped with (kept as package-local
// aliases so artifact.go does not need the routing import).
const (
	routingRegimeNAFTA  = routing.RegimeNAFTA
	routingRegimeRouteC = routing.RegimeRouteC
	routingRegimeMaze   = routing.RegimeMaze
	mazeMaxPorts        = routing.MazeMaxPorts
)

// NewEngine binds an artifact's tables to topology g and returns the
// decision engine: the rule-table adapter of the artifact's family,
// its ARON tables loaded from the serialized configuration data
// instead of an in-process table fill. The rule program source ships
// inside the artifact and is re-analysed here, so the loaded tables
// are validated against the exact program they were compiled from
// (core.LoadConfig re-derives the index layout and refuses any
// mismatch).
func NewEngine(art *Artifact, g topology.Graph) (routing.Algorithm, error) {
	b, err := NewEngineBuilder(art, g)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// EngineBuilder amortises the expensive parts of NewEngine — program
// re-analysis and decision-table deserialization — across many engine
// constructions from the same artifact. The failover plane builds one
// engine per anticipated fault class; re-running the analysis per
// class would dominate bundle load time. Engines built by one builder
// share the analysed program and the deserialized tables read-only,
// so two engines of the same builder must not decide concurrently —
// build one builder per concurrent lane, exactly as the Service
// builds one engine per shard.
type EngineBuilder struct {
	art    *Artifact
	g      topology.Graph
	prog   *rulesets.Program
	tables map[string]*core.CompiledBase
}

// NewEngineBuilder validates the artifact against topology g,
// re-analyses the embedded rule program and deserializes the decision
// tables once, ready to stamp out engines.
func NewEngineBuilder(art *Artifact, g topology.Graph) (*EngineBuilder, error) {
	if err := art.Validate(); err != nil {
		return nil, err
	}
	var meta []rulesets.BaseMeta
	switch art.Algorithm {
	case "nafta":
		if _, ok := g.(*topology.Mesh); !ok {
			return nil, fmt.Errorf("reconfig: nafta artifact needs a mesh topology, got %T", g)
		}
		meta = rulesets.NAFTAMeta
	case "routec":
		h, ok := g.(*topology.Hypercube)
		if !ok {
			return nil, fmt.Errorf("reconfig: routec artifact needs a hypercube topology, got %T", g)
		}
		if art.CubeDim != h.Dim {
			return nil, fmt.Errorf("reconfig: artifact compiled for a %d-cube, topology is a %d-cube", art.CubeDim, h.Dim)
		}
		meta = rulesets.RouteCMeta
	case "maze":
		if g.Ports() != art.Ports {
			return nil, fmt.Errorf("reconfig: maze artifact compiled for %d ports, %s has %d", art.Ports, g.Name(), g.Ports())
		}
		meta = rulesets.MazeMeta
	default:
		return nil, fmt.Errorf("reconfig: unknown algorithm %q", art.Algorithm)
	}
	prog, err := rulesets.Load(art.Name, art.Source, meta)
	if err != nil {
		return nil, fmt.Errorf("reconfig: artifact program: %w", err)
	}
	tables, err := art.bindTables(prog)
	if err != nil {
		return nil, err
	}
	return &EngineBuilder{art: art, g: g, prog: prog, tables: tables}, nil
}

// Build constructs one engine over the builder's shared program and
// tables (the adapter's dense compilation and scratch state are still
// per-engine).
func (b *EngineBuilder) Build() (routing.Algorithm, error) {
	switch b.art.Algorithm {
	case "nafta":
		return rulesets.NewRuleNAFTAFromProgram(b.g.(*topology.Mesh), b.prog, b.tables)
	case "routec":
		return rulesets.NewRuleRouteCFromProgram(b.g.(*topology.Hypercube), b.prog, b.tables)
	case "maze":
		return rulesets.NewRuleMazeFromProgram(b.g, b.prog, b.tables)
	}
	return nil, fmt.Errorf("reconfig: unknown algorithm %q", b.art.Algorithm)
}

// bindTables loads every serialized decision table against the
// artifact's own analysed program.
func (a *Artifact) bindTables(prog *rulesets.Program) (map[string]*core.CompiledBase, error) {
	out := make(map[string]*core.CompiledBase, len(a.Bases))
	for _, bt := range a.Bases {
		cb, err := core.LoadConfig(prog.Checked, bytes.NewReader(bt.Data))
		if err != nil {
			return nil, fmt.Errorf("reconfig: table %s: %w", bt.Name, err)
		}
		if cb.Base != bt.Name {
			return nil, fmt.Errorf("reconfig: table slot %s holds configuration for %s", bt.Name, cb.Base)
		}
		out[bt.Name] = cb
	}
	return out, nil
}
