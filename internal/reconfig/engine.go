package reconfig

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

// The regime tags artifacts are stamped with (kept as package-local
// aliases so artifact.go does not need the routing import).
const (
	routingRegimeNAFTA  = routing.RegimeNAFTA
	routingRegimeRouteC = routing.RegimeRouteC
)

// NewEngine binds an artifact's tables to topology g and returns the
// decision engine: the rule-table adapter of the artifact's family,
// its ARON tables loaded from the serialized configuration data
// instead of an in-process table fill. The rule program source ships
// inside the artifact and is re-analysed here, so the loaded tables
// are validated against the exact program they were compiled from
// (core.LoadConfig re-derives the index layout and refuses any
// mismatch).
func NewEngine(art *Artifact, g topology.Graph) (routing.Algorithm, error) {
	if err := art.Validate(); err != nil {
		return nil, err
	}
	switch art.Algorithm {
	case "nafta":
		m, ok := g.(*topology.Mesh)
		if !ok {
			return nil, fmt.Errorf("reconfig: nafta artifact needs a mesh topology, got %T", g)
		}
		prog, err := rulesets.Load(art.Name, art.Source, rulesets.NAFTAMeta)
		if err != nil {
			return nil, fmt.Errorf("reconfig: artifact program: %w", err)
		}
		tables, err := art.bindTables(prog)
		if err != nil {
			return nil, err
		}
		return rulesets.NewRuleNAFTAFromProgram(m, prog, tables)
	case "routec":
		h, ok := g.(*topology.Hypercube)
		if !ok {
			return nil, fmt.Errorf("reconfig: routec artifact needs a hypercube topology, got %T", g)
		}
		if art.CubeDim != h.Dim {
			return nil, fmt.Errorf("reconfig: artifact compiled for a %d-cube, topology is a %d-cube", art.CubeDim, h.Dim)
		}
		prog, err := rulesets.Load(art.Name, art.Source, rulesets.RouteCMeta)
		if err != nil {
			return nil, fmt.Errorf("reconfig: artifact program: %w", err)
		}
		tables, err := art.bindTables(prog)
		if err != nil {
			return nil, err
		}
		return rulesets.NewRuleRouteCFromProgram(h, prog, tables)
	}
	return nil, fmt.Errorf("reconfig: unknown algorithm %q", art.Algorithm)
}

// bindTables loads every serialized decision table against the
// artifact's own analysed program.
func (a *Artifact) bindTables(prog *rulesets.Program) (map[string]*core.CompiledBase, error) {
	out := make(map[string]*core.CompiledBase, len(a.Bases))
	for _, bt := range a.Bases {
		cb, err := core.LoadConfig(prog.Checked, bytes.NewReader(bt.Data))
		if err != nil {
			return nil, fmt.Errorf("reconfig: table %s: %w", bt.Name, err)
		}
		if cb.Base != bt.Name {
			return nil, fmt.Errorf("reconfig: table slot %s holds configuration for %s", bt.Name, cb.Base)
		}
		out[bt.Name] = cb
	}
	return out, nil
}
