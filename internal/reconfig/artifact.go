// Package reconfig implements online rule-base reconfiguration — the
// capability the paper's title promises: routing algorithms are
// compiled off-line into tables that are loaded into the rule
// interpreter's RAM, so a deployed router can be re-programmed in the
// field without new hardware.
//
// The package has three layers:
//
//   - versioned table artifacts: a compiled rule program (source plus
//     the filled ARON tables of its decision bases) serialized into a
//     self-describing, checksummed file with a version epoch, produced
//     by `rulec -artifact` and loadable at runtime (Engine);
//   - an RCU-style Swapper that lets a *running* network replace its
//     decision engine mid-simulation: in-flight worms keep routing
//     under the table epoch that admitted them, new head flits use the
//     new tables, and a quiescence protocol retires an old epoch once
//     no pinned worm remains;
//   - a concurrent decision Service (behind cmd/routerd) that serves
//     single and batched route decisions from sharded per-worker
//     engines and atomically reloads artifacts under load.
package reconfig

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rulesets"
)

// FormatVersion is the current artifact format revision.
const FormatVersion = 1

// artifactMagic leads every encoded artifact; the trailing byte is the
// framing revision (independent of the gob payload's FormatVersion).
var artifactMagic = []byte("ARONTBL\x01")

// maxArtifactBytes bounds the declared payload length so a corrupt
// header cannot make Decode allocate unbounded memory.
const maxArtifactBytes = 64 << 20

// WriteFrame writes one checksummed frame — magic, big-endian payload
// length, payload, SHA-256 of the payload — and returns the checksum.
// This is the artifact's on-disk framing, exported so sibling formats
// (the failover bundle) carry their own magic over identical framing.
func WriteFrame(w io.Writer, magic, payload []byte) (sum [sha256.Size]byte, err error) {
	sum = sha256.Sum256(payload)
	if _, err = w.Write(magic); err != nil {
		return sum, err
	}
	if err = binary.Write(w, binary.BigEndian, uint64(len(payload))); err != nil {
		return sum, err
	}
	if _, err = w.Write(payload); err != nil {
		return sum, err
	}
	_, err = w.Write(sum[:])
	return sum, err
}

// ReadFrame reads one frame written by WriteFrame, verifying the
// expected magic, the payload length bound and the checksum. kind
// names the format in error messages ("artifact", "bundle").
func ReadFrame(r io.Reader, magic []byte, kind string) (payload []byte, sum [sha256.Size]byte, err error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, sum, fmt.Errorf("reconfig: reading %s header: %w", kind, err)
	}
	if !bytes.Equal(head, magic) {
		return nil, sum, fmt.Errorf("reconfig: not a rule-table %s (bad magic)", kind)
	}
	var n uint64
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, sum, fmt.Errorf("reconfig: reading %s length: %w", kind, err)
	}
	if n > maxArtifactBytes {
		return nil, sum, fmt.Errorf("reconfig: %s payload of %d bytes exceeds the %d byte bound", kind, n, maxArtifactBytes)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, sum, fmt.Errorf("reconfig: reading %s payload: %w", kind, err)
	}
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, sum, fmt.Errorf("reconfig: reading %s checksum: %w", kind, err)
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, sum, fmt.Errorf("reconfig: %s checksum mismatch (corrupted or truncated)", kind)
	}
	return payload, sum, nil
}

// BaseTable is one serialized decision base: the name and the
// configuration data exactly as core.SaveConfig emits it — the same
// bytes `rulec -savecfg` writes, so the artifact cannot drift from the
// standalone configuration path.
type BaseTable struct {
	Name string
	Data []byte
}

// Artifact is a versioned, self-describing rule-table artifact: the
// full rule program source (the artifact can be audited and re-checked
// without the producing binary), the compiled tables of the decision
// bases, the deadlock-regime tag for the hot-swap safety gate and the
// version epoch the producer assigned.
type Artifact struct {
	FormatVersion int
	// Algorithm selects the adapter family: "nafta" or "routec".
	Algorithm string
	// Name is the human-readable program name (e.g. "NAFTA").
	Name string
	// Epoch is the producer-assigned table version. A Service reload
	// moves to max(current+1, Epoch), so monotonically versioned
	// artifacts keep their numbering while unversioned ones still
	// advance the epoch.
	Epoch uint64
	// Regime is the deadlock-regime tag of the engine (see
	// routing.RegimeOf); the swap safety gate compares it.
	Regime string
	// CubeDim and Adaptivity parameterise the routec program; both are
	// zero for nafta (whose program is topology-size independent).
	CubeDim    int
	Adaptivity int
	// Ports parameterises the maze program (generated per port count);
	// zero for the other families, so pre-maze artifact checksums are
	// unchanged (gob omits zero fields).
	Ports int
	// Source is the complete rule program.
	Source string
	// Bases holds the compiled decision tables, in decision order.
	Bases []BaseTable

	// sum is the payload checksum, remembered by Decode/Encode.
	sum [sha256.Size]byte
}

// BuildOptions parameterise Build.
type BuildOptions struct {
	// Epoch is the version stamp (default 1).
	Epoch uint64
	// CubeDim is the hypercube dimension for routec (default 4).
	CubeDim int
	// Adaptivity is routec's adaptivity width (default 2, the width
	// the simulator adapter implements).
	Adaptivity int
	// Ports is the port count the maze program is generated for
	// (default 4, the mesh/torus degree).
	Ports int
}

// Build compiles the builtin program of the given algorithm family
// ("maze", "nafta" or "routec") into an artifact.
func Build(algo string, opts BuildOptions) (*Artifact, error) {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	var (
		prog  *rulesets.Program
		bases []string
		err   error
	)
	art := &Artifact{
		FormatVersion: FormatVersion,
		Algorithm:     algo,
		Epoch:         opts.Epoch,
	}
	switch algo {
	case "nafta":
		prog, err = rulesets.LoadNAFTA()
		bases = rulesets.NAFTADecisionBases
		art.Regime = routingRegimeNAFTA
	case "routec":
		if opts.CubeDim == 0 {
			opts.CubeDim = 4
		}
		if opts.Adaptivity == 0 {
			opts.Adaptivity = 2
		}
		if opts.Adaptivity != 2 {
			return nil, fmt.Errorf("reconfig: the routec adapter implements adaptivity width 2, not %d", opts.Adaptivity)
		}
		prog, err = rulesets.LoadRouteC(opts.CubeDim, opts.Adaptivity)
		bases = rulesets.RouteCDecisionBases
		art.CubeDim, art.Adaptivity = opts.CubeDim, opts.Adaptivity
		art.Regime = routingRegimeRouteC
	case "maze":
		if opts.Ports == 0 {
			opts.Ports = 4
		}
		if opts.Ports < 2 || opts.Ports > mazeMaxPorts {
			return nil, fmt.Errorf("reconfig: maze supports 2 to %d ports, not %d", mazeMaxPorts, opts.Ports)
		}
		prog, err = rulesets.LoadMaze(opts.Ports)
		bases = rulesets.MazeDecisionBases
		art.Ports = opts.Ports
		art.Regime = routingRegimeMaze
	default:
		return nil, fmt.Errorf("reconfig: unknown algorithm %q (valid: maze, nafta, routec)", algo)
	}
	if err != nil {
		return nil, err
	}
	art.Name = prog.Name
	art.Source = prog.Source
	for _, name := range bases {
		cb, err := core.CompileBase(prog.Checked, name, core.CompileOptions{})
		if err != nil {
			return nil, fmt.Errorf("reconfig: compiling %s: %w", name, err)
		}
		var buf bytes.Buffer
		if err := cb.SaveConfig(&buf); err != nil {
			return nil, fmt.Errorf("reconfig: serializing %s: %w", name, err)
		}
		art.Bases = append(art.Bases, BaseTable{Name: name, Data: buf.Bytes()})
	}
	return art, nil
}

// payload renders the gob payload the checksum covers.
func (a *Artifact) payload() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, fmt.Errorf("reconfig: encoding artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// Encode writes the framed artifact: magic, payload length, gob
// payload, SHA-256 checksum of the payload.
func (a *Artifact) Encode(w io.Writer) error {
	payload, err := a.payload()
	if err != nil {
		return err
	}
	a.sum, err = WriteFrame(w, artifactMagic, payload)
	return err
}

// Decode reads a framed artifact, verifying magic, length and
// checksum.
func Decode(r io.Reader) (*Artifact, error) {
	payload, sum, err := ReadFrame(r, artifactMagic, "artifact")
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(a); err != nil {
		return nil, fmt.Errorf("reconfig: decoding artifact: %w", err)
	}
	if a.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("reconfig: artifact format v%d, this build reads v%d", a.FormatVersion, FormatVersion)
	}
	a.sum = sum
	return a, nil
}

// Checksum returns the hex SHA-256 of the artifact payload (computing
// it if the artifact has not been encoded or decoded yet).
func (a *Artifact) Checksum() (string, error) {
	if a.sum == ([sha256.Size]byte{}) {
		payload, err := a.payload()
		if err != nil {
			return "", err
		}
		a.sum = sha256.Sum256(payload)
	}
	return hex.EncodeToString(a.sum[:]), nil
}

// Validate performs the structural checks shared by every loader.
func (a *Artifact) Validate() error {
	if a.FormatVersion != FormatVersion {
		return fmt.Errorf("reconfig: artifact format v%d, this build reads v%d", a.FormatVersion, FormatVersion)
	}
	switch a.Algorithm {
	case "nafta", "routec", "maze":
	default:
		return fmt.Errorf("reconfig: artifact names unknown algorithm %q", a.Algorithm)
	}
	if a.Source == "" {
		return fmt.Errorf("reconfig: artifact carries no rule program source")
	}
	if len(a.Bases) == 0 {
		return fmt.Errorf("reconfig: artifact carries no decision tables")
	}
	return nil
}

// Summary renders the human-readable artifact dump (pinned by golden
// tests): identity, epoch, regime, checksum and one row per decision
// table.
func (a *Artifact) Summary() (string, error) {
	sum, err := a.Checksum()
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "artifact: %s (%s) format v%d\n", a.Name, a.Algorithm, a.FormatVersion)
	fmt.Fprintf(&b, "epoch:    %d\n", a.Epoch)
	fmt.Fprintf(&b, "regime:   %s\n", a.Regime)
	if a.Algorithm == "routec" {
		fmt.Fprintf(&b, "params:   d=%d a=%d\n", a.CubeDim, a.Adaptivity)
	}
	if a.Algorithm == "maze" {
		fmt.Fprintf(&b, "params:   ports=%d\n", a.Ports)
	}
	fmt.Fprintf(&b, "source:   %d bytes\n", len(a.Source))
	fmt.Fprintf(&b, "checksum: sha256:%s\n", sum)
	tb := metrics.NewTable("decision tables", "base", "bytes")
	for _, bt := range a.Bases {
		tb.AddRow(bt.Name, len(bt.Data))
	}
	b.WriteString(tb.String())
	return b.String(), nil
}
