package reconfig

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

func newTestService(t *testing.T, shards int) (*Service, *Artifact, *topology.Mesh) {
	t.Helper()
	art := buildNAFTA(t, 1)
	m := topology.NewMesh(6, 6)
	svc, err := NewService(art, m, shards)
	if err != nil {
		t.Fatal(err)
	}
	return svc, art, m
}

func injectionRequest(rng *rand.Rand, nodes int) DecisionRequest {
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes)
	for dst == src {
		dst = rng.Intn(nodes)
	}
	return DecisionRequest{
		Node: src, InPort: routing.InjectionPort, InVC: 0,
		Src: src, Dst: dst, Length: 4,
	}
}

// Service decisions must agree with a directly built adapter on the
// same topology and fault-free state.
func TestServiceDecisionsMatchAdapter(t *testing.T) {
	svc, _, m := newTestService(t, 4)
	ref, err := rulesets.NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var buf []routing.Candidate
	for i := 0; i < 500; i++ {
		req := injectionRequest(rng, m.Nodes())
		got, epoch, err := svc.Decide(&req, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if epoch != 1 {
			t.Fatalf("decision under epoch %d, want 1", epoch)
		}
		hdr := routing.Header{Src: topology.NodeID(req.Src), Dst: topology.NodeID(req.Dst), Length: req.Length}
		want := ref.Route(routing.Request{Node: topology.NodeID(req.Node), InPort: req.InPort, Hdr: &hdr})
		if len(got) != len(want) {
			t.Fatalf("request %+v: %d candidates, reference has %d", req, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("request %+v: candidate %d is %+v, reference %+v", req, j, got[j], want[j])
			}
		}
		buf = got
	}
}

func TestServiceRejectsMalformedRequests(t *testing.T) {
	svc, _, m := newTestService(t, 1)
	bad := []DecisionRequest{
		{Node: -1, Src: 0, Dst: 1},
		{Node: m.Nodes(), Src: 0, Dst: 1},
		{Node: 0, Src: -3, Dst: 1},
		{Node: 0, Src: 0, Dst: 99},
		{Node: 0, InPort: 77, Src: 0, Dst: 1},
	}
	for _, req := range bad {
		if _, _, err := svc.Decide(&req, nil); err == nil {
			t.Errorf("malformed request %+v accepted", req)
		}
	}
	if got := svc.Metrics().Failed; got != int64(len(bad)) {
		t.Errorf("failed counter %d, want %d", got, len(bad))
	}
}

// The steady-state decision path must not allocate: the artifact's
// promise is the simulator's zero-alloc fast path, served concurrently.
func TestServiceDecideZeroAllocs(t *testing.T) {
	svc, _, m := newTestService(t, 2)
	req := injectionRequest(rand.New(rand.NewSource(1)), m.Nodes())
	buf := make([]routing.Candidate, 0, 8)
	// Warm the path (lazy scratch growth inside the machine happens on
	// early decisions).
	for i := 0; i < 100; i++ {
		if _, _, err := svc.Decide(&req, buf[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := svc.Decide(&req, buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decide allocates %.1f objects per call", allocs)
	}
}

// Reload under concurrent decision load: no decision may fail, the
// epoch must advance, and every post-reload decision must come from
// the new epoch. Run with -race this doubles as the locking proof.
func TestServiceConcurrentReload(t *testing.T) {
	svc, art, m := newTestService(t, 4)
	const (
		workers   = 8
		perWorker = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]routing.Candidate, 0, 8)
			for i := 0; i < perWorker; i++ {
				req := injectionRequest(rng, m.Nodes())
				cands, _, err := svc.Decide(&req, buf[:0])
				if err != nil {
					errs <- err
					return
				}
				if len(cands) == 0 {
					errs <- errUnroutable
					return
				}
				buf = cands
			}
		}(int64(w + 1))
	}
	// Two reloads race with the decision load.
	for r := 0; r < 2; r++ {
		next := *art
		next.Epoch = 0 // unversioned: Reload advances to current+1
		if _, err := svc.Reload(&next); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ms := svc.Metrics()
	if ms.Epoch != 3 {
		t.Fatalf("epoch %d after two reloads, want 3", ms.Epoch)
	}
	if ms.Failed != 0 || ms.Unroutable != 0 {
		t.Fatalf("%d failed, %d unroutable under reload", ms.Failed, ms.Unroutable)
	}
	if ms.Decisions != workers*perWorker {
		t.Fatalf("%d decisions recorded, want %d", ms.Decisions, workers*perWorker)
	}
	if ms.Reloads != 2 {
		t.Fatalf("%d reloads recorded, want 2", ms.Reloads)
	}
	// A versioned artifact keeps its own (higher) epoch.
	next := *art
	next.Epoch = 40
	if epoch, err := svc.Reload(&next); err != nil || epoch != 40 {
		t.Fatalf("versioned reload: epoch %d, err %v (want 40)", epoch, err)
	}
}

var errUnroutable = &unroutableError{}

type unroutableError struct{}

func (*unroutableError) Error() string { return "fault-free decision judged unroutable" }
