package reconfig

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/routing"
)

// ErrRegimeMismatch is wrapped by Swap when the incoming engine's
// deadlock regime differs from the current one and force is off.
var ErrRegimeMismatch = fmt.Errorf("deadlock regimes incompatible")

// epochEngine is one table generation: the engine, its epoch number
// and the count of in-flight worms admitted under it.
type epochEngine struct {
	epoch  uint64
	alg    routing.Algorithm
	pinned atomic.Int64
}

// tableInvalidator is implemented by engines whose dense tables can be
// retired explicitly (the rule adapters); retiring an epoch calls it
// so stale fast-path state fails loudly instead of routing silently.
type tableInvalidator interface{ InvalidateTables() }

// loadAttacher matches engines that consume the network's load view.
type loadAttacher interface{ AttachLoads(routing.LoadView) }

// blocker mirrors the sim harness's traffic-exclusion view.
type blocker interface{ Blocks() *fault.BlockInfo }

// Swapper is the RCU-style hot-swap shell around a routing engine: it
// is itself a routing.Algorithm, so a network built on a Swapper can
// replace its decision tables mid-run.
//
// Epoch protocol: every message materialised into the network is
// pinned to the current epoch (AdmitEpoch, stored in its header);
// every routing call dispatches on the header's epoch, so an in-flight
// worm keeps deciding on the tables that admitted it while new head
// flits use the new generation. When the last worm of a non-current
// epoch leaves the network (ReleaseEpoch from delivery, drop or fault
// kill), the epoch is retired: the engine's dense tables are
// invalidated and the OnRetire hooks fire — the quiescence point after
// which no state of the old generation is reachable.
//
// Safety gate: Swap refuses an engine whose deadlock regime differs
// from the current one (worms routed under incompatible VC disciplines
// could close a wait cycle together); force overrides the gate for
// callers that drained the network first (network.Reconfigure does
// exactly that).
//
// Route/RouteAppend/Steps/NoteHop/UpdateFaults are as concurrency-safe
// as the wrapped engines (the simulator is single-goroutine per
// network); AdmitEpoch/ReleaseEpoch/Swap use atomics plus a mutex so
// observers on other goroutines see consistent state.
type Swapper struct {
	mu   sync.Mutex
	cur  atomic.Pointer[epochEngine]
	live map[uint64]*epochEngine // all un-retired epochs, including current

	loads  routing.LoadView
	faults *fault.Set

	swaps    atomic.Int64
	retired  atomic.Int64
	onSwap   []func(oldEpoch, newEpoch uint64)
	onRetire []func(epoch uint64)
}

// NewSwapper wraps the initial engine at epoch 1 (epoch 0 is the
// "no epoch source" sentinel in message headers).
func NewSwapper(initial routing.Algorithm) *Swapper {
	s := &Swapper{live: make(map[uint64]*epochEngine)}
	e := &epochEngine{epoch: 1, alg: initial}
	s.live[e.epoch] = e
	s.cur.Store(e)
	return s
}

// Current returns the engine of the current epoch.
func (s *Swapper) Current() routing.Algorithm { return s.cur.Load().alg }

// CurrentEpoch returns the current table epoch.
func (s *Swapper) CurrentEpoch() uint64 { return s.cur.Load().epoch }

// Swaps returns the number of completed swaps.
func (s *Swapper) Swaps() int64 { return s.swaps.Load() }

// Retired returns the number of retired epochs.
func (s *Swapper) Retired() int64 { return s.retired.Load() }

// LiveEpochs returns the number of un-retired engine generations (1
// when quiesced).
func (s *Swapper) LiveEpochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Quiesced reports whether only the current epoch is live.
func (s *Swapper) Quiesced() bool { return s.LiveEpochs() == 1 }

// OnSwap registers a hook fired after every completed swap.
func (s *Swapper) OnSwap(f func(oldEpoch, newEpoch uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSwap = append(s.onSwap, f)
}

// OnEpochRetired registers a hook fired when an epoch quiesces.
func (s *Swapper) OnEpochRetired(f func(epoch uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRetire = append(s.onRetire, f)
}

// Swap installs next as the current engine and returns the epoch
// transition. The previous engine keeps serving its pinned worms until
// they leave the network; if none are pinned it retires immediately.
// The incoming engine receives the last known fault state (the
// Information Units are shared router state, not table state) and the
// attached load view before it becomes visible.
func (s *Swapper) Swap(next routing.Algorithm, force bool) (oldEpoch, newEpoch uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if !force {
		if or, nr := routing.RegimeOf(cur.alg), routing.RegimeOf(next); or != nr {
			return cur.epoch, cur.epoch, fmt.Errorf(
				"reconfig: %w: %s runs %q, %s runs %q (drain the network and force to swap anyway)",
				ErrRegimeMismatch, cur.alg.Name(), or, next.Name(), nr)
		}
	}
	if s.faults != nil {
		next.UpdateFaults(s.faults)
	}
	if la, ok := next.(loadAttacher); ok && s.loads != nil {
		la.AttachLoads(s.loads)
	}
	ne := &epochEngine{epoch: cur.epoch + 1, alg: next}
	s.live[ne.epoch] = ne
	s.cur.Store(ne)
	s.swaps.Add(1)
	for _, f := range s.onSwap {
		f(cur.epoch, ne.epoch)
	}
	if cur.pinned.Load() == 0 {
		s.retireLocked(cur)
	}
	return cur.epoch, ne.epoch, nil
}

// SwapPrecomputed installs an engine that already carries the
// post-fault distributed state for fault set f — the failover fast
// path. Unlike Swap, the incoming engine is NOT replayed with
// UpdateFaults: skipping the diagnosis fixpoint at fault time is the
// whole point of a precompiled backup (the plane ran the fixpoint
// when the bundle was loaded). Old live generations still serving
// pinned worms are updated synchronously — their worms must route
// around the new faults too — while generations without pinned worms
// retire untouched. The deadlock-regime gate applies unchanged; a
// precompiled backup of an incompatible regime is always refused
// (there is no force path: failover happens under live traffic).
func (s *Swapper) SwapPrecomputed(next routing.Algorithm, f *fault.Set) (oldEpoch, newEpoch uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if or, nr := routing.RegimeOf(cur.alg), routing.RegimeOf(next); or != nr {
		return cur.epoch, cur.epoch, fmt.Errorf(
			"reconfig: %w: %s runs %q, precompiled backup %s runs %q",
			ErrRegimeMismatch, cur.alg.Name(), or, next.Name(), nr)
	}
	s.faults = f
	for _, e := range s.live {
		if e.pinned.Load() > 0 {
			e.alg.UpdateFaults(f)
		}
	}
	if la, ok := next.(loadAttacher); ok && s.loads != nil {
		la.AttachLoads(s.loads)
	}
	ne := &epochEngine{epoch: cur.epoch + 1, alg: next}
	s.live[ne.epoch] = ne
	s.cur.Store(ne)
	s.swaps.Add(1)
	for _, fn := range s.onSwap {
		fn(cur.epoch, ne.epoch)
	}
	if cur.pinned.Load() == 0 {
		s.retireLocked(cur)
	}
	return cur.epoch, ne.epoch, nil
}

// retireLocked removes a quiesced epoch; s.mu must be held.
func (s *Swapper) retireLocked(e *epochEngine) {
	delete(s.live, e.epoch)
	s.retired.Add(1)
	if inv, ok := e.alg.(tableInvalidator); ok {
		inv.InvalidateTables()
	}
	for _, f := range s.onRetire {
		f(e.epoch)
	}
}

// AdmitEpoch pins one message to the current epoch and returns it.
// The network calls this when a message materialises.
func (s *Swapper) AdmitEpoch() uint64 {
	e := s.cur.Load()
	e.pinned.Add(1)
	return e.epoch
}

// ReleaseEpoch unpins one message from its admission epoch (delivery,
// drop, or fault kill). When a non-current epoch's pin count reaches
// zero its engine is retired.
func (s *Swapper) ReleaseEpoch(epoch uint64) {
	if cur := s.cur.Load(); cur.epoch == epoch {
		cur.pinned.Add(-1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live[epoch]
	if e == nil {
		return // unknown or already retired: tolerate (cold-swapped network)
	}
	if e.pinned.Add(-1) == 0 && e != s.cur.Load() {
		s.retireLocked(e)
	}
}

// engineFor resolves the engine a message routes on: its admission
// epoch's engine while that epoch is live, the current engine
// otherwise (epoch 0 marks messages admitted before the swapper was
// attached).
func (s *Swapper) engineFor(epoch uint64) routing.Algorithm {
	e := s.cur.Load()
	if epoch == e.epoch || epoch == 0 {
		return e.alg
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.live[epoch]; old != nil {
		return old.alg
	}
	return e.alg
}

// --- routing.Algorithm, dispatching on the message's pinned epoch ---

func (s *Swapper) Name() string { return s.Current().Name() }
func (s *Swapper) NumVCs() int  { return s.Current().NumVCs() }

// DeadlockRegime forwards the current engine's regime tag.
func (s *Swapper) DeadlockRegime() string { return routing.RegimeOf(s.Current()) }

// AllocNeedsCredit forwards the current engine's credit-gated
// allocation requirement (routing.CreditGatedVA). VA gating is a
// router-wide property, so — like NumVCs — it follows the current
// engine rather than a message's pinned epoch; gating is conservative
// for the engines that don't need it, so a mid-swap mix is safe.
func (s *Swapper) AllocNeedsCredit() bool { return routing.AllocNeedsCredit(s.Current()) }

// FlushOnFault forwards the reconfiguration-flush question to the
// engine the message routes on (routing.ReconfigFlusher): whether its
// held resources are orientation-ordered is that engine's call.
func (s *Swapper) FlushOnFault(h *routing.Header) bool {
	if fl, ok := s.engineFor(h.Epoch).(routing.ReconfigFlusher); ok {
		return fl.FlushOnFault(h)
	}
	return false
}

func (s *Swapper) Route(req routing.Request) []routing.Candidate {
	return s.engineFor(req.Hdr.Epoch).Route(req)
}

// RouteAppend keeps the wrapped engine's allocation-free path.
func (s *Swapper) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return routing.RouteInto(s.engineFor(req.Hdr.Epoch), req, buf)
}

func (s *Swapper) Steps(req routing.Request) int {
	return s.engineFor(req.Hdr.Epoch).Steps(req)
}

func (s *Swapper) NoteHop(req routing.Request, chosen routing.Candidate) {
	s.engineFor(req.Hdr.Epoch).NoteHop(req, chosen)
}

// UnreachableVerdict forwards the verdict question to the engine the
// message routes on; engines without a verdict plane never certify a
// drop (routing.UnreachableJudge).
func (s *Swapper) UnreachableVerdict(req routing.Request) bool {
	if judge, ok := s.engineFor(req.Hdr.Epoch).(routing.UnreachableJudge); ok {
		return judge.UnreachableVerdict(req)
	}
	return false
}

// UpdateFaults forwards the diagnosis to every live engine generation:
// the fault state is shared router knowledge — old-epoch worms must
// route around new faults too — and is replayed onto engines swapped
// in later.
func (s *Swapper) UpdateFaults(f *fault.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
	for _, e := range s.live {
		e.alg.UpdateFaults(f)
	}
}

// AttachLoads forwards the load view to every live engine that
// consumes one and replays it onto engines swapped in later.
func (s *Swapper) AttachLoads(v routing.LoadView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads = v
	for _, e := range s.live {
		if la, ok := e.alg.(loadAttacher); ok {
			la.AttachLoads(v)
		}
	}
}

// Blocks exposes the current engine's fault-block view (the traffic
// generator excludes disabled nodes through it).
func (s *Swapper) Blocks() *fault.BlockInfo {
	if b, ok := s.Current().(blocker); ok {
		return b.Blocks()
	}
	return nil
}

var (
	_ routing.Algorithm         = (*Swapper)(nil)
	_ routing.BufferedAlgorithm = (*Swapper)(nil)
)
