package reconfig

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/topology"
)

// DecisionRequest is the wire form of one routing decision: the
// deciding router, the arrival context and the message header state.
type DecisionRequest struct {
	Node   int `json:"node"`
	InPort int `json:"in_port"` // -1 = injection at the source
	InVC   int `json:"in_vc"`

	Src    int `json:"src"`
	Dst    int `json:"dst"`
	Length int `json:"length"`

	Misroutes   int  `json:"misroutes,omitempty"`
	Marked      bool `json:"marked,omitempty"`
	Phase       int  `json:"phase,omitempty"`
	DetourLevel int  `json:"detour_level,omitempty"`
	VNet        int  `json:"vnet,omitempty"`
}

// Decision is the wire form of one decision result.
type Decision struct {
	Candidates []routing.Candidate `json:"candidates"`
	// Epoch is the table epoch that made the decision.
	Epoch uint64 `json:"epoch"`
	// Unroutable is set when the engine returned no admissible output
	// (a legal answer under faults, distinct from a request error).
	Unroutable bool   `json:"unroutable,omitempty"`
	Error      string `json:"error,omitempty"`
}

// shard is one independently locked engine replica. Each shard owns a
// full engine instance (engines keep per-decision scratch state, so
// they are single-threaded by construction) plus a scratch header, so
// the steady-state decision path performs zero allocations.
type shard struct {
	mu    sync.Mutex
	eng   routing.Algorithm
	epoch uint64
	hdr   routing.Header
}

// Service is the concurrent decision engine behind cmd/routerd:
// requests are spread round-robin over sharded engine replicas, and
// Reload atomically replaces every replica with engines built from a
// new artifact while decisions keep flowing — callers mid-decision
// finish on the old epoch, the next decision uses the new tables, and
// the old engines' dense tables are invalidated once unreachable.
type Service struct {
	g      topology.Graph
	shards []*shard
	rr     atomic.Uint64

	// reloadMu serializes Reload against itself; decisions only take
	// shard locks.
	reloadMu sync.Mutex
	epoch    atomic.Uint64

	infoMu   sync.Mutex
	algo     string
	name     string
	checksum string

	decisions  atomic.Int64
	failed     atomic.Int64
	unroutable atomic.Int64
	reloads    atomic.Int64

	latMu sync.Mutex
	lat   *metrics.Histogram
}

// MetricsSnapshot is the JSON document served by routerd's /metrics.
type MetricsSnapshot struct {
	Algorithm  string  `json:"algorithm"`
	Table      string  `json:"table"`
	Checksum   string  `json:"checksum"`
	Epoch      uint64  `json:"epoch"`
	Shards     int     `json:"shards"`
	Decisions  int64   `json:"decisions"`
	Failed     int64   `json:"failed"`
	Unroutable int64   `json:"unroutable"`
	Reloads    int64   `json:"reloads"`
	LatencyP50 float64 `json:"latency_us_p50"`
	LatencyP95 float64 `json:"latency_us_p95"`
	LatencyP99 float64 `json:"latency_us_p99"`
}

// NewService builds a decision service over nshards engine replicas
// bound from the artifact.
func NewService(art *Artifact, g topology.Graph, nshards int) (*Service, error) {
	if nshards <= 0 {
		nshards = 1
	}
	s := &Service{
		g: g,
		// Decision latencies sit in the microsecond range; 2µs bins up
		// to 2ms keep the percentiles meaningful without tracking raw
		// samples.
		lat: metrics.NewHistogram(2, 1000),
	}
	engines, err := s.buildEngines(art, nshards)
	if err != nil {
		return nil, err
	}
	s.shards = make([]*shard, nshards)
	for i := range s.shards {
		s.shards[i] = &shard{eng: engines[i], epoch: art.Epoch}
	}
	s.epoch.Store(art.Epoch)
	s.noteArtifact(art)
	return s, nil
}

// buildEngines binds nshards independent engine replicas (each replica
// re-analyses the artifact program, so replicas share no state).
func (s *Service) buildEngines(art *Artifact, nshards int) ([]routing.Algorithm, error) {
	engines := make([]routing.Algorithm, nshards)
	for i := range engines {
		eng, err := NewEngine(art, s.g)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return engines, nil
}

func (s *Service) noteArtifact(art *Artifact) {
	sum, _ := art.Checksum()
	s.infoMu.Lock()
	s.algo = art.Algorithm
	s.name = art.Name
	s.checksum = sum
	s.infoMu.Unlock()
}

// Epoch returns the current table epoch.
func (s *Service) Epoch() uint64 { return s.epoch.Load() }

// Decide performs one routing decision, appending the admissible
// outputs to buf (pass buf[:0] of a reused slice for an allocation-free
// call). It returns the candidates, the deciding table epoch, and an
// error only for malformed requests — an empty candidate set with a
// nil error means the engine judged the message unroutable under the
// current fault state.
func (s *Service) Decide(req *DecisionRequest, buf []routing.Candidate) ([]routing.Candidate, uint64, error) {
	nodes := s.g.Nodes()
	if req.Node < 0 || req.Node >= nodes {
		s.failed.Add(1)
		return buf, 0, fmt.Errorf("node %d out of range [0,%d)", req.Node, nodes)
	}
	if req.Src < 0 || req.Src >= nodes || req.Dst < 0 || req.Dst >= nodes {
		s.failed.Add(1)
		return buf, 0, fmt.Errorf("src/dst (%d,%d) out of range [0,%d)", req.Src, req.Dst, nodes)
	}
	if req.InPort != routing.InjectionPort && (req.InPort < 0 || req.InPort >= s.g.Ports()) {
		s.failed.Add(1)
		return buf, 0, fmt.Errorf("in_port %d out of range", req.InPort)
	}
	length := req.Length
	if length <= 0 {
		length = 1
	}

	sh := s.shards[s.rr.Add(1)%uint64(len(s.shards))]
	start := time.Now()
	sh.mu.Lock()
	sh.hdr = routing.Header{
		Src:         topology.NodeID(req.Src),
		Dst:         topology.NodeID(req.Dst),
		Length:      length,
		Misroutes:   req.Misroutes,
		Marked:      req.Marked,
		Phase:       req.Phase,
		DetourLevel: req.DetourLevel,
		VNet:        req.VNet,
	}
	out := routing.RouteInto(sh.eng, routing.Request{
		Node:   topology.NodeID(req.Node),
		InPort: req.InPort,
		InVC:   req.InVC,
		Hdr:    &sh.hdr,
	}, buf)
	epoch := sh.epoch
	sh.mu.Unlock()
	elapsed := time.Since(start)

	s.decisions.Add(1)
	if len(out) == len(buf) {
		s.unroutable.Add(1)
	}
	s.latMu.Lock()
	s.lat.Add(float64(elapsed) / float64(time.Microsecond))
	s.latMu.Unlock()
	return out, epoch, nil
}

// Reload atomically swaps every shard to engines built from art. The
// new engines are fully constructed before any shard lock is taken, so
// the per-shard critical section is a pointer exchange; a decision in
// flight on a shard finishes on the old engine, the next one sees the
// new tables. The epoch moves to max(current+1, art.Epoch) and the old
// engines' dense tables are invalidated.
func (s *Service) Reload(art *Artifact) (uint64, error) {
	return s.ReloadPrepared(art, nil)
}

// ReloadPrepared is Reload with the cumulative fault state f applied
// to the new engines *before* any shard sees them: the diagnosis
// fixpoint runs on the freshly built engines off to the side, then the
// per-shard flip installs tables that already know the faults. This is
// how the fleet registry rolls a new table version out against live
// fault state without a window in which fresh engines serve fault-free
// tables (the correctness cliff a plain Reload+UpdateFaults sequence
// would open). A nil f is a plain reload.
func (s *Service) ReloadPrepared(art *Artifact, f *fault.Set) (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	engines, err := s.buildEngines(art, len(s.shards))
	if err != nil {
		return s.epoch.Load(), err
	}
	if f != nil && !f.Empty() {
		for _, eng := range engines {
			eng.UpdateFaults(f)
		}
	}
	newEpoch := s.epoch.Load() + 1
	if art.Epoch > newEpoch {
		newEpoch = art.Epoch
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		old := sh.eng
		sh.eng = engines[i]
		sh.epoch = newEpoch
		sh.mu.Unlock()
		if inv, ok := old.(tableInvalidator); ok {
			inv.InvalidateTables()
		}
	}
	s.epoch.Store(newEpoch)
	s.reloads.Add(1)
	s.noteArtifact(art)
	return newEpoch, nil
}

// InstallEngines atomically flips every shard to the prebuilt engines
// — the failover fast path behind routerd's /fault endpoint. Unlike
// Reload, nothing is compiled, deserialized or replayed here: the
// engines were constructed when the failover bundle was loaded and
// already carry their post-fault state, so the per-shard critical
// section is a pointer exchange. len(engines) must equal the shard
// count (the failover plane builds one engine lane per shard). The
// epoch advances by one and the old engines' dense tables are
// invalidated.
func (s *Service) InstallEngines(engines []routing.Algorithm) (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if len(engines) != len(s.shards) {
		return s.epoch.Load(), fmt.Errorf("reconfig: %d engines for %d shards", len(engines), len(s.shards))
	}
	newEpoch := s.epoch.Load() + 1
	for i, sh := range s.shards {
		sh.mu.Lock()
		old := sh.eng
		sh.eng = engines[i]
		sh.epoch = newEpoch
		sh.mu.Unlock()
		if inv, ok := old.(tableInvalidator); ok {
			inv.InvalidateTables()
		}
	}
	s.epoch.Store(newEpoch)
	return newEpoch, nil
}

// UpdateFaults runs the live-recompute fallback on every shard engine:
// the diagnosis fixpoint for fault set f, serialized per shard so
// decisions in flight finish first. This is the slow path the failover
// plane measures against for uncovered fault classes.
func (s *Service) UpdateFaults(f *fault.Set) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.eng.UpdateFaults(f)
		sh.mu.Unlock()
	}
}

// Shards returns the number of engine replicas (one failover engine
// lane is needed per shard).
func (s *Service) Shards() int { return len(s.shards) }

// Metrics returns a consistent-enough snapshot of the service
// counters (individual counters are exact; the set is not atomic).
func (s *Service) Metrics() MetricsSnapshot {
	s.infoMu.Lock()
	algo, name, sum := s.algo, s.name, s.checksum
	s.infoMu.Unlock()
	s.latMu.Lock()
	p50 := s.lat.Percentile(0.50)
	p95 := s.lat.Percentile(0.95)
	p99 := s.lat.Percentile(0.99)
	s.latMu.Unlock()
	return MetricsSnapshot{
		Algorithm:  algo,
		Table:      name,
		Checksum:   sum,
		Epoch:      s.epoch.Load(),
		Shards:     len(s.shards),
		Decisions:  s.decisions.Load(),
		Failed:     s.failed.Load(),
		Unroutable: s.unroutable.Load(),
		Reloads:    s.reloads.Load(),
		LatencyP50: p50,
		LatencyP95: p95,
		LatencyP99: p99,
	}
}
