package reconfig

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

// fakeAlg is a minimal engine with an observable lifecycle.
type fakeAlg struct {
	name        string
	regime      string
	invalidated bool
	faults      *fault.Set
	loads       routing.LoadView
	port        int // distinctive Route answer
}

func (f *fakeAlg) Name() string { return f.name }
func (f *fakeAlg) NumVCs() int  { return 2 }
func (f *fakeAlg) Route(routing.Request) []routing.Candidate {
	return []routing.Candidate{{Port: f.port}}
}
func (f *fakeAlg) Steps(routing.Request) int                  { return 1 }
func (f *fakeAlg) NoteHop(routing.Request, routing.Candidate) {}
func (f *fakeAlg) UpdateFaults(fs *fault.Set)                 { f.faults = fs }
func (f *fakeAlg) DeadlockRegime() string                     { return f.regime }
func (f *fakeAlg) InvalidateTables()                          { f.invalidated = true }
func (f *fakeAlg) AttachLoads(v routing.LoadView)             { f.loads = v }

// stubLoads is an idle load view.
type stubLoads struct{}

func (stubLoads) OutFree(topology.NodeID, int, int) bool    { return true }
func (stubLoads) Credits(topology.NodeID, int, int) int     { return 4 }
func (stubLoads) QueuedFlits(topology.NodeID, int, int) int { return 0 }

func routeEpoch(s *Swapper, epoch uint64) int {
	hdr := routing.Header{Epoch: epoch}
	return s.Route(routing.Request{Hdr: &hdr})[0].Port
}

func TestSwapperEpochPinning(t *testing.T) {
	a := &fakeAlg{name: "a", regime: "r", port: 10}
	b := &fakeAlg{name: "b", regime: "r", port: 20}
	s := NewSwapper(a)
	if got := s.CurrentEpoch(); got != 1 {
		t.Fatalf("initial epoch %d, want 1", got)
	}
	if e := s.AdmitEpoch(); e != 1 {
		t.Fatalf("admitted under epoch %d, want 1", e)
	}
	oldE, newE, err := s.Swap(b, false)
	if err != nil || oldE != 1 || newE != 2 {
		t.Fatalf("swap: %d -> %d, %v", oldE, newE, err)
	}
	// The pinned worm keeps routing on a; new admissions use b.
	if p := routeEpoch(s, 1); p != 10 {
		t.Fatalf("epoch-1 worm routed by port %d, want old engine (10)", p)
	}
	if e := s.AdmitEpoch(); e != 2 {
		t.Fatalf("post-swap admission epoch %d, want 2", e)
	}
	if p := routeEpoch(s, 2); p != 20 {
		t.Fatalf("epoch-2 worm routed by port %d, want new engine (20)", p)
	}
	if s.LiveEpochs() != 2 || a.invalidated {
		t.Fatalf("old epoch retired early (live=%d, invalidated=%v)", s.LiveEpochs(), a.invalidated)
	}
	// Quiescence: the last epoch-1 worm leaves, epoch 1 retires.
	var retired []uint64
	s.OnEpochRetired(func(e uint64) { retired = append(retired, e) })
	s.ReleaseEpoch(1)
	if !a.invalidated {
		t.Fatal("retired engine's tables were not invalidated")
	}
	if s.LiveEpochs() != 1 || !s.Quiesced() {
		t.Fatalf("epoch 1 not retired: %d live", s.LiveEpochs())
	}
	if len(retired) != 1 || retired[0] != 1 {
		t.Fatalf("retire hooks saw %v, want [1]", retired)
	}
	// A late lookup for the dead epoch falls forward to the current
	// engine rather than resurrecting the retired one.
	if p := routeEpoch(s, 1); p != 20 {
		t.Fatalf("dead-epoch route answered by port %d, want current engine (20)", p)
	}
	if s.Swaps() != 1 || s.Retired() != 1 {
		t.Fatalf("counters: %d swaps, %d retired", s.Swaps(), s.Retired())
	}
}

func TestSwapperImmediateRetireWhenUnpinned(t *testing.T) {
	a := &fakeAlg{name: "a", regime: "r"}
	s := NewSwapper(a)
	if _, _, err := s.Swap(&fakeAlg{name: "b", regime: "r"}, false); err != nil {
		t.Fatal(err)
	}
	if !a.invalidated || s.LiveEpochs() != 1 {
		t.Fatalf("unpinned old epoch survived the swap (live=%d)", s.LiveEpochs())
	}
}

func TestSwapperRegimeGate(t *testing.T) {
	a := &fakeAlg{name: "a", regime: "mesh-vnet/2vc"}
	c := &fakeAlg{name: "c", regime: "cube-phase/5vc"}
	s := NewSwapper(a)
	if _, _, err := s.Swap(c, false); !errors.Is(err, ErrRegimeMismatch) {
		t.Fatalf("incompatible regimes swapped: %v", err)
	}
	if s.CurrentEpoch() != 1 || s.Current() != routing.Algorithm(a) {
		t.Fatal("refused swap still changed the engine")
	}
	if _, _, err := s.Swap(c, true); err != nil {
		t.Fatalf("forced swap refused: %v", err)
	}
	if s.CurrentEpoch() != 2 {
		t.Fatalf("forced swap epoch %d, want 2", s.CurrentEpoch())
	}
}

// The fault state and load view are router knowledge, not table
// state: engines swapped in later must receive both.
func TestSwapperReplaysStateOntoNewEngines(t *testing.T) {
	a := &fakeAlg{name: "a", regime: "r"}
	s := NewSwapper(a)
	fs := fault.NewSet()
	fs.FailNode(3)
	s.UpdateFaults(fs)
	s.AttachLoads(stubLoads{})
	if a.faults != fs || a.loads == nil {
		t.Fatal("state not forwarded to the live engine")
	}
	b := &fakeAlg{name: "b", regime: "r"}
	if _, _, err := s.Swap(b, false); err != nil {
		t.Fatal(err)
	}
	if b.faults != fs {
		t.Fatal("fault state not replayed onto the swapped-in engine")
	}
	if b.loads == nil {
		t.Fatal("load view not replayed onto the swapped-in engine")
	}
}

// System-level version of the stale-vector hardening: a reference to
// the retired rule-table adapter must fail loudly on its next decision
// (its dense tables were invalidated at retirement) instead of
// routing on tables of a dead epoch.
func TestSwapperRetiredAdapterFailsLoudly(t *testing.T) {
	m := topology.NewMesh(4, 4)
	old, err := rulesets.NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	old.AttachLoads(stubLoads{})
	s := NewSwapper(old)
	s.AttachLoads(stubLoads{})
	s.AdmitEpoch() // one in-flight worm pins epoch 1

	next, err := rulesets.NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Swap(next, false); err != nil {
		t.Fatal(err)
	}
	hdr := routing.Header{Src: 0, Dst: 5, Length: 4, Epoch: 1}
	req := routing.Request{Node: 0, InPort: routing.InjectionPort, Hdr: &hdr}
	if got := s.Route(req); len(got) == 0 {
		t.Fatal("pinned worm unroutable before retirement")
	}
	s.ReleaseEpoch(1) // quiescence: epoch 1 retires, tables invalidated

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("retired adapter still served a decision")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invalidated dense table") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	old.Route(req)
}
