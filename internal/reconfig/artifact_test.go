package reconfig

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rulesets"
	"repro/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update` to create it)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			t.Name(), path, got, want)
	}
}

func buildNAFTA(t *testing.T, epoch uint64) *Artifact {
	t.Helper()
	art, err := Build("nafta", BuildOptions{Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestArtifactRoundTrip(t *testing.T) {
	for _, algo := range []string{"nafta", "routec"} {
		art, err := Build(algo, BuildOptions{Epoch: 7})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var buf bytes.Buffer
		if err := art.Encode(&buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got.Algorithm != algo || got.Epoch != 7 || got.Source != art.Source {
			t.Fatalf("%s: round trip changed identity: %+v", algo, got)
		}
		if len(got.Bases) != len(art.Bases) {
			t.Fatalf("%s: %d bases in, %d out", algo, len(art.Bases), len(got.Bases))
		}
		for i := range got.Bases {
			if !bytes.Equal(got.Bases[i].Data, art.Bases[i].Data) {
				t.Fatalf("%s: base %s data changed across the round trip", algo, got.Bases[i].Name)
			}
		}
		wantSum, _ := art.Checksum()
		gotSum, _ := got.Checksum()
		if wantSum != gotSum {
			t.Fatalf("%s: checksum drifted: %s vs %s", algo, wantSum, gotSum)
		}
	}
}

// Every flipped byte anywhere in the file must be caught — by the
// checksum for payload corruption, by the magic/length checks for
// header corruption. Nothing may decode successfully.
func TestArtifactCorruptionDetected(t *testing.T) {
	art := buildNAFTA(t, 1)
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, pos := range []int{0, len(artifactMagic), len(artifactMagic) + 8, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Errorf("flipping byte %d of %d decoded successfully", pos, len(raw))
		}
	}
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Error("truncated artifact decoded successfully")
	}
}

// The artifact's serialized tables must be the exact SaveConfig bytes
// of a fresh compile — one emission path shared with `rulec -savecfg`.
func TestArtifactBasesMatchSaveConfig(t *testing.T) {
	art := buildNAFTA(t, 1)
	p, err := rulesets.LoadNAFTA()
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Bases) != len(rulesets.NAFTADecisionBases) {
		t.Fatalf("artifact has %d bases, expected %d", len(art.Bases), len(rulesets.NAFTADecisionBases))
	}
	for i, name := range rulesets.NAFTADecisionBases {
		cb, err := core.CompileBase(p.Checked, name, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := cb.SaveConfig(&want); err != nil {
			t.Fatal(err)
		}
		if art.Bases[i].Name != name {
			t.Fatalf("base %d is %s, expected %s", i, art.Bases[i].Name, name)
		}
		if !bytes.Equal(art.Bases[i].Data, want.Bytes()) {
			t.Fatalf("base %s: artifact bytes differ from SaveConfig bytes", name)
		}
	}
}

// Same program, same options — byte-identical artifact. The checksum
// is part of the public surface (operators compare it across hosts),
// so the encoding must be deterministic.
func TestArtifactEncodingDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildNAFTA(t, 3).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildNAFTA(t, 3).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two builds of the same program encode differently")
	}
}

// The human-readable dump is pinned: artifact serialization cannot
// drift without the golden catching it.
func TestArtifactSummaryGolden(t *testing.T) {
	s, err := buildNAFTA(t, 1).Summary()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "artifact_nafta_summary", []byte(s))
}

func TestNewEngineFromArtifact(t *testing.T) {
	art := buildNAFTA(t, 1)
	m := topology.NewMesh(6, 6)
	eng, err := NewEngine(art, m)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() == "" || eng.NumVCs() <= 0 {
		t.Fatalf("engine identity: %q / %d VCs", eng.Name(), eng.NumVCs())
	}
	// Wrong topology family must be refused.
	if _, err := NewEngine(art, topology.NewHypercube(4)); err == nil {
		t.Fatal("nafta artifact bound to a hypercube")
	}
	// Wrong cube dimension must be refused.
	cube, err := Build("routec", BuildOptions{CubeDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(cube, topology.NewHypercube(5)); err == nil {
		t.Fatal("d=4 artifact bound to a 5-cube")
	}
	if _, err := NewEngine(cube, topology.NewHypercube(4)); err != nil {
		t.Fatal(err)
	}
}
