package reconfig

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/routing"
)

// swapCtx is the Swapper's per-worker decision context
// (routing.DecisionContexter): it mirrors the swapper's epoch dispatch
// but routes every decision through a per-worker child context of the
// epoch's engine, so workers never share mutable decision scratch.
//
// Child contexts are materialised only from SyncDecisionContexts,
// which the network calls single-threaded at the top of every parallel
// cycle (routing.ContextSyncer). Engine generations change exclusively
// between cycles — Swap installs new engines from Reconfigure, and in
// parallel runs epoch retirement is deferred to the serial commit
// phase — so the epoch→context map is stable while workers read it
// concurrently.
type swapCtx struct {
	s   *Swapper
	obs routing.RuleObserver
	// byEpoch maps each live epoch to this worker's decision context
	// for its engine (the engine itself when it is ConcurrentRoutable).
	byEpoch map[uint64]routing.Algorithm
}

// NewDecisionContext returns a per-worker decision context dispatching
// on message epochs like the swapper itself. Call SyncDecisionContexts
// before first use and again whenever a swap may have installed a new
// engine generation; a sync error means some live engine cannot decide
// concurrently and the caller must fall back to serial stepping.
func (s *Swapper) NewDecisionContext(obs routing.RuleObserver) routing.Algorithm {
	return &swapCtx{s: s, obs: obs, byEpoch: make(map[uint64]routing.Algorithm)}
}

// SyncDecisionContexts materialises child contexts for engine
// generations installed since the last sync and drops contexts of
// retired epochs (routing.ContextSyncer). Must not run concurrently
// with decisions on this context.
func (c *swapCtx) SyncDecisionContexts() error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	for epoch, e := range c.s.live {
		if _, ok := c.byEpoch[epoch]; ok {
			continue
		}
		switch alg := e.alg.(type) {
		case routing.DecisionContexter:
			c.byEpoch[epoch] = alg.NewDecisionContext(c.obs)
		case routing.ConcurrentRoutable:
			c.byEpoch[epoch] = alg
		default:
			return fmt.Errorf("reconfig: engine %q (epoch %d) supports neither decision contexts nor concurrent decisions", e.alg.Name(), epoch)
		}
	}
	for epoch := range c.byEpoch {
		if _, ok := c.s.live[epoch]; !ok {
			delete(c.byEpoch, epoch)
		}
	}
	return nil
}

// ctxFor resolves the decision context a message routes on, mirroring
// Swapper.engineFor: the admission epoch's context while live, the
// current epoch's otherwise.
func (c *swapCtx) ctxFor(epoch uint64) routing.Algorithm {
	if epoch != 0 {
		if ctx, ok := c.byEpoch[epoch]; ok {
			return ctx
		}
	}
	return c.byEpoch[c.s.cur.Load().epoch]
}

func (c *swapCtx) Name() string { return c.s.Name() }
func (c *swapCtx) NumVCs() int  { return c.s.NumVCs() }

func (c *swapCtx) Route(req routing.Request) []routing.Candidate {
	return c.ctxFor(req.Hdr.Epoch).Route(req)
}

func (c *swapCtx) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return routing.RouteInto(c.ctxFor(req.Hdr.Epoch), req, buf)
}

func (c *swapCtx) Steps(req routing.Request) int {
	return c.ctxFor(req.Hdr.Epoch).Steps(req)
}

func (c *swapCtx) NoteHop(req routing.Request, chosen routing.Candidate) {
	c.ctxFor(req.Hdr.Epoch).NoteHop(req, chosen)
}

// UnreachableVerdict asks the message's epoch context for the verdict
// (routing.UnreachableJudge), matching Swapper.UnreachableVerdict.
func (c *swapCtx) UnreachableVerdict(req routing.Request) bool {
	if judge, ok := c.ctxFor(req.Hdr.Epoch).(routing.UnreachableJudge); ok {
		return judge.UnreachableVerdict(req)
	}
	return false
}

func (c *swapCtx) UpdateFaults(*fault.Set) {
	panic("reconfig: decision contexts share the swapper's fault state; call UpdateFaults on the Swapper")
}

// FlushLookups folds the lookup counts of every child context into its
// parent engine (routing.LookupFlusher; called from the network's
// serial commit phase).
func (c *swapCtx) FlushLookups() {
	for _, ctx := range c.byEpoch {
		if lf, ok := ctx.(routing.LookupFlusher); ok {
			lf.FlushLookups()
		}
	}
}

var (
	_ routing.DecisionContexter = (*Swapper)(nil)
	_ routing.BufferedAlgorithm = (*swapCtx)(nil)
	_ routing.ContextSyncer     = (*swapCtx)(nil)
	_ routing.LookupFlusher     = (*swapCtx)(nil)
)
