package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// Tree is the strawman fault-tolerant algorithm of Section 2.1:
// recompute a spanning tree of the operational network whenever faults
// occur and route every message along tree edges only. It satisfies
// condition 3 (any connected pair remains routable) but almost never
// uses minimal paths and concentrates all traffic on the n-1 tree
// links — the motivation for smarter algorithms.
//
// Deadlock freedom: tree paths ascend to the lowest common ancestor and
// then descend. Channel dependencies only go up->up, up->down and
// down->down, so the channel dependency graph is acyclic with a single
// virtual channel.
type Tree struct {
	g      topology.Graph
	faults *fault.Set
	tree   *topology.SpanningTree
	// Rebuilds counts how often the tree was recomputed (each rebuild
	// is a global reconfiguration — the overhead the paper wants to
	// avoid).
	Rebuilds int
}

// NewTree builds spanning-tree routing on g (initially fault free,
// rooted at node 0).
func NewTree(g topology.Graph) *Tree {
	t := &Tree{g: g, faults: fault.NewSet()}
	t.UpdateFaults(t.faults)
	t.Rebuilds = 0 // initial construction is not a reconfiguration
	return t
}

func (t *Tree) Name() string               { return "tree" }
func (t *Tree) NumVCs() int                { return 1 }
func (t *Tree) Steps(Request) int          { return 1 }
func (t *Tree) NoteHop(Request, Candidate) {}

// UpdateFaults recomputes the spanning tree rooted at the lowest
// operational node.
func (t *Tree) UpdateFaults(f *fault.Set) {
	t.faults = f
	root := topology.Invalid
	for n := 0; n < t.g.Nodes(); n++ {
		if !f.NodeFaulty(topology.NodeID(n)) {
			root = topology.NodeID(n)
			break
		}
	}
	if root == topology.Invalid {
		t.tree = nil
		return
	}
	t.tree = topology.BuildSpanningTree(t.g, root, f.Filter())
	t.Rebuilds++
}

func (t *Tree) Route(req Request) []Candidate {
	if t.tree == nil {
		return nil
	}
	next := t.tree.NextHop(req.Node, req.Hdr.Dst)
	if next == topology.Invalid {
		return nil
	}
	p, ok := t.g.PortTo(req.Node, next)
	if !ok {
		return nil
	}
	return []Candidate{{Port: p, VC: 0}}
}

// CurrentTree exposes the active spanning tree (for the evaluation
// harness: link-utilisation and path-length statistics).
func (t *Tree) CurrentTree() *topology.SpanningTree { return t.tree }
