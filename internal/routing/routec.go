package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// NodeState is ROUTE_C's per-node safety state (Chiu/Wu 1996). The
// states form the finite lattice safe < ounsafe < sunsafe < faulty in
// which the propagation scheme computes monotone updates, which is why
// it "settles fast" (the paper: the way error states are combined
// forms a partial order).
type NodeState int

const (
	// StateSafe marks a fully usable node.
	StateSafe NodeState = iota
	// StateOUnsafe (ordinarily unsafe) marks a node with at least two
	// not-safe neighbours; routing avoids it when alternatives exist.
	StateOUnsafe
	// StateSUnsafe (strongly unsafe) marks a node with at least two
	// faulty neighbours or two faulty incident links; routing treats
	// it as a last resort.
	StateSUnsafe
	// StateFaulty marks a failed node.
	StateFaulty
)

// String returns the state mnemonic used in the paper's Figure 4.
func (s NodeState) String() string {
	switch s {
	case StateSafe:
		return "safe"
	case StateOUnsafe:
		return "ounsafe"
	case StateSUnsafe:
		return "sunsafe"
	case StateFaulty:
		return "faulty"
	}
	return "invalid"
}

// ROUTE_C virtual-channel layout. The paper: ROUTE_C "uses five virtual
// channels"; deadlock avoidance first uses all links with increasing
// addresses, then all links with decreasing addresses [Kon90], and
// "by applying the method from [BoC96] three additional virtual
// channels suffice" for the fault detours.
const (
	routecVCUp      = 0 // ascending phase
	routecVCDown    = 1 // descending phase
	routecVCDetour0 = 2 // first detour level; levels 1..3 map to VCs 2..4
	routecMaxDetour = 3
)

// RouteC is the fault-tolerant hypercube routing algorithm ROUTE_C.
// Every routing decision takes exactly two rule interpretations
// (decide_dir, then decide_vc), matching the paper's Section 5.
type RouteC struct {
	cube   *topology.Hypercube
	faults *fault.Set
	states []NodeState
	// PropagationRounds records how many neighbour-exchange waves the
	// last UpdateFaults needed to settle (the paper argues the partial
	// order makes this fast).
	PropagationRounds int
}

// NewRouteC builds ROUTE_C on hypercube h with no faults.
func NewRouteC(h *topology.Hypercube) *RouteC {
	r := &RouteC{cube: h}
	r.UpdateFaults(fault.NewSet())
	return r
}

func (r *RouteC) Name() string { return "routec" }

// NumVCs is five: up, down, and three detour channels.
func (r *RouteC) NumVCs() int { return 5 }

// DeadlockRegime tags the phase/detour-level VC discipline for the
// hot-swap safety gate.
func (r *RouteC) DeadlockRegime() string { return RegimeRouteC }

// Steps is always two: decide_dir followed by decide_vc.
func (r *RouteC) Steps(Request) int { return 2 }

// States exposes the per-node safety states (evaluation harness and
// the rule-base equivalence tests).
func (r *RouteC) States() []NodeState { return r.states }

// TotallyUnsafe reports whether no safe node remains, the easily
// detected global state under which condition 3 can no longer be
// guaranteed ("this will only occur if more than n-1 nodes are
// faulty").
func (r *RouteC) TotallyUnsafe() bool {
	for _, s := range r.states {
		if s == StateSafe {
			return false
		}
	}
	return true
}

// notSafeOver reports whether, seen from node n over port p, the
// neighbour appears not safe: the link is faulty (perceived state
// lfault), the neighbour failed, or the neighbour's propagated state
// is unsafe.
func (r *RouteC) notSafeOver(n topology.NodeID, p int, states []NodeState) bool {
	nb := r.cube.Neighbor(n, p)
	if nb == topology.Invalid {
		return false
	}
	if r.faults.LinkFaulty(n, nb) || r.faults.NodeFaulty(nb) {
		return true
	}
	return states[nb] != StateSafe
}

// UpdateFaults recomputes the node states by the wave propagation of
// Figure 4, iterated to the fixpoint: a node with two directly faulty
// neighbours or faulty incident links becomes strongly unsafe, a node
// with three not-safe neighbours becomes ordinarily unsafe. Updates are
// monotone in the state lattice, so the loop terminates after at most
// Nodes() rounds.
func (r *RouteC) UpdateFaults(f *fault.Set) {
	r.faults = f
	n := r.cube.Nodes()
	states := make([]NodeState, n)
	for i := 0; i < n; i++ {
		if f.NodeFaulty(topology.NodeID(i)) {
			states[i] = StateFaulty
		}
	}
	rounds := 0
	for {
		changed := false
		next := make([]NodeState, n)
		copy(next, states)
		for i := 0; i < n; i++ {
			id := topology.NodeID(i)
			if states[i] == StateFaulty {
				continue
			}
			direct := f.FaultyNeighbors(r.cube, id) + f.FaultyIncidentLinks(r.cube, id)
			notSafe := 0
			for p := 0; p < r.cube.Ports(); p++ {
				if r.notSafeOver(id, p, states) {
					notSafe++
				}
			}
			var s NodeState
			switch {
			case direct >= 2:
				s = StateSUnsafe
			case notSafe >= 3:
				// The paper's Figure 4 fires the escalation when
				// number_unsafe already equals 2 and a third not-safe
				// notification arrives, i.e. at three not-safe
				// neighbours; a lower threshold lets the ounsafe
				// state percolate across the whole cube.
				s = StateOUnsafe
			default:
				s = StateSafe
			}
			// Monotone: states never improve during one diagnosis
			// phase.
			if s > next[i] {
				next[i] = s
				changed = true
			}
		}
		states = next
		rounds++
		if !changed {
			break
		}
	}
	r.states = states
	r.PropagationRounds = rounds
}

func (r *RouteC) NoteHop(req Request, chosen Candidate) {
	cur, dst := req.Node, req.Hdr.Dst
	minimal := contains(r.cube.MinimalPorts(cur, dst), chosen.Port)
	if !minimal {
		req.Hdr.Misroutes++
		req.Hdr.Marked = true
		if req.Hdr.DetourLevel < routecMaxDetour {
			req.Hdr.DetourLevel++
		}
		// The detour hop is the first hop of the new level's virtual
		// channel, so its direction class dictates the level's
		// starting phase: an address-increasing entry starts the
		// level ascending (ups then downs, all address-monotone on
		// that channel), an address-decreasing entry locks the level
		// descending. Without this rule a down-type entry followed by
		// up-hops on the same level channel closes a cyclic channel
		// dependency — a real wormhole deadlock, caught by the
		// network's wait-for-graph analyser.
		if cur&(1<<chosen.Port) == 0 {
			req.Hdr.Phase = 0
		} else {
			req.Hdr.Phase = 1
		}
		return
	}
	// A minimal ascending hop taken while descending is a level bump:
	// it moves the message onto the next level's channel in phase 0.
	if req.Hdr.Phase == 1 && cur&(1<<chosen.Port) == 0 {
		if req.Hdr.DetourLevel < routecMaxDetour {
			req.Hdr.DetourLevel++
		}
		req.Hdr.Phase = 0
	}
	// Minimal hops keep the phase monotone within the level: once
	// descending, a level never ascends again.
	next := r.cube.Neighbor(cur, chosen.Port)
	if req.Hdr.Phase == 0 && len(r.cube.UpPorts(next, dst)) == 0 {
		req.Hdr.Phase = 1
	}
}

// vcFor maps the message's phase and detour level to its virtual
// channel: detour levels claim the three extra channels, otherwise the
// phase picks up/down.
func vcFor(hdr *Header) int {
	if hdr.DetourLevel > 0 {
		return routecVCDetour0 + hdr.DetourLevel - 1
	}
	if hdr.Phase == 1 {
		return routecVCDown
	}
	return routecVCUp
}

// usable reports whether the hop via port p is physically possible.
func (r *RouteC) usable(n topology.NodeID, p int) bool {
	return r.faults.PortUsable(r.cube, n, p)
}

// preferSafe keeps, among the given ports, only those with the best
// (lowest) neighbour state; the destination always counts as best so
// the final hop is never filtered away.
func (r *RouteC) preferSafe(n topology.NodeID, ports []int, dst topology.NodeID) []int {
	best := StateFaulty
	for _, p := range ports {
		nb := r.cube.Neighbor(n, p)
		s := r.states[nb]
		if nb == dst {
			s = StateSafe
		}
		if s < best {
			best = s
		}
	}
	var out []int
	for _, p := range ports {
		nb := r.cube.Neighbor(n, p)
		s := r.states[nb]
		if nb == dst {
			s = StateSafe
		}
		if s == best {
			out = append(out, p)
		}
	}
	return out
}

// hop kinds produced by decideDir: a minimal hop on the current
// level, a level bump (minimal ascending hop that re-opens phase 0 on
// the next detour channel after a descending-entry level ran dry), or
// a genuine detour (non-minimal hop onto the next level).
const (
	kindMinimal = iota
	kindBump
	kindDetour
)

// decideDir is the first rule interpretation: compute the admissible
// output ports (set 2 from the up/down scheme intersected with set 1
// from the fault states).
func (r *RouteC) decideDir(req Request) (ports []int, kind int) {
	cur, dst := req.Node, req.Hdr.Dst
	// Minimal ports, honouring the up-before-down order. The order is
	// kept inside detour levels as well (each level re-runs ascent
	// then descent), so channel dependencies within a level stay
	// address-monotone.
	var minimal []int
	if up := r.cube.UpPorts(cur, dst); len(up) > 0 && req.Hdr.Phase == 0 {
		minimal = up
	} else {
		minimal = r.cube.DownPorts(cur, dst)
	}
	var usableMin []int
	for _, p := range minimal {
		// A minimal port can only equal the arrival port right after
		// a detour; bouncing straight back would re-create the
		// decision that caused the detour (ping-pong livelock).
		if p == req.InPort {
			continue
		}
		if r.usable(cur, p) {
			usableMin = append(usableMin, p)
		}
	}
	if len(usableMin) > 0 {
		return r.preferSafe(cur, usableMin, dst), kindMinimal
	}
	// In phase 0 the down-ports may still be intact: fall through to
	// them before declaring a detour (phase change is minimal, not a
	// misroute).
	if req.Hdr.Phase == 0 {
		var down []int
		for _, p := range r.cube.DownPorts(cur, dst) {
			if p == req.InPort {
				continue
			}
			if r.usable(cur, p) {
				down = append(down, p)
			}
		}
		if len(down) > 0 {
			return r.preferSafe(cur, down, dst), kindMinimal
		}
	}
	// Level bump: a descending-entry level cannot ascend (the channel
	// discipline forbids down->up edges within a level), but pending
	// ascending work can continue on the NEXT level's channel — a
	// minimal hop, no misroute, one level consumed. Cross-level edges
	// only ascend, so the dependency graph stays acyclic.
	if req.Hdr.Phase == 1 && req.Hdr.DetourLevel < routecMaxDetour {
		var ups []int
		for _, p := range r.cube.UpPorts(cur, dst) {
			if p == req.InPort {
				continue
			}
			if r.usable(cur, p) {
				ups = append(ups, p)
			}
		}
		if len(ups) > 0 {
			return r.preferSafe(cur, ups, dst), kindBump
		}
	}
	// Detour: any usable non-minimal port, if budget remains.
	if req.Hdr.DetourLevel >= routecMaxDetour {
		return nil, kindDetour
	}
	allMin := r.cube.MinimalPorts(cur, dst)
	var out []int
	for p := 0; p < r.cube.Ports(); p++ {
		if contains(allMin, p) || !r.usable(cur, p) {
			continue
		}
		// Do not bounce straight back.
		if req.InPort >= 0 && p == req.InPort {
			continue
		}
		out = append(out, p)
	}
	return r.preferSafe(cur, out, dst), kindDetour
}

// decideVC is the second rule interpretation: attach the virtual
// channel mandated by phase and detour level. Bumps and detours both
// claim the next level's channel.
func (r *RouteC) decideVC(req Request, ports []int, kind int) []Candidate {
	var out []Candidate
	for _, p := range ports {
		h := *req.Hdr
		switch kind {
		case kindDetour, kindBump:
			if h.DetourLevel < routecMaxDetour {
				h.DetourLevel++
			}
		default:
			if contains(r.cube.UpPorts(req.Node, req.Hdr.Dst), p) {
				h.Phase = 0
			} else {
				h.Phase = 1
			}
		}
		out = append(out, Candidate{Port: p, VC: vcFor(&h)})
	}
	return out
}

func (r *RouteC) Route(req Request) []Candidate {
	ports, kind := r.decideDir(req)
	if len(ports) == 0 {
		return nil
	}
	return r.decideVC(req, ports, kind)
}

// RouteCNFT is the stripped-down, non-fault-tolerant variant of
// ROUTE_C used in the paper's overhead comparison: the same up/down
// minimal routing, but no node states, no detours, and only the two
// base virtual channels; it behaves exactly like ROUTE_C in a
// fault-free network and needs a single rule interpretation per
// message.
type RouteCNFT struct {
	cube   *topology.Hypercube
	faults *fault.Set
}

// NewRouteCNFT builds the stripped variant on hypercube h.
func NewRouteCNFT(h *topology.Hypercube) *RouteCNFT {
	return &RouteCNFT{cube: h, faults: fault.NewSet()}
}

func (r *RouteCNFT) Name() string              { return "routec-nft" }
func (r *RouteCNFT) NumVCs() int               { return 2 }
func (r *RouteCNFT) Steps(Request) int         { return 1 }
func (r *RouteCNFT) UpdateFaults(f *fault.Set) { r.faults = f }

func (r *RouteCNFT) NoteHop(req Request, chosen Candidate) {
	next := r.cube.Neighbor(req.Node, chosen.Port)
	if len(r.cube.UpPorts(next, req.Hdr.Dst)) == 0 {
		req.Hdr.Phase = 1
	}
}

func (r *RouteCNFT) Route(req Request) []Candidate {
	cur, dst := req.Node, req.Hdr.Dst
	ports := r.cube.UpPorts(cur, dst)
	vc := routecVCUp
	if len(ports) == 0 || req.Hdr.Phase == 1 {
		ports = r.cube.DownPorts(cur, dst)
		vc = routecVCDown
	}
	var out []Candidate
	for _, p := range ports {
		if r.faults.PortUsable(r.cube, cur, p) {
			out = append(out, Candidate{Port: p, VC: vc})
		}
	}
	return out
}
