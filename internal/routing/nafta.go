package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// NAFTA is the fault-tolerant adaptive routing algorithm for 2-D meshes
// (Cunningham/Avresky 1995) as described in Section 2.2 of the paper:
//
//   - fault information is propagated in waves and condensed into a
//     constant amount of state per node: rectangular fault blocks
//     (concave fault patterns completed to a convex shape) and
//     directional dead-end states ("dead-end-east" = every column to
//     the east contains a fault);
//   - the deadlock prevention is the turn model with two virtual
//     networks (north-last and south-last), so in the fault-free case
//     every minimal path is available (condition 1);
//   - messages blocked by a fault region are misrouted around it,
//     marked, and carry a path-length counter (Section 3, lifelock
//     avoidance); the counter bounds detours.
//
// The constant-state approximation intentionally violates condition 3
// in awkward fault situations; the evaluation (experiment E6) measures
// this.
type NAFTA struct {
	mesh   *topology.Mesh
	faults *fault.Set
	blocks *fault.BlockInfo
	dead   *fault.DeadEnds
	dirs   *fault.DirStates

	// MaxMisroutes bounds the detour budget per message; beyond it the
	// message is dropped (livelock avoidance). Zero means the default
	// 4*(W+H).
	MaxMisroutes int

	// DisableBlocks turns off the convex completion (ablation E10):
	// only directly faulty nodes/links restrict routing.
	DisableBlocks bool
}

// NewNAFTA builds NAFTA on mesh m with no faults.
func NewNAFTA(m *topology.Mesh) *NAFTA {
	n := &NAFTA{mesh: m}
	n.UpdateFaults(fault.NewSet())
	return n
}

func (n *NAFTA) Name() string { return "nafta" }
func (n *NAFTA) NumVCs() int  { return 2 }

// DeadlockRegime tags the virtual-network discipline for the hot-swap
// safety gate.
func (n *NAFTA) DeadlockRegime() string { return RegimeNAFTA }

// UpdateFaults recomputes the fault blocks and dead-end states to
// their fixpoint (diagnosis phase, assumption iv).
func (n *NAFTA) UpdateFaults(f *fault.Set) {
	n.faults = f
	if n.DisableBlocks {
		n.blocks = nil
	} else {
		n.blocks = fault.BuildBlocks(n.mesh, f)
	}
	n.dead = fault.BuildDeadEnds(n.mesh, f, n.blocks)
	n.dirs = fault.BuildDirStates(n.mesh, f, n.blocks)
}

// Blocks exposes the current fault-block state (evaluation harness).
func (n *NAFTA) Blocks() *fault.BlockInfo { return n.blocks }

// DeadEnds exposes the current dead-end state (evaluation harness).
func (n *NAFTA) DeadEnds() *fault.DeadEnds { return n.dead }

// Steps reports the rule interpretations for this decision: one in the
// fault-free network, two when fault state has to be consulted, three
// when the exception path (misrouting) is taken — matching the paper's
// "NAFTA in the fault-free case proceeds with one step and in the
// worst case needs three".
func (n *NAFTA) Steps(req Request) int {
	if n.faults.Empty() {
		return 1
	}
	var tmp [topology.MeshPorts]Candidate
	if len(n.minimalAppend(req, tmp[:0])) > 0 {
		return 2
	}
	return 3
}

func (n *NAFTA) NoteHop(req Request, chosen Candidate) {
	if req.InPort == InjectionPort {
		req.Hdr.VNet = chosen.VC
	}
	// Track non-minimal hops: the path-length counter of Section 3.
	if !n.isMinimalPort(req.Node, req.Hdr.Dst, chosen.Port) {
		req.Hdr.Misroutes++
		req.Hdr.Marked = true
	}
}

// isMinimalPort reports whether port p leads strictly closer to dst —
// the membership test of MinimalPorts without materialising the list.
func (n *NAFTA) isMinimalPort(cur, dst topology.NodeID, p int) bool {
	return p == n.neededHorizontal(cur, dst) || p == n.neededVertical(cur, dst)
}

func (n *NAFTA) maxMisroutes() int {
	if n.MaxMisroutes > 0 {
		return n.MaxMisroutes
	}
	return 4 * (n.mesh.W + n.mesh.H)
}

// disabled reports whether node m is unusable (faulty, or deactivated
// by the convex completion).
func (n *NAFTA) disabled(m topology.NodeID) bool {
	if n.blocks != nil {
		return n.blocks.DisabledNode(m)
	}
	return n.faults.NodeFaulty(m)
}

// hopOK reports whether the hop through port p is physically usable
// and does not enter a disabled node (the destination itself is always
// admissible if physically reachable).
func (n *NAFTA) hopOK(cur topology.NodeID, p int, dst topology.NodeID) bool {
	nb := n.mesh.Neighbor(cur, p)
	if nb == topology.Invalid || !n.faults.HopUsable(cur, nb) {
		return false
	}
	if nb != dst && n.disabled(nb) {
		return false
	}
	return true
}

// deadEndOK evaluates the paper's literal dead-end predicate ("a
// message destined to north-east may not use a node in state
// dead-end-east"). The predicate is exposed for the rule-base model
// and the E6 experiment but is NOT used for candidate filtering: on
// whole rows/columns it degenerates for sparse fault patterns (a
// single fault in the border row marks the entire adjacent row), and
// the per-node propagated flags of sidewaysOK implement the same
// protective intent with node-level accuracy.
func (n *NAFTA) deadEndOK(cur topology.NodeID, p int, dst topology.NodeID) bool {
	nb := n.mesh.Neighbor(cur, p)
	if nb == dst {
		return true
	}
	nx, ny := n.mesh.XY(nb)
	dx, dy := n.mesh.XY(dst)
	// The state only matters for a message that must continue past nb
	// in direction p AND still has an orthogonal component (the
	// paper's "a message destined to north-east may not use a node in
	// state dead-end-east").
	switch p {
	case topology.East:
		if dx > nx && dy != ny && n.dead.NodeDeadEnd(nb, p) {
			return false
		}
	case topology.West:
		if dx < nx && dy != ny && n.dead.NodeDeadEnd(nb, p) {
			return false
		}
	case topology.North:
		if dy > ny && dx != nx && n.dead.NodeDeadEnd(nb, p) {
			return false
		}
	case topology.South:
		if dy < ny && dx != nx && n.dead.NodeDeadEnd(nb, p) {
			return false
		}
	}
	return true
}

// neededVertical returns the vertical direction the message still has
// to travel (-1 if none); neededHorizontal likewise.
func (n *NAFTA) neededVertical(cur, dst topology.NodeID) int {
	_, cy := n.mesh.XY(cur)
	_, dy := n.mesh.XY(dst)
	switch {
	case dy > cy:
		return topology.North
	case dy < cy:
		return topology.South
	}
	return -1
}

func (n *NAFTA) neededHorizontal(cur, dst topology.NodeID) int {
	cx, _ := n.mesh.XY(cur)
	dx, _ := n.mesh.XY(dst)
	switch {
	case dx > cx:
		return topology.East
	case dx < cx:
		return topology.West
	}
	return -1
}

// sidewaysOK applies the propagated directional blocking flags: moving
// sideways through port t is pointless (and forbidden) when every node
// along that line keeps the still-needed perpendicular direction
// blocked — the message would run into the border without ever being
// able to turn. This is the refined per-node form of the dead-end
// states and is what lets a blocked message pick the correct side of a
// fault chain (Figure 2).
func (n *NAFTA) sidewaysOK(cur topology.NodeID, t int, dst topology.NodeID) bool {
	nb := n.mesh.Neighbor(cur, t)
	if nb == dst {
		return true
	}
	if nb == topology.Invalid {
		// Border port: physical usability is hopOK's verdict; the
		// sideways flag does not apply.
		return true
	}
	var needed int
	switch t {
	case topology.East, topology.West:
		needed = n.neededVertical(cur, dst)
	default:
		needed = n.neededHorizontal(cur, dst)
	}
	if needed < 0 {
		return true // straight-line message, flag not applicable
	}
	return !n.dirs.Blocked(needed, t, nb)
}

// clearTo reports whether the horizontal straight line from nb to
// column dx is free of faults, judged by the propagated clear-run
// state at nb.
func (n *NAFTA) clearTo(nb topology.NodeID, dx int) bool {
	nx, _ := n.mesh.XY(nb)
	switch {
	case dx > nx:
		return n.dirs.ClearRun(topology.East, nb) >= dx-nx
	case dx < nx:
		return n.dirs.ClearRun(topology.West, nb) >= nx-dx
	}
	return true
}

// vertEntryOK guards vertical hops against the frozen-direction traps
// of the turn model. In the south-last network the only legal way back
// south is a straight run in the destination column, so (a) a message
// must not enter the destination row at a point from which the
// destination cannot be reached along that row, and (b) a misroute
// that overshoots north is only admissible if the destination column
// is reachable along the new row. Both tests use the per-node
// propagated clear-run state; the mirror rules protect north-last
// messages. This is the constant-per-node-state approximation of the
// Omega(|F|) fault knowledge the paper's Figure 2 shows a router needs
// for perfect purposiveness.
func (n *NAFTA) vertEntryOK(vnet int, cur topology.NodeID, p int, dst topology.NodeID, minimal bool) bool {
	nb := n.mesh.Neighbor(cur, p)
	if nb == topology.Invalid || nb == dst {
		return true
	}
	_, ny := n.mesh.XY(nb)
	dx, dy := n.mesh.XY(dst)
	switch {
	case vnet == VNSouthLast && p == topology.North:
		if minimal && ny == dy {
			// Entering the destination row: the message must be able
			// to finish along it or escape north again later; if the
			// row is the border there is no later.
			if ny == n.mesh.H-1 {
				return n.clearTo(nb, dx)
			}
			return true
		}
		if !minimal && ny == n.mesh.H-1 {
			// Overshooting onto the top border row: no further
			// escalation is possible, the run must reach the
			// destination column.
			return n.clearTo(nb, dx)
		}
	case vnet == VNNorthLast && p == topology.South:
		if minimal && ny == dy {
			if ny == 0 {
				return n.clearTo(nb, dx)
			}
			return true
		}
		if !minimal && ny == 0 {
			return n.clearTo(nb, dx)
		}
	}
	return true
}

// lastDir returns the direction of the previous hop (the direction the
// message was travelling when it arrived), or -1 at injection.
func lastDir(inPort int) int {
	if inPort == InjectionPort {
		return -1
	}
	return topology.OppositeMeshPort(inPort)
}

// vnAllowed enforces the turn-model restriction of the message's
// virtual network: once a message has moved in the network's "last"
// direction it may only continue straight.
func vnAllowed(vnet, last, p int) bool {
	if vnet == VNSouthLast && last == topology.South {
		return p == topology.South
	}
	if vnet == VNNorthLast && last == topology.North {
		return p == topology.North
	}
	return true
}

// lastDirEntryOK guards entry into the frozen direction: in the
// south-last network a message may move south only if that is a
// straight shot at the destination (same column, destination south),
// because afterwards it cannot turn any more. Mirror rule for north in
// the north-last network.
func (n *NAFTA) lastDirEntryOK(vnet int, cur topology.NodeID, p int, dst topology.NodeID) bool {
	cx, cy := n.mesh.XY(cur)
	dx, dy := n.mesh.XY(dst)
	if vnet == VNSouthLast && p == topology.South {
		return cx == dx && dy < cy
	}
	if vnet == VNNorthLast && p == topology.North {
		return cx == dx && dy > cy
	}
	return true
}

// minimalAppend computes set2 ∩ set1 — minimal ports that survive the
// fault, block, dead-end, turn-model and freeze restrictions — and
// appends them to out without allocating.
func (n *NAFTA) minimalAppend(req Request, out []Candidate) []Candidate {
	vnet := n.vnet(req)
	last := lastDir(req.InPort)
	// Offer horizontal ports first: vertical moves are the ones the
	// turn model makes hard to undo, so the deterministic tie-break
	// (and the FirstFit ablation selector) should delay them.
	ordered := [2]int{
		n.neededHorizontal(req.Node, req.Hdr.Dst),
		n.neededVertical(req.Node, req.Hdr.Dst),
	}
	for _, p := range ordered {
		if p < 0 {
			continue
		}
		if !vnAllowed(vnet, last, p) {
			continue
		}
		// Never bounce straight back: the previous router has just
		// been tried and sending the message back re-creates the same
		// decision, a ping-pong livelock.
		if last >= 0 && p == topology.OppositeMeshPort(last) {
			continue
		}
		if !n.lastDirEntryOK(vnet, req.Node, p, req.Hdr.Dst) {
			continue
		}
		if !n.hopOK(req.Node, p, req.Hdr.Dst) || !n.sidewaysOK(req.Node, p, req.Hdr.Dst) {
			continue
		}
		if !n.vertEntryOK(vnet, req.Node, p, req.Hdr.Dst, true) {
			continue
		}
		out = append(out, Candidate{Port: p, VC: vnet})
	}
	return out
}

// misrouteAppend computes the exception outputs: non-minimal ports
// that keep the message routable (no 180-degree reversal, turn rules
// respected, no disabled or dead-end entry).
func (n *NAFTA) misrouteAppend(req Request, out []Candidate) []Candidate {
	vnet := n.vnet(req)
	last := lastDir(req.InPort)
	for p := 0; p < n.mesh.Ports(); p++ {
		if n.isMinimalPort(req.Node, req.Hdr.Dst, p) {
			continue // not a misroute
		}
		if last >= 0 && p == topology.OppositeMeshPort(last) {
			continue // 180-degree reversal
		}
		if !vnAllowed(vnet, last, p) {
			continue
		}
		// Never misroute into the frozen direction: there is no way
		// back out of it.
		if (vnet == VNSouthLast && p == topology.South) ||
			(vnet == VNNorthLast && p == topology.North) {
			continue
		}
		if !n.hopOK(req.Node, p, req.Hdr.Dst) || !n.sidewaysOK(req.Node, p, req.Hdr.Dst) {
			continue
		}
		if !n.vertEntryOK(vnet, req.Node, p, req.Hdr.Dst, false) {
			continue
		}
		out = append(out, Candidate{Port: p, VC: vnet})
	}
	return out
}

func (n *NAFTA) vnet(req Request) int {
	if req.InPort == InjectionPort {
		return vnetFor(n.mesh, req.Node, req.Hdr.Dst)
	}
	return req.Hdr.VNet
}

func (n *NAFTA) Route(req Request) []Candidate {
	return n.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free form of Route (BufferedAlgorithm).
func (n *NAFTA) RouteAppend(req Request, buf []Candidate) []Candidate {
	if out := n.minimalAppend(req, buf); len(out) > len(buf) {
		return out
	}
	// Exception path: misroute around the fault region, within the
	// detour budget.
	if req.Hdr.Misroutes >= n.maxMisroutes() {
		return buf
	}
	return n.misrouteAppend(req, buf)
}

// PortFact is the per-direction fault knowledge of one routing
// decision, as produced by the router's Information Units. The
// rule-based implementation of NAFTA consumes these as inputs, and the
// equivalence tests compare its decisions against this package's
// native implementation.
type PortFact struct {
	// Usable: the hop is physically intact and does not enter a
	// disabled (fault-block) node.
	Usable bool
	// Sideways: the propagated directional blocking flag admits the
	// hop (sidewaysOK).
	Sideways bool
	// EntryMinimal: the frozen-direction entry guard admits the hop
	// as a minimal move.
	EntryMinimal bool
	// EntryMisroute: the guard admits the hop as a misroute.
	EntryMisroute bool
	// Minimal: the hop reduces the distance to the destination.
	Minimal bool
}

// PortFacts computes the fault-knowledge inputs of a decision for all
// four mesh ports.
func (n *NAFTA) PortFacts(req Request) [topology.MeshPorts]PortFact {
	var out [topology.MeshPorts]PortFact
	vnet := n.vnet(req)
	for p := 0; p < topology.MeshPorts; p++ {
		out[p] = PortFact{
			Usable:        n.hopOK(req.Node, p, req.Hdr.Dst),
			Sideways:      n.sidewaysOK(req.Node, p, req.Hdr.Dst),
			EntryMinimal:  n.vertEntryOK(vnet, req.Node, p, req.Hdr.Dst, true),
			EntryMisroute: n.vertEntryOK(vnet, req.Node, p, req.Hdr.Dst, false),
			Minimal:       n.isMinimalPort(req.Node, req.Hdr.Dst, p),
		}
	}
	return out
}

// VNetOf exposes the virtual network the algorithm assigns to the
// request (injection) or reads from the header (in flight).
func (n *NAFTA) VNetOf(req Request) int { return n.vnet(req) }
