package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// TorusDOR is oblivious dimension-order routing on a 2-D torus with
// dateline virtual channels: each message resolves X before Y, always
// taking the shorter way around each ring, and switches from VC0 to
// VC1 when it crosses the ring's wrap-around link (the dateline). The
// dateline break makes each ring's channel dependency graph acyclic,
// and the strict X-then-Y order keeps the dimensions acyclic between
// each other. Like XY on the mesh it is not fault tolerant; it
// completes the torus topology as a baseline (the paper's reference
// list treats tori via [ChB95a, CyG94]).
type TorusDOR struct {
	torus  *topology.Torus
	faults *fault.Set
}

// NewTorusDOR builds dateline dimension-order routing on torus t.
func NewTorusDOR(t *topology.Torus) *TorusDOR {
	return &TorusDOR{torus: t, faults: fault.NewSet()}
}

func (t *TorusDOR) Name() string { return "torusdor" }

// NumVCs is two: the dateline pair shared by both dimensions (a
// message is only ever inside one ring at a time).
func (t *TorusDOR) NumVCs() int { return 2 }

func (t *TorusDOR) Steps(Request) int { return 1 }

func (t *TorusDOR) UpdateFaults(f *fault.Set) { t.faults = f }

// step returns the port and wrap flag for the next hop of the
// dimension-ordered path from cur to dst, or -1 when cur == dst.
func (t *TorusDOR) step(cur, dst topology.NodeID) (port int, wraps bool) {
	cx, cy := t.torus.XY(cur)
	dx, dy := t.torus.XY(dst)
	if cx != dx {
		diff := ((dx-cx)%t.torus.W + t.torus.W) % t.torus.W
		if diff <= t.torus.W/2 {
			return topology.East, cx == t.torus.W-1
		}
		return topology.West, cx == 0
	}
	if cy != dy {
		diff := ((dy-cy)%t.torus.H + t.torus.H) % t.torus.H
		if diff <= t.torus.H/2 {
			return topology.North, cy == t.torus.H-1
		}
		return topology.South, cy == 0
	}
	return -1, false
}

func (t *TorusDOR) Route(req Request) []Candidate {
	port, _ := t.step(req.Node, req.Hdr.Dst)
	if port < 0 {
		return nil
	}
	if !t.faults.PortUsable(t.torus, req.Node, port) {
		return nil // oblivious: fixed path broken
	}
	vc := 0
	if req.Hdr.Dateline != 0 {
		vc = 1
	}
	return []Candidate{{Port: port, VC: vc}}
}

func (t *TorusDOR) NoteHop(req Request, chosen Candidate) {
	_, wraps := t.step(req.Node, req.Hdr.Dst)
	if wraps {
		req.Hdr.Dateline = 1
	}
	// Entering the second dimension resets the dateline state: the Y
	// ring has its own dateline.
	cx, _ := t.torus.XY(req.Node)
	nx, _ := t.torus.XY(t.torus.Neighbor(req.Node, chosen.Port))
	dx, _ := t.torus.XY(req.Hdr.Dst)
	if cx != dx && nx == dx {
		req.Hdr.Dateline = 0
	}
}

var _ Algorithm = (*TorusDOR)(nil)
