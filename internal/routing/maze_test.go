package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

// mazeWalk drives one message like walk but without t.Fatal on
// non-delivery: it returns delivery, hop count, the final header and
// the request of the failing decision (valid only when !ok).
func mazeWalk(t *testing.T, g topology.Graph, m *Maze, src, dst topology.NodeID, maxHops int) (bool, int, *Header, Request) {
	t.Helper()
	hdr := &Header{Src: src, Dst: dst, Length: 4}
	req := Request{Node: src, InPort: InjectionPort, InVC: 0, Hdr: hdr}
	hops := 0
	for req.Node != dst {
		cands := m.Route(req)
		if len(cands) == 0 {
			return false, hops, hdr, req
		}
		chosen := cands[0]
		m.NoteHop(req, chosen)
		next := g.Neighbor(req.Node, chosen.Port)
		if next == topology.Invalid {
			t.Fatalf("maze routed into a border at node %d port %d", req.Node, chosen.Port)
		}
		back, _ := g.PortTo(next, req.Node)
		req = Request{Node: next, InPort: back, InVC: chosen.VC, Hdr: hdr}
		hops++
		if hops > maxHops {
			t.Fatalf("maze %d->%d exceeded %d hops (mode %d steps %d)", src, dst, maxHops, hdr.MazeMode, hdr.MazeSteps)
		}
	}
	return true, hops, hdr, req
}

// mazeGuarantee checks the family's core contract on every ordered
// pair of g under faults f: reachable pairs must be delivered,
// unreachable pairs must end in an empty Route whose UnreachableVerdict
// confirms the drop. Returns how many pairs were unreachable.
func mazeGuarantee(t *testing.T, g topology.Graph, f *fault.Set) int {
	t.Helper()
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateFaults(f)
	filter := f.Filter()
	maxHops := 20*g.Nodes() + 200
	unreachable := 0
	for s := 0; s < g.Nodes(); s++ {
		for d := 0; d < g.Nodes(); d++ {
			if s == d || f.NodeFaulty(topology.NodeID(s)) || f.NodeFaulty(topology.NodeID(d)) {
				continue
			}
			reach := topology.Reachable(g, topology.NodeID(s), topology.NodeID(d), filter)
			ok, _, _, lastReq := mazeWalk(t, g, m, topology.NodeID(s), topology.NodeID(d), maxHops)
			if reach && !ok {
				t.Fatalf("%s: maze sacrificed reachable pair %d->%d", g.Name(), s, d)
			}
			if !reach {
				unreachable++
				if ok {
					t.Fatalf("%s: maze claims delivery of unreachable pair %d->%d", g.Name(), s, d)
				}
				if !m.UnreachableVerdict(lastReq) {
					t.Fatalf("%s: maze dropped %d->%d without an unreachable verdict", g.Name(), s, d)
				}
			}
		}
	}
	return unreachable
}

func TestMazeAllPairsFaultFreeMinimal(t *testing.T) {
	graphs := []topology.Graph{topology.NewMesh(5, 4), topology.NewTorus(5, 4)}
	for _, g := range graphs {
		m, err := NewMaze(g)
		if err != nil {
			t.Fatal(err)
		}
		dist := g.(interface{ Dist(a, b topology.NodeID) int }).Dist
		for s := 0; s < g.Nodes(); s++ {
			for d := 0; d < g.Nodes(); d++ {
				if s == d {
					continue
				}
				ok, hops, hdr, _ := mazeWalk(t, g, m, topology.NodeID(s), topology.NodeID(d), 100)
				if !ok {
					t.Fatalf("%s: maze failed fault-free %d->%d", g.Name(), s, d)
				}
				if want := dist(topology.NodeID(s), topology.NodeID(d)); hops != want {
					t.Fatalf("%s: maze %d->%d took %d hops, want %d", g.Name(), s, d, hops, want)
				}
				if hdr.MazeMode != MazeModeNormal {
					t.Fatalf("fault-free message must stay in normal mode, got %d", hdr.MazeMode)
				}
			}
		}
	}
}

func TestMazeTraversalAroundBlock(t *testing.T) {
	g := topology.NewMesh(8, 8)
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	// A concave pocket: a C-shaped wall opening west, so eastbound
	// messages entering the pocket must wall-follow back out.
	f := fault.NewSet()
	for y := 2; y <= 5; y++ {
		f.FailNode(g.Node(5, y)) // east wall
	}
	f.FailNode(g.Node(4, 2)) // north lip
	f.FailNode(g.Node(4, 5)) // south lip
	m.UpdateFaults(f)
	ok, hops, hdr, _ := mazeWalk(t, g, m, g.Node(3, 3), g.Node(7, 3), 10000)
	if !ok {
		t.Fatal("maze failed to escape the pocket")
	}
	if hops <= g.Dist(g.Node(3, 3), g.Node(7, 3)) {
		t.Fatalf("detour must be non-minimal, got %d hops", hops)
	}
	_ = hdr
}

func TestMazeGuaranteeMeshRandomFaults(t *testing.T) {
	g := topology.NewMesh(8, 8)
	sawPartition := false
	for seed := int64(0); seed < 10; seed++ {
		// KeepConnected deliberately off: the maze family must
		// adjudicate partitioned graphs, not avoid them.
		f, err := fault.Random(g, fault.RandomOptions{Nodes: 7, Links: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if mazeGuarantee(t, g, f) > 0 {
			sawPartition = true
		}
	}
	if !sawPartition {
		t.Fatal("fault patterns never partitioned the mesh; the unreachable arm was untested")
	}
}

func TestMazeGuaranteeTorusRandomFaults(t *testing.T) {
	g := topology.NewTorus(6, 6)
	for seed := int64(0); seed < 8; seed++ {
		f, err := fault.Random(g, fault.RandomOptions{Nodes: 6, Links: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mazeGuarantee(t, g, f)
	}
}

func TestMazeGuaranteeTorusRingCut(t *testing.T) {
	// Cutting every link of one column ring makes the torus a cylinder
	// that is still connected the other way around: the wall-follow
	// heuristic may fire a false disconnection alarm here, and the
	// component cross-check must convert it into a forced escape, not
	// a drop.
	g := topology.NewTorus(6, 5)
	f := fault.NewSet()
	for y := 0; y < 5; y++ {
		f.FailLink(g.Node(2, y), g.Node(3, y))
	}
	if n := mazeGuarantee(t, g, f); n != 0 {
		t.Fatalf("ring-cut torus stays connected, but %d pairs judged unreachable", n)
	}
}

func TestMazeGuaranteeIrregular(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g, err := topology.RandomIrregular(24, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		if g.Ports() > MazeMaxPorts {
			continue // rare high-degree draw; NewMaze would refuse it
		}
		f, err := fault.Random(g, fault.RandomOptions{Nodes: 3, Links: 4, Seed: seed * 7})
		if err != nil {
			t.Fatal(err)
		}
		mazeGuarantee(t, g, f)
	}
}

func TestMazePartitionVerdict(t *testing.T) {
	// A clean column cut: x<=2 and x>=4 are separate components.
	g := topology.NewMesh(6, 4)
	f := fault.NewSet()
	for y := 0; y < 4; y++ {
		f.FailNode(g.Node(3, y))
	}
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateFaults(f)
	hdr := &Header{Src: g.Node(0, 0), Dst: g.Node(5, 3), Length: 4}
	req := Request{Node: hdr.Src, InPort: InjectionPort, Hdr: hdr}
	if !m.UnreachableVerdict(req) {
		t.Fatal("cross-partition pair must get an unreachable verdict")
	}
	ok, _, _, lastReq := mazeWalk(t, g, m, hdr.Src, hdr.Dst, 10000)
	if ok {
		t.Fatal("maze delivered across a partition")
	}
	if !m.UnreachableVerdict(lastReq) {
		t.Fatal("drop without verdict")
	}
	// Same-side pairs are unaffected.
	if !m.UnreachableVerdict(req) == false {
		_ = req
	}
	ok, _, _, _ = mazeWalk(t, g, m, g.Node(0, 0), g.Node(2, 3), 10000)
	if !ok {
		t.Fatal("same-component pair must deliver")
	}
}

func TestMazeEpochRestartsTraversalState(t *testing.T) {
	g := topology.NewMesh(6, 6)
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewSet()
	f.FailNode(g.Node(3, 3))
	m.UpdateFaults(f)
	// A header carrying traversal state stamped with a stale epoch must
	// decide as if in normal mode.
	hdr := &Header{
		Src: g.Node(0, 0), Dst: g.Node(5, 5), Length: 4,
		MazeMode: MazeModeTraversal, MazeStart: g.Node(2, 2),
		MazeStartPort: 0, MazeMD: 3, MazeSteps: 7,
		MazeEpoch: m.epoch - 1,
	}
	req := Request{Node: g.Node(0, 0), InPort: InjectionPort, Hdr: hdr}
	facts := m.Facts(req)
	if facts.Mode != MazeModeNormal {
		t.Fatalf("stale traversal state must restart as normal mode, got %d", facts.Mode)
	}
	// Stale escape state stays sticky but resets the phase.
	hdr.MazeMode = MazeModeEscape
	hdr.Phase = 1
	facts = m.Facts(req)
	if facts.Mode != MazeModeEscape {
		t.Fatalf("stale escape state must stay escape, got %d", facts.Mode)
	}
	cands := m.Route(req)
	if len(cands) == 0 {
		t.Fatal("phase-reset escape must still offer a hop")
	}
	for _, c := range cands {
		if c.VC != 1 {
			t.Fatalf("escape-mode candidates must ride VC1, got %v", c)
		}
	}
	// NoteHop restamps the header with the current epoch.
	m.NoteHop(req, cands[0])
	if hdr.MazeEpoch != m.epoch {
		t.Fatalf("NoteHop must stamp the current epoch, got %d want %d", hdr.MazeEpoch, m.epoch)
	}
}

func TestMazeEscapeAlwaysOffered(t *testing.T) {
	g := topology.NewMesh(6, 6)
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	hdr := &Header{Src: g.Node(0, 0), Dst: g.Node(5, 5), Length: 4}
	req := Request{Node: g.Node(2, 2), InPort: topology.West, Hdr: hdr}
	cands := m.Route(req)
	if len(cands) != 2 {
		t.Fatalf("decision must offer a maze move and an escape hop, got %v", cands)
	}
	if cands[0].VC != 0 || cands[1].VC != 1 {
		t.Fatalf("candidate order must be [move@VC0, escape@VC1], got %v", cands)
	}
	// The sticky escape: granting VC1 flips the mode for good.
	m.NoteHop(req, cands[1])
	if hdr.MazeMode != MazeModeEscape {
		t.Fatalf("escape grant must latch escape mode, got %d", hdr.MazeMode)
	}
}

func TestMazeRouteAppendZeroAlloc(t *testing.T) {
	g := topology.NewMesh(8, 8)
	m, err := NewMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewSet()
	f.FailNode(g.Node(4, 4))
	m.UpdateFaults(f)
	hdr := &Header{Src: g.Node(0, 0), Dst: g.Node(7, 7), Length: 4}
	req := Request{Node: g.Node(3, 3), InPort: topology.West, Hdr: hdr}
	buf := make([]Candidate, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		buf = m.RouteAppend(req, buf[:0])
		if len(buf) == 0 {
			t.Fatal("expected candidates")
		}
	})
	if allocs != 0 {
		t.Fatalf("RouteAppend allocates %.1f/op, want 0", allocs)
	}
}

func TestMazeRejectsHighDegreeGraphs(t *testing.T) {
	// A star graph: the hub's degree exceeds MazeMaxPorts.
	var edges []topology.Link
	for i := 1; i <= MazeMaxPorts+1; i++ {
		edges = append(edges, topology.Link{A: 0, B: topology.NodeID(i)})
	}
	g, err := topology.NewIrregular("star", MazeMaxPorts+2, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaze(g); err == nil {
		t.Fatal("NewMaze must refuse graphs with more than MazeMaxPorts ports")
	}
}
