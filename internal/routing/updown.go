package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// UpDown is the classic table-based routing for irregular switched
// networks (Autonet-style up*/down*): links are oriented toward a root
// (by BFS level, node ID as tie-break), and every legal path consists
// of zero or more "up" hops followed by zero or more "down" hops —
// the orientation is acyclic in both phases, so a single virtual
// channel is deadlock-free.
//
// UpDown is the reproduction's stand-in for the table-based routers of
// the paper's introduction (the Spider chip): fault tolerance exists
// "only by means of reconfiguration" — UpdateFaults recomputes the
// orientation and the full reachability tables, and the Rebuilds
// counter exposes that global cost, in contrast to NAFTA's local state
// propagation (experiment E12).
type UpDown struct {
	g      topology.Graph
	faults *fault.Set
	level  []int
	// canDown[n][d]: d reachable from n using down links only.
	// canUD[n][d]: d reachable from n on an up*down* path.
	canDown [][]bool
	canUD   [][]bool
	// Rebuilds counts table recomputations (global reconfigurations).
	Rebuilds int
}

// NewUpDown builds up*/down* routing on g (initially fault free).
func NewUpDown(g topology.Graph) *UpDown {
	u := &UpDown{g: g, faults: fault.NewSet()}
	u.UpdateFaults(u.faults)
	u.Rebuilds = 0
	return u
}

func (u *UpDown) Name() string      { return "updown" }
func (u *UpDown) NumVCs() int       { return 1 }
func (u *UpDown) Steps(Request) int { return 1 }

// up reports whether the hop a->b ascends toward the root (lower
// level wins; node ID breaks ties, which keeps the orientation
// acyclic).
func (u *UpDown) up(a, b topology.NodeID) bool {
	if u.level[b] != u.level[a] {
		return u.level[b] < u.level[a]
	}
	return b < a
}

// UpdateFaults reorients the network and rebuilds the reachability
// tables — the global reconfiguration of a table-based router.
func (u *UpDown) UpdateFaults(f *fault.Set) {
	u.faults = f
	n := u.g.Nodes()
	// Root: the lowest operational node; levels via BFS on the
	// operational part.
	root := topology.Invalid
	for i := 0; i < n; i++ {
		if !f.NodeFaulty(topology.NodeID(i)) {
			root = topology.NodeID(i)
			break
		}
	}
	u.level = make([]int, n)
	if root != topology.Invalid {
		u.level = topology.BFSDist(u.g, root, f.Filter())
	}
	for i := range u.level {
		if u.level[i] < 0 {
			u.level[i] = n + i // disconnected: arbitrary distinct high level
		}
	}
	usable := func(a, b topology.NodeID) bool { return f.HopUsable(a, b) }

	// Reachability tables over the acyclic orientation, computed by
	// fixpoint iteration (converges within the diameter because the
	// orientation is acyclic).
	u.canDown = make([][]bool, n)
	u.canUD = make([][]bool, n)
	for i := 0; i < n; i++ {
		u.canDown[i] = make([]bool, n)
		u.canUD[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		if !f.NodeFaulty(topology.NodeID(i)) {
			u.canDown[i][i] = true
			u.canUD[i][i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			if f.NodeFaulty(topology.NodeID(a)) {
				continue
			}
			for p := 0; p < u.g.Ports(); p++ {
				b := u.g.Neighbor(topology.NodeID(a), p)
				if b == topology.Invalid || !usable(topology.NodeID(a), b) {
					continue
				}
				if !u.up(topology.NodeID(a), b) { // a -> b goes down
					for d := 0; d < n; d++ {
						if u.canDown[b][d] && !u.canDown[a][d] {
							u.canDown[a][d] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			if f.NodeFaulty(topology.NodeID(a)) {
				continue
			}
			for d := 0; d < n; d++ {
				if u.canDown[a][d] && !u.canUD[a][d] {
					u.canUD[a][d] = true
					changed = true
				}
			}
			for p := 0; p < u.g.Ports(); p++ {
				b := u.g.Neighbor(topology.NodeID(a), p)
				if b == topology.Invalid || !usable(topology.NodeID(a), b) {
					continue
				}
				if u.up(topology.NodeID(a), b) { // a -> b goes up
					for d := 0; d < n; d++ {
						if u.canUD[b][d] && !u.canUD[a][d] {
							u.canUD[a][d] = true
							changed = true
						}
					}
				}
			}
		}
	}
	u.Rebuilds++
}

func (u *UpDown) NoteHop(req Request, chosen Candidate) {
	nb := u.g.Neighbor(req.Node, chosen.Port)
	if !u.up(req.Node, nb) {
		// Once descending, the message stays in the down phase.
		req.Hdr.Phase = 1
	}
}

func (u *UpDown) Route(req Request) []Candidate {
	cur, dst := req.Node, req.Hdr.Dst
	var out []Candidate
	for p := 0; p < u.g.Ports(); p++ {
		nb := u.g.Neighbor(cur, p)
		if nb == topology.Invalid || !u.faults.HopUsable(cur, nb) {
			continue
		}
		if u.up(cur, nb) {
			// Up hops are only legal while the message has not
			// descended, and only if an up*down* continuation exists.
			if req.Hdr.Phase == 0 && u.canUD[nb][dst] {
				out = append(out, Candidate{Port: p, VC: 0})
			}
		} else if u.canDown[nb][dst] {
			out = append(out, Candidate{Port: p, VC: 0})
		}
	}
	return out
}

var _ Algorithm = (*UpDown)(nil)
