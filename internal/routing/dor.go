package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// XY is oblivious dimension-order routing on a 2-D mesh (or torus
// without wrap-around use): correct X first, then Y. It is
// deadlock-free with a single virtual channel on the mesh and serves
// as the fixed-behaviour baseline of Section 1 ("once installed, the
// behaviour of these networks, especially the routing scheme, is
// fixed"). It is not fault tolerant: a fault on the unique path makes
// the message unroutable.
type XY struct {
	mesh   *topology.Mesh
	faults *fault.Set
}

// NewXY builds XY routing for mesh m.
func NewXY(m *topology.Mesh) *XY {
	return &XY{mesh: m, faults: fault.NewSet()}
}

func (x *XY) Name() string               { return "xy" }
func (x *XY) NumVCs() int                { return 1 }
func (x *XY) Steps(Request) int          { return 1 }
func (x *XY) NoteHop(Request, Candidate) {}

// UpdateFaults stores the fault set; XY does not adapt, it only drops
// messages whose fixed path is broken.
func (x *XY) UpdateFaults(f *fault.Set) { x.faults = f }

func (x *XY) Route(req Request) []Candidate {
	cx, cy := x.mesh.XY(req.Node)
	dx, dy := x.mesh.XY(req.Hdr.Dst)
	var port int
	switch {
	case dx > cx:
		port = topology.East
	case dx < cx:
		port = topology.West
	case dy > cy:
		port = topology.North
	default:
		port = topology.South
	}
	if !x.faults.PortUsable(x.mesh, req.Node, port) {
		return nil // fixed path broken: unroutable
	}
	return []Candidate{{Port: port, VC: 0}}
}

// ECube is oblivious dimension-order routing on a hypercube: resolve
// the lowest differing dimension first. Deadlock-free with one virtual
// channel; not fault tolerant.
type ECube struct {
	cube   *topology.Hypercube
	faults *fault.Set
}

// NewECube builds e-cube routing for hypercube h.
func NewECube(h *topology.Hypercube) *ECube {
	return &ECube{cube: h, faults: fault.NewSet()}
}

func (e *ECube) Name() string               { return "ecube" }
func (e *ECube) NumVCs() int                { return 1 }
func (e *ECube) Steps(Request) int          { return 1 }
func (e *ECube) NoteHop(Request, Candidate) {}
func (e *ECube) UpdateFaults(f *fault.Set)  { e.faults = f }

func (e *ECube) Route(req Request) []Candidate {
	return e.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free form of Route (BufferedAlgorithm).
func (e *ECube) RouteAppend(req Request, buf []Candidate) []Candidate {
	diff := uint(req.Node ^ req.Hdr.Dst)
	if diff == 0 {
		return buf
	}
	// Lowest differing dimension.
	p := 0
	for diff&1 == 0 {
		diff >>= 1
		p++
	}
	if !e.faults.PortUsable(e.cube, req.Node, p) {
		return buf
	}
	return append(buf, Candidate{Port: p, VC: 0})
}
