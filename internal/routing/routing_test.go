package routing

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

// walk drives a single message from src to dst through alg, applying
// Route and NoteHop exactly like the simulator does (but without
// contention). It returns whether the message arrived, the hop count,
// and the final header.
func walk(t *testing.T, g topology.Graph, alg Algorithm, src, dst topology.NodeID, maxHops int) (bool, int, *Header) {
	t.Helper()
	hdr := &Header{Src: src, Dst: dst, Length: 4}
	req := Request{Node: src, InPort: InjectionPort, InVC: 0, Hdr: hdr}
	hops := 0
	for req.Node != dst {
		cands := alg.Route(req)
		if len(cands) == 0 {
			return false, hops, hdr
		}
		chosen := cands[0]
		alg.NoteHop(req, chosen)
		next := g.Neighbor(req.Node, chosen.Port)
		if next == topology.Invalid {
			t.Fatalf("%s routed into a border at node %d port %d", alg.Name(), req.Node, chosen.Port)
		}
		back, _ := g.PortTo(next, req.Node)
		req = Request{Node: next, InPort: back, InVC: chosen.VC, Hdr: hdr}
		hops++
		if hops > maxHops {
			t.Fatalf("%s: message %d->%d exceeded %d hops", alg.Name(), src, dst, maxHops)
		}
	}
	return true, hops, hdr
}

func TestXYAllPairsMinimal(t *testing.T) {
	m := topology.NewMesh(5, 4)
	alg := NewXY(m)
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, _ := walk(t, m, alg, topology.NodeID(s), topology.NodeID(d), 100)
			if !ok {
				t.Fatalf("xy failed %d->%d", s, d)
			}
			if want := m.Dist(topology.NodeID(s), topology.NodeID(d)); hops != want {
				t.Fatalf("xy %d->%d took %d hops, want %d", s, d, hops, want)
			}
		}
	}
}

func TestXYDropsOnFault(t *testing.T) {
	m := topology.NewMesh(4, 4)
	alg := NewXY(m)
	f := fault.NewSet()
	f.FailLink(m.Node(1, 0), m.Node(2, 0)) // on the X-first path (0,0)->(3,0)
	alg.UpdateFaults(f)
	ok, _, _ := walk(t, m, alg, m.Node(0, 0), m.Node(3, 0), 100)
	if ok {
		t.Fatal("xy should be unable to route around a fault on its fixed path")
	}
	// Other pairs unaffected.
	ok, _, _ = walk(t, m, alg, m.Node(0, 1), m.Node(3, 1), 100)
	if !ok {
		t.Fatal("xy should deliver on an intact row")
	}
}

func TestECubeAllPairsMinimal(t *testing.T) {
	h := topology.NewHypercube(4)
	alg := NewECube(h)
	for s := 0; s < h.Nodes(); s++ {
		for d := 0; d < h.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, _ := walk(t, h, alg, topology.NodeID(s), topology.NodeID(d), 40)
			if !ok || hops != h.Dist(topology.NodeID(s), topology.NodeID(d)) {
				t.Fatalf("ecube %d->%d: ok=%v hops=%d", s, d, ok, hops)
			}
		}
	}
}

func TestTreeDeliversUnderFaults(t *testing.T) {
	m := topology.NewMesh(6, 6)
	alg := NewTree(m)
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 6, Links: 4, Seed: 3, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	alg.UpdateFaults(f)
	filter := f.Filter()
	pairs := 0
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d || f.NodeFaulty(topology.NodeID(s)) || f.NodeFaulty(topology.NodeID(d)) {
				continue
			}
			if !topology.Reachable(m, topology.NodeID(s), topology.NodeID(d), filter) {
				continue
			}
			ok, _, _ := walk(t, m, alg, topology.NodeID(s), topology.NodeID(d), 4*m.Nodes())
			if !ok {
				t.Fatalf("tree failed reachable pair %d->%d", s, d)
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs tested")
	}
	if alg.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", alg.Rebuilds)
	}
}

func TestTreePathsAreLongerThanMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewTree(m)
	longer := 0
	total := 0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		s := topology.NodeID(rng.Intn(m.Nodes()))
		d := topology.NodeID(rng.Intn(m.Nodes()))
		if s == d {
			continue
		}
		ok, hops, _ := walk(t, m, alg, s, d, 4*m.Nodes())
		if !ok {
			t.Fatalf("tree failed %d->%d in fault-free mesh", s, d)
		}
		total++
		if hops > m.Dist(s, d) {
			longer++
		}
	}
	// The paper's point: tree routing almost never uses minimal paths.
	if longer*2 < total {
		t.Fatalf("expected most tree paths non-minimal, got %d/%d", longer, total)
	}
}

func TestNARAFullyAdaptiveMinimal(t *testing.T) {
	m := topology.NewMesh(6, 6)
	alg := NewNARA(m)
	// Condition 1: at every intermediate node all minimal ports are
	// offered.
	hdr := &Header{Src: m.Node(0, 0), Dst: m.Node(4, 3), Length: 4}
	req := Request{Node: m.Node(1, 1), InPort: topology.West, InVC: VNSouthLast, Hdr: hdr}
	hdr.VNet = VNSouthLast
	cands := alg.Route(req)
	if len(cands) != 2 {
		t.Fatalf("NARA should offer both minimal ports, got %v", cands)
	}
	for _, c := range cands {
		if c.VC != VNSouthLast {
			t.Fatalf("north-bound message must stay in south-last network, got %v", c)
		}
		if c.Port != topology.North && c.Port != topology.East {
			t.Fatalf("unexpected port %d", c.Port)
		}
	}
}

func TestNARAVNetAssignment(t *testing.T) {
	m := topology.NewMesh(4, 4)
	alg := NewNARA(m)
	// North-bound message gets south-last; south-bound north-last.
	hdrN := &Header{Src: m.Node(0, 0), Dst: m.Node(0, 3), Length: 4}
	cands := alg.Route(Request{Node: hdrN.Src, InPort: InjectionPort, Hdr: hdrN})
	if len(cands) != 1 || cands[0].VC != VNSouthLast {
		t.Fatalf("north-bound injection: %v", cands)
	}
	alg.NoteHop(Request{Node: hdrN.Src, InPort: InjectionPort, Hdr: hdrN}, cands[0])
	if hdrN.VNet != VNSouthLast {
		t.Fatal("NoteHop should latch the VNet")
	}
	hdrS := &Header{Src: m.Node(0, 3), Dst: m.Node(0, 0), Length: 4}
	cands = alg.Route(Request{Node: hdrS.Src, InPort: InjectionPort, Hdr: hdrS})
	if len(cands) != 1 || cands[0].VC != VNNorthLast {
		t.Fatalf("south-bound injection: %v", cands)
	}
}

func TestNARAAllPairsWalk(t *testing.T) {
	m := topology.NewMesh(5, 5)
	alg := NewNARA(m)
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, _ := walk(t, m, alg, topology.NodeID(s), topology.NodeID(d), 100)
			if !ok || hops != m.Dist(topology.NodeID(s), topology.NodeID(d)) {
				t.Fatalf("nara %d->%d: ok=%v hops=%d", s, d, ok, hops)
			}
		}
	}
}

func TestNAFTAEqualsNARAWithoutFaults(t *testing.T) {
	m := topology.NewMesh(6, 5)
	nafta := NewNAFTA(m)
	nara := NewNARA(m)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		s := topology.NodeID(rng.Intn(m.Nodes()))
		d := topology.NodeID(rng.Intn(m.Nodes()))
		if s == d {
			continue
		}
		hdr := &Header{Src: s, Dst: d, Length: 4}
		req := Request{Node: s, InPort: InjectionPort, Hdr: hdr}
		a := nafta.Route(req)
		b := nara.Route(req)
		if len(a) != len(b) {
			t.Fatalf("fault-free NAFTA and NARA disagree for %d->%d: %v vs %v", s, d, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("candidate %d differs: %v vs %v", j, a[j], b[j])
			}
		}
		if nafta.Steps(req) != 1 {
			t.Fatal("fault-free NAFTA must take one interpretation step")
		}
	}
}

func TestNAFTAWalksAroundBlock(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := NewNAFTA(m)
	// A 2x2 fault block in the middle.
	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	f.FailNode(m.Node(4, 3))
	f.FailNode(m.Node(3, 4))
	f.FailNode(m.Node(4, 4))
	alg.UpdateFaults(f)
	// Straight-through pair: (3,0) -> (3,7) must detour around the
	// block.
	ok, hops, hdr := walk(t, m, alg, m.Node(3, 0), m.Node(3, 7), 100)
	if !ok {
		t.Fatal("NAFTA failed to route around the block")
	}
	if hops <= m.Dist(m.Node(3, 0), m.Node(3, 7)) {
		t.Fatalf("detour should be non-minimal, got %d hops", hops)
	}
	if !hdr.Marked || hdr.Misroutes == 0 {
		t.Fatalf("detoured message must be marked: %+v", hdr)
	}
}

func TestNAFTADeliveryUnderRandomFaults(t *testing.T) {
	m := topology.NewMesh(8, 8)
	for seed := int64(0); seed < 8; seed++ {
		f, err := fault.Random(m, fault.RandomOptions{Nodes: 4, Seed: seed, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		alg := NewNAFTA(m)
		alg.UpdateFaults(f)
		blocks := alg.Blocks()
		delivered, eligible := 0, 0
		for s := 0; s < m.Nodes(); s++ {
			for d := 0; d < m.Nodes(); d++ {
				if s == d || blocks.DisabledNode(topology.NodeID(s)) || blocks.DisabledNode(topology.NodeID(d)) {
					continue
				}
				eligible++
				ok, _, _ := walk(t, m, alg, topology.NodeID(s), topology.NodeID(d), 200)
				if ok {
					delivered++
				}
			}
		}
		if eligible == 0 {
			t.Fatal("no eligible pairs")
		}
		// The convex-completion approximation may sacrifice a few
		// awkward pairs, but the vast majority must be delivered.
		if float64(delivered) < 0.99*float64(eligible) {
			t.Fatalf("seed %d: delivered %d of %d eligible pairs", seed, delivered, eligible)
		}
	}
}

func TestNAFTAStepsUnderFaults(t *testing.T) {
	m := topology.NewMesh(6, 6)
	alg := NewNAFTA(m)
	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	alg.UpdateFaults(f)
	// A message whose minimal set survives: two steps.
	hdr := &Header{Src: m.Node(0, 0), Dst: m.Node(5, 5), Length: 4}
	req := Request{Node: m.Node(0, 0), InPort: InjectionPort, Hdr: hdr}
	if got := alg.Steps(req); got != 2 {
		t.Fatalf("Steps with surviving minimal set = %d, want 2", got)
	}
	// A message forced onto the exception path: three steps.
	hdr2 := &Header{Src: m.Node(3, 2), Dst: m.Node(3, 4), Length: 4, VNet: VNSouthLast}
	req2 := Request{Node: m.Node(3, 2), InPort: InjectionPort, Hdr: hdr2}
	if got := alg.Steps(req2); got != 3 {
		t.Fatalf("Steps on exception path = %d, want 3", got)
	}
}

func TestNAFTAMisrouteBudget(t *testing.T) {
	m := topology.NewMesh(6, 6)
	alg := NewNAFTA(m)
	alg.MaxMisroutes = 1
	f := fault.NewSet()
	// Wall of node faults across most of the mesh at y=3.
	for x := 0; x < 5; x++ {
		f.FailNode(m.Node(x, 3))
	}
	alg.UpdateFaults(f)
	hdr := &Header{Src: m.Node(0, 0), Dst: m.Node(0, 5), Length: 4, Misroutes: 1}
	req := Request{Node: m.Node(0, 2), InPort: topology.South, InVC: VNSouthLast, Hdr: hdr}
	hdr.VNet = VNSouthLast
	// Budget exhausted and minimal set blocked: unroutable.
	if cands := alg.Route(req); len(cands) != 0 {
		t.Fatalf("expected unroutable with exhausted budget, got %v", cands)
	}
}

func TestRouteCStates(t *testing.T) {
	h := topology.NewHypercube(4)
	alg := NewRouteC(h)
	for _, s := range alg.States() {
		if s != StateSafe {
			t.Fatal("fault-free network must be all safe")
		}
	}
	// Node 0 with two faulty neighbours becomes strongly unsafe.
	f := fault.NewSet()
	f.FailNode(h.Neighbor(0, 0))
	f.FailNode(h.Neighbor(0, 1))
	alg.UpdateFaults(f)
	if got := alg.States()[0]; got != StateSUnsafe {
		t.Fatalf("state(0) = %v, want sunsafe", got)
	}
	// A node with two faulty incident links likewise.
	f2 := fault.NewSet()
	f2.FailLink(5, h.Neighbor(5, 0))
	f2.FailLink(5, h.Neighbor(5, 1))
	alg.UpdateFaults(f2)
	if got := alg.States()[5]; got != StateSUnsafe {
		t.Fatalf("state(5) = %v, want sunsafe", got)
	}
}

func TestRouteCUnsafePropagation(t *testing.T) {
	h := topology.NewHypercube(3)
	alg := NewRouteC(h)
	// Make nodes 1 and 2 faulty: node 0 (neighbours 1,2,4) is
	// strongly unsafe; node 3 (neighbours 1,2,7) likewise.
	f := fault.NewSet()
	f.FailNode(1)
	f.FailNode(2)
	alg.UpdateFaults(f)
	st := alg.States()
	if st[0] != StateSUnsafe || st[3] != StateSUnsafe {
		t.Fatalf("states = %v", st)
	}
	// Node 4 has neighbours 5, 6, 0: one not-safe (0); stays safe.
	if st[4] != StateSafe {
		t.Fatalf("state(4) = %v, want safe", st[4])
	}
	// Node 7 has neighbours 6, 5, 3: one not-safe (3); stays safe.
	if st[7] != StateSafe {
		t.Fatalf("state(7) = %v, want safe", st[7])
	}
	if alg.TotallyUnsafe() {
		t.Fatal("network is not totally unsafe")
	}
}

func TestRouteCOrdinaryUnsafeSecondWave(t *testing.T) {
	h := topology.NewHypercube(3)
	alg := NewRouteC(h)
	// Faults at 1, 2, 4: all three neighbours of 0.
	f := fault.NewSet()
	f.FailNode(1)
	f.FailNode(2)
	f.FailNode(4)
	alg.UpdateFaults(f)
	st := alg.States()
	if st[0] != StateSUnsafe {
		t.Fatalf("state(0) = %v, want sunsafe", st[0])
	}
	// 3 (nbrs 1,2,7), 5 (nbrs 1,4,7), 6 (nbrs 2,4,7): each has two
	// faulty neighbours -> sunsafe. 7 (nbrs 3,5,6): two+ not-safe
	// neighbours -> ounsafe by propagation.
	for _, n := range []topology.NodeID{3, 5, 6} {
		if st[n] != StateSUnsafe {
			t.Fatalf("state(%d) = %v, want sunsafe", n, st[n])
		}
	}
	if st[7] != StateOUnsafe {
		t.Fatalf("state(7) = %v, want ounsafe", st[7])
	}
	if !alg.TotallyUnsafe() {
		t.Fatal("every surviving node is unsafe -> totally unsafe")
	}
}

func TestRouteCAllPairsFaultFree(t *testing.T) {
	h := topology.NewHypercube(4)
	alg := NewRouteC(h)
	for s := 0; s < h.Nodes(); s++ {
		for d := 0; d < h.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, hdr := walk(t, h, alg, topology.NodeID(s), topology.NodeID(d), 50)
			if !ok || hops != h.Dist(topology.NodeID(s), topology.NodeID(d)) {
				t.Fatalf("routec %d->%d: ok=%v hops=%d", s, d, ok, hops)
			}
			if hdr.Marked {
				t.Fatal("fault-free message must not be marked")
			}
		}
	}
}

func TestRouteCEqualsNFTFaultFree(t *testing.T) {
	h := topology.NewHypercube(5)
	ft := NewRouteC(h)
	nft := NewRouteCNFT(h)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		s := topology.NodeID(rng.Intn(h.Nodes()))
		d := topology.NodeID(rng.Intn(h.Nodes()))
		if s == d {
			continue
		}
		hdr1 := &Header{Src: s, Dst: d, Length: 4}
		hdr2 := &Header{Src: s, Dst: d, Length: 4}
		a := ft.Route(Request{Node: s, InPort: InjectionPort, Hdr: hdr1})
		b := nft.Route(Request{Node: s, InPort: InjectionPort, Hdr: hdr2})
		if len(a) != len(b) {
			t.Fatalf("ROUTE_C and stripped variant disagree fault-free: %v vs %v", a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("candidate %d: %v vs %v", j, a[j], b[j])
			}
		}
	}
}

// Within the original algorithm's guarantee regime (up to n-1 node
// faults in an n-cube, no link faults) every surviving pair must be
// delivered.
func TestRouteCDeliveryNodeFaultGuarantee(t *testing.T) {
	h := topology.NewHypercube(5)
	for seed := int64(0); seed < 8; seed++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 4, Seed: seed, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		alg := NewRouteC(h)
		alg.UpdateFaults(f)
		for s := 0; s < h.Nodes(); s++ {
			for d := 0; d < h.Nodes(); d++ {
				if s == d || f.NodeFaulty(topology.NodeID(s)) || f.NodeFaulty(topology.NodeID(d)) {
					continue
				}
				ok, _, _ := walk(t, h, alg, topology.NodeID(s), topology.NodeID(d), 200)
				if !ok {
					t.Fatalf("seed %d: ROUTE_C failed %d->%d within the n-1 node-fault guarantee", seed, s, d)
				}
			}
		}
	}
}

// Beyond the guarantee (mixed node and link faults, five faults total
// on a 5-cube) the bounded detour budget may sacrifice a small
// fraction of pairs; the bulk must still be delivered.
func TestRouteCDeliveryBeyondGuarantee(t *testing.T) {
	h := topology.NewHypercube(5)
	for seed := int64(0); seed < 8; seed++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 3, Links: 2, Seed: seed, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		alg := NewRouteC(h)
		alg.UpdateFaults(f)
		delivered, eligible := 0, 0
		for s := 0; s < h.Nodes(); s++ {
			for d := 0; d < h.Nodes(); d++ {
				if s == d || f.NodeFaulty(topology.NodeID(s)) || f.NodeFaulty(topology.NodeID(d)) {
					continue
				}
				eligible++
				ok, _, _ := walk(t, h, alg, topology.NodeID(s), topology.NodeID(d), 200)
				if ok {
					delivered++
				}
			}
		}
		if float64(delivered) < 0.95*float64(eligible) {
			t.Fatalf("seed %d: delivered %d of %d", seed, delivered, eligible)
		}
	}
}

func TestRouteCNFTDropsOnFault(t *testing.T) {
	h := topology.NewHypercube(3)
	alg := NewRouteCNFT(h)
	f := fault.NewSet()
	f.FailNode(1)
	f.FailNode(2)
	f.FailNode(4)
	alg.UpdateFaults(f)
	// All of node 0's neighbours are gone: unroutable anywhere.
	ok, _, _ := walk(t, h, alg, 0, 7, 20)
	if ok {
		t.Fatal("stripped variant should fail when minimal ports are faulty")
	}
}

func TestRouteCVCDiscipline(t *testing.T) {
	h := topology.NewHypercube(4)
	alg := NewRouteC(h)
	// Ascending message: src 0 -> dst 15 uses only up moves on VC0.
	hdr := &Header{Src: 0, Dst: 15, Length: 4}
	cands := alg.Route(Request{Node: 0, InPort: InjectionPort, Hdr: hdr})
	for _, c := range cands {
		if c.VC != routecVCUp {
			t.Fatalf("ascending hop must use VC0, got %v", c)
		}
	}
	// Descending message: src 15 -> dst 0 uses VC1.
	hdr2 := &Header{Src: 15, Dst: 0, Length: 4}
	cands = alg.Route(Request{Node: 15, InPort: InjectionPort, Hdr: hdr2})
	for _, c := range cands {
		if c.VC != routecVCDown {
			t.Fatalf("descending hop must use VC1, got %v", c)
		}
	}
}

func TestSelectors(t *testing.T) {
	view := fakeView{
		credits: map[[3]int]int{{1, 0, 0}: 1, {1, 1, 0}: 3},
		queued:  map[[3]int]int{{1, 0, 0}: 9, {1, 1, 0}: 2},
	}
	cands := []Candidate{{Port: 0, VC: 0}, {Port: 1, VC: 0}}
	if got := (FirstFit{}).Select(view, 1, cands, nil); got != cands[0] {
		t.Fatalf("FirstFit = %v", got)
	}
	if got := (MaxCredit{}).Select(view, 1, cands, nil); got.Port != 1 {
		t.Fatalf("MaxCredit = %v, want port 1", got)
	}
	if got := (MinQueue{}).Select(view, 1, cands, nil); got.Port != 1 {
		t.Fatalf("MinQueue = %v, want port 1", got)
	}
	rr := NewRoundRobin()
	a := rr.Select(view, 1, cands, nil)
	b := rr.Select(view, 1, cands, nil)
	if a == b {
		t.Fatal("RoundRobin should alternate")
	}
}

type fakeView struct {
	credits map[[3]int]int
	queued  map[[3]int]int
}

func (f fakeView) OutFree(n topology.NodeID, p, vc int) bool { return true }
func (f fakeView) Credits(n topology.NodeID, p, vc int) int {
	return f.credits[[3]int{int(n), p, vc}]
}
func (f fakeView) QueuedFlits(n topology.NodeID, p, vc int) int {
	return f.queued[[3]int{int(n), p, vc}]
}
