package routing

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

func TestNegHopRejectsBadInputs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	if _, err := NewNegHop(m, 1); err == nil {
		t.Fatal("vcs=1 should be rejected")
	}
	// An odd torus is not bipartite.
	if _, err := NewNegHop(topology.NewTorus(3, 3), 8); err == nil {
		t.Fatal("odd torus should be rejected (not bipartite)")
	}
	// An even torus is bipartite.
	if _, err := NewNegHop(topology.NewTorus(4, 4), 8); err != nil {
		t.Fatalf("even torus: %v", err)
	}
}

func TestNegHopColoring(t *testing.T) {
	m := topology.NewMesh(5, 5)
	alg, err := NewNegHop(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent nodes differ in colour everywhere.
	for n := 0; n < m.Nodes(); n++ {
		for p := 0; p < m.Ports(); p++ {
			nb := m.Neighbor(topology.NodeID(n), p)
			if nb == topology.Invalid {
				continue
			}
			if alg.color[n] == alg.color[nb] {
				t.Fatalf("nodes %d and %d share colour", n, nb)
			}
		}
	}
}

func TestNegHopAllPairsFaultFree(t *testing.T) {
	m := topology.NewMesh(6, 6)
	// Diameter 10: minimal paths need at most 5 negative hops.
	alg, err := NewNegHop(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, _ := walk(t, m, alg, topology.NodeID(s), topology.NodeID(d), 100)
			if !ok || hops != m.Dist(topology.NodeID(s), topology.NodeID(d)) {
				t.Fatalf("neghop %d->%d: ok=%v hops=%d", s, d, ok, hops)
			}
		}
	}
}

// Property: the VC level along any walk equals the number of negative
// hops and never exceeds the budget.
func TestNegHopLevelDiscipline(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg, err := NewNegHop(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 4, Seed: 2, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	alg.UpdateFaults(f)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
			continue
		}
		hdr := &Header{Src: src, Dst: dst, Length: 4}
		req := Request{Node: src, InPort: InjectionPort, Hdr: hdr}
		for hops := 0; req.Node != dst && hops < 200; hops++ {
			cands := alg.Route(req)
			if len(cands) == 0 {
				break
			}
			for _, c := range cands {
				if c.VC < hdr.NegHops || c.VC > hdr.NegHops+1 {
					t.Fatalf("candidate VC %d inconsistent with level %d", c.VC, hdr.NegHops)
				}
				if c.VC >= alg.NumVCs() {
					t.Fatalf("VC %d exceeds budget %d", c.VC, alg.NumVCs())
				}
			}
			chosen := cands[0]
			before := hdr.NegHops
			alg.NoteHop(req, chosen)
			if hdr.NegHops != chosen.VC {
				t.Fatalf("level after hop %d != candidate VC %d (before %d)", hdr.NegHops, chosen.VC, before)
			}
			next := m.Neighbor(req.Node, chosen.Port)
			back, _ := m.PortTo(next, req.Node)
			req = Request{Node: next, InPort: back, InVC: chosen.VC, Hdr: hdr}
		}
	}
}

func TestNegHopDeliveryGrowsWithVCs(t *testing.T) {
	m := topology.NewMesh(10, 10)
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 6, Seed: 5, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	deliveredAt := func(vcs int) int {
		alg, err := NewNegHop(m, vcs)
		if err != nil {
			t.Fatal(err)
		}
		alg.UpdateFaults(f)
		delivered := 0
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 400; trial++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
				continue
			}
			hdr := &Header{Src: src, Dst: dst, Length: 4}
			req := Request{Node: src, InPort: InjectionPort, Hdr: hdr}
			okDelivered := false
			for hops := 0; hops < 300; hops++ {
				if req.Node == dst {
					okDelivered = true
					break
				}
				cands := alg.Route(req)
				if len(cands) == 0 {
					break
				}
				alg.NoteHop(req, cands[0])
				next := m.Neighbor(req.Node, cands[0].Port)
				back, _ := m.PortTo(next, req.Node)
				req = Request{Node: next, InPort: back, InVC: cands[0].VC, Hdr: hdr}
			}
			if okDelivered {
				delivered++
			}
		}
		return delivered
	}
	lo := deliveredAt(4)
	hi := deliveredAt(14)
	if hi <= lo {
		t.Fatalf("more VCs should deliver more under faults: %d (4 VCs) vs %d (14 VCs)", lo, hi)
	}
	// Even with a diameter-sized budget the scheme loses a tail of
	// pairs: without fault state it cannot plan short detours and
	// burns its level budget wandering — the E11 trade-off. Expect a
	// clear majority delivered but not everything.
	if hi < 280 {
		t.Fatalf("14 VCs should deliver the clear majority: %d", hi)
	}
}

func TestTorusDORAllPairsMinimal(t *testing.T) {
	tor := topology.NewTorus(5, 4)
	alg := NewTorusDOR(tor)
	for s := 0; s < tor.Nodes(); s++ {
		for d := 0; d < tor.Nodes(); d++ {
			if s == d {
				continue
			}
			ok, hops, _ := walk(t, tor, alg, topology.NodeID(s), topology.NodeID(d), 50)
			if !ok {
				t.Fatalf("torusdor failed %d->%d", s, d)
			}
			if want := tor.Dist(topology.NodeID(s), topology.NodeID(d)); hops != want {
				t.Fatalf("torusdor %d->%d: %d hops, want %d", s, d, hops, want)
			}
		}
	}
}

func TestTorusDORDatelineDiscipline(t *testing.T) {
	tor := topology.NewTorus(6, 6)
	alg := NewTorusDOR(tor)
	// A route that wraps in X: from (5,0) to (1,0) the short way is
	// east across the wrap link.
	hdr := &Header{Src: tor.Node(5, 0), Dst: tor.Node(1, 0), Length: 4}
	req := Request{Node: hdr.Src, InPort: InjectionPort, Hdr: hdr}
	vcs := []int{}
	for hops := 0; req.Node != hdr.Dst && hops < 10; hops++ {
		cands := alg.Route(req)
		if len(cands) != 1 {
			t.Fatalf("oblivious routing must give one candidate, got %v", cands)
		}
		vcs = append(vcs, cands[0].VC)
		alg.NoteHop(req, cands[0])
		next := tor.Neighbor(req.Node, cands[0].Port)
		back, _ := tor.PortTo(next, req.Node)
		req = Request{Node: next, InPort: back, InVC: cands[0].VC, Hdr: hdr}
	}
	// Two hops: (5,0)->(0,0) crossing the dateline on VC0, then
	// (0,0)->(1,0) on VC1.
	if len(vcs) != 2 || vcs[0] != 0 || vcs[1] != 1 {
		t.Fatalf("dateline VCs = %v, want [0 1]", vcs)
	}
}

func TestTorusDORDropsOnFault(t *testing.T) {
	tor := topology.NewTorus(4, 4)
	alg := NewTorusDOR(tor)
	f := fault.NewSet()
	f.FailLink(tor.Node(1, 0), tor.Node(2, 0))
	alg.UpdateFaults(f)
	ok, _, _ := walk(t, tor, alg, tor.Node(0, 0), tor.Node(2, 0), 20)
	if ok {
		t.Fatal("oblivious torus routing cannot avoid a fault on its fixed path")
	}
}

func TestUpDownAllPairsIrregular(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := topology.RandomIrregular(16, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		alg := NewUpDown(g)
		for s := 0; s < g.Nodes(); s++ {
			for d := 0; d < g.Nodes(); d++ {
				if s == d {
					continue
				}
				ok, _, _ := walk(t, g, alg, topology.NodeID(s), topology.NodeID(d), 10*g.Nodes())
				if !ok {
					t.Fatalf("seed %d: updown failed %d->%d", seed, s, d)
				}
			}
		}
	}
}

func TestUpDownFaultReconfiguration(t *testing.T) {
	g, err := topology.RandomIrregular(18, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewUpDown(g)
	f, err := fault.Random(g, fault.RandomOptions{Nodes: 2, Links: 2, Seed: 5, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	alg.UpdateFaults(f)
	if alg.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", alg.Rebuilds)
	}
	filter := f.Filter()
	for s := 0; s < g.Nodes(); s++ {
		for d := 0; d < g.Nodes(); d++ {
			if s == d || f.NodeFaulty(topology.NodeID(s)) || f.NodeFaulty(topology.NodeID(d)) {
				continue
			}
			if !topology.Reachable(g, topology.NodeID(s), topology.NodeID(d), filter) {
				continue
			}
			ok, _, _ := walk(t, g, alg, topology.NodeID(s), topology.NodeID(d), 10*g.Nodes())
			if !ok {
				t.Fatalf("updown failed reachable pair %d->%d after reconfiguration", s, d)
			}
		}
	}
}

// Up*/down* phase discipline: no up hop may follow a down hop.
func TestUpDownPhaseDiscipline(t *testing.T) {
	g, err := topology.RandomIrregular(14, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewUpDown(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		if src == dst {
			continue
		}
		hdr := &Header{Src: src, Dst: dst, Length: 4}
		req := Request{Node: src, InPort: InjectionPort, Hdr: hdr}
		descended := false
		for hops := 0; req.Node != dst && hops < 100; hops++ {
			cands := alg.Route(req)
			if len(cands) == 0 {
				t.Fatalf("updown blocked fault-free %d->%d", src, dst)
			}
			chosen := cands[rng.Intn(len(cands))]
			nb := g.Neighbor(req.Node, chosen.Port)
			phaseBefore := hdr.Phase
			alg.NoteHop(req, chosen)
			if phaseBefore == 1 && hdr.Phase == 0 {
				t.Fatal("phase must be monotone (up* then down*)")
			}
			if descended && hdr.Phase == 0 {
				t.Fatal("up hop after descending")
			}
			if hdr.Phase == 1 {
				descended = true
			}
			back, _ := g.PortTo(nb, req.Node)
			req = Request{Node: nb, InPort: back, InVC: chosen.VC, Hdr: hdr}
		}
	}
}
