package routing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/topology"
)

// Maze implements Maze-routing (Fattah et al., NOCS'15) generalised to
// the reproduction's topologies: a fully distributed algorithm with
// guaranteed delivery or an explicit unreachable verdict.
//
// Per-message state machine (Header.MazeMode):
//
//   - normal (0): take a productive move toward the destination. On
//     mesh and torus the productive set is geometric (any usable port
//     whose neighbour is strictly closer in fault-oblivious metric
//     distance); on irregular graphs it is a descent of the post-fault
//     BFS distance table. When every productive port is blocked the
//     message enters traversal mode, remembering entry node, entry wall
//     port and entry distance in the header (face routing).
//   - traversal (1): right-hand wall-follow along the blocking fault
//     region's boundary. The traversal exits back to normal mode from
//     any node strictly closer than the entry distance with a usable
//     productive port (this strict monotonicity is Maze-routing's
//     livelock argument). The disconnection heuristic declares the
//     destination unreachable when the message is back at its entry
//     node about to repeat its entry wall port — a completed loop
//     without improvement; a hop budget of 4*nodes+16 backstops fault
//     geometries where the loop test never fires.
//   - escape (2): a sticky Duato-style escape channel. Every decision
//     in normal and traversal mode additionally offers one escape
//     candidate on VC1, an up*/down* hop computed per connected
//     component of the post-fault graph; once a message is granted the
//     escape VC it stays there (the up*-then-down* order is acyclic,
//     so VC1 alone is deadlock-free, and the adaptive VC0 moves can
//     always drain into it).
//
// The verdict plane: UpdateFaults labels the connected components of
// the post-fault graph, and the verdict the simulator acts on is the
// component table. A genuinely unreachable destination is certified at
// the first decision — Route offers no candidate at all and
// UnreachableVerdict confirms the drop as a verdict, never a
// sacrifice. (Certifying immediately is load-bearing: a doomed message
// allowed to wall-follow would clog the VC0 buffers of its cut-off
// component without any escape continuation, a genuine deadlock.) The
// wall-follow disconnection heuristic is the paper's distributed
// detection mechanism and stays in the header state machine; in live
// runs its surviving role is the false alarm — e.g. a torus ring cut,
// where the wall-follow loops one way around while the destination is
// reachable the other way — which forces the message onto the escape
// channel instead of dropping it.
type Maze struct {
	g      topology.Graph
	faults *fault.Set

	// dist is the fault-oblivious metric on geometric graphs (mesh,
	// torus); nil on irregular graphs, where distTab is used instead.
	dist func(a, b topology.NodeID) int

	// epoch counts UpdateFaults calls; headers stamp it so traversal
	// and escape state from before a fault event is restarted instead
	// of trusted.
	epoch uint64

	// comp labels the connected components of the post-fault graph
	// (-1 for faulty nodes) — the verdict cross-check and the escape
	// plane's component structure.
	comp []int
	// level holds per-component BFS levels from each component's root
	// (its lowest node ID); the up/down orientation of the escape
	// plane.
	level []int
	// canDown[a*n+d]: d reachable from a on down hops only.
	// canUD[a*n+d]: d reachable from a on an up*/down* path.
	canDown []bool
	canUD   []bool

	// distTab[a*n+d] is the post-fault BFS distance (irregular graphs
	// only; -1 when unreachable).
	distTab []int
}

// Maze mode values (Header.MazeMode).
const (
	MazeModeNormal    = 0
	MazeModeTraversal = 1
	MazeModeEscape    = 2
)

// MazeMaxPorts bounds the per-port fact arrays; NewMaze rejects graphs
// with more ports so the decision path stays allocation free.
const MazeMaxPorts = 8

// MazeFacts is the complete input of one maze decision, computed once
// per decision and shared verbatim by the native Route/NoteHop pair and
// the rule-DSL adapter's input fill (the adapter's information units).
// All fields follow the effective (epoch-checked) state, not the raw
// header.
type MazeFacts struct {
	// Mode is the effective mode after the epoch check: stale
	// traversal state restarts as normal, stale escape state stays
	// escape with the phase reset.
	Mode int
	// Done is 1 when the traversal declares disconnection (loop
	// heuristic or hop budget).
	Done int
	// ExitOK is 1 when the traversal may exit to normal mode (strictly
	// closer than the entry distance, productive port usable).
	ExitOK int
	// Wall is the wall-follow port of this decision (entry rule at
	// injection/entry, right-hand rule inside a traversal), or Ports
	// when no port is usable at all.
	Wall int
	// Prod flags the usable productive ports.
	Prod [MazeMaxPorts]int
	// EscOK flags the legal escape hops under the effective phase.
	EscOK [MazeMaxPorts]int
	// Reach reports whether the destination is reachable from the
	// deciding node on the post-fault graph (component table).
	Reach bool
	// Entry reports that a normal-mode move would enter traversal
	// mode (no productive port usable).
	Entry bool
	// Ports is the graph's port count.
	Ports int
}

// NewMaze builds Maze-routing on g (initially fault free). Mesh and
// torus graphs route geometrically; any other graph falls back to the
// distance-table descent for productive moves.
func NewMaze(g topology.Graph) (*Maze, error) {
	if g.Ports() > MazeMaxPorts {
		return nil, fmt.Errorf("routing: maze supports at most %d ports, %s has %d", MazeMaxPorts, g.Name(), g.Ports())
	}
	m := &Maze{g: g, faults: fault.NewSet()}
	switch t := g.(type) {
	case *topology.Mesh:
		m.dist = t.Dist
	case *topology.Torus:
		m.dist = t.Dist
	}
	m.UpdateFaults(m.faults)
	m.epoch = 0
	return m, nil
}

func (m *Maze) Name() string { return "maze" }

// NumVCs is two: the adaptive maze channel plus the escape channel.
func (m *Maze) NumVCs() int { return 2 }

// Steps is two rule-base consultations per decision (move + escape),
// like ROUTE_C's fixed two.
func (m *Maze) Steps(Request) int { return 2 }

// DeadlockRegime tags the maze escape-channel discipline.
func (m *Maze) DeadlockRegime() string { return RegimeMaze }

// AllocNeedsCredit: the VC0 maze moves are fully adaptive (wall
// follows turn in every direction), so the deadlock argument is pure
// Duato — it holds only if a blocked head keeps re-arbitrating with
// the escape VC selectable, i.e. never commits to a credit-starved
// output (routing.CreditGatedVA). Without the gate, four worms turning
// around a fault region can each commit to the next one's full VC0
// buffer and close a wait cycle the escape channel can no longer
// break.
func (m *Maze) AllocNeedsCredit() bool { return true }

// FlushOnFault flags worms already granted the escape channel: a fault
// event re-roots and re-levels the up*/down* orientation, and an
// old-orientation occupant of VC1 buffers can close a wait cycle with
// worms escaping under the new orientation (routing.ReconfigFlusher).
// VC0 worms survive — the adaptive maze moves carry no orientation.
func (m *Maze) FlushOnFault(h *Header) bool { return h.MazeMode == MazeModeEscape }

// ConcurrentDecisionsSafe: decisions read only fault-stable tables and
// write nothing but the handed header (routing.ConcurrentRoutable).
func (m *Maze) ConcurrentDecisionsSafe() {}

// up reports whether the hop a->b ascends toward its component's root
// (lower level wins, node ID breaks ties — acyclic in both phases).
func (m *Maze) up(a, b topology.NodeID) bool {
	if m.level[b] != m.level[a] {
		return m.level[b] < m.level[a]
	}
	return b < a
}

// UpdateFaults relabels components, reorients the escape plane and —
// on irregular graphs — rebuilds the distance table. Advancing the
// epoch invalidates all in-flight traversal/escape header state.
func (m *Maze) UpdateFaults(f *fault.Set) {
	m.faults = f
	m.epoch++
	n := m.g.Nodes()

	m.comp = make([]int, n)
	for i := range m.comp {
		m.comp[i] = -1
	}
	m.level = make([]int, n)
	for i := range m.level {
		m.level[i] = n + i // disconnected/faulty: distinct high level
	}
	comps := topology.Components(m.g, f.Filter())
	for ci, nodes := range comps {
		root := nodes[0]
		for _, nd := range nodes {
			if nd < root {
				root = nd
			}
		}
		levels := topology.BFSDist(m.g, root, f.Filter())
		for _, nd := range nodes {
			m.comp[nd] = ci
			if levels[nd] >= 0 {
				m.level[nd] = levels[nd]
			}
		}
	}

	// Escape-plane reachability over the acyclic orientation, by
	// fixpoint iteration (the up*/down* tables of updown.go, here per
	// component because the maze family deliberately runs partitioned
	// graphs).
	m.canDown = make([]bool, n*n)
	m.canUD = make([]bool, n*n)
	for i := 0; i < n; i++ {
		if m.comp[i] >= 0 {
			m.canDown[i*n+i] = true
			m.canUD[i*n+i] = true
		}
	}
	usable := func(a, b topology.NodeID) bool { return f.HopUsable(a, b) }
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			if m.comp[a] < 0 {
				continue
			}
			for p := 0; p < m.g.Ports(); p++ {
				b := m.g.Neighbor(topology.NodeID(a), p)
				if b == topology.Invalid || !usable(topology.NodeID(a), b) {
					continue
				}
				if !m.up(topology.NodeID(a), b) { // a -> b goes down
					for d := 0; d < n; d++ {
						if m.canDown[int(b)*n+d] && !m.canDown[a*n+d] {
							m.canDown[a*n+d] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			if m.comp[a] < 0 {
				continue
			}
			for d := 0; d < n; d++ {
				if m.canDown[a*n+d] && !m.canUD[a*n+d] {
					m.canUD[a*n+d] = true
					changed = true
				}
			}
			for p := 0; p < m.g.Ports(); p++ {
				b := m.g.Neighbor(topology.NodeID(a), p)
				if b == topology.Invalid || !usable(topology.NodeID(a), b) {
					continue
				}
				if m.up(topology.NodeID(a), b) { // a -> b goes up
					for d := 0; d < n; d++ {
						if m.canUD[int(b)*n+d] && !m.canUD[a*n+d] {
							m.canUD[a*n+d] = true
							changed = true
						}
					}
				}
			}
		}
	}

	if m.dist == nil {
		m.distTab = make([]int, n*n)
		for src := 0; src < n; src++ {
			if m.comp[src] < 0 {
				for d := 0; d < n; d++ {
					m.distTab[src*n+d] = -1
				}
				continue
			}
			bfs := topology.BFSDist(m.g, topology.NodeID(src), f.Filter())
			copy(m.distTab[src*n:(src+1)*n], bfs)
		}
	}
}

// distTo is the productive-move metric: fault-oblivious geometric
// distance on mesh/torus, post-fault BFS distance elsewhere (-1 when
// unreachable).
func (m *Maze) distTo(a, b topology.NodeID) int {
	if m.dist != nil {
		return m.dist(a, b)
	}
	return m.distTab[int(a)*m.g.Nodes()+int(b)]
}

// usablePort reports whether port p of node cur leads to a usable
// neighbour.
func (m *Maze) usablePort(cur topology.NodeID, p int) bool {
	nb := m.g.Neighbor(cur, p)
	return nb != topology.Invalid && m.faults.HopUsable(cur, nb)
}

// productive reports whether port p of cur leads strictly closer to
// dst (and is usable).
func (m *Maze) productive(cur, dst topology.NodeID, p int) bool {
	if !m.usablePort(cur, p) {
		return false
	}
	nb := m.g.Neighbor(cur, p)
	dcur := m.distTo(cur, dst)
	dnb := m.distTo(nb, dst)
	return dcur > 0 && dnb >= 0 && dnb < dcur
}

// wallPort computes the wall-follow port of one decision: the entry
// rule (first usable port in ascending order) at injection or when the
// traversal is entered, the right-hand rule (right, straight, left,
// back relative to the travel direction) inside a mesh/torus
// traversal, and the cyclic successor of the arrival port on irregular
// graphs. Returns Ports() when no port is usable.
func (m *Maze) wallPort(cur topology.NodeID, inPort int, inTraversal bool) int {
	P := m.g.Ports()
	if !inTraversal || inPort == InjectionPort {
		for p := 0; p < P; p++ {
			if m.usablePort(cur, p) {
				return p
			}
		}
		return P
	}
	if m.dist != nil && P == topology.MeshPorts {
		d := topology.OppositeMeshPort(inPort) // travel direction
		for _, p := range [4]int{(d + 1) % 4, d, (d + 3) % 4, (d + 2) % 4} {
			if m.usablePort(cur, p) {
				return p
			}
		}
		return P
	}
	for k := 1; k <= P; k++ {
		p := (inPort + k) % P
		if m.usablePort(cur, p) {
			return p
		}
	}
	return P
}

// mazeHopBudget bounds a traversal's wall-follow hops.
func (m *Maze) mazeHopBudget() int { return 4*m.g.Nodes() + 16 }

// Facts computes the shared decision inputs (see MazeFacts).
func (m *Maze) Facts(req Request) MazeFacts {
	cur, dst, h := req.Node, req.Hdr.Dst, req.Hdr
	P := m.g.Ports()
	f := MazeFacts{Ports: P, Wall: P}
	f.Reach = m.comp[cur] >= 0 && m.comp[dst] >= 0 && m.comp[cur] == m.comp[dst]

	// Effective mode: stale traversal state restarts as normal; stale
	// escape state stays escape (sticky) with the phase reset below.
	f.Mode = h.MazeMode
	stale := h.MazeEpoch != m.epoch
	if stale && f.Mode == MazeModeTraversal {
		f.Mode = MazeModeNormal
	}

	// An unreachable destination is certified at the very first
	// decision: no productive ports, no wall, disconnection declared —
	// no rule can fire, Route is empty and UnreachableVerdict confirms
	// the drop. Letting a doomed message wall-follow instead would fill
	// the VC0 buffers of a cut-off component with messages that can
	// never leave — the escape channel cannot absorb them because no
	// up*/down* continuation toward a foreign component exists — and
	// the resulting cyclic credit wait is a genuine deadlock.
	if !f.Reach {
		f.Done = 1
		return f
	}

	for p := 0; p < P; p++ {
		if m.productive(cur, dst, p) {
			f.Prod[p] = 1
		}
	}

	switch f.Mode {
	case MazeModeNormal:
		f.Entry = true
		for p := 0; p < P; p++ {
			if f.Prod[p] == 1 {
				f.Entry = false
				break
			}
		}
		if f.Entry {
			f.Wall = m.wallPort(cur, req.InPort, false)
		}
	case MazeModeTraversal:
		f.Wall = m.wallPort(cur, req.InPort, true)
		if h.MazeSteps > m.mazeHopBudget() ||
			(h.MazeSteps > 0 && cur == h.MazeStart && f.Wall == h.MazeStartPort) {
			f.Done = 1
		} else {
			d := m.distTo(cur, dst)
			if d >= 0 && d < h.MazeMD {
				for p := 0; p < P; p++ {
					if f.Prod[p] == 1 {
						f.ExitOK = 1
						break
					}
				}
			}
		}
	}

	// Escape hops: up while the effective phase allows it (an epoch
	// mismatch restarts the up*/down* walk from the current node),
	// down whenever a down-only continuation exists.
	if f.Reach {
		phase := h.Phase
		if stale {
			phase = 0
		}
		n := m.g.Nodes()
		for p := 0; p < P; p++ {
			if !m.usablePort(cur, p) {
				continue
			}
			nb := m.g.Neighbor(cur, p)
			if m.up(cur, nb) {
				if phase == 0 && m.canUD[int(nb)*n+int(dst)] {
					f.EscOK[p] = 1
				}
			} else if m.canDown[int(nb)*n+int(dst)] {
				f.EscOK[p] = 1
			}
		}
	}
	return f
}

// movePort resolves the VC0 maze move of facts f, or -1 when the
// decision offers none (escape mode, declared disconnection, or no
// usable port). This priority order is mirrored rule-for-rule by the
// maze_move rule base.
func movePortOf(f *MazeFacts) int {
	switch f.Mode {
	case MazeModeNormal:
		for p := 0; p < f.Ports; p++ {
			if f.Prod[p] == 1 {
				return p
			}
		}
		if f.Wall < f.Ports {
			return f.Wall // traversal entry
		}
	case MazeModeTraversal:
		if f.Done == 1 {
			return -1
		}
		if f.ExitOK == 1 {
			for p := 0; p < f.Ports; p++ {
				if f.Prod[p] == 1 {
					return p
				}
			}
		}
		if f.Wall < f.Ports {
			return f.Wall
		}
	}
	return -1
}

// escPortOf resolves the VC1 escape hop of facts f, or -1.
func escPortOf(f *MazeFacts) int {
	for p := 0; p < f.Ports; p++ {
		if f.EscOK[p] == 1 {
			return p
		}
	}
	return -1
}

func (m *Maze) Route(req Request) []Candidate {
	return m.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free decision path: at most one maze
// move on VC0 plus one escape hop on VC1. An empty result is a
// definitive unreachable verdict (see UnreachableVerdict).
func (m *Maze) RouteAppend(req Request, buf []Candidate) []Candidate {
	f := m.Facts(req)
	if p := movePortOf(&f); p >= 0 {
		buf = append(buf, Candidate{Port: p, VC: 0})
	}
	if p := escPortOf(&f); p >= 0 {
		buf = append(buf, Candidate{Port: p, VC: 1})
	}
	return buf
}

// UnreachableVerdict confirms that an empty Route result is a genuine
// unreachability verdict on the post-fault graph (component table),
// not a sacrifice (routing.UnreachableJudge).
func (m *Maze) UnreachableVerdict(req Request) bool {
	cur, dst := req.Node, req.Hdr.Dst
	return m.comp[cur] < 0 || m.comp[dst] < 0 || m.comp[cur] != m.comp[dst]
}

// NoteHop commits the state machine transition of the hop the
// simulator actually granted, re-deriving the decision's facts (Route
// must not modify the header).
func (m *Maze) NoteHop(req Request, chosen Candidate) {
	f := m.Facts(req)
	h := req.Hdr
	h.MazeEpoch = m.epoch
	if chosen.VC == 1 {
		// Escape granted: sticky, and the phase follows the hop's
		// orientation (after a down hop only down hops remain legal).
		h.MazeMode = MazeModeEscape
		nb := m.g.Neighbor(req.Node, chosen.Port)
		if m.up(req.Node, nb) {
			h.Phase = 0
		} else {
			h.Phase = 1
		}
		return
	}
	switch f.Mode {
	case MazeModeNormal:
		if f.Entry {
			h.MazeMode = MazeModeTraversal
			h.MazeStart = req.Node
			h.MazeStartPort = chosen.Port
			h.MazeMD = m.distTo(req.Node, h.Dst)
			h.MazeSteps = 1
		} else {
			h.MazeMode = MazeModeNormal
		}
	case MazeModeTraversal:
		if f.ExitOK == 1 && f.Prod[chosen.Port] == 1 {
			h.MazeMode = MazeModeNormal
		} else {
			h.MazeSteps++
		}
	}
}

var (
	_ Algorithm          = (*Maze)(nil)
	_ BufferedAlgorithm  = (*Maze)(nil)
	_ ConcurrentRoutable = (*Maze)(nil)
	_ UnreachableJudge   = (*Maze)(nil)
	_ DeadlockRegimer    = (*Maze)(nil)
	_ CreditGatedVA      = (*Maze)(nil)
	_ ReconfigFlusher    = (*Maze)(nil)
)
