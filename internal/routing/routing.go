// Package routing defines the routing-algorithm interface of the
// reproduced router and implements the algorithms discussed in the
// paper:
//
//   - XY dimension-order routing (mesh) and e-cube routing (hypercube),
//     the oblivious baselines the flexible router must be competitive
//     with (Section 1);
//   - spanning-tree routing, the strawman fault-tolerant algorithm of
//     Section 2.1;
//   - NARA, the non-fault-tolerant fully adaptive minimal mesh
//     algorithm underlying NAFTA;
//   - NAFTA (Cunningham/Avresky), fault-tolerant adaptive routing for
//     2-D meshes with convex fault-block completion and dead-end
//     states;
//   - ROUTE_C (Chiu/Wu), fault-tolerant routing for hypercubes with
//     safe/unsafe node states and five virtual channels, plus its
//     stripped-down non-fault-tolerant variant.
//
// Every algorithm separates the two sets of the paper's common
// structure: fault knowledge restricts the usable outputs (set 1), the
// topological/deadlock rules produce the admissible outputs toward the
// destination (set 2), and the selection policy picks one element of
// the intersection according to an adaptivity criterion.
package routing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/topology"
)

// InjectionPort is the InPort value of a request for a message that is
// being injected at its source node.
const InjectionPort = -1

// Deadlock-regime tags. Two routing engines may be hot-swapped while
// worms of the old engine are still in flight only when they share a
// deadlock-avoidance regime — the same virtual-channel discipline, so
// that messages routed under either table set cannot close a wait
// cycle together. The tags are opaque strings compared for equality by
// the reconfiguration safety gate; an algorithm that does not declare
// one is only swappable against an identically named engine.
const (
	// RegimeNAFTA: two virtual networks (north-last / south-last) on a
	// 2-D mesh, the NAFTA/NARA discipline.
	RegimeNAFTA = "mesh-vnet/2vc"
	// RegimeRouteC: ascending/descending phases plus bounded detour
	// levels on five VCs, the ROUTE_C hypercube discipline.
	RegimeRouteC = "cube-phase/5vc"
	// RegimeMaze: adaptive maze moves on VC0 with an always-offered
	// up*/down* escape channel on VC1 (Duato-style), the Maze-routing
	// discipline (mesh, torus and irregular graphs).
	RegimeMaze = "maze-escape/2vc"
)

// DeadlockRegimer is implemented by algorithms that declare their
// deadlock-avoidance regime for the hot-swap safety gate.
type DeadlockRegimer interface{ DeadlockRegime() string }

// RegimeOf returns an algorithm's deadlock-regime tag, falling back to
// name + VC count for algorithms that do not declare one (which makes
// them hot-swappable only against the same algorithm).
func RegimeOf(a Algorithm) string {
	if r, ok := a.(DeadlockRegimer); ok {
		return r.DeadlockRegime()
	}
	return fmt.Sprintf("%s/%dvc", a.Name(), a.NumVCs())
}

// Header carries the routing-relevant state of a message. The paper's
// Section 3 (lifelock avoidance) requires that routers can modify
// headers of messages detoured by faults; the fault-tolerance fields
// below are exactly that mutable state.
type Header struct {
	Src, Dst topology.NodeID
	Length   int // message length in flits, including head and tail

	// Misroutes counts non-minimal hops taken so far (the "path
	// length counter" of Section 3).
	Misroutes int
	// Marked flags a message that was diverted by a fault and is
	// treated exceptionally (NAFTA's test_exception rule base).
	Marked bool
	// Phase is ROUTE_C's routing phase: 0 while ascending (links with
	// increasing addresses), 1 while descending.
	Phase int
	// DetourLevel is ROUTE_C's hops-so-far escape level; it selects
	// among the extra virtual channels and is bounded, ensuring
	// livelock freedom.
	DetourLevel int
	// VNet is NAFTA's virtual network: 0 = north-last (for south-bound
	// messages), 1 = south-last (for north-bound messages).
	VNet int
	// NegHops counts colour-descending hops for the negative-hop
	// scheme; it is the message's virtual-channel level there.
	NegHops int
	// Dateline flags that the message crossed the current ring's
	// wrap-around link (torus dateline VC discipline).
	Dateline int
	// MazeMode is the Maze-routing per-message mode: 0 normal
	// (productive moves), 1 traversal (face-routing wall-follow around
	// a blocking fault region), 2 escape (sticky up*/down* channel).
	MazeMode int
	// MazeStart, MazeStartPort and MazeMD are the face-routing
	// traversal state: entry node, the wall port taken there (the
	// disconnection heuristic fires when the message is back at
	// MazeStart about to repeat MazeStartPort) and the distance to the
	// destination when the traversal started (the traversal exits back
	// to normal mode only from a node strictly closer than that).
	MazeStart     NodeIDField
	MazeStartPort int
	MazeMD        int
	// MazeSteps counts wall-follow hops of the current traversal; a
	// budget of ~4*nodes bounds it regardless of fault geometry.
	MazeSteps int
	// MazeEpoch stamps the fault epoch the traversal/escape state was
	// computed under; a mismatch after a mid-run fault event restarts
	// the state machine instead of trusting stale wall geometry.
	MazeEpoch uint64
	// Epoch is the rule-table epoch that admitted the message into the
	// network (0 when no epoch source is attached). Under online
	// reconfiguration an in-flight worm keeps routing on the tables of
	// its admission epoch; the field never influences the decision
	// itself, only which engine generation makes it.
	Epoch uint64
}

// NodeIDField aliases topology.NodeID for header fields (keeps the
// Header declaration readable).
type NodeIDField = topology.NodeID

// UnreachableJudge is implemented by algorithms that can issue a
// definitive unreachable verdict: when Route returns no candidate AND
// UnreachableVerdict is true, the destination is genuinely unreachable
// from the deciding node on the post-fault graph — the drop is a
// delivery-oracle-sanctioned verdict, not a sacrifice. The network
// flags such drops on the message and in Stats.Unreachable.
type UnreachableJudge interface {
	UnreachableVerdict(req Request) bool
}

// CreditGatedVA is implemented by algorithms whose deadlock-freedom
// argument requires credit-gated virtual-channel allocation: the
// network must not commit a head to an output VC that has no
// downstream credit. A head that cannot advance then stays in the VA
// stage, re-arbitrating every cycle with the full candidate set — in
// particular the escape channel — still selectable. This is the
// blocked-head side of Duato's protocol (the maze family's VC0 moves
// are fully adaptive, so commit-on-free could close a VC0 wait cycle
// that the always-offered escape VC would have broken). Families with
// acyclic channel-dependency graphs don't need the gate and keep the
// cheaper commit-on-free allocation unchanged.
type CreditGatedVA interface {
	AllocNeedsCredit() bool
}

// AllocNeedsCredit reports whether a requires credit-gated VC
// allocation (CreditGatedVA).
func AllocNeedsCredit(a Algorithm) bool {
	if g, ok := a.(CreditGatedVA); ok {
		return g.AllocNeedsCredit()
	}
	return false
}

// ReconfigFlusher is implemented by algorithms whose UpdateFaults
// reorients a channel ordering that in-flight messages may already
// occupy — e.g. the maze escape plane's per-component up*/down*
// orientation, which is re-rooted and re-levelled per fault event. A
// worm holding escape buffers acquired under the old orientation can
// close a wait cycle with worms routing under the new one (the union
// of two acyclic orientations need not be acyclic), so the network's
// fault surgery removes flagged worms at the event, exactly like worms
// physically touching the failed element: the fault model's recovery
// protocol (assumption iv) reinjects them.
type ReconfigFlusher interface {
	// FlushOnFault reports whether the message described by h holds
	// resources whose ordering the pending reorientation invalidates.
	// It is consulted before UpdateFaults advances the epoch.
	FlushOnFault(h *Header) bool
}

// Request is the input of one routing decision.
type Request struct {
	// Node is the router making the decision.
	Node topology.NodeID
	// InPort is the arrival port, or InjectionPort at the source.
	InPort int
	// InVC is the arrival virtual channel (0 at injection).
	InVC int
	// Hdr is the message header; Route must not modify it (NoteHop
	// performs the updates once a hop is committed).
	Hdr *Header
}

// Candidate is one admissible output: physical port plus virtual
// channel.
type Candidate struct {
	Port int
	VC   int
}

// Algorithm is a routing algorithm instance bound to one topology. An
// instance holds the distributed fault state of all routers (the
// simulator is cycle-driven and the paper's assumption iv lets the
// diagnosis phase complete atomically, so central storage of the
// per-node states is behaviourally equivalent; the states themselves
// are still computed by neighbour-local propagation rules).
type Algorithm interface {
	// Name returns a short identifier, e.g. "nafta".
	Name() string
	// NumVCs returns the number of virtual channels per physical link
	// the algorithm requires.
	NumVCs() int
	// Route returns the admissible outputs for the request. An empty
	// result means the message is unroutable at this node under the
	// current fault state (the simulator drops and records it); a
	// fault-tolerant algorithm must keep the result non-empty whenever
	// the paper's condition 3 holds.
	Route(req Request) []Candidate
	// Steps returns the number of rule-interpreter invocations this
	// decision costs on the rule-based router (paper Section 5: NARA
	// 1, NAFTA 1 fault-free to 3 worst case, ROUTE_C always 2).
	Steps(req Request) int
	// NoteHop informs the algorithm that the message was actually
	// forwarded through chosen so it can update the header's
	// fault-tolerance state (phase changes, misroute marking).
	NoteHop(req Request, chosen Candidate)
	// UpdateFaults recomputes the distributed fault state to its
	// fixpoint after the fault set changed (assumption iv: no traffic
	// during the diagnosis phase).
	UpdateFaults(f *fault.Set)
}

// BufferedAlgorithm is implemented by algorithms whose hot path can
// route without allocating: RouteAppend appends the admissible outputs
// to buf (typically a per-virtual-channel buffer reset to buf[:0] by
// the caller) and returns the extended slice. Semantics are identical
// to Route; the candidates must not alias algorithm-internal storage.
type BufferedAlgorithm interface {
	Algorithm
	RouteAppend(req Request, buf []Candidate) []Candidate
}

// RouteInto routes through the allocation-free path when the algorithm
// offers one and falls back to copying Route's result into buf
// otherwise, so callers can hold one code path.
func RouteInto(a Algorithm, req Request, buf []Candidate) []Candidate {
	if b, ok := a.(BufferedAlgorithm); ok {
		return b.RouteAppend(req, buf)
	}
	return append(buf, a.Route(req)...)
}

// LoadView exposes the local load information a selection policy may
// consult (buffer exploitation, as produced by the paper's Information
// Units).
type LoadView interface {
	// OutFree reports whether output (port,vc) of node is currently
	// not owned by any message.
	OutFree(node topology.NodeID, port, vc int) bool
	// Credits returns the free flit slots in the downstream buffer of
	// output (port,vc).
	Credits(node topology.NodeID, port, vc int) int
	// QueuedFlits returns the amount of data (flits) still to be
	// transmitted by the message currently owning output (port,vc); 0
	// if free. This is NAFTA's adaptivity criterion ("the amount of
	// data that still has to pass a node").
	QueuedFlits(node topology.NodeID, port, vc int) int
}

// Selector picks one candidate among the admissible ones. The
// simulator only offers candidates whose output VC is free.
type Selector interface {
	Name() string
	Select(view LoadView, node topology.NodeID, cands []Candidate, hdr *Header) Candidate
}

// ---------------------------------------------------------------------
// Selection policies (adaptivity criteria).

// FirstFit always picks the first candidate; with the deterministic
// candidate order of the algorithms this yields an oblivious tie-break
// and serves as the adaptivity-off ablation.
type FirstFit struct{}

func (FirstFit) Name() string { return "firstfit" }

func (FirstFit) Select(_ LoadView, _ topology.NodeID, cands []Candidate, _ *Header) Candidate {
	return cands[0]
}

// MaxCredit picks the candidate with the most downstream credits
// (least full buffer), a local load measure.
type MaxCredit struct{}

func (MaxCredit) Name() string { return "maxcredit" }

func (MaxCredit) Select(v LoadView, node topology.NodeID, cands []Candidate, _ *Header) Candidate {
	best := cands[0]
	bestC := v.Credits(node, best.Port, best.VC)
	for _, c := range cands[1:] {
		if cr := v.Credits(node, c.Port, c.VC); cr > bestC {
			best, bestC = c, cr
		}
	}
	return best
}

// MinQueue implements NAFTA's adaptivity criterion: prefer the output
// whose physical port has the least data still to pass (summed over
// its VCs), using credits as tie-break.
type MinQueue struct{}

func (MinQueue) Name() string { return "minqueue" }

func (MinQueue) Select(v LoadView, node topology.NodeID, cands []Candidate, _ *Header) Candidate {
	best := cands[0]
	bestQ := v.QueuedFlits(node, best.Port, best.VC)
	bestC := v.Credits(node, best.Port, best.VC)
	for _, c := range cands[1:] {
		q := v.QueuedFlits(node, c.Port, c.VC)
		cr := v.Credits(node, c.Port, c.VC)
		if q < bestQ || (q == bestQ && cr > bestC) {
			best, bestQ, bestC = c, q, cr
		}
	}
	return best
}

// RoundRobin cycles through candidates per node, giving a fair,
// load-oblivious spread (ablation policy). The per-node counters live
// in a flat slice once PrepareNodes sized it (the network does this at
// construction), so concurrent Select calls for distinct nodes touch
// disjoint elements; the map only backs standalone use with node IDs
// beyond the prepared range.
type RoundRobin struct {
	flat     []int
	counters map[topology.NodeID]int
}

// NewRoundRobin returns a RoundRobin selector.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{counters: make(map[topology.NodeID]int)}
}

func (r *RoundRobin) Name() string { return "roundrobin" }

// PrepareNodes sizes the flat per-node counter array (ShardSafeSelector).
func (r *RoundRobin) PrepareNodes(nodes int) {
	if nodes > len(r.flat) {
		flat := make([]int, nodes)
		copy(flat, r.flat)
		r.flat = flat
	}
}

func (r *RoundRobin) Select(_ LoadView, node topology.NodeID, cands []Candidate, _ *Header) Candidate {
	if int(node) < len(r.flat) {
		i := r.flat[node] % len(cands)
		r.flat[node]++
		return cands[i]
	}
	i := r.counters[node] % len(cands)
	r.counters[node]++
	return cands[i]
}

var _ ShardSafeSelector = (*RoundRobin)(nil)

// contains reports whether ports contains p.
func contains(ports []int, p int) bool {
	for _, q := range ports {
		if q == p {
			return true
		}
	}
	return false
}
