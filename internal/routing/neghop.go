package routing

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/topology"
)

// NegHop implements the negative-hop deadlock prevention scheme the
// paper cites from [BoC96] in its Section 3 cost analysis: nodes are
// coloured so that adjacent nodes differ (any bipartite topology); a
// hop toward a lower colour is "negative", and a message travelling on
// virtual-channel level L moves to level L+1 on every negative hop.
// Channel levels only ever increase, so the channel dependency graph
// is acyclic for COMPLETELY ARBITRARY paths — minimal, adaptive or
// misrouted — which is exactly why the paper singles the scheme out:
// "using the negative hop scheme ... no changes to the deadlock
// avoidance are necessary at all" when faults force detours.
//
// The price is the paper's point too: the number of virtual channels
// grows with the network diameter (every other hop of a path is
// negative on a 2-coloured topology), i.e. fault tolerance is bought
// with VC hardware instead of per-node fault state. NegHop keeps NO
// distributed fault state at all — only the local link status — and
// its delivery under faults is bounded by the VC budget, which
// experiment E11 quantifies against NAFTA's 2-VC + state design.
type NegHop struct {
	g      topology.Graph
	faults *fault.Set
	color  []uint8
	vcs    int
	// dist is the topology's own metric when it has one (mesh,
	// hypercube, torus); nil falls back to per-decision BFS.
	dist interface {
		Dist(a, b topology.NodeID) int
	}
	// exhausted counts messages whose level budget ran out (they are
	// dropped); atomic because Route may run concurrently on the
	// parallel stepper. Read it via Exhausted.
	exhausted atomic.Int64
}

// Exhausted returns how many routing decisions found no admissible
// output because the VC level budget was exhausted.
func (n *NegHop) Exhausted() int64 { return n.exhausted.Load() }

// NewNegHop builds the scheme on a bipartite topology with the given
// number of virtual channels (the level budget). It returns an error
// if the graph is not 2-colourable or vcs < 2.
func NewNegHop(g topology.Graph, vcs int) (*NegHop, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("routing: neghop needs at least 2 VCs, got %d", vcs)
	}
	color := make([]uint8, g.Nodes())
	seen := make([]bool, g.Nodes())
	for start := 0; start < g.Nodes(); start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue := []topology.NodeID{topology.NodeID(start)}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for p := 0; p < g.Ports(); p++ {
				m := g.Neighbor(n, p)
				if m == topology.Invalid {
					continue
				}
				if !seen[m] {
					seen[m] = true
					color[m] = 1 - color[n]
					queue = append(queue, m)
				} else if color[m] == color[n] {
					return nil, fmt.Errorf("routing: %s is not bipartite, negative-hop colouring impossible", g.Name())
				}
			}
		}
	}
	n := &NegHop{g: g, faults: fault.NewSet(), color: color, vcs: vcs}
	n.dist, _ = g.(interface {
		Dist(a, b topology.NodeID) int
	})
	return n, nil
}

func (n *NegHop) Name() string { return fmt.Sprintf("neghop%d", n.vcs) }
func (n *NegHop) NumVCs() int  { return n.vcs }

// Steps is one interpretation: the scheme needs no fault-state lookup
// at all, the decision depends only on header and local link status.
func (n *NegHop) Steps(Request) int { return 1 }

// UpdateFaults only stores the set: there is no diagnosis phase, no
// state propagation, nothing to recompute — the scheme's defining
// property.
func (n *NegHop) UpdateFaults(f *fault.Set) { n.faults = f }

// negHopTo reports whether the hop from a to b is negative (descends
// in colour).
func (n *NegHop) negHopTo(a, b topology.NodeID) bool {
	return n.color[a] == 1 && n.color[b] == 0
}

// levelAfter returns the VC level a message at level l occupies after
// the hop a->b, or -1 if the budget is exhausted.
func (n *NegHop) levelAfter(l int, a, b topology.NodeID) int {
	if n.negHopTo(a, b) {
		l++
	}
	if l >= n.vcs {
		return -1
	}
	return l
}

// minimalPorts returns the profitable ports (strictly distance
// reducing) using the topology's own metric.
func (n *NegHop) minimalPorts(cur, dst topology.NodeID) []int {
	type minimaler interface {
		MinimalPorts(a, b topology.NodeID) []int
	}
	if m, ok := n.g.(minimaler); ok {
		return m.MinimalPorts(cur, dst)
	}
	// Generic fallback: BFS distance comparison.
	dist := topology.BFSDist(n.g, dst, nil)
	var out []int
	for p := 0; p < n.g.Ports(); p++ {
		nb := n.g.Neighbor(cur, p)
		if nb != topology.Invalid && dist[nb] >= 0 && dist[nb] < dist[cur] {
			out = append(out, p)
		}
	}
	return out
}

func (n *NegHop) Route(req Request) []Candidate {
	return n.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free decision path. With a topology
// metric (Dist) available, "minimal port" becomes the predicate
// Dist(neighbor, dst) < Dist(cur, dst) evaluated per port — no
// materialised port list. Every topology metric in this repo
// (Manhattan, Hamming, torus) emits minimal ports in ascending port
// order, and the BFS fallback scans ports ascending too, so the
// predicate walk preserves the exact candidate order of the historical
// list-based Route.
func (n *NegHop) RouteAppend(req Request, out []Candidate) []Candidate {
	cur, dst := req.Node, req.Hdr.Dst
	level := req.Hdr.NegHops
	// Note that on a 2-coloured topology the level delta of a hop is
	// a property of the CURRENT node (all hops out of a colour-1 node
	// are negative), so candidate ordering cannot conserve levels —
	// only shorter paths can, and without fault state the scheme has
	// no way to plan them. That blind spot is the measured trade-off
	// of experiment E11.
	var bfs []int
	if n.dist == nil {
		bfs = topology.BFSDist(n.g, dst, nil)
	}
	minimal := func(p int, nb topology.NodeID) bool {
		if bfs != nil {
			return bfs[nb] >= 0 && bfs[nb] < bfs[cur]
		}
		return n.dist.Dist(nb, dst) < n.dist.Dist(cur, dst)
	}
	start := len(out)
	for p := 0; p < n.g.Ports(); p++ {
		nb := n.g.Neighbor(cur, p)
		if nb == topology.Invalid || !minimal(p, nb) || !n.faults.HopUsable(cur, nb) {
			continue
		}
		if l := n.levelAfter(level, cur, nb); l >= 0 {
			out = append(out, Candidate{Port: p, VC: l})
		}
	}
	if len(out) > start {
		return out
	}
	// Misroute: any usable non-minimal port except an immediate
	// reversal; the acyclic channel levels make this safe without
	// further rules.
	for p := 0; p < n.g.Ports(); p++ {
		nb := n.g.Neighbor(cur, p)
		if nb == topology.Invalid || minimal(p, nb) || p == req.InPort || !n.faults.HopUsable(cur, nb) {
			continue
		}
		if l := n.levelAfter(level, cur, nb); l >= 0 {
			out = append(out, Candidate{Port: p, VC: l})
		}
	}
	if len(out) == start {
		n.exhausted.Add(1)
	}
	return out
}

func (n *NegHop) NoteHop(req Request, chosen Candidate) {
	nb := n.g.Neighbor(req.Node, chosen.Port)
	if n.negHopTo(req.Node, nb) {
		req.Hdr.NegHops++
	}
	min := false
	if n.dist != nil {
		min = n.dist.Dist(nb, req.Hdr.Dst) < n.dist.Dist(req.Node, req.Hdr.Dst)
	} else {
		min = contains(n.minimalPorts(req.Node, req.Hdr.Dst), chosen.Port)
	}
	if !min {
		req.Hdr.Misroutes++
		req.Hdr.Marked = true
	}
}

// ConcurrentDecisionsSafe marks NegHop for the deterministic parallel
// stepper: Route/RouteAppend, Steps and NoteHop read only the colouring
// and the fault set (both stable within a cycle), write nothing but the
// handed message header, and count exhaustion atomically.
func (n *NegHop) ConcurrentDecisionsSafe() {}

var (
	_ Algorithm          = (*NegHop)(nil)
	_ BufferedAlgorithm  = (*NegHop)(nil)
	_ ConcurrentRoutable = (*NegHop)(nil)
)
