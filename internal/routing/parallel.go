package routing

import "repro/internal/topology"

// This file defines the capability surface the deterministic parallel
// stepper of internal/network builds on. The stepper shards routers
// across workers and runs every pipeline stage as a parallel compute
// phase; a routing engine participates in one of two ways:
//
//   - stateless-per-decision engines (the natives) declare themselves
//     ConcurrentRoutable and are shared by all workers directly;
//   - engines with per-decision scratch (the rule adapters, the
//     reconfiguration swapper) implement DecisionContexter and hand
//     out one independent decision context per worker.
//
// An engine that offers neither forces the network back onto the
// serial stepping path — a correctness fallback, never an error.

// ConcurrentRoutable marks an algorithm whose decision path —
// Route/RouteAppend, Steps and NoteHop — is safe for concurrent use
// from multiple goroutines between fault updates: decisions only read
// the engine's fault state (stable within a cycle) and mutate nothing
// but the per-message header they are handed (at most one router
// decides for a given message at a time, so header writes never race).
// UpdateFaults stays single-threaded; the network calls it only
// between cycles.
type ConcurrentRoutable interface {
	Algorithm
	// ConcurrentDecisionsSafe is a marker; implementations are empty.
	ConcurrentDecisionsSafe()
}

// RuleObserver observes one rule-table firing made by a decision
// context: eng is the engine the context was derived from, node the
// deciding router, base the rule base and rule the fired rule index.
// The parallel stepper defers these observations into per-worker
// buffers and replays them in serial router order through the engine's
// own hook (see RuleFirer), so hook side effects — trace events,
// first-seen base numbering, test counters — happen in exactly the
// order a serial run produces.
type RuleObserver func(eng Algorithm, node topology.NodeID, base string, rule int)

// DecisionContexter is implemented by engines that can hand out
// per-worker decision contexts for deterministic parallel stepping. A
// context shares the engine's immutable compiled state and fault
// knowledge but owns every piece of per-decision scratch (input
// vector, interpreter machine, dense-table lookup state, candidate
// staging), so contexts of the same engine may decide concurrently.
// Contexts observe rule firings through obs instead of the engine's
// direct hook and accumulate their lookup counts locally (flushed via
// LookupFlusher from the serial commit phase, keeping the engine's
// counters exact without atomics on the hot path).
type DecisionContexter interface {
	Algorithm
	NewDecisionContext(obs RuleObserver) Algorithm
}

// RuleFirer is implemented by engines whose rule firings are
// observable through a settable hook (the rule adapters' OnRuleFired).
// Replaying a deferred RuleObserver observation calls FireRuleObserver
// on the originating engine, which forwards to the hook currently
// installed — the hook itself runs single-threaded, in serial order.
type RuleFirer interface {
	FireRuleObserver(node topology.NodeID, base string, rule int)
}

// LookupFlusher is implemented by decision contexts that count table
// lookups locally; the parallel stepper calls Flush from its serial
// commit phase so the parent engine's public counters stay exact.
type LookupFlusher interface {
	FlushLookups()
}

// ContextSyncer is implemented by decision contexts that track an
// engine whose generations change mid-run (the reconfiguration
// swapper): the network calls SyncDecisionContexts single-threaded at
// the top of every parallel cycle, giving the context a race-free
// point to materialise child contexts for engines installed by a hot
// swap. A non-nil error means the context can no longer decide
// faithfully in parallel (an unsupported engine generation appeared);
// the network falls back to serial stepping.
type ContextSyncer interface {
	SyncDecisionContexts() error
}

// ShardSafeSelector is a Selector whose Select may be called
// concurrently for different nodes. Any per-node state must be laid
// out per node and pre-sized via PrepareNodes (called once, before
// stepping starts), so concurrent calls for distinct nodes touch
// disjoint state. All selectors in this package qualify.
type ShardSafeSelector interface {
	Selector
	PrepareNodes(nodes int)
}

// PrepareNodes implementations of the stateless selectors (no per-node
// state to size).
func (FirstFit) PrepareNodes(int)  {}
func (MaxCredit) PrepareNodes(int) {}
func (MinQueue) PrepareNodes(int)  {}

// Marker implementations: every decision helper of these engines only
// reads fault state that is stable between UpdateFaults calls, and
// NoteHop writes nothing but the message header. NegHop declares its
// marker in neghop.go (its exhaustion counter is atomic).
func (x *XY) ConcurrentDecisionsSafe()        {}
func (e *ECube) ConcurrentDecisionsSafe()     {}
func (n *NAFTA) ConcurrentDecisionsSafe()     {}
func (n *NARA) ConcurrentDecisionsSafe()      {}
func (r *RouteC) ConcurrentDecisionsSafe()    {}
func (r *RouteCNFT) ConcurrentDecisionsSafe() {}
func (t *TorusDOR) ConcurrentDecisionsSafe()  {}
func (t *Tree) ConcurrentDecisionsSafe()      {}
func (u *UpDown) ConcurrentDecisionsSafe()    {}

var (
	_ ShardSafeSelector  = FirstFit{}
	_ ShardSafeSelector  = MaxCredit{}
	_ ShardSafeSelector  = MinQueue{}
	_ ConcurrentRoutable = (*NAFTA)(nil)
	_ ConcurrentRoutable = (*RouteC)(nil)
	_ BufferedAlgorithm  = (*NAFTA)(nil)
	_ BufferedAlgorithm  = (*ECube)(nil)
)
