package routing

import (
	"repro/internal/fault"
	"repro/internal/topology"
)

// Virtual-network identifiers for the turn-model scheme shared by NARA
// and NAFTA. Each virtual network occupies one virtual channel per
// physical link; messages never change networks in flight, so the two
// channel dependency graphs stay disjoint and each is acyclic by the
// turn model (Glass/Ni): the north-last network prohibits turns out of
// north, the south-last network turns out of south.
const (
	// VNNorthLast carries south-bound messages (they never need to
	// leave a northward move, so prohibiting turns out of north does
	// not restrict their minimal adaptivity).
	VNNorthLast = 0
	// VNSouthLast carries north-bound messages.
	VNSouthLast = 1
)

// vnetFor picks the virtual network for a message at injection: a
// message that must travel north gets the south-last network (N, E, W
// freely mixable there), a south-bound one the north-last network.
// Row-only messages (dy == cy) normally use south-last (fault detours
// then go north, which that network allows freely); on the top row,
// where no northern detour exists, they use north-last so a southern
// detour remains legal.
func vnetFor(m *topology.Mesh, cur, dst topology.NodeID) int {
	_, cy := m.XY(cur)
	_, dy := m.XY(dst)
	switch {
	case dy < cy:
		return VNNorthLast
	case dy > cy:
		return VNSouthLast
	case cy == m.H-1:
		return VNNorthLast
	}
	return VNSouthLast
}

// NARA is the non-fault-tolerant fully adaptive minimal routing
// algorithm for 2-D meshes from which NAFTA is derived (the paper uses
// the pair to isolate the cost of fault tolerance). It offers every
// minimal path for selection (condition 1) using two virtual channels
// and one rule interpretation per message.
type NARA struct {
	mesh   *topology.Mesh
	faults *fault.Set
}

// NewNARA builds NARA on mesh m.
func NewNARA(m *topology.Mesh) *NARA {
	return &NARA{mesh: m, faults: fault.NewSet()}
}

func (n *NARA) Name() string      { return "nara" }
func (n *NARA) NumVCs() int       { return 2 }
func (n *NARA) Steps(Request) int { return 1 }

// UpdateFaults stores the set; NARA itself does not react to faults
// (messages whose minimal ports are all broken become unroutable).
func (n *NARA) UpdateFaults(f *fault.Set) { n.faults = f }

func (n *NARA) NoteHop(req Request, chosen Candidate) {
	if req.InPort == InjectionPort {
		req.Hdr.VNet = chosen.VC
	}
}

func (n *NARA) Route(req Request) []Candidate {
	vnet := req.Hdr.VNet
	if req.InPort == InjectionPort {
		vnet = vnetFor(n.mesh, req.Node, req.Hdr.Dst)
	}
	// Same horizontal-first candidate order as NAFTA: the paper
	// requires the stripped algorithm to behave exactly like the
	// fault-tolerant one in a fault-free network.
	minimal := n.mesh.MinimalPorts(req.Node, req.Hdr.Dst)
	var out []Candidate
	for _, p := range minimal {
		if p != topology.East && p != topology.West {
			continue
		}
		if n.faults.PortUsable(n.mesh, req.Node, p) {
			out = append(out, Candidate{Port: p, VC: vnet})
		}
	}
	for _, p := range minimal {
		if p != topology.North && p != topology.South {
			continue
		}
		if n.faults.PortUsable(n.mesh, req.Node, p) {
			out = append(out, Candidate{Port: p, VC: vnet})
		}
	}
	return out
}
