package routing

import (
	"testing"

	"repro/internal/topology"
)

// torusWalk drives one message through TorusDOR, recording the VC of
// every hop and whether any hop crossed a wrap link without the next
// hop of that ring riding the dateline VC.
func torusWalk(t *testing.T, tor *topology.Torus, alg *TorusDOR, src, dst topology.NodeID) (hops int, hdr *Header) {
	t.Helper()
	hdr = &Header{Src: src, Dst: dst, Length: 4}
	req := Request{Node: src, InPort: InjectionPort, Hdr: hdr}
	for req.Node != dst {
		cands := alg.Route(req)
		if len(cands) != 1 {
			t.Fatalf("torusdor %d->%d at %d: want exactly one candidate, got %v", src, dst, req.Node, cands)
		}
		chosen := cands[0]
		// Dateline discipline: once the header carries the dateline
		// flag, every further hop of the current ring must ride VC1.
		if hdr.Dateline != 0 && chosen.VC != 1 {
			t.Fatalf("torusdor %d->%d at %d: dateline set but hop uses VC%d", src, dst, req.Node, chosen.VC)
		}
		if hdr.Dateline == 0 && chosen.VC != 0 {
			t.Fatalf("torusdor %d->%d at %d: dateline clear but hop uses VC%d", src, dst, req.Node, chosen.VC)
		}
		wasWrap := isWrapHop(tor, req.Node, chosen.Port)
		alg.NoteHop(req, chosen)
		if wasWrap && hdr.Dateline != 1 {
			// The only exception: the wrap hop lands exactly on the
			// destination column and the dateline is reset for the Y
			// ring — but NoteHop sets then resets in that order, so a
			// wrap into the destination column with remaining Y hops
			// must still have cleared it deliberately.
			next := tor.Neighbor(req.Node, chosen.Port)
			nx, _ := tor.XY(next)
			dx, _ := tor.XY(dst)
			if nx != dx {
				t.Fatalf("torusdor %d->%d: wrap hop at %d did not set the dateline", src, dst, req.Node)
			}
		}
		req = Request{Node: tor.Neighbor(req.Node, chosen.Port), InPort: 0, InVC: chosen.VC, Hdr: hdr}
		hops++
		if hops > 4*tor.Nodes() {
			t.Fatalf("torusdor %d->%d did not terminate", src, dst)
		}
	}
	return hops, hdr
}

// isWrapHop reports whether taking port p at node n crosses a ring's
// wrap-around link.
func isWrapHop(tor *topology.Torus, n topology.NodeID, p int) bool {
	x, y := tor.XY(n)
	switch p {
	case topology.East:
		return x == tor.W-1
	case topology.West:
		return x == 0
	case topology.North:
		return y == tor.H-1
	case topology.South:
		return y == 0
	}
	return false
}

// The satellite property: on fault-free tori of several aspect ratios,
// every pair's dimension-ordered path is exactly the BFS shortest-path
// distance, and the dateline VC switch fires on every wrap crossing.
func TestTorusDORShortestPathsAndDatelines(t *testing.T) {
	shapes := [][2]int{{4, 4}, {5, 3}, {3, 7}, {6, 4}, {8, 3}}
	for _, sh := range shapes {
		tor := topology.NewTorus(sh[0], sh[1])
		alg := NewTorusDOR(tor)
		wraps := 0
		for s := 0; s < tor.Nodes(); s++ {
			bfs := topology.BFSDist(tor, topology.NodeID(s), nil)
			for d := 0; d < tor.Nodes(); d++ {
				if s == d {
					continue
				}
				hops, hdr := torusWalk(t, tor, alg, topology.NodeID(s), topology.NodeID(d))
				if hops != bfs[d] {
					t.Fatalf("torus%dx%d %d->%d: %d hops, BFS says %d", sh[0], sh[1], s, d, hops, bfs[d])
				}
				if hdr.Dateline != 0 {
					wraps++
				}
			}
		}
		if wraps == 0 {
			t.Fatalf("torus%dx%d: no pair ended with dateline state; wrap crossings untested", sh[0], sh[1])
		}
	}
}

// The torus closed-form Dist must itself agree with BFS (the property
// the walk comparison above leans on).
func TestTorusDistMatchesBFS(t *testing.T) {
	for _, sh := range [][2]int{{4, 4}, {5, 3}, {3, 7}} {
		tor := topology.NewTorus(sh[0], sh[1])
		for s := 0; s < tor.Nodes(); s++ {
			bfs := topology.BFSDist(tor, topology.NodeID(s), nil)
			for d := 0; d < tor.Nodes(); d++ {
				if got := tor.Dist(topology.NodeID(s), topology.NodeID(d)); got != bfs[d] {
					t.Fatalf("torus%dx%d Dist(%d,%d) = %d, BFS = %d", sh[0], sh[1], s, d, got, bfs[d])
				}
			}
		}
	}
}
