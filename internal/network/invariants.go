package network

import (
	"fmt"

	"repro/internal/topology"
)

// CheckInvariants validates the internal consistency of the simulator
// state; tests call it periodically. It returns the first violation
// found, or nil.
func (n *Network) CheckInvariants() error {
	lay := &n.lay
	for node := 0; node < lay.nodes; node++ {
		for p := 0; p < lay.inPorts; p++ {
			for v := 0; v < lay.vcs; v++ {
				ivc := &n.ins[lay.inIdx(node, p, v)]
				if p != lay.ports && ivc.q.len() > n.cfg.BufDepth {
					return fmt.Errorf("node %d input (%d,%d): %d flits exceed buffer depth %d",
						node, p, v, ivc.q.len(), n.cfg.BufDepth)
				}
				if ivc.outPort >= 0 {
					out := &n.outs[lay.outIdx(node, ivc.outPort, ivc.outVC)]
					if out.ownerInPort != p || out.ownerInVC != v {
						return fmt.Errorf("node %d input (%d,%d): allocation to (%d,%d) not owned back",
							node, p, v, ivc.outPort, ivc.outVC)
					}
					if out.ownerMsg != ivc.curMsg {
						return fmt.Errorf("node %d output (%d,%d): owner message mismatch",
							node, ivc.outPort, ivc.outVC)
					}
				}
			}
		}
		for p := 0; p < lay.ports; p++ {
			down := n.g.Neighbor(topology.NodeID(node), p)
			for v := 0; v < lay.vcs; v++ {
				out := &n.outs[lay.outIdx(node, p, v)]
				if out.credits < 0 || out.credits > n.cfg.BufDepth {
					return fmt.Errorf("node %d output (%d,%d): credits %d out of range",
						node, p, v, out.credits)
				}
				if down >= 0 {
					dp, ok := n.g.PortTo(down, topology.NodeID(node))
					if ok {
						occ := n.ins[lay.inIdx(int(down), dp, v)].q.len()
						inFlight := 0
						for _, c := range n.creditQueue {
							if int(c.node) == node && c.port == p && c.vc == v {
								inFlight++
							}
						}
						if out.credits+occ+inFlight != n.cfg.BufDepth {
							return fmt.Errorf("node %d output (%d,%d): credits %d + occupancy %d + in-flight %d != depth %d",
								node, p, v, out.credits, occ, inFlight, n.cfg.BufDepth)
						}
					}
				}
				if out.ownerMsg == nil && out.remaining != 0 {
					return fmt.Errorf("node %d output (%d,%d): free but remaining %d",
						node, p, v, out.remaining)
				}
				if out.ownerMsg != nil && out.free() {
					return fmt.Errorf("node %d output (%d,%d): owner message set but port free",
						node, p, v)
				}
			}
		}
	}
	return n.checkActiveSets()
}

// checkActiveSets verifies that every active-set membership equals its
// defining predicate over the current VC state, and that the injection
// work list covers every node with queued messages. The differential
// test batteries call CheckInvariants every cycle, so any incremental
// maintenance bug in noteInput or a missed noteInput call surfaces
// immediately instead of as a statistics drift.
func (n *Network) checkActiveSets() error {
	lay := &n.lay
	for node := 0; node < lay.nodes; node++ {
		for slot := 0; slot < lay.inStride; slot++ {
			ivc := &n.ins[node*lay.inStride+slot]
			qlen := ivc.q.len()
			wantRoute := !ivc.routed && qlen > 0 && ivc.q.front().head
			wantVA := ivc.routed && !ivc.eject && !ivc.unroutable && ivc.outPort < 0
			wantSA := ivc.outPort >= 0 && qlen > 0
			wantDrain := ivc.routed && (ivc.eject || ivc.unroutable) && qlen > 0
			if got := n.routeSet.has(node, slot); got != wantRoute {
				return fmt.Errorf("node %d slot %d: routeSet membership %v, predicate %v", node, slot, got, wantRoute)
			}
			if got := n.vaSet.has(node, slot); got != wantVA {
				return fmt.Errorf("node %d slot %d: vaSet membership %v, predicate %v", node, slot, got, wantVA)
			}
			if got := n.saSet.has(node, slot); got != wantSA {
				return fmt.Errorf("node %d slot %d: saSet membership %v, predicate %v", node, slot, got, wantSA)
			}
			if got := n.drainSet.has(node, slot); got != wantDrain {
				return fmt.Errorf("node %d slot %d: drainSet membership %v, predicate %v", node, slot, got, wantDrain)
			}
		}
		// Injection bits are allowed to be stale-set (a faulty node's
		// queue is nulled without clearing its bit; injectStage skips it),
		// but a node with queued messages must never be missing.
		if len(n.injQ[node]) > 0 && n.injNodes.bits[node>>6]&(1<<(node&63)) == 0 {
			return fmt.Errorf("node %d: %d queued injections but not in injNodes", node, len(n.injQ[node]))
		}
	}
	return nil
}
