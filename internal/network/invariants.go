package network

import "fmt"

// CheckInvariants validates the internal consistency of the simulator
// state; tests call it periodically. It returns the first violation
// found, or nil.
func (n *Network) CheckInvariants() error {
	for _, r := range n.routers {
		for p := range r.inputs {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				if p != r.injPort() && ivc.q.len() > n.cfg.BufDepth {
					return fmt.Errorf("node %d input (%d,%d): %d flits exceed buffer depth %d",
						r.id, p, v, ivc.q.len(), n.cfg.BufDepth)
				}
				if ivc.outPort >= 0 {
					out := &r.outputs[ivc.outPort][ivc.outVC]
					if out.ownerInPort != p || out.ownerInVC != v {
						return fmt.Errorf("node %d input (%d,%d): allocation to (%d,%d) not owned back",
							r.id, p, v, ivc.outPort, ivc.outVC)
					}
					if out.ownerMsg != ivc.curMsg {
						return fmt.Errorf("node %d output (%d,%d): owner message mismatch",
							r.id, ivc.outPort, ivc.outVC)
					}
				}
			}
		}
		for p := range r.outputs {
			down := n.g.Neighbor(r.id, p)
			for v := range r.outputs[p] {
				out := &r.outputs[p][v]
				if out.credits < 0 || out.credits > n.cfg.BufDepth {
					return fmt.Errorf("node %d output (%d,%d): credits %d out of range",
						r.id, p, v, out.credits)
				}
				if down >= 0 {
					dp, ok := n.g.PortTo(down, r.id)
					if ok {
						occ := n.routers[down].inputs[dp][v].q.len()
						inFlight := 0
						for _, c := range n.creditQueue {
							if c.node == r.id && c.port == p && c.vc == v {
								inFlight++
							}
						}
						if out.credits+occ+inFlight != n.cfg.BufDepth {
							return fmt.Errorf("node %d output (%d,%d): credits %d + occupancy %d + in-flight %d != depth %d",
								r.id, p, v, out.credits, occ, inFlight, n.cfg.BufDepth)
						}
					}
				}
				if out.ownerMsg == nil && out.remaining != 0 {
					return fmt.Errorf("node %d output (%d,%d): free but remaining %d",
						r.id, p, v, out.remaining)
				}
				if out.ownerMsg != nil && out.free() {
					return fmt.Errorf("node %d output (%d,%d): owner message set but port free",
						r.id, p, v)
				}
			}
		}
	}
	return nil
}
