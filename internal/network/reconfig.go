package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/trace"
)

// The network cooperates with a hot-swappable decision engine
// (reconfig.Swapper) purely structurally — the interfaces below keep
// this package free of a reconfig import (reconfig already imports the
// packages network builds on).

// epochSource hands out table epochs: messages pin the current epoch
// when they materialise and release it when they leave the network
// (delivery, drop or fault kill).
type epochSource interface {
	AdmitEpoch() uint64
	ReleaseEpoch(epoch uint64)
}

// hotSwapper is a decision engine that can replace its tables while
// worms are in flight.
type hotSwapper interface {
	Swap(next routing.Algorithm, force bool) (oldEpoch, newEpoch uint64, err error)
	OnEpochRetired(func(epoch uint64))
	CurrentEpoch() uint64
}

// loadAttacher matches engines that consume the network's load view.
type loadAttacher interface{ AttachLoads(routing.LoadView) }

// FaultHandler is the failover decision plane's hook into ApplyFaults
// (structurally typed for the same reason as the interfaces above:
// internal/failover imports reconfig, which sits above this package).
// OnFault receives the new cumulative fault set after the network's
// worm surgery and reports whether it installed a precompiled backup
// engine (true = atomic flip, false = it ran the live recompute).
type FaultHandler interface {
	OnFault(f *fault.Set) bool
}

// attachReconfig wires an epoch-aware algorithm into the network:
// epoch pin/release on the message lifecycle, the network as the load
// view for engines installed later, and epoch-retirement trace events.
func (n *Network) attachReconfig(alg routing.Algorithm) {
	n.epochs, _ = alg.(epochSource)
	hs, ok := alg.(hotSwapper)
	if !ok {
		return
	}
	if la, ok := alg.(loadAttacher); ok {
		la.AttachLoads(n)
	}
	hs.OnEpochRetired(func(epoch uint64) {
		if n.rec != nil {
			n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KEpochRetired,
				Node: -1, Msg: -1, Port: -1, VC: -1, Arg: int32(epoch)})
		}
	})
}

// Reconfigure replaces the network's decision engine while the
// simulation runs. When the engine is a hot swapper the swap is
// atomic: in-flight worms keep routing under the epoch that admitted
// them, new head flits decide on the new tables. An incompatible
// deadlock regime is refused unless force is set, in which case the
// network is fully drained first (mixing worms of two VC disciplines
// could deadlock) — a forced swap therefore stalls injection until the
// network empties. Without a hot swapper the engine can only be
// replaced cold, on an idle network.
func (n *Network) Reconfigure(next routing.Algorithm, force bool) error {
	if next.NumVCs() > n.cfg.VCs {
		return fmt.Errorf("network: %s needs %d VCs, network has %d",
			next.Name(), next.NumVCs(), n.cfg.VCs)
	}
	if hs, ok := n.alg.(hotSwapper); ok {
		_, newEpoch, err := hs.Swap(next, false)
		if err != nil {
			if !force {
				return err
			}
			if !n.Drain(n.cfg.WatchdogCycles) {
				return fmt.Errorf("network: forced reconfigure: network failed to drain within %d cycles", n.cfg.WatchdogCycles)
			}
			if _, newEpoch, err = hs.Swap(next, true); err != nil {
				return err
			}
		}
		if n.rec != nil {
			n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KReconfigSwap,
				Node: -1, Msg: -1, Port: -1, VC: -1, Arg: int32(newEpoch)})
		}
		return nil
	}
	// Cold swap: no epoch machinery, so the network must be empty.
	if !n.Idle() {
		return fmt.Errorf("network: %s cannot hot-swap (not an epoch swapper); drain the network first", n.alg.Name())
	}
	n.alg = next
	n.attachReconfig(next)
	next.UpdateFaults(n.faults)
	if la, ok := next.(loadAttacher); ok {
		la.AttachLoads(n)
	}
	// The shard decision contexts belong to the replaced engine;
	// rebind them (or fall back to serial when the new engine cannot
	// decide concurrently).
	if n.par != nil && !n.bindShardContexts(n.par) {
		n.disableParallel(n.parReason)
	}
	if n.rec != nil {
		n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KReconfigSwap,
			Node: -1, Msg: -1, Port: -1, VC: -1, Arg: 0})
	}
	return nil
}
