package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config parameterises a Network.
type Config struct {
	Graph     topology.Graph
	Algorithm routing.Algorithm
	// Selector picks among admissible outputs (default MinQueue, the
	// NAFTA adaptivity criterion).
	Selector routing.Selector
	// VCs is the number of virtual channels per physical link
	// (default Algorithm.NumVCs()).
	VCs int
	// BufDepth is the per-VC input buffer depth in flits (default 4).
	BufDepth int
	// DecisionCyclesPerStep converts rule-interpretation steps into
	// router pipeline cycles (default 1); experiment E9 sweeps it.
	DecisionCyclesPerStep int
	// RecordMessages keeps every Message record for post-analysis
	// (costs memory on long runs).
	RecordMessages bool
	// WatchdogCycles flags a suspected deadlock after this many
	// cycles without any flit movement while messages are in flight
	// (default 10000).
	WatchdogCycles int64
	// FavorMarked biases the switch-allocation grant toward messages
	// marked as fault-detoured, compensating "the double disadvantage
	// of the longer path and higher loaded links" (paper, Section 3,
	// Scheduling and Fairness).
	FavorMarked bool
	// CreditDelay is the number of cycles a credit needs to travel
	// back upstream (0 = immediate return, the idealised default).
	// Non-zero values model the round-trip of real credit-based flow
	// control and lower the usable buffer bandwidth accordingly.
	CreditDelay int
	// Recorder, when non-nil, attaches a flight recorder: every
	// pipeline, credit and fault event is recorded into its per-node
	// rings (and streamed to its sink, if any). With a nil Recorder
	// the simulator pays one nil-check per would-be event.
	Recorder *trace.Recorder
	// OnPostMortem, when non-nil, is invoked (at most once per run)
	// with a structured report when the watchdog suspects a deadlock
	// or a packet exceeds LivelockAgeCycles.
	OnPostMortem func(*trace.Report)
	// LivelockAgeCycles, when > 0, bounds the in-network age of any
	// packet: a packet older than this triggers the livelock
	// post-mortem. Checked every LivelockCheckInterval cycles.
	LivelockAgeCycles int64
	// LivelockCheckInterval is how often (in cycles) the livelock age
	// bound is evaluated (default 256). Sampling keeps the check off
	// the per-cycle hot path; an age bound is always coarse, so
	// detection latency of at most one interval is immaterial.
	LivelockCheckInterval int64
	// Failover, when non-nil, owns the diagnosis phase of ApplyFaults:
	// instead of running the algorithm's live fault fixpoint, the
	// network hands the cumulative fault set to the handler, which
	// either flips a precompiled backup engine in (returns true) or
	// performs the recompute itself (returns false). The handler must
	// wrap the same engine instance the network routes on (the failover
	// plane bound to the network's reconfig swapper does exactly that).
	Failover FaultHandler
	// Workers, when >= 2, steps the network on the deterministic
	// parallel engine: routers are sharded across a persistent worker
	// pool, every pipeline stage runs as a parallel compute phase over
	// the shards, and all cross-router effects commit single-threaded
	// in router-ID order — Stats and trace-event content are
	// bit-identical to a serial run. 0 or 1 keeps today's serial
	// stepping path. Parallel stepping silently falls back to serial
	// when the algorithm or selector cannot decide concurrently (see
	// ParallelReason).
	Workers int
}

// Stats aggregates network-level results.
type Stats struct {
	Cycles         int64
	Injected       int64
	Delivered      int64
	Dropped        int64
	Killed         int64
	FlitsDelivered int64
	HopsSum        int64
	StepsSum       int64
	MisroutesSum   int64
	MarkedCount    int64
	LatencySum     int64 // total latency (queue + network) of delivered
	NetLatencySum  int64 // network-only latency of delivered
	MaxLatency     int64
	// Unreachable counts dropped messages whose drop was a certified
	// unreachability verdict: the routing algorithm implements
	// routing.UnreachableJudge and confirmed, at the failing decision,
	// that the destination is disconnected from the deciding node on
	// the post-fault graph. The guaranteed-delivery campaign oracle
	// requires Dropped == Unreachable for the maze family (zero
	// sacrifices).
	Unreachable int64
	// DeadlockSuspected is set by the watchdog; the test suite treats
	// it as a failure.
	DeadlockSuspected bool
}

// AvgLatency returns the mean total latency of delivered messages.
func (s *Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// AvgNetLatency returns the mean network latency of delivered
// messages.
func (s *Stats) AvgNetLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.NetLatencySum) / float64(s.Delivered)
}

// Throughput returns delivered flits per node per cycle.
func (s *Stats) Throughput(nodes int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FlitsDelivered) / float64(s.Cycles) / float64(nodes)
}

// AvgSteps returns mean interpreter steps per delivered message.
func (s *Stats) AvgSteps() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.StepsSum) / float64(s.Delivered)
}

// DeliveredRatio returns delivered/(delivered+dropped).
func (s *Stats) DeliveredRatio() float64 {
	t := s.Delivered + s.Dropped
	if t == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(t)
}

// send describes one flit movement decided in the allocation phase and
// applied atomically at the end of the cycle.
type send struct {
	from     int // source node
	fromPort int
	fromVC   int
	outPort  int
	outVC    int
}

// Network is the cycle-driven simulator instance.
type Network struct {
	cfg    Config
	g      topology.Graph
	alg    routing.Algorithm
	sel    routing.Selector
	faults *fault.Set
	now    int64
	nextID int64

	// lay precomputes the arena strides; all per-router state lives in
	// the flat arenas below, indexed by lay (see arena.go).
	lay layout
	// ins[lay.inIdx(node, port, vc)]: port 0..Ports()-1 are links,
	// port Ports() is the injection pseudo-port (its own VC array so an
	// injected message can claim any VC class).
	ins []inputVC
	// outs[lay.outIdx(node, port, vc)] for the link ports only.
	outs []outputVC
	// injQ[node] is the source queue of not-yet-started messages.
	injQ [][]*Message
	// rrIn[node*lay.inPorts+port] is the round-robin pointer for
	// nominating one VC per input port in SA; rrOut likewise
	// (node*lay.ports+port) for picking one request per output port.
	rrIn  []int
	rrOut []int
	// sent[node*lay.ports+port] counts flits transmitted through each
	// output port (link-utilisation statistics).
	sent []int64

	// Per-stage active sets (arena.go): exactly the slots with live
	// work, maintained incrementally via noteInput.
	routeSet vcSet
	vaSet    vcSet
	saSet    vcSet
	drainSet vcSet
	injNodes nodeSet
	peaks    ActiveSetPeaks

	// epochs is non-nil when the algorithm hands out table epochs
	// (reconfig.Swapper); messages pin their admission epoch on
	// materialisation and release it when they leave the network.
	epochs epochSource

	inFlight int // messages materialised but not yet finished
	queued   int // messages waiting in injection queues

	lastProgress int64
	stats        Stats
	// rec mirrors cfg.Recorder; the hot-path guard is `rec != nil`.
	rec *trace.Recorder
	// pmFired ensures at most one automatic post-mortem per run.
	pmFired bool
	// Messages holds all records when cfg.RecordMessages is set.
	Messages []*Message
	// creditQueue holds in-flight credit returns when CreditDelay > 0
	// (due cycle, upstream router/port/vc).
	creditQueue []pendingCredit
	// freeScratch backs allocStage's free-candidate filter; nomScratch
	// backs switchStage's per-output nominee lists; moveScratch backs
	// the per-cycle send list. All are reused every cycle.
	freeScratch []routing.Candidate
	nomScratch  [][]nominee
	moveScratch []send
	// par is the deterministic parallel stepping engine (nil when
	// Config.Workers <= 1 or the engine/selector forced the serial
	// fallback; parReason says why).
	par       *stepEngine
	parReason string
}

// nominee is one (input port, input VC) requesting an output port in
// the switch-allocation stage.
type nominee struct{ port, vc int }

// pendingCredit is one credit travelling back upstream.
type pendingCredit struct {
	due  int64
	node topology.NodeID
	port int
	vc   int
}

// New builds a network simulator from cfg, applying defaults.
func New(cfg Config) *Network {
	if cfg.Graph == nil || cfg.Algorithm == nil {
		panic("network: Config needs Graph and Algorithm")
	}
	if cfg.VCs == 0 {
		cfg.VCs = cfg.Algorithm.NumVCs()
	}
	if cfg.VCs < cfg.Algorithm.NumVCs() {
		panic(fmt.Sprintf("network: %s needs %d VCs, config provides %d",
			cfg.Algorithm.Name(), cfg.Algorithm.NumVCs(), cfg.VCs))
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 4
	}
	if cfg.DecisionCyclesPerStep == 0 {
		cfg.DecisionCyclesPerStep = 1
	}
	if cfg.Selector == nil {
		cfg.Selector = routing.MinQueue{}
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 10000
	}
	if cfg.LivelockCheckInterval == 0 {
		cfg.LivelockCheckInterval = defaultLivelockCheckInterval
	}
	n := &Network{
		cfg:    cfg,
		g:      cfg.Graph,
		alg:    cfg.Algorithm,
		sel:    cfg.Selector,
		faults: fault.NewSet(),
		rec:    cfg.Recorder,
	}
	n.lay = newLayout(cfg.Graph.Nodes(), cfg.Graph.Ports(), cfg.VCs)
	lay := &n.lay
	n.ins = make([]inputVC, lay.nodes*lay.inStride)
	n.outs = make([]outputVC, lay.nodes*lay.outStride)
	n.injQ = make([][]*Message, lay.nodes)
	n.rrIn = make([]int, lay.nodes*lay.inPorts)
	n.rrOut = make([]int, lay.nodes*lay.ports)
	n.sent = make([]int64, lay.nodes*lay.ports)
	// One pooled backing arena for every link-attached VC buffer: a
	// link VC never holds more than BufDepth flits, so each gets a
	// fixed-capacity sub-slice (full slice expression — an append past
	// capacity can never bleed into the neighbour). The injection
	// pseudo-port VCs are unbounded and grow on demand.
	arena := make([]flit, lay.nodes*lay.ports*lay.vcs*cfg.BufDepth)
	off := 0
	for node := 0; node < lay.nodes; node++ {
		for p := 0; p < lay.ports; p++ {
			for v := 0; v < lay.vcs; v++ {
				ivc := &n.ins[lay.inIdx(node, p, v)]
				ivc.q.buf = arena[off:off : off+cfg.BufDepth]
				off += cfg.BufDepth
			}
		}
	}
	// The injection pseudo-port VCs are unbounded (a whole message is
	// materialised at once), but they still get pooled backing sized
	// for typical message lengths; a longer message grows its node's
	// buffer once and keeps it. Only VC 0 receives injected traffic.
	injCap := 4 * cfg.BufDepth
	injArena := make([]flit, lay.nodes*injCap)
	for node := 0; node < lay.nodes; node++ {
		ivc := &n.ins[lay.inIdx(node, lay.ports, 0)]
		ivc.q.buf = injArena[node*injCap : node*injCap : (node+1)*injCap]
	}
	// Routing candidates persist across cycles (VA retries consume
	// them), so each input slot owns a fixed-capacity sub-slice too. An
	// algorithm offering more than candCap outputs for one decision
	// grows that slot's buffer once — a one-time, amortised event; the
	// natives on the benched topologies all fit.
	candCap := 4
	if pv := lay.ports * lay.vcs; pv < candCap {
		candCap = pv
	}
	cands := make([]routing.Candidate, len(n.ins)*candCap)
	for i := range n.ins {
		n.ins[i].candidates = cands[i*candCap : i*candCap : (i+1)*candCap]
	}
	for i := range n.ins {
		n.ins[i].resetRoute()
	}
	for i := range n.outs {
		n.outs[i].ownerInPort = -1
		n.outs[i].ownerInVC = 0
		n.outs[i].credits = cfg.BufDepth
	}
	n.routeSet = newVCSet(lay.nodes, lay.inStride)
	n.vaSet = newVCSet(lay.nodes, lay.inStride)
	n.saSet = newVCSet(lay.nodes, lay.inStride)
	n.drainSet = newVCSet(lay.nodes, lay.inStride)
	n.injNodes = newNodeSet(lay.nodes)
	if n.rec != nil {
		n.rec.SetClock(n.Now)
	}
	n.attachReconfig(cfg.Algorithm)
	n.initParallel()
	return n
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Stats returns a snapshot of the aggregated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.Cycles = n.now
	return s
}

// InFlight returns the number of messages materialised in the network.
func (n *Network) InFlight() int { return n.inFlight }

// Queued returns the number of messages waiting in injection queues.
func (n *Network) Queued() int { return n.queued }

// Idle reports whether no messages are queued or in flight.
func (n *Network) Idle() bool { return n.inFlight == 0 && n.queued == 0 }

// Inject enqueues a new message at src destined to dst with the given
// flit length (>= 2). It returns the message record.
func (n *Network) Inject(src, dst topology.NodeID, length int) *Message {
	if length < 2 {
		length = 2
	}
	m := &Message{
		ID:         n.nextID,
		Hdr:        routing.Header{Src: src, Dst: dst, Length: length},
		InjectTime: n.now,
		StartTime:  -1,
		DoneTime:   -1,
		DropInPort: -1,
		DropInVC:   -1,
		State:      StateQueued,
	}
	n.nextID++
	n.stats.Injected++
	n.injQ[src] = append(n.injQ[src], m)
	n.injNodes.set(int(src), true)
	n.queued++
	if n.cfg.RecordMessages {
		n.Messages = append(n.Messages, m)
	}
	return m
}

// LoadView implementation (the Information Units of the router
// architecture: buffer exploitation per output).

// OutFree reports whether output (port,vc) of node is unowned.
func (n *Network) OutFree(node topology.NodeID, port, vc int) bool {
	return n.outs[n.lay.outIdx(int(node), port, vc)].free()
}

// Credits returns the free downstream buffer slots of output
// (port,vc).
func (n *Network) Credits(node topology.NodeID, port, vc int) int {
	return n.outs[n.lay.outIdx(int(node), port, vc)].credits
}

// QueuedFlits returns the data volume still to pass output (port,vc).
func (n *Network) QueuedFlits(node topology.NodeID, port, vc int) int {
	total := 0
	base := n.lay.outIdx(int(node), port, 0)
	for v := 0; v < n.cfg.VCs; v++ {
		total += n.outs[base+v].remaining
	}
	return total
}

var _ routing.LoadView = (*Network)(nil)

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	if n.par != nil {
		n.stepParallel()
		return
	}
	n.stepSerial()
}

// stepSerial is the single-threaded stepping path — byte-for-byte the
// pre-parallel Step; the parallel engine's differential tests treat it
// as the oracle.
func (n *Network) stepSerial() {
	n.deliverCredits()
	n.injectStage()
	n.routeStage()
	n.allocStage()
	moves := n.switchStage()
	progress := n.applyMoves(moves)
	if n.drainStage() {
		progress = true
	}
	if progress {
		n.lastProgress = n.now
	} else if n.inFlight > 0 && n.now-n.lastProgress > n.cfg.WatchdogCycles {
		if !n.stats.DeadlockSuspected {
			n.stats.DeadlockSuspected = true
			n.deadlockPostMortem()
		}
	}
	if n.cfg.LivelockAgeCycles > 0 && n.now%n.cfg.LivelockCheckInterval == 0 {
		n.checkLivelock()
	}
	if n.now&63 == 0 {
		n.samplePeaks()
	}
	n.now++
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain runs until the network is idle or maxCycles elapse; it returns
// true when fully drained.
func (n *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if n.Idle() {
			return true
		}
		n.Step()
	}
	return n.Idle()
}

// injectStage materialises the next queued message of every node with
// a non-empty injection queue into its injection pseudo-port when that
// port is empty.
func (n *Network) injectStage() {
	n.injNodes.forEach(func(node int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return // killed separately in ApplyFaults
		}
		injSlot := n.lay.ports * n.lay.vcs // (injection pseudo-port, VC 0)
		ivc := &n.ins[node*n.lay.inStride+injSlot]
		if ivc.q.len() > 0 {
			return // previous message still streaming
		}
		m := n.injQ[node][0]
		n.injQ[node] = n.injQ[node][1:]
		if len(n.injQ[node]) == 0 {
			n.injNodes.set(node, false)
		}
		m.StartTime = n.now
		m.State = StateInFlight
		if n.epochs != nil {
			m.Hdr.Epoch = n.epochs.AdmitEpoch()
		}
		for i := 0; i < m.Hdr.Length; i++ {
			ivc.q.pushBack(flit{msg: m, head: i == 0, tail: i == m.Hdr.Length-1})
		}
		ivc.resetRoute()
		n.noteInput(node, injSlot)
		n.queued--
		n.inFlight++
		if n.rec != nil {
			n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KFlitInjected,
				Node: int32(node), Msg: m.ID, Port: -1, VC: -1, Arg: int32(m.Hdr.Length)})
		}
	})
}

// routeStage performs RC for every input VC whose front flit is an
// unrouted head — exactly the routeSet membership.
func (n *Network) routeStage() {
	n.routeSet.forEach(0, n.lay.nodes, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		m := ivc.q.front().msg
		ivc.curMsg = m
		if m.Hdr.Dst == topology.NodeID(node) {
			ivc.routed = true
			ivc.eject = true
			ivc.decisionReady = n.now
			n.noteInput(node, slot)
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		req := n.requestFor(node, p, v, m)
		steps := n.alg.Steps(req)
		m.Steps += steps
		ivc.candidates = routing.RouteInto(n.alg, req, ivc.candidates[:0])
		ivc.routed = true
		ivc.unroutable = len(ivc.candidates) == 0
		if ivc.unroutable {
			if judge, ok := n.alg.(routing.UnreachableJudge); ok && judge.UnreachableVerdict(req) {
				m.Unreachable = true
			}
		}
		ivc.decisionReady = n.now + int64(steps*n.cfg.DecisionCyclesPerStep)
		n.noteInput(node, slot)
		if n.rec != nil {
			kind := trace.KRouteComputed
			if ivc.unroutable {
				kind = trace.KUnroutable
			}
			n.rec.Record(trace.Event{Cycle: n.now, Kind: kind,
				Node: int32(node), Msg: m.ID, Port: int16(p), VC: int16(v),
				Arg: int32(len(ivc.candidates))})
		}
	})
}

func (n *Network) requestFor(node, p, v int, m *Message) routing.Request {
	inPort := p
	if p == n.lay.ports {
		inPort = routing.InjectionPort
	}
	return routing.Request{Node: topology.NodeID(node), InPort: inPort, InVC: v, Hdr: &m.Hdr}
}

// allocStage performs VA: routed-but-unallocated inputs (the vaSet)
// try to claim a free output VC among their candidates, guided by the
// selector.
func (n *Network) allocStage() {
	// Credit-gated regimes (routing.CreditGatedVA) must not commit a
	// head to an output VC with no downstream credit: their escape
	// argument needs blocked heads to keep re-arbitrating. Credits are
	// only mutated in the serial phases, so the read is stable here.
	needCredit := routing.AllocNeedsCredit(n.alg)
	n.vaSet.forEach(0, n.lay.nodes, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		if n.now < ivc.decisionReady {
			return
		}
		outBase := node * n.lay.outStride
		free := n.freeScratch[:0]
		for _, c := range ivc.candidates {
			out := &n.outs[outBase+c.Port*n.lay.vcs+c.VC]
			if out.free() && (!needCredit || out.credits > 0) {
				free = append(free, c)
			}
		}
		n.freeScratch = free[:0] // selectors do not retain the slice
		if len(free) == 0 {
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		m := ivc.frontMsg()
		chosen := n.sel.Select(n, topology.NodeID(node), free, &m.Hdr)
		n.alg.NoteHop(n.requestFor(node, p, v, m), chosen)
		ivc.outPort, ivc.outVC = chosen.Port, chosen.VC
		out := &n.outs[outBase+chosen.Port*n.lay.vcs+chosen.VC]
		out.ownerInPort, out.ownerInVC = p, v
		out.ownerMsg = m
		out.remaining = m.Hdr.Length
		n.noteInput(node, slot)
		if n.rec != nil {
			n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KVCAllocated,
				Node: int32(node), Msg: m.ID, Port: int16(chosen.Port), VC: int16(chosen.VC)})
		}
	})
}

// switchStage performs SA: each input port nominates one VC, each
// output port grants one nominee; the result is the list of flit
// movements of this cycle. Only nodes in the saSet (some input holds
// an allocated output with flits queued) can nominate, so inactive
// routers are skipped wholesale; within an active node the walk is the
// full serial round-robin order — the rr pointers, blocked-event and
// nomination behaviour are untouched.
func (n *Network) switchStage() []send {
	moves := n.moveScratch[:0]
	if n.nomScratch == nil {
		n.nomScratch = make([][]nominee, n.g.Ports())
	}
	n.saSet.forEachNode(0, n.lay.nodes, func(node int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		moves = n.switchNode(node, n.nomScratch, moves, nil)
	})
	n.moveScratch = moves
	return moves
}

// switchNode runs nomination and grant for one active router,
// appending the granted movements to moves. Blocked events are
// recorded directly when ops is nil (serial stepping) or deferred into
// *ops (parallel shards).
func (n *Network) switchNode(node int, nomineesByOut [][]nominee, moves []send, ops *[]deferredOp) []send {
	lay := &n.lay
	inBase := node * lay.inStride
	outBase := node * lay.outStride
	rrBase := node * lay.inPorts
	rrOutBase := node * lay.ports
	for op := range nomineesByOut {
		nomineesByOut[op] = nomineesByOut[op][:0]
	}
	// Nomination: one VC per input port (round-robin fairness). The
	// per-output nominee lists live in reused scratch storage (indexed
	// by output port — grants are independent per output, so the fixed
	// iteration order is behaviourally equivalent to the map it
	// replaced). The serial walk's per-slot skip condition
	// (outPort < 0 || empty queue) is exactly non-membership in the SA
	// set, so the node's saSet mask words double as a port/VC skip mask:
	// ports with no active VC cost one bit test, and within a port only
	// active VCs are visited — in unchanged round-robin order.
	saBase := node * n.saSet.wpn
	vcMask := uint64(1)<<uint(lay.vcs) - 1
	for p := 0; p < lay.inPorts; p++ {
		vcs := lay.vcs
		bitpos := p * vcs
		pm := n.saSet.words[saBase+bitpos>>6] >> (bitpos & 63)
		if rem := 64 - bitpos&63; rem < vcs {
			pm |= n.saSet.words[saBase+bitpos>>6+1] << rem
		}
		pm &= vcMask
		if pm == 0 {
			continue
		}
		for off := 0; off < vcs; off++ {
			v := (n.rrIn[rrBase+p] + off) % vcs
			if pm&(1<<uint(v)) == 0 {
				continue
			}
			ivc := &n.ins[inBase+p*vcs+v]
			out := &n.outs[outBase+ivc.outPort*vcs+ivc.outVC]
			if out.credits <= 0 {
				if n.rec != nil && !ivc.blockedNoted {
					ivc.blockedNoted = true
					ev := trace.Event{Cycle: n.now, Kind: trace.KFlitBlocked,
						Node: int32(node), Msg: ivc.curMsg.ID,
						Port: int16(ivc.outPort), VC: int16(ivc.outVC)}
					if ops == nil {
						n.rec.Record(ev)
					} else {
						*ops = append(*ops, deferredOp{kind: opEvent, ev: ev})
					}
				}
				continue
			}
			nomineesByOut[ivc.outPort] = append(nomineesByOut[ivc.outPort], nominee{p, v})
			n.rrIn[rrBase+p] = (v + 1) % vcs
			break
		}
	}
	// Grant: one input per output port (optionally favouring
	// fault-detoured messages, Section 3 Scheduling and Fairness).
	for op, noms := range nomineesByOut {
		if len(noms) == 0 {
			continue
		}
		pick := noms[n.rrOut[rrOutBase+op]%len(noms)]
		if n.cfg.FavorMarked {
			start := n.rrOut[rrOutBase+op] % len(noms)
			for off := 0; off < len(noms); off++ {
				cand := noms[(start+off)%len(noms)]
				if m := n.ins[inBase+cand.port*lay.vcs+cand.vc].curMsg; m != nil && m.Hdr.Marked {
					pick = cand
					break
				}
			}
		}
		n.rrOut[rrOutBase+op]++
		ivc := &n.ins[inBase+pick.port*lay.vcs+pick.vc]
		moves = append(moves, send{
			from: node, fromPort: pick.port, fromVC: pick.vc,
			outPort: ivc.outPort, outVC: ivc.outVC,
		})
	}
	return moves
}

// applyMoves executes the collected sends: pop at the source, push at
// the downstream router, and maintain credits, ownership and message
// accounting. It reports whether any flit moved.
func (n *Network) applyMoves(moves []send) bool {
	lay := &n.lay
	for _, mv := range moves {
		node := mv.from
		srcSlot := mv.fromPort*lay.vcs + mv.fromVC
		ivc := &n.ins[node*lay.inStride+srcSlot]
		f := ivc.q.popFront()
		ivc.blockedNoted = false
		n.creditReturnVC(node, mv.fromPort, mv.fromVC)
		out := &n.outs[lay.outIdx(node, mv.outPort, mv.outVC)]
		out.credits--
		out.remaining--
		n.sent[node*lay.ports+mv.outPort]++
		if f.head {
			f.msg.Hops++
		}
		// Deliver into the downstream input buffer.
		down := n.g.Neighbor(topology.NodeID(node), mv.outPort)
		dp, ok := n.g.PortTo(down, topology.NodeID(node))
		if !ok {
			panic("network: inconsistent topology in applyMoves")
		}
		downSlot := dp*lay.vcs + mv.outVC
		n.ins[int(down)*lay.inStride+downSlot].q.pushBack(f)
		n.noteInput(int(down), downSlot)
		if f.tail {
			// The worm has fully left: release input route state and
			// output ownership.
			ivc.resetRoute()
			out.ownerInPort, out.ownerInVC = -1, -1
			out.ownerMsg = nil
			out.remaining = 0
			if n.rec != nil {
				n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KVCFreed,
					Node: int32(node), Msg: f.msg.ID,
					Port: int16(mv.outPort), VC: int16(mv.outVC)})
			}
		}
		n.noteInput(node, srcSlot)
	}
	return len(moves) > 0
}

// creditReturnVC gives one credit back for a flit popped from input
// (p,v) of node, after the configured return latency.
func (n *Network) creditReturnVC(node, p, v int) {
	if p == n.lay.ports {
		return // injection pseudo-port: no upstream link
	}
	up := n.g.Neighbor(topology.NodeID(node), p)
	if up == topology.Invalid {
		return
	}
	upPort, ok := n.g.PortTo(up, topology.NodeID(node))
	if !ok {
		return
	}
	if n.rec != nil {
		n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KCreditSent,
			Node: int32(up), Msg: -1, Port: int16(upPort), VC: int16(v),
			Arg: int32(n.cfg.CreditDelay)})
	}
	if n.cfg.CreditDelay <= 0 {
		n.outs[n.lay.outIdx(int(up), upPort, v)].credits++
		return
	}
	n.creditQueue = append(n.creditQueue, pendingCredit{
		due: n.now + int64(n.cfg.CreditDelay), node: up, port: upPort, vc: v,
	})
}

// deliverCredits applies due credit returns.
func (n *Network) deliverCredits() {
	if len(n.creditQueue) == 0 {
		return
	}
	kept := n.creditQueue[:0]
	for _, c := range n.creditQueue {
		if c.due <= n.now {
			n.outs[n.lay.outIdx(int(c.node), c.port, c.vc)].credits++
		} else {
			kept = append(kept, c)
		}
	}
	n.creditQueue = kept
}

// drainStage ejects delivered flits and absorbs unroutable messages
// (one flit per input VC per cycle) — exactly the drainSet membership,
// gated live on decisionReady. It reports whether anything drained.
func (n *Network) drainStage() bool {
	progress := false
	n.drainSet.forEach(0, n.lay.nodes, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		if n.now < ivc.decisionReady {
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		f := ivc.q.popFront()
		n.creditReturnVC(node, p, v)
		progress = true
		if ivc.eject {
			n.stats.FlitsDelivered++
			f.msg.flitsEjected++
		}
		if f.tail {
			m := f.msg
			m.DoneTime = n.now
			if n.rec != nil {
				kind := trace.KFlitDelivered
				if !ivc.eject {
					kind = trace.KFlitDropped
				}
				n.rec.Record(trace.Event{Cycle: n.now, Kind: kind,
					Node: int32(node), Msg: m.ID, Port: int16(p), VC: int16(v),
					Arg: int32(n.now - m.InjectTime)})
			}
			if ivc.eject {
				m.State = StateDelivered
				n.stats.Delivered++
				n.stats.HopsSum += int64(m.Hops)
				n.stats.StepsSum += int64(m.Steps)
				n.stats.MisroutesSum += int64(m.Hdr.Misroutes)
				if m.Hdr.Marked {
					n.stats.MarkedCount++
				}
				lat := m.Latency()
				n.stats.LatencySum += lat
				n.stats.NetLatencySum += m.NetworkLatency()
				if lat > n.stats.MaxLatency {
					n.stats.MaxLatency = lat
				}
			} else {
				m.State = StateDropped
				m.DropNode = topology.NodeID(node)
				m.DropInPort = p
				if p == n.lay.ports {
					m.DropInPort = routing.InjectionPort
				}
				m.DropInVC = v
				n.stats.Dropped++
				if m.Unreachable {
					n.stats.Unreachable++
				}
			}
			n.inFlight--
			if n.epochs != nil {
				n.epochs.ReleaseEpoch(m.Hdr.Epoch)
			}
			ivc.resetRoute()
		}
		n.noteInput(node, slot)
	})
	return progress
}
