package network

import (
	"sort"

	"repro/internal/topology"
)

// LinkLoad is the traffic carried by one undirected link (flits summed
// over both directions).
type LinkLoad struct {
	Link  topology.Link
	Flits int64
}

// LinkLoads returns the per-link flit counts accumulated since the
// network was built, in canonical link order.
func (n *Network) LinkLoads() []LinkLoad {
	acc := map[topology.Link]int64{}
	for node := 0; node < n.lay.nodes; node++ {
		for p := 0; p < n.lay.ports; p++ {
			m := n.g.Neighbor(topology.NodeID(node), p)
			if m == topology.Invalid {
				continue
			}
			acc[topology.MakeLink(topology.NodeID(node), m)] += n.sent[node*n.lay.ports+p]
		}
	}
	links := topology.Links(n.g)
	out := make([]LinkLoad, 0, len(links))
	for _, l := range links {
		out = append(out, LinkLoad{Link: l, Flits: acc[l]})
	}
	return out
}

// UtilizationSummary condenses the link-load distribution: how many
// links carried any traffic, the mean/peak load, and the Gini
// coefficient of the distribution (0 = perfectly balanced, 1 = all
// traffic on one link). The paper's critique of the spanning-tree
// strawman — "this algorithm uses only a small fraction of the network
// links" — becomes directly measurable here.
type UtilizationSummary struct {
	Links     int
	UsedLinks int
	MeanFlits float64
	PeakFlits int64
	Gini      float64
}

// Utilization computes the link-load summary.
func (n *Network) Utilization() UtilizationSummary {
	loads := n.LinkLoads()
	s := UtilizationSummary{Links: len(loads)}
	if len(loads) == 0 {
		return s
	}
	var total int64
	vals := make([]float64, 0, len(loads))
	for _, l := range loads {
		if l.Flits > 0 {
			s.UsedLinks++
		}
		if l.Flits > s.PeakFlits {
			s.PeakFlits = l.Flits
		}
		total += l.Flits
		vals = append(vals, float64(l.Flits))
	}
	s.MeanFlits = float64(total) / float64(len(loads))
	if total == 0 {
		return s
	}
	// Gini via the sorted-rank formula.
	sort.Float64s(vals)
	var cum float64
	for i, v := range vals {
		cum += float64(2*(i+1)-len(vals)-1) * v
	}
	s.Gini = cum / (float64(len(vals)) * float64(total))
	return s
}
