package network

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ringAlg deliberately routes every message clockwise around the outer
// ring of a mesh with a single virtual channel — the textbook
// deadlock-prone discipline (a cyclic channel dependency).
type ringAlg struct {
	m *topology.Mesh
}

func (r *ringAlg) Name() string                               { return "ring" }
func (r *ringAlg) NumVCs() int                                { return 1 }
func (r *ringAlg) Steps(routing.Request) int                  { return 1 }
func (r *ringAlg) NoteHop(routing.Request, routing.Candidate) {}
func (r *ringAlg) UpdateFaults(*fault.Set)                    {}

// Route follows the ring clockwise: east along the bottom, north up
// the right edge, west along the top, south down the left edge.
func (r *ringAlg) Route(req routing.Request) []routing.Candidate {
	x, y := r.m.XY(req.Node)
	w, h := r.m.W, r.m.H
	var port int
	switch {
	case y == 0 && x < w-1:
		port = topology.East
	case x == w-1 && y < h-1:
		port = topology.North
	case y == h-1 && x > 0:
		port = topology.West
	default:
		port = topology.South
	}
	return []routing.Candidate{{Port: port, VC: 0}}
}

// TestDeadlockDetectorFindsRingDeadlock drives the deliberately broken
// ring discipline into a circular wait and checks the analyser
// certifies it.
func TestDeadlockDetectorFindsRingDeadlock(t *testing.T) {
	m := topology.NewMesh(3, 3)
	n := New(Config{Graph: m, Algorithm: &ringAlg{m: m}, BufDepth: 2, WatchdogCycles: 200})
	// One long message injected at each ring corner, each destined
	// "around the corner" so all four segments are claimed at once.
	corners := []struct{ src, dst topology.NodeID }{
		{m.Node(0, 0), m.Node(2, 1)}, // east segment, turning north
		{m.Node(2, 0), m.Node(1, 2)}, // north segment, turning west
		{m.Node(2, 2), m.Node(0, 1)}, // west segment, turning south
		{m.Node(0, 2), m.Node(1, 0)}, // south segment, turning east
	}
	for _, c := range corners {
		n.Inject(c.src, c.dst, 24)
	}
	found := false
	for i := 0; i < 500; i++ {
		n.Step()
		if cyc := n.FindDeadlockCycle(); len(cyc) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("ring discipline should deadlock and be certified by the analyser")
	}
	// The watchdog agrees eventually.
	for i := 0; i < 300; i++ {
		n.Step()
	}
	if !n.Stats().DeadlockSuspected {
		t.Fatal("watchdog should also flag the deadlock")
	}
}

// TestNoDeadlockCycleUnderStress checks the analyser stays silent for
// the paper's algorithms under heavy load and faults — every cycle of
// three stress runs.
func TestNoDeadlockCycleUnderStress(t *testing.T) {
	t.Run("nafta-mesh", func(t *testing.T) {
		m := topology.NewMesh(8, 8)
		alg := routing.NewNAFTA(m)
		n := New(Config{Graph: m, Algorithm: alg, BufDepth: 2})
		f := fault.NewSet()
		f.FailNode(m.Node(3, 3))
		f.FailNode(m.Node(4, 3))
		n.ApplyFaults(f)
		stress(t, n, m.Nodes(), func(rng *rand.Rand) (topology.NodeID, topology.NodeID) {
			return topology.NodeID(rng.Intn(m.Nodes())), topology.NodeID(rng.Intn(m.Nodes()))
		}, func(x topology.NodeID) bool { return f.NodeFaulty(x) || alg.Blocks().DisabledNode(x) })
	})
	t.Run("routec-cube", func(t *testing.T) {
		h := topology.NewHypercube(5)
		alg := routing.NewRouteC(h)
		n := New(Config{Graph: h, Algorithm: alg})
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 3, Seed: 1, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		n.ApplyFaults(f)
		stress(t, n, h.Nodes(), func(rng *rand.Rand) (topology.NodeID, topology.NodeID) {
			return topology.NodeID(rng.Intn(h.Nodes())), topology.NodeID(rng.Intn(h.Nodes()))
		}, f.NodeFaulty)
	})
	t.Run("neghop-mesh", func(t *testing.T) {
		m := topology.NewMesh(8, 8)
		alg, err := routing.NewNegHop(m, 10)
		if err != nil {
			t.Fatal(err)
		}
		n := New(Config{Graph: m, Algorithm: alg, BufDepth: 2})
		f := fault.NewSet()
		f.FailLink(m.Node(3, 3), m.Node(3, 4))
		n.ApplyFaults(f)
		stress(t, n, m.Nodes(), func(rng *rand.Rand) (topology.NodeID, topology.NodeID) {
			return topology.NodeID(rng.Intn(m.Nodes())), topology.NodeID(rng.Intn(m.Nodes()))
		}, func(topology.NodeID) bool { return false })
	})
}

func stress(t *testing.T, n *Network, nodes int,
	pick func(*rand.Rand) (topology.NodeID, topology.NodeID),
	skip func(topology.NodeID) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for cycle := 0; cycle < 3000; cycle++ {
		// Heavy injection for the first two thirds.
		if cycle < 2000 && cycle%2 == 0 {
			for k := 0; k < 4; k++ {
				src, dst := pick(rng)
				if src == dst || skip(src) || skip(dst) {
					continue
				}
				n.Inject(src, dst, 8)
			}
		}
		n.Step()
		if cycle%25 == 0 {
			if cyc := n.FindDeadlockCycle(); cyc != nil {
				t.Fatalf("cycle %d: circular wait among messages %v", cycle, cyc)
			}
		}
	}
	if !n.Drain(100000) {
		if cyc := n.FindDeadlockCycle(); cyc != nil {
			t.Fatalf("drain stalled with circular wait %v", cyc)
		}
		t.Fatalf("drain stalled without a certified cycle (inflight %d)", n.InFlight())
	}
}

// Up*/down* on an irregular cluster topology: heavy traffic, no
// circular waits (the single-VC discipline must hold).
func TestNoDeadlockCycleUpDownIrregular(t *testing.T) {
	g, err := topology.RandomIrregular(24, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := routing.NewUpDown(g)
	n := New(Config{Graph: g, Algorithm: alg, BufDepth: 2})
	f := fault.NewSet()
	n.ApplyFaults(f)
	stress(t, n, g.Nodes(), func(rng *rand.Rand) (topology.NodeID, topology.NodeID) {
		return topology.NodeID(rng.Intn(g.Nodes())), topology.NodeID(rng.Intn(g.Nodes()))
	}, func(topology.NodeID) bool { return false })
}
