package network

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/rulesets"
	"repro/internal/topology"
	"repro/internal/trace"
)

// parRun is everything a differential scenario run exposes for
// comparison: the aggregated statistics, the full flight-recorder
// event stream and the first-seen rule-base numbering of the
// TraceRules hook.
type parRun struct {
	stats  Stats
	events []trace.Event
	bases  map[string]int
}

// runParScenario executes one named scenario with the given worker
// count and returns its observable outcome. Every scenario injects
// deterministic traffic cycle-by-cycle, disturbs the run mid-flight
// (faults, hot swaps) and drains.
func runParScenario(t *testing.T, name string, workers int) parRun {
	t.Helper()
	var (
		g      topology.Graph
		alg    routing.Algorithm
		sel    routing.Selector
		delay  int
		midRun func(n *Network, cycle int64)
	)
	rec := trace.New(64, 4096)
	hook, bases := rulesets.TraceRules(rec)

	switch name {
	case "nafta-fast", "nafta-ref":
		m := topology.NewMesh(6, 6)
		a, err := rulesets.NewRuleNAFTA(m)
		if err != nil {
			t.Fatal(err)
		}
		a.DisableFast = name == "nafta-ref"
		a.OnRuleFired = hook
		g, alg = m, a
		f := fault.NewSet()
		midRun = func(n *Network, cycle int64) {
			if cycle == 40 {
				f.FailNode(m.Node(2, 3))
				f.FailLink(m.Node(4, 1), m.Node(4, 2))
				n.ApplyFaults(f)
			}
		}
	case "routec-fast", "routec-ref":
		h := topology.NewHypercube(4)
		a, err := rulesets.NewRuleRouteC(h)
		if err != nil {
			t.Fatal(err)
		}
		a.DisableFast = name == "routec-ref"
		a.OnRuleFired = hook
		g, alg = h, a
		f := fault.NewSet()
		midRun = func(n *Network, cycle int64) {
			if cycle == 35 {
				f.FailLink(topology.NodeID(0), topology.NodeID(1))
				f.FailNode(topology.NodeID(9))
				n.ApplyFaults(f)
			}
		}
	case "nara-roundrobin-creditdelay":
		m := topology.NewMesh(6, 6)
		g, alg = m, routing.NewNARA(m)
		sel = routing.NewRoundRobin()
		delay = 2
	case "xy-drops":
		m := topology.NewMesh(6, 6)
		g, alg = m, routing.NewXY(m)
		f := fault.NewSet()
		f.FailLink(m.Node(2, 2), m.Node(3, 2))
		midRun = func(n *Network, cycle int64) {
			if cycle == 0 {
				n.ApplyFaults(f)
			}
		}
	case "neghop-faults":
		h := topology.NewHypercube(4)
		a, err := routing.NewNegHop(h, 3)
		if err != nil {
			t.Fatal(err)
		}
		g, alg = h, a
		f := fault.NewSet()
		midRun = func(n *Network, cycle int64) {
			if cycle == 40 {
				f.FailNode(topology.NodeID(5))
				f.FailLink(topology.NodeID(2), topology.NodeID(10))
				n.ApplyFaults(f)
			}
		}
	case "swap-hot":
		m := topology.NewMesh(6, 6)
		mk := func() routing.Algorithm {
			a, err := rulesets.NewRuleNAFTA(m)
			if err != nil {
				t.Fatal(err)
			}
			a.OnRuleFired = hook
			return a
		}
		sw := reconfig.NewSwapper(mk())
		g, alg = m, sw
		f := fault.NewSet()
		midRun = func(n *Network, cycle int64) {
			if cycle == 30 || cycle == 55 {
				if err := n.Reconfigure(mk(), false); err != nil {
					t.Fatal(err)
				}
			}
			if cycle == 45 {
				f.FailLink(m.Node(1, 1), m.Node(1, 2))
				n.ApplyFaults(f)
			}
		}
	default:
		t.Fatalf("unknown scenario %q", name)
	}

	n := New(Config{
		Graph: g, Algorithm: alg, Selector: sel,
		Recorder: rec, CreditDelay: delay, Workers: workers,
	})
	defer n.Close()
	if workers >= 2 && !n.ParallelActive() {
		t.Fatalf("scenario %s: parallel engine inactive with %d workers: %s",
			name, workers, n.ParallelReason())
	}
	rng := rand.New(rand.NewSource(1234))
	for cycle := int64(0); cycle < 120; cycle++ {
		if midRun != nil {
			midRun(n, cycle)
		}
		for k := 0; k < 2; k++ {
			src := topology.NodeID(rng.Intn(g.Nodes()))
			dst := topology.NodeID(rng.Intn(g.Nodes()))
			if src == dst || n.faults.NodeFaulty(src) || n.faults.NodeFaulty(dst) {
				continue
			}
			n.Inject(src, dst, 3+rng.Intn(6))
		}
		n.Step()
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("scenario %s workers=%d cycle %d: %v", name, workers, cycle, err)
		}
	}
	if !n.Drain(50000) {
		t.Fatalf("scenario %s workers=%d did not drain", name, workers)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("scenario %s workers=%d: recorder dropped %d events (grow the rings)",
			name, workers, rec.Dropped())
	}
	return parRun{stats: n.Stats(), events: rec.Events(), bases: bases}
}

// TestParallelMatchesSerial is the heart of the determinism contract:
// for every scenario family — rule adapters on both decision paths,
// natives with a stateful selector and credit delay, drops, hot swaps
// under faults — a parallel run must be bit-identical to the serial
// run in Stats, trace-event content and first-seen rule numbering.
func TestParallelMatchesSerial(t *testing.T) {
	scenarios := []string{
		"nafta-fast", "nafta-ref",
		"routec-fast", "routec-ref",
		"nara-roundrobin-creditdelay", "xy-drops", "neghop-faults", "swap-hot",
	}
	for _, name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			serial := runParScenario(t, name, 0)
			for _, workers := range []int{2, 3, 7} {
				par := runParScenario(t, name, workers)
				if serial.stats != par.stats {
					t.Fatalf("workers=%d stats diverged:\nserial:   %+v\nparallel: %+v",
						workers, serial.stats, par.stats)
				}
				if len(serial.events) != len(par.events) {
					t.Fatalf("workers=%d event count diverged: %d vs %d",
						workers, len(serial.events), len(par.events))
				}
				for i := range serial.events {
					if serial.events[i] != par.events[i] {
						t.Fatalf("workers=%d event %d diverged:\nserial:   %+v\nparallel: %+v",
							workers, i, serial.events[i], par.events[i])
					}
				}
				if len(serial.bases) != len(par.bases) {
					t.Fatalf("workers=%d rule-base count diverged", workers)
				}
				for b, idx := range serial.bases {
					if par.bases[b] != idx {
						t.Fatalf("workers=%d first-seen numbering of base %q diverged: %d vs %d",
							workers, b, idx, par.bases[b])
					}
				}
			}
		})
	}
}

// TestParallelLookupCountersExact: decision contexts count lookups
// locally and flush per cycle — the adapter's public counter must
// match the serial run exactly.
func TestParallelLookupCountersExact(t *testing.T) {
	count := func(workers int) int64 {
		m := topology.NewMesh(5, 5)
		a, err := rulesets.NewRuleNAFTA(m)
		if err != nil {
			t.Fatal(err)
		}
		n := New(Config{Graph: m, Algorithm: a, Workers: workers})
		defer n.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60; i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src != dst {
				n.Inject(src, dst, 4)
			}
			n.Step()
		}
		if !n.Drain(20000) {
			t.Fatal("drain failed")
		}
		return a.Lookups
	}
	serial := count(0)
	if serial == 0 {
		t.Fatal("serial run made no lookups")
	}
	if par := count(4); par != serial {
		t.Fatalf("lookup counter diverged: serial %d, parallel %d", serial, par)
	}
}

// TestParallelFallbacks: engines and selectors that cannot decide
// concurrently must force the serial path with a reason — never an
// error, never a wrong result.
func TestParallelFallbacks(t *testing.T) {
	m := topology.NewMesh(4, 4)
	h := topology.NewHypercube(4)

	// NegHop counts exhaustion atomically and is ConcurrentRoutable:
	// it must ride the parallel engine.
	nh, err := routing.NewNegHop(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := New(Config{Graph: h, Algorithm: nh, Workers: 4})
	defer n.Close()
	if !n.ParallelActive() {
		t.Fatalf("neg-hop should step in parallel: %s", n.ParallelReason())
	}

	// An engine with neither the concurrency marker nor decision
	// contexts forces the serial path with a reason — never an error.
	n1 := New(Config{Graph: h, Algorithm: serialOnlyAlg{routing.NewECube(h)}, Workers: 4})
	defer n1.Close()
	if n1.ParallelActive() {
		t.Fatal("marker-less engine must not step in parallel")
	}
	if n1.ParallelReason() == "" {
		t.Fatal("fallback must carry a reason")
	}

	// A selector without PrepareNodes is not shard-safe.
	n2 := New(Config{Graph: m, Algorithm: routing.NewXY(m), Selector: unsafeSelector{}, Workers: 4})
	defer n2.Close()
	if n2.ParallelActive() {
		t.Fatal("non-shard-safe selector must force serial stepping")
	}

	// Workers: 1 is plain serial, no reason recorded.
	n3 := New(Config{Graph: m, Algorithm: routing.NewXY(m), Workers: 1})
	defer n3.Close()
	if n3.ParallelActive() || n3.ParallelReason() != "" {
		t.Fatal("Workers<=1 must keep the serial path silently")
	}
}

// serialOnlyAlg hides an engine's parallel capabilities: the embedded
// interface promotes only Algorithm's methods, so the wrapper is
// neither ConcurrentRoutable nor a DecisionContexter.
type serialOnlyAlg struct{ routing.Algorithm }

type unsafeSelector struct{}

func (unsafeSelector) Name() string { return "unsafe" }
func (unsafeSelector) Select(_ routing.LoadView, _ topology.NodeID, cands []routing.Candidate, _ *routing.Header) routing.Candidate {
	return cands[0]
}

// TestParallelColdSwapRebindsContexts: a cold Reconfigure replaces the
// engine the shard contexts were bound to; the rebind must keep
// parallel stepping deterministic (or fall back when unsupported).
func TestParallelColdSwapRebindsContexts(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: routing.NewNARA(m), VCs: 2, Workers: 2})
	defer n.Close()
	if !n.ParallelActive() {
		t.Fatalf("parallel inactive: %s", n.ParallelReason())
	}
	n.Inject(0, 15, 4)
	if !n.Drain(10000) {
		t.Fatal("drain failed")
	}
	a, err := rulesets.NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Reconfigure(a, false); err != nil {
		t.Fatal(err)
	}
	if !n.ParallelActive() {
		t.Fatalf("parallel disabled after cold swap to a contexter engine: %s", n.ParallelReason())
	}
	n.Inject(0, 15, 4)
	if !n.Drain(10000) {
		t.Fatal("post-swap drain failed")
	}
	if got := n.Stats().Delivered; got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}

	// A cold swap to another ConcurrentRoutable engine (NegHop) keeps
	// the pool; a swap to an engine without parallel support disables
	// it.
	h := topology.NewHypercube(3)
	n2 := New(Config{Graph: h, Algorithm: routing.NewECube(h), VCs: 4, Workers: 2})
	defer n2.Close()
	if !n2.ParallelActive() {
		t.Fatalf("parallel inactive: %s", n2.ParallelReason())
	}
	nh2, err := routing.NewNegHop(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Reconfigure(nh2, false); err != nil {
		t.Fatal(err)
	}
	if !n2.ParallelActive() {
		t.Fatalf("parallel disabled after cold swap to neg-hop: %s", n2.ParallelReason())
	}
	n2.Inject(0, 7, 4)
	if !n2.Drain(10000) {
		t.Fatal("post-swap drain failed")
	}
	if err := n2.Reconfigure(serialOnlyAlg{routing.NewECube(h)}, false); err != nil {
		t.Fatal(err)
	}
	if n2.ParallelActive() {
		t.Fatal("cold swap to a marker-less engine must disable parallel stepping")
	}
	n2.Inject(0, 7, 4)
	if !n2.Drain(10000) {
		t.Fatal("serial-fallback drain failed")
	}
}

// TestParallelPoolReconfigureStress drives a parallel network through
// repeated hot swaps and fault surgeries while stepping under load —
// the -race target for the worker pool and the epoch-context sync.
func TestParallelPoolReconfigureStress(t *testing.T) {
	m := topology.NewMesh(6, 6)
	mk := func() routing.Algorithm {
		a, err := rulesets.NewRuleNAFTA(m)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	sw := reconfig.NewSwapper(mk())
	n := New(Config{Graph: m, Algorithm: sw, Workers: 4})
	defer n.Close()
	if !n.ParallelActive() {
		t.Fatalf("parallel inactive: %s", n.ParallelReason())
	}
	rng := rand.New(rand.NewSource(99))
	f := fault.NewSet()
	for cycle := 0; cycle < 400; cycle++ {
		if cycle%37 == 11 {
			if err := n.Reconfigure(mk(), false); err != nil {
				t.Fatal(err)
			}
		}
		if cycle == 150 {
			f.FailLink(m.Node(3, 3), m.Node(3, 4))
			n.ApplyFaults(f)
		}
		if cycle == 250 {
			f.RepairLink(m.Node(3, 3), m.Node(3, 4))
			n.ApplyFaults(f)
		}
		for k := 0; k < 2; k++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src != dst {
				n.Inject(src, dst, 4)
			}
		}
		n.Step()
	}
	if !n.Drain(50000) {
		t.Fatal("stress run did not drain")
	}
	if !n.ParallelActive() {
		t.Fatalf("parallel engine lost mid-run: %s", n.ParallelReason())
	}
	st := n.Stats()
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if st.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if !sw.Quiesced() {
		t.Fatalf("%d epochs live after drain", sw.LiveEpochs())
	}
}

// TestParallelStepNoAllocsSteadyState: once buffers are warm, a
// parallel step allocates nothing.
func TestParallelStepNoAllocsSteadyState(t *testing.T) {
	m := topology.NewMesh(6, 6)
	a, err := rulesets.NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	n := New(Config{Graph: m, Algorithm: a, Workers: 3})
	defer n.Close()
	if !n.ParallelActive() {
		t.Fatalf("parallel inactive: %s", n.ParallelReason())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < m.Nodes()*4; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src != dst {
			n.Inject(src, dst, 24)
		}
	}
	n.Run(60) // warm every scratch buffer
	if n.InFlight() == 0 {
		t.Fatal("network drained before the measurement window")
	}
	avg := testing.AllocsPerRun(50, func() { n.Step() })
	if n.InFlight() == 0 {
		t.Fatal("network drained during the measurement window")
	}
	if avg > 0.1 {
		t.Fatalf("parallel Step allocates %.2f objects/op in steady state, want 0", avg)
	}
}

// TestStepNoAllocsSteadyStateBigTopologies extends the steady-state
// zero-alloc guarantee to the large-cluster regime on both engines:
// the arena layout pools every flit buffer at construction, so neither
// a 64x64 mesh nor a 14-cube step may touch the heap once warm.
func TestStepNoAllocsSteadyStateBigTopologies(t *testing.T) {
	mesh := topology.NewMesh(64, 64)
	cube := topology.NewHypercube(14)
	cases := []struct {
		name    string
		g       topology.Graph
		alg     routing.Algorithm
		workers int
	}{
		{"mesh64x64/serial", mesh, routing.NewNAFTA(mesh), 0},
		{"mesh64x64/workers2", mesh, routing.NewNAFTA(mesh), 2},
		{"cube14/serial", cube, routing.NewECube(cube), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := New(Config{Graph: c.g, Algorithm: c.alg, Workers: c.workers})
			defer n.Close()
			if c.workers > 1 && !n.ParallelActive() {
				t.Fatalf("parallel inactive: %s", n.ParallelReason())
			}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < c.g.Nodes(); i++ {
				src := topology.NodeID(rng.Intn(c.g.Nodes()))
				dst := topology.NodeID(rng.Intn(c.g.Nodes()))
				if src != dst {
					n.Inject(src, dst, 16)
				}
			}
			n.Run(60) // warm every scratch buffer
			avg := testing.AllocsPerRun(50, func() { n.Step() })
			if n.InFlight() == 0 {
				t.Fatal("network drained during the measurement window")
			}
			if avg > 0.1 {
				t.Fatalf("Step allocates %.2f objects/op in steady state, want 0", avg)
			}
		})
	}
}

func ExampleNetwork_ParallelActive() {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: routing.NewXY(m), Workers: 4})
	defer n.Close()
	fmt.Println(n.ParallelActive())
	// Output: true
}
