package network

import (
	"fmt"
	"sync"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Deterministic parallel stepping.
//
// The network is sharded into contiguous router-ID ranges, one shard
// per worker of a persistent pool. Every pipeline stage runs as a
// parallel compute phase over the shards followed by a barrier; a
// worker only mutates state owned by its own routers (input VCs,
// output ownership, the headers of messages parked at its inputs) and
// defers every cross-router or globally ordered effect — trace
// events, rule-fire observations, epoch releases, credit returns,
// statistics — into its shard's ordered op list. After the barrier a
// single-threaded commit replays the op lists in shard order, which
// is exactly ascending router-ID order, the order the serial stepper
// produces. Stage compute is router-local by construction:
//
//   - deliverCredits writes output credits of the credit's target
//     router (filtered per shard; the queue is compacted serially);
//   - routeStage/allocStage write only the deciding router's input
//     and output VC state; routing decisions run on per-worker
//     decision contexts (routing.DecisionContexter) or on engines
//     that declare concurrent decisions safe;
//   - switchStage writes only the router's round-robin pointers and
//     appends movements to the shard's move list; the movements
//     themselves — the only writes crossing router boundaries — are
//     applied by the serial commit (applyMoves), in shard order;
//   - drainStage pops local input VCs and defers credits, stats,
//     epoch releases and events.
//
// injectStage stays serial (it walks the injection work list and
// touches global counters). The result is bit-identical Stats and
// trace-event content for every seed, algorithm, fast-path setting,
// fault schedule and hot-swap scenario — the serial stepper remains
// the oracle of the differential tests.
//
// With the flat-arena/active-set engine (arena.go), each shard stage
// iterates only its range of the per-stage work lists
// (forEach(s.lo, s.hi)) instead of scanning every router. Membership
// updates from inside a parallel phase write the mutated node's mask
// words, its count cell and its summary-bit word; summary words are
// shared by 64 consecutive nodes, so initParallel aligns every shard
// boundary to a multiple of 64 router IDs — no two workers ever write
// the same word, and the phase commit order is unchanged.

// Compute-phase identifiers (stepEngine.phase).
const (
	phCredits = iota
	phRoute
	phAlloc
	phSwitch
	phDrain
)

// opKind tags one deferred effect in a shard's ordered op list.
type opKind uint8

const (
	// opEvent replays one flight-recorder event.
	opEvent opKind = iota
	// opFire replays one rule-table firing through the originating
	// engine's live hook (routing.RuleFirer) — preserving first-seen
	// base numbering and event interleaving of hooks like
	// rulesets.TraceRules.
	opFire
	// opRelease releases one message's admission epoch; retirement
	// hooks (table invalidation, KEpochRetired events) fire inside the
	// replay, interleaved exactly as in a serial drain.
	opRelease
	// opCredit increments one upstream output credit (CreditDelay 0).
	opCredit
	// opQueueCredit appends one delayed credit to the global queue.
	opQueueCredit
)

// deferredOp is one entry of a shard's ordered op list. The struct is
// a tagged union; only the fields of its kind are meaningful.
type deferredOp struct {
	kind   opKind
	ev     trace.Event
	eng    routing.Algorithm
	node   topology.NodeID
	base   string
	rule   int
	epoch  uint64
	credit pendingCredit
}

// drainDelta accumulates one shard's drain-stage contributions to the
// global Stats and message accounting, folded in at commit.
type drainDelta struct {
	flitsDelivered int64
	delivered      int64
	dropped        int64
	unreachable    int64
	hopsSum        int64
	stepsSum       int64
	misroutesSum   int64
	markedCount    int64
	latencySum     int64
	netLatencySum  int64
	maxLatency     int64
	inFlight       int
	progress       bool
}

// shard is one worker's router range plus all its per-worker state:
// the decision context, reusable stage scratch and the deferred-op
// list. Everything is reused across cycles — the parallel hot path
// does not allocate in steady state.
type shard struct {
	lo, hi int // router index range [lo, hi)

	// alg makes this worker's routing decisions: a decision context of
	// the network's engine, or the engine itself when it is
	// ConcurrentRoutable.
	alg routing.Algorithm
	// flush folds the context's local lookup counters into the parent
	// engine (called from the serial commit; nil when not supported).
	flush routing.LookupFlusher
	// sync materialises child contexts after engine hot-swaps (nil for
	// engines without generations).
	sync routing.ContextSyncer

	ops   []deferredOp
	free  []routing.Candidate
	noms  [][]nominee
	moves []send
	delta drainDelta
}

// stepEngine owns the worker pool of one network. Workers are started
// lazily on the first parallel step and parked on per-worker channels
// between phases; runPhase publishes the phase id, signals every
// worker and waits on the barrier.
type stepEngine struct {
	n      *Network
	shards []*shard
	phase  int

	start   []chan struct{}
	done    sync.WaitGroup
	quit    chan struct{}
	exited  sync.WaitGroup
	started bool
	stopped sync.Once
}

// initParallel builds the parallel engine when Config.Workers asks for
// one and the algorithm/selector can decide concurrently; otherwise it
// records the fallback reason and leaves the serial path in charge.
func (n *Network) initParallel() {
	if n.cfg.Workers < 2 {
		return
	}
	sel, ok := n.sel.(routing.ShardSafeSelector)
	if !ok {
		n.parReason = fmt.Sprintf("selector %q is not shard-safe", n.sel.Name())
		return
	}
	nodes := n.g.Nodes()
	w := n.cfg.Workers
	if w > nodes {
		w = nodes
	}
	e := &stepEngine{n: n, quit: make(chan struct{})}
	e.shards = make([]*shard, w)
	e.start = make([]chan struct{}, w)
	// Shard boundaries are rounded up to multiples of 64 router IDs so
	// that the active sets' node-summary words (64 nodes per word) are
	// never shared between workers; the final boundary is the node
	// count. Rounding preserves monotonicity, so small networks may get
	// empty trailing shards — their workers simply have no work.
	bound := func(i int) int {
		b := (i*nodes/w + 63) &^ 63
		if b > nodes {
			b = nodes
		}
		return b
	}
	for i := range e.shards {
		lo, hi := bound(i), bound(i+1)
		if i == 0 {
			lo = 0
		}
		if i == w-1 {
			hi = nodes
		}
		e.shards[i] = &shard{
			lo:   lo,
			hi:   hi,
			noms: make([][]nominee, n.g.Ports()),
		}
		e.start[i] = make(chan struct{}, 1)
	}
	if !n.bindShardContexts(e) {
		return // parReason set
	}
	sel.PrepareNodes(nodes)
	n.par = e
}

// bindShardContexts (re)binds every shard's decision context to the
// network's current algorithm. It returns false — with parReason set —
// when the algorithm can neither hand out decision contexts nor decide
// concurrently.
func (n *Network) bindShardContexts(e *stepEngine) bool {
	for _, s := range e.shards {
		s := s
		switch alg := n.alg.(type) {
		case routing.DecisionContexter:
			ctx := alg.NewDecisionContext(func(eng routing.Algorithm, node topology.NodeID, base string, rule int) {
				s.ops = append(s.ops, deferredOp{kind: opFire, eng: eng, node: node, base: base, rule: rule})
			})
			s.alg = ctx
			s.flush, _ = ctx.(routing.LookupFlusher)
			s.sync, _ = ctx.(routing.ContextSyncer)
			if s.sync != nil {
				if err := s.sync.SyncDecisionContexts(); err != nil {
					n.parReason = err.Error()
					return false
				}
			}
		case routing.ConcurrentRoutable:
			s.alg = alg
			s.flush, s.sync = nil, nil
		default:
			n.parReason = fmt.Sprintf("algorithm %q supports neither decision contexts nor concurrent decisions", n.alg.Name())
			return false
		}
	}
	return true
}

// ParallelActive reports whether the network steps on the parallel
// engine.
func (n *Network) ParallelActive() bool { return n.par != nil }

// ParallelReason explains why the network fell back to serial stepping
// ("" while parallel is active or was never requested).
func (n *Network) ParallelReason() string { return n.parReason }

// Close releases the worker pool (idempotent; a nil-engine close is a
// no-op). Serial networks need no Close, but callers may always pair
// New with Close.
func (n *Network) Close() {
	if n.par != nil {
		n.par.stop()
	}
}

// disableParallel permanently reverts the network to serial stepping.
func (n *Network) disableParallel(reason string) {
	n.parReason = reason
	if n.par != nil {
		n.par.stop()
		n.par = nil
	}
}

func (e *stepEngine) startWorkers() {
	e.started = true
	e.exited.Add(len(e.shards))
	for i := range e.shards {
		go e.worker(i)
	}
}

func (e *stepEngine) stop() {
	e.stopped.Do(func() { close(e.quit) })
	if e.started {
		e.exited.Wait()
		e.started = false
	}
}

func (e *stepEngine) worker(i int) {
	defer e.exited.Done()
	s := e.shards[i]
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[i]:
			e.dispatch(s)
			e.done.Done()
		}
	}
}

func (e *stepEngine) dispatch(s *shard) {
	switch e.phase {
	case phCredits:
		e.n.deliverCreditsShard(s)
	case phRoute:
		e.n.routeStageShard(s)
	case phAlloc:
		e.n.allocStageShard(s)
	case phSwitch:
		e.n.switchStageShard(s)
	case phDrain:
		e.n.drainStageShard(s)
	}
}

// runPhase runs one compute phase on every shard and waits for the
// barrier. The phase id is published before the channel sends, so the
// workers' reads are ordered after the write.
func (e *stepEngine) runPhase(ph int) {
	e.phase = ph
	e.done.Add(len(e.shards))
	for _, c := range e.start {
		c <- struct{}{}
	}
	e.done.Wait()
}

// stepParallel advances the simulation by one cycle on the parallel
// engine, bit-identical to stepSerial.
func (n *Network) stepParallel() {
	e := n.par
	if !e.started {
		e.startWorkers()
	}
	// Engine generations change only between cycles (Reconfigure), so
	// the top of the cycle is the race-free point to materialise child
	// contexts for hot-swapped engines. A sync failure means some live
	// generation cannot decide concurrently: fall back to serial — a
	// correctness fallback, never an error.
	for _, s := range e.shards {
		if s.sync == nil {
			continue
		}
		if err := s.sync.SyncDecisionContexts(); err != nil {
			n.disableParallel(err.Error())
			n.stepSerial()
			return
		}
	}
	if len(n.creditQueue) > 0 {
		e.runPhase(phCredits)
		kept := n.creditQueue[:0]
		for _, c := range n.creditQueue {
			if c.due > n.now {
				kept = append(kept, c)
			}
		}
		n.creditQueue = kept
	}
	n.injectStage()
	e.runPhase(phRoute)
	n.commitOps()
	e.runPhase(phAlloc)
	n.commitOps()
	e.runPhase(phSwitch)
	n.commitOps()
	progress := false
	for _, s := range e.shards {
		if n.applyMoves(s.moves) {
			progress = true
		}
		s.moves = s.moves[:0]
	}
	e.runPhase(phDrain)
	if n.commitDrain() {
		progress = true
	}
	if progress {
		n.lastProgress = n.now
	} else if n.inFlight > 0 && n.now-n.lastProgress > n.cfg.WatchdogCycles {
		if !n.stats.DeadlockSuspected {
			n.stats.DeadlockSuspected = true
			n.deadlockPostMortem()
		}
	}
	if n.cfg.LivelockAgeCycles > 0 && n.now%n.cfg.LivelockCheckInterval == 0 {
		n.checkLivelock()
	}
	if n.now&63 == 0 {
		n.samplePeaks()
	}
	n.now++
}

// commitOps replays every shard's deferred ops in shard order (=
// ascending router-ID order = serial order).
func (n *Network) commitOps() {
	for _, s := range n.par.shards {
		n.replayOps(s)
	}
}

func (n *Network) replayOps(s *shard) {
	for i := range s.ops {
		op := &s.ops[i]
		switch op.kind {
		case opEvent:
			n.rec.Record(op.ev)
		case opFire:
			if rf, ok := op.eng.(routing.RuleFirer); ok {
				rf.FireRuleObserver(op.node, op.base, op.rule)
			}
		case opRelease:
			n.epochs.ReleaseEpoch(op.epoch)
		case opCredit:
			n.outs[n.lay.outIdx(int(op.credit.node), op.credit.port, op.credit.vc)].credits++
		case opQueueCredit:
			n.creditQueue = append(n.creditQueue, op.credit)
		}
	}
	s.ops = s.ops[:0]
}

// commitDrain replays the drain phase's ops and folds every shard's
// stat/accounting deltas, in shard order. It also flushes the decision
// contexts' local lookup counters so the engines' public counters stay
// exact cycle-by-cycle.
func (n *Network) commitDrain() bool {
	progress := false
	for _, s := range n.par.shards {
		n.replayOps(s)
		d := &s.delta
		n.stats.FlitsDelivered += d.flitsDelivered
		n.stats.Delivered += d.delivered
		n.stats.Dropped += d.dropped
		n.stats.Unreachable += d.unreachable
		n.stats.HopsSum += d.hopsSum
		n.stats.StepsSum += d.stepsSum
		n.stats.MisroutesSum += d.misroutesSum
		n.stats.MarkedCount += d.markedCount
		n.stats.LatencySum += d.latencySum
		n.stats.NetLatencySum += d.netLatencySum
		if d.maxLatency > n.stats.MaxLatency {
			n.stats.MaxLatency = d.maxLatency
		}
		n.inFlight += d.inFlight
		if d.progress {
			progress = true
		}
		*d = drainDelta{}
		if s.flush != nil {
			s.flush.FlushLookups()
		}
	}
	return progress
}

// deliverCreditsShard applies every due credit whose target router
// lies in the shard; the serial caller compacts the queue afterwards.
func (n *Network) deliverCreditsShard(s *shard) {
	for _, c := range n.creditQueue {
		if c.due <= n.now && int(c.node) >= s.lo && int(c.node) < s.hi {
			n.outs[n.lay.outIdx(int(c.node), c.port, c.vc)].credits++
		}
	}
}

// routeStageShard is routeStage over the shard's slice of the route
// work list: decisions run on the shard's context, trace events are
// deferred.
func (n *Network) routeStageShard(s *shard) {
	n.routeSet.forEach(s.lo, s.hi, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		m := ivc.q.front().msg
		ivc.curMsg = m
		if m.Hdr.Dst == topology.NodeID(node) {
			ivc.routed = true
			ivc.eject = true
			ivc.decisionReady = n.now
			n.noteInput(node, slot)
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		req := n.requestFor(node, p, v, m)
		steps := s.alg.Steps(req)
		m.Steps += steps
		ivc.candidates = routing.RouteInto(s.alg, req, ivc.candidates[:0])
		ivc.routed = true
		ivc.unroutable = len(ivc.candidates) == 0
		if ivc.unroutable {
			if judge, ok := s.alg.(routing.UnreachableJudge); ok && judge.UnreachableVerdict(req) {
				m.Unreachable = true
			}
		}
		ivc.decisionReady = n.now + int64(steps*n.cfg.DecisionCyclesPerStep)
		n.noteInput(node, slot)
		if n.rec != nil {
			kind := trace.KRouteComputed
			if ivc.unroutable {
				kind = trace.KUnroutable
			}
			s.ops = append(s.ops, deferredOp{kind: opEvent, ev: trace.Event{
				Cycle: n.now, Kind: kind,
				Node: int32(node), Msg: m.ID, Port: int16(p), VC: int16(v),
				Arg: int32(len(ivc.candidates))}})
		}
	})
}

// allocStageShard is allocStage over the shard's slice of the VA work
// list. The selector is shard-safe (per-node state only) and the load
// view reads nothing but the deciding router's outputs.
func (n *Network) allocStageShard(s *shard) {
	// Mirrors allocStage's credit gate: credits are only mutated in the
	// serial phases, so reading them during the parallel VA pass is
	// race-free and deterministic.
	needCredit := routing.AllocNeedsCredit(n.alg)
	n.vaSet.forEach(s.lo, s.hi, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		if n.now < ivc.decisionReady {
			return
		}
		outBase := node * n.lay.outStride
		free := s.free[:0]
		for _, c := range ivc.candidates {
			out := &n.outs[outBase+c.Port*n.lay.vcs+c.VC]
			if out.free() && (!needCredit || out.credits > 0) {
				free = append(free, c)
			}
		}
		s.free = free[:0] // selectors do not retain the slice
		if len(free) == 0 {
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		m := ivc.frontMsg()
		chosen := n.sel.Select(n, topology.NodeID(node), free, &m.Hdr)
		s.alg.NoteHop(n.requestFor(node, p, v, m), chosen)
		ivc.outPort, ivc.outVC = chosen.Port, chosen.VC
		out := &n.outs[outBase+chosen.Port*n.lay.vcs+chosen.VC]
		out.ownerInPort, out.ownerInVC = p, v
		out.ownerMsg = m
		out.remaining = m.Hdr.Length
		n.noteInput(node, slot)
		if n.rec != nil {
			s.ops = append(s.ops, deferredOp{kind: opEvent, ev: trace.Event{
				Cycle: n.now, Kind: trace.KVCAllocated,
				Node: int32(node), Msg: m.ID, Port: int16(chosen.Port), VC: int16(chosen.VC)}})
		}
	})
}

// switchStageShard is switchStage over the shard's slice of the SA
// work list: nomination and grant are router-local; the granted
// movements land in the shard's move list for the serial applyMoves
// commit, blocked events in the shard's op list.
func (n *Network) switchStageShard(s *shard) {
	moves := s.moves[:0]
	n.saSet.forEachNode(s.lo, s.hi, func(node int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		moves = n.switchNode(node, s.noms, moves, &s.ops)
	})
	s.moves = moves
}

// creditReturnShard is creditReturnVC with every effect — the
// KCreditSent event and the credit itself — deferred into the shard's
// op list: the upstream router may belong to another shard. Nothing
// reads credits between the drain compute and the commit, so applying
// them at commit is behaviourally identical to the serial immediate
// return.
func (n *Network) creditReturnShard(s *shard, node, p, v int) {
	if p == n.lay.ports {
		return // injection pseudo-port: no upstream link
	}
	up := n.g.Neighbor(topology.NodeID(node), p)
	if up == topology.Invalid {
		return
	}
	upPort, ok := n.g.PortTo(up, topology.NodeID(node))
	if !ok {
		return
	}
	if n.rec != nil {
		s.ops = append(s.ops, deferredOp{kind: opEvent, ev: trace.Event{
			Cycle: n.now, Kind: trace.KCreditSent,
			Node: int32(up), Msg: -1, Port: int16(upPort), VC: int16(v),
			Arg: int32(n.cfg.CreditDelay)}})
	}
	pc := pendingCredit{due: n.now + int64(n.cfg.CreditDelay), node: up, port: upPort, vc: v}
	if n.cfg.CreditDelay <= 0 {
		s.ops = append(s.ops, deferredOp{kind: opCredit, credit: pc})
	} else {
		s.ops = append(s.ops, deferredOp{kind: opQueueCredit, credit: pc})
	}
}

// drainStageShard is drainStage over the shard's slice of the drain
// work list: ejection and absorption are router-local; credits, stats,
// epoch releases and events are deferred.
func (n *Network) drainStageShard(s *shard) {
	d := &s.delta
	n.drainSet.forEach(s.lo, s.hi, func(node, slot int) {
		if n.faults.NodeFaulty(topology.NodeID(node)) {
			return
		}
		ivc := &n.ins[node*n.lay.inStride+slot]
		if n.now < ivc.decisionReady {
			return
		}
		p, v := slot/n.lay.vcs, slot%n.lay.vcs
		f := ivc.q.popFront()
		n.creditReturnShard(s, node, p, v)
		d.progress = true
		if ivc.eject {
			d.flitsDelivered++
			f.msg.flitsEjected++
		}
		if f.tail {
			m := f.msg
			m.DoneTime = n.now
			if n.rec != nil {
				kind := trace.KFlitDelivered
				if !ivc.eject {
					kind = trace.KFlitDropped
				}
				s.ops = append(s.ops, deferredOp{kind: opEvent, ev: trace.Event{
					Cycle: n.now, Kind: kind,
					Node: int32(node), Msg: m.ID, Port: int16(p), VC: int16(v),
					Arg: int32(n.now - m.InjectTime)}})
			}
			if ivc.eject {
				m.State = StateDelivered
				d.delivered++
				d.hopsSum += int64(m.Hops)
				d.stepsSum += int64(m.Steps)
				d.misroutesSum += int64(m.Hdr.Misroutes)
				if m.Hdr.Marked {
					d.markedCount++
				}
				lat := m.Latency()
				d.latencySum += lat
				d.netLatencySum += m.NetworkLatency()
				if lat > d.maxLatency {
					d.maxLatency = lat
				}
			} else {
				m.State = StateDropped
				m.DropNode = topology.NodeID(node)
				m.DropInPort = p
				if p == n.lay.ports {
					m.DropInPort = routing.InjectionPort
				}
				m.DropInVC = v
				d.dropped++
				if m.Unreachable {
					d.unreachable++
				}
			}
			d.inFlight--
			if n.epochs != nil {
				s.ops = append(s.ops, deferredOp{kind: opRelease, epoch: m.Hdr.Epoch})
			}
			ivc.resetRoute()
		}
		n.noteInput(node, slot)
	})
}
