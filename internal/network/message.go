// Package network implements a flit-level, cycle-driven simulator of a
// wormhole-switched multicomputer network with virtual channels — the
// substrate on which the paper's routing algorithms are evaluated.
//
// The router model follows the canonical four-phase pipeline: routing
// computation (RC, performed by a routing.Algorithm and charged with
// the algorithm's rule-interpretation step count), virtual-channel
// allocation (VA, guided by a routing.Selector implementing the
// adaptivity criterion), switch allocation (SA, round-robin fair per
// input and output port) and switch traversal (ST, one flit per
// physical link and cycle). Flow control is credit based with per-VC
// input buffers.
//
// Fault injection honours the paper's assumption iv: when faults are
// applied, messages currently touching the failed components are
// removed (in a real direct network they would be reinjected via the
// nearest home link) and the algorithm's diagnosis/state propagation
// runs to its fixpoint before traffic continues.
package network

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// MessageState describes the lifecycle stage of a message.
type MessageState int

const (
	// StateQueued means the message waits in its source injection
	// queue.
	StateQueued MessageState = iota
	// StateInFlight means at least one flit is in the network.
	StateInFlight
	// StateDelivered means the tail flit was ejected at the
	// destination.
	StateDelivered
	// StateDropped means the routing algorithm declared the message
	// unroutable and the network absorbed it.
	StateDropped
	// StateKilled means a fault event destroyed the message in
	// transit (assumption iv: such messages are handled by a
	// higher-level reinjection protocol and are excluded from latency
	// statistics).
	StateKilled
)

// Message is one wormhole message (a sequence of Length flits: one
// head, Length-2 body, one tail; minimum length 2).
type Message struct {
	ID  int64
	Hdr routing.Header

	// InjectTime is the cycle the message entered the source queue.
	InjectTime int64
	// StartTime is the cycle its head flit first left the injection
	// queue (-1 while queued).
	StartTime int64
	// DoneTime is the cycle the tail flit was ejected or the message
	// was dropped/killed (-1 otherwise).
	DoneTime int64

	State MessageState
	// Hops counts physical link traversals of the head flit.
	Hops int
	// Steps accumulates the rule-interpreter invocations spent on the
	// message's routing decisions (paper Section 5).
	Steps int
	// DropNode records where an unroutable message was absorbed.
	DropNode topology.NodeID
	// DropInPort and DropInVC record the input port (in routing.Request
	// convention: routing.InjectionPort for the source's injection
	// queue) and input VC of the unroutable decision that absorbed the
	// message. The campaign oracle replays that exact decision on the
	// native reference algorithm to decide whether the drop was
	// justified. Both are -1 until the message is dropped.
	DropInPort int
	DropInVC   int
	// Unreachable marks the drop as a certified unreachability verdict:
	// the algorithm implements routing.UnreachableJudge and confirmed at
	// the unroutable decision that the destination is disconnected on
	// the post-fault graph. The guaranteed-delivery oracle accepts only
	// such drops for the maze family.
	Unreachable bool

	flitsSent int // flits that have left the injection stage
	// flitsEjected counts flits already delivered at the destination;
	// when a fault event kills a partially absorbed worm, this many
	// flits are backed out of Stats.FlitsDelivered (killed messages are
	// excluded from the statistics wholesale, assumption iv).
	flitsEjected int
}

// Latency returns the total queue+network latency in cycles, or -1 if
// the message was not delivered.
func (m *Message) Latency() int64 {
	if m.State != StateDelivered {
		return -1
	}
	return m.DoneTime - m.InjectTime
}

// NetworkLatency returns the cycles between the head flit leaving the
// injection queue and tail ejection, or -1 if not delivered.
func (m *Message) NetworkLatency() int64 {
	if m.State != StateDelivered || m.StartTime < 0 {
		return -1
	}
	return m.DoneTime - m.StartTime
}

// flit is one flow-control unit in a buffer. Only the identity of the
// owning message and the head/tail role matter for the simulation.
type flit struct {
	msg  *Message
	head bool
	tail bool
}
