package network

import (
	"repro/internal/routing"
)

// flitQueue is a head-indexed FIFO of flits. Unlike the naive
// `q = q[1:]` pop — which slides the slice forward until every append
// reallocates — the queue reuses its backing array: popping advances
// head (resetting to the array start when emptied), and a full push
// compacts the live flits to the front instead of growing. Once warm,
// the steady-state hot path performs zero allocations.
type flitQueue struct {
	buf  []flit
	head int
}

func (q *flitQueue) len() int { return len(q.buf) - q.head }

// front returns the first flit; the queue must be non-empty.
func (q *flitQueue) front() *flit { return &q.buf[q.head] }

// popFront removes and returns the first flit.
func (q *flitQueue) popFront() flit {
	f := q.buf[q.head]
	q.buf[q.head] = flit{} // release the message reference
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return f
}

// pushBack appends one flit, compacting the live region to the array
// start when the tail hits capacity.
func (q *flitQueue) pushBack(f flit) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, f)
}

// slice exposes the live flits for in-place iteration or filtering;
// after filtering into the returned slice, call truncate with the kept
// count.
func (q *flitQueue) slice() []flit { return q.buf[q.head:] }

// truncate shrinks the queue to its first n live flits (used by the
// fault surgery after filtering slice() in place).
func (q *flitQueue) truncate(n int) { q.buf = q.buf[:q.head+n] }

// inputVC is the receive side of one virtual channel of one input
// port: a FIFO flit buffer plus the routing state of the message whose
// head is (or will be) at the front.
type inputVC struct {
	q flitQueue

	// routed is true once the front message has passed RC.
	routed bool
	// curMsg is the message the route state belongs to (set at RC);
	// the queue may be transiently empty while the worm streams
	// through, so the front flit alone cannot identify it.
	curMsg *Message
	// decisionReady is the cycle at which the routing decision
	// becomes available (models the decision time studied in E9).
	decisionReady int64
	// candidates are the admissible outputs from RC (nil + routed
	// means unroutable -> absorb).
	candidates []routing.Candidate
	// unroutable marks a message being absorbed (dropped).
	unroutable bool
	// outPort/outVC are the allocated output (-1 before VA).
	outPort, outVC int
	// eject is true when the front message is at its destination.
	eject bool
	// blockedNoted marks that the flight recorder already logged the
	// current credit-blocking episode (one event per episode, not per
	// cycle).
	blockedNoted bool
}

func (vc *inputVC) resetRoute() {
	vc.routed = false
	vc.curMsg = nil
	vc.decisionReady = 0
	// Keep the backing array: routeStage refills it via RouteInto with
	// candidates[:0], so steady-state routing does not allocate.
	vc.candidates = vc.candidates[:0]
	vc.unroutable = false
	vc.outPort, vc.outVC = -1, -1
	vc.eject = false
	vc.blockedNoted = false
}

// frontMsg returns the message of the front flit, or nil.
func (vc *inputVC) frontMsg() *Message {
	if vc.q.len() == 0 {
		return nil
	}
	return vc.q.front().msg
}

// outputVC is the send side of one virtual channel of one output port.
type outputVC struct {
	// ownerIn identifies the input holding this output VC as
	// (inPort, inVC); inPort == -1 means free, inPort == injection
	// port index means the local injection stage.
	ownerInPort, ownerInVC int
	// ownerMsg is the message holding this output VC (nil when free);
	// fault surgery uses it to release channels of killed worms.
	ownerMsg *Message
	// credits counts free flit slots in the downstream input buffer.
	credits int
	// remaining is the number of flits of the owning message that
	// still have to pass this output (the NAFTA adaptivity
	// criterion).
	remaining int
}

func (o *outputVC) free() bool { return o.ownerInPort == -1 }
