package network

import (
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Deadlock analysis: the watchdog in Step flags missing progress; this
// file provides the precise check used by the test suite. A wormhole
// deadlock is a set of messages that are all "stuck" (none of their
// admissible next resources can ever free up without one of the others
// moving) and mutually wait on each other. We build the wait-for graph
// between messages and search for a cycle consisting solely of stuck
// messages — a certificate that the routing algorithm's channel
// dependency discipline was violated.

// waitEdges returns, for the message whose head sits at input (p,v) of
// node, the set of messages it currently waits on:
//
//   - unallocated head: the owners of every candidate output VC (the
//     head can proceed once ANY candidate frees, so the message only
//     counts as stuck when every candidate is owned or credit-less);
//   - allocated head without credits: the message whose flits sit at
//     the front of the full downstream buffer.
func (n *Network) waitEdges(node, p, v int) (edges []*Message, stuck bool) {
	lay := &n.lay
	ivc := &n.ins[lay.inIdx(node, p, v)]
	if !ivc.routed || ivc.eject || ivc.unroutable || ivc.q.len() == 0 {
		return nil, false
	}
	me := ivc.curMsg
	if ivc.outPort < 0 {
		if len(ivc.candidates) == 0 {
			return nil, false
		}
		needCredit := routing.AllocNeedsCredit(n.alg)
		stuck = true
		for _, c := range ivc.candidates {
			out := &n.outs[lay.outIdx(node, c.Port, c.VC)]
			if out.free() {
				if !needCredit || out.credits > 0 {
					// A claimable candidate: not stuck (merely waiting
					// for switch allocation).
					return nil, false
				}
				// Free but credit-starved under a gated regime: VA will
				// not grant it; the head waits on the worm filling the
				// downstream buffer.
				if front := n.downstreamFront(node, c.Port, c.VC); front != nil && front != me {
					edges = append(edges, front)
				}
				continue
			}
			if out.ownerMsg != nil && out.ownerMsg != me {
				edges = append(edges, out.ownerMsg)
			}
		}
		return edges, stuck
	}
	out := &n.outs[lay.outIdx(node, ivc.outPort, ivc.outVC)]
	if out.credits > 0 {
		return nil, false
	}
	// Blocked on a full downstream buffer: wait on the worm at its
	// front.
	front := n.downstreamFront(node, ivc.outPort, ivc.outVC)
	if front != nil && front != me {
		return []*Message{front}, true
	}
	// Blocked behind our own worm: pipeline backpressure, not a
	// deadlock by itself.
	return nil, false
}

// downstreamFront returns the message at the front of the input buffer
// fed by output (port, vc) of node, or nil when the port has no usable
// downstream buffer.
func (n *Network) downstreamFront(node, port, vc int) *Message {
	down := n.g.Neighbor(topology.NodeID(node), port)
	if down < 0 {
		return nil
	}
	dp, ok := n.g.PortTo(down, topology.NodeID(node))
	if !ok {
		return nil
	}
	return n.ins[n.lay.inIdx(int(down), dp, vc)].frontMsg()
}

// FindDeadlockCycle searches the wait-for graph for a cycle of stuck
// messages and returns their IDs (nil when none exists). The check is
// conservative: a reported cycle is a real circular wait among
// messages none of which has a free alternative this cycle.
func (n *Network) FindDeadlockCycle() []int64 {
	// Collect the stuck-wait edges (cold path: full arena scan).
	adj := map[*Message][]*Message{}
	for node := 0; node < n.lay.nodes; node++ {
		for p := 0; p < n.lay.inPorts; p++ {
			for v := 0; v < n.lay.vcs; v++ {
				edges, stuck := n.waitEdges(node, p, v)
				if !stuck || len(edges) == 0 {
					continue
				}
				m := n.ins[n.lay.inIdx(node, p, v)].curMsg
				adj[m] = append(adj[m], edges...)
			}
		}
	}
	// DFS cycle search restricted to stuck messages.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*Message]int{}
	var stack []*Message
	var cycle []*Message
	var dfs func(m *Message) bool
	dfs = func(m *Message) bool {
		color[m] = grey
		stack = append(stack, m)
		for _, w := range adj[m] {
			if _, isStuck := adj[w]; !isStuck {
				continue // waits on a message that can still move
			}
			switch color[w] {
			case white:
				if dfs(w) {
					return true
				}
			case grey:
				// Found a cycle: slice it out of the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == w {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[m] = black
		return false
	}
	msgs := make([]*Message, 0, len(adj))
	for m := range adj {
		msgs = append(msgs, m)
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })
	for _, m := range msgs {
		if color[m] == white && dfs(m) {
			ids := make([]int64, len(cycle))
			for i, c := range cycle {
				ids[i] = c.ID
			}
			return ids
		}
	}
	return nil
}
