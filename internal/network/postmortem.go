package network

import (
	"repro/internal/routing"
	"repro/internal/trace"
)

// defaultLivelockCheckInterval is the default of
// Config.LivelockCheckInterval: how often (in cycles) the livelock age
// bound of Config.LivelockAgeCycles is evaluated. Sampling keeps the
// check off the per-cycle hot path; an age bound is always coarse, so
// detection latency of at most one interval is immaterial.
const defaultLivelockCheckInterval = 256

// PostMortem assembles a structured report of the current stall
// state: the certified channel-wait cycle (if any), every packet that
// cannot move, the full router/VC/credit snapshot of occupied
// channels and the flight-recorder tail. Reason is recorded verbatim
// ("deadlock", "livelock", "manual", ...).
func (n *Network) PostMortem(reason string) *trace.Report {
	rep := &trace.Report{
		Reason:    reason,
		Cycle:     n.now,
		WaitCycle: n.FindDeadlockCycle(),
	}
	// Blocked packets: every input VC whose front message cannot
	// advance this cycle, with the messages it waits on.
	lay := &n.lay
	needCredit := routing.AllocNeedsCredit(n.alg)
	for node := 0; node < lay.nodes; node++ {
		for p := 0; p < lay.inPorts; p++ {
			for v := 0; v < lay.vcs; v++ {
				ivc := &n.ins[lay.inIdx(node, p, v)]
				if !ivc.routed || ivc.eject || ivc.unroutable || ivc.q.len() == 0 {
					continue
				}
				m := ivc.curMsg
				why := ""
				var waits []*Message
				if ivc.outPort < 0 {
					free := false
					for _, c := range ivc.candidates {
						out := &n.outs[lay.outIdx(node, c.Port, c.VC)]
						if out.free() {
							if !needCredit || out.credits > 0 {
								free = true
								break
							}
							// Free but credit-starved under a gated
							// regime: not claimable; the head waits on
							// the worm filling the downstream buffer.
							if front := n.downstreamFront(node, c.Port, c.VC); front != nil && front != m {
								waits = append(waits, front)
							}
							continue
						}
						if out.ownerMsg != nil && out.ownerMsg != m {
							waits = append(waits, out.ownerMsg)
						}
					}
					if free {
						continue // merely waiting for switch allocation
					}
					why = "no-free-vc"
				} else {
					out := &n.outs[lay.outIdx(node, ivc.outPort, ivc.outVC)]
					if out.credits > 0 {
						continue
					}
					why = "no-credit"
					front := n.downstreamFront(node, ivc.outPort, ivc.outVC)
					if front == m {
						// Upstream segment of our own worm: pipeline
						// backpressure behind the head, which has its
						// own entry at its blocking point downstream.
						continue
					}
					if front != nil {
						waits = append(waits, front)
					}
				}
				bp := trace.BlockedPacket{
					Msg: m.ID, Src: int64(m.Hdr.Src), Dst: int64(m.Hdr.Dst),
					Node: int64(node), InPort: p, InVC: v,
					OutPort: ivc.outPort, OutVC: ivc.outVC,
					Age: n.now - m.StartTime, Why: why,
				}
				for _, w := range waits {
					bp.WaitsOn = append(bp.WaitsOn, w.ID)
				}
				rep.Blocked = append(rep.Blocked, bp)
			}
		}
	}
	// Router snapshots: only routers holding flits or owned outputs,
	// and only their occupied channels — a full 16x16x5-VC dump would
	// bury the signal.
	for node := 0; node < lay.nodes; node++ {
		var rs trace.RouterState
		rs.Node = int64(node)
		for p := 0; p < lay.inPorts; p++ {
			for v := 0; v < lay.vcs; v++ {
				ivc := &n.ins[lay.inIdx(node, p, v)]
				if ivc.q.len() == 0 && !ivc.routed {
					continue
				}
				st := trace.VCState{
					Port: p, VC: v, Flits: ivc.q.len(), Msg: -1,
					Routed: ivc.routed, OutPort: ivc.outPort, OutVC: ivc.outVC,
					Eject: ivc.eject, Unroutable: ivc.unroutable,
				}
				if ivc.curMsg != nil {
					st.Msg = ivc.curMsg.ID
				} else if fm := ivc.frontMsg(); fm != nil {
					st.Msg = fm.ID
				}
				rs.Inputs = append(rs.Inputs, st)
			}
		}
		for p := 0; p < lay.ports; p++ {
			for v := 0; v < lay.vcs; v++ {
				out := &n.outs[lay.outIdx(node, p, v)]
				if out.ownerMsg == nil && out.credits == n.cfg.BufDepth {
					continue
				}
				st := trace.OutState{
					Port: p, VC: v, Owner: -1,
					Credits: out.credits, Remaining: out.remaining,
				}
				if out.ownerMsg != nil {
					st.Owner = out.ownerMsg.ID
				}
				rs.Outputs = append(rs.Outputs, st)
			}
		}
		if len(rs.Inputs) > 0 || len(rs.Outputs) > 0 {
			rep.Routers = append(rep.Routers, rs)
		}
	}
	if n.rec != nil {
		// The flight-recorder tail: everything still retained in the
		// rings (the last N events per node).
		rep.Events = n.rec.Events()
	}
	return rep
}

// deadlockPostMortem fires the automatic deadlock report (at most
// once per run) when the watchdog trips.
func (n *Network) deadlockPostMortem() {
	if n.rec != nil {
		cyc := n.FindDeadlockCycle()
		n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KDeadlock,
			Node: -1, Msg: -1, Port: -1, VC: -1, Arg: int32(len(cyc))})
	}
	if n.cfg.OnPostMortem == nil || n.pmFired {
		return
	}
	n.pmFired = true
	n.cfg.OnPostMortem(n.PostMortem("deadlock"))
}

// checkLivelock scans the in-network messages for one older than the
// configured age bound and fires the livelock post-mortem.
func (n *Network) checkLivelock() {
	bound := n.cfg.LivelockAgeCycles
	var oldest *Message
	var oldestNode int32
	for node := 0; node < n.lay.nodes; node++ {
		base := node * n.lay.inStride
		for slot := 0; slot < n.lay.inStride; slot++ {
			ivc := &n.ins[base+slot]
			m := ivc.curMsg
			if m == nil && ivc.q.len() > 0 {
				m = ivc.q.front().msg
			}
			if m == nil || m.StartTime < 0 {
				continue
			}
			if n.now-m.StartTime > bound && (oldest == nil || m.StartTime < oldest.StartTime) {
				oldest = m
				oldestNode = int32(node)
			}
		}
	}
	if oldest == nil {
		return
	}
	if n.rec != nil {
		n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KLivelock,
			Node: oldestNode, Msg: oldest.ID, Port: -1, VC: -1,
			Arg: int32(n.now - oldest.StartTime)})
	}
	if n.cfg.OnPostMortem == nil || n.pmFired {
		return
	}
	n.pmFired = true
	n.cfg.OnPostMortem(n.PostMortem("livelock"))
}
