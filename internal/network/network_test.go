package network

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// stepChecked advances the network and validates invariants.
func stepChecked(t *testing.T, n *Network) {
	t.Helper()
	n.Step()
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("cycle %d: %v", n.Now(), err)
	}
}

func drainChecked(t *testing.T, n *Network, maxCycles int64) {
	t.Helper()
	for i := int64(0); i < maxCycles; i++ {
		if n.Idle() {
			return
		}
		stepChecked(t, n)
	}
	t.Fatalf("network did not drain within %d cycles (inflight=%d queued=%d)",
		maxCycles, n.InFlight(), n.Queued())
}

func TestSingleMessageXY(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: routing.NewXY(m), RecordMessages: true})
	msg := n.Inject(m.Node(0, 0), m.Node(3, 3), 8)
	drainChecked(t, n, 1000)
	if msg.State != StateDelivered {
		t.Fatalf("message state = %v, want delivered", msg.State)
	}
	if msg.Hops != 6 {
		t.Fatalf("hops = %d, want 6", msg.Hops)
	}
	// Lower bound: distance + serialisation (L-1 flits follow the
	// head) + at least one cycle of pipeline per hop.
	if lat := msg.Latency(); lat < 6+8-1 {
		t.Fatalf("latency %d below physical lower bound", lat)
	}
	st := n.Stats()
	if st.Delivered != 1 || st.FlitsDelivered != 8 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSingleFlitPerLinkPerCycle(t *testing.T) {
	// Two long messages sharing a link on different VCs must take at
	// least 2*L cycles of link time: the physical link is time
	// multiplexed.
	m := topology.NewMesh(3, 1)
	alg := routing.NewNARA(m)
	n := New(Config{Graph: m, Algorithm: alg, RecordMessages: true})
	a := n.Inject(m.Node(0, 0), m.Node(2, 0), 16)
	b := n.Inject(m.Node(0, 0), m.Node(2, 0), 16)
	drainChecked(t, n, 2000)
	if a.State != StateDelivered || b.State != StateDelivered {
		t.Fatal("both messages must arrive")
	}
	// The second message cannot finish earlier than ~32 link cycles.
	if b.DoneTime < 32 {
		t.Fatalf("second message finished at %d, too fast for a shared link", b.DoneTime)
	}
}

func TestWormholeBlocking(t *testing.T) {
	// A message blocked behind a stalled worm must wait (wormhole, not
	// store-and-forward): fill the path 0->2 with a long worm to a
	// congested region, then check the second worm's head waits.
	m := topology.NewMesh(5, 1)
	alg := routing.NewNARA(m)
	n := New(Config{Graph: m, Algorithm: alg, BufDepth: 2, RecordMessages: true})
	// Many messages from different sources into node 4 create
	// contention on the final link.
	for i := 0; i < 4; i++ {
		n.Inject(m.Node(0, 0), m.Node(4, 0), 12)
		n.Inject(m.Node(1, 0), m.Node(4, 0), 12)
	}
	drainChecked(t, n, 5000)
	st := n.Stats()
	if st.Delivered != 8 {
		t.Fatalf("delivered %d of 8", st.Delivered)
	}
	// With 8*12 = 96 flits over the last link, at least 96 cycles.
	if st.Cycles < 96 {
		t.Fatalf("finished in %d cycles, impossible for 96 flits over one link", st.Cycles)
	}
}

func TestUniformTrafficNARA(t *testing.T) {
	m := topology.NewMesh(6, 6)
	n := New(Config{Graph: m, Algorithm: routing.NewNARA(m)})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		n.Inject(src, dst, 4+rng.Intn(8))
	}
	drainChecked(t, n, 20000)
	st := n.Stats()
	if st.Dropped != 0 {
		t.Fatalf("fault-free NARA dropped %d messages", st.Dropped)
	}
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if st.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestUniformTrafficRouteCFaultFree(t *testing.T) {
	h := topology.NewHypercube(5)
	n := New(Config{Graph: h, Algorithm: routing.NewRouteC(h)})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		src := topology.NodeID(rng.Intn(h.Nodes()))
		dst := topology.NodeID(rng.Intn(h.Nodes()))
		if src == dst {
			continue
		}
		n.Inject(src, dst, 6)
	}
	drainChecked(t, n, 20000)
	st := n.Stats()
	if st.Dropped != 0 || st.DeadlockSuspected {
		t.Fatalf("stats: %+v", st)
	}
}

func TestXYDropsOnFaultInNetwork(t *testing.T) {
	m := topology.NewMesh(4, 4)
	alg := routing.NewXY(m)
	n := New(Config{Graph: m, Algorithm: alg, RecordMessages: true})
	f := fault.NewSet()
	f.FailLink(m.Node(1, 0), m.Node(2, 0))
	n.ApplyFaults(f)
	msg := n.Inject(m.Node(0, 0), m.Node(3, 0), 6)
	other := n.Inject(m.Node(0, 1), m.Node(3, 1), 6)
	drainChecked(t, n, 1000)
	if msg.State != StateDropped {
		t.Fatalf("message over broken path: %v, want dropped", msg.State)
	}
	if other.State != StateDelivered {
		t.Fatalf("intact-row message: %v, want delivered", other.State)
	}
	st := n.Stats()
	if st.Dropped != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNAFTARoutesAroundFaultUnderLoad(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewNAFTA(m)
	n := New(Config{Graph: m, Algorithm: alg})
	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	f.FailNode(m.Node(4, 3))
	n.ApplyFaults(f)
	blocks := alg.Blocks()
	rng := rand.New(rand.NewSource(3))
	want := 0
	for i := 0; i < 300; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst || blocks.DisabledNode(src) || blocks.DisabledNode(dst) {
			continue
		}
		n.Inject(src, dst, 6)
		want++
	}
	drainChecked(t, n, 50000)
	st := n.Stats()
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if float64(st.Delivered) < 0.99*float64(want) {
		t.Fatalf("delivered %d of %d", st.Delivered, want)
	}
	if st.MisroutesSum == 0 {
		t.Fatal("expected some misroutes around the fault block")
	}
}

func TestFaultMidFlightKillsCrossingWorms(t *testing.T) {
	m := topology.NewMesh(6, 1)
	alg := routing.NewNARA(m)
	n := New(Config{Graph: m, Algorithm: alg, RecordMessages: true})
	// A long worm crossing the middle link.
	msg := n.Inject(m.Node(0, 0), m.Node(5, 0), 32)
	for i := 0; i < 8; i++ {
		stepChecked(t, n)
	}
	if msg.State != StateInFlight {
		t.Fatalf("worm should be in flight, got %v", msg.State)
	}
	f := fault.NewSet()
	f.FailLink(m.Node(2, 0), m.Node(3, 0))
	n.ApplyFaults(f)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after fault: %v", err)
	}
	if msg.State != StateKilled {
		t.Fatalf("worm crossing the failed link: %v, want killed", msg.State)
	}
	// The network must stay functional for messages not using the
	// dead link.
	ok := n.Inject(m.Node(3, 0), m.Node(5, 0), 4)
	drainChecked(t, n, 1000)
	if ok.State != StateDelivered {
		t.Fatalf("post-fault message: %v, want delivered", ok.State)
	}
	if n.Stats().Killed != 1 {
		t.Fatalf("killed = %d, want 1", n.Stats().Killed)
	}
}

// flushAlg wraps a routing algorithm and flags marked messages for
// removal at fault events (routing.ReconfigFlusher), standing in for
// an engine whose escape orientation the event invalidates.
type flushAlg struct{ routing.Algorithm }

func (flushAlg) FlushOnFault(h *routing.Header) bool { return h.Marked }

// A fault event removes worms the algorithm flags for reconfiguration
// flush even when they touch no failed element; unflagged worms ride
// the event out.
func TestReconfigFlushKillsFlaggedWorms(t *testing.T) {
	m := topology.NewMesh(6, 3)
	n := New(Config{Graph: m, Algorithm: flushAlg{routing.NewNARA(m)}, RecordMessages: true})
	flagged := n.Inject(m.Node(0, 0), m.Node(5, 0), 8)
	flagged.Hdr.Marked = true
	plain := n.Inject(m.Node(0, 1), m.Node(5, 1), 8)
	for i := 0; i < 4; i++ {
		stepChecked(t, n)
	}
	if flagged.State != StateInFlight || plain.State != StateInFlight {
		t.Fatalf("both worms should be in flight, got %v / %v", flagged.State, plain.State)
	}
	f := fault.NewSet()
	f.FailNode(m.Node(2, 2)) // away from both worms' rows
	n.ApplyFaults(f)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after fault: %v", err)
	}
	if flagged.State != StateKilled {
		t.Fatalf("flagged worm: %v, want killed", flagged.State)
	}
	drainChecked(t, n, 1000)
	if plain.State != StateDelivered {
		t.Fatalf("unflagged worm: %v, want delivered", plain.State)
	}
	if st := n.Stats(); st.Killed != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNodeFaultKillsQueuedMessages(t *testing.T) {
	m := topology.NewMesh(4, 4)
	alg := routing.NewNAFTA(m)
	n := New(Config{Graph: m, Algorithm: alg, RecordMessages: true})
	victim := m.Node(2, 2)
	q1 := n.Inject(victim, m.Node(0, 0), 4)
	f := fault.NewSet()
	f.FailNode(victim)
	n.ApplyFaults(f)
	if q1.State != StateKilled {
		t.Fatalf("queued message at failed node: %v, want killed", q1.State)
	}
	if n.Queued() != 0 {
		t.Fatalf("queued = %d, want 0", n.Queued())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDuringHeavyTrafficNAFTA(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg := routing.NewNAFTA(m)
	n := New(Config{Graph: m, Algorithm: alg})
	rng := rand.New(rand.NewSource(9))
	inject := func(k int, f *fault.Set, blocks *fault.BlockInfo) {
		for i := 0; i < k; i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst {
				continue
			}
			if f != nil && (f.NodeFaulty(src) || f.NodeFaulty(dst)) {
				continue
			}
			if blocks != nil && (blocks.DisabledNode(src) || blocks.DisabledNode(dst)) {
				continue
			}
			n.Inject(src, dst, 6)
		}
	}
	inject(200, nil, nil)
	for i := 0; i < 30; i++ {
		stepChecked(t, n)
	}
	f := fault.NewSet()
	f.FailNode(m.Node(4, 4))
	f.FailLink(m.Node(2, 2), m.Node(2, 3))
	n.ApplyFaults(f)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after fault: %v", err)
	}
	inject(200, f, alg.Blocks())
	drainChecked(t, n, 100000)
	st := n.Stats()
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	total := st.Delivered + st.Dropped + st.Killed
	if total != st.Injected {
		t.Fatalf("message accounting: injected %d != %d delivered+dropped+killed",
			st.Injected, total)
	}
	if float64(st.Delivered) < 0.95*float64(st.Injected) {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Injected)
	}
}

func TestDecisionLatencyIncreasesLatency(t *testing.T) {
	m := topology.NewMesh(8, 8)
	run := func(cycles int) float64 {
		n := New(Config{Graph: m, Algorithm: routing.NewXY(m), DecisionCyclesPerStep: cycles})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 100; i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst {
				continue
			}
			n.Inject(src, dst, 4)
		}
		if !n.Drain(100000) {
			t.Fatal("drain failed")
		}
		st := n.Stats()
		return st.AvgNetLatency()
	}
	l1 := run(1)
	l4 := run(4)
	if l4 <= l1 {
		t.Fatalf("decision time 4 should increase latency: %f vs %f", l4, l1)
	}
}

func TestStatsAccessors(t *testing.T) {
	s := Stats{Delivered: 2, LatencySum: 30, NetLatencySum: 20, StepsSum: 8,
		FlitsDelivered: 50, Cycles: 100, Dropped: 2}
	if s.AvgLatency() != 15 || s.AvgNetLatency() != 10 || s.AvgSteps() != 4 {
		t.Fatal("averages wrong")
	}
	if s.Throughput(5) != 0.1 {
		t.Fatalf("throughput = %f", s.Throughput(5))
	}
	if s.DeliveredRatio() != 0.5 {
		t.Fatalf("ratio = %f", s.DeliveredRatio())
	}
	var empty Stats
	if empty.AvgLatency() != 0 || empty.Throughput(4) != 0 || empty.DeliveredRatio() != 1 {
		t.Fatal("zero-value stats accessors wrong")
	}
}

func TestMessageAccessors(t *testing.T) {
	m := &Message{InjectTime: 5, StartTime: 8, DoneTime: 20, State: StateDelivered}
	if m.Latency() != 15 || m.NetworkLatency() != 12 {
		t.Fatal("latency accessors wrong")
	}
	m.State = StateDropped
	if m.Latency() != -1 || m.NetworkLatency() != -1 {
		t.Fatal("non-delivered latency should be -1")
	}
}

func TestInjectShortMessageClamped(t *testing.T) {
	m := topology.NewMesh(2, 1)
	n := New(Config{Graph: m, Algorithm: routing.NewXY(m)})
	msg := n.Inject(m.Node(0, 0), m.Node(1, 0), 1)
	if msg.Hdr.Length != 2 {
		t.Fatalf("length should clamp to 2, got %d", msg.Hdr.Length)
	}
	drainChecked(t, n, 100)
	if msg.State != StateDelivered {
		t.Fatal("short message should deliver")
	}
}

// The paper's strawman critique, measured: spanning-tree routing
// concentrates all traffic on n-1 links, adaptive routing spreads it.
func TestUtilizationTreeVsAdaptive(t *testing.T) {
	m := topology.NewMesh(8, 8)
	run := func(alg routing.Algorithm) UtilizationSummary {
		n := New(Config{Graph: m, Algorithm: alg})
		rng := rand.New(rand.NewSource(15))
		for i := 0; i < 400; i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst {
				continue
			}
			n.Inject(src, dst, 6)
		}
		if !n.Drain(200000) {
			t.Fatal("drain failed")
		}
		return n.Utilization()
	}
	tree := run(routing.NewTree(m))
	nara := run(routing.NewNARA(m))
	// The tree uses exactly n-1 of the 112 links; NARA uses most.
	if tree.UsedLinks > m.Nodes()-1 {
		t.Fatalf("tree used %d links, max %d possible", tree.UsedLinks, m.Nodes()-1)
	}
	if nara.UsedLinks < tree.UsedLinks*3/2 {
		t.Fatalf("adaptive should use far more links: %d vs %d", nara.UsedLinks, tree.UsedLinks)
	}
	// And the tree's load distribution is much more skewed.
	if tree.Gini < nara.Gini {
		t.Fatalf("tree should concentrate load: gini %f vs %f", tree.Gini, nara.Gini)
	}
	if tree.PeakFlits < 2*nara.PeakFlits {
		t.Fatalf("tree peak load should dwarf adaptive: %d vs %d", tree.PeakFlits, nara.PeakFlits)
	}
}

// Switch-allocation fairness: two input ports feeding one output must
// share the link bandwidth roughly equally (round-robin grant).
func TestSwitchArbitrationFairness(t *testing.T) {
	m := topology.NewMesh(3, 3)
	alg := routing.NewNARA(m)
	n := New(Config{Graph: m, Algorithm: alg, RecordMessages: true})
	// Streams from west and south of the centre both head east
	// through (1,1) to (2,1).
	for i := 0; i < 10; i++ {
		n.Inject(m.Node(0, 1), m.Node(2, 1), 8)
		n.Inject(m.Node(1, 0), m.Node(2, 1), 8)
	}
	drainChecked(t, n, 10000)
	var westDone, southDone []int64
	for _, msg := range n.Messages {
		if msg.State != StateDelivered {
			t.Fatalf("message %d: %v", msg.ID, msg.State)
		}
		if msg.Hdr.Src == m.Node(0, 1) {
			westDone = append(westDone, msg.DoneTime)
		} else {
			southDone = append(southDone, msg.DoneTime)
		}
	}
	// Interleaving: the last message of each stream should finish
	// within ~35% of the other's (no starvation).
	lw, ls := westDone[len(westDone)-1], southDone[len(southDone)-1]
	ratio := float64(lw) / float64(ls)
	if ratio < 0.65 || ratio > 1.55 {
		t.Fatalf("unfair arbitration: west finished at %d, south at %d", lw, ls)
	}
}

// Virtual channels must allow a message to pass a blocked worm on the
// same physical link.
func TestVCPassing(t *testing.T) {
	m := topology.NewMesh(4, 1)
	alg := routing.NewNARA(m) // 2 VCs
	n := New(Config{Graph: m, Algorithm: alg, BufDepth: 2, RecordMessages: true})
	// Worm A fills the path to node 3 and blocks there... we emulate a
	// blocked receiver by a long message to 3 followed by a short one
	// to 2 injected on the other virtual network. NARA's VC is set by
	// direction, so craft the second message southbound? On a 1-row
	// mesh everything is horizontal; vnet for row messages depends on
	// the row position. Instead check simple FIFO overtake by length:
	// the short message must not wait for the whole long worm when
	// buffers provide slack.
	long := n.Inject(m.Node(0, 0), m.Node(3, 0), 40)
	short := n.Inject(m.Node(1, 0), m.Node(2, 0), 2)
	drainChecked(t, n, 5000)
	if long.State != StateDelivered || short.State != StateDelivered {
		t.Fatal("both must deliver")
	}
	if short.DoneTime > long.DoneTime {
		t.Fatalf("short local message (done %d) should not trail the 40-flit worm (done %d)",
			short.DoneTime, long.DoneTime)
	}
}

// Heavy uniform traffic on the torus with dateline DOR: the wrap-around
// rings must not deadlock.
func TestTorusDatelineNoDeadlock(t *testing.T) {
	tor := topology.NewTorus(6, 6)
	alg := routing.NewTorusDOR(tor)
	n := New(Config{Graph: tor, Algorithm: alg, BufDepth: 2})
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 600; i++ {
		src := topology.NodeID(rng.Intn(tor.Nodes()))
		dst := topology.NodeID(rng.Intn(tor.Nodes()))
		if src == dst {
			continue
		}
		n.Inject(src, dst, 8)
	}
	drainChecked(t, n, 100000)
	st := n.Stats()
	if st.Dropped != 0 || st.DeadlockSuspected {
		t.Fatalf("stats: %+v", st)
	}
	if cyc := n.FindDeadlockCycle(); cyc != nil {
		t.Fatalf("circular wait: %v", cyc)
	}
}

// Credit-return latency throttles a single stream's bandwidth: with a
// buffer of B flits and a return delay of D, at most B flits move per
// B+D cycles on a fully loaded link.
func TestCreditDelayThrottles(t *testing.T) {
	m := topology.NewMesh(2, 1)
	run := func(delay int) int64 {
		n := New(Config{Graph: m, Algorithm: routing.NewXY(m), BufDepth: 2,
			CreditDelay: delay, RecordMessages: true})
		msg := n.Inject(m.Node(0, 0), m.Node(1, 0), 24)
		drainChecked(t, n, 5000)
		if msg.State != StateDelivered {
			t.Fatal("message must deliver")
		}
		return msg.DoneTime
	}
	fast := run(0)
	slow := run(4)
	if slow <= fast {
		t.Fatalf("credit delay should slow the stream: %d vs %d cycles", slow, fast)
	}
	// Rough bandwidth model: depth 2 credits cycling a ~4-5 cycle
	// round trip bound the link under one flit per two cycles, so the
	// 24-flit stream takes at least ~1.5x the unthrottled time.
	if slow*2 < fast*3 {
		t.Fatalf("throttling too weak: %d vs %d cycles", slow, fast)
	}
}

// The credit conservation invariant must hold with delayed returns and
// across fault surgery.
func TestCreditDelayInvariants(t *testing.T) {
	m := topology.NewMesh(6, 6)
	alg := routing.NewNAFTA(m)
	n := New(Config{Graph: m, Algorithm: alg, BufDepth: 3, CreditDelay: 2})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 150; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src != dst {
			n.Inject(src, dst, 6)
		}
	}
	for i := 0; i < 60; i++ {
		stepChecked(t, n)
	}
	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	n.ApplyFaults(f)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after surgery: %v", err)
	}
	drainChecked(t, n, 50000)
}

// unroutableAlg declares every message unroutable: the network absorbs
// them one flit per cycle through the drain stage.
type unroutableAlg struct{}

func (unroutableAlg) Name() string                               { return "none" }
func (unroutableAlg) NumVCs() int                                { return 1 }
func (unroutableAlg) Route(routing.Request) []routing.Candidate  { return nil }
func (unroutableAlg) Steps(routing.Request) int                  { return 1 }
func (unroutableAlg) NoteHop(routing.Request, routing.Candidate) {}
func (unroutableAlg) UpdateFaults(*fault.Set)                    {}

// A fault event that lands while an unroutable worm is being absorbed
// (its head flit already drained) must not clear the worm's route
// state: a headless worm can never pass route computation again, so
// resetting it wedges the input VC forever. Regression test for the
// ApplyFaults re-route surgery.
func TestFaultMidDropKeepsAbsorbingWorm(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: unroutableAlg{}, RecordMessages: true})
	msg := n.Inject(m.Node(0, 0), m.Node(3, 3), 6)
	// Cycle 0 routes (unroutable), the drain stage then absorbs one
	// flit per cycle: after three steps the head flit is gone but the
	// worm's tail is still queued.
	for i := 0; i < 3; i++ {
		stepChecked(t, n)
	}
	if msg.State != StateInFlight {
		t.Fatalf("message state = %v, want in-flight mid-absorption", msg.State)
	}
	// Unrelated fault surgery while the worm is half absorbed.
	f := fault.NewSet()
	f.FailNode(m.Node(3, 0))
	n.ApplyFaults(f)
	drainChecked(t, n, 100)
	if msg.State != StateDropped {
		t.Fatalf("message state = %v, want dropped", msg.State)
	}
	if msg.DropInPort != routing.InjectionPort || msg.DropNode != m.Node(0, 0) {
		t.Fatalf("drop site = node %d port %d, want node %d injection port",
			msg.DropNode, msg.DropInPort, m.Node(0, 0))
	}
}

// A worm killed by a fault event while its head end is already being
// absorbed at the destination must not leave its partially ejected
// flits in Stats.FlitsDelivered: killed messages are excluded from the
// statistics wholesale (assumption iv). Found by the fault campaign
// (flit-conservation oracle), minimized to: long worm, mid-ejection
// fault on a router the tail still spans.
func TestKilledMidEjectionBacksOutDeliveredFlits(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: routing.NewXY(m), RecordMessages: true})
	msg := n.Inject(m.Node(0, 0), m.Node(2, 0), 12)
	for i := 0; i < 200 && msg.flitsEjected == 0; i++ {
		stepChecked(t, n)
	}
	if msg.flitsEjected == 0 || msg.State != StateInFlight {
		t.Fatalf("worm not mid-ejection: ejected=%d state=%v", msg.flitsEjected, msg.State)
	}
	// The 12-flit worm spans the whole 2-hop path; failing the middle
	// router cuts it while the destination keeps absorbing.
	f := fault.NewSet()
	f.FailNode(m.Node(1, 0))
	n.ApplyFaults(f)
	if msg.State != StateKilled {
		t.Fatalf("message state = %v, want killed", msg.State)
	}
	drainChecked(t, n, 100)
	st := n.Stats()
	if st.FlitsDelivered != 0 {
		t.Fatalf("FlitsDelivered = %d after the only message was killed, want 0", st.FlitsDelivered)
	}
	if st.Killed != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want exactly one killed message", st)
	}
}
