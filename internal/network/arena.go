package network

import "math/bits"

// Flat arena state + active-set stepping.
//
// The per-router pointer graph ([]*router -> [][]inputVC) is replaced
// by network-owned contiguous arenas indexed by precomputed strides: a
// pipeline stage walks cache-line-adjacent structs instead of chasing
// three levels of pointers. On top of the arenas, four incrementally
// maintained active sets track exactly the (node, port, VC) slots with
// live work per stage, so an idle VC costs nothing rather than a scan —
// per-cycle cost follows in-flight work, not topology size.
//
// Membership is derived state. Every mutation of an input VC's
// stage-relevant fields funnels through noteInput, which re-evaluates
// the four predicates for that one slot:
//
//   route: !routed && q.len() > 0 && q.front().head   (awaiting RC)
//   va:    routed && !eject && !unroutable && outPort < 0  (awaiting VA)
//   sa:    outPort >= 0 && q.len() > 0                (flits to switch)
//   drain: routed && (eject || unroutable) && q.len() > 0
//
// The decisionReady gate is deliberately NOT part of the predicates —
// it is time-dependent, and stages check it live (a delayed decision
// stays in its set until ready, which costs one skip per cycle).
//
// Determinism: a vcSet iterates members in ascending (node, slot)
// order via trailing-zero bit scans — exactly the order of the nested
// serial loops it replaces — and every stage's skip conditions equal
// its set's membership predicate, so processing only active slots is
// behaviourally identical to scanning everything. Stage processing may
// remove the slot being visited from the set it is iterating (the
// iteration snapshots each word first) and add slots to *other* sets,
// but never adds to the set being iterated; that property keeps the
// snapshot iteration exact.
//
// Parallelism: all add/remove paths executed inside parallel compute
// phases touch only node-owned mask words, the node's count cell and
// the node's summary-bit word. Summary words are shared by 64
// consecutive nodes, so shard boundaries are aligned to multiples of
// 64 (initParallel) and no two workers ever write the same word.

// layout precomputes the arena strides of a network: input VCs are
// indexed node*inStride + port*vcs + vc with port Ports() being the
// injection pseudo-port; output VCs node*outStride + port*vcs + vc for
// link ports only.
type layout struct {
	nodes   int
	ports   int // link ports; the injection pseudo-port is index ports
	vcs     int
	inPorts int // ports+1
	// inStride/outStride are the per-node slot counts.
	inStride  int
	outStride int
}

func newLayout(nodes, ports, vcs int) layout {
	if vcs > 64 {
		// switchNode extracts a per-port VC mask from the SA set's words,
		// which requires a port's VC range to span at most two words.
		panic("network: more than 64 VCs per port is not supported")
	}
	return layout{
		nodes: nodes, ports: ports, vcs: vcs, inPorts: ports + 1,
		inStride: (ports + 1) * vcs, outStride: ports * vcs,
	}
}

// inIdx returns the ins-arena index of input (node, port, vc).
func (l *layout) inIdx(node, port, vc int) int {
	return node*l.inStride + port*l.vcs + vc
}

// outIdx returns the outs-arena index of output (node, port, vc).
func (l *layout) outIdx(node, port, vc int) int {
	return node*l.outStride + port*l.vcs + vc
}

// vcSet is a two-level bitset over (node, slot) pairs: per-node mask
// words (wpn words each, node-owned), a node-level summary bitset and
// a per-node member count. All operations are O(1); iteration visits
// members in ascending (node, slot) order.
type vcSet struct {
	wpn      int      // mask words per node
	words    []uint64 // nodes * wpn
	nodeBits []uint64 // bit n set iff node n has any member
	count    []int32  // members per node
}

func newVCSet(nodes, slots int) vcSet {
	wpn := (slots + 63) / 64
	return vcSet{
		wpn:      wpn,
		words:    make([]uint64, nodes*wpn),
		nodeBits: make([]uint64, (nodes+63)/64),
		count:    make([]int32, nodes),
	}
}

// set makes (node, slot) a member iff member, updating the count and
// summary bit on transitions.
func (s *vcSet) set(node, slot int, member bool) {
	w := &s.words[node*s.wpn+slot>>6]
	bit := uint64(1) << (slot & 63)
	if member {
		if *w&bit == 0 {
			*w |= bit
			if s.count[node] == 0 {
				s.nodeBits[node>>6] |= 1 << (node & 63)
			}
			s.count[node]++
		}
	} else if *w&bit != 0 {
		*w &^= bit
		s.count[node]--
		if s.count[node] == 0 {
			s.nodeBits[node>>6] &^= 1 << (node & 63)
		}
	}
}

// has reports membership of (node, slot).
func (s *vcSet) has(node, slot int) bool {
	return s.words[node*s.wpn+slot>>6]&(1<<(slot&63)) != 0
}

// clear empties the set.
func (s *vcSet) clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	for i := range s.nodeBits {
		s.nodeBits[i] = 0
	}
	for i := range s.count {
		s.count[i] = 0
	}
}

// size sums the per-node counts (peak sampling; not maintained as one
// global counter because parallel shards would race on it).
func (s *vcSet) size() int {
	t := 0
	for _, c := range s.count {
		t += int(c)
	}
	return t
}

// forEach calls fn for every member with lo <= node < hi, in ascending
// (node, slot) order. Each summary and mask word is snapshotted before
// scanning, so fn may remove the visited slot (or any slot of the
// visited node) and may add members to other sets — but must not add
// members to THIS set. For parallel callers, lo must be 64-aligned and
// hi either 64-aligned or the total node count.
func (s *vcSet) forEach(lo, hi int, fn func(node, slot int)) {
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		nw := s.nodeBits[wi]
		for nw != 0 {
			node := wi<<6 + bits.TrailingZeros64(nw)
			nw &= nw - 1
			base := node * s.wpn
			for k := 0; k < s.wpn; k++ {
				mw := s.words[base+k]
				for mw != 0 {
					slot := k<<6 + bits.TrailingZeros64(mw)
					mw &= mw - 1
					fn(node, slot)
				}
			}
		}
	}
}

// forEachNode calls fn for every node with at least one member in
// [lo, hi), ascending. Same snapshot/alignment contract as forEach.
func (s *vcSet) forEachNode(lo, hi int, fn func(node int)) {
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		nw := s.nodeBits[wi]
		for nw != 0 {
			node := wi<<6 + bits.TrailingZeros64(nw)
			nw &= nw - 1
			fn(node)
		}
	}
}

// nodeSet is a plain node-level bitset (injection work list).
type nodeSet struct {
	bits []uint64
}

func newNodeSet(nodes int) nodeSet {
	return nodeSet{bits: make([]uint64, (nodes+63)/64)}
}

func (s *nodeSet) set(node int, member bool) {
	if member {
		s.bits[node>>6] |= 1 << (node & 63)
	} else {
		s.bits[node>>6] &^= 1 << (node & 63)
	}
}

func (s *nodeSet) clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

func (s *nodeSet) size() int {
	t := 0
	for _, w := range s.bits {
		t += bits.OnesCount64(w)
	}
	return t
}

// forEach visits members ascending; the word is snapshotted, so fn may
// clear the visited node's bit.
func (s *nodeSet) forEach(fn func(node int)) {
	for wi, w := range s.bits {
		for w != 0 {
			node := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			fn(node)
		}
	}
}

// noteInput re-derives the active-set memberships of one input slot
// (slot = port*vcs + vc) from its current state. Every mutation of an
// input VC's routed/eject/unroutable/outPort/queue state must be
// followed by a noteInput of that slot.
func (n *Network) noteInput(node, slot int) {
	ivc := &n.ins[node*n.lay.inStride+slot]
	qlen := ivc.q.len()
	n.routeSet.set(node, slot, !ivc.routed && qlen > 0 && ivc.q.front().head)
	n.vaSet.set(node, slot, ivc.routed && !ivc.eject && !ivc.unroutable && ivc.outPort < 0)
	n.saSet.set(node, slot, ivc.outPort >= 0 && qlen > 0)
	n.drainSet.set(node, slot, ivc.routed && (ivc.eject || ivc.unroutable) && qlen > 0)
}

// rebuildActiveSets re-derives every work list from scratch — the cold
// path after fault surgery rewrites arbitrary VC state in place.
func (n *Network) rebuildActiveSets() {
	n.routeSet.clear()
	n.vaSet.clear()
	n.saSet.clear()
	n.drainSet.clear()
	n.injNodes.clear()
	for node := 0; node < n.lay.nodes; node++ {
		for slot := 0; slot < n.lay.inStride; slot++ {
			n.noteInput(node, slot)
		}
		n.injNodes.set(node, len(n.injQ[node]) > 0)
	}
}

// ActiveSetPeaks reports the peak sizes of the per-stage work lists,
// sampled every 64 cycles (Step): how busy the network got, in units
// of live (node, port, VC) slots — the denominator of the active-set
// win. InjectNodes counts nodes with a non-empty injection queue.
type ActiveSetPeaks struct {
	Route       int
	Alloc       int
	Switch      int
	Drain       int
	InjectNodes int
}

// Peaks returns the sampled active-set peaks since the network was
// built.
func (n *Network) Peaks() ActiveSetPeaks { return n.peaks }

// samplePeaks updates the peak gauges (called from the serial step
// epilogue every 64 cycles; summation over the per-node counts keeps
// the hot path free of a shared size counter).
func (n *Network) samplePeaks() {
	if v := n.routeSet.size(); v > n.peaks.Route {
		n.peaks.Route = v
	}
	if v := n.vaSet.size(); v > n.peaks.Alloc {
		n.peaks.Alloc = v
	}
	if v := n.saSet.size(); v > n.peaks.Switch {
		n.peaks.Switch = v
	}
	if v := n.drainSet.size(); v > n.peaks.Drain {
		n.peaks.Drain = v
	}
	if v := n.injNodes.size(); v > n.peaks.InjectNodes {
		n.peaks.InjectNodes = v
	}
}
