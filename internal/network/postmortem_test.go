package network

import (
	"bytes"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// forceRingDeadlock builds the deliberately deadlock-prone ring
// network of deadlock_test.go with a flight recorder attached and
// drives it until the watchdog fires.
func forceRingDeadlock(t *testing.T, livelockAge int64) (*Network, *trace.Recorder, *[]*trace.Report) {
	t.Helper()
	m := topology.NewMesh(3, 3)
	rec := trace.New(m.Nodes(), 64)
	reports := &[]*trace.Report{}
	n := New(Config{
		Graph: m, Algorithm: &ringAlg{m: m}, BufDepth: 2,
		WatchdogCycles:    200,
		LivelockAgeCycles: livelockAge,
		Recorder:          rec,
		OnPostMortem:      func(r *trace.Report) { *reports = append(*reports, r) },
	})
	corners := []struct{ src, dst topology.NodeID }{
		{m.Node(0, 0), m.Node(2, 1)},
		{m.Node(2, 0), m.Node(1, 2)},
		{m.Node(2, 2), m.Node(0, 1)},
		{m.Node(0, 2), m.Node(1, 0)},
	}
	for _, c := range corners {
		n.Inject(c.src, c.dst, 24)
	}
	for i := 0; i < 600 && len(*reports) == 0; i++ {
		n.Step()
	}
	if len(*reports) == 0 {
		t.Fatal("forced deadlock produced no post-mortem report")
	}
	return n, rec, reports
}

// TestDeadlockPostMortem asserts the acceptance criterion: a forced
// deadlock produces a report naming the channel-wait cycle and the
// blocked packets, with the flight-recorder tail attached.
func TestDeadlockPostMortem(t *testing.T) {
	n, rec, reports := forceRingDeadlock(t, 0)
	rep := (*reports)[0]

	if rep.Reason != "deadlock" {
		t.Fatalf("reason = %q, want deadlock", rep.Reason)
	}
	if rep.Cycle <= 0 {
		t.Fatalf("report cycle = %d", rep.Cycle)
	}
	// The certified circular wait must name at least two of the four
	// injected messages (IDs 0..3).
	if len(rep.WaitCycle) < 2 {
		t.Fatalf("wait cycle %v, want >= 2 messages", rep.WaitCycle)
	}
	for _, id := range rep.WaitCycle {
		if id < 0 || id > 3 {
			t.Fatalf("wait cycle names unknown message %d", id)
		}
	}
	// Every wait-cycle member must also appear among the blocked
	// packets, with its waits-on edge and position filled in.
	blocked := map[int64]trace.BlockedPacket{}
	for _, b := range rep.Blocked {
		blocked[b.Msg] = b
	}
	for _, id := range rep.WaitCycle {
		b, ok := blocked[id]
		if !ok {
			t.Fatalf("wait-cycle message %d missing from blocked list %v", id, rep.Blocked)
		}
		if b.Why != "no-credit" && b.Why != "no-free-vc" {
			t.Fatalf("blocked message %d has why=%q", id, b.Why)
		}
		if len(b.WaitsOn) == 0 {
			t.Fatalf("blocked message %d has no waits-on edge", id)
		}
		if b.Age <= 0 {
			t.Fatalf("blocked message %d has age %d", id, b.Age)
		}
	}
	if len(rep.Routers) == 0 {
		t.Fatal("report has no router snapshots")
	}
	if len(rep.Events) == 0 {
		t.Fatal("report has no flight-recorder events")
	}
	// The recorder logged the deadlock marker event.
	foundMarker := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KDeadlock {
			foundMarker = true
		}
	}
	if !foundMarker {
		t.Fatal("no KDeadlock marker recorded")
	}
	// The report survives a JSON round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != rep.Reason || back.Cycle != rep.Cycle ||
		len(back.WaitCycle) != len(rep.WaitCycle) ||
		len(back.Blocked) != len(rep.Blocked) || len(back.Events) != len(rep.Events) {
		t.Fatalf("round trip mangled the report: %+v vs %+v", back, rep)
	}
	// The human-readable rendering names the essentials.
	s := rep.String()
	if !bytes.Contains([]byte(s), []byte("deadlock")) ||
		!bytes.Contains([]byte(s), []byte("circular wait")) {
		t.Fatalf("summary missing essentials:\n%s", s)
	}
	// Only one automatic report per run.
	for i := 0; i < 300; i++ {
		n.Step()
	}
	if len(*reports) != 1 {
		t.Fatalf("post-mortem fired %d times, want once", len(*reports))
	}
}

// TestLivelockPostMortem checks the age-bound trigger: with a bound
// far below the watchdog threshold the stalled ring trips the
// livelock report first.
func TestLivelockPostMortem(t *testing.T) {
	m := topology.NewMesh(3, 3)
	var report *trace.Report
	n := New(Config{
		Graph: m, Algorithm: &ringAlg{m: m}, BufDepth: 2,
		WatchdogCycles:    100000, // watchdog out of the picture
		LivelockAgeCycles: 300,
		OnPostMortem:      func(r *trace.Report) { report = r },
	})
	corners := []struct{ src, dst topology.NodeID }{
		{m.Node(0, 0), m.Node(2, 1)},
		{m.Node(2, 0), m.Node(1, 2)},
		{m.Node(2, 2), m.Node(0, 1)},
		{m.Node(0, 2), m.Node(1, 0)},
	}
	for _, c := range corners {
		n.Inject(c.src, c.dst, 24)
	}
	for i := 0; i < 2000 && report == nil; i++ {
		n.Step()
	}
	if report == nil {
		t.Fatal("no livelock post-mortem fired")
	}
	if report.Reason != "livelock" {
		t.Fatalf("reason = %q, want livelock", report.Reason)
	}
	if len(report.Blocked) == 0 {
		t.Fatal("livelock report has no blocked packets")
	}
}

// TestPostMortemManual checks the on-demand snapshot of a healthy
// network: no blocked packets, no wait cycle.
func TestPostMortemManual(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: &ringAlg{m: m}})
	rep := n.PostMortem("manual")
	if rep.Reason != "manual" || len(rep.Blocked) != 0 || len(rep.WaitCycle) != 0 {
		t.Fatalf("idle post-mortem: %+v", rep)
	}
}

// TestTracedRunMatchesUntraced asserts the recorder is observation
// only: a traced simulation delivers exactly the same statistics as
// an untraced one with the same seed.
func TestTracedRunMatchesUntraced(t *testing.T) {
	runOnce := func(rec *trace.Recorder) Stats {
		m := topology.NewMesh(4, 4)
		n := New(Config{Graph: m, Algorithm: &ringAlg{m: m}, Recorder: rec})
		// Injection along the ring only (the ring discipline delivers
		// neighbours fine at low load).
		n.Inject(m.Node(0, 0), m.Node(1, 0), 4)
		n.Inject(m.Node(3, 0), m.Node(3, 1), 4)
		n.Drain(2000)
		return n.Stats()
	}
	a := runOnce(nil)
	rec := trace.New(16, 32)
	b := runOnce(rec)
	if a != b {
		t.Fatalf("traced run diverged: %+v vs %+v", a, b)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("recorder saw no events")
	}
}
