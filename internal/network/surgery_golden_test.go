package network

// Golden regression tests for the fault-surgery and post-mortem
// paths. Each test drives a fully deterministic scenario and compares
// a compact end-state summary against values pinned from the
// pre-arena (per-router pointer graph) engine, so any behavioural
// drift introduced by the flat-arena/active-set port — killed-worm
// release, queue filtering, credit recomputation, channel-wait-cycle
// certification — fails loudly with a field-level diff instead of
// surfacing as a statistics mismatch three layers up.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// surgeryScenario injects seeded uniform traffic on an 8x8 NAFTA mesh,
// lets worms spread mid-flight, then fails a router and cuts a link —
// exercising every step of ApplyFaults: queued-message kill, crossing-
// worm cut, queue filtering, output release, decision re-route and
// credit recomputation.
func surgeryScenario(t *testing.T, workers int) string {
	t.Helper()
	m := topology.NewMesh(8, 8)
	alg := routing.NewNAFTA(m)
	n := New(Config{Graph: m, Algorithm: alg, BufDepth: 2, Workers: workers})
	defer n.Close()
	if workers >= 2 && !n.ParallelActive() {
		t.Fatalf("parallel engine inactive: %s", n.ParallelReason())
	}

	rng := rand.New(rand.NewSource(7))
	for cycle := 0; cycle < 30; cycle++ {
		if cycle < 25 {
			for k := 0; k < 8; k++ {
				src := topology.NodeID(rng.Intn(m.Nodes()))
				dst := topology.NodeID(rng.Intn(m.Nodes()))
				if src != dst {
					n.Inject(src, dst, 8)
				}
			}
		}
		if cycle == 28 {
			// Source-queued messages at the soon-to-fail router: the
			// injection-queue kill path must count them.
			n.Inject(m.Node(3, 3), m.Node(0, 7), 8)
			n.Inject(m.Node(3, 3), m.Node(7, 0), 8)
			n.Inject(m.Node(3, 3), m.Node(6, 6), 8)
		}
		n.Step()
	}

	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	f.FailLink(m.Node(4, 4), m.Node(4, 5))
	n.ApplyFaults(f)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants broken right after surgery: %v", err)
	}
	post := n.Stats()
	postInFlight, postQueued := n.InFlight(), n.Queued()

	// Surviving buffer occupancy right after the surgery — the direct
	// observable of the slice()/truncate() queue filtering: surgery
	// rebuilds every credit count from actual downstream occupancy, so
	// BufDepth-credits summed over all link VCs is exactly the flit
	// population the filtering kept.
	flits := 0
	for node := 0; node < m.Nodes(); node++ {
		for p := 0; p < m.Ports(); p++ {
			if m.Neighbor(topology.NodeID(node), p) == topology.Invalid {
				continue
			}
			for v := 0; v < alg.NumVCs(); v++ {
				flits += 2 - n.Credits(topology.NodeID(node), p, v)
			}
		}
	}

	if !n.Drain(20000) {
		t.Fatalf("post-surgery drain stalled (inflight %d, queued %d)", n.InFlight(), n.Queued())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants broken after drain: %v", err)
	}
	final := n.Stats()
	final.Cycles = 0 // drain cycle count is load-dependent, not surgery behaviour

	return fmt.Sprintf(
		"postKilled=%d postInFlight=%d postQueued=%d postFlitsBuffered=%d "+
			"injected=%d delivered=%d dropped=%d killed=%d flits=%d hops=%d "+
			"misroutes=%d marked=%d lat=%d netlat=%d maxlat=%d",
		post.Killed, postInFlight, postQueued, flits,
		final.Injected, final.Delivered, final.Dropped, final.Killed,
		final.FlitsDelivered, final.HopsSum, final.MisroutesSum,
		final.MarkedCount, final.LatencySum, final.NetLatencySum, final.MaxLatency)
}

// Pinned from the pre-arena engine; serial and parallel stepping must
// both keep reproducing it bit-for-bit.
const surgeryGolden = "postKilled=11 postInFlight=70 postQueued=92 postFlitsBuffered=253 " +
	"injected=200 delivered=189 dropped=0 killed=11 flits=1512 hops=1066 " +
	"misroutes=13 marked=11 lat=16212 netlat=8418 maxlat=217"

func TestFaultSurgeryGoldenSerial(t *testing.T) {
	if got := surgeryScenario(t, 0); got != surgeryGolden {
		t.Fatalf("fault-surgery end state drifted:\n got: %s\nwant: %s", got, surgeryGolden)
	}
}

func TestFaultSurgeryGoldenParallel(t *testing.T) {
	if got := surgeryScenario(t, 2); got != surgeryGolden {
		t.Fatalf("fault-surgery end state drifted:\n got: %s\nwant: %s", got, surgeryGolden)
	}
}

// TestPostMortemGolden pins the certified channel-wait cycle and the
// blocked-packet table of the deterministic ring deadlock: the exact
// cycle membership, each packet's position (node, input port/VC),
// blocking reason and waits-on edges, and which routers appear in the
// snapshot.
func TestPostMortemGolden(t *testing.T) {
	_, _, reports := forceRingDeadlock(t, 0)
	rep := (*reports)[0]

	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%v", rep.WaitCycle)
	for _, bp := range rep.Blocked {
		fmt.Fprintf(&b, " | msg%d@n%d p%d v%d out(%d,%d) %s waits%v",
			bp.Msg, bp.Node, bp.InPort, bp.InVC, bp.OutPort, bp.OutVC, bp.Why, bp.WaitsOn)
	}
	routers := make([]int64, 0, len(rep.Routers))
	for _, rs := range rep.Routers {
		routers = append(routers, rs.Node)
	}
	fmt.Fprintf(&b, " | routers%v", routers)

	const golden = "cycle=[3 2 1 0]" +
		" | msg3@n0 p0 v0 out(-1,-1) no-free-vc waits[0]" +
		" | msg0@n2 p3 v0 out(-1,-1) no-free-vc waits[1]" +
		" | msg2@n6 p1 v0 out(-1,-1) no-free-vc waits[3]" +
		" | msg1@n8 p2 v0 out(-1,-1) no-free-vc waits[2]" +
		" | routers[0 1 2 3 5 6 7 8]"
	if got := b.String(); got != golden {
		t.Fatalf("post-mortem snapshot drifted:\n got: %s\nwant: %s", got, golden)
	}
}
