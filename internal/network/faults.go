package network

import (
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ApplyFaults injects a new fault state into the running network,
// honouring the paper's fault model:
//
//   - messages whose worm currently touches a failed router or spans a
//     failed link are removed and counted as Killed (assumption iv: in
//     a direct network such messages are sent to the nearest home link
//     and reinjected by a light-weight protocol; the simulator models
//     the removal and excludes these messages from latency stats);
//   - messages that merely hold a routing decision across a now-dead
//     link but have not moved any flit yet are re-routed instead;
//   - the routing algorithm's diagnosis (state propagation) runs to
//     its fixpoint before the next cycle (assumption iv again), via
//     Algorithm.UpdateFaults;
//   - all pending, unallocated routing decisions are recomputed under
//     the new fault state.
//
// The fault set f replaces the previous one; use cumulative sets for
// incremental fault sequences.
func (n *Network) ApplyFaults(f *fault.Set) {
	prev := n.faults
	n.faults = f
	if n.rec != nil {
		// Flight-record the newly raised faults (node faults Arg=0,
		// link faults Arg=1 with Node/Port naming one endpoint).
		for _, nd := range f.FaultyNodes() {
			if !prev.NodeFaulty(nd) {
				n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KFaultRaised,
					Node: int32(nd), Msg: -1, Port: -1, VC: -1})
			}
		}
		for _, l := range f.FaultyLinks() {
			if !prev.LinkFaulty(l.A, l.B) {
				port := int16(-1)
				if p, ok := n.g.PortTo(l.A, l.B); ok {
					port = int16(p)
				}
				n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KFaultRaised,
					Node: int32(l.A), Msg: -1, Port: port, VC: -1, Arg: 1})
			}
		}
	}

	killed := make(map[*Message]bool)
	lay := &n.lay

	// 1. Messages touching failed routers (buffered flits or queued at
	// a failed source).
	for node := 0; node < lay.nodes; node++ {
		if !f.NodeFaulty(topology.NodeID(node)) {
			continue
		}
		base := node * lay.inStride
		for slot := 0; slot < lay.inStride; slot++ {
			for _, fl := range n.ins[base+slot].q.slice() {
				killed[fl.msg] = true
			}
		}
		for _, m := range n.injQ[node] {
			m.State = StateKilled
			m.DoneTime = n.now
			n.stats.Killed++
			n.queued--
		}
		n.injQ[node] = nil
	}

	// 2. Worms actively crossing a dead component: an output VC with
	// an owner that has already sent at least one flit (remaining <
	// Length) carries a worm that spans the attached link; if the
	// sending router, the link or the receiving router is dead, that
	// worm is cut.
	for node := 0; node < lay.nodes; node++ {
		for p := 0; p < lay.ports; p++ {
			down := n.g.Neighbor(topology.NodeID(node), p)
			for v := 0; v < lay.vcs; v++ {
				out := &n.outs[lay.outIdx(node, p, v)]
				if out.ownerMsg == nil || out.remaining >= out.ownerMsg.Hdr.Length {
					continue
				}
				dead := f.NodeFaulty(topology.NodeID(node)) || down == topology.Invalid ||
					f.NodeFaulty(down) || f.LinkFaulty(topology.NodeID(node), down)
				if dead {
					killed[out.ownerMsg] = true
				}
			}
		}
	}

	// 2b. Reconfiguration flush: worms holding resources whose channel
	// ordering this event is about to invalidate — e.g. maze escape
	// worms, whose up*/down* orientation is re-rooted per fault event —
	// are removed like worms touching the failure itself; the recovery
	// protocol of assumption iv reinjects them. Letting them survive
	// could close a wait cycle across the two orientations
	// (routing.ReconfigFlusher). Every in-flight worm has at least one
	// buffered flit, so sweeping the input queues sees each one.
	if flusher, ok := n.alg.(routing.ReconfigFlusher); ok {
		for i := range n.ins {
			for _, flt := range n.ins[i].q.slice() {
				if !killed[flt.msg] && flusher.FlushOnFault(&flt.msg.Hdr) {
					killed[flt.msg] = true
				}
			}
		}
	}

	// 3. Remove killed worms everywhere and account for them.
	for i := range n.ins {
		ivc := &n.ins[i]
		if ivc.q.len() == 0 {
			continue
		}
		live := ivc.q.slice()
		kept := live[:0]
		for _, fl := range live {
			if !killed[fl.msg] {
				kept = append(kept, fl)
			}
		}
		ivc.q.truncate(len(kept))
	}
	for m := range killed {
		if m.State == StateInFlight {
			m.State = StateKilled
			m.DoneTime = n.now
			n.stats.Killed++
			// A worm cut while its head end was already being absorbed
			// at the destination has delivered some flits; back them
			// out — killed messages are excluded from the statistics
			// wholesale (assumption iv).
			n.stats.FlitsDelivered -= int64(m.flitsEjected)
			n.inFlight--
			if n.epochs != nil {
				n.epochs.ReleaseEpoch(m.Hdr.Epoch)
			}
			if n.rec != nil {
				n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KMsgKilled,
					Node: int32(m.Hdr.Src), Msg: m.ID, Port: -1, VC: -1})
			}
		}
	}

	// 4. Release outputs owned by killed worms; re-route allocations
	// that would cross a dead link but have not moved a flit yet;
	// recompute credits from the surviving buffer occupancy.
	for i := range n.outs {
		out := &n.outs[i]
		if out.ownerMsg != nil && killed[out.ownerMsg] {
			n.releaseOutput(out)
		}
	}
	for node := 0; node < lay.nodes; node++ {
		for slot := 0; slot < lay.inStride; slot++ {
			ivc := &n.ins[node*lay.inStride+slot]
			if ivc.outPort < 0 {
				// Unallocated: recompute the decision under the
				// new fault state next cycle — unless the worm is
				// already partially absorbed (the head flit is
				// gone): clearing the route state of a headless
				// worm would leave routeStage unable to ever route
				// it again and wedge the input VC.
				if ivc.routed && !ivc.eject && (ivc.q.len() == 0 || ivc.q.front().head) {
					ivc.resetRoute()
				}
				continue
			}
			if ivc.curMsg == nil || killed[ivc.curMsg] {
				// The worm this allocation belonged to is gone.
				ivc.resetRoute()
				continue
			}
			out := &n.outs[lay.outIdx(node, ivc.outPort, ivc.outVC)]
			down := n.g.Neighbor(topology.NodeID(node), ivc.outPort)
			dead := down == topology.Invalid || f.LinkFaulty(topology.NodeID(node), down) || f.NodeFaulty(down)
			if dead {
				if out.remaining == ivc.curMsg.Hdr.Length {
					// Nothing sent yet: safe to re-route.
					n.releaseOutput(out)
					ivc.resetRoute()
				}
				// Otherwise the worm already spans the link and was
				// killed in step 2.
			}
		}
	}
	// Pending credit returns are superseded by the from-scratch
	// recomputation.
	n.creditQueue = n.creditQueue[:0]
	n.recomputeCredits()
	// Surgery rewrote VC state in place all over the arenas: re-derive
	// every active-set membership from scratch (cold path).
	n.rebuildActiveSets()

	// 5. Diagnosis phase: propagate the new fault state to a fixpoint —
	// or, when a failover plane is attached, let it resolve the fault:
	// a covered class flips a precompiled engine in (the fixpoint ran
	// at bundle-load time), an uncovered one falls back to the same
	// live recompute this branch would run.
	if n.cfg.Failover != nil {
		if n.cfg.Failover.OnFault(f) && n.rec != nil {
			n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KFailoverFlip,
				Node: -1, Msg: -1, Port: -1, VC: -1})
		}
	} else {
		n.alg.UpdateFaults(f)
	}
	if n.rec != nil {
		n.rec.Record(trace.Event{Cycle: n.now, Kind: trace.KFaultPropagated,
			Node: -1, Msg: -1, Port: -1, VC: -1, Arg: int32(len(killed))})
	}
}

// releaseOutput frees one output VC.
func (n *Network) releaseOutput(out *outputVC) {
	out.ownerInPort, out.ownerInVC = -1, -1
	out.ownerMsg = nil
	out.remaining = 0
}

// recomputeCredits rebuilds every output's credit count from the
// actual downstream buffer occupancy (used after fault surgery).
func (n *Network) recomputeCredits() {
	lay := &n.lay
	for node := 0; node < lay.nodes; node++ {
		for p := 0; p < lay.ports; p++ {
			down := n.g.Neighbor(topology.NodeID(node), p)
			if down == topology.Invalid {
				continue
			}
			dp, ok := n.g.PortTo(down, topology.NodeID(node))
			if !ok {
				continue
			}
			for v := 0; v < lay.vcs; v++ {
				n.outs[lay.outIdx(node, p, v)].credits =
					n.cfg.BufDepth - n.ins[lay.inIdx(int(down), dp, v)].q.len()
			}
		}
	}
}
