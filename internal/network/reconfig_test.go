package network

import (
	"testing"

	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// A network built on the epoch swapper survives a mid-flight engine
// swap: pinned worms deliver, the old epoch retires at quiescence, and
// the swap/retire trace events land in the flight recorder.
func TestReconfigureHotSwapMidFlight(t *testing.T) {
	m := topology.NewMesh(4, 4)
	sw := reconfig.NewSwapper(routing.NewNAFTA(m))
	rec := trace.New(m.Nodes(), 64)
	n := New(Config{Graph: m, Algorithm: sw, Recorder: rec, RecordMessages: true})

	for i := 0; i < 6; i++ {
		n.Inject(topology.NodeID(i), topology.NodeID(15-i), 6)
	}
	n.Run(3) // worms are mid-flight now
	if n.InFlight() == 0 {
		t.Fatal("expected in-flight worms before the swap")
	}
	if err := n.Reconfigure(routing.NewNAFTA(m), false); err != nil {
		t.Fatal(err)
	}
	if sw.CurrentEpoch() != 2 {
		t.Fatalf("epoch %d after swap, want 2", sw.CurrentEpoch())
	}
	if !n.Drain(10000) {
		t.Fatal("network failed to drain after the hot swap")
	}
	st := n.Stats()
	if st.Delivered != 6 || st.Dropped != 0 || st.Killed != 0 {
		t.Fatalf("delivered %d, dropped %d, killed %d — worms lost across the swap",
			st.Delivered, st.Dropped, st.Killed)
	}
	if !sw.Quiesced() {
		t.Fatalf("%d epochs live after the drain", sw.LiveEpochs())
	}
	var sawSwap, sawRetire bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KReconfigSwap:
			sawSwap = ev.Arg == 2
		case trace.KEpochRetired:
			sawRetire = ev.Arg == 1
		}
	}
	if !sawSwap || !sawRetire {
		t.Fatalf("trace events missing: swap=%v retire=%v", sawSwap, sawRetire)
	}
}

// A forced swap across incompatible regimes drains the network first;
// without force it is refused and the engine stays.
func TestReconfigureRegimeGateAndForce(t *testing.T) {
	m := topology.NewMesh(4, 4)
	sw := reconfig.NewSwapper(routing.NewNAFTA(m))
	// 5 VCs so the nara engine (which declares no regime) fits too.
	n := New(Config{Graph: m, Algorithm: sw, VCs: 5})
	n.Inject(0, 15, 4)
	n.Run(2)
	other := routing.NewNARA(m) // no DeadlockRegime: incompatible tag
	if err := n.Reconfigure(other, false); err == nil {
		t.Fatal("incompatible regime swapped without force")
	}
	if sw.CurrentEpoch() != 1 {
		t.Fatal("refused swap advanced the epoch")
	}
	if err := n.Reconfigure(other, true); err != nil {
		t.Fatal(err)
	}
	if !n.Idle() {
		t.Fatal("forced swap did not drain the network")
	}
	if sw.CurrentEpoch() != 2 {
		t.Fatalf("epoch %d after forced swap, want 2", sw.CurrentEpoch())
	}
}

// Without a swapper the engine can only be replaced cold, and an
// engine needing more VCs than the network carries is always refused.
func TestReconfigureColdSwapRules(t *testing.T) {
	m := topology.NewMesh(4, 4)
	n := New(Config{Graph: m, Algorithm: routing.NewNARA(m)})
	n.Inject(0, 15, 4)
	n.Run(1)
	if err := n.Reconfigure(routing.NewNAFTA(m), false); err == nil {
		t.Fatal("cold swap accepted on a busy network")
	}
	if !n.Drain(10000) {
		t.Fatal("drain failed")
	}
	if err := n.Reconfigure(routing.NewNAFTA(m), false); err != nil {
		t.Fatalf("cold swap on an idle network refused: %v", err)
	}
	// NAFTA needs 2 VCs; the network was built with 2 — a 5-VC engine
	// must be refused regardless of idleness.
	h := topology.NewHypercube(4)
	nh := New(Config{Graph: h, Algorithm: routing.NewECube(h)})
	if err := nh.Reconfigure(routing.NewRouteC(h), false); err == nil {
		t.Fatal("engine needing 5 VCs accepted by a 1-VC network")
	}
}
